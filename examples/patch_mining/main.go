// Patch mining: specification databases as reusable artifacts.
//
// The paper stresses that patch processing is a one-time effort whose
// output — the specification database — is reused for every subsequent
// detection run (§8.4). This example mines a patch corpus, serializes the
// database to JSON, reloads it, and verifies the round trip preserves
// every constraint, including the solver conditions.
//
// Run with: go run ./examples/patch_mining
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"seal"
	"seal/internal/kernelgen"
	"seal/internal/solver"
	"seal/internal/spec"
)

func main() {
	corpus := kernelgen.Generate(kernelgen.DefaultConfig())
	fmt.Printf("mining %d patches (including %d no-op refactors)...\n",
		len(corpus.Patches), corpus.Config.NoisePatches)

	res, err := seal.InferSpecs(corpus.Patches, seal.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range res.Outcomes {
		marker := " "
		if o.Specs == 0 {
			marker = "·" // zero-relation patch
		}
		fmt.Printf(" %s %-32s specs=%-2d paths(pre=%d post=%d)\n",
			marker, o.PatchID, o.Specs, o.Stats.PrePaths, o.Stats.PostPaths)
	}

	// Serialize.
	path := filepath.Join(os.TempDir(), "seal-specs.json")
	data, err := json.MarshalIndent(res.DB, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %d specs (%d bytes) to %s\n", len(res.DB.Specs), len(data), path)

	// Reload and verify.
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var back spec.DB
	if err := json.Unmarshal(raw, &back); err != nil {
		log.Fatal(err)
	}
	if len(back.Specs) != len(res.DB.Specs) {
		log.Fatalf("round trip lost specs: %d vs %d", len(back.Specs), len(res.DB.Specs))
	}
	for i := range back.Specs {
		a, b := res.DB.Specs[i], back.Specs[i]
		if a.Key() != b.Key() {
			log.Fatalf("spec %d key changed: %q vs %q", i, a.Key(), b.Key())
		}
		if !solver.Equiv(a.Constraint.Rel.Cond, b.Constraint.Rel.Cond) {
			log.Fatalf("spec %d condition changed across serialization", i)
		}
	}
	fmt.Println("reloaded database verified: all constraints and conditions intact")

	// The reloaded database detects exactly like the fresh one.
	target, err := seal.LoadFiles(corpus.Files)
	if err != nil {
		log.Fatal(err)
	}
	fresh := seal.Detect(target, res.DB.Specs)
	reloaded := seal.Detect(target, back.Specs)
	fmt.Printf("detection with fresh specs: %d reports; with reloaded specs: %d reports\n",
		len(fresh), len(reloaded))
	if len(fresh) != len(reloaded) {
		log.Fatal("reloaded database diverges from fresh one")
	}
}
