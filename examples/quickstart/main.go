// Quickstart: the paper's running example end to end.
//
// We feed SEAL the Fig. 3 security patch (buffer_prepare drops the error
// code of its risc-allocation helper; the fix propagates it). SEAL infers
// Spec 4.1 — "the -ENOMEM error code must reach the interface return when
// dma_alloc_coherent fails" — and then finds the same latent bug in a
// sibling implementation of vb2_ops.buf_prepare (the paper's
// tw68_buf_prepare, Table 1 row 9).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"seal"
	"seal/internal/cir"
	"seal/internal/patch"
	"seal/internal/report"
)

// The target tree: a correct sibling, a buggy sibling, and one
// implementation that never touches the DMA API (the spec must skip it).
const targetTree = `
struct cx23885_riscmem {
	int *cpu;
	int size;
};
struct vb2_buffer {
	struct cx23885_riscmem risc;
	int state;
};
struct vb2_ops {
	int (*buf_prepare)(struct vb2_buffer *vb);
};
int *dma_alloc_coherent(int size);

int saa7134_risc_alloc(struct cx23885_riscmem *risc) {
	risc->cpu = dma_alloc_coherent(risc->size);
	if (risc->cpu == NULL)
		return -ENOMEM;
	return 0;
}
int saa7134_buf_prepare(struct vb2_buffer *vb) {
	return saa7134_risc_alloc(&vb->risc);
}

int tw68_risc_alloc(struct cx23885_riscmem *risc) {
	risc->cpu = dma_alloc_coherent(risc->size);
	if (risc->cpu == NULL)
		return -ENOMEM;
	return 0;
}
int tw68_buf_prepare(struct vb2_buffer *vb) {
	tw68_risc_alloc(&vb->risc);
	return 0;
}

int plain_prepare(struct vb2_buffer *vb) {
	vb->state = 1;
	return 0;
}

struct vb2_ops saa7134_qops = { .buf_prepare = saa7134_buf_prepare, };
struct vb2_ops tw68_qops = { .buf_prepare = tw68_buf_prepare, };
struct vb2_ops plain_qops = { .buf_prepare = plain_prepare, };
`

func main() {
	// 1. The security patch: pre-patch (buggy) and post-patch (fixed)
	//    versions of the cx23885 driver (paper Fig. 3).
	fig3 := &seal.Patch{
		ID:          "cx23885-fix-error-code",
		Description: "media: cx23885: fix wrong error code in buffer_prepare",
		Pre:         map[string]string{"drivers/media/pci/cx23885.c": cir.Fig3PreSource},
		Post:        map[string]string{"drivers/media/pci/cx23885.c": cir.Fig3Source},
	}

	// 2. Infer interface specifications from the patch.
	res, err := seal.InferSpecs([]*seal.Patch{fig3}, seal.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Inferred %d specification(s) from patch %s:\n", len(res.DB.Specs), fig3.ID)
	for _, s := range res.DB.Specs {
		fmt.Println(" ", s)
	}

	// 3. Detect violations in the rest of the tree.
	target, err := seal.LoadFiles(map[string]string{"drivers/media/pci/tw68.c": targetTree})
	if err != nil {
		log.Fatal(err)
	}
	bugs := seal.Detect(target, res.DB.Specs)

	fmt.Printf("\n%d violation(s) found:\n\n", len(bugs))
	patches := map[string]*patch.Patch{fig3.ID: fig3}
	for _, b := range bugs {
		fmt.Println(report.Render(b, patches))
	}
}
