// Driver audit: the paper's headline workload at corpus scale.
//
// We generate a synthetic mini-Linux tree (DESIGN.md §6) with hundreds of
// drivers and seeded bugs across the seven Table 2 bug types, learn
// specifications from the corpus's historical security patches, audit the
// whole tree, and score the reports against exact ground truth — the RQ1
// experiment as a runnable program.
//
// Run with: go run ./examples/driver_audit
package main

import (
	"fmt"
	"log"
	"sort"

	"seal"
	"seal/internal/kernelgen"
	"seal/internal/report"
)

func main() {
	cfg := kernelgen.EvalConfig()
	corpus := kernelgen.Generate(cfg)
	fmt.Printf("corpus: %d files, %d historical patches, %d seeded latent bugs\n",
		len(corpus.Files), len(corpus.Patches), len(corpus.Bugs))

	// Learn from the patch history.
	res, err := seal.InferSpecs(corpus.Patches, seal.Options{Validate: true, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	t := res.Totals()
	fmt.Printf("specs: %d inferred (P-=%d P+=%d PΨ=%d PΩ=%d); %d patches yielded no relations\n",
		len(res.DB.Specs), t.PMinus, t.PPlus, t.PPsi, t.POmega, res.ZeroRelationPatches)

	// Audit the tree.
	target, err := seal.LoadFiles(corpus.Files)
	if err != nil {
		log.Fatal(err)
	}
	bugs := seal.Detect(target, res.DB.Specs)

	// Score against ground truth.
	gt := corpus.BugByFunc()
	tp, fp := 0, 0
	foundKinds := map[string]int{}
	found := map[string]bool{}
	for _, b := range bugs {
		if g, ok := gt[b.Fn.Name]; ok {
			tp++
			if !found[g.Func] {
				found[g.Func] = true
				foundKinds[g.Kind]++
			}
		} else {
			fp++
		}
	}
	fmt.Printf("\naudit: %d reports, %d TP / %d FP (precision %.1f%%), %d/%d distinct bugs found\n",
		len(bugs), tp, fp, 100*float64(tp)/float64(len(bugs)), len(found), len(gt))

	kinds := make([]string, 0, len(foundKinds))
	for k := range foundKinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Println("\nfound bugs by type:")
	for _, k := range kinds {
		fmt.Printf("  %-10s %d\n", k, foundKinds[k])
	}

	sum := report.Summarize(bugs)
	fmt.Println("\nreports by detector label:")
	for _, k := range sum.KindsSorted() {
		fmt.Printf("  %-12s %d\n", k, sum.ByKind[k])
	}
}
