// Ordering: the use-after-free example of paper Fig. 5 / Example 4.3.
//
// The patch merely swaps two statements — put_device was releasing the
// device before ida_free read pdev->dev.devt. No value-flow path is added
// or removed and no condition changes; only the flow order Ω of two use
// sites of the same interaction datum flips. SEAL's PΩ classification
// turns this into an order-precedence specification
// (∄ u1,u2 : v↪u1 ∧ v↪u2 ∧ u2 ≺ u1) and finds the same inverted ordering
// in a sibling platform driver.
//
// Run with: go run ./examples/ordering_uaf
package main

import (
	"fmt"
	"log"

	"seal"
	"seal/internal/cir"
	"seal/internal/report"
	"seal/internal/spec"
)

const siblingDrivers = `
struct device { int devt; int refcount; };
struct platform_device { struct device dev; };
struct ida { int bits; };
struct platform_driver {
	int (*probe)(struct platform_device *pdev);
	int (*remove)(struct platform_device *pdev);
};
void put_device(struct device *dev);
void ida_free(struct ida *ida, int id);
struct ida viacam_ida;
struct ida netup_ida;

int viacam_remove(struct platform_device *pdev) {
	put_device(&pdev->dev);
	ida_free(&viacam_ida, pdev->dev.devt);
	return 0;
}
int netup_remove(struct platform_device *pdev) {
	ida_free(&netup_ida, pdev->dev.devt);
	put_device(&pdev->dev);
	return 0;
}
struct platform_driver viacam_driver = { .remove = viacam_remove, };
struct platform_driver netup_driver = { .remove = netup_remove, };
`

func main() {
	fig5 := &seal.Patch{
		ID:          "telemetry-fix-device-put-order",
		Description: "platform: move put_device after the last use of pdev->dev",
		Pre:         map[string]string{"drivers/platform/telem.c": cir.Fig5PreSource},
		Post:        map[string]string{"drivers/platform/telem.c": cir.Fig5PostSource},
	}
	res, err := seal.InferSpecs([]*seal.Patch{fig5}, seal.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Inferred order specifications (paper Spec 4.3):")
	for _, s := range res.DB.Specs {
		if s.Constraint.Rel.Kind == spec.RelOrder {
			fmt.Println(" ", s)
		}
	}

	target, err := seal.LoadFiles(map[string]string{"drivers/platform/sibling.c": siblingDrivers})
	if err != nil {
		log.Fatal(err)
	}
	bugs := seal.Detect(target, res.DB.Specs)
	fmt.Printf("\n%d violation(s):\n\n", len(bugs))
	for _, b := range bugs {
		fmt.Println(report.Render(b, nil))
	}
	// viacam_remove inverts the order (the UAF); netup_remove is fine.
	for _, b := range bugs {
		if b.Fn.Name == "netup_remove" {
			log.Fatal("false positive on the correctly ordered driver")
		}
	}
}
