package seal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const loadDirSrcA = `
int helper_a(int x) {
	return x + 1;
}
`

const loadDirSrcB = `
int helper_b(int x) {
	return x * 2;
}
`

// TestLoadDirTable pins the corpus-walking contract: recursion into nested
// directories, .c-suffix filtering (including directories that happen to be
// named *.c), and the error paths for empty trees and unreadable files.
func TestLoadDirTable(t *testing.T) {
	tests := []struct {
		name      string
		setup     func(t *testing.T, root string)
		wantFiles []string // relative paths expected in Target.Files
		wantErr   string   // substring of expected error ("" = success)
	}{
		{
			name: "flat dir",
			setup: func(t *testing.T, root string) {
				writeFile(t, root, "a.c", loadDirSrcA)
				writeFile(t, root, "b.c", loadDirSrcB)
			},
			wantFiles: []string{"a.c", "b.c"},
		},
		{
			name: "nested dirs walked recursively",
			setup: func(t *testing.T, root string) {
				writeFile(t, root, "drivers/net/a.c", loadDirSrcA)
				writeFile(t, root, "drivers/usb/deep/b.c", loadDirSrcB)
			},
			wantFiles: []string{"drivers/net/a.c", "drivers/usb/deep/b.c"},
		},
		{
			name: "non-c files skipped",
			setup: func(t *testing.T, root string) {
				writeFile(t, root, "a.c", loadDirSrcA)
				writeFile(t, root, "README.md", "# not C\n")
				writeFile(t, root, "a.h", "int helper_a(int x);\n")
				writeFile(t, root, "Makefile", "obj-y += a.o\n")
			},
			wantFiles: []string{"a.c"},
		},
		{
			name: "directory named like a source file skipped",
			setup: func(t *testing.T, root string) {
				writeFile(t, root, "a.c", loadDirSrcA)
				if err := os.MkdirAll(filepath.Join(root, "weird.c"), 0o755); err != nil {
					t.Fatal(err)
				}
				writeFile(t, root, "weird.c/inner.c", loadDirSrcB)
			},
			wantFiles: []string{"a.c", "weird.c/inner.c"},
		},
		{
			name:    "empty tree is an error",
			setup:   func(t *testing.T, root string) {},
			wantErr: "no .c files",
		},
		{
			name: "only non-c files is an error",
			setup: func(t *testing.T, root string) {
				writeFile(t, root, "notes.txt", "nothing to parse\n")
			},
			wantErr: "no .c files",
		},
		{
			name: "unreadable file surfaces the error",
			setup: func(t *testing.T, root string) {
				// A dangling symlink with a .c name: Walk lists it but
				// ReadFile fails. (chmod tricks don't work when the test
				// runs as root.)
				if err := os.Symlink(filepath.Join(root, "missing-target.c"), filepath.Join(root, "bad.c")); err != nil {
					t.Skipf("symlinks unavailable: %v", err)
				}
			},
			wantErr: "bad.c",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			root := t.TempDir()
			tc.setup(t, root)
			target, err := LoadDir(root)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("expected error containing %q, got nil", tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(target.Files) != len(tc.wantFiles) {
				t.Fatalf("loaded %d files, want %d: %v", len(target.Files), len(tc.wantFiles), fileNames(target))
			}
			for _, f := range tc.wantFiles {
				if _, ok := target.Files[f]; !ok {
					t.Errorf("file %s missing from target (have %v)", f, fileNames(target))
				}
			}
			if target.Prog == nil || len(target.Prog.FuncList) == 0 {
				t.Error("target program is empty")
			}
		})
	}

	t.Run("nonexistent root is an error", func(t *testing.T) {
		if _, err := LoadDir(filepath.Join(t.TempDir(), "does-not-exist")); err == nil {
			t.Fatal("expected error for nonexistent root")
		}
	})
}

func writeFile(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func fileNames(target *Target) []string {
	var out []string
	for f := range target.Files {
		out = append(out, f)
	}
	return out
}
