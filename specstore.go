package seal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"seal/internal/cache"
	"seal/internal/detect"
	"seal/internal/specdb"
)

// This file threads the paged spec store (internal/specdb) through the
// detection pipeline. A store-backed run detects at region-group
// granularity: every group (all specs sharing one detection scope) is
// cached under its own key, fingerprinted by the group's own spec subset
// rather than the whole corpus, so editing one spec invalidates exactly
// the group that owns it and every other group replays from cache. The
// merged output is byte-identical to a whole-corpus run over the same
// specs — same report, same redacted manifest, same redacted metrics.

// ImportSpecStore imports a flat spec database into the store at path,
// creating the store when missing. Import is first-wins by spec key,
// matching SpecDB.Dedup, so re-importing an unchanged corpus is a no-op.
// Returns (added, skipped).
func ImportSpecStore(path string, db *SpecDB) (added, skipped int, err error) {
	return ImportSpecStoreOptions(path, db, specdb.Options{})
}

// ImportSpecStoreOptions is ImportSpecStore with an explicit store
// configuration: the group-commit fold policy governs how many imported
// specs ride in each WAL batch before folding into one B-tree commit,
// and the compaction threshold arms ratio-triggered background
// compaction for the duration of the import.
func ImportSpecStoreOptions(path string, db *SpecDB, opts specdb.Options) (added, skipped int, err error) {
	st, err := specdb.OpenOptions(path, opts)
	if errors.Is(err, os.ErrNotExist) {
		st, err = specdb.CreateOptions(path, opts)
	}
	if err != nil {
		return 0, 0, err
	}
	defer st.Close()
	return st.ImportSpecs(db.Specs)
}

// LoadSpecStoreSpecs opens the store at path read-only and materializes
// its full spec list in ordinal (import) order — the same order a flat
// file load produces — along with the snapshot sequence number the list
// was read at.
func LoadSpecStoreSpecs(path string) ([]*Spec, uint64, error) {
	st, err := specdb.OpenReadOnly(path)
	if err != nil {
		return nil, 0, err
	}
	defer st.Close()
	snap := st.Current()
	specs, err := snap.Specs()
	if err != nil {
		return nil, 0, err
	}
	return specs, snap.Seq(), nil
}

// detectGroupKey is the TierDetectGroup fingerprint chain: schema version
// (inside cache.Key) → seal analysis version → config → target sources →
// the group's scope → the group's own spec subset. Only the last part
// changes when a spec inside the group is edited.
func detectGroupKey(targetHash, scope, groupHash string, limits Limits) string {
	return cache.Key(
		"tier:"+cache.TierDetectGroup,
		"seal:"+Version,
		detectConfigPart(limits),
		"target:"+targetHash,
		"scope:"+scope,
		"specs:"+groupHash,
	)
}

// groupCacheEntry is the TierDetectGroup payload: one region group's
// complete detection outcome with group-local spec ordinals, enough to
// replay the group without live IR and translate its bug records into any
// corpus that contains the same group.
type groupCacheEntry struct {
	Scope     string            `json:"scope"`
	Bugs      []detect.ShardBug `json:"bugs,omitempty"`
	Units     []detect.UnitRec  `json:"units,omitempty"`
	Stats     detect.Stats      `json:"stats"`
	SatChecks int64             `json:"sat_checks"`
}

// GroupedStats reports how incremental a grouped detection was.
type GroupedStats struct {
	// Groups is the region-group count of the corpus.
	Groups int
	// Warm counts groups replayed from the memo or the persistent cache.
	Warm int
	// Computed counts groups that ran on the substrate.
	Computed int
}

// DetectGrouped runs a region-group-cached detection pinned to this
// resident substrate: each group replays from the group memo or the
// persistent cache when its own spec subset is unchanged, and only the
// remaining groups compute. The merged result is byte-identical to
// Detect over the same specs.
func (r *Resident) DetectGrouped(ctx context.Context, specs []*Spec, opts DetectRunOptions) (*DetectResult, GroupedStats, error) {
	pc, err := openCache(opts.CacheDir, opts.CacheReadOnly, opts.CacheMaxBytes)
	if err != nil {
		return nil, GroupedStats{}, err
	}
	return detectGroupedCore(ctx, r.TargetHash, func() (*Resident, error) { return r, nil },
		specs, opts, pc, &r.gmemo)
}

// DetectFilesGrouped is the one-shot form of DetectGrouped: when every
// region group hits the persistent cache the sources are fingerprinted
// but never parsed; otherwise a throwaway Resident is built, primed from
// the cache, and only the missed groups compute.
func DetectFilesGrouped(ctx context.Context, files map[string]string, specs []*Spec, opts DetectRunOptions) (*DetectResult, GroupedStats, error) {
	pc, err := openCache(opts.CacheDir, opts.CacheReadOnly, opts.CacheMaxBytes)
	if err != nil {
		return nil, GroupedStats{}, err
	}
	targetHash := cache.FileSetHash(files)
	acquire := func() (*Resident, error) {
		t, err := LoadFiles(files)
		if err != nil {
			return nil, err
		}
		r := NewResident(t)
		r.primeRegions(pc)
		return r, nil
	}
	return detectGroupedCore(ctx, targetHash, acquire, specs, opts, pc, nil)
}

// DetectDirGrouped is DetectFilesGrouped over the tree at root.
func DetectDirGrouped(ctx context.Context, root string, specs []*Spec, opts DetectRunOptions) (*DetectResult, GroupedStats, error) {
	files, err := ReadSourceDir(root)
	if err != nil {
		return nil, GroupedStats{}, err
	}
	return DetectFilesGrouped(ctx, files, specs, opts)
}

// detectGroupedCore is the shared grouped flow: probe every group's key
// against the memo and the persistent cache, acquire the substrate only
// when at least one group missed, run the missed groups sequentially in
// global group order, and fold all groups — replayed and computed alike —
// into one result exactly the way the shard coordinator merges shards
// (group-local ordinals translated through the group's spec indices,
// records interleaved by MergeShardRecs, robustness lists in group
// order). acquire is called at most once; memo may be nil (no resident
// memo tier, persistent cache only).
func detectGroupedCore(ctx context.Context, targetHash string, acquire func() (*Resident, error), specs []*Spec, opts DetectRunOptions, pc *cache.Cache, memo *sync.Map) (*DetectResult, GroupedStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	groups := detect.ScopeGroups(specs)
	gs := GroupedStats{Groups: len(groups)}

	type groupState struct {
		scope  string
		subset []*Spec
		key    string // "" = unfingerprintable, never cached
		ent    *groupCacheEntry
	}
	states := make([]groupState, len(groups))
	for gi, g := range groups {
		st := groupState{scope: specs[g[0]].Scope(), subset: make([]*Spec, len(g))}
		for k, si := range g {
			st.subset[k] = specs[si]
		}
		if ghash, err := SpecSetHash(st.subset); err == nil {
			st.key = detectGroupKey(targetHash, st.scope, ghash, opts.Limits)
		}
		states[gi] = st
	}

	// Probe phase: every group key against memo then disk, before any
	// parsing — a fully warm corpus never touches the substrate.
	for gi := range states {
		st := &states[gi]
		if st.key == "" {
			continue
		}
		if memo != nil {
			if v, ok := memo.Load(st.key); ok {
				st.ent = v.(*groupCacheEntry)
				continue
			}
		}
		if pc.Enabled() {
			var ent groupCacheEntry
			if pc.Get(cache.TierDetectGroup, st.key, &ent) {
				st.ent = &ent
				if memo != nil {
					memo.Store(st.key, &ent)
				}
			}
		}
	}

	var r *Resident
	for gi := range states {
		if states[gi].ent == nil {
			var err error
			if r, err = acquire(); err != nil {
				return nil, gs, err
			}
			break
		}
	}

	groupLimits := opts.Limits
	groupLimits.MaxFailures = 0 // global threshold, enforced after the merge

	res := &detect.Result{}
	var all []detect.ShardBug
	var runErr error
	cleanComputed := false
	for gi := range states {
		st := &states[gi]
		if runErr != nil {
			break // run-level abort (context): stop scheduling groups
		}
		if st.ent != nil {
			gs.Warm++
			// Replay the group's unit spans exactly like a whole-corpus
			// cache replay, so warm and cold manifests agree.
			for _, u := range st.ent.Units {
				if span := opts.Obs.Unit("detect", u.ID); span != nil {
					span.AddStage("slice", 0, 0)
					span.AddStage("solve", 0, 0)
					span.SetCounts(u.Specs, u.Bugs)
					span.End()
				}
			}
			foldGroup(res, &all, groups[gi], st.ent.Bugs, st.ent.Units, nil, nil, st.ent.Stats, st.ent.SatChecks)
			continue
		}
		gs.Computed++
		stats0 := r.sh.Stats()
		gres, gerr := r.sh.DetectParallelCtxObs(ctx, st.subset, opts.Workers, groupLimits, opts.Obs)
		gres.Stats = gres.Stats.Sub(stats0)
		sbs := detect.ShardBugsOf(gres.Bugs, gres.Recs, st.subset)
		clean := gerr == nil && len(gres.Failures) == 0 && len(gres.Degraded) == 0
		if clean && st.key != "" {
			ent := &groupCacheEntry{
				Scope:     st.scope,
				Bugs:      sbs,
				Units:     gres.Units,
				Stats:     gres.Stats,
				SatChecks: gres.SatChecks,
			}
			cleanComputed = true
			if memo != nil {
				memo.Store(st.key, ent)
			}
			if pc.Enabled() {
				pc.Put(cache.TierDetectGroup, st.key, ent)
			}
		} else if pc.Enabled() {
			pc.NoteUncacheable()
		}
		foldGroup(res, &all, groups[gi], sbs, gres.Units, gres.Failures, gres.Degraded, gres.Stats, gres.SatChecks)
		runErr = gerr
	}

	res.Recs = detect.MergeShardRecs(all)
	sort.Slice(res.Units, func(i, j int) bool { return res.Units[i].ID < res.Units[j].ID })
	res.Stats.QuarantinedUnits = int64(len(res.Failures))
	res.Stats.DegradedUnits = int64(len(res.Degraded))
	opts.Obs.SetUnitsTotal(len(groups))
	if pc.Enabled() {
		if cleanComputed && r != nil {
			pc.Put(cache.TierRegions, regionsKey(targetHash),
				r.sh.RegionsSnapshot(detect.DefaultMaxCalleeDepth))
		}
		res.PCache = pc.Stats()
	}
	if runErr != nil {
		return res, gs, runErr
	}
	if opts.Limits.MaxFailures > 0 && len(res.Failures) > opts.Limits.MaxFailures {
		return res, gs, fmt.Errorf("detect: aborted after %d quarantined units (max %d)",
			len(res.Failures), opts.Limits.MaxFailures)
	}
	if err := ctx.Err(); err != nil {
		return res, gs, err
	}
	return res, gs, nil
}

// foldGroup accumulates one group's outcome into the merged result,
// translating group-local spec ordinals to global ones through the
// group's spec-index slice (mirroring the shard coordinator's fold).
func foldGroup(res *detect.Result, all *[]detect.ShardBug, specIdx []int, bugs []detect.ShardBug, units []detect.UnitRec, failures []*FailureRecord, degraded []Degradation, stats detect.Stats, satChecks int64) {
	for _, sb := range bugs {
		if sb.Ord < 0 || sb.Ord >= len(specIdx) {
			continue // malformed cached record; never panic on it
		}
		sb.Ord = specIdx[sb.Ord]
		*all = append(*all, sb)
	}
	res.Units = append(res.Units, units...)
	res.Failures = append(res.Failures, failures...)
	res.Degraded = append(res.Degraded, degraded...)
	res.Stats = res.Stats.Merge(stats)
	res.SatChecks += satChecks
}
