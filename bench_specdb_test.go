package seal

// Benchmark and standing speed assertion for the paged spec store's
// incremental-recompute path. The store's value proposition is that a
// one-spec edit re-detects only the region group owning the edited spec
// while every sibling group replays from the persistent cache — so the
// bar is quantitative: the median edit-recompute run must be at least 3×
// faster than a full cold detection. Record results in BENCH_detect.json.

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"seal/internal/spec"
	"seal/internal/specdb"
)

// TestSpecEditRecomputeSpeedup enforces the spec store's acceptance bar:
// editing one spec in place and re-detecting on a resident substrate (the
// serve daemon's /specs flow — live IR, group memo warm) must be at least
// 3× faster than a full cold detection over the eval corpus, because only
// the region group owning the edited spec computes. Byte-identity of the
// recomputed output is pinned elsewhere (difftest RunSpecEditCase and the
// serve/CLI tests); this test is purely about the speed claim.
func TestSpecEditRecomputeSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	files, specs := benchDetectCorpus(t)
	ctx := context.Background()

	storePath := filepath.Join(t.TempDir(), "specs.specdb")
	if _, _, err := ImportSpecStore(storePath, &SpecDB{Specs: specs}); err != nil {
		t.Fatal(err)
	}
	stored, _, err := LoadSpecStoreSpecs(storePath)
	if err != nil {
		t.Fatal(err)
	}

	const runs = 5
	cold := medianRunNs(t, runs, func() {
		res, gs, err := DetectFilesGrouped(ctx, files, stored, DetectRunOptions{CacheDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		if res.PCache.Hits != 0 || gs.Warm != 0 {
			t.Fatal("cold run hit the cache")
		}
	})

	// Build the resident substrate once and warm its group memo — the
	// daemon's steady state — then measure successive one-spec edits.
	// Each edit rewrites the same key with fresh content, so exactly one
	// group fingerprint changes per run.
	target, err := LoadFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	r := NewResident(target)
	if _, _, err := r.DetectGrouped(ctx, stored, DetectRunOptions{}); err != nil {
		t.Fatal(err)
	}
	st, err := specdb.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	base := *stored[0]
	edition := 0
	var cur []*spec.Spec
	edit := func() {
		edition++
		edited := base
		edited.OriginPatch = fmt.Sprintf("%s-edit%d", base.OriginPatch, edition)
		created, err := st.UpsertSpec(&edited)
		if err != nil {
			t.Fatal(err)
		}
		if created {
			t.Fatal("edit created a new key instead of replacing")
		}
		cur, err = st.Current().Specs()
		if err != nil {
			t.Fatal(err)
		}
	}
	warm := medianRunNs(t, runs, func() {
		edit()
		res, gs, err := r.DetectGrouped(ctx, cur, DetectRunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if gs.Computed != 1 || gs.Warm != gs.Groups-1 {
			t.Fatalf("edit run not incremental: %+v", gs)
		}
		if len(res.Recs) == 0 {
			t.Fatal("edit run produced no reports")
		}
	})

	speedup := cold / warm
	t.Logf("full cold median %.2fms, one-spec-edit median %.2fms, speedup %.1fx",
		cold/1e6, warm/1e6, speedup)
	if speedup < 3 {
		t.Errorf("edit recompute is only %.2fx faster than full cold detect, want >= 3x", speedup)
	}
}
