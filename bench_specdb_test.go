package seal

// Benchmark and standing speed assertion for the paged spec store's
// incremental-recompute path. The store's value proposition is that a
// one-spec edit re-detects only the region group owning the edited spec
// while every sibling group replays from the persistent cache — so the
// bar is quantitative: the median edit-recompute run must be at least 3×
// faster than a full cold detection. Record results in BENCH_detect.json.

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"seal/internal/spec"
	"seal/internal/specdb"
)

// TestSpecEditRecomputeSpeedup enforces the spec store's acceptance bar:
// editing one spec in place and re-detecting on a resident substrate (the
// serve daemon's /specs flow — live IR, group memo warm) must be at least
// 3× faster than a full cold detection over the eval corpus, because only
// the region group owning the edited spec computes. Byte-identity of the
// recomputed output is pinned elsewhere (difftest RunSpecEditCase and the
// serve/CLI tests); this test is purely about the speed claim.
func TestSpecEditRecomputeSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	files, specs := benchDetectCorpus(t)
	ctx := context.Background()

	storePath := filepath.Join(t.TempDir(), "specs.specdb")
	if _, _, err := ImportSpecStore(storePath, &SpecDB{Specs: specs}); err != nil {
		t.Fatal(err)
	}
	stored, _, err := LoadSpecStoreSpecs(storePath)
	if err != nil {
		t.Fatal(err)
	}

	const runs = 5
	cold := medianRunNs(t, runs, func() {
		res, gs, err := DetectFilesGrouped(ctx, files, stored, DetectRunOptions{CacheDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		if res.PCache.Hits != 0 || gs.Warm != 0 {
			t.Fatal("cold run hit the cache")
		}
	})

	// Build the resident substrate once and warm its group memo — the
	// daemon's steady state — then measure successive one-spec edits.
	// Each edit rewrites the same key with fresh content, so exactly one
	// group fingerprint changes per run.
	target, err := LoadFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	r := NewResident(target)
	if _, _, err := r.DetectGrouped(ctx, stored, DetectRunOptions{}); err != nil {
		t.Fatal(err)
	}
	st, err := specdb.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	base := *stored[0]
	edition := 0
	var cur []*spec.Spec
	edit := func() {
		edition++
		edited := base
		edited.OriginPatch = fmt.Sprintf("%s-edit%d", base.OriginPatch, edition)
		created, err := st.UpsertSpec(&edited)
		if err != nil {
			t.Fatal(err)
		}
		if created {
			t.Fatal("edit created a new key instead of replacing")
		}
		cur, err = st.Current().Specs()
		if err != nil {
			t.Fatal(err)
		}
	}
	warm := medianRunNs(t, runs, func() {
		edit()
		res, gs, err := r.DetectGrouped(ctx, cur, DetectRunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if gs.Computed != 1 || gs.Warm != gs.Groups-1 {
			t.Fatalf("edit run not incremental: %+v", gs)
		}
		if len(res.Recs) == 0 {
			t.Fatal("edit run produced no reports")
		}
	})

	speedup := cold / warm
	t.Logf("full cold median %.2fms, one-spec-edit median %.2fms, speedup %.1fx",
		cold/1e6, warm/1e6, speedup)
	if speedup < 3 {
		t.Errorf("edit recompute is only %.2fx faster than full cold detect, want >= 3x", speedup)
	}
}

// benchIngestSpecs synthesizes a bulk-ingest corpus: n distinct-keyed
// clones of the eval corpus's specs, interface names rotated so every
// clone lands under its own scope key.
func benchIngestSpecs(tb testing.TB, n int) []*Spec {
	tb.Helper()
	_, base := benchDetectCorpus(tb)
	out := make([]*Spec, 0, n)
	for i := 0; len(out) < n; i++ {
		sp := *base[i%len(base)]
		sp.Iface = fmt.Sprintf("bench.ingest%04d.ops", i)
		sp.API = ""
		sp.ID = fmt.Sprintf("%s-ingest%04d", sp.ID, i)
		out = append(out, &sp)
	}
	return out
}

// ingestUnbatched is the pre-group-commit write path: one durable store
// transaction (WAL append + immediate fold into a B-tree commit) per
// spec.
func ingestUnbatched(tb testing.TB, path string, specs []*Spec) {
	tb.Helper()
	st, err := specdb.Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	defer st.Close()
	for _, sp := range specs {
		if _, err := st.UpsertSpec(sp); err != nil {
			tb.Fatal(err)
		}
	}
}

// ingestBatched is the group-commit path: every spec rides the WAL and
// the default commit policy folds the batch into amortized commits.
func ingestBatched(tb testing.TB, path string, specs []*Spec) {
	tb.Helper()
	if _, _, err := ImportSpecStoreOptions(path, &SpecDB{Specs: specs}, specdb.Options{}); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkSpecIngest pins the bulk-ingestion claim behind the WAL
// group-commit path: "cold" commits every spec as its own transaction,
// "batched" is the same corpus through ImportSpecs with the default
// commit policy. Record results in BENCH_detect.json.
func BenchmarkSpecIngest(b *testing.B) {
	specs := benchIngestSpecs(b, 1000)
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			path := filepath.Join(b.TempDir(), "ingest.specdb")
			b.StartTimer()
			ingestUnbatched(b, path, specs)
		}
	})
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			path := filepath.Join(b.TempDir(), "ingest.specdb")
			b.StartTimer()
			ingestBatched(b, path, specs)
		}
	})
}

// TestSpecIngestSpeedup enforces the group-commit acceptance bar: bulk
// ingestion of 1k specs through the batched import path must be at least
// 10× faster than committing each spec as its own transaction, and both
// paths must produce stores that read back the identical spec list.
func TestSpecIngestSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	specs := benchIngestSpecs(t, 1000)
	dir := t.TempDir()

	const runs = 5
	cold := medianRunNs(t, runs, func() {
		ingestUnbatched(t, filepath.Join(t.TempDir(), "cold.specdb"), specs)
	})
	batched := medianRunNs(t, runs, func() {
		ingestBatched(t, filepath.Join(t.TempDir(), "batched.specdb"), specs)
	})

	// Equivalence: both write paths materialize the same database in the
	// same import order.
	coldPath := filepath.Join(dir, "eq-cold.specdb")
	batchPath := filepath.Join(dir, "eq-batched.specdb")
	ingestUnbatched(t, coldPath, specs)
	ingestBatched(t, batchPath, specs)
	coldSpecs, _, err := LoadSpecStoreSpecs(coldPath)
	if err != nil {
		t.Fatal(err)
	}
	batchSpecs, _, err := LoadSpecStoreSpecs(batchPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(coldSpecs) != len(specs) || len(batchSpecs) != len(specs) {
		t.Fatalf("read back %d cold / %d batched specs, want %d", len(coldSpecs), len(batchSpecs), len(specs))
	}
	for i := range coldSpecs {
		if coldSpecs[i].Key() != batchSpecs[i].Key() {
			t.Fatalf("spec %d: cold key %q != batched key %q", i, coldSpecs[i].Key(), batchSpecs[i].Key())
		}
	}

	speedup := cold / batched
	t.Logf("per-spec-commit median %.2fms, group-commit median %.2fms, speedup %.1fx",
		cold/1e6, batched/1e6, speedup)
	if speedup < 10 {
		t.Errorf("batched ingest is only %.2fx faster than per-spec commits, want >= 10x", speedup)
	}
}
