package seal

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"seal/internal/cache"
	"seal/internal/detect"
	"seal/internal/infer"
)

// Version identifies the analysis semantics baked into every persistent
// cache fingerprint. cache.SchemaVersion covers the on-disk entry shape;
// this covers the analysis itself. Bump it whenever inference or detection
// can produce different results for the same inputs (new relation kinds,
// changed path classification, different dedup): old entries become
// unreachable and every run recomputes.
const Version = "0.5"

// CacheStats is a snapshot of the persistent analysis cache's counters:
// hits, misses, writes, corrupt entries degraded to misses, bytes moved,
// and results deliberately not written (degraded/partial).
type CacheStats = cache.Stats

// ClearCache removes every object the persistent analysis cache owns under
// dir — only the cache's own subtree, never other files sharing the
// directory. Missing directories are fine.
func ClearCache(dir string) error { return cache.Clear(dir) }

// openCache opens the configured cache; an empty dir is the disabled cache
// (nil, on which every operation is a no-op). maxBytes > 0 bounds the
// cache's on-disk size by LRU eviction.
func openCache(dir string, readOnly bool, maxBytes int64) (*cache.Cache, error) {
	if dir == "" {
		return nil, nil
	}
	return cache.OpenLimited(dir, readOnly, maxBytes)
}

// inferConfigPart renders the inference knobs that change results for
// identical sources. Dynamic budget limits (deadline, steps, memory) are
// deliberately excluded: a result is only ever cached when it completed
// un-degraded, and an un-degraded result is budget-invariant. The
// deterministic caps (MaxPaths, MaxDepth) truncate silently, so they are
// part of the key.
func inferConfigPart(opts Options) string {
	return fmt.Sprintf("cfg:validate=%t:maxpaths=%d:maxdepth=%d",
		opts.Validate, opts.Limits.MaxPaths, opts.Limits.MaxDepth)
}

// inferPatchKey is the TierInfer fingerprint chain: schema version (inside
// cache.Key) → seal analysis version → config → patch identity → source
// bytes of both patch sides.
func inferPatchKey(p *Patch, opts Options) string {
	return cache.Key(
		"tier:"+cache.TierInfer,
		"seal:"+Version,
		inferConfigPart(opts),
		"patch:"+p.ID,
		"pre:"+cache.FileSetHash(p.Pre),
		"post:"+cache.FileSetHash(p.Post),
	)
}

// inferRunKey fingerprints a whole inference run (corpus in input order +
// config) for the run-summary tier.
func inferRunKey(patchKeys []string) string {
	parts := make([]string, 0, len(patchKeys)+1)
	parts = append(parts, "tier:"+cache.TierInferRun)
	parts = append(parts, patchKeys...)
	return cache.Key(parts...)
}

// inferCacheEntry is the TierInfer payload: one patch's validated specs
// (conditions in tree form via SpecDB's JSON round trip) and its relation
// statistics.
type inferCacheEntry struct {
	DB    *SpecDB     `json:"db"`
	Stats infer.Stats `json:"stats"`
}

// inferRunEntry is the TierInferRun payload: run-level counters a fully
// warm run replays so its exported metrics match the cold run's.
type inferRunEntry struct {
	SatChecks int64 `json:"sat_checks"`
}

// detectConfigPart renders the detection knobs that change results for
// identical sources; same exclusion rule as inferConfigPart.
func detectConfigPart(limits Limits) string {
	return fmt.Sprintf("cfg:maxpaths=%d:maxdepth=%d:calleedepth=%d",
		limits.MaxPaths, limits.MaxDepth, detect.DefaultMaxCalleeDepth)
}

// SpecSetHash fingerprints a spec list in order, conditions included — the
// spec-side identity in detection cache keys and serve request envelopes.
func SpecSetHash(specs []*Spec) (string, error) {
	return (&SpecDB{Specs: specs}).Hash()
}

// TargetHash fingerprints an in-memory source set — the target-side
// identity in detection cache keys and serve request envelopes.
func TargetHash(files map[string]string) string { return cache.FileSetHash(files) }

// detectKey is the TierDetect fingerprint chain: schema version (inside
// cache.Key) → seal analysis version → config → target sources → spec set.
func detectKey(targetHash, specHash string, limits Limits) string {
	return cache.Key(
		"tier:"+cache.TierDetect,
		"seal:"+Version,
		detectConfigPart(limits),
		"target:"+targetHash,
		"specs:"+specHash,
	)
}

// detectKeyFor builds the detection key for a spec list, or "" when the
// specs cannot be fingerprinted (such a run is simply not memoizable).
func detectKeyFor(targetHash string, specs []*Spec, limits Limits) string {
	specHash, err := SpecSetHash(specs)
	if err != nil {
		return ""
	}
	return detectKey(targetHash, specHash, limits)
}

// detectCacheEntry is the TierDetect payload: everything a warm run needs
// to reproduce a cold run's observable output — rendered-report records,
// per-unit manifest summaries, the deterministic substrate counters, and
// the solver-check delta — with no live IR.
type detectCacheEntry struct {
	Recs      []detect.BugRec  `json:"recs"`
	Units     []detect.UnitRec `json:"units"`
	Stats     detect.Stats     `json:"stats"`
	SatChecks int64            `json:"sat_checks"`
	// Shard is the wire form of Recs (dedup key, producing-spec identity,
	// spec ordinal per record) that a shard executor returns to its
	// coordinator. Written by every clean run since the scale-out tier
	// landed; entries predating it have Shard == nil and simply cannot be
	// replayed for shard requests when Recs is non-empty (plain Detect
	// replay is unaffected).
	Shard []detect.ShardBug `json:"shard,omitempty"`
}

// shardReplayable reports whether a cached entry carries enough to answer
// a shard request: either the wire records are present, or there were no
// bugs at all (nothing to carry).
func shardReplayable(ent *detectCacheEntry) bool {
	return ent != nil && (ent.Shard != nil || len(ent.Recs) == 0)
}

// regionsKey is the TierRegions fingerprint: target content and closure
// depth only, so the artifact survives spec-DB changes.
func regionsKey(targetHash string) string {
	return cache.Key(
		"tier:"+cache.TierRegions,
		"seal:"+Version,
		fmt.Sprintf("calleedepth=%d", detect.DefaultMaxCalleeDepth),
		"target:"+targetHash,
	)
}

// ReadSourceDir reads every .c file under root (recursively) into a
// name → source map, the raw-bytes form a cached detection run fingerprints
// before any parsing happens.
func ReadSourceDir(root string) (map[string]string, error) {
	files := make(map[string]string)
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".c") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		files[rel] = string(data)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("seal: no .c files under %s", root)
	}
	return files, nil
}

// DetectRunOptions configures a cached, budgeted detection run.
type DetectRunOptions struct {
	// Workers is the concurrent detection worker count over one shared
	// substrate (output is identical at any count).
	Workers int
	// Limits is the per-unit resource budget.
	Limits Limits
	// Obs, when non-nil, records one unit span per region group — live or
	// replayed from cache — so warm and cold manifests agree.
	Obs *Recorder
	// CacheDir enables the persistent analysis cache rooted there; empty
	// disables it.
	CacheDir string
	// CacheReadOnly serves hits but never writes (shared or archived
	// caches).
	CacheReadOnly bool
	// CacheMaxBytes bounds the persistent cache's total on-disk size;
	// exceeding it evicts least-recently-used entries. 0 = unbounded.
	CacheMaxBytes int64
}

// DetectDirCached runs detection over the tree at root with an optional
// persistent cache. On a warm hit the sources are fingerprinted but never
// parsed: the result (report records, unit summaries, substrate counters,
// solver-check delta) is replayed from disk, byte-identical to the cold
// run's observable output. Degraded or quarantined runs are never written
// to the cache.
func DetectDirCached(ctx context.Context, root string, specs []*Spec, opts DetectRunOptions) (*DetectResult, error) {
	files, err := ReadSourceDir(root)
	if err != nil {
		return nil, err
	}
	return DetectFilesCached(ctx, files, specs, opts)
}

// DetectFilesCached is DetectDirCached over an in-memory source set. It is
// the one-shot form of the resident flow: a warm hit replays from disk
// before any parsing happens; a miss builds a throwaway Resident, primes
// its region closures from the cache, and runs through the same compute
// core a long-running service uses.
func DetectFilesCached(ctx context.Context, files map[string]string, specs []*Spec, opts DetectRunOptions) (*DetectResult, error) {
	pc, err := openCache(opts.CacheDir, opts.CacheReadOnly, opts.CacheMaxBytes)
	if err != nil {
		return nil, err
	}
	targetHash := cache.FileSetHash(files)
	var key string
	if pc.Enabled() {
		key = detectKeyFor(targetHash, specs, opts.Limits)
		if key != "" {
			var ent detectCacheEntry
			if pc.Get(cache.TierDetect, key, &ent) {
				return replayDetect(&ent, opts.Obs, pc), nil
			}
		}
	}
	t, err := LoadFiles(files)
	if err != nil {
		return nil, err
	}
	r := NewResident(t)
	r.primeRegions(pc)
	res, _, runErr := r.runDetect(ctx, specs, opts, pc, key)
	return res, runErr
}

// replayDetect reconstructs a DetectResult from a cache entry, re-recording
// one OK unit span per region group (zero-duration slice/solve stages, the
// original spec/bug counts) so the redacted manifest of a warm run is
// byte-identical to the cold run's. Bugs stays nil — rendering goes through
// Recs, the single render path.
func replayDetect(ent *detectCacheEntry, rec *Recorder, pc *cache.Cache) *DetectResult {
	rec.SetUnitsTotal(len(ent.Units))
	for _, u := range ent.Units {
		if span := rec.Unit("detect", u.ID); span != nil {
			span.AddStage("slice", 0, 0)
			span.AddStage("solve", 0, 0)
			span.SetCounts(u.Specs, u.Bugs)
			span.End()
		}
	}
	res := &detect.Result{
		Recs:      ent.Recs,
		Units:     ent.Units,
		Stats:     ent.Stats,
		SatChecks: ent.SatChecks,
	}
	res.PCache = pc.Stats()
	return res
}
