package callgraph

import (
	"testing"

	"seal/internal/cir"
	"seal/internal/ir"
)

const multiImplSrc = `
struct vb2_buffer { int n; };
struct vb2_ops { int (*buf_prepare)(struct vb2_buffer *vb); };
int prep_a(struct vb2_buffer *vb) { return 0; }
int prep_b(struct vb2_buffer *vb) { return 1; }
int unrelated(struct vb2_buffer *vb) { return 2; }
struct vb2_ops ops_a = { .buf_prepare = prep_a, };
struct vb2_ops ops_b = { .buf_prepare = prep_b, };
int dispatch(struct vb2_ops *ops, struct vb2_buffer *vb) {
	return ops->buf_prepare(vb);
}
int direct(struct vb2_buffer *vb) {
	return prep_a(vb);
}
`

func buildGraph(t *testing.T, src string) (*ir.Program, *Graph) {
	t.Helper()
	f, err := cir.ParseFile("test.c", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.NewProgram(f)
	if err != nil {
		t.Fatal(err)
	}
	return p, Build(p)
}

func callIn(p *ir.Program, fnName string) *ir.Stmt {
	for _, s := range p.Funcs[fnName].Stmts() {
		if s.Kind == ir.StCall {
			return s
		}
	}
	return nil
}

func TestDirectCallResolution(t *testing.T) {
	p, g := buildGraph(t, multiImplSrc)
	call := callIn(p, "direct")
	targets := g.CalleesOf(call)
	if len(targets) != 1 || targets[0].Name != "prep_a" {
		t.Fatalf("direct call targets: %v", names(targets))
	}
}

func TestIndirectCallFieldResolution(t *testing.T) {
	p, g := buildGraph(t, multiImplSrc)
	call := callIn(p, "dispatch")
	targets := g.CalleesOf(call)
	if len(targets) != 2 {
		t.Fatalf("indirect targets: %v (want prep_a, prep_b)", names(targets))
	}
	if targets[0].Name != "prep_a" || targets[1].Name != "prep_b" {
		t.Fatalf("indirect targets: %v", names(targets))
	}
	// unrelated has the same signature but is never ops-registered: the
	// field-based resolution must exclude it.
	for _, tg := range targets {
		if tg.Name == "unrelated" {
			t.Error("field-based resolution leaked an unregistered function")
		}
	}
}

func TestCallersOf(t *testing.T) {
	p, g := buildGraph(t, multiImplSrc)
	prepA := p.Funcs["prep_a"]
	sites := g.CallersOf(prepA)
	if len(sites) != 2 {
		t.Fatalf("prep_a caller sites = %d, want 2 (dispatch + direct)", len(sites))
	}
}

func TestImplsOfInterface(t *testing.T) {
	_, g := buildGraph(t, multiImplSrc)
	impls := g.ImplsOfInterface("vb2_ops", "buf_prepare")
	if len(impls) != 2 {
		t.Fatalf("impls: %v", names(impls))
	}
}

func TestReachableWithin(t *testing.T) {
	p, g := buildGraph(t, `
void leaf(int x) { }
void mid(int x) { leaf(x); }
void top(int x) { mid(x); }
void far(int x) { top(x); }
`)
	mid := p.Funcs["mid"]
	r1 := g.ReachableWithin([]*ir.Func{mid}, 1)
	if !r1[p.Funcs["leaf"]] || !r1[p.Funcs["top"]] {
		t.Error("depth-1 should include direct callee and caller")
	}
	if r1[p.Funcs["far"]] {
		t.Error("depth-1 must not include depth-2 caller")
	}
	r2 := g.ReachableWithin([]*ir.Func{mid}, 2)
	if !r2[p.Funcs["far"]] {
		t.Error("depth-2 should include far")
	}
}

func names(fns []*ir.Func) []string {
	var out []string
	for _, f := range fns {
		out = append(out, f.Name)
	}
	return out
}
