// Package callgraph builds the program call graph. Direct calls resolve by
// name; indirect calls through function pointers resolve with a multi-layer
// type analysis analogue: the (struct type, field name) pair of the loaded
// function pointer selects exactly the functions registered for that field
// in ops tables, falling back to signature matching when the struct type is
// unknown (paper §6.4.1, §7 "Indirect calls are resolved by type analysis").
package callgraph

import (
	"sort"

	"seal/internal/cir"
	"seal/internal/ir"
)

// Graph is the call graph.
type Graph struct {
	Prog *ir.Program

	// Callees maps each call statement to its possible targets (defined
	// functions only; external APIs have no body to enter).
	Callees map[*ir.Stmt][]*ir.Func
	// CallerSites maps each defined function to the call statements that
	// may invoke it.
	CallerSites map[*ir.Func][]*ir.Stmt

	// byField indexes ops-table registrations: struct -> field -> impls.
	byField map[string]map[string][]*ir.Func
	// bySig indexes ops-registered functions by signature key.
	bySig map[string][]*ir.Func
}

// Build constructs the call graph for prog.
func Build(prog *ir.Program) *Graph {
	g := &Graph{
		Prog:        prog,
		Callees:     make(map[*ir.Stmt][]*ir.Func),
		CallerSites: make(map[*ir.Func][]*ir.Stmt),
		byField:     make(map[string]map[string][]*ir.Func),
		bySig:       make(map[string][]*ir.Func),
	}
	for _, oa := range prog.OpsAssigns {
		fn, ok := prog.Funcs[oa.FuncName]
		if !ok {
			continue
		}
		m := g.byField[oa.StructName]
		if m == nil {
			m = make(map[string][]*ir.Func)
			g.byField[oa.StructName] = m
		}
		if !containsFunc(m[oa.FieldName], fn) {
			m[oa.FieldName] = append(m[oa.FieldName], fn)
		}
		key := cir.SigString(fn.Decl.Sig())
		if !containsFunc(g.bySig[key], fn) {
			g.bySig[key] = append(g.bySig[key], fn)
		}
	}
	for _, fn := range prog.FuncList {
		for _, s := range fn.Stmts() {
			if s.Kind != ir.StCall {
				continue
			}
			targets := g.resolve(fn, s)
			g.Callees[s] = targets
			for _, t := range targets {
				g.CallerSites[t] = append(g.CallerSites[t], s)
			}
		}
	}
	return g
}

func containsFunc(fns []*ir.Func, fn *ir.Func) bool {
	for _, f := range fns {
		if f == fn {
			return true
		}
	}
	return false
}

func (g *Graph) resolve(fn *ir.Func, s *ir.Stmt) []*ir.Func {
	if s.Callee != "" {
		if target, ok := g.Prog.Funcs[s.Callee]; ok {
			return []*ir.Func{target}
		}
		return nil // external API
	}
	// Indirect: field-typed function pointer.
	if fe, ok := s.CalleeExpr.(*cir.FieldExpr); ok {
		baseT := fn.TypeOf(fe.X)
		st := baseT
		if fe.Arrow {
			if baseT.IsPtr() {
				st = baseT.Elem
			} else {
				st = nil
			}
		}
		if st.IsStruct() && st.Struct != nil {
			if impls := g.byField[st.Struct.Name][fe.Name]; len(impls) > 0 {
				return sortedFuncs(impls)
			}
		}
	}
	// Fallback: signature-based resolution over ops-registered functions.
	t := fn.TypeOf(s.CalleeExpr)
	if t.IsFuncPtr() {
		if impls := g.bySig[cir.SigString(t.Elem.Sig)]; len(impls) > 0 {
			return sortedFuncs(impls)
		}
	}
	return nil
}

func sortedFuncs(fns []*ir.Func) []*ir.Func {
	out := append([]*ir.Func{}, fns...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CalleesOf returns the possible targets of a call statement.
func (g *Graph) CalleesOf(s *ir.Stmt) []*ir.Func { return g.Callees[s] }

// CallersOf returns the call sites that may invoke fn.
func (g *Graph) CallersOf(fn *ir.Func) []*ir.Stmt { return g.CallerSites[fn] }

// ImplsOfInterface returns the implementations of a function-pointer
// interface identified as "struct.field".
func (g *Graph) ImplsOfInterface(structName, fieldName string) []*ir.Func {
	return sortedFuncs(g.byField[structName][fieldName])
}

// ReachableWithin returns the set of functions reachable from roots within
// the given call depth (used to delineate patch-related functions for
// demand-driven PDG generation, paper §7).
func (g *Graph) ReachableWithin(roots []*ir.Func, depth int) map[*ir.Func]bool {
	seen := make(map[*ir.Func]bool)
	type item struct {
		fn *ir.Func
		d  int
	}
	var queue []item
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			queue = append(queue, item{r, 0})
		}
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.d >= depth {
			continue
		}
		// Callees.
		for _, s := range it.fn.Stmts() {
			if s.Kind != ir.StCall {
				continue
			}
			for _, t := range g.Callees[s] {
				if !seen[t] {
					seen[t] = true
					queue = append(queue, item{t, it.d + 1})
				}
			}
		}
		// Callers.
		for _, site := range g.CallerSites[it.fn] {
			caller := site.Fn
			if !seen[caller] {
				seen[caller] = true
				queue = append(queue, item{caller, it.d + 1})
			}
		}
	}
	return seen
}
