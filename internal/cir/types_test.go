package cir

import "testing"

func TestSameType(t *testing.T) {
	s1 := &StructDef{Name: "s", Fields: []*FieldDef{{Name: "a", Type: IntType}}}
	s1.Layout()
	s2 := &StructDef{Name: "s", Fields: []*FieldDef{{Name: "a", Type: IntType}}}
	s2.Layout()
	cases := []struct {
		a, b *Type
		want bool
	}{
		{IntType, IntType, true},
		{IntType, CharType, false},
		{VoidType, VoidType, true},
		{PtrTo(IntType), PtrTo(IntType), true},
		{PtrTo(IntType), PtrTo(CharType), false},
		{ArrayOf(IntType, 4), ArrayOf(IntType, 4), true},
		{ArrayOf(IntType, 4), ArrayOf(IntType, 5), false},
		{&Type{Kind: TypeStruct, Struct: s1}, &Type{Kind: TypeStruct, Struct: s2}, true},
		{IntType, nil, false},
		{nil, nil, true},
	}
	for i, c := range cases {
		if got := SameType(c.a, c.b); got != c.want {
			t.Errorf("case %d: SameType(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestSameSig(t *testing.T) {
	sig1 := &FuncSig{Ret: IntType, Params: []*Type{PtrTo(IntType)}}
	sig2 := &FuncSig{Ret: IntType, Params: []*Type{PtrTo(IntType)}}
	sig3 := &FuncSig{Ret: IntType, Params: []*Type{IntType}}
	sig4 := &FuncSig{Ret: VoidType, Params: []*Type{PtrTo(IntType)}}
	if !SameSig(sig1, sig2) {
		t.Error("identical sigs differ")
	}
	if SameSig(sig1, sig3) || SameSig(sig1, sig4) {
		t.Error("distinct sigs equal")
	}
	if !SameSig(nil, nil) || SameSig(sig1, nil) {
		t.Error("nil handling")
	}
}

func TestFieldAt(t *testing.T) {
	s := &StructDef{Name: "s", Fields: []*FieldDef{
		{Name: "a", Type: IntType},              // offset 0, size 8
		{Name: "b", Type: PtrTo(IntType)},       // offset 8
		{Name: "c", Type: ArrayOf(CharType, 4)}, // offset 16
	}}
	s.Layout()
	if f := s.FieldAt(0); f == nil || f.Name != "a" {
		t.Errorf("FieldAt(0) = %v", f)
	}
	if f := s.FieldAt(8); f == nil || f.Name != "b" {
		t.Errorf("FieldAt(8) = %v", f)
	}
	if f := s.FieldAt(17); f == nil || f.Name != "c" {
		t.Errorf("FieldAt(17) = %v", f)
	}
	if f := s.FieldAt(500); f != nil {
		t.Errorf("FieldAt(500) = %v, want nil", f)
	}
}

func TestTypeString(t *testing.T) {
	s := &StructDef{Name: "dev"}
	cases := []struct {
		t    *Type
		want string
	}{
		{VoidType, "void"},
		{IntType, "int"},
		{PtrTo(IntType), "int *"},
		{ArrayOf(IntType, 3), "int[3]"},
		{&Type{Kind: TypeStruct, Struct: s}, "struct dev"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.t.Kind, got, c.want)
		}
	}
	var nilT *Type
	if nilT.String() != "<nil>" {
		t.Error("nil type String")
	}
	if nilT.SizeOf() != 0 || nilT.IsPtr() || nilT.IsInt() || nilT.IsStruct() || nilT.IsFuncPtr() {
		t.Error("nil type predicates")
	}
}

func TestStructLayoutAlignment(t *testing.T) {
	// A char field followed by an int must pad to word alignment.
	s := &StructDef{Name: "mix", Fields: []*FieldDef{
		{Name: "c", Type: CharType},
		{Name: "n", Type: IntType},
	}}
	s.Layout()
	if s.Field("c").Offset != 0 {
		t.Errorf("c offset %d", s.Field("c").Offset)
	}
	if s.Field("n").Offset != Word {
		t.Errorf("n offset %d, want %d (aligned)", s.Field("n").Offset, Word)
	}
	if s.Size()%Word != 0 {
		t.Errorf("struct size %d not word-aligned", s.Size())
	}
}
