package cir

import (
	"fmt"
	"strings"
)

// File is a parsed translation unit.
type File struct {
	Name    string // file path / label ("drivers/media/pci/cx23885.c")
	Structs map[string]*StructDef
	Defines map[string]int64 // #define NAME value
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
	// Protos are function declarations without bodies (extern APIs).
	Protos []*FuncDecl
}

// StructByName returns a named struct definition or nil.
func (f *File) StructByName(name string) *StructDef { return f.Structs[name] }

// FuncByName returns the defined function with the given name, or nil.
func (f *File) FuncByName(name string) *FuncDecl {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// GlobalDecl is a file-scope variable declaration, possibly with an ops-table
// initializer (designated struct initializer assigning function names to
// function-pointer fields).
type GlobalDecl struct {
	Name string
	Type *Type
	Init Expr // nil, scalar Expr, or *StructInitExpr
	Pos  Pos
}

// FuncDecl is a function definition (Body != nil) or prototype (Body == nil).
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []*ParamDecl
	Body   *BlockStmt // nil for prototypes (extern APIs)
	Static bool
	Pos    Pos
	EndPos Pos
}

// Sig returns the function's signature.
func (fd *FuncDecl) Sig() *FuncSig {
	ps := make([]*Type, len(fd.Params))
	for i, p := range fd.Params {
		ps[i] = p.Type
	}
	return &FuncSig{Ret: fd.Ret, Params: ps}
}

// ParamDecl is a function parameter.
type ParamDecl struct {
	Name string
	Type *Type
	Pos  Pos
}

// ---------------------------------------------------------------------------
// Statements

// Stmt is a kernel-C statement.
type Stmt interface {
	stmtNode()
	StmtPos() Pos
}

type stmtBase struct{ Pos Pos }

func (s stmtBase) stmtNode() {}

// StmtPos returns the source position of the statement.
func (s stmtBase) StmtPos() Pos { return s.Pos }

// BlockStmt is a `{ ... }` block.
type BlockStmt struct {
	stmtBase
	Stmts []Stmt
}

// DeclStmt declares a local variable, optionally with an initializer.
type DeclStmt struct {
	stmtBase
	Name string
	Type *Type
	Init Expr // may be nil
}

// ExprStmt evaluates an expression for its side effects (calls, inc/dec).
type ExprStmt struct {
	stmtBase
	X Expr
}

// AssignStmt is `lhs = rhs`, `lhs += rhs`, or `lhs -= rhs`.
type AssignStmt struct {
	stmtBase
	Op  TokKind // TokAssign, TokPlusEq, TokMinusEq
	LHS Expr
	RHS Expr
}

// IfStmt is an if/else statement.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// ForStmt is a C for loop.
type ForStmt struct {
	stmtBase
	Init Stmt // may be nil (DeclStmt / AssignStmt / ExprStmt)
	Cond Expr // may be nil (treated as true)
	Post Stmt // may be nil
	Body Stmt
}

// SwitchStmt is a switch over an integer tag.
type SwitchStmt struct {
	stmtBase
	Tag   Expr
	Cases []*CaseClause
}

// CaseClause is one case (or default, when Values is empty) of a switch.
// Fallthrough is not modeled: each clause body is independent (the parser
// accepts `break` terminators and merges empty fall-through labels into the
// following clause).
type CaseClause struct {
	Pos    Pos
	Values []Expr // empty for default
	Body   []Stmt
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	stmtBase
	X Expr // may be nil
}

// BreakStmt breaks the nearest loop/switch.
type BreakStmt struct{ stmtBase }

// ContinueStmt continues the nearest loop.
type ContinueStmt struct{ stmtBase }

// DoWhileStmt is a do { ... } while (cond) loop: the body executes at
// least once.
type DoWhileStmt struct {
	stmtBase
	Body Stmt
	Cond Expr
}

// LabelStmt is a statement label (the kernel error-path idiom target).
type LabelStmt struct {
	stmtBase
	Name string
}

// GotoStmt is an unconditional jump to a label in the same function.
type GotoStmt struct {
	stmtBase
	Label string
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is a kernel-C expression.
type Expr interface {
	exprNode()
	ExprPos() Pos
}

type exprBase struct{ Pos Pos }

func (e exprBase) exprNode() {}

// ExprPos returns the source position of the expression.
func (e exprBase) ExprPos() Pos { return e.Pos }

// Ident is a variable, function, or macro-constant reference.
type Ident struct {
	exprBase
	Name string
}

// IntLit is an integer literal (including resolved #define constants when
// the parser folds them; unresolved macro names stay Idents).
type IntLit struct {
	exprBase
	Val  int64
	Text string // original spelling, e.g. "ENOMEM" when folded from a define
}

// StrLit is a string literal (used for device names, format strings).
type StrLit struct {
	exprBase
	Val string
}

// UnaryExpr is a prefix unary operation: - ! ~ * & ++ --.
type UnaryExpr struct {
	exprBase
	Op TokKind
	X  Expr
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	exprBase
	Op   TokKind
	X, Y Expr
}

// CondExpr is the ternary `c ? a : b`.
type CondExpr struct {
	exprBase
	Cond, Then, Else Expr
}

// CallExpr is a function call. Fun is an Ident for direct calls or a
// field/deref expression for indirect calls through function pointers.
type CallExpr struct {
	exprBase
	Fun  Expr
	Args []Expr
}

// IndexExpr is array indexing `x[i]`.
type IndexExpr struct {
	exprBase
	X, Index Expr
}

// FieldExpr is member access `x.f` (Arrow=false) or `x->f` (Arrow=true).
type FieldExpr struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
}

// CastExpr is `(type)x`; semantically transparent for the analysis.
type CastExpr struct {
	exprBase
	Type *Type
	X    Expr
}

// SizeofExpr is `sizeof(type)` or `sizeof expr`, folded to a constant size.
type SizeofExpr struct {
	exprBase
	Size int64
}

// StructInitExpr is a designated initializer `{ .f = expr, ... }` used for
// ops tables.
type StructInitExpr struct {
	exprBase
	Fields []StructInitField
}

// StructInitField is one `.name = value` entry of a designated initializer.
type StructInitField struct {
	Name  string
	Value Expr
}

// ---------------------------------------------------------------------------
// Printing (used in diagnostics, specs, and bug reports)

// ExprString renders an expression in C-like syntax.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *Ident:
		return x.Name
	case *IntLit:
		if x.Text != "" && !isNumericText(x.Text) {
			return x.Text
		}
		return fmt.Sprintf("%d", x.Val)
	case *StrLit:
		return fmt.Sprintf("%q", x.Val)
	case *UnaryExpr:
		return unaryOpString(x.Op) + parenthesize(x.X)
	case *BinaryExpr:
		return parenthesize(x.X) + " " + binaryOpString(x.Op) + " " + parenthesize(x.Y)
	case *CondExpr:
		return parenthesize(x.Cond) + " ? " + parenthesize(x.Then) + " : " + parenthesize(x.Else)
	case *CallExpr:
		var args []string
		for _, a := range x.Args {
			args = append(args, ExprString(a))
		}
		return ExprString(x.Fun) + "(" + strings.Join(args, ", ") + ")"
	case *IndexExpr:
		return parenthesize(x.X) + "[" + ExprString(x.Index) + "]"
	case *FieldExpr:
		sep := "."
		if x.Arrow {
			sep = "->"
		}
		return parenthesize(x.X) + sep + x.Name
	case *CastExpr:
		return "(" + x.Type.String() + ")" + parenthesize(x.X)
	case *SizeofExpr:
		return fmt.Sprintf("sizeof(%d)", x.Size)
	case *StructInitExpr:
		var fs []string
		for _, f := range x.Fields {
			fs = append(fs, "."+f.Name+" = "+ExprString(f.Value))
		}
		return "{ " + strings.Join(fs, ", ") + " }"
	}
	return "<expr>"
}

func isNumericText(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9') && c != 'x' && c != 'X' && !(c >= 'a' && c <= 'f') && !(c >= 'A' && c <= 'F') && c != '-' {
			return false
		}
	}
	return true
}

func parenthesize(e Expr) string {
	s := ExprString(e)
	switch e.(type) {
	case *BinaryExpr, *CondExpr:
		return "(" + s + ")"
	}
	return s
}

func unaryOpString(op TokKind) string {
	switch op {
	case TokMinus:
		return "-"
	case TokNot:
		return "!"
	case TokTilde:
		return "~"
	case TokStar:
		return "*"
	case TokAmp:
		return "&"
	case TokInc:
		return "++"
	case TokDec:
		return "--"
	}
	return op.String()
}

func binaryOpString(op TokKind) string { return op.String() }
