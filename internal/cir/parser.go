package cir

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError describes a syntax error with position information.
type ParseError struct {
	File string
	Msg  string
	Line int
	Col  int
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

// BuiltinDefines are macro constants available in every translation unit,
// mirroring the errno and helper constants kernel code relies on.
var BuiltinDefines = map[string]int64{
	"NULL":       0,
	"EPERM":      1,
	"ENOENT":     2,
	"EIO":        5,
	"ENXIO":      6,
	"EAGAIN":     11,
	"ENOMEM":     12,
	"EFAULT":     14,
	"EBUSY":      16,
	"ENODEV":     19,
	"EINVAL":     22,
	"ENOSPC":     28,
	"ERANGE":     34,
	"ENODATA":    61,
	"ETIMEDOUT":  110,
	"GFP_KERNEL": 0,
	"GFP_ATOMIC": 1,
}

// Parser is a recursive-descent parser for the kernel-C dialect.
type Parser struct {
	fileName string
	toks     []Token
	pos      int
	structs  map[string]*StructDef
	defines  map[string]int64
}

// ParseFile parses a full translation unit.
func ParseFile(name, src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	p := &Parser{
		fileName: name,
		toks:     toks,
		structs:  make(map[string]*StructDef),
		defines:  make(map[string]int64),
	}
	for k, v := range BuiltinDefines {
		p.defines[k] = v
	}
	f := &File{
		Name:    name,
		Structs: p.structs,
		Defines: p.defines,
	}
	for !p.at(TokEOF) {
		if p.at(TokHashDefine) {
			if err := p.handleDefine(p.next()); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.parseTopLevel(f); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// MustParseFile parses src and panics on error; intended for tests and
// generated corpora that are correct by construction.
func MustParseFile(name, src string) *File {
	f, err := ParseFile(name, src)
	if err != nil {
		panic(err)
	}
	return f
}

func (p *Parser) cur() Token        { return p.toks[p.pos] }
func (p *Parser) at(k TokKind) bool { return p.toks[p.pos].Kind == k }
func (p *Parser) atAny(ks ...TokKind) bool {
	for _, k := range ks {
		if p.toks[p.pos].Kind == k {
			return true
		}
	}
	return false
}
func (p *Parser) peek(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}
func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) errf(format string, args ...interface{}) error {
	t := p.cur()
	return &ParseError{File: p.fileName, Msg: fmt.Sprintf(format, args...), Line: t.Line, Col: t.Col}
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if !p.at(k) {
		return Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) posOf(t Token) Pos { return Pos{Line: t.Line, Col: t.Col} }

func (p *Parser) handleDefine(t Token) error {
	parts := strings.Fields(t.Text)
	if len(parts) < 2 {
		if len(parts) == 1 {
			p.defines[parts[0]] = 1
			return nil
		}
		return &ParseError{File: p.fileName, Msg: "malformed #define", Line: t.Line, Col: t.Col}
	}
	name := parts[0]
	valText := strings.TrimSpace(strings.Join(parts[1:], " "))
	valText = strings.Trim(valText, "()")
	neg := false
	if strings.HasPrefix(valText, "-") {
		neg = true
		valText = valText[1:]
	}
	base := 10
	if strings.HasPrefix(valText, "0x") || strings.HasPrefix(valText, "0X") {
		base = 16
		valText = valText[2:]
	}
	v, err := strconv.ParseInt(valText, base, 64)
	if err != nil {
		// Non-integer macro bodies (e.g. referencing another macro).
		if other, ok := p.defines[valText]; ok {
			v = other
		} else {
			return &ParseError{File: p.fileName, Msg: fmt.Sprintf("unsupported #define body %q", valText), Line: t.Line, Col: t.Col}
		}
	}
	if neg {
		v = -v
	}
	p.defines[name] = v
	return nil
}

// structRef returns the (possibly forward-declared) struct with name.
func (p *Parser) structRef(name string) *StructDef {
	if s, ok := p.structs[name]; ok {
		return s
	}
	s := &StructDef{Name: name}
	p.structs[name] = s
	return s
}

// ---------------------------------------------------------------------------
// Top level

func (p *Parser) parseTopLevel(f *File) error {
	static := false
	for p.atAny(TokKwStatic, TokKwExtern, TokKwConst) {
		if p.at(TokKwStatic) {
			static = true
		}
		p.next()
	}

	// Struct definition: struct Name { ... } ;  (or a global of struct type)
	if p.at(TokKwStruct) && p.peek(1).Kind == TokIdent && p.peek(2).Kind == TokLBrace {
		if err := p.parseStructDef(); err != nil {
			return err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return err
		}
		return nil
	}

	if p.at(TokKwEnum) {
		return p.parseEnumDef()
	}

	base, err := p.parseBaseType()
	if err != nil {
		return err
	}
	name, typ, declPos, err := p.parseDeclarator(base)
	if err != nil {
		return err
	}

	// Function definition or prototype.
	if p.at(TokLParen) && typ.Kind != TypeFunc {
		return p.parseFuncRest(f, name, typ, declPos, static)
	}
	if typ.Kind == TypeFunc {
		// Declarator already consumed the parameter list via (*name)(...)
		return p.errf("top-level function-pointer declarations are not supported")
	}

	// Global variable.
	g := &GlobalDecl{Name: name, Type: typ, Pos: declPos}
	if p.at(TokAssign) {
		p.next()
		init, err := p.parseInitializer()
		if err != nil {
			return err
		}
		g.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return err
	}
	f.Globals = append(f.Globals, g)
	return nil
}

func (p *Parser) parseEnumDef() error {
	p.next() // enum
	if p.at(TokIdent) {
		p.next()
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return err
	}
	nextVal := int64(0)
	for !p.at(TokRBrace) {
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		val := nextVal
		if p.at(TokAssign) {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			v, ok := p.constFold(e)
			if !ok {
				return p.errf("enum value for %s is not constant", nameTok.Text)
			}
			val = v
		}
		p.defines[nameTok.Text] = val
		nextVal = val + 1
		if p.at(TokComma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return err
	}
	_, err := p.expect(TokSemi)
	return err
}

func (p *Parser) constFold(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *IntLit:
		return x.Val, true
	case *UnaryExpr:
		v, ok := p.constFold(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case TokMinus:
			return -v, true
		case TokNot:
			if v == 0 {
				return 1, true
			}
			return 0, true
		case TokTilde:
			return ^v, true
		}
	case *BinaryExpr:
		a, ok1 := p.constFold(x.X)
		b, ok2 := p.constFold(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case TokPlus:
			return a + b, true
		case TokMinus:
			return a - b, true
		case TokStar:
			return a * b, true
		case TokShl:
			return a << uint(b), true
		case TokShr:
			return a >> uint(b), true
		case TokPipe:
			return a | b, true
		case TokAmp:
			return a & b, true
		}
	}
	return 0, false
}

func (p *Parser) parseStructDef() error {
	p.next() // struct
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	s := p.structRef(nameTok.Text)
	if len(s.Fields) > 0 {
		return p.errf("struct %s redefined", nameTok.Text)
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return err
	}
	for !p.at(TokRBrace) {
		base, err := p.parseBaseType()
		if err != nil {
			return err
		}
		for {
			name, typ, _, err := p.parseDeclarator(base)
			if err != nil {
				return err
			}
			s.Fields = append(s.Fields, &FieldDef{Name: name, Type: typ})
			if p.at(TokComma) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(TokSemi); err != nil {
			return err
		}
	}
	p.next() // }
	s.Layout()
	return nil
}

// parseBaseType parses a non-derived type: int/char/long/void/unsigned
// combinations or `struct Name`.
func (p *Parser) parseBaseType() (*Type, error) {
	for p.at(TokKwConst) {
		p.next()
	}
	switch {
	case p.at(TokKwStruct) || p.at(TokKwUnion):
		p.next()
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		s := p.structRef(nameTok.Text)
		return &Type{Kind: TypeStruct, Struct: s, Name: "struct " + s.Name}, nil
	case p.at(TokKwVoid):
		p.next()
		return VoidType, nil
	case p.atAny(TokKwInt, TokKwChar, TokKwLong, TokKwShort, TokKwUnsigned, TokKwSigned):
		size := Word
		name := ""
		for p.atAny(TokKwInt, TokKwChar, TokKwLong, TokKwShort, TokKwUnsigned, TokKwSigned, TokKwConst) {
			t := p.next()
			switch t.Kind {
			case TokKwChar:
				size = 1
			case TokKwShort:
				size = 2
			}
			if name != "" {
				name += " "
			}
			name += t.Kind.String()
		}
		if size == 1 {
			return CharType, nil
		}
		return &Type{Kind: TypeInt, Size: size, Name: name}, nil
	case p.at(TokIdent):
		// Typedef-style names used by the corpus: treat u8..u64, size_t etc.
		// as int flavours.
		switch p.cur().Text {
		case "u8", "s8", "__u8":
			p.next()
			return CharType, nil
		case "u16", "s16", "__u16":
			p.next()
			return &Type{Kind: TypeInt, Size: 2, Name: "u16"}, nil
		case "u32", "s32", "__u32", "uint", "gfp_t", "dma_addr_t":
			p.next()
			return &Type{Kind: TypeInt, Size: 4, Name: "u32"}, nil
		case "u64", "s64", "__u64", "size_t", "ssize_t", "loff_t":
			p.next()
			return &Type{Kind: TypeInt, Size: 8, Name: "u64"}, nil
		}
	}
	return nil, p.errf("expected type, found %s", p.cur())
}

// parseDeclarator parses pointers, the declared name (possibly a
// function-pointer declarator `(*name)(params)`), and array suffixes.
func (p *Parser) parseDeclarator(base *Type) (string, *Type, Pos, error) {
	typ := base
	for p.at(TokStar) {
		p.next()
		for p.at(TokKwConst) {
			p.next()
		}
		typ = PtrTo(typ)
	}
	// Function pointer: ( * name ) ( params )
	if p.at(TokLParen) && p.peek(1).Kind == TokStar {
		p.next() // (
		p.next() // *
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return "", nil, Pos{}, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return "", nil, Pos{}, err
		}
		params, err := p.parseParamTypes()
		if err != nil {
			return "", nil, Pos{}, err
		}
		sig := &FuncSig{Ret: typ, Params: params}
		return nameTok.Text, PtrTo(FuncType(sig)), p.posOf(nameTok), nil
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return "", nil, Pos{}, err
	}
	for p.at(TokLBracket) {
		p.next()
		n := 0
		if !p.at(TokRBracket) {
			e, err := p.parseExpr()
			if err != nil {
				return "", nil, Pos{}, err
			}
			if v, ok := p.constFold(e); ok {
				n = int(v)
			}
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return "", nil, Pos{}, err
		}
		typ = ArrayOf(typ, n)
	}
	return nameTok.Text, typ, p.posOf(nameTok), nil
}

// parseParamTypes parses `( type declarator?, ... )` returning just types.
func (p *Parser) parseParamTypes() ([]*Type, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var types []*Type
	if p.at(TokKwVoid) && p.peek(1).Kind == TokRParen {
		p.next()
	}
	for !p.at(TokRParen) {
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		typ := base
		for p.at(TokStar) {
			p.next()
			typ = PtrTo(typ)
		}
		if p.at(TokIdent) {
			p.next()
		}
		types = append(types, typ)
		if p.at(TokComma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return types, nil
}

func (p *Parser) parseFuncRest(f *File, name string, ret *Type, pos Pos, static bool) error {
	if _, err := p.expect(TokLParen); err != nil {
		return err
	}
	var params []*ParamDecl
	if p.at(TokKwVoid) && p.peek(1).Kind == TokRParen {
		p.next()
	}
	for !p.at(TokRParen) {
		base, err := p.parseBaseType()
		if err != nil {
			return err
		}
		typ := base
		for p.at(TokStar) {
			p.next()
			for p.at(TokKwConst) {
				p.next()
			}
			typ = PtrTo(typ)
		}
		pd := &ParamDecl{Type: typ}
		if p.at(TokIdent) {
			t := p.next()
			pd.Name = t.Text
			pd.Pos = p.posOf(t)
			for p.at(TokLBracket) {
				p.next()
				if !p.at(TokRBracket) {
					if _, err := p.parseExpr(); err != nil {
						return err
					}
				}
				if _, err := p.expect(TokRBracket); err != nil {
					return err
				}
				pd.Type = PtrTo(typ) // array params decay to pointers
			}
		}
		params = append(params, pd)
		if p.at(TokComma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen); err != nil {
		return err
	}
	fd := &FuncDecl{Name: name, Ret: ret, Params: params, Static: static, Pos: pos}
	if p.at(TokSemi) {
		p.next()
		f.Protos = append(f.Protos, fd)
		return nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	fd.Body = body
	fd.EndPos = p.posOf(p.toks[p.pos-1])
	f.Funcs = append(f.Funcs, fd)
	return nil
}

// parseInitializer parses a scalar or designated-struct initializer.
func (p *Parser) parseInitializer() (Expr, error) {
	if !p.at(TokLBrace) {
		return p.parseExpr()
	}
	start := p.next() // {
	init := &StructInitExpr{exprBase: exprBase{Pos: p.posOf(start)}}
	for !p.at(TokRBrace) {
		if p.at(TokDot) {
			p.next()
			nameTok, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokAssign); err != nil {
				return nil, err
			}
			val, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			init.Fields = append(init.Fields, StructInitField{Name: nameTok.Text, Value: val})
		} else {
			// Positional initializer entries are accepted but unnamed.
			val, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			init.Fields = append(init.Fields, StructInitField{Value: val})
		}
		if p.at(TokComma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return init, nil
}

// ---------------------------------------------------------------------------
// Statements

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{stmtBase: stmtBase{Pos: p.posOf(lb)}}
	for !p.at(TokRBrace) {
		if p.at(TokEOF) {
			return nil, p.errf("unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			blk.Stmts = append(blk.Stmts, s)
		}
	}
	p.next() // }
	return blk, nil
}

func (p *Parser) startsType() bool {
	if p.atAny(TokKwInt, TokKwChar, TokKwLong, TokKwShort, TokKwVoid, TokKwUnsigned, TokKwSigned, TokKwStruct, TokKwConst) {
		return true
	}
	if p.at(TokIdent) {
		switch p.cur().Text {
		case "u8", "s8", "__u8", "u16", "s16", "__u16", "u32", "s32", "__u32",
			"u64", "s64", "__u64", "uint", "size_t", "ssize_t", "loff_t", "gfp_t", "dma_addr_t":
			// Only a type if followed by a declarator shape.
			nxt := p.peek(1).Kind
			return nxt == TokStar || nxt == TokIdent
		}
	}
	return false
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	pos := p.posOf(t)
	switch t.Kind {
	case TokSemi:
		p.next()
		return nil, nil
	case TokLBrace:
		return p.parseBlock()
	case TokKwIf:
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		ifs := &IfStmt{stmtBase: stmtBase{Pos: pos}, Cond: cond, Then: then}
		if p.at(TokKwElse) {
			p.next()
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			ifs.Else = els
		}
		return ifs, nil
	case TokKwWhile:
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{stmtBase: stmtBase{Pos: pos}, Cond: cond, Body: body}, nil
	case TokKwFor:
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		var init Stmt
		if !p.at(TokSemi) {
			s, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			init = s
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		var cond Expr
		if !p.at(TokSemi) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			cond = e
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		var post Stmt
		if !p.at(TokRParen) {
			s, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			post = s
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &ForStmt{stmtBase: stmtBase{Pos: pos}, Init: init, Cond: cond, Post: post, Body: body}, nil
	case TokKwSwitch:
		return p.parseSwitch()
	case TokKwReturn:
		p.next()
		rs := &ReturnStmt{stmtBase: stmtBase{Pos: pos}}
		if !p.at(TokSemi) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.X = e
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return rs, nil
	case TokKwBreak:
		p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{stmtBase: stmtBase{Pos: pos}}, nil
	case TokKwContinue:
		p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{stmtBase: stmtBase{Pos: pos}}, nil
	case TokKwGoto:
		p.next()
		lbl, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &GotoStmt{stmtBase: stmtBase{Pos: pos}, Label: lbl.Text}, nil
	case TokKwDo:
		p.next()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKwWhile); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &DoWhileStmt{stmtBase: stmtBase{Pos: pos}, Body: body, Cond: cond}, nil
	}
	// Statement label: `ident :` introduces an error-path target.
	if t.Kind == TokIdent && p.peek(1).Kind == TokColon {
		name := p.next().Text
		p.next() // :
		return &LabelStmt{stmtBase: stmtBase{Pos: pos}, Name: name}, nil
	}
	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return s, nil
}

// parseSimpleStmt parses a declaration, assignment, or expression statement
// (without the trailing semicolon).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	pos := p.posOf(p.cur())
	if p.startsType() {
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		name, typ, dpos, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		ds := &DeclStmt{stmtBase: stmtBase{Pos: dpos}, Name: name, Type: typ}
		if p.at(TokAssign) {
			p.next()
			init, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			ds.Init = init
		}
		return ds, nil
	}
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.atAny(TokAssign, TokPlusEq, TokMinusEq) {
		op := p.next().Kind
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{stmtBase: stmtBase{Pos: pos}, Op: op, LHS: lhs, RHS: rhs}, nil
	}
	return &ExprStmt{stmtBase: stmtBase{Pos: pos}, X: lhs}, nil
}

func (p *Parser) parseSwitch() (Stmt, error) {
	t := p.next() // switch
	pos := p.posOf(t)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	sw := &SwitchStmt{stmtBase: stmtBase{Pos: pos}, Tag: tag}
	var pendingValues []Expr
	for !p.at(TokRBrace) {
		switch {
		case p.at(TokKwCase):
			ct := p.next()
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
			pendingValues = append(pendingValues, v)
			// Empty labels stack onto the next clause.
			if p.atAny(TokKwCase, TokKwDefault) {
				continue
			}
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			sw.Cases = append(sw.Cases, &CaseClause{Pos: p.posOf(ct), Values: pendingValues, Body: body})
			pendingValues = nil
		case p.at(TokKwDefault):
			dt := p.next()
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			cc := &CaseClause{Pos: p.posOf(dt), Body: body}
			if len(pendingValues) > 0 {
				cc.Values = pendingValues
				pendingValues = nil
				// A default merged with explicit cases acts as default.
				cc.Values = nil
			}
			sw.Cases = append(sw.Cases, cc)
		default:
			return nil, p.errf("expected case/default in switch, found %s", p.cur())
		}
	}
	p.next() // }
	return sw, nil
}

// parseCaseBody reads statements until the next case/default label or the
// closing brace; a trailing `break` is consumed and dropped.
func (p *Parser) parseCaseBody() ([]Stmt, error) {
	var body []Stmt
	for !p.atAny(TokKwCase, TokKwDefault, TokRBrace) {
		if p.at(TokKwBreak) {
			p.next()
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			break
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			body = append(body, s)
		}
	}
	return body, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *Parser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.at(TokQuest) {
		return cond, nil
	}
	qt := p.next()
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &CondExpr{exprBase: exprBase{Pos: p.posOf(qt)}, Cond: cond, Then: then, Else: els}, nil
}

var binPrec = map[TokKind]int{
	TokOrOr:   1,
	TokAndAnd: 2,
	TokPipe:   3,
	TokCaret:  4,
	TokAmp:    5,
	TokEq:     6, TokNe: 6,
	TokLt: 7, TokGt: 7, TokLe: 7, TokGe: 7,
	TokShl: 8, TokShr: 8,
	TokPlus: 9, TokMinus: 9,
	TokStar: 10, TokSlash: 10, TokPercent: 10,
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		opTok := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{exprBase: exprBase{Pos: p.posOf(opTok)}, Op: opTok.Kind, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	pos := p.posOf(t)
	switch t.Kind {
	case TokMinus, TokNot, TokTilde, TokStar, TokAmp, TokInc, TokDec:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold -CONST so error codes like -ENOMEM become literals.
		if t.Kind == TokMinus {
			if lit, ok := x.(*IntLit); ok {
				text := lit.Text
				if text != "" {
					text = "-" + text
				}
				return &IntLit{exprBase: exprBase{Pos: pos}, Val: -lit.Val, Text: text}, nil
			}
		}
		return &UnaryExpr{exprBase: exprBase{Pos: pos}, Op: t.Kind, X: x}, nil
	case TokKwSizeof:
		p.next()
		if p.at(TokLParen) && p.typeAfterLParen() {
			p.next()
			typ, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return &SizeofExpr{exprBase: exprBase{Pos: pos}, Size: int64(typ.SizeOf())}, nil
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		_ = x
		return &SizeofExpr{exprBase: exprBase{Pos: pos}, Size: Word}, nil
	case TokLParen:
		if p.typeAfterLParen() {
			// Cast.
			p.next()
			typ, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &CastExpr{exprBase: exprBase{Pos: pos}, Type: typ, X: x}, nil
		}
	}
	return p.parsePostfix()
}

// typeAfterLParen reports whether the token after '(' starts a type name,
// disambiguating casts from parenthesized expressions.
func (p *Parser) typeAfterLParen() bool {
	n := p.peek(1)
	switch n.Kind {
	case TokKwInt, TokKwChar, TokKwLong, TokKwShort, TokKwVoid, TokKwUnsigned, TokKwSigned, TokKwStruct, TokKwConst:
		return true
	case TokIdent:
		switch n.Text {
		case "u8", "s8", "__u8", "u16", "s16", "__u16", "u32", "s32", "__u32",
			"u64", "s64", "__u64", "uint", "size_t", "ssize_t", "loff_t", "gfp_t", "dma_addr_t":
			return p.peek(2).Kind == TokStar || p.peek(2).Kind == TokRParen
		}
	}
	return false
}

// parseTypeName parses `base *...` (abstract declarator) for casts/sizeof.
func (p *Parser) parseTypeName() (*Type, error) {
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	typ := base
	for p.at(TokStar) {
		p.next()
		typ = PtrTo(typ)
	}
	return typ, nil
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		pos := p.posOf(t)
		switch t.Kind {
		case TokLParen:
			p.next()
			call := &CallExpr{exprBase: exprBase{Pos: x.ExprPos()}, Fun: x}
			for !p.at(TokRParen) {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.at(TokComma) {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			x = call
		case TokLBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			x = &IndexExpr{exprBase: exprBase{Pos: pos}, X: x, Index: idx}
		case TokDot:
			p.next()
			nameTok, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			x = &FieldExpr{exprBase: exprBase{Pos: pos}, X: x, Name: nameTok.Text}
		case TokArrow:
			p.next()
			nameTok, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			x = &FieldExpr{exprBase: exprBase{Pos: pos}, X: x, Name: nameTok.Text, Arrow: true}
		case TokInc, TokDec:
			p.next()
			x = &UnaryExpr{exprBase: exprBase{Pos: pos}, Op: t.Kind, X: x}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	pos := p.posOf(t)
	switch t.Kind {
	case TokIdent:
		p.next()
		if v, ok := p.defines[t.Text]; ok {
			return &IntLit{exprBase: exprBase{Pos: pos}, Val: v, Text: t.Text}, nil
		}
		return &Ident{exprBase: exprBase{Pos: pos}, Name: t.Text}, nil
	case TokInt, TokChar:
		p.next()
		return &IntLit{exprBase: exprBase{Pos: pos}, Val: t.Val, Text: t.Text}, nil
	case TokString:
		p.next()
		return &StrLit{exprBase: exprBase{Pos: pos}, Val: t.Text}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("unexpected token %s in expression", t)
}
