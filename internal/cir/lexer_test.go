package cir

import (
	"testing"
	"testing/quick"
)

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex(`int x = 42; /* c */ // line`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokKwInt, TokIdent, TokAssign, TokInt, TokSemi, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
	if toks[3].Val != 42 {
		t.Errorf("int literal value: got %d, want 42", toks[3].Val)
	}
}

func TestLexOperators(t *testing.T) {
	src := `-> ++ -- << >> <= >= == != && || += -= ? :`
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokArrow, TokInc, TokDec, TokShl, TokShr, TokLe, TokGe,
		TokEq, TokNe, TokAndAnd, TokOrOr, TokPlusEq, TokMinusEq, TokQuest, TokColon, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexHexAndSuffixes(t *testing.T) {
	toks, err := Lex(`0x10 0xffffffff 100UL 7L`)
	if err != nil {
		t.Fatal(err)
	}
	wantVals := []int64{16, 0xffffffff, 100, 7}
	for i, v := range wantVals {
		if toks[i].Kind != TokInt || toks[i].Val != v {
			t.Errorf("token %d: got %v (val %d), want val %d", i, toks[i], toks[i].Val, v)
		}
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks, err := Lex("int a;\nint b;\n\nint c;")
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, tok := range toks {
		if tok.Kind == TokIdent {
			lines = append(lines, tok.Line)
		}
	}
	want := []int{1, 2, 4}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("ident %d on line %d, want %d", i, lines[i], want[i])
		}
	}
}

func TestLexDefine(t *testing.T) {
	toks, err := Lex("#define MAX 32\nint x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokHashDefine || toks[0].Text != "MAX 32" {
		t.Fatalf("got %v, want #define MAX 32", toks[0])
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`"a\nb\t\"q\""`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "a\nb\t\"q\"" {
		t.Fatalf("got %q", toks[0].Text)
	}
}

func TestLexCharLiteral(t *testing.T) {
	toks, err := Lex(`'a' '\n'`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Val != 'a' || toks[1].Val != '\n' {
		t.Fatalf("char values: %d %d", toks[0].Val, toks[1].Val)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{"/* unterminated", `"unterminated`, "'a", "@"}
	for _, src := range cases {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q): expected error", src)
		}
	}
}

// Property: lexing never panics and always terminates with EOF on arbitrary
// ASCII-ish input when it succeeds.
func TestLexNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		// Restrict to printable ASCII plus whitespace to keep inputs C-like.
		src := make([]byte, len(b))
		for i, c := range b {
			src[i] = ' ' + c%95
		}
		toks, err := Lex(string(src))
		if err != nil {
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == TokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
