package cir

import (
	"testing"
)

func TestParseFig3(t *testing.T) {
	f, err := ParseFile("fig3.c", Fig3Source)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Funcs) != 2 {
		t.Fatalf("got %d funcs, want 2", len(f.Funcs))
	}
	if len(f.Protos) != 1 || f.Protos[0].Name != "dma_alloc_coherent" {
		t.Fatalf("protos: %+v", f.Protos)
	}
	if len(f.Globals) != 1 || f.Globals[0].Name != "cx23885_qops" {
		t.Fatalf("globals: %+v", f.Globals)
	}
	init, ok := f.Globals[0].Init.(*StructInitExpr)
	if !ok {
		t.Fatalf("ops init is %T, want *StructInitExpr", f.Globals[0].Init)
	}
	if len(init.Fields) != 1 || init.Fields[0].Name != "buf_prepare" {
		t.Fatalf("ops fields: %+v", init.Fields)
	}
	if id, ok := init.Fields[0].Value.(*Ident); !ok || id.Name != "buffer_prepare" {
		t.Fatalf("ops value: %v", ExprString(init.Fields[0].Value))
	}

	// Struct layout: byte offsets.
	risc := f.StructByName("cx23885_riscmem")
	if risc == nil {
		t.Fatal("missing struct cx23885_riscmem")
	}
	if got := risc.Field("cpu").Offset; got != 0 {
		t.Errorf("cpu offset = %d, want 0", got)
	}
	if got := risc.Field("size").Offset; got != 8 {
		t.Errorf("size offset = %d, want 8", got)
	}
	vb2 := f.StructByName("vb2_buffer")
	if got := vb2.Field("state").Offset; got != risc.Size() {
		t.Errorf("state offset = %d, want %d (after embedded struct)", got, risc.Size())
	}

	// Function pointer field type.
	ops := f.StructByName("vb2_ops")
	bp := ops.Field("buf_prepare")
	if !bp.Type.IsFuncPtr() {
		t.Fatalf("buf_prepare type = %v, want function pointer", bp.Type)
	}
	if len(bp.Type.Elem.Sig.Params) != 1 {
		t.Fatalf("buf_prepare params = %d, want 1", len(bp.Type.Elem.Sig.Params))
	}
}

func TestParseNegatedErrnoFolds(t *testing.T) {
	f := MustParseFile("t.c", `
int g(void) { return -ENOMEM; }
`)
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	lit, ok := ret.X.(*IntLit)
	if !ok {
		t.Fatalf("return expr is %T, want folded IntLit", ret.X)
	}
	if lit.Val != -12 || lit.Text != "-ENOMEM" {
		t.Fatalf("lit = %d %q, want -12 -ENOMEM", lit.Val, lit.Text)
	}
}

func TestParseSwitchFig4(t *testing.T) {
	// Paper Fig. 4 shape: switch with sanity-checked loop body.
	f := MustParseFile("fig4.c", `
#define I2C_SMBUS_I2C_BLOCK_DATA 8
#define MAX 32
struct smbus_data {
	int len;
	char block[34];
};
struct msg_t { char *buf; };
struct msg_t msg[2];
int xfer_emulated(int size, struct smbus_data *data) {
	int i;
	switch (size) {
	case I2C_SMBUS_I2C_BLOCK_DATA:
		if (data->len <= MAX) {
			for (i = 1; i <= data->len; i = i + 1)
				msg[0].buf[i] = data->block[i];
		}
		break;
	default:
		return -EINVAL;
	}
	return 0;
}
`)
	fn := f.FuncByName("xfer_emulated")
	if fn == nil {
		t.Fatal("missing xfer_emulated")
	}
	var sw *SwitchStmt
	for _, s := range fn.Body.Stmts {
		if x, ok := s.(*SwitchStmt); ok {
			sw = x
		}
	}
	if sw == nil {
		t.Fatal("missing switch")
	}
	if len(sw.Cases) != 2 {
		t.Fatalf("got %d cases, want 2", len(sw.Cases))
	}
	if len(sw.Cases[0].Values) != 1 {
		t.Fatalf("case values: %+v", sw.Cases[0].Values)
	}
	if v := sw.Cases[0].Values[0].(*IntLit); v.Val != 8 {
		t.Fatalf("case value = %d, want 8 (from #define)", v.Val)
	}
	if sw.Cases[1].Values != nil {
		t.Fatalf("default clause has values: %+v", sw.Cases[1].Values)
	}
}

func TestParseStackedCaseLabels(t *testing.T) {
	f := MustParseFile("t.c", `
int h(int x) {
	switch (x) {
	case 1:
	case 2:
		return 10;
	case 3:
		return 20;
	}
	return 0;
}
`)
	sw := f.Funcs[0].Body.Stmts[0].(*SwitchStmt)
	if len(sw.Cases) != 2 {
		t.Fatalf("got %d cases, want 2 (stacked labels merge)", len(sw.Cases))
	}
	if len(sw.Cases[0].Values) != 2 {
		t.Fatalf("first clause has %d values, want 2", len(sw.Cases[0].Values))
	}
}

func TestParseFig5OrderPatch(t *testing.T) {
	f := MustParseFile("fig5.c", `
struct device { int devt; int refcount; };
struct platform_device { struct device dev; };
struct ida { int bits; };
struct platform_driver {
	int (*probe)(struct platform_device *pdev);
	int (*remove)(struct platform_device *pdev);
};
void put_device(struct device *dev);
void ida_free(struct ida *ida, int id);
struct ida telem_ida;
int telem_remove(struct platform_device *pdev) {
	ida_free(&telem_ida, pdev->dev.devt);
	put_device(&pdev->dev);
	return 0;
}
struct platform_driver telem_driver = {
	.remove = telem_remove,
};
`)
	fn := f.FuncByName("telem_remove")
	if fn == nil || len(fn.Body.Stmts) != 3 {
		t.Fatalf("telem_remove body: %+v", fn)
	}
	call := fn.Body.Stmts[0].(*ExprStmt).X.(*CallExpr)
	if ExprString(call.Fun) != "ida_free" || len(call.Args) != 2 {
		t.Fatalf("first call: %s", ExprString(call))
	}
	if got := ExprString(call.Args[1]); got != "pdev->dev.devt" {
		t.Fatalf("arg1 = %q", got)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	f := MustParseFile("t.c", `int g(int a, int b, int c) { return a + b * c == a << 1 && !b; }`)
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	// (((a + (b*c)) == (a<<1)) && (!b))
	top := ret.X.(*BinaryExpr)
	if top.Op != TokAndAnd {
		t.Fatalf("top op = %s, want &&", top.Op)
	}
	eq := top.X.(*BinaryExpr)
	if eq.Op != TokEq {
		t.Fatalf("lhs op = %s, want ==", eq.Op)
	}
	add := eq.X.(*BinaryExpr)
	if add.Op != TokPlus {
		t.Fatalf("add op = %s, want +", add.Op)
	}
	if mul := add.Y.(*BinaryExpr); mul.Op != TokStar {
		t.Fatalf("mul op = %s, want *", mul.Op)
	}
}

func TestParseTernaryAndCast(t *testing.T) {
	f := MustParseFile("t.c", `
struct buf { int n; };
int g(struct buf *b, int x) {
	int v = x > 0 ? x : -x;
	char *p = (char *)b;
	return v + (int)p[0];
}
`)
	body := f.Funcs[0].Body.Stmts
	d0 := body[0].(*DeclStmt)
	if _, ok := d0.Init.(*CondExpr); !ok {
		t.Fatalf("init is %T, want CondExpr", d0.Init)
	}
	d1 := body[1].(*DeclStmt)
	if _, ok := d1.Init.(*CastExpr); !ok {
		t.Fatalf("init is %T, want CastExpr", d1.Init)
	}
}

func TestParseIndirectCall(t *testing.T) {
	f := MustParseFile("t.c", `
struct vb2_buffer { int n; };
struct vb2_ops { int (*buf_prepare)(struct vb2_buffer *vb); };
int prepare_map(struct vb2_ops *ops, struct vb2_buffer *vb) {
	int ret = ops->buf_prepare(vb);
	return ret;
}
`)
	decl := f.Funcs[0].Body.Stmts[0].(*DeclStmt)
	call, ok := decl.Init.(*CallExpr)
	if !ok {
		t.Fatalf("init is %T, want CallExpr", decl.Init)
	}
	fe, ok := call.Fun.(*FieldExpr)
	if !ok || fe.Name != "buf_prepare" || !fe.Arrow {
		t.Fatalf("callee: %s", ExprString(call.Fun))
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	_, err := ParseFile("bad.c", "int f( {")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 1 || pe.File != "bad.c" {
		t.Fatalf("position: %+v", pe)
	}
}

func TestParseGotoErrorPath(t *testing.T) {
	// The kernel error-path idiom.
	f := MustParseFile("t.c", `
int *kmalloc(int size);
void kfree(int *p);
int setup(int *p);
int f(int n) {
	int ret;
	int *buf = kmalloc(n);
	if (buf == NULL)
		return -ENOMEM;
	ret = setup(buf);
	if (ret != 0)
		goto err_free;
	return 0;
err_free:
	kfree(buf);
	return ret;
}`)
	fn := f.FuncByName("f")
	var gotoSeen, labelSeen bool
	var walk func(s Stmt)
	walk = func(s Stmt) {
		switch x := s.(type) {
		case *BlockStmt:
			for _, sub := range x.Stmts {
				walk(sub)
			}
		case *IfStmt:
			walk(x.Then)
			if x.Else != nil {
				walk(x.Else)
			}
		case *GotoStmt:
			gotoSeen = true
			if x.Label != "err_free" {
				t.Errorf("goto label %q", x.Label)
			}
		case *LabelStmt:
			labelSeen = true
			if x.Name != "err_free" {
				t.Errorf("label %q", x.Name)
			}
		}
	}
	walk(fn.Body)
	if !gotoSeen || !labelSeen {
		t.Fatalf("goto=%v label=%v", gotoSeen, labelSeen)
	}
}

func TestParseDoWhile(t *testing.T) {
	f := MustParseFile("t.c", `
int f(int n) {
	int i = 0;
	do {
		i = i + 1;
	} while (i < n);
	return i;
}`)
	fn := f.FuncByName("f")
	found := false
	for _, s := range fn.Body.Stmts {
		if _, ok := s.(*DoWhileStmt); ok {
			found = true
		}
	}
	if !found {
		t.Fatal("missing do-while")
	}
}

func TestParseEnum(t *testing.T) {
	f := MustParseFile("t.c", `
enum state { IDLE, RUNNING = 5, DONE };
int g(int x) { return x == RUNNING; }
`)
	if f.Defines["IDLE"] != 0 || f.Defines["RUNNING"] != 5 || f.Defines["DONE"] != 6 {
		t.Fatalf("enum defines: IDLE=%d RUNNING=%d DONE=%d",
			f.Defines["IDLE"], f.Defines["RUNNING"], f.Defines["DONE"])
	}
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	cmp := ret.X.(*BinaryExpr)
	if lit := cmp.Y.(*IntLit); lit.Val != 5 || lit.Text != "RUNNING" {
		t.Fatalf("folded enum: %d %q", lit.Val, lit.Text)
	}
}

func TestParseGlobalsAndArrays(t *testing.T) {
	f := MustParseFile("t.c", `
static int counters[16];
int total = 0;
int bump(int i) {
	counters[i] += 1;
	total += counters[i];
	return total;
}
`)
	if len(f.Globals) != 2 {
		t.Fatalf("globals: %d", len(f.Globals))
	}
	if f.Globals[0].Type.Kind != TypeArray || f.Globals[0].Type.Len != 16 {
		t.Fatalf("counters type: %v", f.Globals[0].Type)
	}
	as := f.Funcs[0].Body.Stmts[0].(*AssignStmt)
	if as.Op != TokPlusEq {
		t.Fatalf("op = %s, want +=", as.Op)
	}
}

func TestParseForWhileBreakContinue(t *testing.T) {
	f := MustParseFile("t.c", `
int g(int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i++) {
		if (i == 3)
			continue;
		if (i > 8)
			break;
		s += i;
	}
	while (s > 100)
		s -= 10;
	return s;
}
`)
	fn := f.Funcs[0]
	var forSeen, whileSeen bool
	for _, s := range fn.Body.Stmts {
		switch s.(type) {
		case *ForStmt:
			forSeen = true
		case *WhileStmt:
			whileSeen = true
		}
	}
	if !forSeen || !whileSeen {
		t.Fatalf("for=%v while=%v", forSeen, whileSeen)
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	cases := []string{
		"a->b.c",
		"f(a, b + 1)",
		"buf[i]",
		"-ENOMEM",
		"(x + y) * z",
	}
	for _, src := range cases {
		prelude := "struct q { int c; }; struct s { struct q b; }; struct s *a; int x; int y; int z; int i; int buf[4]; int f(int p, int q2); "
		f := MustParseFile("t.c", prelude+"int g(void) { return "+src+"; }")
		ret := f.FuncByName("g").Body.Stmts[0].(*ReturnStmt)
		got := ExprString(ret.X)
		// Re-parse the printed form; it must parse and print identically.
		f2 := MustParseFile("t2.c", prelude+"int g(void) { return "+got+"; }")
		ret2 := f2.FuncByName("g").Body.Stmts[0].(*ReturnStmt)
		if got2 := ExprString(ret2.X); got2 != got {
			t.Errorf("print/parse not stable: %q -> %q -> %q", src, got, got2)
		}
	}
}

func TestSigString(t *testing.T) {
	f := MustParseFile("t.c", `
struct vb2_buffer { int n; };
int prep_a(struct vb2_buffer *vb) { return 0; }
int prep_b(struct vb2_buffer *vb) { return 1; }
int other(int x) { return x; }
`)
	sa := SigString(f.Funcs[0].Sig())
	sb := SigString(f.Funcs[1].Sig())
	so := SigString(f.Funcs[2].Sig())
	if sa != sb {
		t.Errorf("same-signature functions differ: %q vs %q", sa, sb)
	}
	if sa == so {
		t.Errorf("different signatures collide: %q", sa)
	}
}
