package cir_test

// Native fuzz target for the kernel-C frontend. The parser is the
// pipeline's outermost input boundary: whatever bytes reach it, it must
// either return an error or an AST the IR lowering accepts — never panic,
// never hang. Run continuously with
//
//	go test -run='^$' -fuzz=FuzzParseFile ./internal/cir
//
// The checked-in seed corpus lives in testdata/fuzz/FuzzParseFile
// (regenerate with `go run ./internal/difftest/gencorpus`).

import (
	"testing"

	"seal/internal/cir"
	"seal/internal/ir"
	"seal/internal/randprog"
)

func FuzzParseFile(f *testing.F) {
	f.Add(cir.Fig3Source)
	f.Add(randprog.Program(1, 2, randprog.Default()))
	f.Add("int f(int a) { return a / 0; }\n")
	f.Add("#define N 4\nstruct s { int x[N]; };\nint g(struct s *p) { return p->x[1]; }\n")
	f.Add("int h() { if (1 < 2) return 3; else return 4; }")
	f.Add("struct o { int (*op)(int); };\nint impl(int v);\nstruct o t = { .op = impl, };\n")
	f.Add("int broken(") // truncated input must error, not hang
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 64<<10 {
			t.Skip("oversized input")
		}
		file, err := cir.ParseFile("fuzz.c", src)
		if err != nil {
			return // rejection is a valid outcome; crashing is not
		}
		prog, err := ir.NewProgram(file)
		if err != nil {
			return
		}
		// The lowered program must be minimally coherent: every statement
		// belongs to a listed function.
		fns := make(map[*ir.Func]bool, len(prog.FuncList))
		for _, fn := range prog.FuncList {
			fns[fn] = true
		}
		for _, s := range prog.AllStmts() {
			if !fns[s.Fn] {
				t.Fatalf("statement %v owned by unlisted function", s)
			}
		}
	})
}
