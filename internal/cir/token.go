// Package cir implements a frontend for a C subset ("kernel C") that is
// sufficient to express the Linux interface idioms SEAL analyzes: struct
// definitions with byte-offset field layout, pointers, arrays, function
// pointers gathered into ops tables, and the statement/expression forms that
// occur in driver code. It substitutes for the LLVM bitcode frontend of the
// original system (see DESIGN.md §2).
package cir

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokString
	TokChar

	// Punctuation.
	TokLParen   // (
	TokRParen   // )
	TokLBrace   // {
	TokRBrace   // }
	TokLBracket // [
	TokRBracket // ]
	TokSemi     // ;
	TokComma    // ,
	TokDot      // .
	TokArrow    // ->
	TokColon    // :

	// Operators.
	TokAssign  // =
	TokPlus    // +
	TokMinus   // -
	TokStar    // *
	TokSlash   // /
	TokPercent // %
	TokAmp     // &
	TokPipe    // |
	TokCaret   // ^
	TokShl     // <<
	TokShr     // >>
	TokNot     // !
	TokTilde   // ~
	TokAndAnd  // &&
	TokOrOr    // ||
	TokEq      // ==
	TokNe      // !=
	TokLt      // <
	TokGt      // >
	TokLe      // <=
	TokGe      // >=
	TokPlusEq  // +=
	TokMinusEq // -=
	TokInc     // ++
	TokDec     // --
	TokQuest   // ?

	// Keywords.
	TokKwStruct
	TokKwUnion
	TokKwEnum
	TokKwInt
	TokKwChar
	TokKwLong
	TokKwShort
	TokKwVoid
	TokKwUnsigned
	TokKwSigned
	TokKwConst
	TokKwStatic
	TokKwExtern
	TokKwIf
	TokKwElse
	TokKwWhile
	TokKwFor
	TokKwDo
	TokKwSwitch
	TokKwCase
	TokKwDefault
	TokKwBreak
	TokKwContinue
	TokKwReturn
	TokKwGoto
	TokKwSizeof
	TokKwTypedef

	// Preprocessor-ish.
	TokHashDefine // #define
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokInt: "integer", TokString: "string",
	TokChar: "char", TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokSemi: ";", TokComma: ",", TokDot: ".",
	TokArrow: "->", TokColon: ":", TokAssign: "=", TokPlus: "+", TokMinus: "-",
	TokStar: "*", TokSlash: "/", TokPercent: "%", TokAmp: "&", TokPipe: "|",
	TokCaret: "^", TokShl: "<<", TokShr: ">>", TokNot: "!", TokTilde: "~",
	TokAndAnd: "&&", TokOrOr: "||", TokEq: "==", TokNe: "!=", TokLt: "<",
	TokGt: ">", TokLe: "<=", TokGe: ">=", TokPlusEq: "+=", TokMinusEq: "-=",
	TokInc: "++", TokDec: "--", TokQuest: "?",
	TokKwStruct: "struct", TokKwUnion: "union", TokKwEnum: "enum", TokKwInt: "int",
	TokKwChar: "char", TokKwLong: "long", TokKwShort: "short", TokKwVoid: "void",
	TokKwUnsigned: "unsigned", TokKwSigned: "signed", TokKwConst: "const",
	TokKwStatic: "static", TokKwExtern: "extern", TokKwIf: "if", TokKwElse: "else",
	TokKwWhile: "while", TokKwFor: "for", TokKwDo: "do", TokKwSwitch: "switch",
	TokKwCase: "case", TokKwDefault: "default", TokKwBreak: "break",
	TokKwContinue: "continue", TokKwReturn: "return", TokKwGoto: "goto",
	TokKwSizeof: "sizeof", TokKwTypedef: "typedef", TokHashDefine: "#define",
}

// String returns a human-readable name for the token kind.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

var keywords = map[string]TokKind{
	"struct": TokKwStruct, "union": TokKwUnion, "enum": TokKwEnum,
	"int": TokKwInt, "char": TokKwChar, "long": TokKwLong, "short": TokKwShort,
	"void": TokKwVoid, "unsigned": TokKwUnsigned, "signed": TokKwSigned,
	"const": TokKwConst, "static": TokKwStatic, "extern": TokKwExtern,
	"if": TokKwIf, "else": TokKwElse, "while": TokKwWhile, "for": TokKwFor,
	"do": TokKwDo, "switch": TokKwSwitch, "case": TokKwCase,
	"default": TokKwDefault, "break": TokKwBreak, "continue": TokKwContinue,
	"return": TokKwReturn, "goto": TokKwGoto, "sizeof": TokKwSizeof,
	"typedef": TokKwTypedef,
}

// Token is a single lexical token with source position.
type Token struct {
	Kind TokKind
	Text string // raw text for identifiers, integers, strings
	Val  int64  // decoded value for TokInt / TokChar
	Line int    // 1-based source line
	Col  int    // 1-based source column
}

// String implements fmt.Stringer.
func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokInt, TokString:
		return fmt.Sprintf("%s(%q)@%d:%d", t.Kind, t.Text, t.Line, t.Col)
	default:
		return fmt.Sprintf("%s@%d:%d", t.Kind, t.Line, t.Col)
	}
}

// Pos is a source position (file is tracked at the translation-unit level).
type Pos struct {
	Line int
	Col  int
}

// String implements fmt.Stringer.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position carries real line information.
func (p Pos) IsValid() bool { return p.Line > 0 }
