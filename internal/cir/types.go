package cir

import (
	"fmt"
	"strings"
)

// TypeKind enumerates the type constructors of the kernel-C dialect.
type TypeKind int

// Type kinds.
const (
	TypeVoid TypeKind = iota
	TypeInt           // all integer flavours collapse to a sized int
	TypePtr
	TypeArray
	TypeStruct
	TypeFunc
)

// Type is a kernel-C type. Types are interned per translation unit for
// structs; scalar and derived types are structurally compared.
type Type struct {
	Kind   TypeKind
	Size   int        // size in bytes (word = 8)
	Elem   *Type      // pointee (TypePtr) or element (TypeArray)
	Len    int        // array length (TypeArray)
	Struct *StructDef // TypeStruct
	Sig    *FuncSig   // TypeFunc (used for function-pointer fields)
	// Name records the spelled integer type ("int", "long", "unsigned", …)
	// for diagnostics; semantics do not depend on it.
	Name string
}

// FuncSig is a function signature.
type FuncSig struct {
	Ret    *Type
	Params []*Type
}

// StructDef is a struct definition with byte-offset field layout, mirroring
// the paper's field sensitivity ("structure fields are distinguished by the
// byte offsets from the base pointer", §7).
type StructDef struct {
	Name   string
	Fields []*FieldDef
	size   int
	byName map[string]*FieldDef
	// laying guards against recursive layout of self-referential struct
	// definitions (illegal C, but the frontend must not diverge on them).
	laying bool
}

// FieldDef is a single struct field.
type FieldDef struct {
	Name   string
	Type   *Type
	Offset int // byte offset from the start of the struct
	Index  int // declaration index
}

// Word is the byte size of pointers and default integers.
const Word = 8

var (
	// VoidType is the canonical void type.
	VoidType = &Type{Kind: TypeVoid, Name: "void"}
	// IntType is the canonical int type.
	IntType = &Type{Kind: TypeInt, Size: Word, Name: "int"}
	// CharType is the canonical char type.
	CharType = &Type{Kind: TypeInt, Size: 1, Name: "char"}
)

// PtrTo returns a pointer type to elem.
func PtrTo(elem *Type) *Type {
	return &Type{Kind: TypePtr, Size: Word, Elem: elem, Name: elem.Name + "*"}
}

// ArrayOf returns an array type of n elems.
func ArrayOf(elem *Type, n int) *Type {
	sz := 0
	if elem != nil {
		sz = elem.SizeOf() * n
	}
	return &Type{Kind: TypeArray, Size: sz, Elem: elem, Len: n}
}

// FuncType returns a function type with the given signature.
func FuncType(sig *FuncSig) *Type { return &Type{Kind: TypeFunc, Size: Word, Sig: sig} }

// SizeOf returns the byte size of the type (0 for void / incomplete).
func (t *Type) SizeOf() int {
	if t == nil {
		return 0
	}
	switch t.Kind {
	case TypeStruct:
		if t.Struct == nil {
			return 0
		}
		return t.Struct.Size()
	default:
		return t.Size
	}
}

// IsPtr reports whether t is a pointer type.
func (t *Type) IsPtr() bool { return t != nil && t.Kind == TypePtr }

// IsInt reports whether t is an integer type.
func (t *Type) IsInt() bool { return t != nil && t.Kind == TypeInt }

// IsStruct reports whether t is a struct type.
func (t *Type) IsStruct() bool { return t != nil && t.Kind == TypeStruct }

// IsFuncPtr reports whether t is a pointer to a function type.
func (t *Type) IsFuncPtr() bool {
	return t.IsPtr() && t.Elem != nil && t.Elem.Kind == TypeFunc
}

// String renders the type in C-ish syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeInt:
		if t.Name != "" {
			return t.Name
		}
		return fmt.Sprintf("int%d", t.Size*8)
	case TypePtr:
		return t.Elem.String() + " *"
	case TypeArray:
		return fmt.Sprintf("%s[%d]", t.Elem.String(), t.Len)
	case TypeStruct:
		if t.Struct != nil {
			return "struct " + t.Struct.Name
		}
		return "struct <anon>"
	case TypeFunc:
		var ps []string
		for _, p := range t.Sig.Params {
			ps = append(ps, p.String())
		}
		return fmt.Sprintf("%s (*)(%s)", t.Sig.Ret, strings.Join(ps, ", "))
	}
	return "<bad type>"
}

// Layout (re)computes the byte offsets of all fields. Fields are laid out
// sequentially with Word alignment for pointers/ints, matching the byte
// offset field discrimination of the paper.
func (s *StructDef) Layout() {
	if s.laying {
		return // cyclic embedding: treat the inner occurrence as incomplete
	}
	s.laying = true
	defer func() { s.laying = false }()
	off := 0
	s.byName = make(map[string]*FieldDef, len(s.Fields))
	for i, f := range s.Fields {
		align := Word
		if f.Type != nil && f.Type.Kind == TypeInt && f.Type.Size < Word {
			align = f.Type.Size
		}
		if align > 0 && off%align != 0 {
			off += align - off%align
		}
		f.Offset = off
		f.Index = i
		sz := f.Type.SizeOf()
		if sz == 0 {
			sz = Word
		}
		off += sz
		s.byName[f.Name] = f
	}
	if off%Word != 0 {
		off += Word - off%Word
	}
	s.size = off
}

// Size returns the laid-out byte size of the struct.
func (s *StructDef) Size() int {
	if s.size == 0 && len(s.Fields) > 0 {
		s.Layout()
	}
	return s.size
}

// Field returns the field with the given name, or nil.
func (s *StructDef) Field(name string) *FieldDef {
	if s.byName == nil {
		s.Layout()
	}
	return s.byName[name]
}

// FieldAt returns the field covering the given byte offset, or nil.
func (s *StructDef) FieldAt(offset int) *FieldDef {
	if s.byName == nil {
		s.Layout()
	}
	for _, f := range s.Fields {
		sz := f.Type.SizeOf()
		if sz == 0 {
			sz = Word
		}
		if offset >= f.Offset && offset < f.Offset+sz {
			return f
		}
	}
	return nil
}

// SameType reports structural type equality (structs by identity of def).
func SameType(a, b *Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case TypeVoid:
		return true
	case TypeInt:
		return a.Size == b.Size
	case TypePtr:
		return SameType(a.Elem, b.Elem)
	case TypeArray:
		return a.Len == b.Len && SameType(a.Elem, b.Elem)
	case TypeStruct:
		if a.Struct == b.Struct {
			return true
		}
		return a.Struct != nil && b.Struct != nil && a.Struct.Name == b.Struct.Name
	case TypeFunc:
		return SameSig(a.Sig, b.Sig)
	}
	return false
}

// SameSig reports signature equality.
func SameSig(a, b *FuncSig) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Params) != len(b.Params) {
		return false
	}
	if !SameType(a.Ret, b.Ret) {
		return false
	}
	for i := range a.Params {
		if !SameType(a.Params[i], b.Params[i]) {
			return false
		}
	}
	return true
}

// SigString renders a signature as a stable key for type-based indirect-call
// resolution ("indirect calls are resolved by type analysis", paper §7).
func SigString(sig *FuncSig) string {
	if sig == nil {
		return "()"
	}
	var sb strings.Builder
	sb.WriteString(typeKey(sig.Ret))
	sb.WriteByte('(')
	for i, p := range sig.Params {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(typeKey(p))
	}
	sb.WriteByte(')')
	return sb.String()
}

func typeKey(t *Type) string {
	if t == nil {
		return "?"
	}
	switch t.Kind {
	case TypeVoid:
		return "v"
	case TypeInt:
		return fmt.Sprintf("i%d", t.Size)
	case TypePtr:
		return "p" + typeKey(t.Elem)
	case TypeArray:
		return fmt.Sprintf("a%d%s", t.Len, typeKey(t.Elem))
	case TypeStruct:
		if t.Struct != nil {
			return "s:" + t.Struct.Name
		}
		return "s:?"
	case TypeFunc:
		return "f" + SigString(t.Sig)
	}
	return "?"
}
