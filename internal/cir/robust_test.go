package cir

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics: the parser must return an error, never panic, on
// arbitrary inputs built from C-ish tokens.
func TestParseNeverPanics(t *testing.T) {
	fragments := []string{
		"int", "void", "struct", "x", "f", "(", ")", "{", "}", ";", ",",
		"=", "*", "&", "->", ".", "[", "]", "if", "else", "for", "while",
		"return", "switch", "case", "default", "break", "0", "1", "42",
		"+", "-", "/", "==", "!=", "<", ">", "&&", "||", "!", "#define A 1",
		"\n", " ",
	}
	f := func(picks []uint8) bool {
		var sb strings.Builder
		for _, p := range picks {
			sb.WriteString(fragments[int(p)%len(fragments)])
			sb.WriteByte(' ')
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", sb.String(), r)
			}
		}()
		_, _ = ParseFile("fuzz.c", sb.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParseDeepNesting: heavily nested expressions and blocks must not
// blow the parser up (bounded by input size, no pathological behaviour).
func TestParseDeepNesting(t *testing.T) {
	depth := 80
	expr := strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth)
	src := "int f(void) { return " + expr + "; }"
	if _, err := ParseFile("deep.c", src); err != nil {
		t.Fatalf("deep parens: %v", err)
	}
	body := strings.Repeat("if (1) { ", depth) + "x = 1;" + strings.Repeat(" }", depth)
	src2 := "int x; int g(void) { " + body + " return x; }"
	if _, err := ParseFile("deep2.c", src2); err != nil {
		t.Fatalf("deep blocks: %v", err)
	}
}

// TestParseRecoversPositionsOnError: every parse error carries the file
// name and a plausible position.
func TestParseErrorsCarryPositions(t *testing.T) {
	bads := []string{
		"int f( { }",
		"struct { int x; };",
		"int f(void) { return ; ;;; } }",
		"int f(void) { x ->; }",
		"int f(void) { switch (x) { int y; } }",
	}
	for _, src := range bads {
		_, err := ParseFile("bad.c", src)
		if err == nil {
			continue // some inputs may legitimately parse
		}
		pe, ok := err.(*ParseError)
		if !ok {
			t.Errorf("%q: error type %T", src, err)
			continue
		}
		if pe.File != "bad.c" || pe.Line < 1 {
			t.Errorf("%q: bad position %+v", src, pe)
		}
	}
}
