package cir

// This file holds the paper's worked examples (Figures 1, 3, 4, 5 of the
// SEAL paper) transcribed into the kernel-C dialect. They are shared
// fixtures: the parser, PDG, differencing, inference, and detection
// packages all exercise their logic against these exact programs, and the
// quickstart example ships them as its demo corpus.

// Fig3Source is the paper's Fig. 3 post-patch code: buffer_prepare now
// propagates the error code of cx23885_vbibuffer (the NPD fix).
const Fig3Source = `
struct cx23885_riscmem {
	int *cpu;
	int size;
};
struct vb2_buffer {
	struct cx23885_riscmem risc;
	int state;
};
struct vb2_ops {
	int (*buf_prepare)(struct vb2_buffer *vb);
};
int *dma_alloc_coherent(int size);
int cx23885_vbibuffer(struct cx23885_riscmem *risc) {
	risc->cpu = dma_alloc_coherent(risc->size);
	if (risc->cpu == NULL)
		return -ENOMEM;
	return 0;
}
int buffer_prepare(struct vb2_buffer *vb) {
	return cx23885_vbibuffer(&vb->risc);
}
struct vb2_ops cx23885_qops = {
	.buf_prepare = buffer_prepare,
};
`

// Fig3PreSource is the pre-patch version of Fig. 3: the return value of
// cx23885_vbibuffer is dropped, so -ENOMEM never reaches the interface
// return (the NPD bug of paper Fig. 1).
const Fig3PreSource = `
struct cx23885_riscmem {
	int *cpu;
	int size;
};
struct vb2_buffer {
	struct cx23885_riscmem risc;
	int state;
};
struct vb2_ops {
	int (*buf_prepare)(struct vb2_buffer *vb);
};
int *dma_alloc_coherent(int size);
int cx23885_vbibuffer(struct cx23885_riscmem *risc) {
	risc->cpu = dma_alloc_coherent(risc->size);
	if (risc->cpu == NULL)
		return -ENOMEM;
	return 0;
}
int buffer_prepare(struct vb2_buffer *vb) {
	cx23885_vbibuffer(&vb->risc);
	return 0;
}
struct vb2_ops cx23885_qops = {
	.buf_prepare = buffer_prepare,
};
`

// Fig4PreSource is the paper's Fig. 4 pre-patch code: the copy loop indexes
// msg[0].buf with data->len unchecked (out-of-bounds bug).
const Fig4PreSource = `
#define I2C_SMBUS_I2C_BLOCK_DATA 8
#define MAX 32
struct smbus_data {
	int len;
	char block[34];
};
struct msg_t { char *buf; };
struct i2c_algorithm {
	int (*smbus_xfer)(int size, struct smbus_data *data);
};
struct msg_t msg[2];
int xfer_emulated(int size, struct smbus_data *data) {
	int i;
	switch (size) {
	case I2C_SMBUS_I2C_BLOCK_DATA:
		for (i = 1; i <= data->len; i++)
			msg[0].buf[i] = data->block[i];
		break;
	}
	return 0;
}
struct i2c_algorithm smbus_algorithm = {
	.smbus_xfer = xfer_emulated,
};
`

// Fig4PostSource is the patched Fig. 4: the copy is guarded by a sanity
// check on data->len.
const Fig4PostSource = `
#define I2C_SMBUS_I2C_BLOCK_DATA 8
#define MAX 32
struct smbus_data {
	int len;
	char block[34];
};
struct msg_t { char *buf; };
struct i2c_algorithm {
	int (*smbus_xfer)(int size, struct smbus_data *data);
};
struct msg_t msg[2];
int xfer_emulated(int size, struct smbus_data *data) {
	int i;
	switch (size) {
	case I2C_SMBUS_I2C_BLOCK_DATA:
		if (data->len <= MAX) {
			for (i = 1; i <= data->len; i++)
				msg[0].buf[i] = data->block[i];
		}
		break;
	}
	return 0;
}
struct i2c_algorithm smbus_algorithm = {
	.smbus_xfer = xfer_emulated,
};
`

// Fig5PreSource is the paper's Fig. 5 pre-patch code: put_device is invoked
// before ida_free dereferences pdev->dev.devt (use-after-free bug).
const Fig5PreSource = `
struct device { int devt; int refcount; };
struct platform_device { struct device dev; };
struct ida { int bits; };
struct platform_driver {
	int (*probe)(struct platform_device *pdev);
	int (*remove)(struct platform_device *pdev);
};
void put_device(struct device *dev);
void ida_free(struct ida *ida, int id);
struct ida telem_ida;
int telem_remove(struct platform_device *pdev) {
	put_device(&pdev->dev);
	ida_free(&telem_ida, pdev->dev.devt);
	return 0;
}
struct platform_driver telem_driver = {
	.remove = telem_remove,
};
`

// Fig5PostSource is the patched Fig. 5: put_device is moved after the last
// use of pdev->dev.
const Fig5PostSource = `
struct device { int devt; int refcount; };
struct platform_device { struct device dev; };
struct ida { int bits; };
struct platform_driver {
	int (*probe)(struct platform_device *pdev);
	int (*remove)(struct platform_device *pdev);
};
void put_device(struct device *dev);
void ida_free(struct ida *ida, int id);
struct ida telem_ida;
int telem_remove(struct platform_device *pdev) {
	ida_free(&telem_ida, pdev->dev.devt);
	put_device(&pdev->dev);
	return 0;
}
struct platform_driver telem_driver = {
	.remove = telem_remove,
};
`
