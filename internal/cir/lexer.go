package cir

import (
	"fmt"
	"strconv"
	"strings"
)

// LexError describes a lexical error with position information.
type LexError struct {
	Msg  string
	Line int
	Col  int
}

// Error implements the error interface.
func (e *LexError) Error() string {
	return fmt.Sprintf("lex error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lexer converts kernel-C source text into tokens. It handles //- and
// /**/-style comments and #define NAME <int> macro definitions (recorded
// in Defines, and also emitted as TokHashDefine tokens so the parser can
// register them).
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the entire input. On error it returns the tokens produced
// so far along with the error.
func Lex(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return toks, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekByte2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) errf(format string, args ...interface{}) error {
	return &LexError{Msg: fmt.Sprintf(format, args...), Line: l.line, Col: l.col}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// skipSpaceAndComments consumes whitespace, line continuations, and comments.
func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '\\' && l.peekByte2() == '\n':
			l.advance()
			l.advance()
		case c == '/' && l.peekByte2() == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByte2() == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peekByte() == '*' && l.peekByte2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: l.line, Col: l.col}, nil
	}
	startLine, startCol := l.line, l.col
	mk := func(k TokKind, text string) Token {
		return Token{Kind: k, Text: text, Line: startLine, Col: startCol}
	}
	c := l.peekByte()

	// Preprocessor: only #define NAME value and #include (ignored) supported.
	if c == '#' {
		start := l.pos
		for l.pos < len(l.src) && l.peekByte() != '\n' {
			l.advance()
		}
		directive := l.src[start:l.pos]
		trimmed := strings.TrimSpace(strings.TrimPrefix(directive, "#"))
		if strings.HasPrefix(trimmed, "define") {
			return Token{Kind: TokHashDefine, Text: strings.TrimSpace(strings.TrimPrefix(trimmed, "define")), Line: startLine, Col: startCol}, nil
		}
		// #include and other directives are skipped.
		return l.Next()
	}

	if isIdentStart(c) {
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		if kw, ok := keywords[text]; ok {
			return mk(kw, text), nil
		}
		return mk(TokIdent, text), nil
	}

	if isDigit(c) {
		start := l.pos
		base := 10
		if c == '0' && (l.peekByte2() == 'x' || l.peekByte2() == 'X') {
			base = 16
			l.advance()
			l.advance()
			for l.pos < len(l.src) && isHexDigit(l.peekByte()) {
				l.advance()
			}
		} else {
			for l.pos < len(l.src) && isDigit(l.peekByte()) {
				l.advance()
			}
		}
		text := l.src[start:l.pos]
		// Integer suffixes (U, L, UL, ULL …) are accepted and ignored.
		for l.pos < len(l.src) && (l.peekByte() == 'u' || l.peekByte() == 'U' || l.peekByte() == 'l' || l.peekByte() == 'L') {
			l.advance()
		}
		numText := text
		if base == 16 {
			numText = text[2:]
		}
		v, err := strconv.ParseInt(numText, base, 64)
		if err != nil {
			// Overflow of int64: saturate rather than fail; kernel constants
			// like 0xffffffff fit, but be permissive.
			u, uerr := strconv.ParseUint(numText, base, 64)
			if uerr != nil {
				return Token{}, l.errf("bad integer literal %q", text)
			}
			v = int64(u)
		}
		t := mk(TokInt, text)
		t.Val = v
		return t, nil
	}

	if c == '"' {
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, l.errf("unterminated string literal")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' && l.pos < len(l.src) {
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '0':
					sb.WriteByte(0)
				default:
					sb.WriteByte(esc)
				}
				continue
			}
			sb.WriteByte(ch)
		}
		return mk(TokString, sb.String()), nil
	}

	if c == '\'' {
		l.advance()
		if l.pos >= len(l.src) {
			return Token{}, l.errf("unterminated char literal")
		}
		ch := l.advance()
		if ch == '\\' && l.pos < len(l.src) {
			esc := l.advance()
			switch esc {
			case 'n':
				ch = '\n'
			case 't':
				ch = '\t'
			case '0':
				ch = 0
			default:
				ch = esc
			}
		}
		if l.pos >= len(l.src) || l.advance() != '\'' {
			return Token{}, l.errf("unterminated char literal")
		}
		t := mk(TokChar, string(ch))
		t.Val = int64(ch)
		return t, nil
	}

	// Operators and punctuation.
	two := func(k TokKind) (Token, error) {
		l.advance()
		l.advance()
		return mk(k, ""), nil
	}
	one := func(k TokKind) (Token, error) {
		l.advance()
		return mk(k, ""), nil
	}
	d := l.peekByte2()
	switch c {
	case '(':
		return one(TokLParen)
	case ')':
		return one(TokRParen)
	case '{':
		return one(TokLBrace)
	case '}':
		return one(TokRBrace)
	case '[':
		return one(TokLBracket)
	case ']':
		return one(TokRBracket)
	case ';':
		return one(TokSemi)
	case ',':
		return one(TokComma)
	case ':':
		return one(TokColon)
	case '?':
		return one(TokQuest)
	case '.':
		return one(TokDot)
	case '~':
		return one(TokTilde)
	case '+':
		if d == '+' {
			return two(TokInc)
		}
		if d == '=' {
			return two(TokPlusEq)
		}
		return one(TokPlus)
	case '-':
		if d == '>' {
			return two(TokArrow)
		}
		if d == '-' {
			return two(TokDec)
		}
		if d == '=' {
			return two(TokMinusEq)
		}
		return one(TokMinus)
	case '*':
		return one(TokStar)
	case '/':
		return one(TokSlash)
	case '%':
		return one(TokPercent)
	case '&':
		if d == '&' {
			return two(TokAndAnd)
		}
		return one(TokAmp)
	case '|':
		if d == '|' {
			return two(TokOrOr)
		}
		return one(TokPipe)
	case '^':
		return one(TokCaret)
	case '!':
		if d == '=' {
			return two(TokNe)
		}
		return one(TokNot)
	case '=':
		if d == '=' {
			return two(TokEq)
		}
		return one(TokAssign)
	case '<':
		if d == '<' {
			return two(TokShl)
		}
		if d == '=' {
			return two(TokLe)
		}
		return one(TokLt)
	case '>':
		if d == '>' {
			return two(TokShr)
		}
		if d == '=' {
			return two(TokGe)
		}
		return one(TokGt)
	}
	return Token{}, l.errf("unexpected character %q", string(c))
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
