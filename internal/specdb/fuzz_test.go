package specdb

// FuzzSpecPage hammers the page decoder with arbitrary images. The
// contract under fuzzing: DecodePage never panics, never accepts an
// image whose checksum does not match, and every accepted page
// satisfies the structural invariants the B-tree relies on (parallel
// slices, sorted keys, in-bounds lengths).

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// buildSeedPages produces one valid page of each type via the real
// encoders, plus hostile variants.
func buildSeedPages(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte

	seeds = append(seeds, encodeMeta(meta{seq: 7, root: 3, npages: 9, nextOrd: 4, count: 2}))

	tx := &Tx{pages: make(map[uint64][]byte), baseN: 2, npages: 2}
	if _, err := tx.writeNode(&node{leaf: true,
		keys:  [][]byte{[]byte("api:kfree | k1"), []byte("iface:ops | k2")},
		vals:  [][]byte{[]byte("small"), []byte(strings.Repeat("v", maxInline+9))},
		ovfs:  []uint64{0, 0},
		vlens: []uint32{5, uint32(maxInline + 9)},
	}, 0); err != nil {
		tb.Fatal(err)
	}
	if _, err := tx.writeNode(&node{
		keys: [][]byte{[]byte("m")},
		kids: []uint64{2, 3},
	}, 0); err != nil {
		tb.Fatal(err)
	}
	for id := uint64(2); id < tx.npages; id++ {
		seeds = append(seeds, tx.pages[id])
	}

	// Corrupt variants: flipped payload byte, flipped checksum, wrong
	// type with a valid checksum, short and empty images.
	flip := append([]byte(nil), seeds[0]...)
	flip[40] ^= 0xFF
	reseal := append([]byte(nil), seeds[1]...)
	reseal[0] = 0x7F
	sealPage(reseal)
	badsum := append([]byte(nil), seeds[1]...)
	binary.LittleEndian.PutUint64(badsum[checksumOff:], 0xDEADBEEF)
	empty := make([]byte, PageSize)
	seeds = append(seeds, flip, reseal, badsum, empty, []byte("short"), nil)
	return seeds
}

func FuzzSpecPage(f *testing.F) {
	for _, seed := range buildSeedPages(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePage(data)
		if err != nil {
			if p != nil {
				t.Fatal("DecodePage returned both a page and an error")
			}
			return
		}
		if len(data) != PageSize {
			t.Fatalf("accepted a %d-byte page image", len(data))
		}
		if got := binary.LittleEndian.Uint64(data[checksumOff:]); got != checksum(data[:checksumOff]) {
			t.Fatal("accepted a page with a bad checksum")
		}
		switch p.Type {
		case pageMeta:
			// Nothing further: all meta fields are plain integers.
		case pageLeaf:
			if len(p.Vals) != len(p.Keys) || len(p.Ovf) != len(p.Keys) || len(p.VLen) != len(p.Keys) {
				t.Fatalf("leaf slices out of parallel: %d keys, %d vals, %d ovf, %d vlen",
					len(p.Keys), len(p.Vals), len(p.Ovf), len(p.VLen))
			}
			for i := range p.Keys {
				if p.Ovf[i] == 0 && int(p.VLen[i]) != len(p.Vals[i]) {
					t.Fatalf("leaf cell %d: inline length %d but vlen %d", i, len(p.Vals[i]), p.VLen[i])
				}
				if p.Ovf[i] != 0 && len(p.Vals[i]) != 0 {
					t.Fatalf("leaf cell %d carries both inline bytes and an overflow chain", i)
				}
			}
			assertSorted(t, p.Keys)
		case pageBranch:
			if len(p.Kids) != len(p.Keys)+1 {
				t.Fatalf("branch has %d kids for %d keys", len(p.Kids), len(p.Keys))
			}
			assertSorted(t, p.Keys)
		case pageOverflow:
			if len(p.Data) > ovfChunk {
				t.Fatalf("overflow data %d exceeds chunk capacity", len(p.Data))
			}
		default:
			t.Fatalf("accepted unknown page type %d", p.Type)
		}
	})
}

func assertSorted(t *testing.T, keys [][]byte) {
	t.Helper()
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatalf("accepted unsorted keys at %d", i)
		}
	}
}
