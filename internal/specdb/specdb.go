// Package specdb is a paged, B-tree-indexed, on-disk spec store with
// copy-on-write page snapshots and an atomic dual-meta-page commit.
//
// The file is an array of fixed-size pages. Pages 0 and 1 are the two
// alternating meta slots: a commit with sequence number S writes its
// meta page to slot S%2, so the previous commit's meta survives intact
// in the other slot and a crash anywhere during a commit recovers to
// the last fully committed snapshot. Data pages are never rewritten —
// a writer allocates fresh pages from the end of the file (copy-on-write
// up the B-tree path), syncs them, then publishes the new root by
// writing and syncing the meta page. Readers holding a Snapshot keep a
// consistent view for as long as they like: nothing they can reach is
// ever overwritten (Compact switches to a new file and retires the old
// handle only when the Store is closed).
//
// Every page carries a 64-bit FNV-1a checksum over its payload in its
// final 8 bytes, so torn writes and bit rot are detected at read time
// rather than silently decoded.
//
// Page layouts (all integers little-endian; C = PageSize-8 is the
// checksum offset):
//
//	meta:     type(1)=1 | magic(8) | version(4) | pagesize(4) |
//	          seq(8) | root(8) | npages(8) | nextord(8) | count(8) |
//	          walseq(8)
//	leaf:     type(1)=2 | nkeys(2) | cells...
//	          cell: klen(2) | vlen(4) | ovf(8) | key | inline-value
//	          (the value bytes are inline when ovf==0, otherwise the
//	          whole value lives in the overflow chain starting at ovf)
//	branch:   type(1)=3 | nkeys(2) | child0(8) | cells...
//	          cell: klen(2) | child(8) | key
//	          (keys[i] is the minimum key of the subtree at child i+1)
//	overflow: type(1)=4 | next(8) | dlen(4) | data
package specdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
)

const (
	// PageSize is the fixed on-disk page size.
	PageSize = 4096
	// FormatVersion is the store format this build reads and writes.
	// Stores written by a different format are rejected at Open with
	// ErrVersion — never decoded on a best-effort basis.
	FormatVersion = 1
	// MaxKeyLen bounds key length so that any page holds at least three
	// worst-case cells, which guarantees node splits always produce two
	// halves that each fit in a page.
	MaxKeyLen = 768

	magic = "SEALSPDB"

	pageMeta     = 1
	pageLeaf     = 2
	pageBranch   = 3
	pageOverflow = 4

	checksumOff = PageSize - 8 // payload is [0:checksumOff]

	// maxInline is the largest value stored inside a leaf cell; longer
	// values move entirely to an overflow chain.
	maxInline = 512

	leafHdr  = 3  // type + nkeys
	leafCell = 14 // klen(2) + vlen(4) + ovf(8)

	branchHdr  = 11 // type + nkeys + child0
	branchCell = 10 // klen(2) + child(8)

	ovfHdr   = 13 // type + next(8) + dlen(4)
	ovfChunk = checksumOff - ovfHdr
)

// Sentinel errors. Open and read paths wrap these with file/page context;
// use errors.Is to classify.
var (
	// ErrVersion marks a store written by a different format version.
	ErrVersion = errors.New("specdb: format version skew")
	// ErrCorrupt marks a page that fails checksum or structural decode.
	ErrCorrupt = errors.New("specdb: corrupt page")
	// ErrNotStore marks a file with no valid meta page at all.
	ErrNotStore = errors.New("specdb: not a spec store")
	// ErrReadOnly is returned by write operations on a read-only store.
	ErrReadOnly = errors.New("specdb: store is read-only")
	// ErrSnapshotGone is returned by OpenAt when the requested sequence
	// number matches neither resident meta slot (the snapshot has been
	// superseded twice, or never existed).
	ErrSnapshotGone = errors.New("specdb: snapshot no longer resident")
	// ErrKeyTooLong is returned by Put for keys above MaxKeyLen.
	ErrKeyTooLong = errors.New("specdb: key exceeds maximum length")
)

// file is the slice of *os.File the store needs. The crash-consistency
// harness substitutes a recording implementation to replay torn and
// truncated commit prefixes.
type file interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Close() error
	Size() (int64, error)
	Truncate(size int64) error
}

type osFile struct{ f *os.File }

func (o osFile) ReadAt(p []byte, off int64) (int, error)  { return o.f.ReadAt(p, off) }
func (o osFile) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }
func (o osFile) Sync() error                              { return o.f.Sync() }
func (o osFile) Close() error                             { return o.f.Close() }
func (o osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
func (o osFile) Truncate(size int64) error { return o.f.Truncate(size) }

// checksum is FNV-1a over the page payload.
func checksum(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// sealPage stamps the checksum into the page's final 8 bytes.
func sealPage(buf []byte) {
	binary.LittleEndian.PutUint64(buf[checksumOff:], checksum(buf[:checksumOff]))
}

// meta is the decoded content of a meta slot. walSeq is the WAL record
// sequence number this commit folded up to; WAL records with a higher
// sequence are the unfolded tail and replay on open. Stores written
// before the WAL existed carry zero bytes there and decode as walSeq 0,
// so the field is backward compatible within FormatVersion 1.
type meta struct {
	seq     uint64
	root    uint64
	npages  uint64
	nextOrd uint64
	count   uint64
	walSeq  uint64
}

func encodeMeta(m meta) []byte {
	buf := make([]byte, PageSize)
	buf[0] = pageMeta
	copy(buf[1:9], magic)
	binary.LittleEndian.PutUint32(buf[9:13], FormatVersion)
	binary.LittleEndian.PutUint32(buf[13:17], PageSize)
	binary.LittleEndian.PutUint64(buf[17:25], m.seq)
	binary.LittleEndian.PutUint64(buf[25:33], m.root)
	binary.LittleEndian.PutUint64(buf[33:41], m.npages)
	binary.LittleEndian.PutUint64(buf[41:49], m.nextOrd)
	binary.LittleEndian.PutUint64(buf[49:57], m.count)
	binary.LittleEndian.PutUint64(buf[57:65], m.walSeq)
	sealPage(buf)
	return buf
}

// Page is the decoded form of one on-disk page, exposed for inspection
// (seal specdb -verify) and fuzzing (FuzzSpecPage). DecodePage never
// panics on arbitrary input.
type Page struct {
	Type byte

	// Meta fields (Type == 1).
	Version uint32
	PageSz  uint32
	Seq     uint64
	Root    uint64
	NPages  uint64
	NextOrd uint64
	Count   uint64
	WALSeq  uint64

	// Node fields (Type == 2 or 3).
	Keys [][]byte
	Vals [][]byte // leaf inline values ("" for overflow values)
	Ovf  []uint64 // leaf per-key overflow head, 0 = inline
	VLen []uint32 // leaf full value lengths
	Kids []uint64 // branch children, len(Keys)+1

	// Overflow fields (Type == 4).
	Next uint64
	Data []byte
}

// DecodePage verifies the checksum and decodes one page image. The input
// must be exactly PageSize bytes. Structural errors wrap ErrCorrupt.
func DecodePage(buf []byte) (*Page, error) {
	if len(buf) != PageSize {
		return nil, fmt.Errorf("%w: page image is %d bytes, want %d", ErrCorrupt, len(buf), PageSize)
	}
	want := binary.LittleEndian.Uint64(buf[checksumOff:])
	if got := checksum(buf[:checksumOff]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (stored %#x, computed %#x)", ErrCorrupt, want, got)
	}
	return decodePageTrusted(buf)
}

// decodePageTrusted parses a page image whose checksum is known good:
// either DecodePage verified it, or the image is a transaction-local
// page this process sealed itself and never wrote to disk.
func decodePageTrusted(buf []byte) (*Page, error) {
	p := &Page{Type: buf[0]}
	switch p.Type {
	case pageMeta:
		if string(buf[1:9]) != magic {
			return nil, fmt.Errorf("%w: bad magic in meta page", ErrCorrupt)
		}
		p.Version = binary.LittleEndian.Uint32(buf[9:13])
		p.PageSz = binary.LittleEndian.Uint32(buf[13:17])
		p.Seq = binary.LittleEndian.Uint64(buf[17:25])
		p.Root = binary.LittleEndian.Uint64(buf[25:33])
		p.NPages = binary.LittleEndian.Uint64(buf[33:41])
		p.NextOrd = binary.LittleEndian.Uint64(buf[41:49])
		p.Count = binary.LittleEndian.Uint64(buf[49:57])
		p.WALSeq = binary.LittleEndian.Uint64(buf[57:65])
		return p, nil
	case pageLeaf:
		n := int(binary.LittleEndian.Uint16(buf[1:3]))
		off := leafHdr
		for i := 0; i < n; i++ {
			if off+leafCell > checksumOff {
				return nil, fmt.Errorf("%w: leaf cell %d header out of bounds", ErrCorrupt, i)
			}
			klen := int(binary.LittleEndian.Uint16(buf[off : off+2]))
			vlen := binary.LittleEndian.Uint32(buf[off+2 : off+6])
			ovf := binary.LittleEndian.Uint64(buf[off+6 : off+14])
			off += leafCell
			inline := 0
			if ovf == 0 {
				inline = int(vlen)
			}
			if klen > MaxKeyLen || inline > maxInline || off+klen+inline > checksumOff {
				return nil, fmt.Errorf("%w: leaf cell %d payload out of bounds", ErrCorrupt, i)
			}
			p.Keys = append(p.Keys, buf[off:off+klen])
			off += klen
			p.Vals = append(p.Vals, buf[off:off+inline])
			off += inline
			p.Ovf = append(p.Ovf, ovf)
			p.VLen = append(p.VLen, vlen)
		}
		if err := checkKeyOrder(p.Keys); err != nil {
			return nil, err
		}
		return p, nil
	case pageBranch:
		n := int(binary.LittleEndian.Uint16(buf[1:3]))
		if n == 0 {
			return nil, fmt.Errorf("%w: branch page with no keys", ErrCorrupt)
		}
		off := branchHdr
		p.Kids = append(p.Kids, binary.LittleEndian.Uint64(buf[3:11]))
		for i := 0; i < n; i++ {
			if off+branchCell > checksumOff {
				return nil, fmt.Errorf("%w: branch cell %d header out of bounds", ErrCorrupt, i)
			}
			klen := int(binary.LittleEndian.Uint16(buf[off : off+2]))
			child := binary.LittleEndian.Uint64(buf[off+2 : off+10])
			off += branchCell
			if klen > MaxKeyLen || off+klen > checksumOff {
				return nil, fmt.Errorf("%w: branch cell %d key out of bounds", ErrCorrupt, i)
			}
			p.Keys = append(p.Keys, buf[off:off+klen])
			off += klen
			p.Kids = append(p.Kids, child)
		}
		if err := checkKeyOrder(p.Keys); err != nil {
			return nil, err
		}
		return p, nil
	case pageOverflow:
		p.Next = binary.LittleEndian.Uint64(buf[1:9])
		dlen := binary.LittleEndian.Uint32(buf[9:13])
		if int(dlen) > ovfChunk {
			return nil, fmt.Errorf("%w: overflow length %d exceeds chunk capacity", ErrCorrupt, dlen)
		}
		p.Data = buf[ovfHdr : ovfHdr+int(dlen)]
		return p, nil
	default:
		return nil, fmt.Errorf("%w: unknown page type %d", ErrCorrupt, p.Type)
	}
}

func checkKeyOrder(keys [][]byte) error {
	for i := 1; i < len(keys); i++ {
		if string(keys[i-1]) >= string(keys[i]) {
			return fmt.Errorf("%w: keys out of order", ErrCorrupt)
		}
	}
	return nil
}

// decodeMetaSlot reads and validates one of the two meta slots. A
// non-zero skew return means the slot is a structurally valid meta page
// written by a different format version, so Open can report version
// skew cleanly instead of "corrupt".
func decodeMetaSlot(f file, slot uint64) (m meta, skew uint32, ok bool) {
	buf := make([]byte, PageSize)
	if _, err := f.ReadAt(buf, int64(slot)*PageSize); err != nil {
		return meta{}, 0, false
	}
	p, err := DecodePage(buf)
	if err != nil || p.Type != pageMeta {
		return meta{}, 0, false
	}
	if p.Version != FormatVersion || p.PageSz != PageSize {
		return meta{}, p.Version, false
	}
	return meta{seq: p.Seq, root: p.Root, npages: p.NPages, nextOrd: p.NextOrd, count: p.Count, walSeq: p.WALSeq}, 0, true
}
