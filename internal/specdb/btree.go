// Copy-on-write B-tree over the page file. Nodes are decoded whole into
// memory, mutated, and written back as fresh pages — existing pages are
// never modified, so every committed root spans an immutable subtree and
// snapshots are free. Deletion does not rebalance: empty leaves are
// unlinked from their parent and single-child branches collapse, which
// keeps the tree valid (if right-heavy after many deletes); Compact
// rebuilds a tight tree.
package specdb

import (
	"bytes"
	"fmt"
	"sort"
)

// pageSource resolves a page id to its verified page image. Snapshots
// read from the file; transactions overlay their unwritten dirty pages.
type pageSource interface {
	page(id uint64) ([]byte, error)
}

// trustedPageSource additionally serves pages that need no checksum
// verification: transaction-local images this process sealed itself, or
// file pages whose checksums already verified under this source. A
// batched commit re-reads the same path nodes on every operation, so
// skipping the redundant hash there is a large share of ingest cost.
// Verify deliberately reads through the bare Snapshot, which implements
// neither method, so a structural walk always re-checks every checksum.
type trustedPageSource interface {
	trustedPage(id uint64) ([]byte, bool)
	// noteVerified records a branch page that passed its checksum;
	// branch pages are the hot re-read set and stay bounded in count.
	noteVerified(id uint64, buf []byte)
}

// node is the in-memory form of a leaf or branch page. Leaf values are
// lazy: an overflow-backed value stays a (chain head, length) pair until
// something actually needs its bytes, and an unchanged overflow value is
// written back as a pointer to its existing chain, never re-spilled — so
// inserting into a leaf neither reads nor rewrites its neighbors'
// chains.
type node struct {
	leaf  bool
	keys  [][]byte
	vals  [][]byte // leaf only; nil for an unresolved overflow value
	ovfs  []uint64 // leaf only: existing overflow chain head per value (0 = inline or modified)
	vlens []uint32 // leaf only: declared value length
	kids  []uint64 // branch only, len(keys)+1
}

// value materializes leaf value i, resolving its overflow chain on
// first use.
func (n *node) value(src pageSource, i int) ([]byte, error) {
	if n.vals[i] != nil || n.ovfs[i] == 0 {
		return n.vals[i], nil
	}
	v, err := readOverflow(src, n.ovfs[i], n.vlens[i])
	if err != nil {
		return nil, err
	}
	n.vals[i] = v
	return v, nil
}

func readPage(src pageSource, id uint64) (*Page, error) {
	ts, trusted := src.(trustedPageSource)
	if trusted {
		if buf, ok := ts.trustedPage(id); ok {
			p, err := decodePageTrusted(buf)
			if err != nil {
				return nil, fmt.Errorf("page %d: %w", id, err)
			}
			return p, nil
		}
	}
	buf, err := src.page(id)
	if err != nil {
		return nil, err
	}
	p, err := DecodePage(buf)
	if err != nil {
		return nil, fmt.Errorf("page %d: %w", id, err)
	}
	if trusted && p.Type == pageBranch {
		ts.noteVerified(id, buf)
	}
	return p, nil
}

func readNode(src pageSource, id uint64) (*node, error) {
	p, err := readPage(src, id)
	if err != nil {
		return nil, err
	}
	switch p.Type {
	case pageLeaf:
		n := &node{leaf: true, keys: p.Keys, vals: make([][]byte, len(p.Keys)),
			ovfs: make([]uint64, len(p.Keys)), vlens: make([]uint32, len(p.Keys))}
		for i := range p.Keys {
			n.vlens[i] = p.VLen[i]
			if p.Ovf[i] == 0 {
				n.vals[i] = p.Vals[i]
				continue
			}
			n.ovfs[i] = p.Ovf[i] // bytes resolved lazily by value()
		}
		return n, nil
	case pageBranch:
		return &node{keys: p.Keys, kids: p.Kids}, nil
	default:
		return nil, fmt.Errorf("page %d: %w: expected a tree node, found page type %d", id, ErrCorrupt, p.Type)
	}
}

func readOverflow(src pageSource, id uint64, total uint32) ([]byte, error) {
	out := make([]byte, 0, total)
	// A well-formed chain has ceil(total/ovfChunk) pages; the +2 slack
	// tolerates an empty final chunk without admitting cycles.
	budget := int(total)/ovfChunk + 2
	for id != 0 {
		if budget--; budget < 0 {
			return nil, fmt.Errorf("%w: overflow chain at page %d longer than its declared length", ErrCorrupt, id)
		}
		p, err := readPage(src, id)
		if err != nil {
			return nil, err
		}
		if p.Type != pageOverflow {
			return nil, fmt.Errorf("page %d: %w: expected overflow page, found type %d", id, ErrCorrupt, p.Type)
		}
		out = append(out, p.Data...)
		id = p.Next
	}
	if len(out) != int(total) {
		return nil, fmt.Errorf("%w: overflow chain decodes to %d bytes, declared %d", ErrCorrupt, len(out), total)
	}
	return out, nil
}

// inlineLen is the in-page byte count of leaf value i: its length when
// it will be stored inline, 0 when it lives in an overflow chain.
func inlineLen(n *node, i int) int {
	if n.ovfs[i] != 0 || int(n.vlens[i]) > maxInline {
		return 0
	}
	return int(n.vlens[i])
}

// encodedSize is the full page size the node needs, header included.
func encodedSize(n *node) int {
	if n.leaf {
		sz := leafHdr
		for i := range n.keys {
			sz += leafCell + len(n.keys[i]) + inlineLen(n, i)
		}
		return sz
	}
	sz := branchHdr
	for i := range n.keys {
		sz += branchCell + len(n.keys[i])
	}
	return sz
}

// writeNode encodes a node (spilling large leaf values to overflow
// chains) into a page of the transaction. A page this transaction
// allocated itself (old >= tx.baseN) is rewritten in place — it is not
// yet on disk, so copy-on-write buys nothing and a batched commit would
// otherwise strew one dead page per touched node per operation. Pages
// of the base snapshot are never reused; old 0 always allocates.
// Likewise a leaf value still backed by the chain it was read from is
// written as a pointer to that chain instead of being re-spilled.
func (tx *Tx) writeNode(n *node, old uint64) (uint64, error) {
	buf := make([]byte, PageSize)
	if n.leaf {
		buf[0] = pageLeaf
		putU16(buf[1:3], len(n.keys))
		off := leafHdr
		for i := range n.keys {
			ovf := n.ovfs[i]
			var inline []byte
			switch {
			case ovf != 0:
				// Unchanged overflow value: point at the existing chain
				// without ever materializing the bytes.
			case int(n.vlens[i]) > maxInline:
				var err error
				ovf, err = tx.writeOverflow(n.vals[i])
				if err != nil {
					return 0, err
				}
				n.ovfs[i] = ovf
			default:
				inline = n.vals[i]
			}
			putU16(buf[off:off+2], len(n.keys[i]))
			putU32(buf[off+2:off+6], int(n.vlens[i]))
			putU64(buf[off+6:off+14], ovf)
			off += leafCell
			off += copy(buf[off:], n.keys[i])
			off += copy(buf[off:], inline)
		}
	} else {
		buf[0] = pageBranch
		putU16(buf[1:3], len(n.keys))
		putU64(buf[3:11], n.kids[0])
		off := branchHdr
		for i := range n.keys {
			putU16(buf[off:off+2], len(n.keys[i]))
			putU64(buf[off+2:off+10], n.kids[i+1])
			off += branchCell
			off += copy(buf[off:], n.keys[i])
		}
	}
	sealPage(buf)
	if old >= tx.baseN {
		tx.pages[old] = buf
		return old, nil
	}
	return tx.alloc(buf), nil
}

// writeOverflow writes a value as a chain of overflow pages, last chunk
// first so each page can point at its successor.
func (tx *Tx) writeOverflow(val []byte) (uint64, error) {
	nchunks := (len(val) + ovfChunk - 1) / ovfChunk
	next := uint64(0)
	for c := nchunks - 1; c >= 0; c-- {
		chunk := val[c*ovfChunk : min(len(val), (c+1)*ovfChunk)]
		buf := make([]byte, PageSize)
		buf[0] = pageOverflow
		putU64(buf[1:9], next)
		putU32(buf[9:13], len(chunk))
		copy(buf[ovfHdr:], chunk)
		sealPage(buf)
		next = tx.alloc(buf)
	}
	return next, nil
}

// childIndex picks the branch child to descend into for key: the last
// child whose separator range admits the key.
func childIndex(n *node, key []byte) int {
	return sort.Search(len(n.keys), func(i int) bool {
		return bytes.Compare(key, n.keys[i]) < 0
	})
}

// treeGet returns the value for key under root (0 = empty tree).
func treeGet(src pageSource, root uint64, key []byte) ([]byte, bool, error) {
	for root != 0 {
		n, err := readNode(src, root)
		if err != nil {
			return nil, false, err
		}
		if n.leaf {
			i := sort.Search(len(n.keys), func(i int) bool {
				return bytes.Compare(n.keys[i], key) >= 0
			})
			if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
				v, err := n.value(src, i)
				return v, true, err
			}
			return nil, false, nil
		}
		root = n.kids[childIndex(n, key)]
	}
	return nil, false, nil
}

// splitResult carries an insert's outcome back up the tree: the
// rewritten subtree root, plus a second subtree and its separator key
// when the node had to split.
type splitResult struct {
	left     uint64
	right    uint64
	sep      []byte
	split    bool
	replaced bool
}

func (tx *Tx) insertRec(id uint64, key, val []byte) (splitResult, error) {
	n, err := readNode(tx, id)
	if err != nil {
		return splitResult{}, err
	}
	var replaced bool
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool {
			return bytes.Compare(n.keys[i], key) >= 0
		})
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			n.vals[i] = val
			n.ovfs[i] = 0 // replaced: any old chain no longer matches
			n.vlens[i] = uint32(len(val))
			replaced = true
		} else {
			n.keys = append(n.keys[:i], append([][]byte{key}, n.keys[i:]...)...)
			n.vals = append(n.vals[:i], append([][]byte{val}, n.vals[i:]...)...)
			n.ovfs = append(n.ovfs[:i], append([]uint64{0}, n.ovfs[i:]...)...)
			n.vlens = append(n.vlens[:i], append([]uint32{uint32(len(val))}, n.vlens[i:]...)...)
		}
	} else {
		ci := childIndex(n, key)
		sr, err := tx.insertRec(n.kids[ci], key, val)
		if err != nil {
			return splitResult{}, err
		}
		replaced = sr.replaced
		n.kids[ci] = sr.left
		if sr.split {
			n.keys = append(n.keys[:ci], append([][]byte{sr.sep}, n.keys[ci:]...)...)
			n.kids = append(n.kids[:ci+1], append([]uint64{sr.right}, n.kids[ci+1:]...)...)
		}
	}
	if encodedSize(n) <= checksumOff {
		nid, err := tx.writeNode(n, id)
		return splitResult{left: nid, replaced: replaced}, err
	}
	left, right, sep := splitNode(n)
	lid, err := tx.writeNode(left, id)
	if err != nil {
		return splitResult{}, err
	}
	rid, err := tx.writeNode(right, 0)
	if err != nil {
		return splitResult{}, err
	}
	return splitResult{left: lid, right: rid, sep: sep, split: true, replaced: replaced}, nil
}

// splitNode divides an overfull node into two that each fit in a page.
// The split point byte-balances the halves; because MaxKeyLen+maxInline
// caps any single cell at under a third of a page, both halves of a
// node that overflowed by at most one cell are guaranteed to fit. For a
// leaf the separator is the right half's first key; for a branch the
// separator key is promoted and appears in neither half.
func splitNode(n *node) (left, right *node, sep []byte) {
	total := encodedSize(n)
	if n.leaf {
		acc := leafHdr
		m := 0
		for m < len(n.keys)-1 {
			cell := leafCell + len(n.keys[m]) + inlineLen(n, m)
			if m > 0 && acc+cell > total/2 {
				break
			}
			acc += cell
			m++
		}
		left = &node{leaf: true, keys: n.keys[:m:m], vals: n.vals[:m:m], ovfs: n.ovfs[:m:m], vlens: n.vlens[:m:m]}
		right = &node{leaf: true, keys: n.keys[m:], vals: n.vals[m:], ovfs: n.ovfs[m:], vlens: n.vlens[m:]}
		return left, right, right.keys[0]
	}
	acc := branchHdr
	m := 0
	for m < len(n.keys)-1 {
		cell := branchCell + len(n.keys[m])
		if m > 0 && acc+cell > total/2 {
			break
		}
		acc += cell
		m++
	}
	sep = n.keys[m]
	left = &node{keys: n.keys[:m:m], kids: n.kids[: m+1 : m+1]}
	right = &node{keys: n.keys[m+1:], kids: n.kids[m+1:]}
	return left, right, sep
}

// delResult carries a delete's outcome: the (possibly rewritten)
// subtree root, whether the key was found, and whether the subtree
// became empty and should be unlinked by the parent.
type delResult struct {
	id    uint64
	found bool
	empty bool
}

func (tx *Tx) deleteRec(id uint64, key []byte) (delResult, error) {
	n, err := readNode(tx, id)
	if err != nil {
		return delResult{}, err
	}
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool {
			return bytes.Compare(n.keys[i], key) >= 0
		})
		if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
			return delResult{id: id}, nil
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		n.ovfs = append(n.ovfs[:i], n.ovfs[i+1:]...)
		n.vlens = append(n.vlens[:i], n.vlens[i+1:]...)
		if len(n.keys) == 0 {
			return delResult{found: true, empty: true}, nil
		}
		nid, err := tx.writeNode(n, id)
		return delResult{id: nid, found: true}, err
	}
	ci := childIndex(n, key)
	dr, err := tx.deleteRec(n.kids[ci], key)
	if err != nil {
		return delResult{}, err
	}
	if !dr.found {
		return delResult{id: id}, nil
	}
	if dr.empty {
		n.kids = append(n.kids[:ci], n.kids[ci+1:]...)
		ki := ci
		if ki > 0 {
			ki--
		}
		n.keys = append(n.keys[:ki], n.keys[ki+1:]...)
		if len(n.kids) == 1 {
			// Single-child branch: collapse to the child (already
			// rewritten or untouched — either way a valid subtree).
			return delResult{id: n.kids[0], found: true}, nil
		}
	} else {
		n.kids[ci] = dr.id
	}
	nid, err := tx.writeNode(n, id)
	return delResult{id: nid, found: true}, err
}

// treeIterFrom walks keys in order starting at the first key >= lo
// (nil lo = from the start), calling fn until it returns false.
func treeIterFrom(src pageSource, root uint64, lo []byte, fn func(key, val []byte) (bool, error)) error {
	if root == 0 {
		return nil
	}
	_, err := iterNode(src, root, lo, fn)
	return err
}

func iterNode(src pageSource, id uint64, lo []byte, fn func(key, val []byte) (bool, error)) (bool, error) {
	n, err := readNode(src, id)
	if err != nil {
		return false, err
	}
	if n.leaf {
		start := 0
		if lo != nil {
			start = sort.Search(len(n.keys), func(i int) bool {
				return bytes.Compare(n.keys[i], lo) >= 0
			})
		}
		for i := start; i < len(n.keys); i++ {
			v, err := n.value(src, i)
			if err != nil {
				return false, err
			}
			cont, err := fn(n.keys[i], v)
			if err != nil || !cont {
				return false, err
			}
		}
		return true, nil
	}
	start := 0
	if lo != nil {
		start = childIndex(n, lo)
	}
	for ci := start; ci < len(n.kids); ci++ {
		bound := lo
		if ci > start {
			bound = nil // later subtrees are entirely >= lo
		}
		cont, err := iterNode(src, n.kids[ci], bound, fn)
		if err != nil || !cont {
			return false, err
		}
	}
	return true, nil
}

func putU16(b []byte, v int) { b[0] = byte(v); b[1] = byte(v >> 8) }
func putU32(b []byte, v int) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
