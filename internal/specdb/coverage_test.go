package specdb

// Edge-path suite: multi-level trees (branch splits and cascading
// deletes down to an empty root), decoder rejection of structurally
// hostile pages, commit-time I/O failures, and the remaining spec-layer
// error branches. These paths are exactly where storage engines rot,
// so the package holds a 90% coverage floor in CI.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"seal/internal/spec"
)

// TestDeepTreeSplitAndDrain forces branch splits with page-filling keys,
// then deletes every key in scrambled order: empty leaves unlink, single
// child branches collapse, and the tree drains to an empty root.
func TestDeepTreeSplitAndDrain(t *testing.T) {
	st := tmpStore(t)
	const n = 400
	pad := strings.Repeat("k", 700)
	keyAt := func(i int) string { return fmt.Sprintf("%s-%05d", pad, i) }

	err := st.Update(func(tx *Tx) error {
		for i := 0; i < n; i++ {
			if err := tx.Put([]byte(keyAt((i*311)%n)), []byte(fmt.Sprintf("v%d", i))); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	vs, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if vs.Keys != n {
		t.Fatalf("verify saw %d keys, want %d", vs.Keys, n)
	}
	// 700-byte keys fit ~5 per page, so 400 keys need a 3-level tree:
	// well past one root split, deep enough to split branches too.
	if vs.TreePages < 80 {
		t.Fatalf("tree suspiciously shallow: %d pages for %d page-filling keys", vs.TreePages, n)
	}

	rng := rand.New(rand.NewSource(5))
	order := rng.Perm(n)
	for batch := 0; batch < n; batch += 37 {
		err := st.Update(func(tx *Tx) error {
			for _, i := range order[batch:min(batch+37, n)] {
				ok, err := tx.Delete([]byte(keyAt(i)))
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("key %d vanished before delete", i)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Verify(); err != nil {
			t.Fatalf("verify after batch %d: %v", batch, err)
		}
	}
	if got := st.Current().Len(); got != 0 {
		t.Fatalf("drained store still holds %d keys", got)
	}
	if v, ok, err := st.Current().Get([]byte(keyAt(3))); ok || err != nil {
		t.Fatalf("Get on drained store = %q %v %v", v, ok, err)
	}
	// And the drained (root=0) tree accepts new keys again.
	mustPut(t, st, "fresh", "start")
	if got := st.Current().Len(); got != 1 {
		t.Fatalf("refill Len = %d", got)
	}
}

// TestDeleteMissInDeepTree exercises the not-found return through branch
// nodes: the tree must not be rewritten at all.
func TestDeleteMissInDeepTree(t *testing.T) {
	st := tmpStore(t)
	pad := strings.Repeat("p", 700)
	err := st.Update(func(tx *Tx) error {
		for i := 0; i < 40; i++ {
			if err := tx.Put([]byte(fmt.Sprintf("%s-%03d", pad, i*2)), []byte("v")); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := st.Current().Seq()
	err = st.Update(func(tx *Tx) error {
		ok, err := tx.Delete([]byte(pad + "-007")) // between existing keys
		if ok || err != nil {
			return fmt.Errorf("phantom delete: %v %v", ok, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Current().Seq() != seq {
		t.Fatal("a missed delete committed")
	}
}

// TestTxReadYourWrites pins the transaction-local view: Get/Iterate/
// IterateFrom inside Update see staged mutations before commit.
func TestTxReadYourWrites(t *testing.T) {
	st := tmpStore(t)
	mustPut(t, st, "a", "1", "b", "2", "c", "3")
	err := st.Update(func(tx *Tx) error {
		if err := tx.Put([]byte("b"), []byte("staged")); err != nil {
			return err
		}
		if _, err := tx.Delete([]byte("c")); err != nil {
			return err
		}
		v, ok, err := tx.Get([]byte("b"))
		if err != nil || !ok || string(v) != "staged" {
			return fmt.Errorf("tx.Get(b) = %q %v %v", v, ok, err)
		}
		var all []string
		if err := tx.Iterate(func(k, v []byte) (bool, error) {
			all = append(all, string(k)+"="+string(v))
			return true, nil
		}); err != nil {
			return err
		}
		if strings.Join(all, ",") != "a=1,b=staged" {
			return fmt.Errorf("tx.Iterate = %v", all)
		}
		var tail []string
		if err := tx.IterateFrom([]byte("b"), func(k, _ []byte) (bool, error) {
			tail = append(tail, string(k))
			return true, nil
		}); err != nil {
			return err
		}
		if strings.Join(tail, ",") != "b" {
			return fmt.Errorf("tx.IterateFrom = %v", tail)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The staged view committed.
	if v, _, _ := st.Current().Get([]byte("b")); string(v) != "staged" {
		t.Fatalf("commit lost staged write: %q", v)
	}
}

// TestDecodePageRejectsHostileStructures covers each structural decode
// rejection with a correctly checksummed but malformed page.
func TestDecodePageRejectsHostileStructures(t *testing.T) {
	mk := func(mut func(buf []byte)) []byte {
		buf := make([]byte, PageSize)
		mut(buf)
		sealPage(buf)
		return buf
	}
	cases := map[string][]byte{
		"unknown type": mk(func(b []byte) { b[0] = 77 }),
		"meta bad magic": mk(func(b []byte) {
			b[0] = pageMeta
			copy(b[1:9], "NOTMAGIC")
		}),
		"leaf header overrun": mk(func(b []byte) {
			b[0] = pageLeaf
			binary.LittleEndian.PutUint16(b[1:3], 65535)
		}),
		"leaf key overrun": mk(func(b []byte) {
			b[0] = pageLeaf
			binary.LittleEndian.PutUint16(b[1:3], 1)
			binary.LittleEndian.PutUint16(b[3:5], MaxKeyLen+1) // klen
		}),
		"leaf unsorted keys": mk(func(b []byte) {
			b[0] = pageLeaf
			binary.LittleEndian.PutUint16(b[1:3], 2)
			off := leafHdr
			for _, k := range []string{"b", "a"} {
				binary.LittleEndian.PutUint16(b[off:off+2], 1)
				off += leafCell
				off += copy(b[off:], k)
			}
		}),
		"branch zero keys": mk(func(b []byte) { b[0] = pageBranch }),
		"branch cell overrun": mk(func(b []byte) {
			b[0] = pageBranch
			binary.LittleEndian.PutUint16(b[1:3], 400)
		}),
		"branch key overrun": mk(func(b []byte) {
			b[0] = pageBranch
			binary.LittleEndian.PutUint16(b[1:3], 1)
			binary.LittleEndian.PutUint16(b[branchHdr:branchHdr+2], 60000)
		}),
		"overflow oversize": mk(func(b []byte) {
			b[0] = pageOverflow
			binary.LittleEndian.PutUint32(b[9:13], uint32(ovfChunk+1))
		}),
	}
	for name, buf := range cases {
		if _, err := DecodePage(buf); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: DecodePage = %v, want ErrCorrupt", name, err)
		}
	}
	if _, err := DecodePage(make([]byte, 17)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short image: %v", err)
	}
}

// TestSnapshotPageBounds rejects page ids outside the snapshot's
// committed page range before touching the file.
func TestSnapshotPageBounds(t *testing.T) {
	st := tmpStore(t)
	mustPut(t, st, "k", "v")
	for _, id := range []uint64{0, 1, 1 << 40} {
		if _, err := st.Current().page(id); !errors.Is(err, ErrCorrupt) {
			t.Errorf("page(%d) = %v, want ErrCorrupt", id, err)
		}
	}
}

// failFile injects a WriteAt or Sync failure after a countdown, to
// drive the commit error paths.
type failFile struct {
	*memFile
	writesLeft int
	failSync   bool
}

var errInjected = errors.New("injected I/O failure")

func (f *failFile) WriteAt(p []byte, off int64) (int, error) {
	if f.writesLeft <= 0 {
		return 0, errInjected
	}
	f.writesLeft--
	return f.memFile.WriteAt(p, off)
}

func (f *failFile) Sync() error {
	if f.failSync && f.writesLeft <= 0 {
		return errInjected
	}
	return f.memFile.Sync()
}

func TestCommitSurfacesWriteErrors(t *testing.T) {
	for _, tc := range []struct {
		name   string
		budget int
		sync   bool
	}{
		{"first data page write fails", 0, false},
		{"meta write fails", 1, false},
		{"sync fails", 1, true},
	} {
		mem := &memFile{}
		if err := initEmpty(mem); err != nil {
			t.Fatal(err)
		}
		ff := &failFile{memFile: mem, writesLeft: 1 << 30}
		st, err := openWith(ff, "fail.mem", false)
		if err != nil {
			t.Fatal(err)
		}
		ff.writesLeft = tc.budget
		ff.failSync = tc.sync
		err = st.Update(func(tx *Tx) error { return tx.Put([]byte("k"), []byte("v")) })
		if !errors.Is(err, errInjected) {
			t.Errorf("%s: Update = %v, want injected failure", tc.name, err)
		}
		// The in-memory state must not have advanced past the failure.
		ff.writesLeft = 1 << 30
		ff.failSync = false
		if st.Current().Seq() != 1 {
			t.Errorf("%s: failed commit advanced seq to %d", tc.name, st.Current().Seq())
		}
	}
}

func TestCreateRefusesExistingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "specs.db")
	st, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := Create(path); err == nil {
		t.Fatal("Create over an existing file succeeded")
	}
}

func TestCorruptSpecRecordSurfaces(t *testing.T) {
	st := tmpStore(t)
	importCorpus(t, st)
	// Smuggle garbage under a spec-layer key shape.
	mustPut(t, st, "api:zzz | ∄: junk", "{not json")
	if _, err := st.Current().Specs(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Specs over garbage record = %v, want ErrCorrupt", err)
	}
	if _, _, err := st.Current().SpecByKey("api:zzz | ∄: junk"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("SpecByKey over garbage record = %v", err)
	}
	// A record holding zero specs is equally corrupt.
	mustPut(t, st, "api:zzz | ∄: junk", `{"ord":1,"db":{"specs":[]}}`)
	if _, _, err := st.Current().SpecByKey("api:zzz | ∄: junk"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("SpecByKey over empty record = %v", err)
	}
}

func TestImportRejectsOversizedKey(t *testing.T) {
	st := tmpStore(t)
	bad := mkSpec(strings.Repeat("very.long.interface.", 50), "api", true, 1, "p")
	if _, _, err := st.ImportSpecs([]*spec.Spec{bad}); !errors.Is(err, ErrKeyTooLong) {
		t.Fatalf("ImportSpecs(oversized key) = %v, want ErrKeyTooLong", err)
	}
	if _, err := st.UpsertSpec(bad); !errors.Is(err, ErrKeyTooLong) {
		t.Fatalf("UpsertSpec(oversized key) = %v, want ErrKeyTooLong", err)
	}
}

// TestQueryMatchRemainingBranches drives each single-field rejection.
func TestQueryMatchRemainingBranches(t *testing.T) {
	sp := mkSpec("ops.prepare", "kmalloc", true, 1, "patch-1")
	tr := true
	fa := false
	cases := []struct {
		q    Query
		want bool
	}{
		{Query{}, true},
		{Query{Scope: "iface:ops.prepare"}, true},
		{Query{Scope: "api:kmalloc"}, false},
		{Query{Iface: "ops.finish"}, false},
		{Query{API: "kfree"}, false},
		{Query{Origin: "P+"}, false},
		{Query{OriginPatch: "patch-2"}, false},
		{Query{Forbidden: &tr}, true},
		{Query{Forbidden: &fa}, false},
	}
	for i, tc := range cases {
		if got := tc.q.Match(sp); got != tc.want {
			t.Errorf("case %d: Match = %v, want %v", i, got, tc.want)
		}
	}
}

func TestStorePathAccessor(t *testing.T) {
	st := tmpStore(t)
	if st.Path() == "" || !strings.HasSuffix(st.Path(), "specs.db") {
		t.Fatalf("Path = %q", st.Path())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}
	if err := st.Update(func(tx *Tx) error { return nil }); err == nil {
		t.Fatal("Update on closed store succeeded")
	}
	if _, err := st.Compact(); err == nil {
		t.Fatal("Compact on closed store succeeded")
	}
}

// TestBranchPageMemoization drives the two checksum-memoization paths
// added with group commit: the store's lookup cache (batched-import
// dedup walking the committed tree once per snapshot) and a
// transaction's verified-branch set (several operations in one Update
// descending the same committed branch pages). Both only engage on
// branch pages, so the tree must be deep enough to have them.
func TestBranchPageMemoization(t *testing.T) {
	st := tmpStore(t)
	big := strings.Repeat("v", maxInline+50)
	keyAt := func(i int) string { return fmt.Sprintf("memo-%05d", i) }
	err := st.Update(func(tx *Tx) error {
		for i := 0; i < 400; i++ {
			val := fmt.Sprintf("val%05d", i)
			if i%37 == 0 {
				val = big // overflow chains mixed into the leaves
			}
			if err := tx.Put([]byte(keyAt(i)), []byte(val)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sn := st.Current()
	root, err := readPage(sn, sn.meta.root)
	if err != nil {
		t.Fatal(err)
	}
	if root.Type != pageBranch {
		t.Fatalf("root is type %d, want a branch — memoization paths vacuous", root.Type)
	}

	// Store-level lookups: the first walk verifies and memoizes the root
	// branch; repeat walks must be served from the cache, and the cache
	// must survive only as long as its snapshot.
	st.mu.Lock()
	for _, i := range []int{3, 250, 399, 3} {
		v, ok, err := st.lookupLocked([]byte(keyAt(i)))
		if err != nil || !ok {
			t.Fatalf("lookupLocked(%d) = %v, %v", i, ok, err)
		}
		want := fmt.Sprintf("val%05d", i)
		if i%37 == 0 {
			want = big
		}
		if string(v) != want {
			t.Fatalf("lookupLocked(%d) returned %d bytes, want %d", i, len(v), len(want))
		}
	}
	if st.look == nil || len(st.look.verified) == 0 {
		t.Fatal("lookup cache memoized no branch pages")
	}
	if _, ok := st.look.verified[sn.meta.root]; !ok {
		t.Fatal("root branch page missing from lookup cache")
	}
	prev := st.look
	st.mu.Unlock()

	// A commit publishes a new snapshot; the stale cache must be
	// discarded, not consulted.
	mustPut(t, st, keyAt(1), "rewritten")
	st.mu.Lock()
	src, snap := st.lookupSourceLocked()
	if src == prev || snap == sn {
		t.Fatal("lookup cache not rebuilt after commit")
	}
	st.mu.Unlock()

	// Transaction-level: two operations in one Update descend the same
	// committed branch pages; the second must reuse the first's
	// verification.
	err = st.Update(func(tx *Tx) error {
		if err := tx.Put([]byte(keyAt(40)), []byte("x")); err != nil {
			return err
		}
		if len(tx.verified) == 0 {
			return fmt.Errorf("transaction verified no committed branch pages")
		}
		if _, ok := tx.trustedPage(snap.meta.root); !ok {
			return fmt.Errorf("root branch not trusted after first descent")
		}
		return tx.Put([]byte(keyAt(360)), []byte("y"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Verify(); err != nil {
		t.Fatal(err)
	}
}
