package specdb

// Crash-consistency harness for the group-commit write path. The
// original harness replays every prefix of the store file's write
// sequence; this one records the COMBINED physical sequence — WAL
// appends, WAL truncations, and B-tree page/meta writes interleaved in
// issue order across both files — and replays every prefix of it. The
// oracle is per-operation, not per-commit: once an operation's WAL
// record is fully on disk it is durable, whether or not the fold that
// absorbs it ever ran, so a crash at any prefix must recover (via meta
// recovery plus WAL tail replay) to the state after the last fully
// appended record, with spec ordinals preserved exactly.

import (
	"fmt"
	"math/rand"
	"testing"

	"seal/internal/spec"
)

// twinOp is one physical operation on one of the two files.
type twinOp struct {
	wal   bool // which file
	trunc bool // Truncate(size) instead of WriteAt(data, off)
	off   int64
	data  []byte
	size  int64
}

// twinFile mirrors one file's writes into a memFile while logging them,
// tagged by file, into a log shared with its sibling.
type twinFile struct {
	mem *memFile
	wal bool
	log *[]twinOp
}

func (f *twinFile) ReadAt(p []byte, off int64) (int, error) { return f.mem.ReadAt(p, off) }
func (f *twinFile) WriteAt(p []byte, off int64) (int, error) {
	*f.log = append(*f.log, twinOp{wal: f.wal, off: off, data: append([]byte(nil), p...)})
	return f.mem.WriteAt(p, off)
}
func (f *twinFile) Truncate(n int64) error {
	*f.log = append(*f.log, twinOp{wal: f.wal, trunc: true, size: n})
	return f.mem.Truncate(n)
}
func (f *twinFile) Sync() error          { return nil }
func (f *twinFile) Close() error         { return nil }
func (f *twinFile) Size() (int64, error) { return f.mem.Size() }

// durableState is the oracle after one operation's WAL record landed.
type durableState struct {
	model   map[string]string // key -> encoded spec record bytes
	nextOrd uint64
	writes  int // combined-log length once the record was fully appended
}

// buildWALCrashRun drives a deterministic spec-level workload through a
// group-commit batch over twin recording files, folding every few
// records, and returns the combined log plus the per-operation oracle.
func buildWALCrashRun(t *testing.T) ([]twinOp, []durableState) {
	t.Helper()
	var log []twinOp
	main := &twinFile{mem: &memFile{}, log: &log}
	walf := &twinFile{mem: &memFile{}, wal: true, log: &log}
	if err := initEmpty(main); err != nil {
		t.Fatal(err)
	}
	st, err := openStore(main, walf, "walcrash.mem", false, Options{
		Commit: CommitPolicy{Records: 4, Bytes: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := st.Batch()

	model := map[string]string{}
	ordOf := map[string]uint64{}
	nextOrd := uint64(1)
	states := []durableState{{model: copyModel(model), nextOrd: nextOrd, writes: len(log)}}
	// An operation is durable the moment its WAL append completes — the
	// FIRST physical write its call issues — not when the call returns:
	// a policy-tripped fold inside the same call adds page writes after
	// the record is already recoverable. record is called with the log
	// length observed before the operation.
	record := func(pre int) {
		states = append(states, durableState{model: copyModel(model), nextOrd: nextOrd, writes: pre + 1})
	}

	rng := rand.New(rand.NewSource(41))
	pool := make([]*spec.Spec, 12)
	for i := range pool {
		pool[i] = mkSpec(fmt.Sprintf("crash.ops%02d", i), "kmalloc", i%2 == 0, int64(i), "p0")
	}
	for c := 0; c < 36; c++ {
		i := rng.Intn(len(pool))
		base := *pool[i]
		key := base.Key()
		pre := len(log)
		switch {
		case rng.Intn(4) == 0:
			ok, err := b.DeleteSpec(key)
			if err != nil {
				t.Fatal(err)
			}
			_, had := model[key]
			if ok != had {
				t.Fatalf("op %d: delete(%q) = %v, model had %v", c, key, ok, had)
			}
			if had {
				delete(model, key)
				record(pre) // the tombstone record is durable
			}
		default:
			edited := base
			edited.OriginPatch = fmt.Sprintf("p%d", c)
			created, err := b.UpsertSpec(&edited)
			if err != nil {
				t.Fatal(err)
			}
			ord, had := ordOf[key]
			if _, live := model[key]; created == live {
				t.Fatalf("op %d: upsert(%q) created=%v, model live=%v", c, key, created, live)
			}
			if !had || created {
				// A fresh insert (including re-insert after delete)
				// allocates the next ordinal.
				ord = nextOrd
				nextOrd++
				ordOf[key] = ord
			}
			val, err := encodeSpec(ord, &edited)
			if err != nil {
				t.Fatal(err)
			}
			model[key] = string(val)
			record(pre)
		}
		if rng.Intn(9) == 0 {
			if err := b.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	return log, states
}

// replayTwin rebuilds both file images after the first n combined ops.
func replayTwin(log []twinOp, n int) (main, wal *memFile) {
	main, wal = &memFile{}, &memFile{}
	for _, op := range log[:n] {
		f := main
		if op.wal {
			f = wal
		}
		if op.trunc {
			f.Truncate(op.size)
		} else {
			f.WriteAt(op.data, op.off)
		}
	}
	return main, wal
}

// expectDurable returns the oracle state a crash after `writes`
// combined ops must recover to.
func expectDurable(states []durableState, writes int) (durableState, bool) {
	var best durableState
	found := false
	for _, s := range states {
		if s.writes <= writes {
			best = s
			found = true
		}
	}
	return best, found
}

// checkWALRecovery opens a crash image pair read-write (meta recovery +
// tail replay into one commit) and asserts the exact oracle state.
func checkWALRecovery(t *testing.T, main, wal *memFile, want durableState, haveGenesis bool, label string) {
	t.Helper()
	st, err := openStore(main, wal, label, false, Options{})
	if err != nil {
		if haveGenesis {
			t.Fatalf("%s: lost durable state: %v", label, err)
		}
		return
	}
	if !haveGenesis {
		t.Fatalf("%s: opened with no durable genesis", label)
	}
	if _, err := st.Verify(); err != nil {
		t.Fatalf("%s: verify after recovery: %v", label, err)
	}
	checkAgainstModel(t, st.Current(), want.model, label)
	if got := st.Stats().NextOrd; got != want.nextOrd {
		t.Fatalf("%s: recovered NextOrd %d, want %d (ordinal allocation lost)", label, got, want.nextOrd)
	}
}

// TestWALCrashConsistencyEveryPrefix replays the combined WAL+page
// write sequence cut at every prefix, plus a torn variant of each
// in-flight write, read-write and read-only.
func TestWALCrashConsistencyEveryPrefix(t *testing.T) {
	log, states := buildWALCrashRun(t)
	genesisWrites := states[0].writes

	for p := 0; p <= len(log); p++ {
		want, _ := expectDurable(states, p)
		have := p >= genesisWrites
		label := fmt.Sprintf("prefix %d/%d", p, len(log))

		main, wal := replayTwin(log, p)
		checkWALRecovery(t, main, wal, want, have, label)

		// The same crash image opened read-only: the unfolded tail must
		// overlay to the identical state, with neither file written.
		main, wal = replayTwin(log, p)
		mainBytes := append([]byte(nil), main.buf...)
		walBytes := append([]byte(nil), wal.buf...)
		if ro, err := openStore(main, wal, label, true, Options{}); err == nil {
			checkAgainstModel(t, ro.Current(), want.model, label+" (ro)")
			if string(main.buf) != string(mainBytes) || string(wal.buf) != string(walBytes) {
				t.Fatalf("%s: read-only recovery wrote to a crash image", label)
			}
		} else if have {
			t.Fatalf("%s: read-only open lost durable state: %v", label, err)
		}

		if p == len(log) {
			continue
		}
		// Torn in-flight write: half of op p lands (a torn WAL append or
		// a torn page write, depending on which file op p targets).
		next := log[p]
		if next.trunc {
			continue
		}
		main, wal = replayTwin(log, p)
		torn := main
		if next.wal {
			torn = wal
		}
		torn.WriteAt(next.data[:len(next.data)/2], next.off)
		checkWALRecovery(t, main, wal, want, have, fmt.Sprintf("torn %d/%d", p, len(log)))
	}
}

// TestWALCrashRecoveredStoreStaysWritable: recovery is not read-repair
// only — after recovering from an arbitrary mid-run crash point, the
// store must accept further batched writes and fold them.
func TestWALCrashRecoveredStoreStaysWritable(t *testing.T) {
	log, states := buildWALCrashRun(t)
	for _, frac := range []int{3, 2, 1} {
		p := len(log) / frac
		want, _ := expectDurable(states, p)
		main, wal := replayTwin(log, p)
		st, err := openStore(main, wal, "rewrite", false, Options{Commit: CommitPolicy{Records: 2, Bytes: 1 << 30}})
		if err != nil {
			t.Fatalf("cut %d: %v", p, err)
		}
		b := st.Batch()
		sp := mkSpec("crash.after", "krealloc", true, int64(frac), "post")
		created, err := b.UpsertSpec(sp)
		if err != nil || !created {
			t.Fatalf("cut %d: post-recovery upsert: %v %v", p, created, err)
		}
		if err := b.Flush(); err != nil {
			t.Fatal(err)
		}
		got, found, err := st.Current().SpecByKey(sp.Key())
		if err != nil || !found || got.OriginPatch != "post" {
			t.Fatalf("cut %d: post-recovery spec unreadable: %v %v %v", p, found, err, got)
		}
		if n := st.Current().Len(); n != len(want.model)+1 {
			t.Fatalf("cut %d: len %d, want %d", p, n, len(want.model)+1)
		}
	}
}
