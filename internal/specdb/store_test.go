package specdb

// Unit suite for the store proper: raw key/value operations across
// commits and reopens, overflow values, compaction, verification, the
// OpenAt snapshot-pinning contract, version-skew rejection, and the
// spec/query layer's ordinal-order guarantees.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seal/internal/solver"
	"seal/internal/spec"
)

func tmpStore(t *testing.T) *Store {
	t.Helper()
	st, err := Create(filepath.Join(t.TempDir(), "specs.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func mustPut(t *testing.T, st *Store, kv ...string) {
	t.Helper()
	if len(kv)%2 != 0 {
		t.Fatal("odd kv list")
	}
	err := st.Update(func(tx *Tx) error {
		for i := 0; i < len(kv); i += 2 {
			if err := tx.Put([]byte(kv[i]), []byte(kv[i+1])); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func dump(t *testing.T, sn *Snapshot) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := sn.Iterate(func(k, v []byte) (bool, error) {
		out[string(k)] = string(v)
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBasicPutGetDelete(t *testing.T) {
	st := tmpStore(t)
	mustPut(t, st, "b", "2", "a", "1", "c", "3")
	sn := st.Current()
	if sn.Len() != 3 {
		t.Fatalf("Len = %d, want 3", sn.Len())
	}
	v, ok, err := sn.Get([]byte("b"))
	if err != nil || !ok || string(v) != "2" {
		t.Fatalf("Get(b) = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := sn.Get([]byte("zz")); ok {
		t.Fatal("Get(zz) found a phantom key")
	}

	// Replace does not change the count.
	mustPut(t, st, "b", "two")
	if got := st.Current().Len(); got != 3 {
		t.Fatalf("Len after replace = %d, want 3", got)
	}

	err = st.Update(func(tx *Tx) error {
		ok, err := tx.Delete([]byte("a"))
		if err != nil || !ok {
			return fmt.Errorf("Delete(a) = %v, %v", ok, err)
		}
		ok, err = tx.Delete([]byte("missing"))
		if err != nil || ok {
			return fmt.Errorf("Delete(missing) = %v, %v", ok, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := dump(t, st.Current())
	if len(got) != 2 || got["b"] != "two" || got["c"] != "3" {
		t.Fatalf("final state %v", got)
	}
}

func TestIterationOrderAndRange(t *testing.T) {
	st := tmpStore(t)
	// Enough keys to force a multi-level tree.
	err := st.Update(func(tx *Tx) error {
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("key-%04d", (i*193)%500) // scrambled insert order
			if err := tx.Put([]byte(k), []byte(strings.Repeat("v", i%40))); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	if err := st.Current().Iterate(func(k, _ []byte) (bool, error) {
		keys = append(keys, string(k))
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 500 {
		t.Fatalf("iterated %d keys, want 500", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys out of order at %d: %q >= %q", i, keys[i-1], keys[i])
		}
	}
	// Range scan from the middle.
	var from []string
	err = st.Current().IterateFrom([]byte("key-0250"), func(k, _ []byte) (bool, error) {
		from = append(from, string(k))
		return len(from) < 5, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"key-0250", "key-0251", "key-0252", "key-0253", "key-0254"}
	if strings.Join(from, ",") != strings.Join(want, ",") {
		t.Fatalf("IterateFrom = %v, want %v", from, want)
	}
}

func TestOverflowValues(t *testing.T) {
	st := tmpStore(t)
	big := strings.Repeat("x", 3*ovfChunk+17) // spans four overflow pages
	mid := strings.Repeat("y", maxInline+1)   // smallest overflow value
	edge := strings.Repeat("z", maxInline)    // largest inline value
	mustPut(t, st, "big", big, "mid", mid, "edge", edge)
	for k, want := range map[string]string{"big": big, "mid": mid, "edge": edge} {
		v, ok, err := st.Current().Get([]byte(k))
		if err != nil || !ok {
			t.Fatalf("Get(%s): %v %v", k, ok, err)
		}
		if string(v) != want {
			t.Fatalf("Get(%s) = %d bytes, want %d", k, len(v), len(want))
		}
	}
	if _, err := st.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIsolationAcrossCommit(t *testing.T) {
	st := tmpStore(t)
	mustPut(t, st, "k1", "old", "k2", "keep")
	old := st.Current()
	mustPut(t, st, "k1", "new", "k3", "added")
	if err := st.Update(func(tx *Tx) error { _, err := tx.Delete([]byte("k2")); return err }); err != nil {
		t.Fatal(err)
	}

	got := dump(t, old)
	if len(got) != 2 || got["k1"] != "old" || got["k2"] != "keep" {
		t.Fatalf("old snapshot changed after commits: %v", got)
	}
	cur := dump(t, st.Current())
	if len(cur) != 2 || cur["k1"] != "new" || cur["k3"] != "added" {
		t.Fatalf("current snapshot wrong: %v", cur)
	}
	if old.Seq() >= st.Current().Seq() {
		t.Fatalf("seq did not advance: %d -> %d", old.Seq(), st.Current().Seq())
	}
}

func TestReopenByteIdentity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "specs.db")
	st, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, st, "alpha", "1", "beta", strings.Repeat("b", 2000), "gamma", "3")
	want := dump(t, st.Current())
	wantSeq := st.Current().Seq()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Current().Seq() != wantSeq {
		t.Fatalf("reopened seq %d, want %d", st2.Current().Seq(), wantSeq)
	}
	got := dump(t, st2.Current())
	if len(got) != len(want) {
		t.Fatalf("reopened %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("reopened %q = %q, want %q", k, got[k], v)
		}
	}
}

func TestUpdateRollbackOnError(t *testing.T) {
	st := tmpStore(t)
	mustPut(t, st, "k", "v")
	seq := st.Current().Seq()
	boom := errors.New("boom")
	err := st.Update(func(tx *Tx) error {
		if err := tx.Put([]byte("junk"), []byte("junk")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Update error = %v", err)
	}
	if st.Current().Seq() != seq {
		t.Fatal("failed Update advanced the commit sequence")
	}
	if _, ok, _ := st.Current().Get([]byte("junk")); ok {
		t.Fatal("failed Update leaked a key")
	}
	// A no-op Update must not commit either.
	if err := st.Update(func(tx *Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if st.Current().Seq() != seq {
		t.Fatal("empty Update advanced the commit sequence")
	}
}

func TestPutKeyValidation(t *testing.T) {
	st := tmpStore(t)
	err := st.Update(func(tx *Tx) error { return tx.Put(nil, []byte("v")) })
	if err == nil || !strings.Contains(err.Error(), "empty key") {
		t.Fatalf("empty key error = %v", err)
	}
	err = st.Update(func(tx *Tx) error { return tx.Put(bytes.Repeat([]byte("k"), MaxKeyLen+1), nil) })
	if !errors.Is(err, ErrKeyTooLong) {
		t.Fatalf("long key error = %v", err)
	}
	// Exactly MaxKeyLen is fine.
	if err := st.Update(func(tx *Tx) error { return tx.Put(bytes.Repeat([]byte("k"), MaxKeyLen), nil) }); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "specs.db")
	st, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, st, "k", "v")
	st.Close()

	ro, err := OpenReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if err := ro.Update(func(tx *Tx) error { return nil }); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Update on read-only store = %v", err)
	}
	if _, err := ro.Compact(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Compact on read-only store = %v", err)
	}
	if v, ok, err := ro.Current().Get([]byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("read-only Get = %q %v %v", v, ok, err)
	}
}

func TestOpenAtPinsResidentSeqs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "specs.db")
	st, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	mustPut(t, st, "k", "v1") // seq 2
	mustPut(t, st, "k", "v2") // seq 3
	cur := st.Current().Seq()

	for want, val := range map[uint64]string{cur: "v2", cur - 1: "v1"} {
		pin, err := OpenAt(path, want)
		if err != nil {
			t.Fatalf("OpenAt(%d): %v", want, err)
		}
		if v, ok, _ := pin.Current().Get([]byte("k")); !ok || string(v) != val {
			t.Fatalf("OpenAt(%d) sees k=%q, want %q", want, v, val)
		}
		pin.Close()
	}

	_, err = OpenAt(path, cur+7)
	if !errors.Is(err, ErrSnapshotGone) {
		t.Fatalf("OpenAt(future) = %v, want ErrSnapshotGone", err)
	}
	_, err = OpenAt(path, cur-2)
	if !errors.Is(err, ErrSnapshotGone) {
		t.Fatalf("OpenAt(evicted) = %v, want ErrSnapshotGone", err)
	}
}

func TestVersionSkewRejectedCleanly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "specs.db")
	st, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, st, "k", "v")
	st.Close()

	// Bump the version field in both meta slots and re-seal the pages.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 2; slot++ {
		pg := data[slot*PageSize : (slot+1)*PageSize]
		if pg[0] != pageMeta {
			continue
		}
		binary.LittleEndian.PutUint32(pg[9:13], FormatVersion+41)
		sealPage(pg)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(path)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("Open(skewed) = %v, want ErrVersion", err)
	}
	for _, frag := range []string{"format", fmt.Sprint(FormatVersion + 41), "specdb -import"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("skew error %q does not mention %q", err, frag)
		}
	}
}

func TestOpenGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.db")
	if err := os.WriteFile(path, bytes.Repeat([]byte("garbage "), 2048), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrNotStore) {
		t.Fatalf("Open(garbage) = %v, want ErrNotStore", err)
	}
	if _, err := OpenAt(path, 1); !errors.Is(err, ErrNotStore) {
		t.Fatalf("OpenAt(garbage) = %v, want ErrNotStore", err)
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing.db")); err == nil {
		t.Fatal("Open(missing) succeeded")
	}
}

func TestCompactReclaimsAndPreservesState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "specs.db")
	st, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Lots of superseded page versions: repeated single-key commits.
	for i := 0; i < 50; i++ {
		mustPut(t, st, fmt.Sprintf("k%02d", i), strings.Repeat("v", 600+i))
		mustPut(t, st, fmt.Sprintf("k%02d", i), strings.Repeat("w", 600+i))
	}
	before := dump(t, st.Current())
	preSeq := st.Current().Seq()
	pre := st.Stats()
	held := st.Current() // snapshot taken before compaction must survive it

	cs, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Seq != preSeq+1 {
		t.Fatalf("compact seq %d, want %d", cs.Seq, preSeq+1)
	}
	if cs.PagesAfter >= cs.PagesBefore {
		t.Fatalf("compaction did not shrink: %d -> %d pages", cs.PagesBefore, cs.PagesAfter)
	}
	if pre.Pages != cs.PagesBefore {
		t.Fatalf("stats/compact disagree on page count: %d vs %d", pre.Pages, cs.PagesBefore)
	}
	after := dump(t, st.Current())
	if len(after) != len(before) {
		t.Fatalf("compaction changed key count: %d -> %d", len(before), len(after))
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("compaction changed %q", k)
		}
	}
	if got := dump(t, held); len(got) != len(before) {
		t.Fatal("pre-compaction snapshot broke after Compact")
	}
	if _, err := st.Verify(); err != nil {
		t.Fatal(err)
	}

	// Writes continue against the compacted file, and a reopen sees them.
	mustPut(t, st, "post-compact", "yes")
	st.Close()
	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if v, ok, _ := st2.Current().Get([]byte("post-compact")); !ok || string(v) != "yes" {
		t.Fatalf("post-compact write lost: %q %v", v, ok)
	}
}

func TestVerifyCatchesCorruptPage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "specs.db")
	st, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, st, "a", "1", "b", "2")
	st.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the tree root page (found via the newest meta slot).
	var root uint64
	var bestSeq uint64
	for slot := 0; slot < 2; slot++ {
		if p, err := DecodePage(data[slot*PageSize : (slot+1)*PageSize]); err == nil && p.Type == pageMeta && p.Seq > bestSeq {
			bestSeq, root = p.Seq, p.Root
		}
	}
	if root == 0 {
		t.Fatal("no root page found")
	}
	data[root*PageSize+100] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(path) // meta pages are intact, open succeeds
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify on flipped page = %v, want ErrCorrupt", err)
	}
	if _, _, err := st2.Current().Get([]byte("a")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get through flipped page = %v, want ErrCorrupt", err)
	}
}

func TestStats(t *testing.T) {
	st := tmpStore(t)
	mustPut(t, st, "a", "1", "b", "2")
	got := st.Stats()
	if got.Keys != 2 || got.Seq != 2 || got.Pages < 3 || got.FileBytes < int64(got.Pages-1)*PageSize {
		t.Fatalf("stats = %+v", got)
	}
	if got.Path == "" || got.NextOrd != 1 {
		t.Fatalf("stats = %+v", got)
	}
}

// --- spec layer ---

func mkSpec(iface, api string, forbidden bool, lit int64, patch string) *spec.Spec {
	return &spec.Spec{
		ID:    fmt.Sprintf("S-%s%s-%d", iface, api, lit),
		Iface: iface,
		API:   api,
		Constraint: spec.Constraint{
			Forbidden: forbidden,
			Rel: spec.Relation{
				Kind: spec.RelReach,
				V:    spec.Value{Kind: spec.VLiteral, Lit: lit},
				U:    spec.Use{Kind: spec.UDeref},
				Cond: solver.TrueF{},
			},
		},
		Origin:      spec.OriginRemoved,
		OriginPatch: patch,
	}
}

func testCorpus() []*spec.Spec {
	return []*spec.Spec{
		mkSpec("ops.prepare", "kmalloc", true, 1, "patch-1"),
		mkSpec("", "kfree", true, 2, "patch-1"),
		mkSpec("ops.prepare", "kmalloc", false, 3, "patch-2"),
		mkSpec("ops.finish", "dma_map", true, 4, "patch-2"),
		mkSpec("", "kfree", false, 5, "patch-3"),
	}
}

func importCorpus(t *testing.T, st *Store) []*spec.Spec {
	t.Helper()
	corpus := testCorpus()
	added, skipped, err := st.ImportSpecs(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if added != len(corpus) || skipped != 0 {
		t.Fatalf("import: added %d skipped %d", added, skipped)
	}
	return corpus
}

func specKeys(specs []*spec.Spec) []string {
	out := make([]string, len(specs))
	for i, sp := range specs {
		out[i] = sp.Key()
	}
	return out
}

func TestImportOrdinalOrderMatchesFlat(t *testing.T) {
	st := tmpStore(t)
	corpus := importCorpus(t, st)
	got, err := st.Current().Specs()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(specKeys(got), "\n") != strings.Join(specKeys(corpus), "\n") {
		t.Fatalf("Specs() order:\n%v\nwant flat order:\n%v", specKeys(got), specKeys(corpus))
	}

	// Re-import is first-wins: everything skipped, nothing changed.
	added, skipped, err := st.ImportSpecs(corpus)
	if err != nil || added != 0 || skipped != len(corpus) {
		t.Fatalf("re-import: added %d skipped %d err %v", added, skipped, err)
	}
}

func TestUpsertKeepsOrdinalDeleteRemoves(t *testing.T) {
	st := tmpStore(t)
	corpus := importCorpus(t, st)

	// Edit spec #1 in place: same key, new origin patch.
	edited := *corpus[1]
	edited.OriginPatch = "patch-1-edited"
	created, err := st.UpsertSpec(&edited)
	if err != nil || created {
		t.Fatalf("upsert existing: created=%v err=%v", created, err)
	}
	got, err := st.Current().Specs()
	if err != nil {
		t.Fatal(err)
	}
	if got[1].Key() != corpus[1].Key() || got[1].OriginPatch != "patch-1-edited" {
		t.Fatalf("edited spec moved or kept old patch: pos1=%s from %s", got[1].Key(), got[1].OriginPatch)
	}

	// A brand-new spec appends at the end of ordinal order.
	extra := mkSpec("ops.extra", "vmalloc", true, 9, "patch-9")
	created, err = st.UpsertSpec(extra)
	if err != nil || !created {
		t.Fatalf("upsert new: created=%v err=%v", created, err)
	}
	got, _ = st.Current().Specs()
	if got[len(got)-1].Key() != extra.Key() {
		t.Fatal("new spec did not append at the ordinal tail")
	}

	deleted, err := st.DeleteSpec(extra.Key())
	if err != nil || !deleted {
		t.Fatalf("delete: %v %v", deleted, err)
	}
	deleted, err = st.DeleteSpec(extra.Key())
	if err != nil || deleted {
		t.Fatalf("re-delete: %v %v", deleted, err)
	}
	if got, _ = st.Current().Specs(); len(got) != len(corpus) {
		t.Fatalf("after delete: %d specs, want %d", len(got), len(corpus))
	}
}

func TestScopeAndScopesSpecs(t *testing.T) {
	st := tmpStore(t)
	corpus := importCorpus(t, st)

	one, err := st.Current().ScopeSpecs("iface:ops.prepare")
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 2 || one[0].Key() != corpus[0].Key() || one[1].Key() != corpus[2].Key() {
		t.Fatalf("ScopeSpecs = %v", specKeys(one))
	}
	if none, _ := st.Current().ScopeSpecs("iface:nope"); len(none) != 0 {
		t.Fatalf("ScopeSpecs(nope) = %v", specKeys(none))
	}

	// Multi-scope gather sorts globally by ordinal regardless of the
	// scope list order.
	multi, err := st.Current().ScopesSpecs([]string{"api:kfree", "iface:ops.prepare"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{corpus[0].Key(), corpus[1].Key(), corpus[2].Key(), corpus[4].Key()}
	if strings.Join(specKeys(multi), "\n") != strings.Join(want, "\n") {
		t.Fatalf("ScopesSpecs = %v, want %v", specKeys(multi), want)
	}

	sp, ok, err := st.Current().SpecByKey(corpus[3].Key())
	if err != nil || !ok || sp.API != "dma_map" {
		t.Fatalf("SpecByKey = %v %v %v", sp, ok, err)
	}
	if _, ok, _ := st.Current().SpecByKey("api:none | ∄: ?"); ok {
		t.Fatal("SpecByKey found a phantom spec")
	}
}

func TestQueryFilters(t *testing.T) {
	st := tmpStore(t)
	corpus := importCorpus(t, st)
	sn := st.Current()

	cases := []struct {
		q    string
		want []int // corpus indices
	}{
		{"", []int{0, 1, 2, 3, 4}},
		{"iface=ops.prepare", []int{0, 2}},
		{"api=kfree", []int{1, 4}},
		{"scope=iface:ops.finish", []int{3}},
		{"patch=patch-2", []int{2, 3}},
		{"forbidden=true", []int{0, 1, 3}},
		{"forbidden=false", []int{2, 4}},
		{"iface=ops.prepare, forbidden=false", []int{2}},
		{"origin=P-", []int{0, 1, 2, 3, 4}},
		{"origin=PΩ", nil},
	}
	for _, tc := range cases {
		q, err := ParseQuery(tc.q)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", tc.q, err)
		}
		got, err := sn.Query(q)
		if err != nil {
			t.Fatalf("Query(%q): %v", tc.q, err)
		}
		var want []string
		for _, i := range tc.want {
			want = append(want, corpus[i].Key())
		}
		if strings.Join(specKeys(got), "\n") != strings.Join(want, "\n") {
			t.Errorf("Query(%q) = %v, want %v", tc.q, specKeys(got), want)
		}
	}

	for _, bad := range []string{"bogus=1", "forbidden=maybe", "noequals"} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q) accepted", bad)
		}
	}
}

func TestSpecRoundTripPreservesBytes(t *testing.T) {
	st := tmpStore(t)
	corpus := importCorpus(t, st)
	got, err := st.Current().Specs()
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, &spec.DB{Specs: corpus})
	have := mustJSON(t, &spec.DB{Specs: got})
	if !bytes.Equal(want, have) {
		t.Fatalf("store round trip changed spec DB bytes:\n%s\nvs\n%s", want, have)
	}
}

func mustJSON(t *testing.T, db *spec.DB) []byte {
	t.Helper()
	data, err := db.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}
