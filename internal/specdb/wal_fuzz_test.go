package specdb

// FuzzWALRecord hammers the WAL record decoder with arbitrary byte
// streams. The contract: DecodeWALRecord never panics, classifies every
// rejection as ErrCorrupt (torn/flipped/structurally invalid — the
// normal torn-tail signal) or ErrVersion (checksum-valid record from a
// foreign format), and every accepted record re-encodes to exactly the
// bytes it consumed — so scanning a log is loss-free and deterministic.

import (
	"bytes"
	"errors"
	"testing"
)

// buildWALSeeds mirrors the gencorpus seed set: valid put/delete
// records (small and overflow-sized values), truncations, a flipped
// checksum, a resealed version skew, and raw garbage.
func buildWALSeeds() [][]byte {
	put := EncodeWALRecord(&WALRecord{Op: WALOpPut, Seq: 3, NextOrd: 7,
		Key: []byte("iface:ops.prepare | some-constraint"), Val: []byte(`{"ord":6,"db":{}}`)})
	del := EncodeWALRecord(&WALRecord{Op: WALOpDelete, Seq: 4, NextOrd: 7, Key: []byte("api:kfree | k")})
	big := EncodeWALRecord(&WALRecord{Op: WALOpPut, Seq: 5, NextOrd: 8,
		Key: []byte("k"), Val: bytes.Repeat([]byte("v"), 3*PageSize)})
	flipped := append([]byte(nil), put...)
	flipped[len(flipped)-2] ^= 0x08
	skew := append([]byte(nil), del...)
	body := skew[4 : len(skew)-8]
	body[0] = WALVersion + 1
	sum := checksum(body)
	for i := 0; i < 8; i++ {
		skew[len(skew)-8+i] = byte(sum >> (8 * i))
	}
	two := append(append([]byte(nil), put...), del...)
	return [][]byte{
		put, del, big, two,
		put[:11], put[:len(put)-1], flipped, skew,
		[]byte("garbage that is not a record"), nil,
	}
}

func FuzzWALRecord(f *testing.F) {
	for _, seed := range buildWALSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeWALRecord(data)
		if err != nil {
			if rec != nil || n != 0 {
				t.Fatalf("rejected decode returned (%+v, %d)", rec, n)
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("rejection outside the error contract: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("accepted record consumed %d of %d bytes", n, len(data))
		}
		if rec.Op != WALOpPut && rec.Op != WALOpDelete {
			t.Fatalf("accepted unknown op %d", rec.Op)
		}
		if len(rec.Key) == 0 || len(rec.Key) > MaxKeyLen {
			t.Fatalf("accepted key length %d", len(rec.Key))
		}
		if rec.Op == WALOpDelete && len(rec.Val) != 0 {
			t.Fatal("accepted a delete with a value")
		}
		// Canonical round trip: what the decoder accepted is exactly
		// what the encoder would have written.
		if re := EncodeWALRecord(rec); !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode differs from accepted bytes (%d vs %d)", len(re), n)
		}
	})
}
