package specdb

// Unit suite for the group-commit WAL: record codec hostility, commit
// policy triggers (records / bytes / interval), batch read-your-writes
// and discard, crash-tail recovery on reopen (read-write replay and
// read-only overlay), and ratio-triggered background compaction.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"seal/internal/spec"
)

// walFileSize reads the sidecar log's on-disk size.
func walFileSize(t *testing.T, st *Store) int64 {
	t.Helper()
	fi, err := os.Stat(walPath(st.Path()))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func TestWALRecordRoundTrip(t *testing.T) {
	for _, rec := range []*WALRecord{
		{Op: WALOpPut, Seq: 1, NextOrd: 2, Key: []byte("k"), Val: []byte("v")},
		{Op: WALOpPut, Seq: 7, NextOrd: 9, Key: []byte("key"), Val: bytes.Repeat([]byte("x"), 4096)},
		{Op: WALOpDelete, Seq: 8, NextOrd: 9, Key: []byte("gone")},
	} {
		buf := EncodeWALRecord(rec)
		got, n, err := DecodeWALRecord(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
		}
		if got.Op != rec.Op || got.Seq != rec.Seq || got.NextOrd != rec.NextOrd ||
			!bytes.Equal(got.Key, rec.Key) || !bytes.Equal(got.Val, rec.Val) {
			t.Fatalf("round trip: %+v != %+v", got, rec)
		}
	}
}

func TestWALRecordDecodeRejections(t *testing.T) {
	valid := EncodeWALRecord(&WALRecord{Op: WALOpPut, Seq: 3, NextOrd: 4, Key: []byte("key"), Val: []byte("val")})
	// reseal recomputes the checksum after a body mutation, producing a
	// structurally intact record with hostile content.
	reseal := func(mut func(body []byte)) []byte {
		buf := append([]byte(nil), valid...)
		body := buf[4 : len(buf)-8]
		mut(body)
		sum := checksum(body)
		for i := 0; i < 8; i++ {
			buf[len(buf)-8+i] = byte(sum >> (8 * i))
		}
		return buf
	}
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrCorrupt},
		{"short prefix", valid[:3], ErrCorrupt},
		{"truncated body", valid[:len(valid)-9], ErrCorrupt},
		{"flipped checksum", func() []byte {
			b := append([]byte(nil), valid...)
			b[len(b)-1] ^= 0xff
			return b
		}(), ErrCorrupt},
		{"flipped payload", func() []byte {
			b := append([]byte(nil), valid...)
			b[10] ^= 0x01
			return b
		}(), ErrCorrupt},
		{"huge blen", func() []byte {
			b := append([]byte(nil), valid...)
			b[0], b[1], b[2], b[3] = 0xff, 0xff, 0xff, 0x7f
			return b
		}(), ErrCorrupt},
		{"version skew", reseal(func(body []byte) { body[0] = WALVersion + 9 }), ErrVersion},
		{"unknown op", reseal(func(body []byte) { body[1] = 77 }), ErrCorrupt},
		{"zero klen", reseal(func(body []byte) { body[18], body[19], body[20], body[21] = 0, 0, 0, 0 }), ErrCorrupt},
		{"klen past body", reseal(func(body []byte) { body[18], body[19], body[20], body[21] = 0xff, 0xff, 0, 0 }), ErrCorrupt},
		{"delete with value", func() []byte {
			return EncodeWALRecord(&WALRecord{Op: WALOpDelete, Seq: 1, NextOrd: 1, Key: []byte("k"), Val: []byte("v")})
		}(), ErrCorrupt},
	}
	for _, tc := range cases {
		rec, n, err := DecodeWALRecord(tc.buf)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		if rec != nil || n != 0 {
			t.Errorf("%s: rejected decode returned (%+v, %d)", tc.name, rec, n)
		}
	}
}

// TestBatchFoldOnRecordCount pins the N-records policy: the batch stays
// pending (invisible to Current) until the count trips, then folds into
// exactly one commit and truncates the log.
func TestBatchFoldOnRecordCount(t *testing.T) {
	st, err := CreateOptions(filepath.Join(t.TempDir(), "s.db"), Options{
		Commit: CommitPolicy{Records: 3, Bytes: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	seq0 := st.Current().Seq()

	b := st.Batch()
	for i := 0; i < 2; i++ {
		if err := b.put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Pending(); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	if st.Current().Seq() != seq0 || st.Current().Len() != 0 {
		t.Fatal("pending records leaked into the committed snapshot")
	}
	if sz := walFileSize(t, st); sz == 0 {
		t.Fatal("pending records not in the log")
	}

	// The third record trips the policy: one fold, one commit.
	if err := b.put([]byte("k2"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := b.Pending(); got != 0 {
		t.Fatalf("pending after fold = %d, want 0", got)
	}
	sn := st.Current()
	if sn.Seq() != seq0+1 || sn.Len() != 3 {
		t.Fatalf("after fold: seq %d len %d, want seq %d len 3", sn.Seq(), sn.Len(), seq0+1)
	}
	if sz := walFileSize(t, st); sz != 0 {
		t.Fatalf("log holds %d bytes after fold, want 0", sz)
	}

	ss := st.Stats()
	if ss.WALSeq != 3 || ss.WALRecordsPending != 0 {
		t.Fatalf("stats = %+v", ss)
	}
}

// TestBatchFoldOnBytes pins the B-bytes policy.
func TestBatchFoldOnBytes(t *testing.T) {
	st, err := CreateOptions(filepath.Join(t.TempDir(), "s.db"), Options{
		Commit: CommitPolicy{Records: 1 << 20, Bytes: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b := st.Batch()
	if err := b.put([]byte("small"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if b.Pending() != 1 {
		t.Fatal("small record folded early")
	}
	if err := b.put([]byte("big"), bytes.Repeat([]byte("x"), 512)); err != nil {
		t.Fatal(err)
	}
	if b.Pending() != 0 {
		t.Fatal("byte policy did not fold")
	}
	if got := st.Current().Len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
}

// TestBatchFoldOnInterval pins the T-interval policy: a lone record
// folds on its own once the timer fires.
func TestBatchFoldOnInterval(t *testing.T) {
	st, err := CreateOptions(filepath.Join(t.TempDir(), "s.db"), Options{
		Commit: CommitPolicy{Records: 1 << 20, Bytes: 1 << 30, Interval: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Batch().put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Current().Len() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("interval fold never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBatchDiscard drops the unfolded tail but keeps folded commits.
func TestBatchDiscard(t *testing.T) {
	st, err := CreateOptions(filepath.Join(t.TempDir(), "s.db"), Options{
		Commit: CommitPolicy{Records: 2, Bytes: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b := st.Batch()
	for i := 0; i < 3; i++ { // first two fold, third stays pending
		if err := b.put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if b.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", b.Pending())
	}
	if err := b.Discard(); err != nil {
		t.Fatal(err)
	}
	if b.Pending() != 0 {
		t.Fatal("discard left records pending")
	}
	if got := st.Current().Len(); got != 2 {
		t.Fatalf("len = %d after discard, want the 2 folded keys", got)
	}
	if sz := walFileSize(t, st); sz != 0 {
		t.Fatalf("log holds %d bytes after discard", sz)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := st.Current().Len(); got != 2 {
		t.Fatalf("flush after discard committed phantoms: len %d", got)
	}
}

// TestUpdateFoldsPendingFirst: a direct Update on a store with a
// pending batch must land after the batch, not before it.
func TestUpdateFoldsPendingFirst(t *testing.T) {
	st, err := CreateOptions(filepath.Join(t.TempDir(), "s.db"), Options{
		Commit: CommitPolicy{Records: 1 << 20, Bytes: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b := st.Batch()
	if err := b.put([]byte("k"), []byte("from-batch")); err != nil {
		t.Fatal(err)
	}
	err = st.Update(func(tx *Tx) error { return tx.Put([]byte("k"), []byte("from-update")) })
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := st.Current().Get([]byte("k"))
	if err != nil || !ok || string(v) != "from-update" {
		t.Fatalf("Get(k) = %q, %v, %v; want the Update to supersede the batch", v, ok, err)
	}
	if b.Pending() != 0 {
		t.Fatal("Update left the batch pending")
	}
}

// appendRawWAL appends pre-encoded bytes to a store's sidecar log out
// of band — simulating records a crashed writer left behind.
func appendRawWAL(t *testing.T, path string, chunks ...[]byte) {
	t.Helper()
	f, err := os.OpenFile(walPath(path), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, c := range chunks {
		if _, err := f.Write(c); err != nil {
			t.Fatal(err)
		}
	}
}

// crashTail builds a store holding {a:1}, closes it, and appends an
// unfolded two-record tail (put b, delete a) plus any extra bytes.
// Returns the store path and the tail's final NextOrd.
func crashTail(t *testing.T, extra ...[]byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "s.db")
	st, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, st, "a", "1")
	walSeq := st.Stats().WALSeq
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	chunks := [][]byte{
		EncodeWALRecord(&WALRecord{Op: WALOpPut, Seq: walSeq + 1, NextOrd: 5, Key: []byte("b"), Val: []byte("2")}),
		EncodeWALRecord(&WALRecord{Op: WALOpDelete, Seq: walSeq + 2, NextOrd: 5, Key: []byte("a")}),
	}
	appendRawWAL(t, path, append(chunks, extra...)...)
	return path
}

// TestWALTailReplayOnOpen: a read-write reopen folds the tail into one
// recovery commit, restores ordinal allocation, and resets the log.
func TestWALTailReplayOnOpen(t *testing.T) {
	path := crashTail(t)
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := dump(t, st.Current())
	if len(got) != 1 || got["b"] != "2" {
		t.Fatalf("recovered state = %v, want {b:2}", got)
	}
	ss := st.Stats()
	if ss.NextOrd != 5 {
		t.Fatalf("recovered NextOrd = %d, want 5 (from the tail)", ss.NextOrd)
	}
	if ss.WALRecordsPending != 0 {
		t.Fatalf("pending after recovery = %d", ss.WALRecordsPending)
	}
	if sz := walFileSize(t, st); sz != 0 {
		t.Fatalf("log holds %d bytes after recovery", sz)
	}
	if _, err := st.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestWALTornTailIgnored: garbage past the last valid record is a torn
// append — recovery keeps the valid prefix and discards the rest.
func TestWALTornTailIgnored(t *testing.T) {
	torn := EncodeWALRecord(&WALRecord{Op: WALOpPut, Seq: 99, NextOrd: 9, Key: []byte("torn"), Val: []byte("x")})
	for _, tc := range []struct {
		name string
		tail []byte
	}{
		{"half record", torn[:len(torn)/2]},
		{"flipped checksum", func() []byte {
			b := append([]byte(nil), torn...)
			b[len(b)-3] ^= 0x40
			return b
		}()},
		{"garbage", []byte("not a wal record at all")},
	} {
		path := crashTail(t, tc.tail)
		st, err := Open(path)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := dump(t, st.Current())
		if len(got) != 1 || got["b"] != "2" {
			t.Errorf("%s: recovered %v, want {b:2}", tc.name, got)
		}
		st.Close()
	}
}

// TestWALVersionSkewRefused: a checksum-valid record from a foreign WAL
// format fails the open with ErrVersion — never skipped.
func TestWALVersionSkewRefused(t *testing.T) {
	skew := EncodeWALRecord(&WALRecord{Op: WALOpPut, Seq: 99, NextOrd: 9, Key: []byte("future"), Val: []byte("x")})
	body := skew[4 : len(skew)-8]
	body[0] = WALVersion + 3
	sum := checksum(body)
	for i := 0; i < 8; i++ {
		skew[len(skew)-8+i] = byte(sum >> (8 * i))
	}
	path := crashTail(t, skew)
	if _, err := Open(path); !errors.Is(err, ErrVersion) {
		t.Fatalf("open = %v, want ErrVersion", err)
	}
	if _, err := OpenReadOnly(path); !errors.Is(err, ErrVersion) {
		t.Fatalf("read-only open = %v, want ErrVersion", err)
	}
}

// TestWALOverlayReadOnly: a read-only open cannot fold, so the tail is
// layered in memory — Get, Len, Iterate, and Specs all see it — and
// neither file changes.
func TestWALOverlayReadOnly(t *testing.T) {
	path := crashTail(t)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sn := st.Current()
	if sn.Len() != 1 {
		t.Fatalf("overlaid Len = %d, want 1", sn.Len())
	}
	if v, ok, err := sn.Get([]byte("b")); err != nil || !ok || string(v) != "2" {
		t.Fatalf("Get(b) = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := sn.Get([]byte("a")); ok {
		t.Fatal("tombstoned key a still visible")
	}
	got := dump(t, sn)
	if len(got) != 1 || got["b"] != "2" {
		t.Fatalf("overlaid iterate = %v, want {b:2}", got)
	}
	ss := st.Stats()
	if ss.WALRecordsPending != 2 {
		t.Fatalf("read-only pending = %d, want the 2 tail records", ss.WALRecordsPending)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("read-only open rewrote the store file")
	}

	// Writes are refused as ever.
	if err := st.Batch().put([]byte("x"), []byte("y")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only put = %v, want ErrReadOnly", err)
	}
}

// TestWALOverlayIterateFrom exercises the merged iterator's bounds:
// overlay keys before, between, equal to, and past tree keys.
func TestWALOverlayIterateFrom(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.db")
	st, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, st, "b", "tree-b", "d", "tree-d", "f", "tree-f")
	walSeq := st.Stats().WALSeq
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	appendRawWAL(t, path,
		EncodeWALRecord(&WALRecord{Op: WALOpPut, Seq: walSeq + 1, NextOrd: 9, Key: []byte("a"), Val: []byte("ov-a")}),
		EncodeWALRecord(&WALRecord{Op: WALOpPut, Seq: walSeq + 2, NextOrd: 9, Key: []byte("c"), Val: []byte("ov-c")}),
		EncodeWALRecord(&WALRecord{Op: WALOpPut, Seq: walSeq + 3, NextOrd: 9, Key: []byte("d"), Val: []byte("ov-d")}),
		EncodeWALRecord(&WALRecord{Op: WALOpDelete, Seq: walSeq + 4, NextOrd: 9, Key: []byte("f")}),
		EncodeWALRecord(&WALRecord{Op: WALOpPut, Seq: walSeq + 5, NextOrd: 9, Key: []byte("z"), Val: []byte("ov-z")}),
	)
	ro, err := OpenReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	sn := ro.Current()
	want := "a=ov-a b=tree-b c=ov-c d=ov-d z=ov-z"
	var parts []string
	if err := sn.Iterate(func(k, v []byte) (bool, error) {
		parts = append(parts, fmt.Sprintf("%s=%s", k, v))
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(parts, " "); got != want {
		t.Fatalf("merged iterate = %q, want %q", got, want)
	}
	if sn.Len() != 5 {
		t.Fatalf("merged Len = %d, want 5", sn.Len())
	}
	parts = nil
	if err := sn.IterateFrom([]byte("c"), func(k, v []byte) (bool, error) {
		parts = append(parts, string(k))
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(parts, " "); got != "c d z" {
		t.Fatalf("IterateFrom(c) = %q, want \"c d z\"", got)
	}
	// Early stop mid-overlay.
	parts = nil
	if err := sn.Iterate(func(k, v []byte) (bool, error) {
		parts = append(parts, string(k))
		return len(parts) < 2, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(parts, " "); got != "a b" {
		t.Fatalf("early stop walked %q, want \"a b\"", got)
	}
}

// TestBatchSpecReadYourWrites: spec-level batch ops resolve keys
// through the pending batch — a pending upsert keeps its ordinal on
// re-upsert, a pending insert dedups an import, and a pending delete
// hides the key.
func TestBatchSpecReadYourWrites(t *testing.T) {
	st, err := CreateOptions(filepath.Join(t.TempDir(), "s.db"), Options{
		Commit: CommitPolicy{Records: 1 << 20, Bytes: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b := st.Batch()
	sp := mkSpec("ops.wal", "kmalloc", true, 1, "p1")
	created, err := b.UpsertSpec(sp)
	if err != nil || !created {
		t.Fatalf("first upsert: created=%v err=%v", created, err)
	}
	created, err = b.UpsertSpec(sp)
	if err != nil || created {
		t.Fatalf("pending re-upsert: created=%v err=%v, want replace", created, err)
	}
	added, skipped, err := b.ImportSpecs([]*spec.Spec{sp, mkSpec("ops.wal2", "kfree", true, 2, "p1")})
	if err != nil || added != 1 || skipped != 1 {
		t.Fatalf("import over pending: added=%d skipped=%d err=%v", added, skipped, err)
	}
	ok, err := b.DeleteSpec(sp.Key())
	if err != nil || !ok {
		t.Fatalf("pending delete: %v %v", ok, err)
	}
	ok, err = b.DeleteSpec(sp.Key())
	if err != nil || ok {
		t.Fatalf("double delete: %v %v, want miss", ok, err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	specs, err := st.Current().Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Key() != "iface:ops.wal2 | "+specs[0].Constraint.String() {
		keys := specKeys(specs)
		t.Fatalf("flushed corpus = %v", keys)
	}
	// Ordinal 2 was allocated to ops.wal2 while ops.wal was pending.
	if st.Stats().NextOrd != 3 {
		t.Fatalf("NextOrd = %d, want 3", st.Stats().NextOrd)
	}
}

// TestDeadPageRatioAndAutoCompaction: rewriting one key over and over
// strands copy-on-write pages; a store opened with CompactThreshold
// folds, notices the ratio, and compacts in the background while a
// pinned pre-compaction snapshot stays readable.
func TestDeadPageRatioAndAutoCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.db")
	st, err := CreateOptions(path, Options{
		Commit:           CommitPolicy{Records: 4, Bytes: 1 << 30},
		CompactThreshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b := st.Batch()
	if err := b.put([]byte("stable"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	pinned := st.Current()
	pinnedDump := dump(t, pinned)

	for i := 0; i < 64; i++ {
		if err := b.put([]byte("churn"), bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for st.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never ran; stats %+v", st.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	st.wg.Wait() // settle before measuring
	ss := st.Stats()
	if ss.DeadPageRatio >= 0.5 {
		t.Fatalf("ratio %.2f still at threshold after compaction", ss.DeadPageRatio)
	}
	// The pre-compaction snapshot reads from the retired handle.
	if got := dump(t, pinned); got["stable"] != pinnedDump["stable"] {
		t.Fatalf("pinned snapshot changed: %v", got)
	}
	if _, err := st.Verify(); err != nil {
		t.Fatal(err)
	}
	got := dump(t, st.Current())
	if got["stable"] != "v" || len(got) != 2 {
		t.Fatalf("post-compaction state = %v", got)
	}
}

// TestManualCompactFoldsPending: Compact on a store with a pending
// batch captures the batch, not just the last fold.
func TestManualCompactFoldsPending(t *testing.T) {
	st, err := CreateOptions(filepath.Join(t.TempDir(), "s.db"), Options{
		Commit: CommitPolicy{Records: 1 << 20, Bytes: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b := st.Batch()
	if err := b.put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	cs, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Keys != 1 {
		t.Fatalf("compacted %d keys, want the pending record folded in", cs.Keys)
	}
	if sz := walFileSize(t, st); sz != 0 {
		t.Fatalf("log holds %d bytes after compaction", sz)
	}
}

// TestReopenWithEmptyWALLeavesFileUntouched guards the no-op-reopen
// contract the model suite pins for the store file, extended to the
// sidecar: reopening a cleanly closed store writes nothing.
func TestReopenWithEmptyWALLeavesFileUntouched(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.db")
	st, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, st, "a", "1")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	seq := st.Current().Seq()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("reopen with an empty log rewrote the store file")
	}
	st, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Current().Seq() != seq {
		t.Fatalf("reopen advanced seq %d -> %d", seq, st.Current().Seq())
	}
}
