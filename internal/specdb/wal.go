// Group-commit write-ahead log. Every mutation first lands as an
// appended, checksummed record in a sidecar WAL file (<store>.wal);
// a commit policy — N records, B bytes, or T interval, whichever
// trips first — folds the accumulated batch into ONE copy-on-write
// B-tree commit, so bulk ingestion pays O(batch) page writes and
// fsyncs instead of O(records). The fold stamps the meta page with
// the WAL sequence number it absorbed (meta.walSeq) and truncates
// the log; records past meta.walSeq are the unfolded tail, which a
// read-write open replays into one recovery commit and a read-only
// open layers over the committed snapshot as an in-memory overlay.
//
// WAL record layout (little-endian):
//
//	blen(4) | body | fnv64a(body)(8)
//	body: ver(1) | op(1) | seq(8) | nextord(8) | klen(4) | key | val
//
// A record that fails length or checksum validation marks the end of
// the log (a torn append), exactly like a torn page write: everything
// before it is trusted, everything after is discarded. A record whose
// checksum validates but whose version byte is foreign is a hard
// ErrVersion — never skipped, never decoded on a best-effort basis.
package specdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"
)

const (
	// WALVersion is the record format this build reads and writes.
	WALVersion = 1

	// WALOpPut and WALOpDelete are the two record operations.
	WALOpPut    = 1
	WALOpDelete = 2

	// walBodyHdr is the fixed body prefix: ver(1) + op(1) + seq(8) +
	// nextord(8) + klen(4).
	walBodyHdr = 22
	// walFrame is the framing overhead around a body: length prefix
	// plus trailing checksum.
	walFrame = 12
	// walMaxBody bounds a record body so a corrupt length prefix cannot
	// drive a huge allocation.
	walMaxBody = 1 << 28

	// DefaultCommitRecords and DefaultCommitBytes are the commit policy
	// defaults: fold after 256 pending records or 1 MiB of pending
	// payload, whichever comes first.
	DefaultCommitRecords = 256
	DefaultCommitBytes   = 1 << 20
)

// CommitPolicy controls when the pending WAL batch folds into one
// B-tree commit. Zero-valued fields take the defaults; Interval 0
// means no time-based folding.
type CommitPolicy struct {
	Records  int           // fold after this many pending records
	Bytes    int64         // fold after this many pending payload bytes
	Interval time.Duration // fold this long after the first pending record
}

func (p CommitPolicy) withDefaults() CommitPolicy {
	if p.Records <= 0 {
		p.Records = DefaultCommitRecords
	}
	if p.Bytes <= 0 {
		p.Bytes = DefaultCommitBytes
	}
	return p
}

// Options tunes a store opened with OpenOptions or CreateOptions.
type Options struct {
	// Commit is the group-commit fold policy.
	Commit CommitPolicy
	// CompactThreshold, when in (0, 1], triggers a background compaction
	// whenever a fold leaves the dead-page ratio (superseded
	// copy-on-write pages over allocated data pages) at or above it.
	// 0 disables automatic compaction.
	CompactThreshold float64
}

// WALRecord is one decoded write-ahead-log record. Seq is the
// monotonically increasing WAL sequence number; NextOrd is the store's
// next-ordinal counter after this operation, so replay restores ordinal
// allocation exactly.
type WALRecord struct {
	Op      byte
	Seq     uint64
	NextOrd uint64
	Key     []byte
	Val     []byte
}

// EncodeWALRecord frames one record: length prefix, body, checksum.
func EncodeWALRecord(r *WALRecord) []byte {
	blen := walBodyHdr + len(r.Key) + len(r.Val)
	buf := make([]byte, 4+blen+8)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(blen))
	body := buf[4 : 4+blen]
	body[0] = WALVersion
	body[1] = r.Op
	binary.LittleEndian.PutUint64(body[2:10], r.Seq)
	binary.LittleEndian.PutUint64(body[10:18], r.NextOrd)
	binary.LittleEndian.PutUint32(body[18:22], uint32(len(r.Key)))
	copy(body[walBodyHdr:], r.Key)
	copy(body[walBodyHdr+len(r.Key):], r.Val)
	binary.LittleEndian.PutUint64(buf[4+blen:], checksum(body))
	return buf
}

// DecodeWALRecord decodes the record at the head of buf, returning the
// number of bytes it consumed. It never panics on arbitrary input.
// Truncated or checksum-failing input wraps ErrCorrupt (the normal
// torn-tail signal); a checksum-valid record written by a different WAL
// format wraps ErrVersion. Key and Val alias buf.
func DecodeWALRecord(buf []byte) (*WALRecord, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("%w: wal record shorter than its length prefix", ErrCorrupt)
	}
	blen := int(binary.LittleEndian.Uint32(buf[0:4]))
	if blen < walBodyHdr || blen > walMaxBody {
		return nil, 0, fmt.Errorf("%w: wal record body length %d out of range", ErrCorrupt, blen)
	}
	if len(buf) < 4+blen+8 {
		return nil, 0, fmt.Errorf("%w: wal record truncated (%d of %d bytes)", ErrCorrupt, len(buf), 4+blen+8)
	}
	body := buf[4 : 4+blen]
	want := binary.LittleEndian.Uint64(buf[4+blen : 4+blen+8])
	if got := checksum(body); got != want {
		return nil, 0, fmt.Errorf("%w: wal record checksum mismatch (stored %#x, computed %#x)", ErrCorrupt, want, got)
	}
	if body[0] != WALVersion {
		return nil, 0, fmt.Errorf("%w: wal record version %d, this build reads version %d", ErrVersion, body[0], WALVersion)
	}
	r := &WALRecord{
		Op:      body[1],
		Seq:     binary.LittleEndian.Uint64(body[2:10]),
		NextOrd: binary.LittleEndian.Uint64(body[10:18]),
	}
	klen := int(binary.LittleEndian.Uint32(body[18:22]))
	if klen == 0 || klen > MaxKeyLen || walBodyHdr+klen > blen {
		return nil, 0, fmt.Errorf("%w: wal record key length %d out of range", ErrCorrupt, klen)
	}
	r.Key = body[walBodyHdr : walBodyHdr+klen]
	r.Val = body[walBodyHdr+klen : blen]
	switch r.Op {
	case WALOpPut:
	case WALOpDelete:
		if len(r.Val) != 0 {
			return nil, 0, fmt.Errorf("%w: wal delete record carries a %d-byte value", ErrCorrupt, len(r.Val))
		}
	default:
		return nil, 0, fmt.Errorf("%w: unknown wal op %d", ErrCorrupt, r.Op)
	}
	return r, 4 + blen + 8, nil
}

// scanWAL reads every valid record from the log. The scan stops at the
// first torn, corrupt, or sequence-regressing record — that is the end
// of the trustworthy log, exactly like recovering past a torn page —
// and validLen is the byte length of the trusted prefix. A record with
// foreign WAL version is a hard error.
func scanWAL(f file) (recs []*WALRecord, validLen int64, err error) {
	size, err := f.Size()
	if err != nil {
		return nil, 0, fmt.Errorf("specdb: wal size: %w", err)
	}
	if size == 0 {
		return nil, 0, nil
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, 0, fmt.Errorf("specdb: read wal: %w", err)
	}
	off := 0
	var lastSeq uint64
	for off < len(buf) {
		r, n, derr := DecodeWALRecord(buf[off:])
		if derr != nil {
			if errors.Is(derr, ErrVersion) {
				return nil, 0, derr
			}
			break // torn tail: trust everything before it
		}
		if r.Seq <= lastSeq && lastSeq != 0 {
			break // sequence regressed: stale bytes past a torn truncate
		}
		lastSeq = r.Seq
		recs = append(recs, r)
		off += n
	}
	return recs, int64(off), nil
}

// appendRecordLocked assigns the next WAL sequence number to one
// operation, appends it to the log, stages it in the pending batch, and
// folds if the commit policy trips. Caller holds s.mu and has already
// advanced s.nextOrd for any ordinal the operation allocated.
func (s *Store) appendRecordLocked(op byte, key, val []byte) error {
	if s.readOnly {
		return ErrReadOnly
	}
	if s.closed {
		return fmt.Errorf("specdb: store is closed")
	}
	rec := &WALRecord{
		Op:      op,
		Seq:     s.walSeq + 1,
		NextOrd: s.nextOrd,
		Key:     append([]byte(nil), key...),
		Val:     append([]byte(nil), val...),
	}
	if s.wal != nil {
		buf := EncodeWALRecord(rec)
		if _, err := s.wal.WriteAt(buf, s.walLen); err != nil {
			return fmt.Errorf("specdb: append wal record: %w", err)
		}
		s.walLen += int64(len(buf))
	}
	s.walSeq = rec.Seq
	s.stagePendingLocked(rec)
	if len(s.pend) >= s.pol.Records || s.pendBytes >= s.pol.Bytes {
		return s.foldLocked()
	}
	if s.pol.Interval > 0 && len(s.pend) == 1 {
		gen := s.pendGen
		s.flushTimer = time.AfterFunc(s.pol.Interval, func() { s.intervalFold(gen) })
	}
	return nil
}

// stagePendingLocked adds one record to the in-memory pending batch.
func (s *Store) stagePendingLocked(rec *WALRecord) {
	s.pend = append(s.pend, rec)
	if s.pendKey == nil {
		s.pendKey = make(map[string]*WALRecord)
	}
	s.pendKey[string(rec.Key)] = rec
	s.pendBytes += int64(walFrame + walBodyHdr + len(rec.Key) + len(rec.Val))
}

// pendingGet resolves key through the pending batch: the last staged
// record for a key shadows the committed tree. hit reports whether the
// batch says anything about the key at all.
func (s *Store) pendingGet(key []byte) (val []byte, present, hit bool) {
	rec, ok := s.pendKey[string(key)]
	if !ok {
		return nil, false, false
	}
	if rec.Op == WALOpDelete {
		return nil, false, true
	}
	return rec.Val, true, true
}

// intervalFold is the commit-interval timer body: fold whatever is
// still pending, unless a policy- or flush-triggered fold already beat
// it to the batch (the generation moved).
func (s *Store) intervalFold(gen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.pendGen != gen || len(s.pend) == 0 {
		return
	}
	// A failed fold leaves the batch staged and the WAL intact; the
	// next append or explicit Flush retries and surfaces the error.
	_ = s.foldLocked()
}

// foldLocked folds the pending batch into one copy-on-write B-tree
// commit and resets the log: sync the WAL tail, replay the batch into a
// transaction, commit it (stamping meta.walSeq), truncate the WAL. On
// failure the batch stays staged and the WAL keeps its records, so the
// store state is exactly "crashed before the fold" and a retry or
// reopen recovers. Caller holds s.mu.
func (s *Store) foldLocked() error {
	if s.flushTimer != nil {
		s.flushTimer.Stop()
		s.flushTimer = nil
	}
	if len(s.pend) == 0 {
		return s.resetWALLocked()
	}
	if s.wal != nil {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("specdb: sync wal: %w", err)
		}
	}
	snap := s.cur.Load()
	tx := &Tx{
		base:    snap,
		root:    snap.meta.root,
		baseN:   snap.meta.npages,
		npages:  snap.meta.npages,
		pages:   make(map[uint64][]byte),
		nextOrd: snap.meta.nextOrd,
		count:   snap.meta.count,
	}
	for _, rec := range s.pend {
		switch rec.Op {
		case WALOpPut:
			if err := tx.Put(rec.Key, rec.Val); err != nil {
				return err
			}
		case WALOpDelete:
			if _, err := tx.Delete(rec.Key); err != nil {
				return err
			}
		}
	}
	tx.nextOrd = s.nextOrd
	if err := s.commit(snap, tx); err != nil {
		return err
	}
	s.pend = nil
	s.pendKey = make(map[string]*WALRecord)
	s.pendBytes = 0
	s.pendGen++
	if err := s.resetWALLocked(); err != nil {
		return err
	}
	s.maybeCompactLocked()
	return nil
}

// resetWALLocked truncates the log once every record in it is folded
// (meta.walSeq has passed them). Leaving stale records behind on error
// is harmless — recovery ignores sequences at or below meta.walSeq —
// but the error still surfaces as the I/O problem it is.
func (s *Store) resetWALLocked() error {
	if s.wal == nil || s.walLen == 0 {
		return nil
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("specdb: truncate wal: %w", err)
	}
	s.walLen = 0
	return nil
}

// discardLocked drops the unfolded pending batch: truncate the WAL tail
// and forget the staged records. Folds that already landed stay landed.
func (s *Store) discardLocked() error {
	if s.flushTimer != nil {
		s.flushTimer.Stop()
		s.flushTimer = nil
	}
	s.pend = nil
	s.pendKey = make(map[string]*WALRecord)
	s.pendBytes = 0
	s.pendGen++
	return s.resetWALLocked()
}

// maybeCompactLocked kicks off a background compaction when the current
// snapshot's dead-page ratio reaches the configured threshold. The
// goroutine takes the writer lock itself; snapshot readers (Current,
// OpenAt) are unaffected because compaction retires the old file handle
// without closing it.
func (s *Store) maybeCompactLocked() {
	if s.threshold <= 0 || s.readOnly || s.closed {
		return
	}
	snap := s.cur.Load()
	if snap.meta.npages <= 2 {
		return
	}
	ratio, err := snap.DeadPageRatio()
	if err != nil || ratio < s.threshold {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return // one background compaction at a time
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// A concurrent Close wins the race cleanly: Compact then
		// reports the store closed and the goroutine exits.
		if _, err := s.Compact(); err == nil {
			s.compactions.Add(1)
		}
		s.compacting.Store(false)
		// Folds that tripped the threshold while this compaction ran
		// were dropped by the CAS above; re-check so the trigger is
		// self-sustaining until the ratio falls below the threshold.
		s.mu.Lock()
		if !s.closed {
			s.maybeCompactLocked()
		}
		s.mu.Unlock()
	}()
}

// DeadPageRatio is the fraction of allocated data pages unreachable
// from this snapshot's root — garbage left behind by copy-on-write
// commits, reclaimable by Compact. Computed once per snapshot by a
// structural walk and cached (snapshots are immutable).
func (sn *Snapshot) DeadPageRatio() (float64, error) {
	sn.liveOnce.Do(func() {
		var vs VerifyStats
		if sn.meta.root != 0 {
			sn.liveErr = verifyNode(sn, sn.meta.root, &vs)
		}
		sn.livePages = vs.TreePages + vs.OverflowPages
	})
	if sn.liveErr != nil {
		return 0, sn.liveErr
	}
	alloc := sn.meta.npages - 2
	if alloc == 0 {
		return 0, nil
	}
	return float64(alloc-sn.livePages) / float64(alloc), nil
}

// overlay layers an unfolded WAL tail over a committed snapshot for
// read-only opens, which see every durable record but cannot fold.
type overlay struct {
	recs  map[string]*WALRecord // latest record per key; delete = tombstone
	keys  []string              // sorted keys of recs
	count uint64                // key count of the overlaid view
}

// buildOverlay reduces a WAL tail to its per-key latest records and
// computes the resulting key count against the base snapshot.
func buildOverlay(sn *Snapshot, tail []*WALRecord) (*overlay, error) {
	ov := &overlay{recs: make(map[string]*WALRecord)}
	count := sn.meta.count
	for _, rec := range tail {
		k := string(rec.Key)
		var present bool
		if prev, ok := ov.recs[k]; ok {
			present = prev.Op == WALOpPut
		} else {
			_, found, err := treeGet(sn, sn.meta.root, rec.Key)
			if err != nil {
				return nil, err
			}
			present = found
		}
		if rec.Op == WALOpPut && !present {
			count++
		}
		if rec.Op == WALOpDelete && present {
			count--
		}
		ov.recs[k] = rec
	}
	ov.keys = make([]string, 0, len(ov.recs))
	for k := range ov.recs {
		ov.keys = append(ov.keys, k)
	}
	sort.Strings(ov.keys)
	ov.count = count
	return ov, nil
}

// iterMerged walks the overlaid view in key order: tree keys and
// overlay keys interleave, an overlay record shadows its tree key
// (tombstones hide it), and overlay keys past the end of the tree drain
// afterwards.
func (ov *overlay) iterMerged(sn *Snapshot, lo []byte, fn func(key, val []byte) (bool, error)) error {
	idx := 0
	if lo != nil {
		idx = sort.SearchStrings(ov.keys, string(lo))
	}
	// emit yields overlay puts with keys below upto (nil = all).
	emit := func(upto []byte) (bool, error) {
		for idx < len(ov.keys) && (upto == nil || ov.keys[idx] < string(upto)) {
			k := ov.keys[idx]
			rec := ov.recs[k]
			idx++
			if rec.Op == WALOpDelete {
				continue
			}
			if cont, err := fn([]byte(k), rec.Val); err != nil || !cont {
				return false, err
			}
		}
		return true, nil
	}
	stopped := false
	err := treeIterFrom(sn, sn.meta.root, lo, func(key, val []byte) (bool, error) {
		cont, err := emit(key)
		if err != nil || !cont {
			stopped = true
			return false, err
		}
		if idx < len(ov.keys) && ov.keys[idx] == string(key) {
			rec := ov.recs[ov.keys[idx]]
			idx++
			if rec.Op == WALOpDelete {
				return true, nil
			}
			val = rec.Val
		}
		cont, err = fn(key, val)
		if err != nil || !cont {
			stopped = true
		}
		return cont, err
	})
	if err != nil || stopped {
		return err
	}
	_, err = emit(nil)
	return err
}

// Batch is a group-commit handle: operations append to the WAL
// immediately and stage in memory; the B-tree commit happens when the
// commit policy trips or Flush is called. All methods serialize on the
// store's writer lock, so concurrent batches interleave safely — they
// share one pending batch and one fold.
type Batch struct{ s *Store }

// Batch returns a group-commit handle on the store.
func (s *Store) Batch() *Batch { return &Batch{s: s} }

// Flush folds everything pending into one durable B-tree commit. A
// no-op when nothing is pending.
func (b *Batch) Flush() error {
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	if b.s.readOnly {
		return ErrReadOnly
	}
	if b.s.closed {
		return fmt.Errorf("specdb: store is closed")
	}
	return b.s.foldLocked()
}

// Discard drops every operation still pending (not yet folded).
// Operations a policy-triggered fold already committed stay committed —
// the same durability a sequence of individual upserts would have had.
func (b *Batch) Discard() error {
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	if b.s.readOnly {
		return ErrReadOnly
	}
	if b.s.closed {
		return fmt.Errorf("specdb: store is closed")
	}
	return b.s.discardLocked()
}

// Pending reports how many records await the next fold.
func (b *Batch) Pending() int {
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	return len(b.s.pend)
}

// put appends one raw put through the WAL (spec-level wrappers add
// ordinal bookkeeping on top).
func (b *Batch) put(key, val []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("specdb: empty key")
	}
	if len(key) > MaxKeyLen {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrKeyTooLong, len(key), MaxKeyLen)
	}
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	return b.s.appendRecordLocked(WALOpPut, key, val)
}

// delete appends one raw delete through the WAL.
func (b *Batch) delete(key []byte) error {
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	return b.s.appendRecordLocked(WALOpDelete, key, nil)
}
