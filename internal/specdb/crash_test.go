package specdb

// Crash-consistency harness. A recording file wrapper logs every write
// the store issues across a multi-commit run; the harness then rebuilds
// the file image at every write-log prefix (a crash between any two
// writes), plus torn variants of the next write (a crash mid-write) and
// truncations, and asserts the store recovers to exactly the last fully
// committed snapshot — never a panic, never partial state. A separate
// pass flips individual bits in the final image and asserts checksums
// turn silent corruption into clean errors.

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"
)

// memFile is an in-memory file for simulated crash images.
type memFile struct{ buf []byte }

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off >= int64(len(m.buf)) {
		return 0, io.EOF
	}
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

func (m *memFile) WriteAt(p []byte, off int64) (int, error) {
	end := off + int64(len(p))
	if int64(len(m.buf)) < end {
		grown := make([]byte, end)
		copy(grown, m.buf)
		m.buf = grown
	}
	copy(m.buf[off:], p)
	return len(p), nil
}

func (m *memFile) Sync() error { return nil }
func (m *memFile) Truncate(n int64) error {
	if n < int64(len(m.buf)) {
		m.buf = m.buf[:n]
	}
	return nil
}
func (m *memFile) Close() error         { return nil }
func (m *memFile) Size() (int64, error) { return int64(len(m.buf)), nil }

// writeOp is one logged WriteAt.
type writeOp struct {
	off  int64
	data []byte
}

// recordingFile mirrors writes into a memFile while logging them for
// prefix replay.
type recordingFile struct {
	mem *memFile
	log []writeOp
}

func (r *recordingFile) ReadAt(p []byte, off int64) (int, error) { return r.mem.ReadAt(p, off) }
func (r *recordingFile) WriteAt(p []byte, off int64) (int, error) {
	r.log = append(r.log, writeOp{off: off, data: append([]byte(nil), p...)})
	return r.mem.WriteAt(p, off)
}
func (r *recordingFile) Sync() error            { return nil }
func (r *recordingFile) Truncate(n int64) error { return r.mem.Truncate(n) }
func (r *recordingFile) Close() error           { return nil }
func (r *recordingFile) Size() (int64, error)   { return r.mem.Size() }

// committedState is the model at one commit, tagged with how many
// writes the log held once the commit was durable.
type committedState struct {
	seq    uint64
	model  map[string]string
	writes int
}

// buildCrashRun drives a deterministic multi-commit workload through a
// recording file and returns the write log plus the per-commit models.
func buildCrashRun(t *testing.T) ([]writeOp, []committedState) {
	t.Helper()
	rec := &recordingFile{mem: &memFile{}}
	if err := initEmpty(rec); err != nil {
		t.Fatal(err)
	}
	st, err := openWith(rec, "crash.mem", false)
	if err != nil {
		t.Fatal(err)
	}
	model := map[string]string{}
	commits := []committedState{{seq: st.Current().Seq(), model: copyModel(model), writes: len(rec.log)}}

	rng := rand.New(rand.NewSource(99))
	for c := 0; c < 10; c++ {
		err := st.Update(func(tx *Tx) error {
			for i := 0; i < 1+rng.Intn(5); i++ {
				k := fmt.Sprintf("iface:%02d", rng.Intn(30))
				if rng.Intn(5) == 0 {
					if _, err := tx.Delete([]byte(k)); err != nil {
						return err
					}
					delete(model, k)
				} else {
					v := fmt.Sprintf("val-%d-%s", c, string(make([]byte, rng.Intn(2*maxInline))))
					if err := tx.Put([]byte(k), []byte(v)); err != nil {
						return err
					}
					model[k] = v
				}
			}
			// Guarantee every commit is dirty.
			sentinel := fmt.Sprintf("commit:%d", c)
			if err := tx.Put([]byte(sentinel), []byte("x")); err != nil {
				return err
			}
			model[sentinel] = "x"
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		commits = append(commits, committedState{seq: st.Current().Seq(), model: copyModel(model), writes: len(rec.log)})
	}
	return rec.log, commits
}

// replayPrefix rebuilds the file image after the first n logged writes.
func replayPrefix(log []writeOp, n int) *memFile {
	f := &memFile{}
	for _, w := range log[:n] {
		f.WriteAt(w.data, w.off)
	}
	return f
}

// expectAt returns the committed state a crash after `writes` complete
// writes must recover to.
func expectAt(commits []committedState, writes int) (committedState, bool) {
	var best committedState
	found := false
	for _, c := range commits {
		if c.writes <= writes {
			best = c
			found = true
		}
	}
	return best, found
}

// checkRecovery opens a crash image and asserts it recovers to exactly
// the expected committed state. When no commit (not even the genesis
// init) is fully on disk, a clean open error is the correct outcome.
func checkRecovery(t *testing.T, img *memFile, want committedState, haveCommit bool, label string) {
	t.Helper()
	st, err := openWith(img, label, false)
	if err != nil {
		if haveCommit {
			t.Fatalf("%s: lost committed seq %d: %v", label, want.seq, err)
		}
		if !errors.Is(err, ErrNotStore) && !errors.Is(err, ErrVersion) {
			t.Fatalf("%s: pre-genesis crash produced unexpected error class: %v", label, err)
		}
		return
	}
	if !haveCommit {
		t.Fatalf("%s: opened with no durable commit (seq %d)", label, st.Current().Seq())
	}
	if got := st.Current().Seq(); got != want.seq {
		t.Fatalf("%s: recovered seq %d, want %d", label, got, want.seq)
	}
	if _, err := st.Verify(); err != nil {
		t.Fatalf("%s: verify after recovery: %v", label, err)
	}
	checkAgainstModel(t, st.Current(), want.model, label)
}

// TestCrashConsistencyEveryCommitOffset replays the run's write log cut
// at every offset, and additionally tears the in-flight write at each
// cut (half written, and half written then zero-filled).
func TestCrashConsistencyEveryCommitOffset(t *testing.T) {
	log, commits := buildCrashRun(t)
	genesisWrites := commits[0].writes

	for p := 0; p <= len(log); p++ {
		want, _ := expectAt(commits, p)
		have := p >= genesisWrites
		checkRecovery(t, replayPrefix(log, p), want, have, fmt.Sprintf("prefix %d/%d", p, len(log)))

		if p == len(log) {
			continue
		}
		// Torn in-flight write: only the first half of write p lands.
		next := log[p]
		img := replayPrefix(log, p)
		img.WriteAt(next.data[:len(next.data)/2], next.off)
		checkRecovery(t, img, want, have, fmt.Sprintf("torn %d/%d", p, len(log)))

		// Torn with trailing garbage: first half lands, the rest of the
		// page is scribbled rather than left at its old content.
		img = replayPrefix(log, p)
		scribble := append(append([]byte(nil), next.data[:len(next.data)/2]...),
			make([]byte, len(next.data)-len(next.data)/2)...)
		for i := len(next.data) / 2; i < len(scribble); i++ {
			scribble[i] = 0xAA
		}
		img.WriteAt(scribble, next.off)
		checkRecovery(t, img, want, have, fmt.Sprintf("scribbled %d/%d", p, len(log)))
	}
}

// TestCrashTruncation cuts the final image at every page boundary and
// at unaligned offsets. Recovery must land on a committed snapshot
// whose reachable pages all survived, or fail cleanly — and reads
// through a truncated store must error, never fabricate data.
func TestCrashTruncation(t *testing.T) {
	log, commits := buildCrashRun(t)
	full := replayPrefix(log, len(log))
	final := commits[len(commits)-1]
	size := int64(len(full.buf))

	var cuts []int64
	for off := int64(0); off <= size; off += PageSize {
		cuts = append(cuts, off, off+1, off+PageSize/2)
	}
	for _, cut := range cuts {
		if cut > size {
			continue
		}
		img := &memFile{buf: append([]byte(nil), full.buf[:cut]...)}
		st, err := openWith(img, "trunc", false)
		if err != nil {
			// Both meta slots cut off — fine as long as it's clean.
			if cut >= 2*PageSize {
				t.Fatalf("truncate@%d: open failed with both meta slots present: %v", cut, err)
			}
			continue
		}
		seq := st.Current().Seq()
		var want *committedState
		for i := range commits {
			if commits[i].seq == seq {
				want = &commits[i]
			}
		}
		if want == nil {
			t.Fatalf("truncate@%d: recovered unknown seq %d", cut, seq)
		}
		// Every key either reads back its committed value or errors
		// cleanly; silent wrong data is the one forbidden outcome.
		for k, v := range want.model {
			got, ok, err := st.Current().Get([]byte(k))
			if err != nil {
				continue // truncated page: clean error
			}
			if !ok || string(got) != v {
				t.Fatalf("truncate@%d seq %d: key %q silently wrong (ok=%v)", cut, seq, k, ok)
			}
		}
		if _, err := st.Verify(); err == nil {
			// A fully verifiable store must be exactly the committed state.
			checkAgainstModel(t, st.Current(), want.model, fmt.Sprintf("truncate@%d", cut))
			_ = final
		}
	}
}

// TestCrashBitFlips flips single bits across the final image: recovery
// must either keep serving the committed state (flip hit a dead page),
// recover to the previous commit (flip hit the newest meta), or
// surface a checksum error — silent wrong data and panics are the
// failure modes being excluded.
func TestCrashBitFlips(t *testing.T) {
	log, commits := buildCrashRun(t)
	full := replayPrefix(log, len(log))
	final := commits[len(commits)-1]
	rng := rand.New(rand.NewSource(7))

	offsets := make([]int64, 0, 300)
	for i := 0; i < 260; i++ {
		offsets = append(offsets, rng.Int63n(int64(len(full.buf))))
	}
	// Target both meta slots explicitly.
	for slot := int64(0); slot < 2; slot++ {
		offsets = append(offsets, slot*PageSize+20, slot*PageSize+checksumOff+3)
	}

	for _, off := range offsets {
		img := &memFile{buf: append([]byte(nil), full.buf...)}
		img.buf[off] ^= 1 << uint(rng.Intn(8))

		st, err := openWith(img, "flip", false)
		if err != nil {
			t.Fatalf("flip@%d: open failed with one flipped bit (the other meta slot must survive): %v", off, err)
		}
		seq := st.Current().Seq()
		if seq != final.seq && seq != final.seq-1 {
			t.Fatalf("flip@%d: recovered seq %d, want %d or %d", off, seq, final.seq, final.seq-1)
		}
		var want committedState
		for _, c := range commits {
			if c.seq == seq {
				want = c
			}
		}
		if _, err := st.Verify(); err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
				t.Fatalf("flip@%d: verify error is not a clean corruption report: %v", off, err)
			}
			continue
		}
		checkAgainstModel(t, st.Current(), want.model, fmt.Sprintf("flip@%d", off))
	}
}
