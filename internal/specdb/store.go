// Store lifecycle: create/open, transactional copy-on-write updates
// with the dual-slot atomic meta commit, pinned historical snapshots
// (OpenAt), offline compaction, and structural verification.
package specdb

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Store is an open spec store. One writer at a time (serialized by an
// internal mutex); any number of concurrent readers via Current(),
// each holding an immutable Snapshot.
type Store struct {
	path     string
	readOnly bool

	mu      sync.Mutex // serializes Update/Compact/Close and the WAL batch
	f       file
	wal     file   // sidecar write-ahead log; nil when opened without one
	walLen  int64  // trusted byte length of the log (the append offset)
	walSeq  uint64 // last WAL sequence number assigned
	retired []file // pre-compaction files kept open for live snapshots
	closed  bool

	// Group-commit state (guarded by mu). nextOrd tracks ordinal
	// allocation through the pending batch, ahead of the committed
	// meta.nextOrd until the next fold.
	nextOrd    uint64
	pend       []*WALRecord
	pendKey    map[string]*WALRecord
	pendBytes  int64
	pendGen    uint64
	pol        CommitPolicy
	flushTimer *time.Timer
	roPending  int        // read-only opens: overlaid WAL tail records
	look       *snapCache // branch-page cache for batch dedup lookups

	// Background compaction (opened with Options.CompactThreshold).
	threshold   float64
	compacting  atomic.Bool
	wg          sync.WaitGroup
	compactions atomic.Int64

	cur atomic.Pointer[Snapshot]
}

// Snapshot is an immutable view of one committed store state. It stays
// readable until the Store is closed, even across later commits and
// compactions. A read-only open of a store with an unfolded WAL tail
// carries the tail as an in-memory overlay, so readers see every durable
// record even though they cannot fold.
type Snapshot struct {
	f    file
	meta meta
	ov   *overlay

	// Dead-page accounting, computed lazily once per snapshot.
	liveOnce  sync.Once
	livePages uint64
	liveErr   error
}

// Seq is the commit sequence number this snapshot was published at.
func (sn *Snapshot) Seq() uint64 { return sn.meta.seq }

// Len is the number of keys in the snapshot, including any overlaid
// WAL tail.
func (sn *Snapshot) Len() int {
	if sn.ov != nil {
		return int(sn.ov.count)
	}
	return int(sn.meta.count)
}

func (sn *Snapshot) page(id uint64) ([]byte, error) {
	if id < 2 || id >= sn.meta.npages {
		return nil, fmt.Errorf("%w: page id %d out of range [2,%d)", ErrCorrupt, id, sn.meta.npages)
	}
	buf := make([]byte, PageSize)
	if _, err := sn.f.ReadAt(buf, int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("specdb: read page %d: %w", id, err)
	}
	return buf, nil
}

// Get returns the value stored under key.
func (sn *Snapshot) Get(key []byte) ([]byte, bool, error) {
	if sn.ov != nil {
		if rec, ok := sn.ov.recs[string(key)]; ok {
			if rec.Op == WALOpDelete {
				return nil, false, nil
			}
			return rec.Val, true, nil
		}
	}
	return treeGet(sn, sn.meta.root, key)
}

// Iterate walks all keys in order. fn returns false to stop early.
func (sn *Snapshot) Iterate(fn func(key, val []byte) (bool, error)) error {
	return sn.IterateFrom(nil, fn)
}

// IterateFrom walks keys >= lo in order. fn returns false to stop early.
func (sn *Snapshot) IterateFrom(lo []byte, fn func(key, val []byte) (bool, error)) error {
	if sn.ov != nil {
		return sn.ov.iterMerged(sn, lo, fn)
	}
	return treeIterFrom(sn, sn.meta.root, lo, fn)
}

// Create makes a new empty store at path, failing if the file exists.
func Create(path string) (*Store, error) {
	return CreateOptions(path, Options{})
}

// CreateOptions is Create with a commit policy and compaction tuning.
func CreateOptions(path string, opts Options) (*Store, error) {
	osf, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	f := osFile{f: osf}
	if err := initEmpty(f); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	wal, err := openWAL(path, false)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	st, err := openStore(f, wal, path, false, opts)
	if err != nil {
		f.Close()
		if wal != nil {
			wal.Close()
		}
		os.Remove(path)
		return nil, err
	}
	return st, nil
}

// walPath is the sidecar write-ahead log next to a store file.
func walPath(path string) string { return path + ".wal" }

// openWAL opens the sidecar log: created on demand for read-write
// stores, optional for read-only ones (nil when absent).
func openWAL(path string, readOnly bool) (file, error) {
	if readOnly {
		osf, err := os.OpenFile(walPath(path), os.O_RDONLY, 0o644)
		if os.IsNotExist(err) {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		return osFile{f: osf}, nil
	}
	osf, err := os.OpenFile(walPath(path), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f: osf}, nil
}

// initEmpty writes the genesis state: an invalid slot 0 and a committed
// empty meta at slot 1 (seq 1, so the first Update commits seq 2 into
// slot 0).
func initEmpty(f file) error {
	if _, err := f.WriteAt(make([]byte, PageSize), 0); err != nil {
		return err
	}
	m := meta{seq: 1, root: 0, npages: 2, nextOrd: 1, count: 0}
	if _, err := f.WriteAt(encodeMeta(m), PageSize); err != nil {
		return err
	}
	return f.Sync()
}

// Open opens an existing store read-write, recovering to the newest
// fully committed snapshot and replaying any unfolded WAL tail into one
// recovery commit. A store written by a different format version is
// rejected with an error wrapping ErrVersion.
func Open(path string) (*Store, error) {
	return OpenOptions(path, Options{})
}

// OpenOptions is Open with a commit policy and compaction tuning.
func OpenOptions(path string, opts Options) (*Store, error) {
	return openPath(path, false, opts)
}

// OpenReadOnly opens an existing store for reading only. An unfolded
// WAL tail is layered over the committed snapshot as an in-memory
// overlay; the store file and log are never written.
func OpenReadOnly(path string) (*Store, error) {
	return openPath(path, true, Options{})
}

func openPath(path string, readOnly bool, opts Options) (*Store, error) {
	flag := os.O_RDWR
	if readOnly {
		flag = os.O_RDONLY
	}
	osf, err := os.OpenFile(path, flag, 0o644)
	if err != nil {
		return nil, err
	}
	wal, err := openWAL(path, readOnly)
	if err != nil {
		osf.Close()
		return nil, err
	}
	st, err := openStore(osFile{f: osf}, wal, path, readOnly, opts)
	if err != nil {
		osf.Close()
		if wal != nil {
			wal.Close()
		}
		return nil, err
	}
	return st, nil
}

// openWith recovers a store over an injected file with no sidecar log —
// the crash harness's entry point for simulated post-crash page images.
func openWith(f file, path string, readOnly bool) (*Store, error) {
	return openStore(f, nil, path, readOnly, Options{})
}

// openStore recovers the newest valid meta slot, scans the WAL for
// records past meta.walSeq (the unfolded tail), and builds the Store: a
// read-write open replays the tail into one recovery commit and resets
// the log; a read-only open overlays the tail in memory. Factored over
// the file interface so the crash harness can open simulated post-crash
// images of both files.
func openStore(f file, wal file, path string, readOnly bool, opts Options) (*Store, error) {
	best, ok, skew := recoverMeta(f)
	if !ok {
		if skew != 0 {
			return nil, fmt.Errorf("%w: %s was written by store format %d, this build reads format %d; re-import the flat corpus with `seal specdb -import`",
				ErrVersion, path, skew, FormatVersion)
		}
		return nil, fmt.Errorf("%w: %s has no valid meta page", ErrNotStore, path)
	}
	st := &Store{
		path:      path,
		readOnly:  readOnly,
		f:         f,
		wal:       wal,
		walSeq:    best.walSeq,
		nextOrd:   best.nextOrd,
		pol:       opts.Commit.withDefaults(),
		threshold: opts.CompactThreshold,
	}
	st.cur.Store(&Snapshot{f: f, meta: best})
	if wal == nil {
		return st, nil
	}
	recs, validLen, err := scanWAL(wal)
	if err != nil {
		return nil, err
	}
	st.walLen = validLen
	// Records at or below meta.walSeq were folded by the commit that
	// stamped the meta; only the tail past it is outstanding.
	tail := recs[:0:0]
	for _, rec := range recs {
		if rec.Seq > best.walSeq {
			tail = append(tail, rec)
		}
	}
	if readOnly {
		if len(tail) > 0 {
			sn := st.cur.Load()
			ov, err := buildOverlay(sn, tail)
			if err != nil {
				return nil, err
			}
			last := tail[len(tail)-1]
			st.walSeq, st.nextOrd = last.Seq, last.NextOrd
			st.roPending = len(tail)
			st.cur.Store(&Snapshot{f: f, meta: best, ov: ov})
		}
		return st, nil
	}
	if len(tail) > 0 {
		if err := st.replayTail(tail); err != nil {
			return nil, fmt.Errorf("specdb: replay wal tail: %w", err)
		}
	}
	// Whether the tail was just folded or the log held only stale
	// records, everything on disk is now absorbed by the meta: reset.
	if err := st.resetWALLocked(); err != nil {
		return nil, err
	}
	return st, nil
}

// replayTail folds an unfolded WAL tail into one recovery commit,
// restoring ordinal allocation from the last record's NextOrd.
func (s *Store) replayTail(tail []*WALRecord) error {
	snap := s.cur.Load()
	tx := &Tx{
		base:    snap,
		root:    snap.meta.root,
		baseN:   snap.meta.npages,
		npages:  snap.meta.npages,
		pages:   make(map[uint64][]byte),
		nextOrd: snap.meta.nextOrd,
		count:   snap.meta.count,
	}
	for _, rec := range tail {
		switch rec.Op {
		case WALOpPut:
			if err := tx.Put(rec.Key, rec.Val); err != nil {
				return err
			}
		case WALOpDelete:
			if _, err := tx.Delete(rec.Key); err != nil {
				return err
			}
		}
	}
	last := tail[len(tail)-1]
	s.walSeq, s.nextOrd = last.Seq, last.NextOrd
	tx.nextOrd = last.NextOrd
	return s.commit(snap, tx)
}

// recoverMeta picks the valid meta slot with the highest sequence
// number. skew reports a foreign format version if that is the only
// reason no slot validated.
func recoverMeta(f file) (best meta, ok bool, skew uint32) {
	for slot := uint64(0); slot < 2; slot++ {
		m, sk, valid := decodeMetaSlot(f, slot)
		if valid {
			if !ok || m.seq > best.seq {
				best = m
			}
			ok = true
		} else if sk != 0 {
			skew = sk
		}
	}
	if ok {
		skew = 0
	}
	return best, ok, skew
}

// OpenAt opens the store read-only pinned at an exact commit sequence
// number. Only the two resident meta slots are reachable: the requested
// seq must be the current commit or the immediately preceding one, or
// OpenAt fails with an error wrapping ErrSnapshotGone. This is the
// coordinator/worker contract — a shard job references (path, seq) and
// the worker refuses to run against a view the coordinator didn't pin.
func OpenAt(path string, seq uint64) (*Store, error) {
	osf, err := os.OpenFile(path, os.O_RDONLY, 0o644)
	if err != nil {
		return nil, err
	}
	f := osFile{f: osf}
	for slot := uint64(0); slot < 2; slot++ {
		m, _, valid := decodeMetaSlot(f, slot)
		if valid && m.seq == seq {
			st := &Store{path: path, readOnly: true, f: f}
			st.cur.Store(&Snapshot{f: f, meta: m})
			return st, nil
		}
	}
	best, ok, _ := recoverMeta(f)
	osf.Close()
	if !ok {
		return nil, fmt.Errorf("%w: %s has no valid meta page", ErrNotStore, path)
	}
	return nil, fmt.Errorf("%w: %s holds seq %d, requested seq %d", ErrSnapshotGone, path, best.seq, seq)
}

// Path returns the file path the store was opened at.
func (s *Store) Path() string { return s.path }

// Current returns the latest committed snapshot.
func (s *Store) Current() *Snapshot { return s.cur.Load() }

// Close folds any pending WAL batch, waits for an in-flight background
// compaction, and releases the store file, the log, and any handles
// retired by Compact. Snapshots become invalid after Close.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	var err error
	if !s.readOnly {
		err = s.foldLocked()
	}
	if s.flushTimer != nil {
		s.flushTimer.Stop()
		s.flushTimer = nil
	}
	s.closed = true
	s.mu.Unlock()
	// A background compaction observes closed under mu and bails; wait
	// for it before invalidating file handles.
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	if s.wal != nil {
		if cerr := s.wal.Close(); err == nil {
			err = cerr
		}
	}
	for _, rf := range s.retired {
		if cerr := rf.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Tx is a copy-on-write write transaction. Mutations build new pages in
// memory; nothing touches the file until the enclosing Update commits.
// Pages at or above baseN were allocated by this transaction and may be
// rewritten in place — copy-on-write only protects pages the base
// snapshot can reach.
type Tx struct {
	base     *Snapshot
	root     uint64
	baseN    uint64
	npages   uint64
	pages    map[uint64][]byte
	verified map[uint64][]byte // base branch pages already checksum-verified

	nextOrd uint64
	count   uint64
	dirty   bool
}

func (tx *Tx) page(id uint64) ([]byte, error) {
	if buf, ok := tx.pages[id]; ok {
		return buf, nil
	}
	return tx.base.page(id)
}

// trustedPage serves the transaction's own dirty pages without checksum
// verification — they were sealed by writeNode in this process and have
// never round-tripped through the file — plus base-snapshot branch
// pages this transaction already verified once.
func (tx *Tx) trustedPage(id uint64) ([]byte, bool) {
	if buf, ok := tx.pages[id]; ok {
		return buf, true
	}
	buf, ok := tx.verified[id]
	return buf, ok
}

func (tx *Tx) noteVerified(id uint64, buf []byte) {
	if tx.verified == nil {
		tx.verified = make(map[uint64][]byte)
	}
	tx.verified[id] = buf
}

// snapCache wraps a snapshot for a read path that walks the same tree
// repeatedly (batched import dedup lookups), memoizing checksum-verified
// branch pages. Not safe for concurrent use; callers hold the store
// lock. The cache dies with the snapshot it wraps — a fold publishes a
// new snapshot and the store builds a fresh cache for it.
type snapCache struct {
	sn       *Snapshot
	verified map[uint64][]byte
}

func (c *snapCache) page(id uint64) ([]byte, error) { return c.sn.page(id) }
func (c *snapCache) trustedPage(id uint64) ([]byte, bool) {
	buf, ok := c.verified[id]
	return buf, ok
}
func (c *snapCache) noteVerified(id uint64, buf []byte) { c.verified[id] = buf }

// lookupSourceLocked returns a branch-page-caching view of the current
// snapshot, rebuilt whenever a fold publishes a new one. Caller holds
// s.mu.
func (s *Store) lookupSourceLocked() (pageSource, *Snapshot) {
	snap := s.cur.Load()
	if s.look == nil || s.look.sn != snap {
		s.look = &snapCache{sn: snap, verified: make(map[uint64][]byte)}
	}
	return s.look, snap
}

func (tx *Tx) alloc(buf []byte) uint64 {
	id := tx.npages
	tx.npages++
	tx.pages[id] = buf
	return id
}

// Get reads through the transaction's uncommitted state.
func (tx *Tx) Get(key []byte) ([]byte, bool, error) {
	return treeGet(tx, tx.root, key)
}

// Iterate walks the transaction's uncommitted state in key order.
func (tx *Tx) Iterate(fn func(key, val []byte) (bool, error)) error {
	return treeIterFrom(tx, tx.root, nil, fn)
}

// IterateFrom walks uncommitted keys >= lo in order.
func (tx *Tx) IterateFrom(lo []byte, fn func(key, val []byte) (bool, error)) error {
	return treeIterFrom(tx, tx.root, lo, fn)
}

// Len is the number of keys, including uncommitted changes.
func (tx *Tx) Len() int { return int(tx.count) }

// TakeOrd hands out the next record ordinal and advances the counter.
func (tx *Tx) TakeOrd() uint64 {
	ord := tx.nextOrd
	tx.nextOrd++
	tx.dirty = true
	return ord
}

// Put inserts or replaces key.
func (tx *Tx) Put(key, val []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("specdb: empty key")
	}
	if len(key) > MaxKeyLen {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrKeyTooLong, len(key), MaxKeyLen)
	}
	tx.dirty = true
	if tx.root == 0 {
		id, err := tx.writeNode(&node{leaf: true, keys: [][]byte{key}, vals: [][]byte{val},
			ovfs: []uint64{0}, vlens: []uint32{uint32(len(val))}}, 0)
		if err != nil {
			return err
		}
		tx.root = id
		tx.count++
		return nil
	}
	sr, err := tx.insertRec(tx.root, key, val)
	if err != nil {
		return err
	}
	if sr.split {
		rid, err := tx.writeNode(&node{keys: [][]byte{sr.sep}, kids: []uint64{sr.left, sr.right}}, 0)
		if err != nil {
			return err
		}
		tx.root = rid
	} else {
		tx.root = sr.left
	}
	if !sr.replaced {
		tx.count++
	}
	return nil
}

// Delete removes key, reporting whether it was present.
func (tx *Tx) Delete(key []byte) (bool, error) {
	if tx.root == 0 {
		return false, nil
	}
	dr, err := tx.deleteRec(tx.root, key)
	if err != nil {
		return false, err
	}
	if !dr.found {
		return false, nil
	}
	tx.dirty = true
	if dr.empty {
		tx.root = 0
	} else {
		tx.root = dr.id
	}
	tx.count--
	return true, nil
}

// Update runs fn in a write transaction and atomically commits its
// changes: new pages are written and synced, then the meta page is
// written to the alternating slot and synced. A crash at any point
// leaves the previous commit intact. If fn returns an error or makes
// no changes, the file is untouched.
func (s *Store) Update(fn func(tx *Tx) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	if s.closed {
		return fmt.Errorf("specdb: store is closed")
	}
	// Fold any pending WAL batch first so the transaction builds on
	// every operation that already went through the log.
	if err := s.foldLocked(); err != nil {
		return err
	}
	snap := s.cur.Load()
	tx := &Tx{
		base:    snap,
		root:    snap.meta.root,
		baseN:   snap.meta.npages,
		npages:  snap.meta.npages,
		pages:   make(map[uint64][]byte),
		nextOrd: snap.meta.nextOrd,
		count:   snap.meta.count,
	}
	if err := fn(tx); err != nil {
		return err
	}
	if !tx.dirty {
		return nil
	}
	if err := s.commit(snap, tx); err != nil {
		return err
	}
	s.nextOrd = tx.nextOrd
	return nil
}

func (s *Store) commit(snap *Snapshot, tx *Tx) error {
	ids := make([]uint64, 0, len(tx.pages))
	for id := range tx.pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if _, err := s.f.WriteAt(tx.pages[id], int64(id)*PageSize); err != nil {
			return fmt.Errorf("specdb: write page %d: %w", id, err)
		}
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("specdb: sync pages: %w", err)
	}
	m := meta{seq: snap.meta.seq + 1, root: tx.root, npages: tx.npages, nextOrd: tx.nextOrd, count: tx.count, walSeq: s.walSeq}
	if _, err := s.f.WriteAt(encodeMeta(m), int64(m.seq%2)*PageSize); err != nil {
		return fmt.Errorf("specdb: write meta: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("specdb: sync meta: %w", err)
	}
	s.cur.Store(&Snapshot{f: s.f, meta: m})
	return nil
}

// CompactStats reports what Compact reclaimed.
type CompactStats struct {
	Seq         uint64 // sequence number of the compacted commit
	Keys        uint64
	PagesBefore uint64
	PagesAfter  uint64
}

// Compact rewrites the store into a fresh file in key order, dropping
// every unreachable (superseded copy-on-write) page, and atomically
// renames it over the store path. The sequence number advances by one.
// Snapshots taken before Compact stay readable — the old file handle is
// retired, not closed, until the Store itself closes.
func (s *Store) Compact() (CompactStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return CompactStats{}, ErrReadOnly
	}
	if s.closed {
		return CompactStats{}, fmt.Errorf("specdb: store is closed")
	}
	// Fold any pending WAL batch so the rewrite captures it and the log
	// is empty when the new file (stamped with the folded walSeq) lands.
	if err := s.foldLocked(); err != nil {
		return CompactStats{}, err
	}
	snap := s.cur.Load()
	tmp := s.path + ".compact"
	os.Remove(tmp)
	osf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return CompactStats{}, err
	}
	nf := osFile{f: osf}
	fail := func(err error) (CompactStats, error) {
		nf.Close()
		os.Remove(tmp)
		return CompactStats{}, err
	}
	tx := &Tx{
		base:    &Snapshot{f: nf, meta: meta{npages: 2}},
		baseN:   2,
		npages:  2,
		pages:   make(map[uint64][]byte),
		nextOrd: snap.meta.nextOrd,
	}
	err = snap.Iterate(func(key, val []byte) (bool, error) {
		return true, tx.Put(append([]byte(nil), key...), append([]byte(nil), val...))
	})
	if err != nil {
		return fail(err)
	}
	if tx.count != snap.meta.count {
		return fail(fmt.Errorf("%w: compaction saw %d keys, meta declares %d", ErrCorrupt, tx.count, snap.meta.count))
	}
	if _, err := nf.WriteAt(make([]byte, 2*PageSize), 0); err != nil {
		return fail(err)
	}
	ids := make([]uint64, 0, len(tx.pages))
	for id := range tx.pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if _, err := nf.WriteAt(tx.pages[id], int64(id)*PageSize); err != nil {
			return fail(err)
		}
	}
	m := meta{seq: snap.meta.seq + 1, root: tx.root, npages: tx.npages, nextOrd: tx.nextOrd, count: tx.count, walSeq: s.walSeq}
	if _, err := nf.WriteAt(encodeMeta(m), int64(m.seq%2)*PageSize); err != nil {
		return fail(err)
	}
	if err := nf.Sync(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fail(err)
	}
	s.retired = append(s.retired, s.f)
	s.f = nf
	s.cur.Store(&Snapshot{f: nf, meta: m})
	return CompactStats{Seq: m.seq, Keys: m.count, PagesBefore: snap.meta.npages, PagesAfter: m.npages}, nil
}

// VerifyStats summarizes a successful structural walk.
type VerifyStats struct {
	Seq           uint64
	Keys          uint64
	TreePages     uint64
	OverflowPages uint64
	FilePages     uint64 // allocated pages per the meta, live or not
}

// Verify walks every page reachable from the current root, checking
// checksums, structure, key order, and the meta key count.
func (s *Store) Verify() (VerifyStats, error) {
	snap := s.Current()
	vs := VerifyStats{Seq: snap.meta.seq, FilePages: snap.meta.npages}
	if snap.meta.root != 0 {
		if err := verifyNode(snap, snap.meta.root, &vs); err != nil {
			return vs, err
		}
	}
	if vs.Keys != snap.meta.count {
		return vs, fmt.Errorf("%w: tree holds %d keys, meta declares %d", ErrCorrupt, vs.Keys, snap.meta.count)
	}
	var prev []byte
	first := true
	err := snap.Iterate(func(key, _ []byte) (bool, error) {
		if !first && string(prev) >= string(key) {
			return false, fmt.Errorf("%w: global key order violated at %q", ErrCorrupt, key)
		}
		prev = append(prev[:0], key...)
		first = false
		return true, nil
	})
	return vs, err
}

func verifyNode(sn *Snapshot, id uint64, vs *VerifyStats) error {
	p, err := readPage(sn, id)
	if err != nil {
		return err
	}
	switch p.Type {
	case pageLeaf:
		vs.TreePages++
		vs.Keys += uint64(len(p.Keys))
		for i, ovf := range p.Ovf {
			if ovf == 0 {
				continue
			}
			chunks := uint64(int(p.VLen[i])+ovfChunk-1) / uint64(ovfChunk)
			if _, err := readOverflow(sn, ovf, p.VLen[i]); err != nil {
				return err
			}
			vs.OverflowPages += chunks
		}
		return nil
	case pageBranch:
		vs.TreePages++
		for _, kid := range p.Kids {
			if err := verifyNode(sn, kid, vs); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("page %d: %w: expected a tree node, found page type %d", id, ErrCorrupt, p.Type)
	}
}

// StoreStats is a cheap summary of the open store, plus the write-path
// liveness signals: how deep the unfolded WAL batch is and how much of
// the file is copy-on-write garbage a compaction would reclaim.
type StoreStats struct {
	Path      string `json:"path"`
	Seq       uint64 `json:"seq"`
	Keys      uint64 `json:"keys"`
	NextOrd   uint64 `json:"next_ord"`
	Pages     uint64 `json:"pages"`
	FileBytes int64  `json:"file_bytes"`

	// WALSeq is the last WAL sequence number assigned;
	// WALRecordsPending counts records appended (or, read-only,
	// overlaid) but not yet folded into a B-tree commit.
	WALSeq            uint64 `json:"wal_seq"`
	WALRecordsPending int    `json:"wal_records_pending"`
	WALBytes          int64  `json:"wal_bytes"`

	// DeadPageRatio is the fraction of allocated data pages superseded
	// by copy-on-write commits; Compactions counts background
	// compactions this handle has completed.
	DeadPageRatio float64 `json:"dead_page_ratio"`
	Compactions   int64   `json:"compactions"`
}

// Stats reports the current snapshot's header fields, the file size,
// and the WAL / dead-page liveness signals.
func (s *Store) Stats() StoreStats {
	snap := s.Current()
	sz, _ := s.f.Size()
	s.mu.Lock()
	pending := len(s.pend)
	if s.readOnly {
		pending = s.roPending
	}
	walSeq, walBytes := s.walSeq, s.walLen
	s.mu.Unlock()
	// A structurally broken snapshot surfaces through Verify; here the
	// ratio simply reads 0.
	ratio, _ := snap.DeadPageRatio()
	return StoreStats{
		Path:              s.path,
		Seq:               snap.meta.seq,
		Keys:              snap.meta.count,
		NextOrd:           snap.meta.nextOrd,
		Pages:             snap.meta.npages,
		FileBytes:         sz,
		WALSeq:            walSeq,
		WALRecordsPending: pending,
		WALBytes:          walBytes,
		DeadPageRatio:     ratio,
		Compactions:       s.compactions.Load(),
	}
}
