// Spec-level layer over the raw key/value B-tree. Keys are spec.Key()
// — "<scope> | <constraint>" with scope "iface:NAME" or "api:NAME" —
// so one interface's specs occupy one contiguous key range and a
// region-group's spec subset is a prefix scan. Values are JSON records
// carrying the spec plus its import ordinal; Specs() returns the corpus
// sorted by ordinal, which reproduces the flat-file load order exactly
// (the byte-identity contract with the flat baseline rests on this).
package specdb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"seal/internal/spec"
)

// specRecord is the stored value for one spec. The spec rides inside a
// single-entry spec.DB because condition trees only (de)serialize
// through the DB-level JSON codec.
type specRecord struct {
	Ord uint64   `json:"ord"`
	DB  *spec.DB `json:"db"`
}

func encodeSpec(ord uint64, sp *spec.Spec) ([]byte, error) {
	return json.Marshal(specRecord{Ord: ord, DB: &spec.DB{Specs: []*spec.Spec{sp}}})
}

func decodeSpec(val []byte) (uint64, *spec.Spec, error) {
	var rec specRecord
	if err := json.Unmarshal(val, &rec); err != nil {
		return 0, nil, fmt.Errorf("%w: spec record: %v", ErrCorrupt, err)
	}
	if rec.DB == nil || len(rec.DB.Specs) != 1 {
		return 0, nil, fmt.Errorf("%w: spec record holds %d specs, want 1", ErrCorrupt, recLen(rec.DB))
	}
	return rec.Ord, rec.DB.Specs[0], nil
}

func recLen(db *spec.DB) int {
	if db == nil {
		return 0
	}
	return len(db.Specs)
}

// lookupLocked resolves key through the pending WAL batch first, then
// the committed snapshot — the writer's read-your-writes view. Caller
// holds s.mu.
func (s *Store) lookupLocked(key []byte) ([]byte, bool, error) {
	if val, present, hit := s.pendingGet(key); hit {
		return val, present, nil
	}
	src, sn := s.lookupSourceLocked()
	return treeGet(src, sn.meta.root, key)
}

// checkSpecKey validates a spec key before any ordinal is allocated or
// record appended.
func checkSpecKey(key []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("specdb: empty key")
	}
	if len(key) > MaxKeyLen {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrKeyTooLong, len(key), MaxKeyLen)
	}
	return nil
}

// ImportSpecs appends specs in order through the batch, first-wins on
// duplicate keys (matching spec.DB.Dedup semantics for both in-input
// duplicates and keys already present in the store or pending batch).
// Records fold whenever the commit policy trips mid-import.
func (b *Batch) ImportSpecs(specs []*spec.Spec) (added, skipped int, err error) {
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	for _, sp := range specs {
		key := []byte(sp.Key())
		if err := checkSpecKey(key); err != nil {
			return added, skipped, err
		}
		if _, ok, err := b.s.lookupLocked(key); err != nil {
			return added, skipped, err
		} else if ok {
			skipped++
			continue
		}
		val, err := encodeSpec(b.s.nextOrd, sp)
		if err != nil {
			return added, skipped, err
		}
		b.s.nextOrd++
		if err := b.s.appendRecordLocked(WALOpPut, key, val); err != nil {
			return added, skipped, err
		}
		added++
	}
	return added, skipped, nil
}

// UpsertSpec appends an insert-or-replace of sp.Key() through the
// batch. A replaced spec (committed or pending) keeps its ordinal; a
// new spec allocates the next one.
func (b *Batch) UpsertSpec(sp *spec.Spec) (created bool, err error) {
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	key := []byte(sp.Key())
	if err := checkSpecKey(key); err != nil {
		return false, err
	}
	old, ok, err := b.s.lookupLocked(key)
	if err != nil {
		return false, err
	}
	var ord uint64
	if ok {
		if ord, _, err = decodeSpec(old); err != nil {
			return false, err
		}
	} else {
		ord = b.s.nextOrd
		created = true
	}
	val, err := encodeSpec(ord, sp)
	if err != nil {
		return false, err
	}
	if created {
		b.s.nextOrd++
	}
	if err := b.s.appendRecordLocked(WALOpPut, key, val); err != nil {
		return false, err
	}
	return created, nil
}

// DeleteSpec appends a delete of key (a spec.Key() string) through the
// batch, reporting whether the key was present in the batch's view.
func (b *Batch) DeleteSpec(key string) (bool, error) {
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	_, ok, err := b.s.lookupLocked([]byte(key))
	if err != nil || !ok {
		return false, err
	}
	if err := b.s.appendRecordLocked(WALOpDelete, []byte(key), nil); err != nil {
		return false, err
	}
	return true, nil
}

// ImportSpecs inserts specs in order, first-wins on duplicate keys.
// The whole import runs through the group-commit WAL and flushes at the
// end, so a small corpus lands as one B-tree commit and a large one
// folds every CommitPolicy trip; a failure discards only the unfolded
// tail.
func (s *Store) ImportSpecs(specs []*spec.Spec) (added, skipped int, err error) {
	b := s.Batch()
	added, skipped, err = b.ImportSpecs(specs)
	if err != nil {
		b.Discard()
		return 0, 0, err
	}
	if err := b.Flush(); err != nil {
		return 0, 0, err
	}
	return added, skipped, nil
}

// UpsertSpec inserts or replaces the spec stored under sp.Key() as one
// durable commit. A replaced spec keeps its ordinal, so editing a spec
// in place does not reorder the corpus; a new spec appends at the next
// ordinal.
func (s *Store) UpsertSpec(sp *spec.Spec) (created bool, err error) {
	b := s.Batch()
	created, err = b.UpsertSpec(sp)
	if err != nil {
		b.Discard()
		return false, err
	}
	return created, b.Flush()
}

// DeleteSpec removes the spec stored under key (a spec.Key() string) as
// one durable commit, reporting whether it was present.
func (s *Store) DeleteSpec(key string) (bool, error) {
	b := s.Batch()
	deleted, err := b.DeleteSpec(key)
	if err != nil {
		b.Discard()
		return false, err
	}
	return deleted, b.Flush()
}

// ordSpec pairs a decoded spec with its import ordinal for sorting.
type ordSpec struct {
	ord uint64
	sp  *spec.Spec
}

func sortByOrd(out []ordSpec) []*spec.Spec {
	sort.Slice(out, func(i, j int) bool { return out[i].ord < out[j].ord })
	specs := make([]*spec.Spec, len(out))
	for i, os := range out {
		specs[i] = os.sp
	}
	return specs
}

// Specs returns every spec in import-ordinal order — the exact order a
// flat-file load of the same corpus would produce.
func (sn *Snapshot) Specs() ([]*spec.Spec, error) {
	out := make([]ordSpec, 0, sn.Len())
	err := sn.Iterate(func(_, val []byte) (bool, error) {
		ord, sp, err := decodeSpec(val)
		if err != nil {
			return false, err
		}
		out = append(out, ordSpec{ord, sp})
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return sortByOrd(out), nil
}

// SpecByKey returns the spec stored under a spec.Key() string.
func (sn *Snapshot) SpecByKey(key string) (*spec.Spec, bool, error) {
	val, ok, err := sn.Get([]byte(key))
	if err != nil || !ok {
		return nil, false, err
	}
	_, sp, err := decodeSpec(val)
	if err != nil {
		return nil, false, err
	}
	return sp, true, nil
}

// scopePrefix is the key prefix shared by every spec in one scope.
func scopePrefix(scope string) []byte {
	return []byte(scope + " | ")
}

// scopeScan visits each spec in one scope in key order.
func (sn *Snapshot) scopeScan(scope string, fn func(ord uint64, sp *spec.Spec) error) error {
	prefix := scopePrefix(scope)
	return sn.IterateFrom(prefix, func(key, val []byte) (bool, error) {
		if !bytes.HasPrefix(key, prefix) {
			return false, nil
		}
		ord, sp, err := decodeSpec(val)
		if err != nil {
			return false, err
		}
		return true, fn(ord, sp)
	})
}

// ScopeSpecs returns one scope's specs in ordinal order.
func (sn *Snapshot) ScopeSpecs(scope string) ([]*spec.Spec, error) {
	var out []ordSpec
	err := sn.scopeScan(scope, func(ord uint64, sp *spec.Spec) error {
		out = append(out, ordSpec{ord, sp})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sortByOrd(out), nil
}

// ScopesSpecs gathers the specs of several scopes and sorts them
// globally by ordinal — the subset a shard job resolves from its
// (store snapshot, scope list) reference.
func (sn *Snapshot) ScopesSpecs(scopes []string) ([]*spec.Spec, error) {
	var out []ordSpec
	for _, scope := range scopes {
		err := sn.scopeScan(scope, func(ord uint64, sp *spec.Spec) error {
			out = append(out, ordSpec{ord, sp})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return sortByOrd(out), nil
}

// Query filters specs. Zero-valued fields match everything.
type Query struct {
	Scope       string // exact scope, e.g. "iface:kmalloc"
	Iface       string // interface name (matches scope "iface:NAME")
	API         string // API name (matches scope "api:NAME")
	Origin      string // origin class: P-, P+, PΨ, PΩ
	OriginPatch string // originating patch identifier
	Forbidden   *bool  // quantifier shape: true = ∄ (forbidden), false = ∀ (required)
}

// ParseQuery parses the CLI/HTTP query syntax: comma-separated
// field=value pairs with fields scope, iface, api, origin, patch,
// forbidden (true/false).
func ParseQuery(s string) (Query, error) {
	var q Query
	if strings.TrimSpace(s) == "" {
		return q, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		field, value, ok := strings.Cut(part, "=")
		if !ok {
			return q, fmt.Errorf("query term %q is not field=value", part)
		}
		field = strings.TrimSpace(field)
		value = strings.TrimSpace(value)
		switch field {
		case "scope":
			q.Scope = value
		case "iface":
			q.Iface = value
		case "api":
			q.API = value
		case "origin":
			q.Origin = value
		case "patch":
			q.OriginPatch = value
		case "forbidden":
			switch value {
			case "true":
				t := true
				q.Forbidden = &t
			case "false":
				f := false
				q.Forbidden = &f
			default:
				return q, fmt.Errorf("forbidden must be true or false, got %q", value)
			}
		default:
			return q, fmt.Errorf("unknown query field %q (want scope, iface, api, origin, patch, forbidden)", field)
		}
	}
	return q, nil
}

// Match reports whether one spec satisfies every set filter.
func (q Query) Match(sp *spec.Spec) bool {
	if q.Scope != "" && sp.Scope() != q.Scope {
		return false
	}
	if q.Iface != "" && sp.Iface != q.Iface {
		return false
	}
	if q.API != "" && sp.API != q.API {
		return false
	}
	if q.Origin != "" && string(sp.Origin) != q.Origin {
		return false
	}
	if q.OriginPatch != "" && sp.OriginPatch != q.OriginPatch {
		return false
	}
	if q.Forbidden != nil && sp.Constraint.Forbidden != *q.Forbidden {
		return false
	}
	return true
}

// Query returns the matching specs in ordinal order, using a prefix
// scan when the filter pins a scope and a full scan otherwise.
func (sn *Snapshot) Query(q Query) ([]*spec.Spec, error) {
	scope := q.Scope
	if scope == "" && q.Iface != "" {
		scope = "iface:" + q.Iface
	}
	if scope == "" && q.API != "" {
		scope = "api:" + q.API
	}
	var out []ordSpec
	collect := func(ord uint64, sp *spec.Spec) error {
		if q.Match(sp) {
			out = append(out, ordSpec{ord, sp})
		}
		return nil
	}
	if scope != "" {
		if err := sn.scopeScan(scope, collect); err != nil {
			return nil, err
		}
	} else {
		err := sn.Iterate(func(_, val []byte) (bool, error) {
			ord, sp, err := decodeSpec(val)
			if err != nil {
				return false, err
			}
			return true, collect(ord, sp)
		})
		if err != nil {
			return nil, err
		}
	}
	return sortByOrd(out), nil
}
