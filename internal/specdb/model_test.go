package specdb

// Model-based property test: seeded random operation sequences
// (insert/delete/update/iterate/snapshot/compact/reopen) run against an
// in-memory map model. After every commit the store must agree with the
// model on content, count, and iteration order; held snapshots must
// keep showing the state they were taken at no matter what later
// commits and compactions do; and a close/reopen cycle must reload a
// byte-identical state without rewriting the file.

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// heldSnap pairs a live snapshot with the model state at capture time.
type heldSnap struct {
	snap  *Snapshot
	model map[string]string
}

func copyModel(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// checkAgainstModel asserts a snapshot shows exactly the model state,
// in sorted key order.
func checkAgainstModel(t *testing.T, sn *Snapshot, model map[string]string, label string) {
	t.Helper()
	if sn.Len() != len(model) {
		t.Fatalf("%s: Len = %d, model has %d", label, sn.Len(), len(model))
	}
	want := make([]string, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Strings(want)
	i := 0
	err := sn.Iterate(func(k, v []byte) (bool, error) {
		if i >= len(want) {
			return false, fmt.Errorf("extra key %q", k)
		}
		if string(k) != want[i] {
			return false, fmt.Errorf("key %d: %q, model %q", i, k, want[i])
		}
		if string(v) != model[want[i]] {
			return false, fmt.Errorf("key %q: value %d bytes, model %d bytes", k, len(v), len(model[want[i]]))
		}
		i++
		return true, nil
	})
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if i != len(want) {
		t.Fatalf("%s: iterated %d keys, model has %d", label, i, len(want))
	}
}

func fileHash(t *testing.T, path string) [32]byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(data)
}

func TestModelRandomOps(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runModelSeed(t, seed)
		})
	}
}

func runModelSeed(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	path := filepath.Join(t.TempDir(), "model.db")
	st, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { st.Close() }()

	model := map[string]string{}
	var held []heldSnap

	key := func() string { return fmt.Sprintf("spec/%03d", rng.Intn(120)) }
	value := func() string {
		// Mix of inline, boundary, and multi-page-overflow sizes.
		sizes := []int{0, 1, 17, maxInline - 1, maxInline, maxInline + 1, 2000, ovfChunk + 50}
		n := sizes[rng.Intn(len(sizes))]
		return strings.Repeat(string(rune('a'+rng.Intn(26))), n)
	}

	steps := 60
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 6: // commit a batch of random puts/deletes
			nops := 1 + rng.Intn(6)
			staged := copyModel(model)
			err := st.Update(func(tx *Tx) error {
				for i := 0; i < nops; i++ {
					k := key()
					if rng.Intn(4) == 0 {
						ok, err := tx.Delete([]byte(k))
						if err != nil {
							return err
						}
						if _, inModel := staged[k]; inModel != ok {
							return fmt.Errorf("Delete(%q) = %v, model says %v", k, ok, inModel)
						}
						delete(staged, k)
					} else {
						v := value()
						if err := tx.Put([]byte(k), []byte(v)); err != nil {
							return err
						}
						staged[k] = v
					}
					if tx.Len() != len(staged) {
						return fmt.Errorf("tx.Len = %d, staged model %d", tx.Len(), len(staged))
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			model = staged
		case op < 7: // take and hold a snapshot
			if len(held) < 4 {
				held = append(held, heldSnap{snap: st.Current(), model: copyModel(model)})
			}
		case op < 8: // compact; held snapshots must survive
			if _, err := st.Compact(); err != nil {
				t.Fatalf("step %d compact: %v", step, err)
			}
		default: // close and reopen; file bytes must be untouched
			preHash := fileHash(t, path)
			preSeq := st.Current().Seq()
			if err := st.Close(); err != nil {
				t.Fatalf("step %d close: %v", step, err)
			}
			st, err = Open(path)
			if err != nil {
				t.Fatalf("step %d reopen: %v", step, err)
			}
			if got := fileHash(t, path); got != preHash {
				t.Fatalf("step %d: reopen rewrote the file", step)
			}
			if st.Current().Seq() != preSeq {
				t.Fatalf("step %d: reopen changed seq %d -> %d", step, preSeq, st.Current().Seq())
			}
			held = nil // old snapshots die with the closed store
		}

		checkAgainstModel(t, st.Current(), model, fmt.Sprintf("step %d current", step))
		for i, h := range held {
			checkAgainstModel(t, h.snap, h.model, fmt.Sprintf("step %d held[%d]@seq%d", step, i, h.snap.Seq()))
		}
	}
	if _, err := st.Verify(); err != nil {
		t.Fatal(err)
	}
}
