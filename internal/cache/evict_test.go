package cache

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// entrySize measures the on-disk size of one cache entry with the given
// payload — all Key()-derived keys have equal length, so every entry
// written from the same payload shape is the same size.
func entrySize(t *testing.T, val any) int64 {
	t.Helper()
	c, err := Open(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("probe")
	c.Put(TierInfer, key, val)
	info, err := os.Stat(c.path(TierInfer, key))
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

// backdate pushes an entry's mtime into the past so LRU order is
// deterministic in tests.
func backdate(t *testing.T, c *Cache, tier, key string, age time.Duration) {
	t.Helper()
	old := time.Now().Add(-age)
	if err := os.Chtimes(c.path(tier, key), old, old); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionRemovesOldestFirst(t *testing.T) {
	val := payload{Name: "same-size", Count: 1}
	size := entrySize(t, val)

	// Bound fits two entries but not three: the third Put must evict
	// exactly the least-recently-touched one.
	c, err := OpenLimited(t.TempDir(), false, 2*size+size/2)
	if err != nil {
		t.Fatal(err)
	}
	ka, kb, kc := Key("a"), Key("b"), Key("c")
	c.Put(TierInfer, ka, val)
	c.Put(TierInfer, kb, val)
	backdate(t, c, TierInfer, ka, 2*time.Hour)
	backdate(t, c, TierInfer, kb, time.Hour)
	c.Put(TierInfer, kc, val)

	var out payload
	if c.Get(TierInfer, ka, &out) {
		t.Fatal("oldest entry survived eviction")
	}
	if !c.Get(TierInfer, kb, &out) || !c.Get(TierInfer, kc, &out) {
		t.Fatal("newer entries were evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.EvictedBytes != size {
		t.Fatalf("stats = %+v, want 1 eviction of %d bytes", st, size)
	}
}

func TestEvictionGetRefreshesRecency(t *testing.T) {
	val := payload{Name: "same-size", Count: 1}
	size := entrySize(t, val)

	c, err := OpenLimited(t.TempDir(), false, 2*size+size/2)
	if err != nil {
		t.Fatal(err)
	}
	ka, kb, kc := Key("a"), Key("b"), Key("c")
	c.Put(TierInfer, ka, val)
	c.Put(TierInfer, kb, val)
	backdate(t, c, TierInfer, ka, 2*time.Hour)
	backdate(t, c, TierInfer, kb, time.Hour)

	// Reading a promotes it over b: the next eviction must take b.
	var out payload
	if !c.Get(TierInfer, ka, &out) {
		t.Fatal("warm read missed")
	}
	c.Put(TierInfer, kc, val)

	if !c.Get(TierInfer, ka, &out) {
		t.Fatal("recently-read entry was evicted")
	}
	if c.Get(TierInfer, kb, &out) {
		t.Fatal("stale entry survived eviction")
	}
}

func TestEvictedEntryIsARecomputableMiss(t *testing.T) {
	// The correctness contract: eviction only ever costs a recompute. A
	// bound of one byte evicts everything, yet every read-after-write
	// cycle still round-trips by recomputing and re-storing.
	val := payload{Name: "v", Count: 42}
	c, err := OpenLimited(t.TempDir(), false, 1)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("only")
	c.Put(TierInfer, key, val)
	var out payload
	if c.Get(TierInfer, key, &out) {
		t.Fatal("entry survived a 1-byte bound")
	}
	// The "recompute": a fresh Put of the same product, then a read of
	// whatever state the cache is in — identical answer either way.
	c.Put(TierInfer, key, val)
	st := c.Stats()
	if st.Evictions < 1 {
		t.Fatalf("stats = %+v, want evictions", st)
	}
	if st.Corrupt != 0 {
		t.Fatalf("eviction must degrade to a clean miss, got corrupt=%d", st.Corrupt)
	}
}

func TestUnboundedAndReadOnlyNeverEvict(t *testing.T) {
	val := payload{Name: "v", Count: 1}
	dir := t.TempDir()
	c, err := OpenLimited(dir, false, 0) // 0 = unbounded
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c", "d"} {
		c.Put(TierInfer, Key(k), val)
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Fatalf("unbounded cache evicted: %+v", st)
	}

	// A read-only handle with a tiny bound must not delete anything.
	ro, err := OpenLimited(dir, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	for _, k := range []string{"a", "b", "c", "d"} {
		if !ro.Get(TierInfer, Key(k), &out) {
			t.Fatalf("read-only bounded cache lost entry %q", k)
		}
	}
	if st := ro.Stats(); st.Evictions != 0 {
		t.Fatalf("read-only cache evicted: %+v", st)
	}
	// And the files are genuinely still on disk.
	var files int
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && info != nil && !info.IsDir() && filepath.Ext(path) == ".json" {
			files++
		}
		return nil
	})
	if files != 4 {
		t.Fatalf("entries on disk = %d, want 4", files)
	}
}
