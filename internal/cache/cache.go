// Package cache is the content-addressed, on-disk analysis cache that
// makes warm seal runs approach I/O speed. Products are keyed by a stable
// fingerprint chain — source bytes → parsed-unit hash → (analysis config,
// budget limits, seal schema version) → product — so any input or
// configuration change lands on a different key and stale entries are
// simply never found.
//
// The cache is a performance layer, never a correctness layer: every entry
// carries a checksum and a schema version, and anything that fails
// verification (truncated file, flipped bit, entry written by a different
// seal schema) is silently treated as a miss and recomputed. A nil *Cache
// is the disabled cache: every method is a no-op, so call sites need no
// branching.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync/atomic"
)

// SchemaVersion is baked into every fingerprint and entry envelope. Bump
// it whenever a cached product's shape or the analysis that produces it
// changes incompatibly: old entries become unreachable (different keys)
// and unreadable (version check), both of which degrade to misses.
const SchemaVersion = 1

// subdir is the directory the cache owns under the user-supplied root.
// Keeping our objects one level down makes Clear safe: it removes only
// this subtree, never user files that happen to share the root.
const subdir = "seal-analysis-cache"

// Product tiers. Each tier invalidates independently: its keys hash
// different inputs.
const (
	// TierInfer holds per-patch inference results (specs + stats).
	TierInfer = "infer"
	// TierInferRun holds run-level inference summaries (solver work
	// counters for metric replay), keyed over the whole corpus.
	TierInferRun = "infer-run"
	// TierDetect holds per-target detection results (bug records, unit
	// outcomes, substrate counters), keyed over target + spec DB.
	TierDetect = "detect"
	// TierRegions holds per-target region-closure artifacts (root →
	// callee-closure function names), keyed over the target only, so they
	// survive spec-DB changes.
	TierRegions = "regions"
)

// Stats are the cache's instrumentation counters.
type Stats struct {
	Hits        int64
	Misses      int64
	Writes      int64
	Corrupt     int64 // entries present but failing version/checksum/decode
	ReadBytes   int64
	WriteBytes  int64
	Uncacheable int64 // results not written because they were degraded/partial
}

// Cache is an open handle on one on-disk cache. Safe for concurrent use.
// The nil *Cache is valid and disabled: Get always misses, Put does
// nothing.
type Cache struct {
	root     string // <user dir>/<subdir>/v<SchemaVersion>
	readOnly bool

	hits, misses, writes, corrupt   atomic.Int64
	readBytes, writeBytes, uncached atomic.Int64
}

// Open opens (creating if needed) the cache under dir. readOnly serves
// hits but never writes — for shared or archived caches.
func Open(dir string, readOnly bool) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	root := filepath.Join(dir, subdir, "v"+strconv.Itoa(SchemaVersion))
	if !readOnly {
		if err := os.MkdirAll(root, 0o755); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	return &Cache{root: root, readOnly: readOnly}, nil
}

// Clear removes every object the cache owns under dir (the cache's own
// subtree only — never other files in dir). Missing directories are fine.
func Clear(dir string) error {
	if dir == "" {
		return fmt.Errorf("cache: empty directory")
	}
	return os.RemoveAll(filepath.Join(dir, subdir))
}

// Enabled reports whether the cache is live.
func (c *Cache) Enabled() bool { return c != nil }

// ReadOnly reports whether writes are suppressed.
func (c *Cache) ReadOnly() bool { return c != nil && c.readOnly }

// envelope is the on-disk entry format: the JSON payload plus enough
// self-description to detect corruption, truncation, and version skew.
type envelope struct {
	Version int             `json:"version"`
	Tier    string          `json:"tier"`
	Key     string          `json:"key"`
	Sum     string          `json:"sum"` // sha256 of Payload bytes
	Payload json.RawMessage `json:"payload"`
}

func (c *Cache) path(tier, key string) string {
	// Two-level fanout keeps directories small on big corpora.
	return filepath.Join(c.root, tier, key[:2], key+".json")
}

// Get looks up (tier, key) and decodes the payload into out. It returns
// true only for a verified hit; every failure mode — absent, unreadable,
// version-skewed, checksum mismatch, undecodable — counts as a miss (and,
// when an entry existed but failed verification, as Corrupt).
func (c *Cache) Get(tier, key string, out any) bool {
	if c == nil || len(key) < 3 {
		return false
	}
	data, err := os.ReadFile(c.path(tier, key))
	if err != nil {
		c.misses.Add(1)
		return false
	}
	c.readBytes.Add(int64(len(data)))
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		c.miss(true)
		return false
	}
	if env.Version != SchemaVersion || env.Tier != tier || env.Key != key {
		c.miss(true)
		return false
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.Sum {
		c.miss(true)
		return false
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		c.miss(true)
		return false
	}
	c.hits.Add(1)
	return true
}

func (c *Cache) miss(corrupt bool) {
	c.misses.Add(1)
	if corrupt {
		c.corrupt.Add(1)
	}
}

// Put stores val under (tier, key). Best-effort: encoding or I/O errors
// are swallowed (a cache that cannot write is merely cold), and read-only
// caches never write. The write is atomic (temp file + rename) so a
// concurrent reader sees either the old entry or the complete new one.
func (c *Cache) Put(tier, key string, val any) {
	if c == nil || c.readOnly || len(key) < 3 {
		return
	}
	payload, err := json.Marshal(val)
	if err != nil {
		return
	}
	sum := sha256.Sum256(payload)
	env := envelope{
		Version: SchemaVersion,
		Tier:    tier,
		Key:     key,
		Sum:     hex.EncodeToString(sum[:]),
		Payload: payload,
	}
	data, err := json.Marshal(&env)
	if err != nil {
		return
	}
	path := c.path(tier, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), key+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return
	}
	c.writes.Add(1)
	c.writeBytes.Add(int64(len(data)))
}

// NoteUncacheable records a result that was deliberately not written —
// degraded, quarantined, or otherwise partial. Counted so the poisoning
// guard is observable, not silent.
func (c *Cache) NoteUncacheable() {
	if c != nil {
		c.uncached.Add(1)
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Writes:      c.writes.Load(),
		Corrupt:     c.corrupt.Load(),
		ReadBytes:   c.readBytes.Load(),
		WriteBytes:  c.writeBytes.Load(),
		Uncacheable: c.uncached.Load(),
	}
}

// Key builds a content-addressed key from ordered parts. Each part is
// length-prefixed before hashing so part boundaries cannot alias
// ("ab","c" ≠ "a","bc"), and SchemaVersion is always the first link of
// the chain.
func Key(parts ...string) string {
	h := sha256.New()
	writePart(h, "schema:"+strconv.Itoa(SchemaVersion))
	for _, p := range parts {
		writePart(h, p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// FileSetHash fingerprints a set of named sources (the "parsed-unit hash"
// link of the chain): names are sorted, and each name and body is
// length-prefixed, so the hash is order-independent and unambiguous.
func FileSetHash(files map[string]string) string {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		writePart(h, n)
		writePart(h, files[n])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writePart(h interface{ Write([]byte) (int, error) }, p string) {
	var lenbuf [16]byte
	b := strconv.AppendInt(lenbuf[:0], int64(len(p)), 10)
	h.Write(append(b, ':'))
	h.Write([]byte(p))
}
