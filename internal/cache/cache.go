// Package cache is the content-addressed, on-disk analysis cache that
// makes warm seal runs approach I/O speed. Products are keyed by a stable
// fingerprint chain — source bytes → parsed-unit hash → (analysis config,
// budget limits, seal schema version) → product — so any input or
// configuration change lands on a different key and stale entries are
// simply never found.
//
// The cache is a performance layer, never a correctness layer: every entry
// carries a checksum and a schema version, and anything that fails
// verification (truncated file, flipped bit, entry written by a different
// seal schema) is silently treated as a miss and recomputed. A nil *Cache
// is the disabled cache: every method is a no-op, so call sites need no
// branching.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SchemaVersion is baked into every fingerprint and entry envelope. Bump
// it whenever a cached product's shape or the analysis that produces it
// changes incompatibly: old entries become unreachable (different keys)
// and unreadable (version check), both of which degrade to misses.
const SchemaVersion = 1

// subdir is the directory the cache owns under the user-supplied root.
// Keeping our objects one level down makes Clear safe: it removes only
// this subtree, never user files that happen to share the root.
const subdir = "seal-analysis-cache"

// Product tiers. Each tier invalidates independently: its keys hash
// different inputs.
const (
	// TierInfer holds per-patch inference results (specs + stats).
	TierInfer = "infer"
	// TierInferRun holds run-level inference summaries (solver work
	// counters for metric replay), keyed over the whole corpus.
	TierInferRun = "infer-run"
	// TierDetect holds per-target detection results (bug records, unit
	// outcomes, substrate counters), keyed over target + spec DB.
	TierDetect = "detect"
	// TierRegions holds per-target region-closure artifacts (root →
	// callee-closure function names), keyed over the target only, so they
	// survive spec-DB changes.
	TierRegions = "regions"
	// TierDetectGroup holds per-region-group detection results, keyed over
	// target + the group's own spec subset — editing one spec invalidates
	// exactly the group that owns it, every other group replays.
	TierDetectGroup = "detect-group"
)

// Stats are the cache's instrumentation counters.
type Stats struct {
	Hits        int64
	Misses      int64
	Writes      int64
	Corrupt     int64 // entries present but failing version/checksum/decode
	ReadBytes   int64
	WriteBytes  int64
	Uncacheable int64 // results not written because they were degraded/partial
	// Evictions / EvictedBytes count entries removed by the size bound
	// (OpenLimited). An evicted entry degrades to a miss and a recompute —
	// a cost, never a correctness event.
	Evictions    int64
	EvictedBytes int64
}

// Cache is an open handle on one on-disk cache. Safe for concurrent use.
// The nil *Cache is valid and disabled: Get always misses, Put does
// nothing.
type Cache struct {
	root     string // <user dir>/<subdir>/v<SchemaVersion>
	readOnly bool
	// maxBytes bounds the total size of stored entries; 0 = unbounded.
	// Exceeding it after a write evicts least-recently-used entries (see
	// evict) until the cache fits again.
	maxBytes int64
	evictMu  sync.Mutex

	hits, misses, writes, corrupt   atomic.Int64
	readBytes, writeBytes, uncached atomic.Int64
	evictions, evictedBytes         atomic.Int64
}

// Open opens (creating if needed) the cache under dir. readOnly serves
// hits but never writes — for shared or archived caches.
func Open(dir string, readOnly bool) (*Cache, error) {
	return OpenLimited(dir, readOnly, 0)
}

// OpenLimited is Open with a total-size bound: whenever a write pushes the
// stored entries past maxBytes, least-recently-used entries are evicted
// until the cache fits. Recency is approximated by file modification time
// — every verified hit refreshes its entry's mtime — because access times
// are unreliable across platforms and noatime mounts. maxBytes <= 0 means
// unbounded (plain Open).
func OpenLimited(dir string, readOnly bool, maxBytes int64) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	root := filepath.Join(dir, subdir, "v"+strconv.Itoa(SchemaVersion))
	if !readOnly {
		if err := os.MkdirAll(root, 0o755); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &Cache{root: root, readOnly: readOnly, maxBytes: maxBytes}, nil
}

// Clear removes every object the cache owns under dir (the cache's own
// subtree only — never other files in dir). Missing directories are fine.
func Clear(dir string) error {
	if dir == "" {
		return fmt.Errorf("cache: empty directory")
	}
	return os.RemoveAll(filepath.Join(dir, subdir))
}

// Enabled reports whether the cache is live.
func (c *Cache) Enabled() bool { return c != nil }

// ReadOnly reports whether writes are suppressed.
func (c *Cache) ReadOnly() bool { return c != nil && c.readOnly }

// envelope is the on-disk entry format: the JSON payload plus enough
// self-description to detect corruption, truncation, and version skew.
type envelope struct {
	Version int             `json:"version"`
	Tier    string          `json:"tier"`
	Key     string          `json:"key"`
	Sum     string          `json:"sum"` // sha256 of Payload bytes
	Payload json.RawMessage `json:"payload"`
}

func (c *Cache) path(tier, key string) string {
	// Two-level fanout keeps directories small on big corpora.
	return filepath.Join(c.root, tier, key[:2], key+".json")
}

// Get looks up (tier, key) and decodes the payload into out. It returns
// true only for a verified hit; every failure mode — absent, unreadable,
// version-skewed, checksum mismatch, undecodable — counts as a miss (and,
// when an entry existed but failed verification, as Corrupt).
func (c *Cache) Get(tier, key string, out any) bool {
	if c == nil || len(key) < 3 {
		return false
	}
	data, err := os.ReadFile(c.path(tier, key))
	if err != nil {
		c.misses.Add(1)
		return false
	}
	c.readBytes.Add(int64(len(data)))
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		c.miss(true)
		return false
	}
	if env.Version != SchemaVersion || env.Tier != tier || env.Key != key {
		c.miss(true)
		return false
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.Sum {
		c.miss(true)
		return false
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		c.miss(true)
		return false
	}
	c.hits.Add(1)
	if c.maxBytes > 0 && !c.readOnly {
		// Refresh the entry's mtime so the eviction pass sees it as
		// recently used. Best-effort: a failed touch only skews LRU order.
		now := time.Now()
		_ = os.Chtimes(c.path(tier, key), now, now)
	}
	return true
}

func (c *Cache) miss(corrupt bool) {
	c.misses.Add(1)
	if corrupt {
		c.corrupt.Add(1)
	}
}

// Put stores val under (tier, key). Best-effort: encoding or I/O errors
// are swallowed (a cache that cannot write is merely cold), and read-only
// caches never write. The write is atomic (temp file + rename) so a
// concurrent reader sees either the old entry or the complete new one.
func (c *Cache) Put(tier, key string, val any) {
	if c == nil || c.readOnly || len(key) < 3 {
		return
	}
	payload, err := json.Marshal(val)
	if err != nil {
		return
	}
	sum := sha256.Sum256(payload)
	env := envelope{
		Version: SchemaVersion,
		Tier:    tier,
		Key:     key,
		Sum:     hex.EncodeToString(sum[:]),
		Payload: payload,
	}
	data, err := json.Marshal(&env)
	if err != nil {
		return
	}
	path := c.path(tier, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), key+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return
	}
	c.writes.Add(1)
	c.writeBytes.Add(int64(len(data)))
	c.evict()
}

// evict enforces the size bound after a write: walk every stored entry,
// and while the total exceeds maxBytes remove the least-recently-touched
// entries first (mtime ascending, path as a deterministic tie-break). The
// just-written entry carries the newest mtime, so it is evicted last —
// a fresh write is never sacrificed for stale neighbors. Races with
// concurrent readers are benign: a reader either verified the entry
// before the unlink (hit) or finds it gone (miss → recompute).
func (c *Cache) evict() {
	if c == nil || c.maxBytes <= 0 || c.readOnly {
		return
	}
	c.evictMu.Lock()
	defer c.evictMu.Unlock()
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var entries []entry
	var total int64
	filepath.Walk(c.root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info == nil || info.IsDir() {
			return nil
		}
		if filepath.Ext(path) != ".json" {
			return nil // skip in-flight temp files
		}
		entries = append(entries, entry{path: path, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
		return nil
	})
	if total <= c.maxBytes {
		return
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].path < entries[j].path
	})
	for _, e := range entries {
		if total <= c.maxBytes {
			break
		}
		if err := os.Remove(e.path); err != nil {
			continue
		}
		total -= e.size
		c.evictions.Add(1)
		c.evictedBytes.Add(e.size)
	}
}

// NoteUncacheable records a result that was deliberately not written —
// degraded, quarantined, or otherwise partial. Counted so the poisoning
// guard is observable, not silent.
func (c *Cache) NoteUncacheable() {
	if c != nil {
		c.uncached.Add(1)
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Writes:       c.writes.Load(),
		Corrupt:      c.corrupt.Load(),
		ReadBytes:    c.readBytes.Load(),
		WriteBytes:   c.writeBytes.Load(),
		Uncacheable:  c.uncached.Load(),
		Evictions:    c.evictions.Load(),
		EvictedBytes: c.evictedBytes.Load(),
	}
}

// Key builds a content-addressed key from ordered parts. Each part is
// length-prefixed before hashing so part boundaries cannot alias
// ("ab","c" ≠ "a","bc"), and SchemaVersion is always the first link of
// the chain.
func Key(parts ...string) string {
	h := sha256.New()
	writePart(h, "schema:"+strconv.Itoa(SchemaVersion))
	for _, p := range parts {
		writePart(h, p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// FileSetHash fingerprints a set of named sources (the "parsed-unit hash"
// link of the chain): names are sorted, and each name and body is
// length-prefixed, so the hash is order-independent and unambiguous.
func FileSetHash(files map[string]string) string {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		writePart(h, n)
		writePart(h, files[n])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writePart(h interface{ Write([]byte) (int, error) }, p string) {
	var lenbuf [16]byte
	b := strconv.AppendInt(lenbuf[:0], int64(len(p)), 10)
	h.Write(append(b, ':'))
	h.Write([]byte(p))
}
