package cache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Name  string
	Count int
}

func TestPutGetRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("unit", "config")
	want := payload{Name: "x", Count: 7}
	if got := (payload{}); c.Get(TierInfer, key, &got) {
		t.Fatal("hit before any Put")
	}
	c.Put(TierInfer, key, want)
	var got payload
	if !c.Get(TierInfer, key, &got) {
		t.Fatal("miss after Put")
	}
	if got != want {
		t.Fatalf("got %+v want %+v", got, want)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Corrupt != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.ReadBytes == 0 || st.WriteBytes == 0 {
		t.Fatalf("byte counters not tracked: %+v", st)
	}
}

func TestTiersAreIndependent(t *testing.T) {
	c, _ := Open(t.TempDir(), false)
	key := Key("same")
	c.Put(TierInfer, key, payload{Name: "a"})
	var got payload
	if c.Get(TierDetect, key, &got) {
		t.Fatal("entry leaked across tiers")
	}
}

// entryFile locates the single on-disk entry of a one-entry cache.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	var found string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, ".json") {
			found = path
		}
		return err
	})
	if err != nil || found == "" {
		t.Fatalf("no entry file under %s (err %v)", dir, err)
	}
	return found
}

func TestCorruptEntryIsAMiss(t *testing.T) {
	for name, corrupt := range map[string]func([]byte) []byte{
		"bit-flip": func(b []byte) []byte {
			// Flip a byte inside the payload section.
			mid := len(b) / 2
			out := append([]byte(nil), b...)
			out[mid] ^= 0x40
			return out
		},
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"not-json":  func([]byte) []byte { return []byte("garbage") },
		"version-skew": func(b []byte) []byte {
			var env map[string]any
			if err := json.Unmarshal(b, &env); err != nil {
				panic(err)
			}
			env["version"] = SchemaVersion + 1
			out, _ := json.Marshal(env)
			return out
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c, _ := Open(dir, false)
			key := Key("victim")
			c.Put(TierDetect, key, payload{Name: "ok", Count: 1})
			file := entryFile(t, dir)
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(file, corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			var got payload
			if c.Get(TierDetect, key, &got) {
				t.Fatal("corrupted entry served as a hit")
			}
			if st := c.Stats(); st.Corrupt != 1 {
				t.Fatalf("corruption not counted: %+v", st)
			}
			// Recovery: a rewrite restores the entry.
			c.Put(TierDetect, key, payload{Name: "ok", Count: 1})
			if !c.Get(TierDetect, key, &got) || got.Count != 1 {
				t.Fatal("rewrite after corruption did not recover")
			}
		})
	}
}

func TestReadOnlyNeverWrites(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(dir, false)
	key := Key("shared")
	w.Put(TierInfer, key, payload{Count: 2})

	r, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	if !r.Get(TierInfer, key, &got) || got.Count != 2 {
		t.Fatal("read-only cache should serve existing entries")
	}
	r.Put(TierInfer, Key("new"), payload{})
	if got := (payload{}); r.Get(TierInfer, Key("new"), &got) {
		t.Fatal("read-only cache wrote an entry")
	}
	if st := r.Stats(); st.Writes != 0 {
		t.Fatalf("read-only cache counted writes: %+v", st)
	}
}

func TestClearRemovesOnlyOwnSubtree(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir, false)
	c.Put(TierInfer, Key("k"), payload{})
	bystander := filepath.Join(dir, "user-file.txt")
	if err := os.WriteFile(bystander, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Clear(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(bystander); err != nil {
		t.Fatal("Clear removed a file outside the cache subtree")
	}
	c2, _ := Open(dir, false)
	var got payload
	if c2.Get(TierInfer, Key("k"), &got) {
		t.Fatal("entry survived Clear")
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	if c.Enabled() || c.ReadOnly() {
		t.Fatal("nil cache claims to be live")
	}
	c.Put(TierInfer, Key("k"), payload{})
	var got payload
	if c.Get(TierInfer, Key("k"), &got) {
		t.Fatal("nil cache hit")
	}
	c.NoteUncacheable()
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats %+v", st)
	}
}

func TestKeySeparatesParts(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Fatal("part boundaries alias")
	}
	if Key("x") != Key("x") {
		t.Fatal("key not deterministic")
	}
	if FileSetHash(map[string]string{"a": "1", "b": "2"}) != FileSetHash(map[string]string{"b": "2", "a": "1"}) {
		t.Fatal("file-set hash depends on map order")
	}
	if FileSetHash(map[string]string{"a": "1"}) == FileSetHash(map[string]string{"a": "2"}) {
		t.Fatal("file-set hash ignores content")
	}
}
