package report

import (
	"strings"
	"testing"

	"seal/internal/cir"
	"seal/internal/detect"
	"seal/internal/infer"
	"seal/internal/ir"
	"seal/internal/patch"
)

func fig3Bugs(t *testing.T) ([]*detect.Bug, map[string]*patch.Patch) {
	t.Helper()
	p := &patch.Patch{
		ID:          "fig3",
		Description: "media: cx23885: fix wrong error code",
		Pre:         map[string]string{"cx.c": cir.Fig3PreSource},
		Post:        map[string]string{"cx.c": cir.Fig3Source},
	}
	a, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	specs := detect.ValidateSpecs(a.PostProg, infer.InferPatch(a).Specs)

	target := `
struct cx23885_riscmem { int *cpu; int size; };
struct vb2_buffer { struct cx23885_riscmem risc; int state; };
struct vb2_ops { int (*buf_prepare)(struct vb2_buffer *vb); };
int *dma_alloc_coherent(int size);
int tw68_risc_alloc(struct cx23885_riscmem *risc) {
	risc->cpu = dma_alloc_coherent(risc->size);
	if (risc->cpu == NULL)
		return -ENOMEM;
	return 0;
}
int tw68_buf_prepare(struct vb2_buffer *vb) {
	tw68_risc_alloc(&vb->risc);
	return 0;
}
struct vb2_ops tw68_qops = { .buf_prepare = tw68_buf_prepare, };
`
	f, err := cir.ParseFile("tw68.c", target)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.NewProgram(f)
	if err != nil {
		t.Fatal(err)
	}
	bugs := detect.New(prog).Detect(specs)
	if len(bugs) == 0 {
		t.Fatal("no bugs to report")
	}
	return bugs, map[string]*patch.Patch{p.ID: p}
}

func TestRenderContainsIngredients(t *testing.T) {
	bugs, patches := fig3Bugs(t)
	out := Render(bugs[0], patches)
	// The paper §7 bug-report ingredients: location, spec, origin patch.
	for _, want := range []string{
		"tw68_buf_prepare",
		"tw68.c",
		"Spec",
		"fig3",
		"Original patch",
		"fix wrong error code",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRenderWithoutPatchIndex(t *testing.T) {
	bugs, _ := fig3Bugs(t)
	out := Render(bugs[0], nil)
	if strings.Contains(out, "Original patch") {
		t.Error("report should omit the patch section when no index is given")
	}
}

func TestSummarize(t *testing.T) {
	bugs, _ := fig3Bugs(t)
	sum := Summarize(bugs)
	if sum.Total != len(bugs) {
		t.Errorf("total = %d, want %d", sum.Total, len(bugs))
	}
	n := 0
	for _, c := range sum.ByKind {
		n += c
	}
	if n != sum.Total {
		t.Errorf("kind histogram sums to %d, want %d", n, sum.Total)
	}
	if len(sum.KindsSorted()) != len(sum.ByKind) {
		t.Error("KindsSorted size mismatch")
	}
}

func TestRenderAllIncludesSummary(t *testing.T) {
	bugs, patches := fig3Bugs(t)
	out := RenderAll(bugs, patches)
	if !strings.Contains(out, "reports by type") {
		t.Errorf("missing summary:\n%s", out)
	}
}
