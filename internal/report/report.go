// Package report renders user-friendly bug reports (paper §7 "Bug
// Report"): the buggy value-flow path with line numbers attached, the
// inferred specification, and the originating patch — the ingredients that
// let maintainers confirm and fix bugs quickly (paper §8.1: 27 patches
// answered within one day).
package report

import (
	"fmt"
	"sort"
	"strings"

	"seal/internal/budget"
	"seal/internal/detect"
	"seal/internal/patch"
	"seal/internal/spec"
)

// Render formats one bug report. patches indexes the originating patches
// by ID (may be nil).
func Render(b *detect.Bug, patches map[string]*patch.Patch) string {
	return RenderRec(detect.Record(b), patches)
}

// RenderRec formats one bug report from its serializable record. This is
// the single render path: live bugs are flattened through detect.Record
// first, and cache-replayed bugs arrive as records already, so a warm run
// reproduces a cold run's report byte for byte by construction.
func RenderRec(b detect.BugRec, patches map[string]*patch.Patch) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s in %s ===\n", b.Kind, b.Fn)
	fmt.Fprintf(&sb, "Location : %s\n", b.File)
	fmt.Fprintf(&sb, "Summary  : %s\n", b.Message)
	fmt.Fprintf(&sb, "Spec     : %s\n", b.SpecConstraint)
	if b.SpecCond != "" {
		fmt.Fprintf(&sb, "Condition: %s\n", b.SpecCond)
	}
	fmt.Fprintf(&sb, "Scope    : %s (inferred from patch %s, origin %s)\n",
		b.SpecScope, b.SpecOriginPatch, b.SpecOrigin)
	if b.Trace != "" {
		sb.WriteString("Buggy value-flow path:\n")
		indent(&sb, b.Trace)
		if b.TraceTruncated {
			sb.WriteString("Note     : path enumeration truncated by a budget — the path set may be incomplete\n")
		}
	}
	if b.Trace2 != "" {
		sb.WriteString("Conflicting use (ordered before the path above):\n")
		indent(&sb, b.Trace2)
		if b.Trace2Truncated {
			sb.WriteString("Note     : conflicting-use enumeration truncated by a budget — the path set may be incomplete\n")
		}
	}
	if patches != nil {
		if p, ok := patches[b.SpecOriginPatch]; ok {
			fmt.Fprintf(&sb, "Original patch: %s — %s\n", p.ID, p.Description)
		}
	}
	return sb.String()
}

func indent(sb *strings.Builder, s string) {
	for _, line := range strings.Split(s, "\n") {
		sb.WriteString("  ")
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
}

// Summary aggregates a report list by bug kind, mirroring Table 2's rows.
type Summary struct {
	Total   int
	ByKind  map[string]int
	ByScope map[string]int
}

// Summarize builds kind/scope histograms over the reports.
func Summarize(bugs []*detect.Bug) Summary {
	return SummarizeRecs(detect.Records(bugs))
}

// SummarizeRecs is Summarize over serializable records.
func SummarizeRecs(recs []detect.BugRec) Summary {
	s := Summary{
		Total:   len(recs),
		ByKind:  make(map[string]int),
		ByScope: make(map[string]int),
	}
	for _, b := range recs {
		s.ByKind[b.Kind]++
		s.ByScope[b.SpecScope]++
	}
	return s
}

// KindsSorted returns the kinds by descending count.
func (s Summary) KindsSorted() []string {
	kinds := make([]string, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool {
		if s.ByKind[kinds[i]] != s.ByKind[kinds[j]] {
			return s.ByKind[kinds[i]] > s.ByKind[kinds[j]]
		}
		return kinds[i] < kinds[j]
	})
	return kinds
}

// RenderRobustness renders the degradation and quarantine notes of a
// budgeted run as a stable, sorted section. Reports that survive a
// degraded run are sound but possibly incomplete; this section is what
// tells a maintainer which scopes to re-run with a larger budget. Empty
// input renders nothing.
func RenderRobustness(degs []budget.Degradation, failures []*budget.FailureRecord) string {
	if len(degs) == 0 && len(failures) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("--- robustness notes ---\n")
	lines := make([]string, 0, len(degs))
	for _, d := range degs {
		lines = append(lines, fmt.Sprintf("degraded    %-30s %s (%s)", d.Unit, d.Reason, d.Detail))
	}
	sort.Strings(lines)
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	lines = lines[:0]
	for _, f := range failures {
		lines = append(lines, fmt.Sprintf("quarantined %-30s %s (stage %s, attempts %d)", f.Unit, f.Reason, f.Stage, f.Attempts))
	}
	sort.Strings(lines)
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderAll renders every report plus the summary table.
func RenderAll(bugs []*detect.Bug, patches map[string]*patch.Patch) string {
	return RenderAllRecs(detect.Records(bugs), patches)
}

// RenderAllRecs is RenderAll over serializable records — the entry point
// the CLI uses for both live and cache-replayed results.
func RenderAllRecs(recs []detect.BugRec, patches map[string]*patch.Patch) string {
	var sb strings.Builder
	for _, b := range recs {
		sb.WriteString(RenderRec(b, patches))
		sb.WriteByte('\n')
	}
	sum := SummarizeRecs(recs)
	fmt.Fprintf(&sb, "---\n%d reports by type:\n", sum.Total)
	for _, k := range sum.KindsSorted() {
		fmt.Fprintf(&sb, "  %-10s %4d (%5.1f%%)\n", k, sum.ByKind[k],
			100*float64(sum.ByKind[k])/float64(max(1, sum.Total)))
	}
	return sb.String()
}

// RenderDetectStdout is the detect command's complete stdout payload —
// full reports plus the robustness appendix with -report, one summary line
// per bug otherwise. The serve daemon embeds the same string in its
// /detect responses, so batch stdout and daemon report fields diff clean.
func RenderDetectStdout(recs []detect.BugRec, degs []budget.Degradation, failures []*budget.FailureRecord, nSpecs int, full bool) string {
	if full {
		return RenderAllRecs(recs, map[string]*patch.Patch{}) + RenderRobustness(degs, failures)
	}
	var sb strings.Builder
	for _, b := range recs {
		sb.WriteString(b.String())
		sb.WriteByte('\n')
	}
	sum := SummarizeRecs(recs)
	fmt.Fprintf(&sb, "---\n%d reports over %d specs\n", sum.Total, nSpecs)
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var _ = spec.RelReach
