package report

// Golden-file tests for the annotation-bearing report surfaces: truncation
// notes on budget-cut paths and the robustness section of a degraded run.
// Regenerate after an intentional formatting change with
//
//	go test ./internal/report -run TestGolden -update

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seal/internal/budget"
	"seal/internal/cir"
	"seal/internal/detect"
	"seal/internal/infer"
	"seal/internal/ir"
	"seal/internal/kernelgen"
	"seal/internal/spec"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s output differs from %s.\ngot:\n%s\nwant:\n%s", name, path, got, string(want))
	}
}

// tracedBug detects over the generated mini-Linux corpus and returns the
// first bug carrying a witness path (the fig3 corpus only produces
// Required-spec violations, which have none). Generation is seeded, so the
// pick is deterministic.
func tracedBug(t *testing.T) *detect.Bug {
	t.Helper()
	corpus := kernelgen.Generate(kernelgen.DefaultConfig())
	var specs []*spec.Spec
	for _, p := range corpus.Patches {
		a, err := p.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, detect.ValidateSpecs(a.PostProg, infer.InferPatch(a).Specs)...)
	}
	var files []*cir.File
	for _, name := range corpus.SortedFileNames() {
		f, err := cir.ParseFile(name, corpus.Files[name])
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	prog, err := ir.NewProgram(files...)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range detect.New(prog).Detect(specs) {
		if b.Trace != nil {
			return b
		}
	}
	t.Fatal("generated corpus produced no bug with a witness path")
	return nil
}

// TestGoldenTruncatedAnnotation pins how a budget-truncated witness path is
// annotated: the incompleteness note must appear for each truncated trace
// and disappear when the flag is clear.
func TestGoldenTruncatedAnnotation(t *testing.T) {
	b := tracedBug(t)

	plain := Render(b, nil)
	if strings.Contains(plain, "truncated") {
		t.Fatalf("untruncated report carries a truncation note:\n%s", plain)
	}

	b.Trace.Truncated = true
	defer func() { b.Trace.Truncated = false }()
	annotated := Render(b, nil)
	if !strings.Contains(annotated, "path enumeration truncated by a budget") {
		t.Fatalf("truncated trace not annotated:\n%s", annotated)
	}
	checkGolden(t, "truncated_report", annotated)
}

// TestGoldenRobustnessSection pins the degraded/quarantined section a
// budgeted run appends to its report.
func TestGoldenRobustnessSection(t *testing.T) {
	degs := []budget.Degradation{
		{Unit: "iface:vb2_ops.buf_prepare", Stage: "detect", Reason: budget.ReasonSteps, Detail: "step budget exhausted after 500 of 500"},
		{Unit: "api:dma_alloc_coherent", Stage: "detect", Reason: budget.ReasonMemory, Detail: "memory budget exhausted"},
	}
	failures := []*budget.FailureRecord{
		{Unit: "iface:cx88_ops.tune", Stage: "detect", Reason: budget.ReasonPanic, Detail: "nil deref", Attempts: 2},
		{Unit: "api:kfree", Stage: "detect", Reason: budget.ReasonDeadline, Attempts: 1},
	}
	out := RenderRobustness(degs, failures)
	for _, want := range []string{
		"robustness notes",
		"degraded    api:dma_alloc_coherent",
		"degraded    iface:vb2_ops.buf_prepare",
		"quarantined api:kfree",
		"quarantined iface:cx88_ops.tune",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("robustness section missing %q:\n%s", want, out)
		}
	}
	checkGolden(t, "robustness", out)

	if RenderRobustness(nil, nil) != "" {
		t.Error("empty robustness input must render nothing")
	}
}
