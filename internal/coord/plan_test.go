package coord

import (
	"testing"

	"seal/internal/spec"
)

// planSpecs builds a spec list spanning several scopes, with scopes
// interleaved so grouping order and assignment are both exercised.
func planSpecs() []*spec.Spec {
	var out []*spec.Spec
	apis := []string{"alloc_a", "alloc_b", "alloc_c", "alloc_d", "alloc_e"}
	for round := 0; round < 3; round++ {
		for _, api := range apis {
			out = append(out, &spec.Spec{ID: api + "-spec", API: api})
		}
	}
	return out
}

func TestShardOfDeterministicAndInRange(t *testing.T) {
	scopes := []string{"api:alloc_a", "api:alloc_b", "iface:ops.prep", ""}
	for _, scope := range scopes {
		for _, shards := range []int{1, 2, 3, 4, 7, 16} {
			got := ShardOf(scope, shards)
			if got < 0 || got >= shards {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", scope, shards, got)
			}
			if again := ShardOf(scope, shards); again != got {
				t.Fatalf("ShardOf(%q, %d) not deterministic: %d then %d", scope, shards, got, again)
			}
		}
		if got := ShardOf(scope, 0); got != 0 {
			t.Fatalf("ShardOf(%q, 0) = %d, want 0", scope, got)
		}
		if got := ShardOf(scope, 1); got != 0 {
			t.Fatalf("ShardOf(%q, 1) = %d, want 0", scope, got)
		}
	}
}

func TestPlanShardsPartitionsEverySpecExactlyOnce(t *testing.T) {
	specs := planSpecs()
	for _, shards := range []int{1, 2, 3, 4, 8} {
		plan := PlanShards(specs, shards)
		if plan.Shards != shards || len(plan.Jobs) != shards {
			t.Fatalf("shards=%d: plan has %d shards, %d jobs", shards, plan.Shards, len(plan.Jobs))
		}
		seen := make(map[int]int)
		for si, job := range plan.Jobs {
			if job.Shard != si {
				t.Fatalf("job %d claims shard %d", si, job.Shard)
			}
			for k := 1; k < len(job.SpecIdx); k++ {
				if job.SpecIdx[k-1] >= job.SpecIdx[k] {
					t.Fatalf("shard %d spec indices not strictly ascending: %v", si, job.SpecIdx)
				}
			}
			for _, idx := range job.SpecIdx {
				seen[idx]++
			}
		}
		for i := range specs {
			if seen[i] != 1 {
				t.Fatalf("shards=%d: spec %d assigned %d times", shards, i, seen[i])
			}
		}
		// Groups are whole: every spec of one scope lands on one shard.
		for gi, group := range plan.Groups {
			want := plan.Assign[gi]
			if want != ShardOf(plan.Scopes[gi], shards) {
				t.Fatalf("group %d assigned to %d, ShardOf says %d", gi, want, ShardOf(plan.Scopes[gi], shards))
			}
			for _, idx := range group {
				if specs[idx].Scope() != plan.Scopes[gi] {
					t.Fatalf("group %d holds spec %d of scope %q, want %q",
						gi, idx, specs[idx].Scope(), plan.Scopes[gi])
				}
			}
		}
	}
}

func TestPlanShardsStableAcrossCalls(t *testing.T) {
	specs := planSpecs()
	a, b := PlanShards(specs, 4), PlanShards(specs, 4)
	for si := range a.Jobs {
		if len(a.Jobs[si].SpecIdx) != len(b.Jobs[si].SpecIdx) {
			t.Fatalf("shard %d sizes differ across calls", si)
		}
		for k := range a.Jobs[si].SpecIdx {
			if a.Jobs[si].SpecIdx[k] != b.Jobs[si].SpecIdx[k] {
				t.Fatalf("shard %d assignment differs across calls", si)
			}
		}
	}
}
