package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"seal/internal/budget"
	"seal/internal/detect"
	"seal/internal/obs"
	"seal/internal/spec"
)

// Options configures one coordinated detection.
type Options struct {
	// Addrs are the worker base URLs ("http://host:port"), one per shard;
	// the shard count is len(Addrs).
	Addrs []string
	// Client is the HTTP client for dispatch (nil = http.DefaultClient).
	Client *http.Client
	// Timeout bounds one shard dispatch attempt, inclusive of the
	// worker's whole run (0 = only the run context bounds it). An attempt
	// that hangs past it fails; whether the shard is then lost depends on
	// the retry policy.
	Timeout time.Duration
	// Workers is each worker's in-process detection parallelism.
	Workers int
	// Limits is the per-unit budget. MaxFailures is enforced globally by
	// the coordinator over the merged failure list (shards receive it
	// zeroed); Retry maps to the legacy 2-attempt policy when no explicit
	// RetryPolicy is set.
	Limits budget.Limits
	// Retry is the dispatch retry policy (zero = derived from
	// Limits.Retry: 2 attempts with no backoff, or a single attempt).
	Retry RetryPolicy
	// Probe enables worker health probing: a readiness gate before every
	// dispatch attempt and liveness probing of in-flight shards (zero =
	// disabled; failures are then detected only at dispatch/deadline).
	Probe ProbeOptions
	// ReshardOnLoss re-partitions a lost shard's region groups across
	// surviving workers instead of quarantining them. Opt-in: it trades
	// the exactly-its-shard isolation invariant for completeness. The
	// recovered output is byte-identical to a single-process run.
	ReshardOnLoss bool
	// Obs, when non-nil, receives one replayed unit span per region group
	// — executed, recovered, or lost — so the merged manifest matches a
	// single-process run's after redaction.
	Obs *obs.Recorder
	// SpecStore, when non-nil, names the shared paged spec store (path +
	// committed snapshot sequence) the corpus was loaded from. Jobs then
	// reference their subset by scope list against that snapshot instead of
	// shipping the specs inline; Scopes and SpecsHash are filled per job.
	SpecStore *SpecStoreRef
}

// shardOutcome is one dispatch's verdict: the result or the loss, plus
// the full per-attempt provenance.
type shardOutcome struct {
	res      *ShardResult
	err      error // non-nil ⇒ shard lost (res nil)
	attempts int
	wall     time.Duration
	log      []obs.ShardAttempt
}

// recovExec is one re-shard-on-loss recovery job: a lost shard's group
// subset re-dispatched to a surviving worker.
type recovExec struct {
	origin  int   // the lost shard whose groups this job recovers
	target  int   // the surviving shard slot executing them
	groups  []int // global group indices, ascending
	specIdx []int // global spec indices, ascending
	oc      shardOutcome
}

// Detect partitions specs over opts.Addrs, dispatches every non-empty
// shard concurrently, and merges the results into the *detect.Result a
// single-process run would produce (Bugs stays nil — rendering goes
// through Recs, exactly like a cache replay). The returned ShardManifest
// slice describes each shard's span for the run manifest, including the
// full attempt log and any recovery provenance.
//
// A lost shard (crash, hang, unreachable, probe-declared dead, target
// mismatch) quarantines exactly its region groups — one FailureRecord per
// group with budget.ReasonShardLost — unless ReshardOnLoss is set, in
// which case its groups are re-partitioned across surviving workers and
// only groups whose recovery also fails quarantine. The returned error is
// non-nil only for run-level aborts (context canceled, or the merged
// failure count exceeding Limits.MaxFailures) — the partial Result is
// valid either way.
func Detect(ctx context.Context, targetHash string, specs []*spec.Spec, opts Options) (*detect.Result, []obs.ShardManifest, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	plan := PlanShards(specs, len(opts.Addrs))
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	policy := opts.Retry.withDefaults(opts.Limits.Retry)

	shardLimits := opts.Limits
	shardLimits.MaxFailures = 0 // global threshold, enforced below

	outcomes := make([]shardOutcome, plan.Shards)
	done := make(chan int)
	for si := range plan.Jobs {
		if len(plan.Jobs[si].Groups) == 0 {
			outcomes[si] = shardOutcome{res: &ShardResult{Shard: si}, attempts: 0}
			continue
		}
		go func(si int) {
			outcomes[si] = dispatch(ctx, client, opts.Addrs[si], buildJob(plan, si, targetHash, specs, opts, shardLimits), policy, opts.Probe, opts.Timeout)
			done <- si
		}(si)
	}
	for si := range plan.Jobs {
		if len(plan.Jobs[si].Groups) > 0 {
			<-done
		}
	}

	var recovs []recovExec
	if opts.ReshardOnLoss {
		recovs = reshardLost(ctx, client, plan, specs, targetHash, opts, policy, shardLimits, outcomes)
	}

	res, shards := merge(plan, specs, opts, outcomes, recovs)
	if opts.Limits.MaxFailures > 0 && len(res.Failures) > opts.Limits.MaxFailures {
		return res, shards, fmt.Errorf("detect: aborted after %d quarantined units (max %d)",
			len(res.Failures), opts.Limits.MaxFailures)
	}
	if err := ctx.Err(); err != nil {
		return res, shards, err
	}
	return res, shards, nil
}

// buildJob assembles shard si's wire job from the plan.
func buildJob(plan *Plan, si int, targetHash string, specs []*spec.Spec, opts Options, limits budget.Limits) *ShardJob {
	return subsetJob(si, plan.Shards, targetHash, specs, plan.Jobs[si].SpecIdx, opts.Workers, limits, opts.SpecStore)
}

// subsetJob builds a wire job over an arbitrary ascending spec-index
// subset — the shared core of primary and recovery dispatch. With a store
// reference, the subset travels as (snapshot, scope list, content hash)
// and the inline specs are omitted; a subset that cannot be fingerprinted
// falls back to the inline form.
func subsetJob(shard, shards int, targetHash string, specs []*spec.Spec, specIdx []int, workers int, limits budget.Limits, store *SpecStoreRef) *ShardJob {
	subset := make([]*spec.Spec, len(specIdx))
	for k, gi := range specIdx {
		subset[k] = specs[gi]
	}
	job := &ShardJob{
		Shard:      shard,
		Shards:     shards,
		TargetHash: targetHash,
		Specs:      &spec.DB{Specs: subset},
		Workers:    workers,
		Limits:     limits,
	}
	if store != nil {
		if hash, err := (&spec.DB{Specs: subset}).Hash(); err == nil {
			seen := make(map[string]bool)
			var scopes []string // first-appearance order = global group order
			for _, sp := range subset {
				if sc := sp.Scope(); !seen[sc] {
					seen[sc] = true
					scopes = append(scopes, sc)
				}
			}
			job.Specs = nil
			job.SpecStore = &SpecStoreRef{
				Path:      store.Path,
				Seq:       store.Seq,
				Scopes:    scopes,
				SpecsHash: hash,
			}
		}
	}
	return job
}

// dispatch runs the full retry loop for one shard job: up to
// policy.MaxAttempts tries separated by deterministic capped backoff,
// each attempt readiness-gated and liveness-probed when probing is
// enabled. Every attempt — its backoff, probe verdict, failure reason,
// and wall clock — is recorded in the outcome's log. Retries never sleep
// past the run deadline: when the next backoff cannot complete before
// ctx's deadline, the loop stops with the retry budget exhausted.
func dispatch(ctx context.Context, client *http.Client, addr string, job *ShardJob, policy RetryPolicy, probe ProbeOptions, timeout time.Duration) shardOutcome {
	start := time.Now()
	// Encode the job once, concurrently with the first readiness probe —
	// the gate's round trip hides under the marshal, so a healthy fleet
	// pays (almost) nothing for being watched.
	var body []byte
	var bodyErr error
	bodyDone := make(chan struct{})
	go func() {
		defer close(bodyDone)
		body, bodyErr = json.Marshal(job)
	}()
	var log []obs.ShardAttempt
	var lastErr error
	attempts := 0
	for attempt := 1; attempt <= policy.MaxAttempts; attempt++ {
		var backoff time.Duration
		if attempt > 1 {
			backoff = policy.Delay(job.Shard, attempt)
			if !sleepBudgeted(ctx, backoff) {
				lastErr = fmt.Errorf("retry budget exhausted before attempt %d (backoff %s vs run deadline): %w",
					attempt, backoff, lastErr)
				break
			}
		}
		at := obs.ShardAttempt{Attempt: attempt, Addr: addr, BackoffMS: float64(backoff.Nanoseconds()) / 1e6}
		astart := time.Now()
		attempts = attempt

		if probe.enabled() {
			if err := checkReady(ctx, client, addr, probe); err != nil {
				at.Outcome, at.Error, at.Probe = "failed", err.Error(), "not-ready"
				at.WallMS = float64(time.Since(astart).Nanoseconds()) / 1e6
				log = append(log, at)
				lastErr = err
				if ctx.Err() != nil {
					break
				}
				continue
			}
			at.Probe = "ready"
		}

		<-bodyDone
		if bodyErr != nil {
			return shardOutcome{err: fmt.Errorf("encode job: %w", bodyErr), attempts: attempt, wall: time.Since(start), log: log}
		}
		res, verdict, err := postProbed(ctx, client, addr, body, job.Shard, timeout, probe)
		at.WallMS = float64(time.Since(astart).Nanoseconds()) / 1e6
		if verdict != "" {
			at.Probe = verdict
		}
		if err == nil {
			at.Outcome = "ok"
			log = append(log, at)
			return shardOutcome{res: res, attempts: attempt, wall: time.Since(start), log: log}
		}
		at.Outcome, at.Error = "failed", err.Error()
		log = append(log, at)
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return shardOutcome{err: lastErr, attempts: attempts, wall: time.Since(start), log: log}
}

// postProbed performs one dispatch attempt with an optional liveness
// prober running alongside it. When the prober declares the worker dead
// it cancels the attempt; the returned verdict string carries the probe
// diagnosis so provenance can distinguish "worker hung mid-response,
// probes failed" from "request timed out against a live worker".
func postProbed(ctx context.Context, client *http.Client, addr string, body []byte, shard int, timeout time.Duration, probe ProbeOptions) (*ShardResult, string, error) {
	actx := ctx
	var cancel context.CancelFunc
	if timeout > 0 {
		actx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		actx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	var verdict atomic.Pointer[string]
	probeDone := make(chan struct{})
	if probe.enabled() {
		go func() {
			defer close(probeDone)
			probeLiveness(actx, client, addr, probe, &verdict, cancel)
		}()
	} else {
		close(probeDone)
	}

	res, err := post(actx, client, addr, body, shard)
	cancel()
	<-probeDone // the prober never outlives its attempt

	v := ""
	if p := verdict.Load(); p != nil {
		v = *p
		if err != nil {
			err = fmt.Errorf("%s (request error: %v)", v, err)
		}
	}
	return res, v, err
}

// post performs one dispatch request/response cycle against a
// pre-encoded job body. Any failure mode — connect error, cancellation,
// non-200, undecodable or mismatched response — fails the attempt.
func post(ctx context.Context, client *http.Client, addr string, body []byte, shard int) (*ShardResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, errSnippet(data))
	}
	var sr ShardResult
	if err := json.Unmarshal(data, &sr); err != nil {
		return nil, fmt.Errorf("decode result: %w", err)
	}
	if sr.Shard != shard {
		return nil, fmt.Errorf("shard mismatch: sent %d, got %d", shard, sr.Shard)
	}
	return &sr, nil
}

// errSnippet extracts the structured error message from a worker's JSON
// error envelope, falling back to a truncated raw body.
func errSnippet(data []byte) string {
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
		return env.Error.Code + ": " + env.Error.Message
	}
	s := string(data)
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// reshardLost builds and dispatches the recovery wave: every lost shard's
// region groups are re-partitioned across the surviving workers with the
// same ordinal machinery the primary plan uses (ShardOf over the group
// scope, reduced over the survivor list), so the assignment is a pure
// function of (plan, survivor set). Groups move whole, spec subsets keep
// global relative order, and the coordinator translates job-local
// ordinals back through each recovery job's own index — which is what
// keeps the merged output byte-identical to a single-process run.
func reshardLost(ctx context.Context, client *http.Client, plan *Plan, specs []*spec.Spec, targetHash string, opts Options, policy RetryPolicy, shardLimits budget.Limits, outcomes []shardOutcome) []recovExec {
	anyLost := false
	for si := range plan.Jobs {
		if outcomes[si].err != nil && len(plan.Jobs[si].Groups) > 0 {
			anyLost = true
			break
		}
	}
	if !anyLost {
		return nil // the steady state: recovery costs nothing when nothing burned
	}
	survivors := survivorSlots(ctx, client, plan, opts, outcomes)
	if len(survivors) == 0 {
		return nil
	}
	var execs []recovExec
	for si := range plan.Jobs {
		if outcomes[si].err == nil || len(plan.Jobs[si].Groups) == 0 {
			continue
		}
		// Partition this lost shard's groups over the survivors,
		// deterministically, one recovery job per (lost shard, survivor).
		byTarget := make(map[int][]int)
		for _, gi := range plan.Jobs[si].Groups {
			t := survivors[ShardOf(plan.Scopes[gi], len(survivors))]
			byTarget[t] = append(byTarget[t], gi)
		}
		targets := make([]int, 0, len(byTarget))
		for t := range byTarget {
			targets = append(targets, t)
		}
		sort.Ints(targets)
		for _, t := range targets {
			groups := byTarget[t]
			var specIdx []int
			for _, gi := range groups {
				specIdx = append(specIdx, plan.Groups[gi]...)
			}
			sort.Ints(specIdx)
			execs = append(execs, recovExec{origin: si, target: t, groups: groups, specIdx: specIdx})
		}
	}
	if len(execs) == 0 {
		return nil
	}
	done := make(chan struct{})
	for i := range execs {
		go func(e *recovExec) {
			job := subsetJob(e.target, plan.Shards, targetHash, specs, e.specIdx, opts.Workers, shardLimits, opts.SpecStore)
			e.oc = dispatch(ctx, client, opts.Addrs[e.target], job, policy, opts.Probe, opts.Timeout)
			done <- struct{}{}
		}(&execs[i])
	}
	for range execs {
		<-done
	}
	return execs
}

// survivorSlots lists the shard slots eligible to absorb recovered work,
// ascending: every shard whose dispatch succeeded, plus shards that owned
// no groups — verified by a readiness probe when probing is enabled,
// assumed live otherwise (a wrong assumption costs one failed recovery
// dispatch, after which the groups quarantine exactly as without
// resharding).
func survivorSlots(ctx context.Context, client *http.Client, plan *Plan, opts Options, outcomes []shardOutcome) []int {
	var out []int
	for si := range plan.Jobs {
		if si >= len(opts.Addrs) {
			break
		}
		if len(plan.Jobs[si].Groups) == 0 {
			if opts.Probe.enabled() && checkReady(ctx, client, opts.Addrs[si], opts.Probe) != nil {
				continue
			}
			out = append(out, si)
			continue
		}
		if outcomes[si].err == nil {
			out = append(out, si)
		}
	}
	return out
}

// merge folds every shard outcome — primary and recovery — into one
// Result, deterministically: identical inputs and identical per-shard
// outcomes produce byte-identical output regardless of dispatch
// completion order.
func merge(plan *Plan, specs []*spec.Spec, opts Options, outcomes []shardOutcome, recovs []recovExec) (*detect.Result, []obs.ShardManifest) {
	opts.Obs.SetUnitsTotal(len(plan.Groups))

	// Group-ordinal index: global determinism anchor for failure/degraded
	// ordering (scopes are unique per group).
	groupOrd := make(map[string]int, len(plan.Groups))
	for gi, scope := range plan.Scopes {
		groupOrd[scope] = gi
	}

	res := &detect.Result{}
	var all []detect.ShardBug
	type ordered struct {
		ord     int
		failure *budget.FailureRecord
		degr    *budget.Degradation
	}
	var robust []ordered
	shards := make([]obs.ShardManifest, plan.Shards)
	covered := make([]bool, len(plan.Groups))

	// fold accumulates one successful ShardResult, translating job-local
	// spec ordinals to global ones through the job's own index. Returns
	// the bug count folded in.
	fold := func(specIdx []int, sr *ShardResult) int {
		n := 0
		for _, sb := range sr.Bugs {
			if sb.Ord < 0 || sb.Ord >= len(specIdx) {
				continue // malformed wire record; never panic on it
			}
			sb.Ord = specIdx[sb.Ord] // job-local → global spec ordinal
			all = append(all, sb)
			n++
		}
		res.Units = append(res.Units, sr.Units...)
		for _, fr := range sr.Failures {
			robust = append(robust, ordered{ord: groupOrd[fr.Unit], failure: fr})
		}
		for i := range sr.Degraded {
			d := sr.Degraded[i]
			robust = append(robust, ordered{ord: groupOrd[d.Unit], degr: &d})
		}
		res.Stats = res.Stats.Merge(sr.Stats)
		res.SatChecks += sr.SatChecks
		for _, u := range sr.ManifestUnits {
			opts.Obs.ReplayUnit(u)
		}
		return n
	}

	for si := range outcomes {
		oc := outcomes[si]
		job := plan.Jobs[si]
		sm := obs.ShardManifest{
			Shard:      si,
			Groups:     len(job.Groups),
			Specs:      len(job.SpecIdx),
			Outcome:    "ok",
			Attempts:   oc.attempts,
			WallMS:     float64(oc.wall.Nanoseconds()) / 1e6,
			AttemptLog: oc.log,
		}
		if si < len(opts.Addrs) {
			sm.Addr = opts.Addrs[si]
		}
		if oc.err != nil {
			sm.Outcome = "lost"
			sm.Reason = oc.err.Error()
		} else {
			if oc.res != nil {
				sm.Bugs = fold(job.SpecIdx, oc.res)
			}
			for _, gi := range job.Groups {
				covered[gi] = true
			}
		}
		shards[si] = sm
	}

	// Recovery executions, in build order (lost shard ascending, target
	// ascending): fold the recovered results and record full provenance
	// on the lost shard's manifest span.
	recovFail := make(map[int]*recovExec)
	for i := range recovs {
		e := &recovs[i]
		rm := obs.ShardRecovery{
			Addr:       opts.Addrs[e.target],
			Shard:      e.target,
			Groups:     len(e.groups),
			Specs:      len(e.specIdx),
			Outcome:    "ok",
			Attempts:   e.oc.attempts,
			WallMS:     float64(e.oc.wall.Nanoseconds()) / 1e6,
			AttemptLog: e.oc.log,
		}
		if e.oc.err != nil {
			rm.Outcome = "lost"
			rm.Reason = e.oc.err.Error()
			for _, gi := range e.groups {
				recovFail[gi] = e
			}
		} else {
			rm.Bugs = fold(e.specIdx, e.oc.res)
			for _, gi := range e.groups {
				covered[gi] = true
			}
		}
		shards[e.origin].Recovery = append(shards[e.origin].Recovery, rm)
	}
	for si := range shards {
		if shards[si].Outcome != "lost" || len(shards[si].Recovery) == 0 {
			continue
		}
		recovered := true
		for _, gi := range plan.Jobs[si].Groups {
			if !covered[gi] {
				recovered = false
				break
			}
		}
		if recovered {
			shards[si].Outcome = "recovered"
		}
	}

	// Every group still uncovered — its shard lost and never recovered —
	// quarantines with the full loss chain in the record.
	for si := range outcomes {
		oc := outcomes[si]
		if oc.err == nil {
			continue
		}
		for _, gi := range plan.Jobs[si].Groups {
			if covered[gi] {
				continue
			}
			scope := plan.Scopes[gi]
			attempts := oc.attempts
			detail := fmt.Sprintf("shard %d (%s): %v", si, shards[si].Addr, oc.err)
			if e := recovFail[gi]; e != nil {
				attempts += e.oc.attempts
				detail += fmt.Sprintf("; re-shard to %d (%s): %v", e.target, opts.Addrs[e.target], e.oc.err)
			}
			fr := &budget.FailureRecord{
				Unit:     scope,
				Stage:    "detect",
				Reason:   budget.ReasonShardLost,
				Detail:   detail,
				Attempts: attempts,
			}
			robust = append(robust, ordered{ord: groupOrd[scope], failure: fr})
			res.Units = append(res.Units, detect.UnitRec{
				ID:    scope,
				Specs: len(plan.Groups[gi]),
			})
			opts.Obs.ReplayUnit(obs.UnitManifest{
				ID:       scope,
				Stage:    "detect",
				Outcome:  obs.OutcomeQuarantined,
				Reason:   string(budget.ReasonShardLost),
				Attempts: attempts,
				Specs:    len(plan.Groups[gi]),
			})
		}
	}

	res.Recs = detect.MergeShardRecs(all)
	sort.Slice(res.Units, func(i, j int) bool { return res.Units[i].ID < res.Units[j].ID })
	sort.SliceStable(robust, func(i, j int) bool { return robust[i].ord < robust[j].ord })
	for _, r := range robust {
		if r.failure != nil {
			res.Failures = append(res.Failures, r.failure)
		}
		if r.degr != nil {
			res.Degraded = append(res.Degraded, *r.degr)
		}
	}
	res.Stats.QuarantinedUnits = int64(len(res.Failures))
	res.Stats.DegradedUnits = int64(len(res.Degraded))
	return res, shards
}
