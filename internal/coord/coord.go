package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"seal/internal/budget"
	"seal/internal/detect"
	"seal/internal/obs"
	"seal/internal/spec"
)

// Options configures one coordinated detection.
type Options struct {
	// Addrs are the worker base URLs ("http://host:port"), one per shard;
	// the shard count is len(Addrs).
	Addrs []string
	// Client is the HTTP client for dispatch (nil = http.DefaultClient).
	Client *http.Client
	// Timeout bounds one shard dispatch, attempt-inclusive of the worker's
	// whole run (0 = only the run context bounds it). A shard that hangs
	// past it is quarantined, not waited on forever.
	Timeout time.Duration
	// Workers is each worker's in-process detection parallelism.
	Workers int
	// Limits is the per-unit budget. MaxFailures is enforced globally by
	// the coordinator over the merged failure list (shards receive it
	// zeroed); Retry additionally grants each lost shard one re-dispatch.
	Limits budget.Limits
	// Obs, when non-nil, receives one replayed unit span per region group
	// — executed or lost — so the merged manifest matches a
	// single-process run's after redaction.
	Obs *obs.Recorder
}

// shardOutcome is one dispatch's verdict.
type shardOutcome struct {
	res      *ShardResult
	err      error // non-nil ⇒ shard lost (res nil)
	attempts int
	wall     time.Duration
}

// Detect partitions specs over opts.Addrs, dispatches every non-empty
// shard concurrently, and merges the results into the *detect.Result a
// single-process run would produce (Bugs stays nil — rendering goes
// through Recs, exactly like a cache replay). The returned ShardManifest
// slice describes each shard's span for the run manifest.
//
// A lost shard (crash, hang, unreachable, target mismatch) quarantines
// exactly its region groups: one FailureRecord per group with
// budget.ReasonShardLost, zero bugs contributed, everything else
// untouched. The returned error is non-nil only for run-level aborts
// (context canceled, or the merged failure count exceeding
// Limits.MaxFailures) — the partial Result is valid either way.
func Detect(ctx context.Context, targetHash string, specs []*spec.Spec, opts Options) (*detect.Result, []obs.ShardManifest, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	plan := PlanShards(specs, len(opts.Addrs))
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}

	shardLimits := opts.Limits
	shardLimits.MaxFailures = 0 // global threshold, enforced below

	outcomes := make([]shardOutcome, plan.Shards)
	done := make(chan int)
	for si := range plan.Jobs {
		if len(plan.Jobs[si].Groups) == 0 {
			outcomes[si] = shardOutcome{res: &ShardResult{Shard: si}, attempts: 0}
			continue
		}
		go func(si int) {
			outcomes[si] = dispatch(ctx, client, opts.Addrs[si], buildJob(plan, si, targetHash, specs, opts.Workers, shardLimits), opts.Limits.Retry, opts.Timeout)
			done <- si
		}(si)
	}
	for si := range plan.Jobs {
		if len(plan.Jobs[si].Groups) > 0 {
			<-done
		}
	}

	res, shards := merge(plan, specs, opts, outcomes)
	if opts.Limits.MaxFailures > 0 && len(res.Failures) > opts.Limits.MaxFailures {
		return res, shards, fmt.Errorf("detect: aborted after %d quarantined units (max %d)",
			len(res.Failures), opts.Limits.MaxFailures)
	}
	if err := ctx.Err(); err != nil {
		return res, shards, err
	}
	return res, shards, nil
}

// buildJob assembles shard si's wire job from the plan.
func buildJob(plan *Plan, si int, targetHash string, specs []*spec.Spec, workers int, limits budget.Limits) *ShardJob {
	job := plan.Jobs[si]
	subset := make([]*spec.Spec, len(job.SpecIdx))
	for k, gi := range job.SpecIdx {
		subset[k] = specs[gi]
	}
	return &ShardJob{
		Shard:      si,
		Shards:     plan.Shards,
		TargetHash: targetHash,
		Specs:      &spec.DB{Specs: subset},
		Workers:    workers,
		Limits:     limits,
	}
}

// dispatch POSTs one shard job, retrying once when the budget policy
// grants retries. Any failure mode — connect error, timeout, non-200,
// undecodable or mismatched response — loses the shard.
func dispatch(ctx context.Context, client *http.Client, addr string, job *ShardJob, retry bool, timeout time.Duration) shardOutcome {
	start := time.Now()
	attempts := 1
	res, err := post(ctx, client, addr, job, timeout)
	if err != nil && retry && ctx.Err() == nil {
		attempts = 2
		res, err = post(ctx, client, addr, job, timeout)
	}
	return shardOutcome{res: res, err: err, attempts: attempts, wall: time.Since(start)}
}

// post performs one dispatch attempt.
func post(ctx context.Context, client *http.Client, addr string, job *ShardJob, timeout time.Duration) (*ShardResult, error) {
	body, err := json.Marshal(job)
	if err != nil {
		return nil, fmt.Errorf("encode job: %w", err)
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, errSnippet(data))
	}
	var sr ShardResult
	if err := json.Unmarshal(data, &sr); err != nil {
		return nil, fmt.Errorf("decode result: %w", err)
	}
	if sr.Shard != job.Shard {
		return nil, fmt.Errorf("shard mismatch: sent %d, got %d", job.Shard, sr.Shard)
	}
	return &sr, nil
}

// errSnippet extracts the structured error message from a worker's JSON
// error envelope, falling back to a truncated raw body.
func errSnippet(data []byte) string {
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
		return env.Error.Code + ": " + env.Error.Message
	}
	s := string(data)
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// merge folds every shard outcome into one Result, deterministically:
// identical inputs and identical per-shard outcomes produce byte-identical
// output regardless of dispatch completion order.
func merge(plan *Plan, specs []*spec.Spec, opts Options, outcomes []shardOutcome) (*detect.Result, []obs.ShardManifest) {
	opts.Obs.SetUnitsTotal(len(plan.Groups))

	// Group-ordinal index: global determinism anchor for failure/degraded
	// ordering (scopes are unique per group).
	groupOrd := make(map[string]int, len(plan.Groups))
	for gi, scope := range plan.Scopes {
		groupOrd[scope] = gi
	}

	res := &detect.Result{}
	var all []detect.ShardBug
	type ordered struct {
		ord     int
		failure *budget.FailureRecord
		degr    *budget.Degradation
	}
	var robust []ordered
	shards := make([]obs.ShardManifest, plan.Shards)

	for si := range outcomes {
		oc := outcomes[si]
		job := plan.Jobs[si]
		sm := obs.ShardManifest{
			Shard:    si,
			Groups:   len(job.Groups),
			Specs:    len(job.SpecIdx),
			Outcome:  "ok",
			Attempts: oc.attempts,
			WallMS:   float64(oc.wall.Nanoseconds()) / 1e6,
		}
		if si < len(opts.Addrs) {
			sm.Addr = opts.Addrs[si]
		}
		if oc.err != nil {
			// Lost shard: quarantine exactly its region groups.
			sm.Outcome = "lost"
			sm.Reason = oc.err.Error()
			for _, gi := range job.Groups {
				scope := plan.Scopes[gi]
				fr := &budget.FailureRecord{
					Unit:     scope,
					Stage:    "detect",
					Reason:   budget.ReasonShardLost,
					Detail:   fmt.Sprintf("shard %d (%s): %v", si, sm.Addr, oc.err),
					Attempts: oc.attempts,
				}
				robust = append(robust, ordered{ord: groupOrd[scope], failure: fr})
				res.Units = append(res.Units, detect.UnitRec{
					ID:    scope,
					Specs: len(plan.Groups[gi]),
				})
				opts.Obs.ReplayUnit(obs.UnitManifest{
					ID:       scope,
					Stage:    "detect",
					Outcome:  obs.OutcomeQuarantined,
					Reason:   string(budget.ReasonShardLost),
					Attempts: oc.attempts,
					Specs:    len(plan.Groups[gi]),
				})
			}
			shards[si] = sm
			continue
		}

		sr := oc.res
		sm.Bugs = len(sr.Bugs)
		shards[si] = sm
		for _, sb := range sr.Bugs {
			if sb.Ord < 0 || sb.Ord >= len(job.SpecIdx) {
				continue // malformed wire record; never panic on it
			}
			sb.Ord = job.SpecIdx[sb.Ord] // job-local → global spec ordinal
			all = append(all, sb)
		}
		res.Units = append(res.Units, sr.Units...)
		for _, fr := range sr.Failures {
			robust = append(robust, ordered{ord: groupOrd[fr.Unit], failure: fr})
		}
		for i := range sr.Degraded {
			d := sr.Degraded[i]
			robust = append(robust, ordered{ord: groupOrd[d.Unit], degr: &d})
		}
		res.Stats = res.Stats.Merge(sr.Stats)
		res.SatChecks += sr.SatChecks
		for _, u := range sr.ManifestUnits {
			opts.Obs.ReplayUnit(u)
		}
	}

	res.Recs = detect.MergeShardRecs(all)
	sort.Slice(res.Units, func(i, j int) bool { return res.Units[i].ID < res.Units[j].ID })
	sort.SliceStable(robust, func(i, j int) bool { return robust[i].ord < robust[j].ord })
	for _, r := range robust {
		if r.failure != nil {
			res.Failures = append(res.Failures, r.failure)
		}
		if r.degr != nil {
			res.Degraded = append(res.Degraded, *r.degr)
		}
	}
	res.Stats.QuarantinedUnits = int64(len(res.Failures))
	res.Stats.DegradedUnits = int64(len(res.Degraded))
	return res, shards
}
