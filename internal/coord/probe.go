package coord

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// probeGet performs one health/readiness probe: GET addr+path bounded by
// the probe timeout, expecting 200. The body is drained and discarded —
// a probe is a heartbeat, not a data channel.
func probeGet(ctx context.Context, client *http.Client, addr, path string, timeout time.Duration) error {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, addr+path, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10)); err != nil {
		return fmt.Errorf("%s: read: %w", path, err) // a hung or cut body is a miss
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return nil
}

// checkReady is the pre-dispatch readiness gate: before shipping a shard
// job (which can be large), the coordinator asks the worker whether it is
// ready to take work at all. A dead or draining worker fails here in one
// probe-timeout instead of one job-upload + shard-deadline.
func checkReady(ctx context.Context, client *http.Client, addr string, po ProbeOptions) error {
	if err := probeGet(ctx, client, addr, "/readyz", po.timeout()); err != nil {
		return fmt.Errorf("readiness probe: %w", err)
	}
	return nil
}

// probeLiveness watches one in-flight dispatch: every po.Interval it
// probes the worker's /healthz, and after po.failures() consecutive
// misses it stores the verdict and cancels the attempt — a worker that
// hangs mid-response is cut by probe timeout, not only by the shard
// deadline. The goroutine exits when ctx is done (attempt finished or
// canceled) or after delivering its verdict.
func probeLiveness(ctx context.Context, client *http.Client, addr string, po ProbeOptions, verdict *atomic.Pointer[string], cancelAttempt context.CancelFunc) {
	tick := time.NewTicker(po.Interval)
	defer tick.Stop()
	misses := 0
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if err := probeGet(ctx, client, addr, "/healthz", po.timeout()); err != nil {
			if ctx.Err() != nil {
				return // attempt already over; the miss is cancellation, not death
			}
			misses++
			lastErr = err
			if misses >= po.failures() {
				v := fmt.Sprintf("liveness probe failed %d time(s): %v", misses, lastErr)
				verdict.Store(&v)
				cancelAttempt()
				return
			}
			continue
		}
		misses = 0
	}
}
