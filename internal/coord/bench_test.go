package coord_test

// Benchmarks and the standing perf assertions for the scale-out tier.
// Record results in BENCH_detect.json.
//
// Two claims are measured here:
//   - parallel speedup: with >= 4 real cores, a 4-worker coordinated
//     detection of a cold corpus must beat the 1-worker coordinated run by
//     at least 1.6x (gated on runtime.NumCPU so a 1-core CI box records
//     honest numbers instead of asserting fiction);
//   - coordination overhead: a 1-shard coordinated run (spawn substrate +
//     HTTP dispatch + JSON + merge) must cost at most 25% over the plain
//     in-process pipeline on the same corpus.

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"seal"
	"seal/internal/budget"
	"seal/internal/coord"
	"seal/internal/difftest"
	"seal/internal/kernelgen"
	"seal/internal/spec"
)

var (
	benchOnce  sync.Once
	benchFiles map[string]string
	benchSpecs []*spec.Spec
	benchErr   error
)

// benchCorpus builds the sharding benchmark inputs once: the generated
// kernel-style corpus and its validated spec database — several region
// groups, so every shard count in play gets real work.
func benchCorpus(tb testing.TB) (map[string]string, []*spec.Spec) {
	tb.Helper()
	benchOnce.Do(func() {
		corpus := kernelgen.Generate(kernelgen.DefaultConfig())
		res, err := seal.InferSpecs(corpus.Patches, seal.DefaultOptions())
		if err != nil {
			benchErr = err
			return
		}
		benchFiles = corpus.Files
		benchSpecs = res.DB.Specs
	})
	if benchErr != nil {
		tb.Fatal(benchErr)
	}
	return benchFiles, benchSpecs
}

// coordDetectOnce runs one coordinated detection against fresh workers,
// returning just the dispatch+detect+merge wall time (worker startup —
// parse, link, index — is excluded; it is the same work at every shard
// count and is measured separately by the overhead benchmark).
func coordDetectOnce(tb testing.TB, shards int) time.Duration {
	return coordDetectOnceOpts(tb, shards, false)
}

// coordDetectOnceOpts is coordDetectOnce with the fleet-resilience layer
// optionally switched on (readiness gates, liveness probing, retry
// policy, re-shard-on-loss) — the no-fault steady-state configuration
// whose overhead TestResilienceOverhead bounds.
func coordDetectOnceOpts(tb testing.TB, shards int, resilient bool) time.Duration {
	tb.Helper()
	files, specs := benchCorpus(tb)
	addrs, _, stop, err := difftest.StartWorkers(shards, files)
	if err != nil {
		tb.Fatal(err)
	}
	defer stop()
	opts := coord.Options{
		Addrs:   addrs,
		Timeout: 2 * time.Minute,
		Workers: 1,
		Limits:  budget.Limits{},
	}
	if resilient {
		opts.Retry = coord.RetryPolicy{MaxAttempts: 3, Backoff: 50 * time.Millisecond}
		opts.Probe = coord.ProbeOptions{Interval: 50 * time.Millisecond}
		opts.ReshardOnLoss = true
	}
	start := time.Now()
	res, _, err := coord.Detect(context.Background(), seal.TargetHash(files), specs, opts)
	el := time.Since(start)
	if err != nil {
		tb.Fatal(err)
	}
	if len(res.Recs) == 0 {
		tb.Fatal("no reports")
	}
	return el
}

// BenchmarkShardedDetect measures a cold coordinated detection at several
// shard counts. Workers are rebuilt every iteration so each measurement is
// a genuine cold run, not a resident-memo replay.
func BenchmarkShardedDetect(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "shards-1", 2: "shards-2", 4: "shards-4"}[shards], func(b *testing.B) {
			benchCorpus(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// Fresh workers: cold substrate, cold memo.
				files, _ := benchCorpus(b)
				addrs, _, stop, err := difftest.StartWorkers(shards, files)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				_, specs := benchCorpus(b)
				res, _, err := coord.Detect(context.Background(), seal.TargetHash(files), specs, coord.Options{
					Addrs: addrs, Timeout: 2 * time.Minute, Workers: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Recs) == 0 {
					b.Fatal("no reports")
				}
				b.StopTimer()
				stop()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkInProcessDetect is the coordination-overhead baseline: the same
// corpus through the plain single-process pipeline.
func BenchmarkInProcessDetect(b *testing.B) {
	files, specs := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := seal.DetectFilesCached(context.Background(), files, specs, seal.DetectRunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Recs) == 0 {
			b.Fatal("no reports")
		}
	}
}

func medianCoordNs(tb testing.TB, runs, shards int) float64 {
	samples := make([]float64, runs)
	for i := range samples {
		samples[i] = float64(coordDetectOnce(tb, shards).Nanoseconds())
	}
	sort.Float64s(samples)
	return samples[runs/2]
}

// TestShardedDetectSpeedup enforces the scale-out acceptance bar on
// machines that can express it: with at least 4 real cores, 4 workers must
// finish the cold corpus at least 1.6x faster than 1 worker. On smaller
// machines the claim is untestable (workers time-slice one core), so the
// test records the measured ratio and skips the assertion.
func TestShardedDetectSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	const runs = 5
	one := medianCoordNs(t, runs, 1)
	four := medianCoordNs(t, runs, 4)
	speedup := one / four
	t.Logf("1 worker median %.2fms, 4 workers median %.2fms, speedup %.2fx (cores=%d)",
		one/1e6, four/1e6, speedup, runtime.NumCPU())
	if runtime.NumCPU() < 4 {
		t.Skipf("only %d cores: 4-worker speedup is not measurable, skipping the 1.6x floor", runtime.NumCPU())
	}
	if speedup < 1.6 {
		t.Errorf("4-worker coordinated detect is only %.2fx faster than 1-worker, want >= 1.6x", speedup)
	}
}

// TestCoordinationOverhead bounds what the scale-out machinery itself
// costs in steady state: a 1-shard coordinated detection (HTTP dispatch,
// JSON round trip, deterministic merge — everything coordination adds per
// run) must stay within 25% of the plain in-process pipeline on the same
// corpus. Worker substrate startup is excluded: workers are resident
// daemons spawned once per session, so that cost amortizes to zero over a
// corpus sweep — the per-run wire tax is what must stay small.
// Measurements alternate sides so the process-global solver memo warms
// both identically.
func TestCoordinationOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement skipped in -short mode")
	}
	files, specs := benchCorpus(t)
	ctx := context.Background()
	const runs = 5

	// One warmup per side: first-touch costs (solver memo, page cache)
	// land outside the measurement.
	if _, err := seal.DetectFilesCached(ctx, files, specs, seal.DetectRunOptions{}); err != nil {
		t.Fatal(err)
	}
	coordDetectOnce(t, 1)

	inproc := make([]float64, runs)
	sharded := make([]float64, runs)
	for i := 0; i < runs; i++ {
		start := time.Now()
		res, err := seal.DetectFilesCached(ctx, files, specs, seal.DetectRunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Recs) == 0 {
			t.Fatal("no reports")
		}
		inproc[i] = float64(time.Since(start).Nanoseconds())
		sharded[i] = float64(coordDetectOnce(t, 1).Nanoseconds())
	}
	sort.Float64s(inproc)
	sort.Float64s(sharded)

	ratio := sharded[runs/2] / inproc[runs/2]
	t.Logf("in-process median %.2fms, 1-shard coordinated median %.2fms, ratio %.2fx",
		inproc[runs/2]/1e6, sharded[runs/2]/1e6, ratio)
	if ratio > 1.25 {
		t.Errorf("coordination overhead is %.2fx, want <= 1.25x", ratio)
	}
}

// TestResilienceOverhead bounds the steady-state cost of the resilience
// layer itself: with no faults, a coordinated run with readiness gates,
// liveness probing, retry policy, and re-shard-on-loss all enabled must
// stay within 5% of the same run with them off. The readiness gate is one
// tiny GET per dispatch and the prober is one GET per interval on an
// otherwise idle goroutine — insurance must be cheap when nothing burns.
// Measurements alternate sides so the solver memo and page cache warm
// both identically.
func TestResilienceOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement skipped in -short mode")
	}
	const runs = 9
	// One warmup per side.
	coordDetectOnceOpts(t, 1, false)
	coordDetectOnceOpts(t, 1, true)

	// Each sample is three consecutive runs: the tax ratio is unchanged
	// (every run pays its own gate), but per-sample scheduler noise on a
	// ~13ms corpus shrinks by √3 — the minima stay meaningful.
	const perSample = 3
	plain := make([]float64, runs)
	resilient := make([]float64, runs)
	for i := 0; i < runs; i++ {
		for j := 0; j < perSample; j++ {
			plain[i] += float64(coordDetectOnceOpts(t, 1, false).Nanoseconds())
			resilient[i] += float64(coordDetectOnceOpts(t, 1, true).Nanoseconds())
		}
	}
	sort.Float64s(plain)
	sort.Float64s(resilient)

	// Compare minima, not medians: the systematic per-run tax (the extra
	// readiness GET, the prober goroutine) persists in every sample
	// including the quietest one, while scheduler and GC noise — which on
	// a ~12ms corpus dwarfs the tax — does not.
	ratio := resilient[0] / plain[0]
	t.Logf("plain coordinated min %.2fms, resilient min %.2fms, ratio %.2fx",
		plain[0]/1e6, resilient[0]/1e6, ratio)
	if ratio > 1.05 {
		t.Errorf("resilience steady-state overhead is %.2fx, want <= 1.05x", ratio)
	}
}
