package coord

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"time"
)

// RetryPolicy governs how the coordinator re-dispatches a failing shard:
// up to MaxAttempts tries, separated by capped exponential backoff with
// deterministic seeded jitter. The schedule is a pure function of
// (Seed, shard, attempt) — two coordinators configured identically
// produce byte-identical backoff sequences, which is what lets the
// recovery path be replayed and asserted in tests.
type RetryPolicy struct {
	// MaxAttempts is the total number of dispatch tries per shard
	// (1 = no retry). Zero falls back to the legacy budget policy:
	// 2 attempts when Limits.Retry is set, otherwise 1.
	MaxAttempts int
	// Backoff is the base delay before the second attempt; each further
	// attempt doubles it, up to Cap. Zero means immediate re-dispatch.
	Backoff time.Duration
	// Cap bounds the exponential growth (0 = 8×Backoff).
	Cap time.Duration
	// Seed drives the jitter. The same seed reproduces the same schedule.
	Seed int64
}

// withDefaults resolves the zero policy against the legacy Limits.Retry
// single-re-dispatch contract.
func (p RetryPolicy) withDefaults(legacyRetry bool) RetryPolicy {
	if p.MaxAttempts <= 0 {
		if legacyRetry {
			p.MaxAttempts = 2
		} else {
			p.MaxAttempts = 1
		}
	}
	if p.Backoff < 0 {
		p.Backoff = 0
	}
	if p.Cap <= 0 {
		p.Cap = 8 * p.Backoff
	}
	return p
}

// Delay returns the backoff to sleep before the given attempt (attempt
// numbering starts at 1; attempt 1 never waits). The base doubles per
// attempt, is clamped to Cap, and is then scaled by a deterministic
// jitter factor in [0.5, 1.0) derived from (Seed, shard, attempt) — the
// spread de-synchronizes shards retrying against one struggling worker
// without sacrificing reproducibility.
func (p RetryPolicy) Delay(shard, attempt int) time.Duration {
	if attempt <= 1 || p.Backoff <= 0 {
		return 0
	}
	d := p.Backoff
	for i := 2; i < attempt && d < p.Cap; i++ {
		d *= 2
	}
	if p.Cap > 0 && d > p.Cap {
		d = p.Cap
	}
	// Jitter in [0.5, 1.0): half the nominal delay is guaranteed, the
	// upper half is hash-spread.
	h := fnv.New64a()
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(p.Seed))
	binary.LittleEndian.PutUint64(buf[8:], uint64(shard))
	binary.LittleEndian.PutUint64(buf[16:], uint64(attempt))
	h.Write(buf[:])
	frac := float64(h.Sum64()%1000) / 1000.0
	return time.Duration(float64(d) * (0.5 + 0.5*frac))
}

// sleepBudgeted waits for d unless the context is done first or the
// context deadline would expire before the sleep completes. It reports
// whether the retry may proceed: false means the retry budget (the run
// deadline) cannot absorb the wait, so the caller must stop retrying
// instead of sleeping into certain cancellation.
func sleepBudgeted(ctx context.Context, d time.Duration) bool {
	if err := ctx.Err(); err != nil {
		return false
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= d {
		return false
	}
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// ProbeOptions configures worker health probing. The zero value disables
// probing entirely, preserving the dispatch-only failure detection of
// earlier releases.
type ProbeOptions struct {
	// Interval enables probing when > 0: a readiness check (`/readyz`)
	// gates every dispatch attempt, and a liveness prober (`/healthz`)
	// runs alongside every in-flight shard request — a worker that hangs
	// mid-response is detected after Failures consecutive probe misses
	// instead of only at the shard deadline.
	Interval time.Duration
	// Timeout bounds one probe request (0 = 4×Interval, floor 100ms).
	Timeout time.Duration
	// Failures is how many consecutive probe misses declare the worker
	// dead (0 = 2; one slow probe on a loaded host is not a verdict).
	Failures int
}

// enabled reports whether probing is configured.
func (po ProbeOptions) enabled() bool { return po.Interval > 0 }

func (po ProbeOptions) timeout() time.Duration {
	if po.Timeout > 0 {
		return po.Timeout
	}
	t := 4 * po.Interval
	if t < 100*time.Millisecond {
		t = 100 * time.Millisecond
	}
	return t
}

func (po ProbeOptions) failures() int {
	if po.Failures > 0 {
		return po.Failures
	}
	return 2
}
