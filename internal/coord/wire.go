// Package coord is the coordinator side of seal's horizontal scale-out
// tier: it partitions a detection corpus into region-group shards with a
// deterministic hash, dispatches each shard to a worker process (`seal
// work`, a serve.Server exposing POST /shard), and merges the shard
// results into the byte-identical report, redacted manifest, and redacted
// metrics a single-process run over the same inputs would produce.
//
// The merge is exact, not approximate, because of how the work is split:
// shards are whole region groups (all specs sharing one detection scope),
// and a bug's dedup key embeds its spec's scope, so two bugs that could
// ever collapse into one always originate on the same shard. Cross-shard
// merging therefore only interleaves and re-sorts — it never has to
// re-run the dedup that needs live IR.
//
// Robustness is first-class: a worker that crashes, hangs past its
// dispatch deadline, or becomes unreachable quarantines exactly its
// shard's region groups (budget.ReasonShardLost, one FailureRecord per
// group), and every other shard's results are unaffected. A restarted
// worker warms from the shared persistent cache, so re-dispatch after a
// crash replays instead of recomputing.
package coord

import (
	"seal/internal/budget"
	"seal/internal/detect"
	"seal/internal/obs"
	"seal/internal/spec"
)

// ShardJob is the wire form of one shard dispatch: which slice of the
// corpus to run, pinned to a target by content hash. Specs travel as a
// *spec.DB because conditions only serialize through the DB-level JSON
// round trip (CondJSON tree form).
type ShardJob struct {
	// Shard / Shards identify this slice: shard index and total count.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// TargetHash is the content fingerprint of the sources the coordinator
	// planned against. A worker holding a different target answers 409
	// (target-mismatch) instead of silently merging results from the wrong
	// program.
	TargetHash string `json:"target_hash"`
	// Specs is this shard's spec subset, in global relative order. Nil when
	// SpecStore is set: the worker resolves the subset from the shared spec
	// store instead of decoding it off the wire.
	Specs *spec.DB `json:"specs,omitempty"`
	// SpecStore, when non-nil, references the shard's spec subset by
	// (store snapshot, scope list) instead of shipping it inline.
	SpecStore *SpecStoreRef `json:"spec_store,omitempty"`
	// Workers is the worker's in-process detection parallelism
	// (output-invariant; 0 = the worker's default).
	Workers int `json:"workers,omitempty"`
	// Limits is the per-unit budget. The coordinator zeroes MaxFailures
	// here and enforces the global threshold itself after merging, so a
	// shard never aborts locally on a count another shard can't see.
	Limits budget.Limits `json:"limits"`
}

// SpecStoreRef references a spec subset resident in a shared paged spec
// store (internal/specdb) instead of shipping the specs inline: the
// worker opens the store at exactly the referenced snapshot sequence and
// reads the named scopes' specs in global ordinal order — the same order
// an inline subset would carry. A worker whose store no longer holds the
// sequence answers 409 (spec-store-skew) rather than computing against a
// different corpus, and SpecsHash lets it verify the resolved subset is
// byte-identical to what the coordinator planned.
type SpecStoreRef struct {
	// Path is the store file, shared between coordinator and workers.
	Path string `json:"path"`
	// Seq is the committed snapshot sequence the plan was built against.
	Seq uint64 `json:"seq"`
	// Scopes are the subset's detection scopes in global group order.
	Scopes []string `json:"scopes,omitempty"`
	// SpecsHash is the spec.DB content fingerprint of the resolved subset.
	SpecsHash string `json:"specs_hash,omitempty"`
}

// ShardResult is the wire form of one shard's outcome: everything the
// coordinator needs to reassemble the single-process result, with no live
// IR.
type ShardResult struct {
	Shard      int    `json:"shard"`
	TargetHash string `json:"target_hash"`
	// Bugs are the shard's merged bug records in wire form; Ord is the
	// ordinal within this job's spec list (the coordinator translates it
	// to the global ordinal before the cross-shard merge).
	Bugs []detect.ShardBug `json:"bugs,omitempty"`
	// Units are the shard's per-region-group summaries (sorted by ID).
	Units []detect.UnitRec `json:"units,omitempty"`
	// ManifestUnits are the shard's unit spans in manifest form, replayed
	// into the coordinator's recorder so the merged redacted manifest is
	// indistinguishable from a single-process run's.
	ManifestUnits []obs.UnitManifest `json:"manifest_units,omitempty"`
	// Failures / Degraded are the shard's unit-level robustness records,
	// in the shard's group order.
	Failures []*budget.FailureRecord `json:"failures,omitempty"`
	Degraded []budget.Degradation    `json:"degraded,omitempty"`
	// Stats are the shard's substrate counters for this run (the delta, on
	// a resident worker).
	Stats detect.Stats `json:"stats"`
	// SatChecks is the shard's solver satisfiability-check delta.
	SatChecks int64 `json:"sat_checks"`
}
