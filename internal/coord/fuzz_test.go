package coord

// Native fuzz target over the coordinator's wire envelope. Run with
//
//	go test -run='^$' -fuzz=FuzzShardWire ./internal/coord
//
// Seed corpus lives in testdata/fuzz/FuzzShardWire/ (regenerate with
// `go run ./internal/difftest/gencorpus`).

import (
	"encoding/json"
	"testing"

	"seal/internal/obs"
)

// FuzzShardWire feeds arbitrary bytes through both directions of the
// coordinator's wire format: a ShardJob decode (what a worker does to a
// request body) and a ShardResult decode followed by the full merge (what
// the coordinator does to a response body). Whatever a hostile or corrupt
// peer sends, neither side may panic, and the merged result must stay
// well-formed — bug ordinals out of the job's range are dropped, unknown
// unit names fold in without faulting, and the failure count invariants
// hold.
func FuzzShardWire(f *testing.F) {
	f.Add(`{"shard":0,"shards":2,"target_hash":"t","workers":1}`, `{"shard":0}`)
	f.Add(`{"shard":1,"shards":2}`, `{"shard":1,"bugs":[{"key":"k","spec_id":"s","ord":0,"rec":{"kind":"missing-check","fn":"f"}}]}`)
	f.Add(`{}`, `{"shard":0,"bugs":[{"ord":-1},{"ord":999}],"stats":{"EnsureCalls":3}}`)
	f.Add(`not json`, `still not json`)
	f.Add(`{"shard":-5}`, `{"shard":0,"failures":[{"Unit":"api:nope","Stage":"detect","Reason":"panic"}],"degraded":[{"Unit":"ghost"}]}`)
	f.Add(`{"specs":{"specs":[{"id":"x","api":"a"}]}}`, `{"shard":0,"units":[{"id":"api:a","specs":1}],"manifest_units":[{"id":"api:a","stage":"detect","outcome":"ok"}]}`)
	f.Fuzz(func(t *testing.T, jobJSON, resultJSON string) {
		var job ShardJob
		_ = json.Unmarshal([]byte(jobJSON), &job)

		var sr ShardResult
		if err := json.Unmarshal([]byte(resultJSON), &sr); err != nil {
			return // undecodable responses are rejected before merge
		}
		// Merge the fuzzed result as shard 0 of a fixed two-shard plan,
		// with shard 1 lost — both merge paths run on every input.
		specs := planSpecs()
		plan := PlanShards(specs, 2)
		outcomes := []shardOutcome{
			{res: &sr, attempts: 1},
			{err: errFuzzLost, attempts: 2},
		}
		rec := obs.New()
		rec.StartRun("detect")
		res, shards := merge(plan, specs, Options{
			Addrs: []string{"http://a", "http://b"},
			Obs:   rec,
		}, outcomes, nil)
		if res == nil || len(shards) != 2 {
			t.Fatalf("merge returned res=%v shards=%d", res, len(shards))
		}
		// Shard 1's loss must quarantine exactly its groups, whatever the
		// fuzzed shard contributed.
		lost := 0
		for _, fr := range res.Failures {
			if fr.Reason == "shard-lost" {
				lost++
			}
		}
		if lost < len(plan.Jobs[1].Groups) {
			t.Fatalf("lost shard quarantined %d groups, owns %d", lost, len(plan.Jobs[1].Groups))
		}
		if res.Stats.QuarantinedUnits != int64(len(res.Failures)) {
			t.Fatalf("stats quarantined=%d, failures=%d", res.Stats.QuarantinedUnits, len(res.Failures))
		}
		// Every merged bug ordinal was translated through the job's index
		// map; anything the bounds check let through must be in range.
		for _, r := range res.Recs {
			_ = r.String()
		}
	})
}

type fuzzLostErr struct{}

func (fuzzLostErr) Error() string { return "fuzz: worker down" }

var errFuzzLost error = fuzzLostErr{}
