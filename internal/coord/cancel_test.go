package coord

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"
)

// TestDetectCancellation pins the Ctrl-C contract: canceling the run
// context mid-dispatch makes Detect return promptly with the context
// error — in-flight shard requests and liveness probers are all cut and
// joined, leaving no goroutines behind.
func TestDetectCancellation(t *testing.T) {
	baseline := runtime.NumGoroutine()

	// Workers whose /shard never answers: the only way out is cancellation.
	var servers []*httptest.Server
	var addrs []string
	for i := 0; i < 2; i++ {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			switch r.URL.Path {
			case "/healthz", "/readyz":
				w.Write([]byte(`{"ok":true}`))
			default:
				// Drain the body first: disconnect detection (and so
				// r.Context() cancellation) only starts once the request
				// body is consumed.
				io.Copy(io.Discard, r.Body)
				<-r.Context().Done() // hang until the client gives up
			}
		}))
		servers = append(servers, srv)
		addrs = append(addrs, srv.URL)
	}

	specs := planSpecs()
	ctx, cancel := context.WithCancel(context.Background())
	type verdict struct {
		err  error
		wall time.Duration
	}
	done := make(chan verdict, 1)
	go func() {
		start := time.Now()
		_, _, err := Detect(ctx, "t", specs, Options{
			Addrs:   addrs,
			Timeout: 30 * time.Second, // the deadline must NOT be what ends this
			Workers: 1,
			Retry:   RetryPolicy{MaxAttempts: 3, Backoff: 10 * time.Millisecond},
			Probe:   ProbeOptions{Interval: 20 * time.Millisecond},
		})
		done <- verdict{err: err, wall: time.Since(start)}
	}()

	time.Sleep(50 * time.Millisecond) // let dispatches get in flight
	cancel()

	select {
	case v := <-done:
		if !errors.Is(v.err, context.Canceled) {
			t.Fatalf("Detect returned %v, want context.Canceled", v.err)
		}
		if v.wall > 5*time.Second {
			t.Fatalf("Detect took %v after cancel; in-flight requests were not cut", v.wall)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Detect did not return after cancellation")
	}

	for _, srv := range servers {
		srv.Close()
	}
	if err := waitGoroutines(baseline + 2); err != nil {
		t.Fatal(err)
	}
}

// waitGoroutines polls until the goroutine count drops to the limit —
// the leak check. HTTP keep-alive reapers take a moment to drain, so
// poll rather than snapshot.
func waitGoroutines(limit int) error {
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= limit {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	buf = buf[:runtime.Stack(buf, true)]
	return fmt.Errorf("goroutine leak: %d alive, want ≤ %d\n%s", n, limit, buf)
}
