package coord

import (
	"context"
	"testing"
	"time"
)

// TestRetryDelayDeterministic pins the schedule contract: the backoff
// sequence is a pure function of (Seed, shard, attempt), jittered within
// [d/2, d), doubling per attempt up to the cap.
func TestRetryDelayDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, Backoff: 100 * time.Millisecond, Cap: 400 * time.Millisecond, Seed: 7}
	q := RetryPolicy{MaxAttempts: 5, Backoff: 100 * time.Millisecond, Cap: 400 * time.Millisecond, Seed: 7}
	for shard := 0; shard < 4; shard++ {
		if d := p.Delay(shard, 1); d != 0 {
			t.Fatalf("attempt 1 must not wait, got %v", d)
		}
		for attempt := 2; attempt <= 5; attempt++ {
			a, b := p.Delay(shard, attempt), q.Delay(shard, attempt)
			if a != b {
				t.Fatalf("shard %d attempt %d: same policy, different delays %v vs %v", shard, attempt, a, b)
			}
			nominal := p.Backoff << (attempt - 2)
			if nominal > p.Cap {
				nominal = p.Cap
			}
			if a < nominal/2 || a >= nominal {
				t.Fatalf("shard %d attempt %d: delay %v outside [%v, %v)", shard, attempt, a, nominal/2, nominal)
			}
		}
	}
	// A different seed must actually move the jitter somewhere.
	r := RetryPolicy{MaxAttempts: 5, Backoff: 100 * time.Millisecond, Cap: 400 * time.Millisecond, Seed: 8}
	moved := false
	for shard := 0; shard < 4 && !moved; shard++ {
		for attempt := 2; attempt <= 5; attempt++ {
			if r.Delay(shard, attempt) != p.Delay(shard, attempt) {
				moved = true
				break
			}
		}
	}
	if !moved {
		t.Fatal("seed change left every delay identical (jitter not seeded)")
	}
}

// TestRetryWithDefaults pins the legacy mapping: a zero policy resolves
// to the budget layer's historical contract — one blind re-dispatch when
// Limits.Retry is set, a single attempt otherwise.
func TestRetryWithDefaults(t *testing.T) {
	if got := (RetryPolicy{}).withDefaults(true).MaxAttempts; got != 2 {
		t.Fatalf("legacy retry: MaxAttempts = %d, want 2", got)
	}
	if got := (RetryPolicy{}).withDefaults(false).MaxAttempts; got != 1 {
		t.Fatalf("no retry: MaxAttempts = %d, want 1", got)
	}
	p := RetryPolicy{MaxAttempts: 4, Backoff: time.Second}.withDefaults(false)
	if p.MaxAttempts != 4 || p.Cap != 8*time.Second {
		t.Fatalf("explicit policy mangled: %+v", p)
	}
}

// TestSleepBudgeted pins the deadline-awareness contract: a retry never
// sleeps into certain cancellation.
func TestSleepBudgeted(t *testing.T) {
	if !sleepBudgeted(context.Background(), 0) {
		t.Fatal("zero sleep with no deadline must proceed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if sleepBudgeted(ctx, 10*time.Second) {
		t.Fatal("a sleep past the deadline must refuse, not wait")
	}
	if time.Since(start) > time.Second {
		t.Fatalf("refusal took %v; it must be immediate", time.Since(start))
	}
	canceled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if sleepBudgeted(canceled, time.Millisecond) {
		t.Fatal("a canceled context must refuse the sleep")
	}
}

// TestProbeOptionDefaults pins the derived probe knobs.
func TestProbeOptionDefaults(t *testing.T) {
	var off ProbeOptions
	if off.enabled() {
		t.Fatal("zero ProbeOptions must disable probing")
	}
	po := ProbeOptions{Interval: 10 * time.Millisecond}
	if !po.enabled() || po.timeout() != 100*time.Millisecond || po.failures() != 2 {
		t.Fatalf("derived defaults wrong: timeout=%v failures=%d", po.timeout(), po.failures())
	}
	po = ProbeOptions{Interval: 50 * time.Millisecond}
	if po.timeout() != 200*time.Millisecond {
		t.Fatalf("timeout = %v, want 4×interval", po.timeout())
	}
	po = ProbeOptions{Interval: time.Second, Timeout: 300 * time.Millisecond, Failures: 5}
	if po.timeout() != 300*time.Millisecond || po.failures() != 5 {
		t.Fatalf("explicit knobs overridden: timeout=%v failures=%d", po.timeout(), po.failures())
	}
}
