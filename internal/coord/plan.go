package coord

import (
	"hash/fnv"
	"sort"

	"seal/internal/detect"
	"seal/internal/spec"
)

// ShardOf is the deterministic shard function: FNV-1a over the region
// group's detection scope, reduced modulo the shard count. Every process
// that agrees on (scope, shards) agrees on the owner, so a plan can be
// recomputed anywhere — there is no assignment state to ship.
func ShardOf(scope string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(scope))
	return int(h.Sum32() % uint32(shards))
}

// Plan is a deterministic partition of a spec corpus over N shards, at
// region-group granularity (all specs sharing one detection scope move as
// one unit — splitting a group would break both the dedup argument and
// the per-region caching workers rely on).
type Plan struct {
	// Shards is the shard count the plan was built for.
	Shards int
	// Groups is the global region grouping: group index → spec indices in
	// global order (first-appearance scope order, as every in-process run
	// schedules it).
	Groups [][]int
	// Scopes is each group's detection scope (its unit ID).
	Scopes []string
	// Assign is each group's owning shard: ShardOf(Scopes[g], Shards).
	Assign []int
	// Jobs has one entry per shard (possibly empty), in shard order.
	Jobs []Job
}

// Job is one shard's slice of the plan.
type Job struct {
	Shard int
	// Groups are the global group indices assigned here, ascending.
	Groups []int
	// SpecIdx are the global spec indices assigned here, ascending — the
	// subset preserves global relative order, so the worker's shard-local
	// first-wins dedup agrees with the global one restricted to this
	// shard, and the coordinator can translate a job-local spec ordinal
	// back to the global one by indexing this slice.
	SpecIdx []int
}

// PlanShards partitions specs over shards. The plan depends only on
// (specs, shards): same inputs, same plan, on any machine.
func PlanShards(specs []*spec.Spec, shards int) *Plan {
	if shards < 1 {
		shards = 1
	}
	p := &Plan{
		Shards: shards,
		Groups: detect.ScopeGroups(specs),
		Jobs:   make([]Job, shards),
	}
	for i := range p.Jobs {
		p.Jobs[i].Shard = i
	}
	p.Scopes = make([]string, len(p.Groups))
	p.Assign = make([]int, len(p.Groups))
	for gi, g := range p.Groups {
		scope := specs[g[0]].Scope()
		sh := ShardOf(scope, shards)
		p.Scopes[gi] = scope
		p.Assign[gi] = sh
		p.Jobs[sh].Groups = append(p.Jobs[sh].Groups, gi)
		p.Jobs[sh].SpecIdx = append(p.Jobs[sh].SpecIdx, g...)
	}
	for i := range p.Jobs {
		sort.Ints(p.Jobs[i].SpecIdx)
	}
	return p
}
