// Package vfp implements value-flow paths (paper Def. 6.2): slicing over
// the PDG's data-dependence edges from slicing criteria, terminating at
// interaction data (paper §6.2.2), with per-path conditions Ψ and flow
// orders Ω. Paths are the unit of PDG differentiation and bug detection.
package vfp

import (
	"fmt"

	"seal/internal/cir"
	"seal/internal/ir"
	"seal/internal/pdg"
)

// EPKind classifies path endpoints into the specification domains V
// (sources) and U (uses) of paper Fig. 2.
type EPKind int

// Endpoint kinds.
const (
	// SrcParam: an incoming argument of the enclosing function (argⁱ when
	// the function implements an interface).
	SrcParam EPKind = iota
	// SrcAPIRet: the return value of an external API (ret^f).
	SrcAPIRet
	// SrcGlobal: a global variable read (g).
	SrcGlobal
	// SrcLiteral: a constant (l), e.g. the error code -ENOMEM.
	SrcLiteral
	// SrcUninit: a read of a never-initialized local (uninitialized-value
	// evidence).
	SrcUninit

	// SnkAPIArg: the value is passed to an external API as argument k
	// (arg^f).
	SnkAPIArg
	// SnkIfaceRet: the value is returned by an interface implementation
	// (retⁱ).
	SnkIfaceRet
	// SnkGlobalStore: the value is stored to a global (g as outgoing data).
	SnkGlobalStore
	// SnkDeref: the value is dereferenced (deref).
	SnkDeref
	// SnkIndex: the value indexes/offsets into memory (array access).
	SnkIndex
	// SnkDiv: the value is used as a divisor (div).
	SnkDiv
	// SnkParamStore: the value is stored through a pointer parameter of an
	// interface implementation — outgoing interaction data, like writes to
	// caller-visible buffers.
	SnkParamStore
)

// String implements fmt.Stringer.
func (k EPKind) String() string {
	switch k {
	case SrcParam:
		return "param"
	case SrcAPIRet:
		return "api-ret"
	case SrcGlobal:
		return "global"
	case SrcLiteral:
		return "literal"
	case SrcUninit:
		return "uninit"
	case SnkAPIArg:
		return "api-arg"
	case SnkIfaceRet:
		return "iface-ret"
	case SnkGlobalStore:
		return "global-store"
	case SnkDeref:
		return "deref"
	case SnkIndex:
		return "index"
	case SnkDiv:
		return "div"
	case SnkParamStore:
		return "param-store"
	}
	return "?"
}

// IsSource reports whether the endpoint kind is a value source (domain V).
func (k EPKind) IsSource() bool { return k <= SrcUninit }

// Endpoint is a classified path end: a source (interaction datum) or a
// sink (ultimate use).
type Endpoint struct {
	Kind       EPKind
	Stmt       *ir.Stmt
	Fn         *ir.Func
	ParamIndex int    // SrcParam
	API        string // SrcAPIRet / SnkAPIArg
	ArgIndex   int    // SnkAPIArg
	Global     string // SrcGlobal / SnkGlobalStore
	Lit        int64  // SrcLiteral
	Loc        ir.Loc // access path at the endpoint (field info)
}

// Key is a version-independent identity for the endpoint (no line numbers,
// no pointer identity).
func (e Endpoint) Key() string {
	switch e.Kind {
	case SrcParam:
		return fmt.Sprintf("param:%s#%d", e.Fn.Name, e.ParamIndex)
	case SrcAPIRet:
		return "apiret:" + e.API
	case SrcGlobal:
		return "global:" + e.Global
	case SrcLiteral:
		return fmt.Sprintf("lit:%d", e.Lit)
	case SrcUninit:
		return fmt.Sprintf("uninit:%s.%s", e.Fn.Name, e.Loc.Base.Name)
	case SnkAPIArg:
		return fmt.Sprintf("apiarg:%s#%d", e.API, e.ArgIndex)
	case SnkIfaceRet:
		return "ifaceret:" + e.Fn.Name
	case SnkGlobalStore:
		return "gstore:" + e.Global
	case SnkDeref:
		return "deref:" + e.Fn.Name
	case SnkIndex:
		return "index:" + e.Fn.Name
	case SnkDiv:
		return "div:" + e.Fn.Name
	case SnkParamStore:
		return fmt.Sprintf("pstore:%s#%d", e.Fn.Name, e.ParamIndex)
	}
	return "?"
}

// String implements fmt.Stringer.
func (e Endpoint) String() string {
	return fmt.Sprintf("%s(%s)@%d", e.Kind, e.detail(), e.Stmt.Line)
}

func (e Endpoint) detail() string {
	switch e.Kind {
	case SrcParam:
		return fmt.Sprintf("%s arg%d", e.Fn.Name, e.ParamIndex)
	case SrcAPIRet:
		return e.API
	case SrcGlobal, SnkGlobalStore:
		return e.Global
	case SrcLiteral:
		return fmt.Sprintf("%d", e.Lit)
	case SrcUninit:
		return e.Loc.Base.Name
	case SnkAPIArg:
		return fmt.Sprintf("%s arg%d", e.API, e.ArgIndex)
	case SnkIfaceRet:
		return e.Fn.Name
	default:
		return e.Fn.Name
	}
}

// classifySource decides whether stmt terminates a backward slice as a
// value source (paper §6.2.2: "the sources of our collected paths are
// input data from interfaces").
func classifySource(g *pdg.Graph, s *ir.Stmt) (Endpoint, bool) {
	if s.IsParamDef() {
		v := s.ParamVar()
		return Endpoint{Kind: SrcParam, Stmt: s, Fn: s.Fn, ParamIndex: v.ParamIndex, Loc: ir.Loc{Base: v}}, true
	}
	if s.Kind == ir.StCall && s.Callee != "" && g.Prog.IsAPI(s.Callee) && s.LHS != nil {
		return Endpoint{Kind: SrcAPIRet, Stmt: s, Fn: s.Fn, API: s.Callee}, true
	}
	if s.Kind == ir.StAssign {
		if lit, ok := s.RHS.(*cir.IntLit); ok {
			return Endpoint{Kind: SrcLiteral, Stmt: s, Fn: s.Fn, Lit: lit.Val}, true
		}
	}
	if s.Kind == ir.StReturn && s.X != nil {
		if lit, ok := s.X.(*cir.IntLit); ok {
			return Endpoint{Kind: SrcLiteral, Stmt: s, Fn: s.Fn, Lit: lit.Val}, true
		}
	}
	return Endpoint{}, false
}

// classifyRootless classifies a statement whose read of loc has no reaching
// definition: a global read or an uninitialized-local read acts as source.
func classifyRootless(s *ir.Stmt, loc ir.Loc) (Endpoint, bool) {
	if loc.Base.Kind == ir.VarGlobal {
		return Endpoint{Kind: SrcGlobal, Stmt: s, Fn: s.Fn, Global: loc.Base.Name, Loc: loc}, true
	}
	if loc.Base.Kind == ir.VarLocal && !loc.Base.Initialized {
		return Endpoint{Kind: SrcUninit, Stmt: s, Fn: s.Fn, Loc: loc}, true
	}
	if loc.Base.Kind == ir.VarParam {
		return Endpoint{Kind: SrcParam, Stmt: s, Fn: s.Fn, ParamIndex: loc.Base.ParamIndex, Loc: loc}, true
	}
	return Endpoint{}, false
}

// classifySinks lists the ultimate-use roles stmt plays for a value
// arriving via useLoc (paper §6.2.2: "sinks are output data or sensitive
// operations").
func classifySinks(g *pdg.Graph, s *ir.Stmt, useLoc ir.Loc) []Endpoint {
	var out []Endpoint
	switch s.Kind {
	case ir.StCall:
		if s.Callee != "" && g.Prog.IsAPI(s.Callee) {
			for i, a := range s.Args {
				if argReadsLoc(s.Fn, a, useLoc) {
					out = append(out, Endpoint{Kind: SnkAPIArg, Stmt: s, Fn: s.Fn, API: s.Callee, ArgIndex: i, Loc: useLoc})
				}
			}
		}
	case ir.StReturn:
		if len(g.Prog.InterfacesOf(s.Fn)) > 0 {
			out = append(out, Endpoint{Kind: SnkIfaceRet, Stmt: s, Fn: s.Fn, Loc: useLoc})
		}
	case ir.StAssign:
		if len(s.Defs) > 0 && s.Defs[0].Base.Kind == ir.VarGlobal {
			out = append(out, Endpoint{Kind: SnkGlobalStore, Stmt: s, Fn: s.Fn, Global: s.Defs[0].Base.Name, Loc: useLoc})
		}
		// Stores through pointer parameters are outgoing interaction data.
		if len(s.Defs) > 0 && s.Defs[0].Base.Kind == ir.VarParam && s.Defs[0].HasDeref() &&
			s.Defs[0].Base != useLoc.Base {
			out = append(out, Endpoint{
				Kind: SnkParamStore, Stmt: s, Fn: s.Fn,
				ParamIndex: s.Defs[0].Base.ParamIndex, Loc: useLoc,
			})
		}
	}
	// Sensitive operations: dereference / index / division. A use loc that
	// itself goes through memory is a read of the tracked pointee (the NPD
	// and use-after-free site class); a longer same-base use extending the
	// loc by a deref is an explicit dereference of the tracked pointer.
	// Branch statements are excluded: a read inside a condition is a
	// check of the value, not a sensitive use of it.
	if s.Kind != ir.StBranch && s.Kind != ir.StSwitch {
		if derefKind, ok := derefUse(s, useLoc); ok {
			out = append(out, Endpoint{Kind: derefKind, Stmt: s, Fn: s.Fn, Loc: useLoc})
		}
		if divisorUse(s, useLoc) {
			out = append(out, Endpoint{Kind: SnkDiv, Stmt: s, Fn: s.Fn, Loc: useLoc})
		}
	}
	return out
}

// argReadsLoc reports whether an argument expression reads useLoc (directly
// or as the exposed pointee).
func argReadsLoc(fn *ir.Func, arg cir.Expr, useLoc ir.Loc) bool {
	for _, u := range fn.UsesOf(arg) {
		if u.Base == useLoc.Base && u.SameShape(useLoc) {
			return true
		}
	}
	// &x arguments expose x's storage: match the address-of base path.
	if ue, ok := arg.(*cir.UnaryExpr); ok && ue.Op == cir.TokAmp {
		if lv, _, ok := fn.LvalLoc(ue.X); ok {
			if lv.Base == useLoc.Base {
				return true
			}
		}
	}
	// Pointer arguments expose their pointee.
	if lv, _, ok := fn.LvalLoc(arg); ok && fn.TypeOf(arg).IsPtr() {
		if lv.Base == useLoc.Base {
			return true
		}
	}
	return false
}

// derefUse reports whether s dereferences the value arriving at useLoc:
// either the use path itself goes through memory, or a longer path of the
// same base extends it by a deref.
func derefUse(s *ir.Stmt, useLoc ir.Loc) (EPKind, bool) {
	if useLoc.HasDeref() {
		anyIdx := false
		for _, st := range useLoc.Path {
			if st.Kind == ir.StepOff && st.Off == ir.AnyOff {
				anyIdx = true
			}
		}
		if anyIdx {
			return SnkIndex, true
		}
		return SnkDeref, true
	}
	check := func(l ir.Loc) (EPKind, bool) {
		if l.Base != useLoc.Base {
			return 0, false
		}
		if len(l.Path) <= len(useLoc.Path) {
			return 0, false
		}
		for i := range useLoc.Path {
			if l.Path[i] != useLoc.Path[i] {
				return 0, false
			}
		}
		// The extension must start with a deref of the tracked value.
		ext := l.Path[len(useLoc.Path):]
		if ext[0].Kind != ir.StepDeref {
			return 0, false
		}
		for _, st := range ext {
			if st.Kind == ir.StepOff && st.Off == ir.AnyOff {
				return SnkIndex, true
			}
		}
		return SnkDeref, true
	}
	for _, l := range s.Uses {
		if k, ok := check(l); ok {
			return k, true
		}
	}
	for _, l := range s.Defs {
		if k, ok := check(l); ok {
			return k, true
		}
	}
	return 0, false
}

// divisorUse reports whether the value at useLoc is used as a divisor in s.
func divisorUse(s *ir.Stmt, useLoc ir.Loc) bool {
	exprs := []cir.Expr{s.RHS, s.X}
	exprs = append(exprs, s.Args...)
	found := false
	var walk func(e cir.Expr)
	walk = func(e cir.Expr) {
		if found || e == nil {
			return
		}
		switch x := e.(type) {
		case *cir.BinaryExpr:
			if x.Op == cir.TokSlash || x.Op == cir.TokPercent {
				for _, u := range s.Fn.UsesOf(x.Y) {
					if u.Base == useLoc.Base && u.SameShape(useLoc) {
						found = true
						return
					}
				}
			}
			walk(x.X)
			walk(x.Y)
		case *cir.UnaryExpr:
			walk(x.X)
		case *cir.CondExpr:
			walk(x.Cond)
			walk(x.Then)
			walk(x.Else)
		case *cir.CallExpr:
			for _, a := range x.Args {
				walk(a)
			}
		case *cir.IndexExpr:
			walk(x.X)
			walk(x.Index)
		case *cir.FieldExpr:
			walk(x.X)
		case *cir.CastExpr:
			walk(x.X)
		}
	}
	for _, e := range exprs {
		walk(e)
	}
	return found
}
