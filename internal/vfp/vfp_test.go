package vfp

import (
	"strings"
	"testing"

	"seal/internal/cir"
	"seal/internal/ir"
	"seal/internal/pdg"
	"seal/internal/solver"
)

func mustGraph(t *testing.T, src string) (*ir.Program, *pdg.Graph) {
	t.Helper()
	f, err := cir.ParseFile("test.c", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.NewProgram(f)
	if err != nil {
		t.Fatal(err)
	}
	return p, pdg.BuildAll(p)
}

func findCall(fn *ir.Func, callee string) *ir.Stmt {
	for _, s := range fn.Stmts() {
		if s.IsCallTo(callee) {
			return s
		}
	}
	return nil
}

func findRetLit(fn *ir.Func, val int64) *ir.Stmt {
	for _, s := range fn.Stmts() {
		if s.Kind == ir.StReturn {
			if lit, ok := s.X.(*cir.IntLit); ok && lit.Val == val {
				return s
			}
		}
	}
	return nil
}

func pathsWith(paths []*Path, srcKind, snkKind EPKind) []*Path {
	var out []*Path
	for _, p := range paths {
		if p.Source.Kind == srcKind && p.Sink.Kind == snkKind {
			out = append(out, p)
		}
	}
	return out
}

func TestFig3PostPathLiteralToIfaceRet(t *testing.T) {
	// Post-patch Fig. 3: slicing from the changed return statement must
	// find the path -ENOMEM -> ... -> return of buffer_prepare (the new
	// value-flow edge of paper Fig. 6a), with Ψ implying the NULL check.
	p, g := mustGraph(t, cir.Fig3Source)
	bp := p.Funcs["buffer_prepare"]
	var retStmt *ir.Stmt
	for _, s := range bp.Stmts() {
		if s.Kind == ir.StReturn && s.X != nil {
			retStmt = s
		}
	}
	sl := NewSlicer(g)
	paths := sl.Collect(retStmt)
	hits := pathsWith(paths, SrcLiteral, SnkIfaceRet)
	var target *Path
	for _, h := range hits {
		if h.Source.Lit == -12 && h.Sink.Fn.Name == "buffer_prepare" {
			target = h
		}
	}
	if target == nil {
		var sigs []string
		for _, pp := range paths {
			sigs = append(sigs, pp.Source.Kind.String()+"->"+pp.Sink.Kind.String())
		}
		t.Fatalf("missing -ENOMEM -> iface-ret path; got %v", sigs)
	}
	// Ψ must imply risc->cpu == NULL (qualified symbol).
	psi := target.Psi(g)
	want := solver.Atom{
		Op: solver.OpEq,
		A:  solver.Sym{Name: "cx23885_vbibuffer::risc->cpu"},
		B:  solver.Const{Val: 0},
	}
	if !solver.Implies(psi, want) {
		t.Errorf("Ψ = %s should imply the NULL check", solver.String(psi))
	}
}

func TestFig3PrePathAbsent(t *testing.T) {
	// Pre-patch: no path from -ENOMEM to the interface return exists.
	p, g := mustGraph(t, cir.Fig3PreSource)
	vbi := p.Funcs["cx23885_vbibuffer"]
	enomem := findRetLit(vbi, -12)
	sl := NewSlicer(g)
	paths := sl.Collect(enomem)
	if hits := pathsWith(paths, SrcLiteral, SnkIfaceRet); len(hits) != 0 {
		t.Errorf("pre-patch code must not have literal->iface-ret path, got %d", len(hits))
	}
}

func TestFig5ParamToAPIArgPaths(t *testing.T) {
	// Fig. 5: from the put_device criterion, the slicer finds
	// param pdev -> put_device (API arg) — the paper's path #1.
	p, g := mustGraph(t, cir.Fig5PreSource)
	fn := p.Funcs["telem_remove"]
	put := findCall(fn, "put_device")
	sl := NewSlicer(g)
	paths := sl.Collect(put)
	hits := pathsWith(paths, SrcParam, SnkAPIArg)
	found := false
	for _, h := range hits {
		if h.Sink.API == "put_device" && h.Source.Fn.Name == "telem_remove" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing pdev -> put_device path; paths:\n%s", dumpPaths(paths))
	}

	// From the ida_free criterion: pdev -> ida_free (arg1, the devt read)
	// and global telem_ida -> ida_free (arg0).
	ida := findCall(fn, "ida_free")
	paths2 := sl.Collect(ida)
	var pdevToIda, idaGlobal bool
	for _, h := range paths2 {
		if h.Source.Kind == SrcParam && h.Sink.Kind == SnkAPIArg && h.Sink.API == "ida_free" {
			pdevToIda = true
		}
		if h.Source.Kind == SrcGlobal && h.Source.Global == "telem_ida" && h.Sink.Kind == SnkAPIArg {
			idaGlobal = true
		}
	}
	if !pdevToIda {
		t.Errorf("missing pdev -> ida_free path:\n%s", dumpPaths(paths2))
	}
	if !idaGlobal {
		t.Errorf("missing telem_ida -> ida_free path:\n%s", dumpPaths(paths2))
	}
}

func TestFig4ParamToIndexSink(t *testing.T) {
	// Fig. 4 pre-patch: data (param) flows to the array access in the loop.
	p, g := mustGraph(t, cir.Fig4PreSource)
	fn := p.Funcs["xfer_emulated"]
	var access *ir.Stmt
	for _, s := range fn.Stmts() {
		if s.Kind == ir.StAssign && strings.Contains(cir.ExprString(s.LHS), "buf") {
			access = s
		}
	}
	if access == nil {
		t.Fatal("missing array store")
	}
	sl := NewSlicer(g)
	paths := sl.Collect(access)
	found := false
	for _, h := range paths {
		if h.Source.Kind == SrcParam && h.Source.ParamIndex == 1 &&
			(h.Sink.Kind == SnkIndex || h.Sink.Kind == SnkDeref) {
			found = true
			// Pre-patch Ψ must NOT constrain data->len against MAX.
			psi := h.Psi(g)
			guard := solver.Atom{
				Op: solver.OpLe,
				A:  solver.Sym{Name: "xfer_emulated::data->len"},
				B:  solver.Const{Val: 32},
			}
			if solver.Implies(psi, guard) {
				t.Errorf("pre-patch Ψ should not imply the sanity check: %s", solver.String(psi))
			}
		}
	}
	if !found {
		t.Fatalf("missing param->index path:\n%s", dumpPaths(paths))
	}

	// Post-patch: the same path now carries the len <= MAX guard.
	p2, g2 := mustGraph(t, cir.Fig4PostSource)
	fn2 := p2.Funcs["xfer_emulated"]
	var access2 *ir.Stmt
	for _, s := range fn2.Stmts() {
		if s.Kind == ir.StAssign && strings.Contains(cir.ExprString(s.LHS), "buf") {
			access2 = s
		}
	}
	sl2 := NewSlicer(g2)
	for _, h := range sl2.Collect(access2) {
		if h.Source.Kind == SrcParam && h.Source.ParamIndex == 1 &&
			(h.Sink.Kind == SnkIndex || h.Sink.Kind == SnkDeref) {
			psi := h.Psi(g2)
			guard := solver.Atom{
				Op: solver.OpLe,
				A:  solver.Sym{Name: "xfer_emulated::data->len"},
				B:  solver.Const{Val: 32},
			}
			if !solver.Implies(psi, guard) {
				t.Errorf("post-patch Ψ = %s should imply data->len <= 32", solver.String(psi))
			}
		}
	}
}

func TestPathSignatureStableAcrossVersions(t *testing.T) {
	// The unchanged paths of Fig. 5 must have identical signatures in pre
	// and post versions (paper step 2: identical despite line numbers).
	p1, g1 := mustGraph(t, cir.Fig5PreSource)
	p2, g2 := mustGraph(t, cir.Fig5PostSource)
	sl1, sl2 := NewSlicer(g1), NewSlicer(g2)
	put1 := findCall(p1.Funcs["telem_remove"], "put_device")
	put2 := findCall(p2.Funcs["telem_remove"], "put_device")
	sigs1 := make(map[string]bool)
	for _, p := range sl1.Collect(put1) {
		sigs1[p.Signature()] = true
	}
	overlap := 0
	for _, p := range sl2.Collect(put2) {
		if sigs1[p.Signature()] {
			overlap++
		}
	}
	if overlap == 0 {
		t.Error("no path signatures overlap across versions; identity is broken")
	}
}

func TestUninitSource(t *testing.T) {
	p, g := mustGraph(t, `
void consume(int v);
int f(void) {
	int x;
	consume(x);
	return 0;
}`)
	fn := p.Funcs["f"]
	call := findCall(fn, "consume")
	sl := NewSlicer(g)
	paths := sl.Collect(call)
	found := false
	for _, h := range paths {
		if h.Source.Kind == SrcUninit {
			found = true
		}
	}
	if !found {
		t.Errorf("missing uninit source:\n%s", dumpPaths(paths))
	}
}

func TestDivisorSink(t *testing.T) {
	p, g := mustGraph(t, `
struct fb_var { int pixclock; };
struct fb_ops { int (*check_var)(struct fb_var *var); };
int my_check_var(struct fb_var *var) {
	int rate = 1000 / var->pixclock;
	return rate;
}
struct fb_ops ops = { .check_var = my_check_var, };
`)
	fn := p.Funcs["my_check_var"]
	var div *ir.Stmt
	for _, s := range fn.Stmts() {
		if s.Kind == ir.StAssign && cir.ExprString(s.LHS) == "rate" {
			div = s
		}
	}
	sl := NewSlicer(g)
	paths := sl.Collect(div)
	found := false
	for _, h := range paths {
		if h.Source.Kind == SrcParam && h.Sink.Kind == SnkDiv {
			found = true
		}
	}
	if !found {
		t.Errorf("missing param -> div path:\n%s", dumpPaths(paths))
	}
}

func TestHelperParamExtendsToCaller(t *testing.T) {
	// A helper's parameter is not interaction data; slicing must extend
	// into the interface implementation that calls it (paper §6.2.3).
	p, g := mustGraph(t, cir.Fig3Source)
	vbi := p.Funcs["cx23885_vbibuffer"]
	api := findCall(vbi, "dma_alloc_coherent")
	sl := NewSlicer(g)
	paths := sl.Collect(api)
	// Expect a path rooted at buffer_prepare's vb parameter (the interface
	// argument), not at cx23885_vbibuffer's risc parameter.
	foundIface := false
	for _, h := range paths {
		if h.Source.Kind == SrcParam && h.Source.Fn.Name == "buffer_prepare" {
			foundIface = true
		}
	}
	if !foundIface {
		t.Errorf("helper param should extend to interface impl:\n%s", dumpPaths(paths))
	}
}

func dumpPaths(paths []*Path) string {
	var sb strings.Builder
	for _, p := range paths {
		sb.WriteString(p.String())
		sb.WriteString("\n---\n")
	}
	return sb.String()
}
