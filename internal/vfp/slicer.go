package vfp

import (
	"seal/internal/budget"
	"seal/internal/ir"
	"seal/internal/pdg"
)

// TruncateEvent describes one path enumeration cut short by a cap or
// budget — surfaced so truncation is counted and logged, never silent.
type TruncateEvent struct {
	// Criterion is the statement whose enumeration was truncated.
	Criterion *ir.Stmt
	// Reason is the cap that fired (path-cap, depth-cap, step-budget,
	// memory-budget, deadline).
	Reason budget.Reason
}

// Slicer collects value-flow paths by forward/backward traversal over the
// PDG's data-dependence edges (paper §6.2: "the collection process is
// conducted via forward and backward slicings from the slicing criterions").
type Slicer struct {
	G *pdg.Graph
	// MaxDepth bounds the statement count per direction.
	MaxDepth int
	// MaxPaths bounds the total paths returned per criterion.
	MaxPaths int
	// CrossFunctionPointers, when false (the default and the paper's
	// choice, §7), stops slicing at indirect-call boundaries.
	CrossFunctionPointers bool
	// Scope, when non-nil, confines traversal to statements of the given
	// functions. Detection sets it to the region's callee closure so path
	// results depend only on the region — not on which other functions
	// happen to be materialized in a shared PDG.
	Scope map[*ir.Func]bool
	// Budget, when non-nil, meters traversal: every node expansion
	// charges one step and every retained path charges memory, so a
	// pathological criterion exhausts its unit's budget instead of the
	// process. Nil means unmetered.
	Budget *budget.Budget
	// OnTruncate, when non-nil, is invoked once per truncated enumeration
	// (the counted-warning hook; detection wires it into its stats).
	OnTruncate func(TruncateEvent)
	// OnEnum, when non-nil, is invoked once at the start of every path
	// enumeration (Collect or PathsFrom); detection aggregates it across
	// workers into its substrate stats.
	OnEnum func()
	// ScopeTrace, when non-nil, records every scope-membership answer the
	// traversal consults (fn → in/out). The scope set is the ONLY region
	// input the traversal reads, so the recorded answers are a sufficient
	// footprint: any scope that would answer them identically yields
	// identical paths. Detection uses this to reuse cached path sets
	// across regions whose closures agree on the consulted functions.
	ScopeTrace map[*ir.Func]bool

	// Enumerations counts path enumerations started since the slicer was
	// created.
	Enumerations int64
	// Truncations counts enumerations cut short by any cap since the
	// slicer was created.
	Truncations int64
	// BudgetTruncations counts the subset cut short by the dynamic
	// budget (steps, memory, deadline) rather than the deterministic
	// path/depth caps. Dynamic truncation makes results unit-specific:
	// shared caches must not publish them.
	BudgetTruncations int64

	// trunc is the per-enumeration truncation state.
	trunc struct {
		fired     bool
		budgetHit bool
		reason    budget.Reason
	}
}

// NewSlicer returns a slicer with the default bounds.
func NewSlicer(g *pdg.Graph) *Slicer {
	return &Slicer{G: g, MaxDepth: 24, MaxPaths: 400}
}

// ApplyLimits overrides the deterministic caps from a Limits value (zero
// fields keep the current caps).
func (sl *Slicer) ApplyLimits(l budget.Limits) {
	if l.MaxPaths > 0 {
		sl.MaxPaths = l.MaxPaths
	}
	if l.MaxDepth > 0 {
		sl.MaxDepth = l.MaxDepth
	}
}

// beginEnum resets the per-enumeration truncation state and counts the
// enumeration.
func (sl *Slicer) beginEnum() {
	sl.Enumerations++
	if sl.OnEnum != nil {
		sl.OnEnum()
	}
	sl.trunc.fired = false
	sl.trunc.budgetHit = false
	sl.trunc.reason = ""
}

// noteTrunc records one truncation cause; the first reason wins and the
// event is surfaced once per enumeration.
func (sl *Slicer) noteTrunc(reason budget.Reason) {
	if !sl.trunc.fired {
		sl.trunc.fired = true
		sl.trunc.reason = reason
	}
	switch reason {
	case budget.ReasonSteps, budget.ReasonMemory, budget.ReasonDeadline, budget.ReasonCanceled:
		sl.trunc.budgetHit = true
	}
}

// budgetStep charges one traversal step; a budget trip is recorded as a
// truncation and stops the walk.
func (sl *Slicer) budgetStep() bool {
	if sl.Budget == nil {
		return true
	}
	if err := sl.Budget.Step(1); err != nil {
		sl.noteTrunc(budget.ClassifyErr(err))
		return false
	}
	return true
}

// chargePath charges the memory cost of one retained path.
func (sl *Slicer) chargePath(nodes int) bool {
	if sl.Budget == nil {
		return true
	}
	// Approximate retained size: node slice + path header.
	if err := sl.Budget.Grow(int64(nodes)*16 + 96); err != nil {
		sl.noteTrunc(budget.ClassifyErr(err))
		return false
	}
	return true
}

// finishEnum settles an enumeration: counts the truncation, fires the
// warning hook, and marks every produced path so downstream consumers can
// tell "no path" from "enumeration cut short" (Path.Truncated).
func (sl *Slicer) finishEnum(criterion *ir.Stmt, paths []*Path) []*Path {
	if !sl.trunc.fired {
		return paths
	}
	sl.Truncations++
	if sl.trunc.budgetHit {
		sl.BudgetTruncations++
	}
	if sl.OnTruncate != nil {
		sl.OnTruncate(TruncateEvent{Criterion: criterion, Reason: sl.trunc.reason})
	}
	for _, p := range paths {
		p.Truncated = true
	}
	return paths
}

// segment is a partial path: nodes in source-to-sink order.
type segment struct {
	nodes []*ir.Stmt
	ep    Endpoint
}

// Collect gathers all source-to-sink value-flow paths passing through the
// criterion statement (paper §6.2.1-6.2.2).
func (sl *Slicer) Collect(criterion *ir.Stmt) []*Path {
	sl.beginEnum()
	backs := sl.backward(criterion)
	fwds := sl.forward(criterion)
	var out []*Path
	for _, b := range backs {
		for _, f := range fwds {
			nodes := make([]*ir.Stmt, 0, len(b.nodes)+len(f.nodes))
			nodes = append(nodes, b.nodes...)
			nodes = append(nodes, f.nodes...) // forward nodes exclude criterion
			if !sl.chargePath(len(nodes)) {
				return sl.finishEnum(criterion, DedupePaths(out))
			}
			out = append(out, &Path{Nodes: nodes, Source: b.ep, Sink: f.ep})
			if len(out) >= sl.MaxPaths {
				sl.noteTrunc(budget.ReasonPaths)
				return sl.finishEnum(criterion, DedupePaths(out))
			}
		}
	}
	return sl.finishEnum(criterion, DedupePaths(out))
}

// PathsFrom gathers the value-flow paths starting at a source statement
// (used by bug detection: the instantiated V elements are the sources).
func (sl *Slicer) PathsFrom(source *ir.Stmt) []*Path {
	sl.beginEnum()
	ep, ok := classifySource(sl.G, source)
	if !ok {
		// Fall back to rootless classification on the statement's uses.
		if eps := sl.rootlessSources(source); len(eps) > 0 {
			ep, ok = eps[0], true
		}
	}
	if !ok {
		return nil
	}
	var out []*Path
	for _, f := range sl.forward(source) {
		nodes := append([]*ir.Stmt{source}, f.nodes...)
		if !sl.chargePath(len(nodes)) {
			break
		}
		out = append(out, &Path{Nodes: nodes, Source: ep, Sink: f.ep})
		if len(out) >= sl.MaxPaths {
			sl.noteTrunc(budget.ReasonPaths)
			break
		}
	}
	return sl.finishEnum(source, DedupePaths(out))
}

// crossesIndirect reports whether following the edge would cross an
// indirect-call boundary.
func crossesIndirect(e pdg.Edge) bool {
	switch e.Kind {
	case pdg.EdgeParam:
		return e.From.Kind == ir.StCall && e.From.Callee == ""
	case pdg.EdgeReturn:
		return e.To.Kind == ir.StCall && e.To.Callee == ""
	}
	return false
}

// rootlessSources classifies the criterion's reads that have no reaching
// definition (globals, uninitialized locals, raw parameter reads).
func (sl *Slicer) rootlessSources(s *ir.Stmt) []Endpoint {
	flow := sl.G.Flow(s.Fn)
	var out []Endpoint
	for _, u := range flow.Unrooted {
		if u.Use != s {
			continue
		}
		if ep, ok := classifyRootless(s, u.Loc); ok {
			out = append(out, ep)
		}
	}
	return out
}

// backward returns segments [source .. criterion] (criterion included).
func (sl *Slicer) backward(criterion *ir.Stmt) []segment {
	var out []segment
	emit := func(nodesRev []*ir.Stmt, ep Endpoint) {
		// nodesRev is criterion-first; reverse it.
		n := len(nodesRev)
		nodes := make([]*ir.Stmt, n)
		for i, s := range nodesRev {
			nodes[n-1-i] = s
		}
		out = append(out, segment{nodes: nodes, ep: ep})
	}
	visited := make(map[*ir.Stmt]bool)
	var dfs func(cur *ir.Stmt, cameByParam bool, trail []*ir.Stmt)
	dfs = func(cur *ir.Stmt, cameByParam bool, trail []*ir.Stmt) {
		if len(out) >= sl.MaxPaths {
			sl.noteTrunc(budget.ReasonPaths)
			return
		}
		if len(trail) >= sl.maxDepth() {
			sl.noteTrunc(budget.ReasonDepth)
			return
		}
		if !sl.budgetStep() {
			return
		}
		trail = append(trail, cur)

		if ep, ok := classifySource(sl.G, cur); ok {
			if ep.Kind == SrcParam && !sl.interfaceImpl(cur.Fn) {
				// Parameter of a plain helper: extend into direct callers
				// when possible, otherwise treat the parameter as source.
				extended := false
				for _, e := range sl.G.DataPreds(cur) {
					if e.Kind != pdg.EdgeParam || crossesIndirect(e) || visited[e.From] || !sl.inScope(e.From.Fn) {
						continue
					}
					visited[e.From] = true
					dfs(e.From, true, trail)
					visited[e.From] = false
					extended = true
				}
				if !extended {
					emit(trail, ep)
				}
				return
			}
			emit(trail, ep)
			if ep.Kind != SrcAPIRet || cameByParam {
				return
			}
			// An API call is a source for its result, but its arguments
			// still carry value flows worth slicing backward through.
		}

		// Rootless reads at this node are sources rooted here.
		for _, ep := range sl.rootlessSources(cur) {
			emit(trail, ep)
		}

		for _, e := range sl.G.DataPreds(cur) {
			if crossesIndirect(e) && !sl.CrossFunctionPointers {
				continue
			}
			if !sl.inScope(e.From.Fn) {
				continue
			}
			// Role separation at call nodes (mirror of the forward rule):
			// walking back from a callee parameter reaches the call via an
			// argument — continuing backward through the callee's returns
			// would teleport the value.
			if cameByParam && cur.Kind == ir.StCall && e.Kind == pdg.EdgeReturn {
				continue
			}
			if visited[e.From] {
				continue
			}
			visited[e.From] = true
			dfs(e.From, e.Kind == pdg.EdgeParam, trail)
			visited[e.From] = false
		}
	}
	visited[criterion] = true
	dfs(criterion, false, nil)
	return out
}

// forward returns continuations after the criterion: nodes exclude the
// criterion itself; each ends at a classified sink.
func (sl *Slicer) forward(criterion *ir.Stmt) []segment {
	var out []segment
	visited := make(map[*ir.Stmt]bool)

	// The criterion itself may be an ultimate use.
	for _, ep := range sl.criterionSinks(criterion) {
		out = append(out, segment{nodes: nil, ep: ep})
	}

	var dfs func(cur *ir.Stmt, came pdg.Edge, trail []*ir.Stmt)
	dfs = func(cur *ir.Stmt, came pdg.Edge, trail []*ir.Stmt) {
		if len(out) >= sl.MaxPaths {
			sl.noteTrunc(budget.ReasonPaths)
			return
		}
		if len(trail) >= sl.maxDepth() {
			sl.noteTrunc(budget.ReasonDepth)
			return
		}
		if !sl.budgetStep() {
			return
		}
		trail = append(trail, cur)
		for _, ep := range classifySinks(sl.G, cur, came.Loc) {
			seg := segment{nodes: append([]*ir.Stmt{}, trail...), ep: ep}
			out = append(out, seg)
		}
		for _, e := range sl.G.DataSuccs(cur) {
			if crossesIndirect(e) && !sl.CrossFunctionPointers {
				continue
			}
			if !sl.inScope(e.To.Fn) {
				continue
			}
			// Role separation at call nodes: a value received FROM a
			// callee's return lives in the call's result — it cannot flow
			// back into the callee's parameters, nor through the call's
			// argument-derived side effects.
			if cur.Kind == ir.StCall && came.Kind == pdg.EdgeReturn {
				if e.Kind == pdg.EdgeParam {
					continue
				}
				if !flowsFromResult(cur, e) {
					continue
				}
			}
			if visited[e.To] {
				continue
			}
			visited[e.To] = true
			dfs(e.To, e, trail)
			visited[e.To] = false
		}
	}
	visited[criterion] = true
	for _, e := range sl.G.DataSuccs(criterion) {
		if crossesIndirect(e) && !sl.CrossFunctionPointers {
			continue
		}
		if visited[e.To] || !sl.inScope(e.To.Fn) {
			continue
		}
		visited[e.To] = true
		dfs(e.To, e, nil)
		visited[e.To] = false
	}
	return out
}

// flowsFromResult reports whether an out-edge of a call statement carries
// the call's result (LHS) rather than an argument-derived side effect.
func flowsFromResult(call *ir.Stmt, e pdg.Edge) bool {
	if len(call.Defs) == 0 {
		return false
	}
	lhs := call.Defs[0]
	return e.Loc.Base == lhs.Base
}

// criterionSinks classifies the criterion statement's own ultimate uses.
func (sl *Slicer) criterionSinks(s *ir.Stmt) []Endpoint {
	seen := make(map[string]bool)
	var out []Endpoint
	add := func(eps []Endpoint) {
		for _, ep := range eps {
			k := ep.Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, ep)
			}
		}
	}
	if len(s.Uses) == 0 {
		add(classifySinks(sl.G, s, ir.Loc{Base: &ir.Var{ID: -1, Name: "<none>"}}))
		return out
	}
	for _, u := range s.Uses {
		add(classifySinks(sl.G, s, u))
	}
	return out
}

// inScope reports whether traversal may enter fn (always true without a
// configured Scope), recording the answer when a ScopeTrace is attached.
func (sl *Slicer) inScope(fn *ir.Func) bool {
	in := sl.Scope == nil || sl.Scope[fn]
	if sl.ScopeTrace != nil {
		sl.ScopeTrace[fn] = in
	}
	return in
}

func (sl *Slicer) maxDepth() int {
	if sl.MaxDepth <= 0 {
		return 24
	}
	return sl.MaxDepth
}

func (sl *Slicer) interfaceImpl(fn *ir.Func) bool {
	return len(sl.G.Prog.InterfacesOf(fn)) > 0
}
