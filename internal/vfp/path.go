package vfp

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"seal/internal/ir"
	"seal/internal/pdg"
	"seal/internal/solver"
)

// Path is an inter-procedural value-flow path (Def. 6.2): a statement
// sequence connected by data-dependence edges, from an interaction-data
// source to an ultimate use. Paths may be shared across concurrent
// detector workers: Signature and Psi are memoized thread-safely.
type Path struct {
	Nodes  []*ir.Stmt
	Source Endpoint
	Sink   Endpoint

	// Truncated marks paths from an enumeration cut short by a path/depth
	// cap or a resource budget: an empty result set means "no path", a
	// truncated one means "budget exhausted — there may be more". Not part
	// of Signature: identical paths from complete and truncated
	// enumerations still dedupe together.
	Truncated bool

	sig atomic.Pointer[string]

	psiMu    sync.Mutex
	psi      solver.Formula
	psiReady bool
}

// Signature is a version-independent identity: the sequence of statement
// spellings qualified by function name, with endpoint keys. Statements are
// "identical despite different line numbers" (paper §5 step 2); lowering
// temporaries are erased so hoisting differences between versions do not
// break identity.
func (p *Path) Signature() string {
	if memo := p.sig.Load(); memo != nil {
		return *memo
	}
	var sb strings.Builder
	sb.WriteString(p.Source.Key())
	sb.WriteString(" => ")
	for _, n := range p.Nodes {
		sb.WriteString(n.Fn.Name)
		sb.WriteByte('|')
		sb.WriteString(NormalizedStmtString(n))
		sb.WriteString(" -> ")
	}
	sb.WriteString(p.Sink.Key())
	str := sb.String()
	p.sig.Store(&str)
	return str
}

// NormalizedStmtString renders a statement with lowering temporaries
// erased; the spelling is memoized on the statement itself (ir.Stmt
// NormString) so every path crossing it shares one rendering.
func NormalizedStmtString(s *ir.Stmt) string {
	return s.NormString()
}

// Psi computes (and caches) the path condition Ψ(p): the conjunction of
// the control-dependence guards of every statement on the path, with
// symbols qualified per function (quasi-path-sensitive, Def. 6.2).
func (p *Path) Psi(g *pdg.Graph) solver.Formula {
	p.psiMu.Lock()
	defer p.psiMu.Unlock()
	if p.psiReady {
		return p.psi
	}
	var parts []solver.Formula
	seen := make(map[*ir.Stmt]bool)
	for _, n := range p.Nodes {
		if seen[n] {
			continue
		}
		seen[n] = true
		parts = append(parts, g.PathConditionWith(n, pdg.QualifiedLeaf(n.Fn)))
	}
	p.psi = solver.Simplify(solver.MkAnd(parts...))
	p.psiReady = true
	return p.psi
}

// OrderOfSink returns Ω of the sink statement within its function.
func (p *Path) OrderOfSink(g *pdg.Graph) int {
	return g.Order(p.Sink.Stmt)
}

// String renders the path with line numbers for bug reports.
func (p *Path) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s", p.Source)
	for _, n := range p.Nodes {
		fmt.Fprintf(&sb, "\n  -> [%s:%d] %s", n.Fn.Name, n.Line, n)
	}
	fmt.Fprintf(&sb, "\n  => %s", p.Sink)
	return sb.String()
}

// Contains reports whether the path visits stmt.
func (p *Path) Contains(stmt *ir.Stmt) bool {
	for _, n := range p.Nodes {
		if n == stmt {
			return true
		}
	}
	return false
}

// DedupePaths removes signature duplicates, preserving order.
func DedupePaths(paths []*Path) []*Path {
	seen := make(map[string]bool, len(paths))
	var out []*Path
	for _, p := range paths {
		sig := p.Signature()
		if !seen[sig] {
			seen[sig] = true
			out = append(out, p)
		}
	}
	return out
}
