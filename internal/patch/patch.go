// Package patch models security patches as (pre, post) source-file pairs,
// computes changed-line sets via an LCS diff, and links both versions into
// analyzable programs. Patch descriptions are carried as metadata only —
// SEAL's input is the code change alone (paper §5: "patch descriptions are
// excluded").
package patch

import (
	"fmt"
	"sort"
	"strings"

	"seal/internal/cir"
	"seal/internal/ir"
)

// Patch is one security patch: the pre- and post-patch versions of the
// affected translation units (plus any unchanged context files needed to
// link the program).
type Patch struct {
	ID          string
	Description string            // metadata only, never analyzed
	Pre         map[string]string // file name -> source
	Post        map[string]string
	// Tags carries generator ground truth ("bug-kind", …) for evaluation.
	Tags map[string]string
}

// Analyzed is a patch with both program versions linked and the changed
// line sets computed.
type Analyzed struct {
	Patch    *Patch
	PreProg  *ir.Program
	PostProg *ir.Program
	// PreChanged / PostChanged: file -> set of changed line numbers.
	PreChanged  map[string]map[int]bool
	PostChanged map[string]map[int]bool
}

// Analyze parses both versions and computes the line-level diff.
func (p *Patch) Analyze() (*Analyzed, error) {
	a := &Analyzed{
		Patch:       p,
		PreChanged:  make(map[string]map[int]bool),
		PostChanged: make(map[string]map[int]bool),
	}
	var err error
	a.PreProg, err = parseAll(p.Pre)
	if err != nil {
		return nil, fmt.Errorf("patch %s pre: %w", p.ID, err)
	}
	a.PostProg, err = parseAll(p.Post)
	if err != nil {
		return nil, fmt.Errorf("patch %s post: %w", p.ID, err)
	}
	files := make(map[string]bool)
	for f := range p.Pre {
		files[f] = true
	}
	for f := range p.Post {
		files[f] = true
	}
	for f := range files {
		preLines := splitLines(p.Pre[f])
		postLines := splitLines(p.Post[f])
		cPre, cPost := DiffLines(preLines, postLines)
		if len(cPre) > 0 {
			a.PreChanged[f] = cPre
		}
		if len(cPost) > 0 {
			a.PostChanged[f] = cPost
		}
	}
	return a, nil
}

func parseAll(files map[string]string) (*ir.Program, error) {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	var parsed []*cir.File
	for _, n := range names {
		f, err := cir.ParseFile(n, files[n])
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	return ir.NewProgram(parsed...)
}

func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// DiffLines computes the changed (non-LCS) line numbers of both sides
// (1-based).
func DiffLines(pre, post []string) (changedPre, changedPost map[int]bool) {
	n, m := len(pre), len(post)
	// DP LCS table.
	dp := make([][]int32, n+1)
	for i := range dp {
		dp[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if strings.TrimSpace(pre[i]) == strings.TrimSpace(post[j]) {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	changedPre = make(map[int]bool)
	changedPost = make(map[int]bool)
	i, j := 0, 0
	for i < n && j < m {
		if strings.TrimSpace(pre[i]) == strings.TrimSpace(post[j]) {
			i++
			j++
		} else if dp[i+1][j] >= dp[i][j+1] {
			changedPre[i+1] = true
			i++
		} else {
			changedPost[j+1] = true
			j++
		}
	}
	for ; i < n; i++ {
		changedPre[i+1] = true
	}
	for ; j < m; j++ {
		changedPost[j+1] = true
	}
	// Blank-only changes are noise.
	for ln := range changedPre {
		if strings.TrimSpace(pre[ln-1]) == "" {
			delete(changedPre, ln)
		}
	}
	for ln := range changedPost {
		if strings.TrimSpace(post[ln-1]) == "" {
			delete(changedPost, ln)
		}
	}
	return changedPre, changedPost
}

// Side selects the pre- or post-patch program.
type Side int

// Sides.
const (
	PreSide Side = iota
	PostSide
)

// Prog returns the program of the given side.
func (a *Analyzed) Prog(side Side) *ir.Program {
	if side == PreSide {
		return a.PreProg
	}
	return a.PostProg
}

// changed returns the changed-line sets of the given side.
func (a *Analyzed) changed(side Side) map[string]map[int]bool {
	if side == PreSide {
		return a.PreChanged
	}
	return a.PostChanged
}

// ChangedStmts returns the IR statements on changed lines of the given
// side (the primary slicing criteria, paper §6.2.1 bullet 1).
func (a *Analyzed) ChangedStmts(side Side) []*ir.Stmt {
	prog := a.Prog(side)
	changed := a.changed(side)
	var out []*ir.Stmt
	for _, fn := range prog.FuncList {
		lines := changed[fn.File]
		if len(lines) == 0 {
			continue
		}
		for _, s := range fn.Stmts() {
			if lines[s.Line] {
				out = append(out, s)
			}
		}
	}
	return out
}

// PatchedFuncs returns the functions containing changed lines on the given
// side.
func (a *Analyzed) PatchedFuncs(side Side) []*ir.Func {
	seen := make(map[*ir.Func]bool)
	var out []*ir.Func
	for _, s := range a.ChangedStmts(side) {
		if !seen[s.Fn] {
			seen[s.Fn] = true
			out = append(out, s.Fn)
		}
	}
	return out
}
