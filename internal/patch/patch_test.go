package patch

import (
	"testing"
	"testing/quick"

	"seal/internal/cir"
	"seal/internal/ir"
)

func TestDiffLinesBasic(t *testing.T) {
	pre := []string{"a", "b", "c"}
	post := []string{"a", "x", "c"}
	cPre, cPost := DiffLines(pre, post)
	if !cPre[2] || len(cPre) != 1 {
		t.Errorf("changedPre = %v, want {2}", cPre)
	}
	if !cPost[2] || len(cPost) != 1 {
		t.Errorf("changedPost = %v, want {2}", cPost)
	}
}

func TestDiffLinesInsertion(t *testing.T) {
	pre := []string{"a", "b"}
	post := []string{"a", "new1", "new2", "b"}
	cPre, cPost := DiffLines(pre, post)
	if len(cPre) != 0 {
		t.Errorf("changedPre = %v, want empty", cPre)
	}
	if !cPost[2] || !cPost[3] || len(cPost) != 2 {
		t.Errorf("changedPost = %v, want {2,3}", cPost)
	}
}

func TestDiffLinesMove(t *testing.T) {
	// Fig. 5: a statement moved later in the file shows up as one removed
	// and one added line.
	pre := []string{"f(", "put();", "ida();", ")"}
	post := []string{"f(", "ida();", "put();", ")"}
	cPre, cPost := DiffLines(pre, post)
	if len(cPre) != 1 || len(cPost) != 1 {
		t.Errorf("move diff: pre=%v post=%v, want one change each", cPre, cPost)
	}
}

func TestDiffLinesIdentical(t *testing.T) {
	lines := []string{"a", "b", "c"}
	cPre, cPost := DiffLines(lines, lines)
	if len(cPre)+len(cPost) != 0 {
		t.Errorf("identical inputs diff: %v %v", cPre, cPost)
	}
}

// Property: every changed line index is within bounds and LCS symmetry
// holds (diffing X against X yields nothing).
func TestDiffLinesProperties(t *testing.T) {
	f := func(a, b []uint8) bool {
		mk := func(xs []uint8) []string {
			out := make([]string, len(xs))
			for i, x := range xs {
				out[i] = string(rune('a' + x%4))
			}
			return out
		}
		pre, post := mk(a), mk(b)
		cPre, cPost := DiffLines(pre, post)
		for ln := range cPre {
			if ln < 1 || ln > len(pre) {
				return false
			}
		}
		for ln := range cPost {
			if ln < 1 || ln > len(post) {
				return false
			}
		}
		selfPre, selfPost := DiffLines(pre, pre)
		return len(selfPre) == 0 && len(selfPost) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAnalyzeFig3(t *testing.T) {
	p := &Patch{
		ID:   "fig3",
		Pre:  map[string]string{"cx23885.c": cir.Fig3PreSource},
		Post: map[string]string{"cx23885.c": cir.Fig3Source},
	}
	a, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	preStmts := a.ChangedStmts(PreSide)
	postStmts := a.ChangedStmts(PostSide)
	if len(preStmts) == 0 || len(postStmts) == 0 {
		t.Fatalf("changed stmts: pre=%d post=%d", len(preStmts), len(postStmts))
	}
	// All changed statements are inside buffer_prepare.
	for _, s := range append(preStmts, postStmts...) {
		if s.Fn.Name != "buffer_prepare" {
			t.Errorf("changed stmt outside buffer_prepare: %s in %s", s, s.Fn.Name)
		}
	}
	fns := a.PatchedFuncs(PostSide)
	if len(fns) != 1 || fns[0].Name != "buffer_prepare" {
		t.Errorf("patched funcs: %v", fns)
	}
}

func TestAnalyzeFig5MoveCriteria(t *testing.T) {
	p := &Patch{
		ID:   "fig5",
		Pre:  map[string]string{"telem.c": cir.Fig5PreSource},
		Post: map[string]string{"telem.c": cir.Fig5PostSource},
	}
	a, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	// The moved put_device call must appear as changed on both sides.
	hasPut := func(stmts []*ir.Stmt) bool {
		for _, s := range stmts {
			if s.IsCallTo("put_device") {
				return true
			}
		}
		return false
	}
	if !hasPut(a.ChangedStmts(PreSide)) {
		t.Error("pre-side changed stmts missing put_device")
	}
	if !hasPut(a.ChangedStmts(PostSide)) {
		t.Error("post-side changed stmts missing put_device")
	}
}

func TestAnalyzeNoChange(t *testing.T) {
	p := &Patch{
		ID:   "noop",
		Pre:  map[string]string{"a.c": "int f(void) { return 0; }"},
		Post: map[string]string{"a.c": "int f(void) { return 0; }"},
	}
	a, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.ChangedStmts(PreSide))+len(a.ChangedStmts(PostSide)) != 0 {
		t.Error("no-op patch should have no changed statements")
	}
}
