package cfg

import (
	"testing"

	"seal/internal/cir"
	"seal/internal/ir"
)

func mustFn(t *testing.T, src, name string) *ir.Func {
	t.Helper()
	f, err := cir.ParseFile("test.c", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.NewProgram(f)
	if err != nil {
		t.Fatal(err)
	}
	fn := p.Funcs[name]
	if fn == nil {
		t.Fatalf("missing func %s", name)
	}
	return fn
}

func findCall(fn *ir.Func, callee string) *ir.Stmt {
	for _, s := range fn.Stmts() {
		if s.IsCallTo(callee) {
			return s
		}
	}
	return nil
}

func findReturnWithVal(fn *ir.Func, val int64) *ir.Stmt {
	for _, s := range fn.Stmts() {
		if s.Kind == ir.StReturn {
			if lit, ok := s.X.(*cir.IntLit); ok && lit.Val == val {
				return s
			}
		}
	}
	return nil
}

const ifSrc = `
void work(int x);
void cleanup(int x);
int f(int x) {
	if (x > 0) {
		work(x);
	} else {
		cleanup(x);
	}
	return 0;
}`

func TestControlDepIfElse(t *testing.T) {
	fn := mustFn(t, ifSrc, "f")
	in := Analyze(fn)

	workCall := findCall(fn, "work")
	cleanCall := findCall(fn, "cleanup")
	ret := findReturnWithVal(fn, 0)

	wd := in.StmtDeps(workCall)
	if len(wd) != 1 {
		t.Fatalf("work deps: %+v", wd)
	}
	if wd[0].Branch.Kind != ir.StBranch || wd[0].EdgeIdx != 0 {
		t.Errorf("work dep edge: %+v", wd[0])
	}
	cd := in.StmtDeps(cleanCall)
	if len(cd) != 1 || cd[0].EdgeIdx != 1 {
		t.Errorf("cleanup dep edge: %+v", cd)
	}
	// The join-point return depends on neither edge.
	if deps := in.StmtDeps(ret); len(deps) != 0 {
		t.Errorf("return deps: %+v", deps)
	}
}

func TestControlDepNested(t *testing.T) {
	fn := mustFn(t, `
void inner(int x);
int f(int a, int b) {
	if (a > 0) {
		if (b > 0) {
			inner(a);
		}
	}
	return 0;
}`, "f")
	in := Analyze(fn)
	call := findCall(fn, "inner")
	deps := in.StmtDeps(call)
	if len(deps) != 2 {
		t.Fatalf("nested deps = %d, want 2: %+v", len(deps), deps)
	}
}

func TestControlDepEarlyReturnGuard(t *testing.T) {
	// The kernel error-handling idiom: `if (err) return err;` makes the
	// rest of the function control-dependent on the false edge.
	fn := mustFn(t, `
void work(int x);
int f(int err) {
	if (err) {
		return err;
	}
	work(err);
	return 0;
}`, "f")
	in := Analyze(fn)
	call := findCall(fn, "work")
	deps := in.StmtDeps(call)
	if len(deps) != 1 {
		t.Fatalf("work deps = %+v, want dependence on the guard", deps)
	}
	if deps[0].EdgeIdx != 1 {
		t.Errorf("work should depend on the FALSE edge of the guard, got edge %d", deps[0].EdgeIdx)
	}
}

func TestOrderLinear(t *testing.T) {
	fn := mustFn(t, `
void a1(void);
void a2(void);
void a3(void);
int f(void) {
	a1();
	a2();
	a3();
	return 0;
}`, "f")
	in := Analyze(fn)
	s1, s2, s3 := findCall(fn, "a1"), findCall(fn, "a2"), findCall(fn, "a3")
	if !in.ExecutedBefore(s1, s2) || !in.ExecutedBefore(s2, s3) {
		t.Errorf("linear order broken: %d %d %d", in.Order[s1], in.Order[s2], in.Order[s3])
	}
	if !in.OrderComparable(s1, s3) {
		t.Error("s1 and s3 should be comparable")
	}
	if !in.Reaches(s1, s3) || in.Reaches(s3, s1) {
		t.Error("reachability should be asymmetric in straight-line code")
	}
}

func TestOrderBranchesIncomparable(t *testing.T) {
	fn := mustFn(t, ifSrc, "f")
	in := Analyze(fn)
	workCall := findCall(fn, "work")
	cleanCall := findCall(fn, "cleanup")
	if in.OrderComparable(workCall, cleanCall) {
		t.Error("statements on exclusive branches must not be order-comparable")
	}
}

func TestOrderLoopBackEdge(t *testing.T) {
	fn := mustFn(t, `
void body(int i);
int f(int n) {
	int i;
	for (i = 0; i < n; i++) {
		body(i);
	}
	return 0;
}`, "f")
	in := Analyze(fn)
	call := findCall(fn, "body")
	ret := findReturnWithVal(fn, 0)
	if !in.ExecutedBefore(call, ret) {
		t.Error("loop body should be ordered before the post-loop return")
	}
	// Back edges must be marked somewhere in the CFG.
	var backSeen bool
	for _, b := range fn.Blocks {
		for i := range b.Succs {
			if in.IsBackEdge(b, i) {
				backSeen = true
			}
		}
	}
	if !backSeen {
		t.Error("no back edge marked in loop CFG")
	}
}

func TestPostDomChain(t *testing.T) {
	fn := mustFn(t, ifSrc, "f")
	in := Analyze(fn)
	// Every block except exit must have an immediate post-dominator.
	for _, b := range fn.Blocks {
		if b == fn.Exit {
			continue
		}
		if in.IPostDom[b] == nil {
			t.Errorf("block b%d lacks a post-dominator", b.ID)
		}
	}
	if in.IPostDom[fn.Exit] != nil {
		t.Error("exit block must not have a post-dominator")
	}
}

func TestFig5OrderFacts(t *testing.T) {
	// In the pre-patch Fig. 5 code put_device precedes the devt read;
	// post-patch the order is reversed. This asymmetry is exactly what
	// stage-2 path comparison consumes.
	pre := mustFn(t, cir.Fig5PreSource, "telem_remove")
	post := mustFn(t, cir.Fig5PostSource, "telem_remove")
	inPre, inPost := Analyze(pre), Analyze(post)

	prePut, preIda := findCall(pre, "put_device"), findCall(pre, "ida_free")
	postPut, postIda := findCall(post, "put_device"), findCall(post, "ida_free")

	if !inPre.ExecutedBefore(prePut, preIda) {
		t.Error("pre-patch: put_device should execute before ida_free")
	}
	if !inPost.ExecutedBefore(postIda, postPut) {
		t.Error("post-patch: ida_free should execute before put_device")
	}
}

func TestSwitchControlDeps(t *testing.T) {
	fn := mustFn(t, `
void handle(int x);
int f(int size) {
	switch (size) {
	case 1:
		handle(size);
		break;
	case 2:
		return -EINVAL;
	}
	return 0;
}`, "f")
	in := Analyze(fn)
	call := findCall(fn, "handle")
	deps := in.StmtDeps(call)
	if len(deps) != 1 || deps[0].Branch.Kind != ir.StSwitch {
		t.Fatalf("handle deps: %+v", deps)
	}
}
