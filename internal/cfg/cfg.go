// Package cfg computes control-flow analyses over the IR: post-dominators,
// control dependence (the Ec edges of the PDG, paper Def. 6.1), the
// topological flow order Ω (Def. 6.2), and forward reachability used to
// decide whether two use sites are order-comparable.
package cfg

import (
	"seal/internal/ir"
)

// CtrlDep records that a statement's execution is decided by a branch
// statement taking a specific out-edge.
type CtrlDep struct {
	Branch  *ir.Stmt // the branch/switch terminator
	EdgeIdx int      // which successor edge of Branch.Blk
}

// Info holds the control-flow facts of one function.
type Info struct {
	Fn *ir.Func

	// IPostDom maps each block to its immediate post-dominator (nil for
	// the exit block and for blocks that cannot reach exit).
	IPostDom map[*ir.Block]*ir.Block

	// BlockDeps maps each block to the branches it is control-dependent on.
	BlockDeps map[*ir.Block][]CtrlDep

	// Order is the flow order Ω: Order[s1] < Order[s2] implies s1 executes
	// before s2 whenever both lie on one execution path (back edges are
	// ignored so the order is a DAG topological order).
	Order map[*ir.Stmt]int

	// rpo is the block order used for Ω.
	rpo []*ir.Block

	reach     map[*ir.Block]map[*ir.Block]bool // acyclic forward reachability
	transDeps map[*ir.Block][]CtrlDep          // transitive control dependence cache
	backEdges map[*ir.Block][]bool             // per-successor loop back-edge marks
}

// Analyze computes all control-flow facts for fn.
func Analyze(fn *ir.Func) *Info {
	in := &Info{
		Fn:        fn,
		IPostDom:  make(map[*ir.Block]*ir.Block),
		BlockDeps: make(map[*ir.Block][]CtrlDep),
		Order:     make(map[*ir.Stmt]int),
	}
	in.markBackEdges()
	in.computeRPO()
	in.computeOrder()
	in.computePostDom()
	in.computeControlDeps()
	in.computeReach()
	in.computeTransDeps()
	return in
}

// computeTransDeps fills the transitive control-dependence cache for every
// block, in block order, so that an Info is immutable once Analyze returns
// and StmtDeps is a pure read (safe for concurrent detectors sharing one
// PDG).
func (in *Info) computeTransDeps() {
	in.transDeps = make(map[*ir.Block][]CtrlDep, len(in.Fn.Blocks))
	for _, b := range in.Fn.Blocks {
		in.transitiveDeps(b, make(map[*ir.Block]bool))
	}
}

// markBackEdges records loop back edges via DFS. Back-edge facts live in
// the Info (not on the shared IR blocks) so that independent analyses of
// the same program — e.g. parallel detectors — never write shared state.
func (in *Info) markBackEdges() {
	in.backEdges = make(map[*ir.Block][]bool, len(in.Fn.Blocks))
	state := make(map[*ir.Block]int) // 0 unvisited, 1 on stack, 2 done
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		state[b] = 1
		marks := make([]bool, len(b.Succs))
		in.backEdges[b] = marks
		for i, s := range b.Succs {
			switch state[s] {
			case 0:
				dfs(s)
			case 1:
				marks[i] = true
			}
		}
		state[b] = 2
	}
	if in.Fn.Entry != nil {
		dfs(in.Fn.Entry)
	}
	// Blocks unreachable from entry (dangling code after returns).
	for _, b := range in.Fn.Blocks {
		if state[b] == 0 {
			dfs(b)
		}
	}
}

// IsBackEdge reports whether the i-th successor edge of b closes a loop.
func (in *Info) IsBackEdge(b *ir.Block, i int) bool {
	marks := in.backEdges[b]
	return i < len(marks) && marks[i]
}

// forwardSuccs returns successors excluding back edges.
func (in *Info) forwardSuccs(b *ir.Block) []*ir.Block {
	var out []*ir.Block
	marks := in.backEdges[b]
	for i, s := range b.Succs {
		if i >= len(marks) || !marks[i] {
			out = append(out, s)
		}
	}
	return out
}

func (in *Info) computeRPO() {
	visited := make(map[*ir.Block]bool)
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		visited[b] = true
		// Visit successors in reverse so that loop bodies (the first
		// successor of a loop header) finish last and therefore precede
		// the loop exit in the resulting flow order Ω.
		succs := in.forwardSuccs(b)
		for i := len(succs) - 1; i >= 0; i-- {
			if !visited[succs[i]] {
				dfs(succs[i])
			}
		}
		post = append(post, b)
	}
	if in.Fn.Entry != nil {
		dfs(in.Fn.Entry)
	}
	for _, b := range in.Fn.Blocks {
		if !visited[b] {
			dfs(b)
		}
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	in.rpo = post
}

func (in *Info) computeOrder() {
	n := 0
	for _, b := range in.rpo {
		for _, s := range b.Stmts {
			in.Order[s] = n
			n++
		}
	}
}

// computePostDom runs the iterative dominance algorithm on the reversed CFG
// rooted at the exit block.
func (in *Info) computePostDom() {
	exit := in.Fn.Exit
	if exit == nil {
		return
	}
	// Reverse post-order of the reversed CFG.
	visited := make(map[*ir.Block]bool)
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		visited[b] = true
		for _, p := range b.Preds {
			if !visited[p] {
				dfs(p)
			}
		}
		post = append(post, b)
	}
	dfs(exit)
	order := make(map[*ir.Block]int, len(post))
	for i, b := range post {
		order[b] = i // exit gets the largest index after reversal below
	}
	rpo := make([]*ir.Block, len(post))
	for i := range post {
		rpo[len(post)-1-i] = post[i]
	}
	for i, b := range rpo {
		order[b] = i
	}

	ipdom := in.IPostDom
	ipdom[exit] = exit
	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for order[a] > order[b] {
				a = ipdom[a]
			}
			for order[b] > order[a] {
				b = ipdom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == exit {
				continue
			}
			var newIdom *ir.Block
			for _, s := range b.Succs {
				if ipdom[s] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = s
				} else {
					newIdom = intersect(newIdom, s)
				}
			}
			if newIdom != nil && ipdom[b] != newIdom {
				ipdom[b] = newIdom
				changed = true
			}
		}
	}
	ipdom[exit] = nil
}

// computeControlDeps derives block-level control dependence from the
// post-dominator tree (Ferrante–Ottenstein–Warren).
func (in *Info) computeControlDeps() {
	for _, b := range in.Fn.Blocks {
		term := b.Terminator()
		if term == nil || len(b.Succs) < 2 {
			continue
		}
		for i, s := range b.Succs {
			// Walk up the post-dominator tree from s until reaching
			// ipdom(b); every block on the way is control dependent on
			// (b, edge i).
			stop := in.IPostDom[b]
			v := s
			for v != nil && v != stop {
				in.BlockDeps[v] = append(in.BlockDeps[v], CtrlDep{Branch: term, EdgeIdx: i})
				next := in.IPostDom[v]
				if next == v {
					break
				}
				v = next
			}
		}
	}
}

func (in *Info) computeReach() {
	in.reach = make(map[*ir.Block]map[*ir.Block]bool, len(in.Fn.Blocks))
	// Process blocks in reverse RPO so successors are done first
	// (forward edges only — the graph is a DAG).
	for i := len(in.rpo) - 1; i >= 0; i-- {
		b := in.rpo[i]
		set := make(map[*ir.Block]bool)
		set[b] = true
		for _, s := range in.forwardSuccs(b) {
			for k := range in.reach[s] {
				set[k] = true
			}
			set[s] = true
		}
		in.reach[b] = set
	}
}

// StmtDeps returns the transitive control dependences of a statement: every
// branch edge that governs its execution. Path conditions Ψ are the
// conjunction of these edges' conditions (quasi-path-sensitivity, Def. 6.2).
func (in *Info) StmtDeps(s *ir.Stmt) []CtrlDep {
	return in.transDeps[s.Blk]
}

func (in *Info) transitiveDeps(b *ir.Block, onPath map[*ir.Block]bool) []CtrlDep {
	if deps, ok := in.transDeps[b]; ok {
		return deps
	}
	if onPath[b] {
		return nil // cycle guard (irreducible dependence through loops)
	}
	onPath[b] = true
	defer delete(onPath, b)
	seen := make(map[*ir.Stmt]map[int]bool)
	var out []CtrlDep
	add := func(d CtrlDep) {
		if seen[d.Branch] == nil {
			seen[d.Branch] = make(map[int]bool)
		}
		if !seen[d.Branch][d.EdgeIdx] {
			seen[d.Branch][d.EdgeIdx] = true
			out = append(out, d)
		}
	}
	for _, d := range in.BlockDeps[b] {
		add(d)
		for _, up := range in.transitiveDeps(d.Branch.Blk, onPath) {
			add(up)
		}
	}
	in.transDeps[b] = out
	return out
}

// Reaches reports whether execution can flow from a to b along forward
// edges (a strictly before b, or a == b with a preceding b in the block).
func (in *Info) Reaches(a, b *ir.Stmt) bool {
	if a.Blk == b.Blk {
		return in.Order[a] < in.Order[b]
	}
	return in.reach[a.Blk][b.Blk]
}

// OrderComparable reports whether two statements lie on a common execution
// path, i.e. one can flow to the other ("the orders of use sites are
// comparable", paper §5 step 2).
func (in *Info) OrderComparable(a, b *ir.Stmt) bool {
	return in.Reaches(a, b) || in.Reaches(b, a)
}

// ExecutedBefore reports whether a must come before b in the flow order
// when both execute (Ω(a) < Ω(b)).
func (in *Info) ExecutedBefore(a, b *ir.Stmt) bool {
	return in.Order[a] < in.Order[b]
}
