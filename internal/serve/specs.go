package serve

import (
	"net/http"

	"seal"
	"seal/internal/specdb"
)

// This file is the daemon's spec-database surface on a store-backed
// server (Config.SpecDB): GET /specs queries the active store snapshot
// with the specdb query language, POST /specs edits the database through
// the store's copy-on-write commit and publishes the result as a new
// epoch. Both answer 409 (no-spec-store) on a daemon serving a flat spec
// file, where the database is immutable for the process lifetime.

// SpecsResponse answers GET /specs: the matching specs (as a *seal.SpecDB
// so conditions serialize in tree form) pinned to the epoch and store
// sequence they were read from.
type SpecsResponse struct {
	Epoch    int64        `json:"epoch"`
	StoreSeq uint64       `json:"store_seq"`
	Query    string       `json:"query,omitempty"`
	Total    int          `json:"total"`
	Matched  int          `json:"matched"`
	DB       *seal.SpecDB `json:"db"`
}

// SpecsEditRequest edits the spec database: Upsert inserts or replaces
// specs by key, Delete removes specs by key. Upserts apply before
// deletes; the whole edit group-commits as one WAL batch folded into a
// single store transaction, and publishes once.
type SpecsEditRequest struct {
	Upsert *seal.SpecDB `json:"upsert,omitempty"`
	Delete []string     `json:"delete,omitempty"`
}

// SpecsEditResponse reports the published epoch and what the edit did.
type SpecsEditResponse struct {
	Epoch     int64  `json:"epoch"`
	StoreSeq  uint64 `json:"store_seq"`
	SpecsHash string `json:"specs_hash"`
	Specs     int    `json:"specs"`
	Created   int    `json:"created"`
	Replaced  int    `json:"replaced"`
	Deleted   int    `json:"deleted"`
}

func (s *Server) handleSpecs(w http.ResponseWriter, r *http.Request) {
	if s.specStore == nil {
		s.writeError(w, http.StatusConflict, "no-spec-store",
			"serve: daemon is not backed by a spec store (-spec-db)", nil)
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.handleSpecsQuery(w, r)
	case http.MethodPost:
		s.handleSpecsEdit(w, r)
	default:
		s.writeError(w, http.StatusMethodNotAllowed, "method-not-allowed",
			"/specs requires GET or POST", nil)
	}
}

// handleSpecsQuery answers GET /specs?q=... over the published snapshot's
// store sequence — never a newer store state a concurrent edit may have
// committed but not yet published.
func (s *Server) handleSpecsQuery(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("seal_serve_spec_queries_total", "spec query requests").Add(1)
	qs := r.URL.Query().Get("q")
	q, err := specdb.ParseQuery(qs)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad-query", err.Error(), nil)
		return
	}
	snap := s.store.Current() // pin: epoch and store seq move together
	matched := make([]*seal.Spec, 0, len(snap.Specs))
	for _, sp := range snap.Specs {
		if q.Match(sp) {
			matched = append(matched, sp)
		}
	}
	writeJSON(w, http.StatusOK, SpecsResponse{
		Epoch:    snap.Epoch,
		StoreSeq: snap.StoreSeq,
		Query:    qs,
		Total:    len(snap.Specs),
		Matched:  len(matched),
		DB:       &seal.SpecDB{Specs: matched},
	})
}

// handleSpecsEdit applies an edit to the spec store and publishes the
// resulting database as a new epoch, holding the snapshot writer lock
// across both so readers see the commit and the publication as one step.
func (s *Server) handleSpecsEdit(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("seal_serve_spec_edits_total", "spec edit requests").Add(1)
	var req SpecsEditRequest
	if st, code, msg := decodeJSON(r, &req); st != 0 {
		s.writeError(w, st, code, msg, nil)
		return
	}
	nUpserts := 0
	if req.Upsert != nil {
		nUpserts = len(req.Upsert.Specs)
	}
	if nUpserts == 0 && len(req.Delete) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad-request", "specs: nothing to apply", nil)
		return
	}
	var created, replaced, deleted int
	snap, err := s.store.EditSpecs(func() ([]*seal.Spec, uint64, error) {
		b := s.specStore.Batch()
		if req.Upsert != nil {
			for _, sp := range req.Upsert.Specs {
				isNew, err := b.UpsertSpec(sp)
				if err != nil {
					b.Discard()
					return nil, 0, err
				}
				if isNew {
					created++
				} else {
					replaced++
				}
			}
		}
		for _, key := range req.Delete {
			ok, err := b.DeleteSpec(key)
			if err != nil {
				b.Discard()
				return nil, 0, err
			}
			if ok {
				deleted++
			}
		}
		if err := b.Flush(); err != nil {
			return nil, 0, err
		}
		ssnap := s.specStore.Current()
		specs, err := ssnap.Specs()
		return specs, ssnap.Seq(), err
	})
	if err != nil {
		// A discarded batch leaves the store exactly as the last fold
		// committed it — the edit is all-or-nothing up to any group-commit
		// the policy tripped mid-batch. The published epoch is unchanged,
		// and the next successful edit republishes everything.
		s.writeError(w, http.StatusUnprocessableEntity, "edit-failed", err.Error(), nil)
		return
	}
	s.reg.Counter("seal_serve_publishes_total", "snapshot publications").Add(1)
	writeJSON(w, http.StatusOK, SpecsEditResponse{
		Epoch:     snap.Epoch,
		StoreSeq:  snap.StoreSeq,
		SpecsHash: snap.SpecsHash,
		Specs:     len(snap.Specs),
		Created:   created,
		Replaced:  replaced,
		Deleted:   deleted,
	})
}
