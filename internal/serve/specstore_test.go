package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"testing"

	"seal"
	"seal/internal/spec"
)

// newStoreBackedServer imports the shared corpus specs into a fresh paged
// store and builds a server over it.
func newStoreBackedServer(t *testing.T, cfg Config) (*Server, *httptest.Server, string) {
	t.Helper()
	files, specs := corpus(t)
	storePath := filepath.Join(t.TempDir(), "specs.specdb")
	if _, _, err := seal.ImportSpecStore(storePath, &spec.DB{Specs: specs}); err != nil {
		t.Fatal(err)
	}
	cfg.SpecDB = storePath
	srv, err := New(cfg, files, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, storePath
}

// TestServeSpecStoreDetectIdentity pins the substrate-swap contract at
// the daemon surface: a store-backed /detect must answer the same report,
// bug records, and specs hash as a flat-file daemon over the same corpus,
// while additionally reporting the store sequence and group stats.
func TestServeSpecStoreDetectIdentity(t *testing.T) {
	_, flatTS := newTestServer(t, Config{Workers: 1})
	_, storeTS, _ := newStoreBackedServer(t, Config{Workers: 1})

	var flat, stored DetectResponse
	if got := do(t, flatTS, "POST", "/detect", `{"report":true}`, &flat); got != http.StatusOK {
		t.Fatalf("flat detect: status %d", got)
	}
	if got := do(t, storeTS, "POST", "/detect", `{"report":true}`, &stored); got != http.StatusOK {
		t.Fatalf("store detect: status %d", got)
	}
	if stored.Report != flat.Report {
		t.Errorf("store-backed report differs:\nstore:\n%s\nflat:\n%s", stored.Report, flat.Report)
	}
	if stored.SpecsHash != flat.SpecsHash {
		t.Errorf("specs hash: store %s, flat %s", stored.SpecsHash, flat.SpecsHash)
	}
	sb, _ := json.Marshal(stored.Bugs)
	fb, _ := json.Marshal(flat.Bugs)
	if string(sb) != string(fb) {
		t.Errorf("store-backed bug records differ:\nstore: %s\nflat:  %s", sb, fb)
	}
	if stored.StoreSeq == 0 {
		t.Error("store-backed response has no store_seq")
	}
	if stored.Grouped == nil || stored.Grouped.Groups == 0 {
		t.Fatalf("store-backed response has no grouped stats: %+v", stored.Grouped)
	}
	if flat.Grouped != nil || flat.StoreSeq != 0 {
		t.Errorf("flat response unexpectedly store-shaped: seq=%d grouped=%+v", flat.StoreSeq, flat.Grouped)
	}
}

// TestServeSpecsEndpoint drives the /specs surface end to end: query the
// whole database and one scope, edit a spec in place, and verify the new
// epoch serves the edit incrementally — exactly one region group
// recomputes, every other group replays from the resident group memo —
// with the report still matching a flat daemon over the edited corpus.
func TestServeSpecsEndpoint(t *testing.T) {
	files, specs := corpus(t)
	srv, ts, _ := newStoreBackedServer(t, Config{Workers: 1})

	// Flat-file daemons refuse the endpoint with a structured 409.
	_, flatTS := newTestServer(t, Config{Workers: 1})
	var env errorEnvelope
	if got := do(t, flatTS, "GET", "/specs", "", &env); got != http.StatusConflict || env.Error.Code != "no-spec-store" {
		t.Fatalf("flat /specs: status %d code %q, want 409 no-spec-store", got, env.Error.Code)
	}

	var all SpecsResponse
	if got := do(t, ts, "GET", "/specs", "", &all); got != http.StatusOK {
		t.Fatalf("GET /specs: status %d", got)
	}
	if all.Total != len(specs) || all.Matched != len(specs) || len(all.DB.Specs) != len(specs) {
		t.Fatalf("GET /specs: total=%d matched=%d len=%d, want %d each",
			all.Total, all.Matched, len(all.DB.Specs), len(specs))
	}

	scope := specs[0].Scope()
	var one SpecsResponse
	if got := do(t, ts, "GET", "/specs?q="+url.QueryEscape("scope="+scope), "", &one); got != http.StatusOK {
		t.Fatalf("GET /specs?q: status %d", got)
	}
	if one.Matched == 0 || one.Matched == all.Matched {
		t.Fatalf("scope query matched %d of %d; want a proper subset", one.Matched, all.Matched)
	}
	for _, sp := range one.DB.Specs {
		if sp.Scope() != scope {
			t.Fatalf("scope query returned %s, want %s", sp.Scope(), scope)
		}
	}

	// Warm the group memo, then edit one spec in place.
	var cold DetectResponse
	if got := do(t, ts, "POST", "/detect", "{}", &cold); got != http.StatusOK {
		t.Fatalf("cold detect: status %d", got)
	}
	edited := *specs[0]
	edited.OriginPatch = edited.OriginPatch + "-edited"
	body, err := json.Marshal(SpecsEditRequest{Upsert: &seal.SpecDB{Specs: []*spec.Spec{&edited}}})
	if err != nil {
		t.Fatal(err)
	}
	var er SpecsEditResponse
	if got := do(t, ts, "POST", "/specs", string(body), &er); got != http.StatusOK {
		t.Fatalf("POST /specs: status %d", got)
	}
	if er.Replaced != 1 || er.Created != 0 || er.Deleted != 0 {
		t.Fatalf("edit: created=%d replaced=%d deleted=%d, want 0/1/0", er.Created, er.Replaced, er.Deleted)
	}
	if er.Epoch <= cold.Epoch || er.StoreSeq <= cold.StoreSeq {
		t.Fatalf("edit did not advance: epoch %d->%d, seq %d->%d",
			cold.Epoch, er.Epoch, cold.StoreSeq, er.StoreSeq)
	}

	// The edited epoch detects incrementally and stays byte-identical to a
	// flat daemon loaded with the edited corpus.
	var warm DetectResponse
	if got := do(t, ts, "POST", "/detect", `{"report":true}`, &warm); got != http.StatusOK {
		t.Fatalf("warm detect: status %d", got)
	}
	if warm.Grouped == nil || warm.Grouped.Computed != 1 || warm.Grouped.Warm != warm.Grouped.Groups-1 {
		t.Fatalf("edit recompute not incremental: %+v", warm.Grouped)
	}
	editedSpecs := make([]*spec.Spec, len(specs))
	copy(editedSpecs, specs)
	editedSpecs[0] = &edited
	flatSrv, err := New(Config{Workers: 1}, files, editedSpecs)
	if err != nil {
		t.Fatal(err)
	}
	flatEdited := httptest.NewServer(flatSrv.Handler())
	defer flatEdited.Close()
	var ref DetectResponse
	if got := do(t, flatEdited, "POST", "/detect", `{"report":true}`, &ref); got != http.StatusOK {
		t.Fatalf("flat edited detect: status %d", got)
	}
	if warm.Report != ref.Report {
		t.Errorf("edited store-backed report differs from flat reference:\nstore:\n%s\nflat:\n%s",
			warm.Report, ref.Report)
	}
	if warm.SpecsHash != ref.SpecsHash {
		t.Errorf("edited specs hash: store %s, flat %s", warm.SpecsHash, ref.SpecsHash)
	}

	// Delete the edited spec; the database shrinks by one and publishes.
	body, err = json.Marshal(SpecsEditRequest{Delete: []string{edited.Key(), "no-such-key"}})
	if err != nil {
		t.Fatal(err)
	}
	var dr SpecsEditResponse
	if got := do(t, ts, "POST", "/specs", string(body), &dr); got != http.StatusOK {
		t.Fatalf("POST /specs delete: status %d", got)
	}
	if dr.Deleted != 1 || dr.Specs != len(specs)-1 {
		t.Fatalf("delete: deleted=%d specs=%d, want 1 and %d", dr.Deleted, dr.Specs, len(specs)-1)
	}
	if cur := srv.Store().Current(); len(cur.Specs) != len(specs)-1 {
		t.Fatalf("published snapshot holds %d specs, want %d", len(cur.Specs), len(specs)-1)
	}

	// An empty edit is rejected before touching the store.
	if got := do(t, ts, "POST", "/specs", "{}", &env); got != http.StatusBadRequest {
		t.Fatalf("empty edit: status %d, want 400", got)
	}
}
