package serve

// Snapshot-isolation race test: many concurrent detect clients while a
// writer publishes successive edits. Run under `go test -race` (the CI
// race job covers this package); the assertions here catch torn reads
// even without the race detector — every response must be internally
// consistent with exactly one published epoch.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"

	"seal"
)

// TestServeConcurrentSnapshotPublish races N detect readers against a
// single writer stepping the tree through a sequence of edits. Contract:
//
//   - every response carries an (epoch, target hash) pair matching one
//     published snapshot exactly — no response mixes state from two epochs;
//   - epochs observed by one client never go backward;
//   - every request gets a 200 with a well-formed body (no dropped
//     connections while the writer publishes).
func TestServeConcurrentSnapshotPublish(t *testing.T) {
	files, specs := corpus(t)
	srv, err := New(Config{Workers: 2}, files, specs)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Precompute every variant the writer will publish and its content
	// hash. Edit k appends k newlines to the first file: the function set
	// never changes, so each publish exercises the region-carry path.
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	const edits = 6
	wantHash := map[int64]string{1: seal.TargetHash(files)}
	variants := make([]map[string]string, edits)
	prev := files
	for k := 0; k < edits; k++ {
		v := make(map[string]string, len(prev))
		for n, src := range prev {
			v[n] = src
		}
		v[names[0]] += "\n"
		variants[k] = v
		wantHash[int64(k+2)] = seal.TargetHash(v)
		prev = v
	}

	const readers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, readers+1)

	// Writer: publish each variant through the HTTP surface.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < edits; k++ {
			body, _ := json.Marshal(EditRequest{Files: map[string]string{names[0]: variants[k][names[0]]}})
			resp, err := ts.Client().Post(ts.URL+"/edit", "application/json", bytes.NewReader(body))
			if err != nil {
				errCh <- fmt.Errorf("writer edit %d: %v", k, err)
				return
			}
			var er EditResponse
			err = json.NewDecoder(resp.Body).Decode(&er)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				errCh <- fmt.Errorf("writer edit %d: status %d err %v", k, resp.StatusCode, err)
				return
			}
			if er.Epoch != int64(k+2) || er.TargetHash != wantHash[er.Epoch] {
				errCh <- fmt.Errorf("writer edit %d: epoch %d hash %s, want %d %s",
					k, er.Epoch, er.TargetHash, k+2, wantHash[int64(k+2)])
				return
			}
		}
	}()

	// Readers: hammer /detect throughout the writer's publish sequence.
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var lastEpoch int64
			for j := 0; j < 6; j++ {
				resp, err := ts.Client().Post(ts.URL+"/detect", "application/json",
					bytes.NewReader([]byte(`{"report":true}`)))
				if err != nil {
					errCh <- fmt.Errorf("reader %d: %v", id, err)
					return
				}
				var dr DetectResponse
				err = json.NewDecoder(resp.Body).Decode(&dr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("reader %d: status %d err %v", id, resp.StatusCode, err)
					return
				}
				want, ok := wantHash[dr.Epoch]
				if !ok {
					errCh <- fmt.Errorf("reader %d: response pinned to unknown epoch %d", id, dr.Epoch)
					return
				}
				if dr.TargetHash != want {
					errCh <- fmt.Errorf("reader %d: torn read: epoch %d with target %s, want %s",
						id, dr.Epoch, dr.TargetHash, want)
					return
				}
				if dr.Epoch < lastEpoch {
					errCh <- fmt.Errorf("reader %d: epoch went backward: %d after %d", id, dr.Epoch, lastEpoch)
					return
				}
				lastEpoch = dr.Epoch
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Quiesce check: the final published snapshot is the last variant.
	final := srv.Store().Current()
	if final.Epoch != edits+1 || final.TargetHash() != wantHash[edits+1] {
		t.Fatalf("final snapshot epoch %d hash %s, want %d %s",
			final.Epoch, final.TargetHash(), edits+1, wantHash[edits+1])
	}
}
