package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"seal"
	"seal/internal/faultinject"
	"seal/internal/patch"
	"seal/internal/randprog"
)

// Shared test corpus: the seed-0 generated target, with specs inferred
// from the seed-0..2 patches (one per mutation kind) so detection has
// several unit scopes to exercise.
var (
	corpusOnce  sync.Once
	corpusFiles map[string]string
	corpusSpecs []*seal.Spec
	corpusErr   error
)

func corpus(t *testing.T) (map[string]string, []*seal.Spec) {
	t.Helper()
	corpusOnce.Do(func() {
		var dbs []*seal.SpecDB
		for _, seed := range []int64{0, 1, 2} {
			c := randprog.GenPatchCase(seed)
			res, err := seal.InferSpecs([]*patch.Patch{c.Patch}, seal.Options{Validate: true})
			if err != nil {
				corpusErr = fmt.Errorf("seed %d: %w", seed, err)
				return
			}
			dbs = append(dbs, res.DB)
		}
		corpusSpecs = seal.MergeSpecDBs(dbs...).Specs
		corpusFiles = randprog.GenPatchCase(0).Target
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpusFiles, corpusSpecs
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	files, specs := corpus(t)
	srv, err := New(cfg, files, specs)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// do issues one request and decodes the JSON response into out (which may
// be nil), returning the HTTP status.
func do(t *testing.T, ts *httptest.Server, method, path, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") &&
		!(resp.StatusCode == http.StatusOK && path == "/metrics") {
		t.Fatalf("%s %s: content-type %q, want JSON", method, path, ct)
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, path, buf.String(), err)
		}
	}
	return resp.StatusCode
}

// TestServeErrorEnvelopes pins the structured error surface: every
// rejected request gets a JSON envelope with matching status and a stable
// machine-readable code — never an empty body or a dropped connection.
func TestServeErrorEnvelopes(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 1 << 10})
	cases := []struct {
		method, path, body string
		wantStatus         int
		wantCode           string
	}{
		{"GET", "/detect", "", http.StatusMethodNotAllowed, "method-not-allowed"},
		{"POST", "/stats", "", http.StatusMethodNotAllowed, "method-not-allowed"},
		{"POST", "/nope", "", http.StatusNotFound, "not-found"},
		{"POST", "/detect", "{not json", http.StatusBadRequest, "bad-request"},
		{"POST", "/detect", `{"bogus_field":1}`, http.StatusBadRequest, "bad-request"},
		{"POST", "/edit", `{}`, http.StatusBadRequest, "bad-request"},
		{"POST", "/infer", `{}`, http.StatusBadRequest, "bad-request"},
		{"POST", "/detect", `{"workers":` + strings.Repeat("1", 2<<10) + `}`,
			http.StatusRequestEntityTooLarge, "body-too-large"},
	}
	for _, c := range cases {
		var env errorEnvelope
		got := do(t, ts, c.method, c.path, c.body, &env)
		if got != c.wantStatus || env.Error.Code != c.wantCode || env.Error.Status != c.wantStatus {
			t.Errorf("%s %s: status %d code %q (body status %d), want %d %q",
				c.method, c.path, got, env.Error.Code, env.Error.Status, c.wantStatus, c.wantCode)
		}
		if env.Error.Message == "" {
			t.Errorf("%s %s: empty error message", c.method, c.path)
		}
	}
}

// TestServeRequestDeadline is the budget-exhaustion regression for wall
// clock: a request that cannot finish inside the configured deadline must
// come back as a structured 503, and the daemon must keep serving.
func TestServeRequestDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, RequestTimeout: time.Nanosecond})
	var env errorEnvelope
	if got := do(t, ts, "POST", "/detect", "{}", &env); got != http.StatusServiceUnavailable {
		t.Fatalf("deadline-bound detect: status %d, want 503", got)
	}
	if env.Error.Code != "request-deadline" {
		t.Fatalf("deadline-bound detect: code %q, want request-deadline", env.Error.Code)
	}
	// The daemon survives: state endpoints (which run no analysis) answer.
	var st StatsResponse
	if got := do(t, ts, "GET", "/stats", "", &st); got != http.StatusOK || st.Epoch != 1 {
		t.Fatalf("daemon unhealthy after deadline: status %d epoch %d", got, st.Epoch)
	}
	if got := do(t, ts, "GET", "/metrics", "", nil); got != http.StatusOK {
		t.Fatalf("metrics unhealthy after deadline: status %d", got)
	}
}

// unitScopes lists the unique detection scopes of the corpus specs — the
// unit ids fault injection targets.
func unitScopes(specs []*seal.Spec) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range specs {
		if sc := s.Scope(); !seen[sc] {
			seen[sc] = true
			out = append(out, sc)
		}
	}
	return out
}

// TestServeRunAbortEnvelope is the budget-exhaustion regression for the
// failure budget: a run aborted by MaxFailures must come back as a
// structured 422 carrying the quarantine records — and the very same
// daemon must then serve a clean, correct detection (no substrate
// poisoning from the mid-request quarantines).
func TestServeRunAbortEnvelope(t *testing.T) {
	_, specs := corpus(t)
	units := unitScopes(specs)
	if len(units) < 2 {
		t.Skipf("corpus has %d unit scopes; abort test needs 2+", len(units))
	}
	srv, ts := newTestServer(t, Config{Workers: 1})
	plan := faultinject.NewPlan()
	for _, u := range units {
		plan.Add("detect", u, faultinject.KindPanic)
	}
	faultinject.Set(plan)
	var env errorEnvelope
	got := do(t, ts, "POST", "/detect", `{"limits":{"max_failures":1}}`, &env)
	faultinject.Reset()
	if got != http.StatusUnprocessableEntity || env.Error.Code != "run-aborted" {
		t.Fatalf("aborted run: status %d code %q, want 422 run-aborted", got, env.Error.Code)
	}
	if len(env.Error.Failures) == 0 {
		t.Fatal("aborted run: envelope carries no quarantine records")
	}
	// Same daemon, faults cleared: the rerun must be clean and match a
	// detection over a completely fresh server.
	var after DetectResponse
	if got := do(t, ts, "POST", "/detect", "{}", &after); got != http.StatusOK {
		t.Fatalf("rerun after abort: status %d", got)
	}
	if len(after.Failures) != 0 || len(after.Degraded) != 0 {
		t.Fatalf("rerun after abort not clean: %d failures, %d degraded",
			len(after.Failures), len(after.Degraded))
	}
	_, ts2 := newTestServer(t, Config{Workers: 1})
	var fresh DetectResponse
	if got := do(t, ts2, "POST", "/detect", "{}", &fresh); got != http.StatusOK {
		t.Fatalf("fresh reference: status %d", got)
	}
	ja, _ := json.Marshal(after.Bugs)
	jf, _ := json.Marshal(fresh.Bugs)
	if !bytes.Equal(ja, jf) {
		t.Fatalf("post-abort rerun diverges from fresh server:\n%s\nvs\n%s", ja, jf)
	}
	_ = srv
}

// TestServeEditParseError checks writer-side fault containment: an edit
// that fails to parse is rejected with a structured 422 and the previous
// snapshot stays published, byte-for-byte.
func TestServeEditParseError(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var before DetectResponse
	if got := do(t, ts, "POST", "/detect", "{}", &before); got != http.StatusOK {
		t.Fatalf("detect: status %d", got)
	}
	var env errorEnvelope
	got := do(t, ts, "POST", "/edit",
		`{"files":{"broken.c":"int f( {{{{"}}`, &env)
	if got != http.StatusUnprocessableEntity || env.Error.Code != "parse-error" {
		t.Fatalf("broken edit: status %d code %q, want 422 parse-error", got, env.Error.Code)
	}
	var st StatsResponse
	do(t, ts, "GET", "/stats", "", &st)
	if st.Epoch != 1 || st.TargetHash != before.TargetHash {
		t.Fatalf("rejected edit moved the snapshot: epoch %d hash %s", st.Epoch, st.TargetHash)
	}
	var after DetectResponse
	if got := do(t, ts, "POST", "/detect", "{}", &after); got != http.StatusOK {
		t.Fatalf("detect after rejected edit: status %d", got)
	}
	if after.Report != before.Report || after.Epoch != before.Epoch {
		t.Fatal("rejected edit changed detection output")
	}
}

// TestServeDeleteFile exercises the deletion path of /edit: removing a
// file invalidates its functions and detection keeps working over the
// shrunken tree.
func TestServeDeleteFile(t *testing.T) {
	files, _ := corpus(t)
	if len(files) < 2 {
		t.Skip("corpus too small to delete from")
	}
	_, ts := newTestServer(t, Config{Workers: 1})
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	body, _ := json.Marshal(EditRequest{Delete: []string{names[len(names)-1]}})
	var er EditResponse
	if got := do(t, ts, "POST", "/edit", string(body), &er); got != http.StatusOK {
		t.Fatalf("delete edit: status %d", got)
	}
	if er.Epoch != 2 || er.Files != len(files)-1 {
		t.Fatalf("delete edit: epoch %d files %d, want 2 / %d", er.Epoch, er.Files, len(files)-1)
	}
	if got := do(t, ts, "POST", "/detect", "{}", &DetectResponse{}); got != http.StatusOK {
		t.Fatalf("detect after delete: status %d", got)
	}
}

// TestServeWarmRestart checks the -cache-dir composition: a new daemon
// process over the same target and cache directory answers its first
// detect request from disk — byte-identical output, nothing recomputed.
func TestServeWarmRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, CacheDir: dir}
	_, ts1 := newTestServer(t, cfg)
	var cold DetectResponse
	if got := do(t, ts1, "POST", "/detect", `{"report":true}`, &cold); got != http.StatusOK {
		t.Fatalf("cold detect: status %d", got)
	}
	// "Restart": a brand-new server over the same tree and cache dir.
	_, ts2 := newTestServer(t, cfg)
	var warm DetectResponse
	if got := do(t, ts2, "POST", "/detect", `{"report":true}`, &warm); got != http.StatusOK {
		t.Fatalf("warm detect: status %d", got)
	}
	if warm.Report != cold.Report {
		t.Fatalf("warm restart report diverged:\n%s\nvs\n%s", warm.Report, cold.Report)
	}
	jw, _ := json.Marshal(warm.Bugs)
	jc, _ := json.Marshal(cold.Bugs)
	if !bytes.Equal(jw, jc) {
		t.Fatalf("warm restart bugs diverged:\n%s\nvs\n%s", jw, jc)
	}
	// The warm request replayed: the new process's substrate never ran a
	// path enumeration, and the result is now memoized in memory.
	var st StatsResponse
	do(t, ts2, "GET", "/stats", "", &st)
	if st.Substrate.PathEnumerations != 0 {
		t.Fatalf("warm restart recomputed %d path enumerations, want 0", st.Substrate.PathEnumerations)
	}
	if st.MemoEntries != 1 {
		t.Fatalf("warm restart memo entries = %d, want 1", st.MemoEntries)
	}
}

// TestServeMetrics checks the scrape endpoint shape and the residency
// gauges it publishes.
func TestServeMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if got := do(t, ts, "POST", "/detect", "{}", nil); got != http.StatusOK {
		t.Fatalf("detect: status %d", got)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content-type %q", ct)
	}
	for _, want := range []string{
		"seal_serve_requests_total", "seal_serve_detects_total",
		"seal_serve_epoch 1", "seal_serve_memo_entries 1",
		"seal_serve_resident_pdg_funcs",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestServeMemoReplayIdentity checks the resident memo tier directly: the
// second identical request replays byte-identically (report and records)
// and adds no memo entries, at a different worker count.
func TestServeMemoReplayIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var first, second DetectResponse
	if got := do(t, ts, "POST", "/detect", `{"report":true}`, &first); got != http.StatusOK {
		t.Fatalf("first detect: status %d", got)
	}
	if got := do(t, ts, "POST", "/detect", `{"report":true,"workers":4}`, &second); got != http.StatusOK {
		t.Fatalf("second detect: status %d", got)
	}
	if first.Report != second.Report {
		t.Fatalf("memo replay report diverged:\n%s\nvs\n%s", first.Report, second.Report)
	}
	var st StatsResponse
	do(t, ts, "GET", "/stats", "", &st)
	if st.MemoEntries != 1 {
		t.Fatalf("memo entries = %d, want 1 (replay must not re-store)", st.MemoEntries)
	}
}
