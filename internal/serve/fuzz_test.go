package serve

// Native fuzz target over the daemon's HTTP surface. Run with
//
//	go test -run='^$' -fuzz=FuzzServeRequest ./internal/serve
//
// Seed corpus lives in testdata/fuzz/FuzzServeRequest/ (regenerate with
// `go run ./internal/difftest/gencorpus`).

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// fuzzSrv is one long-lived server the fuzzer hammers — like a real
// daemon, it must absorb any request sequence (including successful
// random edits mutating its snapshot) without panicking or emitting a
// malformed response.
var (
	fuzzSrvOnce sync.Once
	fuzzSrv     *Server
	fuzzSrvErr  error
)

func getFuzzServer() (*Server, error) {
	fuzzSrvOnce.Do(func() {
		files := map[string]string{
			"a.c": "int fz_helper(int x) {\n\treturn x + 1;\n}\n",
			"b.c": "int fz_helper(int x);\nint fz_entry(int x) {\n\treturn fz_helper(x);\n}\n",
		}
		fuzzSrv, fuzzSrvErr = New(Config{Workers: 1, MaxBodyBytes: 4 << 10}, files, nil)
	})
	return fuzzSrv, fuzzSrvErr
}

// FuzzServeRequest feeds arbitrary (method, path, body) triples through
// the full handler stack: request parsing, budget-limit merging, the
// file-upload path of /edit, and the error envelope machinery must never
// panic, never drop a response, and always answer with well-formed JSON
// (or Prometheus text on a successful /metrics scrape). 4xx/5xx answers
// must carry a complete structured envelope.
func FuzzServeRequest(f *testing.F) {
	f.Add("POST", "/detect", "{}")
	f.Add("POST", "/detect", `{"workers":4,"report":true,"limits":{"max_steps":10,"max_paths":1}}`)
	f.Add("POST", "/infer", `{"patches":[]}`)
	f.Add("POST", "/infer", `{"patches":[{"ID":"p","Pre":{"a.c":"int f() { return 0; }\n"},"Post":{"a.c":"int f() { return 1; }\n"}}],"publish":true}`)
	f.Add("POST", "/edit", `{"files":{"c.c":"int fz_new(void) {\n\treturn 7;\n}\n"}}`)
	f.Add("POST", "/edit", `{"files":{"c.c":"int broken( {{{"}}`)
	f.Add("POST", "/edit", `{"delete":["a.c","b.c"]}`)
	f.Add("GET", "/stats", "")
	f.Add("GET", "/metrics", "")
	f.Add("PUT", "/detect", "")
	f.Add("POST", "/unknown", "x")
	f.Add("POST", "/detect", `{"bogus":1}`)
	f.Add("", "", "{not json")
	f.Fuzz(func(t *testing.T, method, path, body string) {
		if len(body) > 64<<10 {
			t.Skip("oversized input")
		}
		srv, err := getFuzzServer()
		if err != nil {
			t.Fatalf("building fuzz server: %v", err)
		}
		req, err := http.NewRequest(method, "http://seal.invalid"+path, strings.NewReader(body))
		if err != nil {
			return // unencodable method/path: the client library rejects it first
		}
		rw := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rw, req)
		resp := rw.Result()
		if resp.StatusCode == 0 {
			t.Fatalf("%s %q: no status written", method, path)
		}
		ct := resp.Header.Get("Content-Type")
		if resp.StatusCode == http.StatusOK && strings.HasPrefix(ct, "text/plain") {
			return // /metrics scrape
		}
		if resp.StatusCode >= 300 && resp.StatusCode < 400 {
			if resp.Header.Get("Location") == "" {
				t.Fatalf("%s %q: redirect %d without Location", method, path, resp.StatusCode)
			}
			return // ServeMux path canonicalization
		}
		if !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s %q: status %d with content-type %q, want JSON", method, path, resp.StatusCode, ct)
		}
		if !json.Valid(rw.Body.Bytes()) {
			t.Fatalf("%s %q: invalid JSON response: %q", method, path, rw.Body.String())
		}
		if resp.StatusCode >= 400 {
			var env errorEnvelope
			if err := json.Unmarshal(rw.Body.Bytes(), &env); err != nil {
				t.Fatalf("%s %q: error response does not decode: %v", method, path, err)
			}
			if env.Error.Status != resp.StatusCode || env.Error.Code == "" || env.Error.Message == "" {
				t.Fatalf("%s %q: incomplete error envelope %+v for status %d",
					method, path, env.Error, resp.StatusCode)
			}
		}
	})
}
