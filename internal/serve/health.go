package serve

import "net/http"

// HealthResponse answers /healthz and /readyz probes. Liveness is
// process-level ("the event loop answers"); readiness additionally pins
// the snapshot the worker would serve, so a coordinator's pre-dispatch
// gate sees what it is about to dispatch against.
type HealthResponse struct {
	OK         bool   `json:"ok"`
	Ready      bool   `json:"ready,omitempty"`
	Epoch      int64  `json:"epoch,omitempty"`
	TargetHash string `json:"target_hash,omitempty"`
	Specs      int    `json:"specs,omitempty"`
}

// SetReady flips the readiness gate: a draining worker answers /readyz
// with 503 while /healthz stays 200, so coordinators stop dispatching to
// it without declaring it dead.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// handleHealthz is the liveness probe: if this handler runs at all, the
// process is alive. Deliberately snapshot-free — a worker mid-publish or
// mid-drain is still alive.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{OK: true})
}

// handleReadyz is the readiness probe: 200 with the pinned snapshot when
// the worker accepts dispatch, structured 503 while not ready.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	if !s.ready.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "not-ready",
			"worker is not accepting dispatch", nil)
		return
	}
	snap := s.store.Current()
	writeJSON(w, http.StatusOK, HealthResponse{
		OK:         true,
		Ready:      true,
		Epoch:      snap.Epoch,
		TargetHash: snap.TargetHash(),
		Specs:      len(snap.Specs),
	})
}
