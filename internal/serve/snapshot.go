// Package serve implements the resident analysis service behind
// `seal serve`: an HTTP/JSON daemon that loads a corpus and spec database
// once, keeps the shared detection substrate hot, and answers infer /
// detect / edit requests at interactive latency.
//
// Concurrency model: snapshot isolation. All analysis state lives in
// immutable, epoch-tagged Snapshots; readers pin the current snapshot with
// one atomic load and never observe a mutation, while a single writer
// builds the successor off to the side and publishes it atomically. An
// in-flight detection therefore always reports against exactly one epoch,
// even while edits land.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"seal"
	"seal/internal/cir"
	"seal/internal/ir"
)

// Snapshot is one immutable epoch of the service's analysis state: the
// source tree, its parse trees, the pinned resident substrate, and the
// spec database. Nothing in a published Snapshot is ever mutated; the
// resident substrate only accretes (memoized paths, regions, PDGs), which
// is invisible to result semantics.
type Snapshot struct {
	// Epoch is the publication sequence number, starting at 1.
	Epoch int64
	// Files is the source tree (name -> source).
	Files map[string]string
	// FileHash fingerprints each file individually — the invalidation key:
	// an edit invalidates exactly the region closures touching functions
	// defined in files whose hash changed.
	FileHash map[string]string
	// Parsed holds each file's parse tree. Trees are immutable after
	// lowering, so a successor snapshot reuses them for every file whose
	// hash is unchanged and re-parses only the edited ones.
	Parsed map[string]*cir.File
	// Resident is the pinned substrate + result memo for this epoch.
	Resident *seal.Resident
	// Specs is the active spec database; SpecsHash its fingerprint.
	Specs     []*seal.Spec
	SpecsHash string
	// StoreSeq is the spec-store snapshot sequence this epoch's specs were
	// read at (0 when the daemon is not backed by a spec store).
	StoreSeq uint64

	// Build accounting (how incremental the build was), surfaced by /edit.
	ReusedFiles      int
	ParsedFiles      int
	InvalidatedFuncs int
	RegionsCarried   int
	RegionsDropped   int
}

// TargetHash is the content fingerprint of this snapshot's source tree.
func (s *Snapshot) TargetHash() string { return s.Resident.TargetHash }

// hashSource fingerprints one file's bytes.
func hashSource(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:])
}

// BuildSnapshot parses, links, and pins a source tree as epoch 1. specs
// may be nil (serve with an empty spec DB until /infer publishes one).
func BuildSnapshot(files map[string]string, specs []*seal.Spec) (*Snapshot, error) {
	return buildSnapshot(files, specs, nil)
}

// buildSnapshot builds a snapshot, reusing prev's parse trees for
// unchanged files and carrying over prev's still-valid region closures.
func buildSnapshot(files map[string]string, specs []*seal.Spec, prev *Snapshot) (*Snapshot, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("serve: snapshot needs at least one source file")
	}
	s := &Snapshot{
		Epoch:    1,
		Files:    files,
		FileHash: make(map[string]string, len(files)),
		Parsed:   make(map[string]*cir.File, len(files)),
		Specs:    specs,
	}
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	parsed := make([]*cir.File, 0, len(names))
	for _, n := range names {
		h := hashSource(files[n])
		s.FileHash[n] = h
		if prev != nil && prev.FileHash[n] == h && prev.Parsed[n] != nil {
			s.Parsed[n] = prev.Parsed[n]
			s.ReusedFiles++
		} else {
			f, err := cir.ParseFile(n, files[n])
			if err != nil {
				return nil, err
			}
			s.Parsed[n] = f
			s.ParsedFiles++
		}
		parsed = append(parsed, s.Parsed[n])
	}
	prog, err := ir.NewProgram(parsed...)
	if err != nil {
		return nil, err
	}
	s.Resident = seal.NewResident(&seal.Target{Prog: prog, Files: files})
	if prev != nil {
		s.Epoch = prev.Epoch + 1
		s.StoreSeq = prev.StoreSeq // source edit, specs unchanged
		changed := changedFuncs(prev, s, prog)
		s.InvalidatedFuncs = len(changed)
		s.RegionsCarried, s.RegionsDropped = s.Resident.CarryRegionsFrom(prev.Resident, changed)
	}
	if s.SpecsHash, err = seal.SpecSetHash(specs); err != nil {
		return nil, err
	}
	return s, nil
}

// changedFuncs is the invalidation frontier of an edit: every function
// defined in a file that was edited, added, or removed — in either the
// old or the new program, so a function moving between files invalidates
// under both its homes.
func changedFuncs(prev, next *Snapshot, prog *ir.Program) map[string]bool {
	changedFiles := make(map[string]bool)
	for n, h := range next.FileHash {
		if prev.FileHash[n] != h {
			changedFiles[n] = true
		}
	}
	for n := range prev.FileHash {
		if _, ok := next.FileHash[n]; !ok {
			changedFiles[n] = true
		}
	}
	out := make(map[string]bool)
	for _, fn := range prog.Funcs {
		if changedFiles[fn.File] {
			out[fn.Name] = true
		}
	}
	for _, fn := range prev.Resident.Target.Prog.Funcs {
		if changedFiles[fn.File] {
			out[fn.Name] = true
		}
	}
	return out
}

// withSpecs derives a successor snapshot that shares this one's target,
// parse trees, and resident substrate (nothing source-side changed) but
// activates a different spec database.
func (s *Snapshot) withSpecs(specs []*seal.Spec) (*Snapshot, error) {
	hash, err := seal.SpecSetHash(specs)
	if err != nil {
		return nil, err
	}
	next := *s
	next.Epoch = s.Epoch + 1
	next.Specs = specs
	next.SpecsHash = hash
	next.ReusedFiles, next.ParsedFiles = len(s.Files), 0
	next.InvalidatedFuncs, next.RegionsCarried, next.RegionsDropped = 0, 0, 0
	return &next, nil
}

// Store is the snapshot holder: lock-free reads of the current epoch, a
// single mutex serializing writers. Readers that hold a *Snapshot keep
// using it safely after any number of publishes.
type Store struct {
	writer sync.Mutex
	cur    atomic.Pointer[Snapshot]
}

// NewStore publishes the initial snapshot.
func NewStore(s *Snapshot) *Store {
	st := &Store{}
	st.cur.Store(s)
	return st
}

// Current pins the latest published snapshot.
func (st *Store) Current() *Snapshot { return st.cur.Load() }

// Edit applies file updates and deletions to the current snapshot and
// publishes the successor. On any error (parse failure, empty result) the
// current snapshot stays published and untouched.
func (st *Store) Edit(updates map[string]string, deletes []string) (*Snapshot, error) {
	st.writer.Lock()
	defer st.writer.Unlock()
	prev := st.cur.Load()
	files := make(map[string]string, len(prev.Files)+len(updates))
	for n, src := range prev.Files {
		files[n] = src
	}
	for n, src := range updates {
		files[n] = src
	}
	for _, n := range deletes {
		delete(files, n)
	}
	next, err := buildSnapshot(files, prev.Specs, prev)
	if err != nil {
		return nil, err
	}
	st.cur.Store(next)
	return next, nil
}

// PublishSpecs activates a new spec database over the unchanged target.
func (st *Store) PublishSpecs(specs []*seal.Spec) (*Snapshot, error) {
	st.writer.Lock()
	defer st.writer.Unlock()
	next, err := st.cur.Load().withSpecs(specs)
	if err != nil {
		return nil, err
	}
	st.cur.Store(next)
	return next, nil
}

// EditSpecs publishes a spec-database successor produced by apply —
// typically a spec-store mutation followed by a snapshot re-read — while
// holding the writer lock, so the store commit and the epoch publication
// are one atomic step from every reader's perspective. apply returns the
// full new spec list (in store ordinal order) and the store sequence it
// was read at; on error nothing is published.
func (st *Store) EditSpecs(apply func() ([]*seal.Spec, uint64, error)) (*Snapshot, error) {
	st.writer.Lock()
	defer st.writer.Unlock()
	specs, seq, err := apply()
	if err != nil {
		return nil, err
	}
	next, err := st.cur.Load().withSpecs(specs)
	if err != nil {
		return nil, err
	}
	next.StoreSeq = seq
	st.cur.Store(next)
	return next, nil
}

// MergeAndPublish merges an inferred database into the active one
// (deduplicated, the incremental dataset growth of paper §9) and
// publishes the merged set as a new epoch.
func (st *Store) MergeAndPublish(db *seal.SpecDB) (*Snapshot, error) {
	st.writer.Lock()
	defer st.writer.Unlock()
	cur := st.cur.Load()
	merged := seal.MergeSpecDBs(&seal.SpecDB{Specs: cur.Specs}, db)
	next, err := cur.withSpecs(merged.Specs)
	if err != nil {
		return nil, err
	}
	st.cur.Store(next)
	return next, nil
}
