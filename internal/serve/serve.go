package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"seal"
	"seal/internal/detect"
	"seal/internal/obs"
	"seal/internal/report"
	"seal/internal/specdb"
)

// Config is the daemon's fixed configuration; request bodies may narrow
// (but not widen) the budget limits per request.
type Config struct {
	// Workers is the default detection/inference worker count (0 = 1).
	Workers int
	// Limits is the default per-unit budget applied to every request.
	Limits seal.Limits
	// CacheDir composes the daemon with the persistent analysis cache: a
	// restart warms region closures and detection results from disk, and
	// clean results are written back for the next process.
	CacheDir      string
	CacheReadOnly bool
	// CacheMaxBytes bounds the persistent cache's total on-disk size;
	// exceeding it evicts least-recently-used entries. 0 = unbounded.
	CacheMaxBytes int64
	// RequestTimeout bounds one request's whole run (0 = none). Exceeding
	// it yields a structured 503, never a dropped connection.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// SpecDB is the path of a paged spec store (internal/specdb) backing
	// the active spec database. When set, the daemon loads its specs from
	// the store's current snapshot at startup, /specs edits commit through
	// the store's copy-on-write path, and /detect runs at region-group
	// granularity so a one-spec edit recomputes only the group that owns
	// it. The specs argument to New must be nil in this mode.
	SpecDB string
	// CompactThreshold arms the spec store's ratio-triggered background
	// compaction: when a group-commit fold leaves the dead-page ratio at
	// or above this fraction in (0, 1], the store compacts in the
	// background without blocking snapshot readers. 0 disables it.
	CompactThreshold float64
}

// DefaultMaxBodyBytes bounds uploads: generous for source trees, small
// enough that a hostile client cannot balloon the daemon.
const DefaultMaxBodyBytes = 16 << 20

// Server is the resident analysis service: one snapshot store, one
// metrics registry, stdlib HTTP handlers.
type Server struct {
	cfg   Config
	store *Store
	reg   *obs.Registry
	mux   *http.ServeMux
	// specStore is the open paged spec store when cfg.SpecDB is set; the
	// source of truth for the active spec database (snapshots re-read it
	// on every publish) and the target of /specs edits.
	specStore *specdb.Store
	// ready gates /readyz: true once the server is willing to accept work.
	// New sets it; SetReady lets the process drain before shutdown.
	ready atomic.Bool
}

// New builds a server over an initial source tree and spec database
// (specs may be nil), priming the substrate from cfg.CacheDir when set.
// With cfg.SpecDB set the spec database comes from the store instead and
// specs must be nil.
func New(cfg Config, files map[string]string, specs []*seal.Spec) (*Server, error) {
	var specStore *specdb.Store
	var storeSeq uint64
	if cfg.SpecDB != "" {
		if specs != nil {
			return nil, fmt.Errorf("serve: specs and SpecDB are mutually exclusive")
		}
		st, err := specdb.OpenOptions(cfg.SpecDB, specdb.Options{CompactThreshold: cfg.CompactThreshold})
		if err != nil {
			return nil, err
		}
		snap := st.Current()
		if specs, err = snap.Specs(); err != nil {
			st.Close()
			return nil, err
		}
		specStore, storeSeq = st, snap.Seq()
	}
	snap, err := BuildSnapshot(files, specs)
	if err != nil {
		if specStore != nil {
			specStore.Close()
		}
		return nil, err
	}
	snap.StoreSeq = storeSeq
	if cfg.CacheDir != "" {
		if err := snap.Resident.PrimeFromCache(cfg.CacheDir, cfg.CacheReadOnly, cfg.CacheMaxBytes); err != nil {
			if specStore != nil {
				specStore.Close()
			}
			return nil, err
		}
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{cfg: cfg, store: NewStore(snap), reg: obs.NewRegistry(), specStore: specStore}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/detect", s.handleDetect)
	s.mux.HandleFunc("/shard", s.handleShard)
	s.mux.HandleFunc("/infer", s.handleInfer)
	s.mux.HandleFunc("/edit", s.handleEdit)
	s.mux.HandleFunc("/specs", s.handleSpecs)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/", s.handleUnknown)
	s.ready.Store(true)
	return s, nil
}

// Store exposes the snapshot store (tests publish through it directly).
func (s *Server) Store() *Store { return s.store }

// Close releases the server's spec store, if any. Call only after the
// HTTP server has stopped serving requests.
func (s *Server) Close() error {
	if s.specStore == nil {
		return nil
	}
	return s.specStore.Close()
}

// Handler is the daemon's HTTP surface: panic containment, body caps, and
// the per-request deadline wrap every endpoint, so no client input or
// analysis outcome can drop a connection without a structured JSON answer.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.writeError(w, http.StatusInternalServerError, "internal",
					fmt.Sprintf("panic: %v", p), nil)
			}
		}()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		s.reg.Counter("seal_serve_requests_total", "HTTP requests received").Add(1)
		s.mux.ServeHTTP(w, r)
	})
}

// ErrorBody is the structured error envelope every non-2xx response
// carries; Failures lists quarantine records when a run aborted.
type ErrorBody struct {
	Status   int                   `json:"status"`
	Code     string                `json:"code"`
	Message  string                `json:"message"`
	Failures []*seal.FailureRecord `json:"failures,omitempty"`
}

type errorEnvelope struct {
	Error ErrorBody `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string, failures []*seal.FailureRecord) {
	s.reg.Counter("seal_serve_errors_total", "requests answered with a structured error").Add(1)
	writeJSON(w, status, errorEnvelope{Error: ErrorBody{
		Status: status, Code: code, Message: msg, Failures: failures,
	}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// decodeJSON decodes a request body. An empty body decodes to the zero
// request (every field has a serve-side default). Returns (status, code,
// message) on failure.
func decodeJSON(r *http.Request, dst any) (int, string, string) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	err := dec.Decode(dst)
	if err == nil || errors.Is(err, io.EOF) {
		return 0, "", ""
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge, "body-too-large",
			fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)
	}
	return http.StatusBadRequest, "bad-request", err.Error()
}

// requireMethod answers 405 with a structured body on mismatch.
func (s *Server) requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		s.writeError(w, http.StatusMethodNotAllowed, "method-not-allowed",
			fmt.Sprintf("%s requires %s", r.URL.Path, method), nil)
		return false
	}
	return true
}

func (s *Server) handleUnknown(w http.ResponseWriter, r *http.Request) {
	s.writeError(w, http.StatusNotFound, "not-found",
		fmt.Sprintf("no such endpoint %q", r.URL.Path), nil)
}

// runError maps a run-level abort to its structured response: a request
// deadline (or client cancel) is 503 — the daemon is healthy, this request
// ran out of time; anything else is the budget policy aborting the run
// (max-failures, fail-fast), a 422 carrying the quarantine records.
func (s *Server) runError(w http.ResponseWriter, runErr error, failures []*seal.FailureRecord) {
	if errors.Is(runErr, context.DeadlineExceeded) || errors.Is(runErr, context.Canceled) {
		s.writeError(w, http.StatusServiceUnavailable, "request-deadline",
			"request deadline exceeded before the run completed", failures)
		return
	}
	s.writeError(w, http.StatusUnprocessableEntity, "run-aborted", runErr.Error(), failures)
}

// LimitsSpec is the JSON form of a per-request budget override; zero
// fields inherit the server default.
type LimitsSpec struct {
	UnitTimeoutMS int64 `json:"unit_timeout_ms,omitempty"`
	MaxSteps      int64 `json:"max_steps,omitempty"`
	MaxMemBytes   int64 `json:"max_mem_bytes,omitempty"`
	MaxPaths      int   `json:"max_paths,omitempty"`
	MaxDepth      int   `json:"max_depth,omitempty"`
	MaxFailures   int   `json:"max_failures,omitempty"`
	Retry         bool  `json:"retry,omitempty"`
}

func (ls *LimitsSpec) limits(def seal.Limits) seal.Limits {
	if ls == nil {
		return def
	}
	out := def
	if ls.UnitTimeoutMS > 0 {
		out.UnitTimeout = time.Duration(ls.UnitTimeoutMS) * time.Millisecond
	}
	if ls.MaxSteps > 0 {
		out.MaxSteps = ls.MaxSteps
	}
	if ls.MaxMemBytes > 0 {
		out.MaxMemBytes = ls.MaxMemBytes
	}
	if ls.MaxPaths > 0 {
		out.MaxPaths = ls.MaxPaths
	}
	if ls.MaxDepth > 0 {
		out.MaxDepth = ls.MaxDepth
	}
	if ls.MaxFailures > 0 {
		out.MaxFailures = ls.MaxFailures
	}
	if ls.Retry {
		out.Retry = true
	}
	return out
}

// DetectInputs is the content-addressed manifest Inputs of a serve-side
// detection: hashes, not paths, so a daemon response and a batch reference
// run over the same bytes produce identical redacted manifests.
func DetectInputs(targetHash, specsHash string) map[string]string {
	return map[string]string{"target": "sha256:" + targetHash, "specs": "sha256:" + specsHash}
}

// InferInputs is the content-addressed manifest Inputs of a serve-side
// inference run.
func InferInputs(patchesHash string, validate bool) map[string]string {
	m := map[string]string{"patches": "sha256:" + patchesHash}
	if !validate {
		m["validate"] = "false"
	}
	return m
}

// PatchSetHash fingerprints a patch corpus in input order (JSON encodes
// map keys sorted, so the hash is deterministic).
func PatchSetHash(patches []*seal.Patch) (string, error) {
	data, err := json.Marshal(patches)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// DetectRequest configures one detection over the current snapshot.
type DetectRequest struct {
	// Workers overrides the server's worker count (output-invariant).
	Workers int `json:"workers,omitempty"`
	// Report selects the full rendered reports (-report) over summaries.
	Report bool `json:"report,omitempty"`
	// Limits narrows the per-unit budget for this request.
	Limits *LimitsSpec `json:"limits,omitempty"`
}

// DetectResponse is the per-request envelope: the epoch and content
// hashes the result is pinned to, the rendered report (byte-identical to
// batch CLI stdout), the raw records, and the run's observability
// artifacts (manifest + Prometheus metrics, byte-identical to the batch
// CLI's after redaction).
type DetectResponse struct {
	Epoch      int64                 `json:"epoch"`
	TargetHash string                `json:"target_hash"`
	SpecsHash  string                `json:"specs_hash"`
	Specs      int                   `json:"specs"`
	// StoreSeq / Grouped are set on a spec-store-backed daemon: the store
	// snapshot the specs came from, and how incremental the grouped
	// detection was (output bytes are identical either way).
	StoreSeq uint64             `json:"store_seq,omitempty"`
	Grouped  *seal.GroupedStats `json:"grouped,omitempty"`
	Report     string                `json:"report"`
	Bugs       []detect.BugRec       `json:"bugs"`
	Degraded   []seal.Degradation    `json:"degraded,omitempty"`
	Failures   []*seal.FailureRecord `json:"failures,omitempty"`
	Stats      seal.DetectStats      `json:"stats"`
	Manifest   *seal.Manifest        `json:"manifest,omitempty"`
	Metrics    string                `json:"metrics,omitempty"`
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	s.reg.Counter("seal_serve_detects_total", "detect requests").Add(1)
	var req DetectRequest
	if st, code, msg := decodeJSON(r, &req); st != 0 {
		s.writeError(w, st, code, msg, nil)
		return
	}
	snap := s.store.Current() // pin: everything below reads this epoch only
	workers := req.Workers
	if workers < 1 {
		workers = s.cfg.Workers
	}
	base := seal.NewObsBaseline()
	rec := obs.New()
	rec.StartRun("detect")
	runOpts := seal.DetectRunOptions{
		Workers:       workers,
		Limits:        req.Limits.limits(s.cfg.Limits),
		Obs:           rec,
		CacheDir:      s.cfg.CacheDir,
		CacheReadOnly: s.cfg.CacheReadOnly,
		CacheMaxBytes: s.cfg.CacheMaxBytes,
	}
	var res *seal.DetectResult
	var runErr error
	var grouped *seal.GroupedStats
	if s.specStore != nil {
		// Store-backed: region-group granularity, so a spec edit since the
		// last request recomputes only the groups it touched.
		var gs seal.GroupedStats
		res, gs, runErr = snap.Resident.DetectGrouped(r.Context(), snap.Specs, runOpts)
		grouped = &gs
	} else {
		res, runErr = snap.Resident.Detect(r.Context(), snap.Specs, runOpts)
	}
	if runErr != nil {
		var failures []*seal.FailureRecord
		if res != nil {
			failures = res.Failures
		}
		s.runError(w, runErr, failures)
		return
	}
	renderStart := time.Now()
	rendered := report.RenderDetectStdout(res.Recs, res.Degraded, res.Failures, len(snap.Specs), req.Report)
	renderSecs := time.Since(renderStart).Seconds()
	art, err := seal.FinishDetectRun(rec, res, len(snap.Specs), workers,
		DetectInputs(snap.TargetHash(), snap.SpecsHash), renderSecs, base)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
		return
	}
	writeJSON(w, http.StatusOK, DetectResponse{
		Epoch:      snap.Epoch,
		TargetHash: snap.TargetHash(),
		SpecsHash:  snap.SpecsHash,
		Specs:      len(snap.Specs),
		StoreSeq:   snap.StoreSeq,
		Grouped:    grouped,
		Report:     rendered,
		Bugs:       res.Recs,
		Degraded:   res.Degraded,
		Failures:   res.Failures,
		Stats:      res.Stats,
		Manifest:   art.Manifest,
		Metrics:    art.Metrics,
	})
}

// InferRequest uploads a patch corpus for specification inference.
type InferRequest struct {
	Patches []*seal.Patch `json:"patches"`
	// Validate defaults to true (paper §6.3.3) when omitted.
	Validate *bool       `json:"validate,omitempty"`
	Workers  int         `json:"workers,omitempty"`
	FailFast bool        `json:"fail_fast,omitempty"`
	Limits   *LimitsSpec `json:"limits,omitempty"`
	// Publish merges the inferred specs into the active database and
	// publishes the result as a new epoch (incremental dataset growth).
	Publish bool `json:"publish,omitempty"`
}

// InferResponse carries the inferred database and, when published, the
// new epoch now serving it.
type InferResponse struct {
	Epoch               int64                 `json:"epoch"`
	Published           bool                  `json:"published,omitempty"`
	DB                  *seal.SpecDB          `json:"db"`
	Specs               int                   `json:"specs"`
	ZeroRelationPatches int                   `json:"zero_relation_patches"`
	Degraded            []seal.Degradation    `json:"degraded,omitempty"`
	Failures            []*seal.FailureRecord `json:"failures,omitempty"`
	Manifest            *seal.Manifest        `json:"manifest,omitempty"`
	Metrics             string                `json:"metrics,omitempty"`
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	s.reg.Counter("seal_serve_infers_total", "infer requests").Add(1)
	var req InferRequest
	if st, code, msg := decodeJSON(r, &req); st != 0 {
		s.writeError(w, st, code, msg, nil)
		return
	}
	if len(req.Patches) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad-request", "infer: patches is required", nil)
		return
	}
	validate := req.Validate == nil || *req.Validate
	workers := req.Workers
	if workers < 1 {
		workers = s.cfg.Workers
	}
	patchesHash, err := PatchSetHash(req.Patches)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad-request", err.Error(), nil)
		return
	}
	base := seal.NewObsBaseline()
	rec := obs.New()
	rec.StartRun("infer")
	res, runErr := seal.InferSpecsContext(r.Context(), req.Patches, seal.Options{
		Validate:      validate,
		Workers:       workers,
		Limits:        req.Limits.limits(s.cfg.Limits),
		FailFast:      req.FailFast,
		Obs:           rec,
		CacheDir:      s.cfg.CacheDir,
		CacheReadOnly: s.cfg.CacheReadOnly,
		CacheMaxBytes: s.cfg.CacheMaxBytes,
	})
	if runErr != nil {
		var failures []*seal.FailureRecord
		if res != nil {
			failures = res.Failures
		}
		s.runError(w, runErr, failures)
		return
	}
	art, err := seal.FinishInferRun(rec, res, len(req.Patches), workers,
		InferInputs(patchesHash, validate), base)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
		return
	}
	resp := InferResponse{
		Epoch:               s.store.Current().Epoch,
		DB:                  res.DB,
		Specs:               len(res.DB.Specs),
		ZeroRelationPatches: res.ZeroRelationPatches,
		Degraded:            res.Degraded,
		Failures:            res.Failures,
		Manifest:            art.Manifest,
		Metrics:             art.Metrics,
	}
	if req.Publish {
		var snap *Snapshot
		var perr error
		if s.specStore != nil {
			// Commit the inferred specs through the store (first-wins by
			// key, same dedup as MergeSpecDBs) and republish its snapshot.
			snap, perr = s.store.EditSpecs(func() ([]*seal.Spec, uint64, error) {
				if _, _, err := s.specStore.ImportSpecs(res.DB.Specs); err != nil {
					return nil, 0, err
				}
				ssnap := s.specStore.Current()
				specs, err := ssnap.Specs()
				return specs, ssnap.Seq(), err
			})
		} else {
			snap, perr = s.store.MergeAndPublish(res.DB)
		}
		if perr != nil {
			s.writeError(w, http.StatusInternalServerError, "internal", perr.Error(), nil)
			return
		}
		s.reg.Counter("seal_serve_publishes_total", "snapshot publications").Add(1)
		resp.Epoch = snap.Epoch
		resp.Published = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// EditRequest uploads changed source files and/or deletions.
type EditRequest struct {
	Files  map[string]string `json:"files,omitempty"`
	Delete []string          `json:"delete,omitempty"`
}

// EditResponse reports the published epoch and how incremental the
// rebuild was: parse trees reused vs re-parsed, the functions the edit
// invalidated, and the region closures carried vs dropped.
type EditResponse struct {
	Epoch            int64  `json:"epoch"`
	TargetHash       string `json:"target_hash"`
	Files            int    `json:"files"`
	ReusedFiles      int    `json:"reused_files"`
	ParsedFiles      int    `json:"parsed_files"`
	InvalidatedFuncs int    `json:"invalidated_funcs"`
	RegionsCarried   int    `json:"regions_carried"`
	RegionsDropped   int    `json:"regions_dropped"`
}

func (s *Server) handleEdit(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	s.reg.Counter("seal_serve_edits_total", "edit requests").Add(1)
	var req EditRequest
	if st, code, msg := decodeJSON(r, &req); st != 0 {
		s.writeError(w, st, code, msg, nil)
		return
	}
	if len(req.Files) == 0 && len(req.Delete) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad-request", "edit: nothing to apply", nil)
		return
	}
	snap, err := s.store.Edit(req.Files, req.Delete)
	if err != nil {
		// The previous snapshot is still published and untouched.
		s.writeError(w, http.StatusUnprocessableEntity, "parse-error", err.Error(), nil)
		return
	}
	s.reg.Counter("seal_serve_publishes_total", "snapshot publications").Add(1)
	writeJSON(w, http.StatusOK, EditResponse{
		Epoch:            snap.Epoch,
		TargetHash:       snap.TargetHash(),
		Files:            len(snap.Files),
		ReusedFiles:      snap.ReusedFiles,
		ParsedFiles:      snap.ParsedFiles,
		InvalidatedFuncs: snap.InvalidatedFuncs,
		RegionsCarried:   snap.RegionsCarried,
		RegionsDropped:   snap.RegionsDropped,
	})
}

// StatsResponse is the daemon's residency snapshot.
type StatsResponse struct {
	Epoch       int64              `json:"epoch"`
	TargetHash  string             `json:"target_hash"`
	SpecsHash   string             `json:"specs_hash"`
	StoreSeq    uint64             `json:"store_seq,omitempty"`
	Files       int                `json:"files"`
	Specs       int                `json:"specs"`
	Resident    seal.ResidentStats `json:"resident"`
	MemoEntries int                `json:"memo_entries"`
	Substrate   seal.DetectStats   `json:"substrate"`
	// SpecStore surfaces the backing paged store's write-path liveness
	// (WAL depth, dead-page ratio, compaction count) in SpecDB mode.
	SpecStore *specdb.StoreStats `json:"spec_store,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	snap := s.store.Current()
	var ss *specdb.StoreStats
	if s.specStore != nil {
		st := s.specStore.Stats()
		ss = &st
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Epoch:       snap.Epoch,
		TargetHash:  snap.TargetHash(),
		SpecsHash:   snap.SpecsHash,
		StoreSeq:    snap.StoreSeq,
		Files:       len(snap.Files),
		Specs:       len(snap.Specs),
		Resident:    snap.Resident.Resident(),
		MemoEntries: snap.Resident.MemoEntries(),
		Substrate:   snap.Resident.Stats(),
		SpecStore:   ss,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	snap := s.store.Current()
	rs := snap.Resident.Resident()
	s.reg.Gauge("seal_serve_epoch", "current snapshot epoch").Set(float64(snap.Epoch))
	s.reg.Gauge("seal_serve_resident_pdg_funcs", "functions with a materialized PDG subgraph").Set(float64(rs.PDGFuncs))
	s.reg.Gauge("seal_serve_resident_regions", "cached region closures").Set(float64(rs.Regions))
	s.reg.Gauge("seal_serve_resident_path_entries", "cached path-set entries").Set(float64(rs.PathEntries))
	s.reg.Gauge("seal_serve_memo_entries", "memoized detection results").Set(float64(snap.Resident.MemoEntries()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WritePrometheus(w)
}
