package serve

import (
	"errors"
	"fmt"
	"net/http"

	"seal"
	"seal/internal/coord"
	"seal/internal/obs"
	"seal/internal/spec"
	"seal/internal/specdb"
)

// resolveSpecStore materializes a job's spec subset from a shared spec
// store reference: open the store pinned at exactly the referenced
// snapshot sequence, read the named scopes' specs in global ordinal
// order, and verify the resolved subset's content hash against what the
// coordinator planned. Any failure maps to a structured 409 — the
// coordinator treats it like any other shard loss and can retry or
// re-shard, but the worker never computes against a corpus the plan did
// not name.
func resolveSpecStore(ref *coord.SpecStoreRef) ([]*spec.Spec, string, string) {
	st, err := specdb.OpenAt(ref.Path, ref.Seq)
	if err != nil {
		if errors.Is(err, specdb.ErrSnapshotGone) {
			return nil, "spec-store-skew", fmt.Sprintf("shard: spec store %s: %v", ref.Path, err)
		}
		return nil, "spec-store-error", fmt.Sprintf("shard: spec store %s: %v", ref.Path, err)
	}
	defer st.Close()
	subset, err := st.Current().ScopesSpecs(ref.Scopes)
	if err != nil {
		return nil, "spec-store-error", fmt.Sprintf("shard: spec store %s: %v", ref.Path, err)
	}
	if ref.SpecsHash != "" {
		hash, err := (&spec.DB{Specs: subset}).Hash()
		if err != nil || hash != ref.SpecsHash {
			return nil, "spec-store-mismatch", fmt.Sprintf(
				"shard: spec store %s seq %d resolved a different subset than the plan (got %d specs)",
				ref.Path, ref.Seq, len(subset))
		}
	}
	return subset, "", ""
}

// handleShard is the worker half of the scale-out tier: it executes one
// coordinator-assigned shard of a detection corpus over the resident
// snapshot and answers with the wire-form result (bug records with dedup
// keys, unit summaries, manifest spans, robustness records, substrate
// counters). The same budgeted, cached pipeline as /detect runs
// underneath — a shard request warms and reads the persistent cache
// exactly like a whole-corpus run, which is what lets a restarted worker
// replay instead of recompute.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	s.reg.Counter("seal_serve_shards_total", "shard requests").Add(1)
	var job coord.ShardJob
	if st, code, msg := decodeJSON(r, &job); st != 0 {
		s.writeError(w, st, code, msg, nil)
		return
	}
	jobSpecs := job.Specs
	if job.SpecStore != nil {
		subset, code, msg := resolveSpecStore(job.SpecStore)
		if code != "" {
			s.writeError(w, http.StatusConflict, code, msg, nil)
			return
		}
		jobSpecs = &spec.DB{Specs: subset}
	}
	if jobSpecs == nil || len(jobSpecs.Specs) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad-request", "shard: specs is required", nil)
		return
	}
	snap := s.store.Current() // pin: everything below reads this epoch only
	if job.TargetHash != "" && job.TargetHash != snap.TargetHash() {
		s.writeError(w, http.StatusConflict, "target-mismatch",
			"worker target "+snap.TargetHash()+" does not match job target "+job.TargetHash, nil)
		return
	}
	workers := job.Workers
	if workers < 1 {
		workers = s.cfg.Workers
	}
	rec := obs.New()
	rec.StartRun("shard")
	res, bugs, runErr := snap.Resident.DetectShard(r.Context(), jobSpecs.Specs, seal.DetectRunOptions{
		Workers:       workers,
		Limits:        job.Limits,
		Obs:           rec,
		CacheDir:      s.cfg.CacheDir,
		CacheReadOnly: s.cfg.CacheReadOnly,
		CacheMaxBytes: s.cfg.CacheMaxBytes,
	})
	if runErr != nil {
		var failures []*seal.FailureRecord
		if res != nil {
			failures = res.Failures
		}
		s.runError(w, runErr, failures)
		return
	}
	m := rec.BuildManifest("shard", workers, nil, 0)
	writeJSON(w, http.StatusOK, coord.ShardResult{
		Shard:         job.Shard,
		TargetHash:    snap.TargetHash(),
		Bugs:          bugs,
		Units:         res.Units,
		ManifestUnits: m.Units,
		Failures:      res.Failures,
		Degraded:      res.Degraded,
		Stats:         res.Stats,
		SatChecks:     res.SatChecks,
	})
}
