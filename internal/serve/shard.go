package serve

import (
	"net/http"

	"seal"
	"seal/internal/coord"
	"seal/internal/obs"
)

// handleShard is the worker half of the scale-out tier: it executes one
// coordinator-assigned shard of a detection corpus over the resident
// snapshot and answers with the wire-form result (bug records with dedup
// keys, unit summaries, manifest spans, robustness records, substrate
// counters). The same budgeted, cached pipeline as /detect runs
// underneath — a shard request warms and reads the persistent cache
// exactly like a whole-corpus run, which is what lets a restarted worker
// replay instead of recompute.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	s.reg.Counter("seal_serve_shards_total", "shard requests").Add(1)
	var job coord.ShardJob
	if st, code, msg := decodeJSON(r, &job); st != 0 {
		s.writeError(w, st, code, msg, nil)
		return
	}
	if job.Specs == nil || len(job.Specs.Specs) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad-request", "shard: specs is required", nil)
		return
	}
	snap := s.store.Current() // pin: everything below reads this epoch only
	if job.TargetHash != "" && job.TargetHash != snap.TargetHash() {
		s.writeError(w, http.StatusConflict, "target-mismatch",
			"worker target "+snap.TargetHash()+" does not match job target "+job.TargetHash, nil)
		return
	}
	workers := job.Workers
	if workers < 1 {
		workers = s.cfg.Workers
	}
	rec := obs.New()
	rec.StartRun("shard")
	res, bugs, runErr := snap.Resident.DetectShard(r.Context(), job.Specs.Specs, seal.DetectRunOptions{
		Workers:       workers,
		Limits:        job.Limits,
		Obs:           rec,
		CacheDir:      s.cfg.CacheDir,
		CacheReadOnly: s.cfg.CacheReadOnly,
		CacheMaxBytes: s.cfg.CacheMaxBytes,
	})
	if runErr != nil {
		var failures []*seal.FailureRecord
		if res != nil {
			failures = res.Failures
		}
		s.runError(w, runErr, failures)
		return
	}
	m := rec.BuildManifest("shard", workers, nil, 0)
	writeJSON(w, http.StatusOK, coord.ShardResult{
		Shard:         job.Shard,
		TargetHash:    snap.TargetHash(),
		Bugs:          bugs,
		Units:         res.Units,
		ManifestUnits: m.Units,
		Failures:      res.Failures,
		Degraded:      res.Degraded,
		Stats:         res.Stats,
		SatChecks:     res.SatChecks,
	})
}
