package kernelgen

import (
	"fmt"
	"math/rand"
	"sort"

	"seal/internal/patch"
	"seal/internal/spec"
)

// Config controls corpus generation. All randomness is seeded, so a config
// identifies a corpus exactly.
type Config struct {
	Seed int64
	// Instances is the number of subsystem instances per bug family.
	Instances int
	// BuggyMin/BuggyMax bound the latent (unpatched) buggy drivers per
	// instance.
	BuggyMin, BuggyMax int
	// CorrectMin/CorrectMax bound the rule-abiding drivers per instance.
	CorrectMin, CorrectMax int
	// TailEvery makes every n-th instance a "hot" interface with TailBuggy
	// latent bugs (the >5-violation tail of paper Fig. 8b).
	TailEvery int
	TailBuggy int
	// ConfuserMax bounds confuser drivers per instance (families with a
	// confuser variant only).
	ConfuserMax int
	// NoisePatches is the number of zero-relation refactor patches.
	NoisePatches int
	// AdhocInstances is the number of ad-hoc-patch subsystem instances
	// (each contributing one idiosyncratic patch whose inferred rule is
	// incorrect); AdhocPlain is the number of rule-free sibling drivers
	// the incorrect rule will flag.
	AdhocInstances int
	AdhocPlain     int
	// AdhocQuiet adds ad-hoc instances over instance-unique APIs: their
	// incorrect specs apply nowhere ("restrictive and cannot be extended",
	// paper §8.2), lowering spec precision without adding reports.
	AdhocQuiet int
	// YearNow anchors the latent-age distribution (paper Fig. 8a).
	YearNow int
}

// DefaultConfig is a small, fast corpus for tests.
func DefaultConfig() Config {
	return Config{
		Seed:      1,
		Instances: 1,
		BuggyMin:  1, BuggyMax: 2,
		CorrectMin: 1, CorrectMax: 2,
		TailEvery: 0, TailBuggy: 0,
		ConfuserMax:    1,
		NoisePatches:   2,
		AdhocInstances: 1,
		AdhocPlain:     1,
		AdhocQuiet:     1,
		YearNow:        2023,
	}
}

// EvalConfig is the full evaluation corpus (the harness's "Linux v6.2").
func EvalConfig() Config {
	return Config{
		Seed:      42,
		Instances: 3,
		BuggyMin:  1, BuggyMax: 2,
		CorrectMin: 2, CorrectMax: 4,
		TailEvery: 5, TailBuggy: 7,
		ConfuserMax:    2,
		NoisePatches:   12,
		AdhocInstances: 3,
		AdhocPlain:     3,
		AdhocQuiet:     10,
		YearNow:        2023,
	}
}

// DriverInfo is corpus metadata for one generated driver.
type DriverInfo struct {
	Name      string // unique driver prefix, e.g. "npd0_tw68"
	File      string
	Func      string // interface implementation (ground-truth location)
	Family    string
	Subsystem string
	Variant   Variant
	Year      int // year the driver (and its bug, if any) was introduced
	Patched   bool
}

// SeededBug is one latent ground-truth bug in the generated tree.
type SeededBug struct {
	Func   string
	File   string
	Kind   string
	Family string
	Iface  string
	Year   int
}

// Corpus is the generated mini-Linux: the current source tree (with latent
// bugs), the historical patch set, and exact ground truth.
type Corpus struct {
	Config  Config
	Files   map[string]string
	Patches []*patch.Patch
	Bugs    []SeededBug
	Drivers []DriverInfo
}

// namePool provides kernel-flavoured driver names.
var namePool = []string{
	"tw68", "cx88", "rtl28", "gl861", "dw2102", "ce6230", "saa7134",
	"em28xx", "ivtv", "bttv", "pvrusb2", "go7007", "stk1160", "usbtv",
	"airspy", "hackrf", "msi2500", "mxl111", "dvbsky", "az6027",
	"tegra", "meson", "stm32", "xgene", "mtk", "lpc18xx", "amd8131",
	"viacam", "netup", "spmmc",
}

// Generate builds the corpus for cfg deterministically.
func Generate(cfg Config) *Corpus {
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Corpus{
		Config: cfg,
		Files:  make(map[string]string),
	}
	for fi, fam := range Families {
		for k := 0; k < cfg.Instances; k++ {
			c.genInstance(rng, cfg, fam, fi, k)
		}
	}
	for k := 0; k < cfg.AdhocInstances; k++ {
		c.genAdhoc(cfg, k, true)
	}
	for k := 0; k < cfg.AdhocQuiet; k++ {
		c.genAdhoc(cfg, cfg.AdhocInstances+k, false)
	}
	for i := 0; i < cfg.NoisePatches; i++ {
		file := fmt.Sprintf("lib/noise%d.c", i)
		pre := NoiseSource(i, false)
		post := NoiseSource(i, true)
		c.Files[file] = post
		c.Patches = append(c.Patches, &patch.Patch{
			ID:          fmt.Sprintf("noise-%d", i),
			Description: "refactor: no functional change",
			Pre:         map[string]string{file: pre},
			Post:        map[string]string{file: post},
			Tags:        map[string]string{"family": "noise"},
		})
	}
	sort.Slice(c.Bugs, func(i, j int) bool { return c.Bugs[i].Func < c.Bugs[j].Func })
	return c
}

func (c *Corpus) genInstance(rng *rand.Rand, cfg Config, fam *Family, fi, k int) {
	sub := fmt.Sprintf("%s%d", fam.Name, k)
	dir := fmt.Sprintf("%s/%s", fam.Subsystem, sub)
	nameAt := func(i int) string {
		return fmt.Sprintf("%s_%s", sub, namePool[(fi*7+k*3+i)%len(namePool)])
	}
	next := 0
	newDriver := func(v Variant, patched bool) DriverInfo {
		drv := nameAt(next)
		next++
		file := fmt.Sprintf("%s/%s.c", dir, drv)
		src := fam.Render(sub, drv, v)
		c.Files[file] = src
		info := DriverInfo{
			Name: drv, File: file, Func: fam.EntryFunc(sub, drv),
			Family: fam.Name, Subsystem: fam.Subsystem, Variant: v,
			Year: bugYear(rng, cfg), Patched: patched,
		}
		c.Drivers = append(c.Drivers, info)
		return info
	}

	// One patched driver per instance: the security patch SEAL learns from.
	pd := newDriver(Correct, true) // the tree holds the fixed version
	preSrc := fam.Render(sub, pd.Name, Buggy)
	c.Patches = append(c.Patches, &patch.Patch{
		ID:          fmt.Sprintf("fix-%s-%s", fam.Name, pd.Name),
		Description: fmt.Sprintf("%s: fix %s in %s", fam.Subsystem, fam.BugKind, pd.Func),
		Pre:         map[string]string{pd.File: preSrc},
		Post:        map[string]string{pd.File: c.Files[pd.File]},
		Tags:        map[string]string{"family": fam.Name, "kind": fam.BugKind, "iface": fam.IfaceName(sub)},
	})

	// Latent buggy siblings.
	nb := cfg.BuggyMin
	if cfg.BuggyMax > cfg.BuggyMin {
		nb += rng.Intn(cfg.BuggyMax - cfg.BuggyMin + 1)
	}
	if cfg.TailEvery > 0 && (fi*cfg.Instances+k)%cfg.TailEvery == 0 {
		nb = cfg.TailBuggy
	}
	for i := 0; i < nb; i++ {
		bd := newDriver(Buggy, false)
		c.Bugs = append(c.Bugs, SeededBug{
			Func: bd.Func, File: bd.File, Kind: fam.BugKind,
			Family: fam.Name, Iface: fam.IfaceName(sub), Year: bd.Year,
		})
	}

	// Correct siblings.
	nc := cfg.CorrectMin
	if cfg.CorrectMax > cfg.CorrectMin {
		nc += rng.Intn(cfg.CorrectMax - cfg.CorrectMin + 1)
	}
	for i := 0; i < nc; i++ {
		newDriver(Correct, false)
	}

	// Confusers (controlled FP population).
	if fam.HasConfuser && cfg.ConfuserMax > 0 {
		nf := 1 + rng.Intn(cfg.ConfuserMax)
		for i := 0; i < nf; i++ {
			newDriver(Confuser, false)
		}
	}
}

// genAdhoc emits one ad-hoc subsystem instance: a patched driver whose fix
// is idiosyncratic, plus plain drivers the resulting incorrect rule flags.
func (c *Corpus) genAdhoc(cfg Config, k int, shared bool) {
	sub := fmt.Sprintf("adhoc%d", k)
	apiPrefix := "adhoc"
	if !shared {
		apiPrefix = sub
	}
	dir := fmt.Sprintf("drivers/misc/%s", sub)
	patchedDrv := fmt.Sprintf("%s_%s", sub, namePool[(k*5+1)%len(namePool)])
	file := fmt.Sprintf("%s/%s.c", dir, patchedDrv)
	pre := AdhocSource(sub, patchedDrv, apiPrefix, false, true)
	post := AdhocSource(sub, patchedDrv, apiPrefix, true, true)
	c.Files[file] = post
	c.Patches = append(c.Patches, &patch.Patch{
		ID:          fmt.Sprintf("fix-adhoc-%s", patchedDrv),
		Description: "sync hardware register state on command failure",
		Pre:         map[string]string{file: pre},
		Post:        map[string]string{file: post},
		Tags:        map[string]string{"family": "adhoc", "iface": sub + "_tops.tune"},
	})
	if !shared {
		return // quiet instance: the incorrect spec applies nowhere
	}
	for i := 0; i < cfg.AdhocPlain; i++ {
		drv := fmt.Sprintf("%s_%s", sub, namePool[(k*5+2+i)%len(namePool)])
		f := fmt.Sprintf("%s/%s.c", dir, drv)
		c.Files[f] = AdhocSource(sub, drv, apiPrefix, false, false)
		c.Drivers = append(c.Drivers, DriverInfo{
			Name: drv, File: f, Func: drv + "_tune", Family: "adhoc",
			Subsystem: "drivers/misc", Variant: Correct, Year: cfg.YearNow - 3,
		})
	}
}

// bugYear draws an introduction year reproducing the long-latency skew of
// paper Fig. 8a: ≈29% of bugs are over ten years old, mean ≈ 7.7 years.
func bugYear(rng *rand.Rand, cfg Config) int {
	if rng.Float64() < 0.29 {
		// 11..19 years old.
		return cfg.YearNow - 11 - rng.Intn(9)
	}
	// 2..10 years old.
	return cfg.YearNow - 2 - rng.Intn(9)
}

// BugByFunc indexes ground truth by function name.
func (c *Corpus) BugByFunc() map[string]SeededBug {
	m := make(map[string]SeededBug, len(c.Bugs))
	for _, b := range c.Bugs {
		m[b.Func] = b
	}
	return m
}

// DriverByFunc indexes driver metadata by entry function.
func (c *Corpus) DriverByFunc() map[string]DriverInfo {
	m := make(map[string]DriverInfo, len(c.Drivers))
	for _, d := range c.Drivers {
		m[d.Func] = d
	}
	return m
}

// SortedFileNames returns the corpus files in deterministic order.
func (c *Corpus) SortedFileNames() []string {
	names := make([]string, 0, len(c.Files))
	for n := range c.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SpecIsIntended reports whether an inferred specification matches the
// genuine latent rule of the family that produced its origin patch. It is
// the automatic stand-in for the paper's manual spec-correctness sampling
// (RQ2, §8.2): specs from family patches that state the intended rule are
// correct; every other relation (extra relations from family patches,
// anything from ambiguous or noise patches) counts as incorrect.
func SpecIsIntended(fam *Family, s *spec.Spec) bool {
	r := s.Constraint.Rel
	switch fam.Name {
	case "npd":
		return s.Constraint.Forbidden && r.Kind == spec.RelReach &&
			r.V.Kind == spec.VAPIRet && hasSuffix(r.V.API, "_alloc_mem") &&
			(r.U.Kind == spec.UDeref || r.U.Kind == spec.UIndex)
	case "wrongec":
		return !s.Constraint.Forbidden && r.Kind == spec.RelReach &&
			r.V.Kind == spec.VLiteral && r.V.Lit == -12 &&
			r.U.Kind == spec.UIfaceRet
	case "oob":
		return s.Constraint.Forbidden && r.Kind == spec.RelReach &&
			r.V.Kind == spec.VIfaceArg &&
			(r.U.Kind == spec.UIndex || r.U.Kind == spec.UDeref)
	case "uaf":
		return s.Constraint.Forbidden && r.Kind == spec.RelOrder &&
			r.U2.Kind == spec.UAPIArg && hasSuffix(r.U2.API, "_put_device")
	case "memleak":
		return !s.Constraint.Forbidden && r.Kind == spec.RelReach &&
			r.V.Kind == spec.VAPIRet && hasSuffix(r.V.API, "_kmalloc") &&
			r.U.Kind == spec.UAPIArg && hasSuffix(r.U.API, "_kfree")
	case "dbz":
		return s.Constraint.Forbidden && r.Kind == spec.RelReach &&
			r.U.Kind == spec.UDiv
	case "uninit":
		return s.Constraint.Forbidden && r.Kind == spec.RelReach &&
			r.V.Kind == spec.VUninit
	case "refput":
		return !s.Constraint.Forbidden && r.Kind == spec.RelReach &&
			r.V.Kind == spec.VAPIRet && hasSuffix(r.V.API, "_get_child") &&
			r.U.Kind == spec.UAPIArg && hasSuffix(r.U.API, "_node_put")
	}
	return false
}

func hasSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}
