package kernelgen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"seal/internal/patch"
)

// WriteTo materializes the corpus on disk:
//
//	dir/tree/...            the current source tree (with latent bugs)
//	dir/patches/<id>/pre/   pre-patch sources
//	dir/patches/<id>/post/  post-patch sources
//	dir/groundtruth.json    seeded bugs + driver metadata
func (c *Corpus) WriteTo(dir string) error {
	for name, src := range c.Files {
		p := filepath.Join(dir, "tree", filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			return err
		}
	}
	for _, pt := range c.Patches {
		for side, files := range map[string]map[string]string{"pre": pt.Pre, "post": pt.Post} {
			for name, src := range files {
				p := filepath.Join(dir, "patches", pt.ID, side, filepath.FromSlash(name))
				if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
					return err
				}
				if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
					return err
				}
			}
		}
		meta := map[string]interface{}{"id": pt.ID, "description": pt.Description, "tags": pt.Tags}
		data, _ := json.MarshalIndent(meta, "", "  ")
		if err := os.WriteFile(filepath.Join(dir, "patches", pt.ID, "patch.json"), data, 0o644); err != nil {
			return err
		}
	}
	gt := struct {
		Bugs    []SeededBug  `json:"bugs"`
		Drivers []DriverInfo `json:"drivers"`
	}{c.Bugs, c.Drivers}
	data, err := json.MarshalIndent(gt, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "groundtruth.json"), data, 0o644)
}

// LoadPatches reads a dir/patches/... layout back into patch values.
func LoadPatches(dir string) ([]*patch.Patch, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	var out []*patch.Patch
	for _, id := range ids {
		p := &patch.Patch{ID: id, Pre: map[string]string{}, Post: map[string]string{}, Tags: map[string]string{}}
		for side, m := range map[string]map[string]string{"pre": p.Pre, "post": p.Post} {
			root := filepath.Join(dir, id, side)
			err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
				if err != nil || info.IsDir() {
					return err
				}
				data, err := os.ReadFile(path)
				if err != nil {
					return err
				}
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				m[filepath.ToSlash(rel)] = string(data)
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("patch %s/%s: %w", id, side, err)
			}
		}
		if metaData, err := os.ReadFile(filepath.Join(dir, id, "patch.json")); err == nil {
			var meta struct {
				Description string            `json:"description"`
				Tags        map[string]string `json:"tags"`
			}
			if json.Unmarshal(metaData, &meta) == nil {
				p.Description = meta.Description
				if meta.Tags != nil {
					p.Tags = meta.Tags
				}
			}
		}
		out = append(out, p)
	}
	return out, nil
}
