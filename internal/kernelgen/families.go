// Package kernelgen generates a deterministic synthetic "mini-Linux"
// corpus: subsystems exposing ops-struct interfaces, drivers implementing
// them (correct, buggy, and confuser variants), historical security
// patches fixing a subset of the bugs, and exact ground truth. It
// substitutes for Linux v6.2 + 12,571 historical patches (DESIGN.md §2),
// reproducing the bug families of paper Table 2:
//
//	NPD        missing NULL check on an allocation API result
//	WrongEC    wrong / dropped error code on an API failure path
//	OOB        missing bounds check on an interface argument field
//	UAF        refcount drop (put) ordered before a later use
//	MemLeak    missing deallocation on an error path
//	DbZ        missing zero check before division
//	UninitVal  output consumed while conditionally uninitialized
//	RefPut     missing node put on an error path (leak; with an
//	           ownership-transfer confuser reproducing the paper's Fig. 9
//	           incorrect-spec class)
package kernelgen

import (
	"fmt"
	"strings"
)

// Variant selects which flavour of a driver a family renders.
type Variant int

// Driver variants.
const (
	// Correct follows the latent interface rule.
	Correct Variant = iota
	// Buggy violates it (the seeded bug).
	Buggy
	// Confuser is semantically correct code that an inferred spec is
	// likely to flag — the controlled false-positive population (paper
	// §8.3 FP analysis: equivalent APIs, checks beyond the interface,
	// ownership transfer).
	Confuser
)

// Family describes one bug family: how to render a subsystem header and
// each driver variant.
type Family struct {
	// Name is the family key ("npd", "oob", ...).
	Name string
	// BugKind is the paper Table 2 bug type seeded by Buggy variants.
	BugKind string
	// Subsystem is the Table 1 location prefix ("drivers/media/usb").
	Subsystem string
	// EntryPoint classifies how the interface is reached ("syscall",
	// "interrupt", "internal") for the exploitability analysis of paper
	// §8.1 (33.1% of found bugs in system-call handlers, 5.3% in
	// interrupt handlers).
	EntryPoint string
	// HasConfuser reports whether the family defines a Confuser variant.
	HasConfuser bool
	// Render emits the complete driver translation unit. sub is the
	// subsystem instance prefix (e.g. "media0"), drv the driver prefix
	// (e.g. "tw68").
	Render func(sub, drv string, v Variant) string
	// IfaceName returns the interface identifier ("<ops struct>.<field>")
	// for a subsystem instance.
	IfaceName func(sub string) string
	// EntryFunc returns the interface implementation's function name (the
	// ground-truth bug location for Buggy variants).
	EntryFunc func(sub, drv string) string
}

// Families lists every bug family in a fixed order.
var Families = []*Family{npdFamily, wrongECFamily, oobFamily, uafFamily,
	memleakFamily, dbzFamily, uninitFamily, refputFamily}

// jitter returns small semantics-preserving structural variations keyed by
// the driver name, so sibling implementations are not textual clones of
// each other: detection must work through the abstracted specification,
// never through surface similarity.
func jitter(drv string, n int) bool {
	h := 0
	for i := 0; i < len(drv); i++ {
		h = h*31 + int(drv[i])
	}
	if h < 0 {
		h = -h
	}
	return h%n == 0
}

// uafPrelude gives some remove() implementations an unrelated prologue.
func uafPrelude(drv string) string {
	if jitter(drv, 3) {
		return `	int minor = pdev->dev.devt + 1;
	if (minor < 0)
		return -EINVAL;
`
	}
	return ""
}

// FamilyByName returns the named family or nil.
func FamilyByName(name string) *Family {
	for _, f := range Families {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// NPD: API result dereferenced without a NULL check. The patch adds the
// check, yielding a PΨ spec: forbidden ret[alloc] ↪ deref under ret == 0.

var npdFamily = &Family{
	Name:        "npd",
	BugKind:     "NPD",
	Subsystem:   "drivers/media/usb",
	EntryPoint:  "syscall",
	HasConfuser: true,
	IfaceName:   func(sub string) string { return sub + "_ops.buf_prepare" },
	EntryFunc:   func(sub, drv string) string { return drv + "_buf_prepare" },
	Render: func(sub, drv string, v Variant) string {
		var body string
		switch v {
		case Correct:
			body = `	buf->cpu = ` + sub + `_alloc_mem(buf->size);
	if (buf->cpu == NULL)
		return -ENOMEM;
	buf->cpu[0] = 7;
	buf->state = 1;
	return 0;`
		case Buggy:
			body = `	buf->cpu = ` + sub + `_alloc_mem(buf->size);
	buf->cpu[0] = 7;
	buf->state = 1;
	return 0;`
		case Confuser:
			// The NULL check lives behind an indirect call that the
			// analysis refuses to cross (paper FP cause: "necessary
			// conditional checks may be placed beyond the current
			// interface").
			body = `	buf->cpu = ` + sub + `_alloc_mem(buf->size);
	if (` + drv + `_qops.validate(buf))
		return -ENOMEM;
	buf->cpu[0] = 7;
	buf->state = 1;
	return 0;`
		}
		prelude := ""
		if jitter(drv, 2) {
			prelude = `	int tries = buf->size + 1;
	if (tries > 4096)
		return -EINVAL;
`
		}
		validate := ""
		validateInit := ""
		if v == Confuser {
			validate = `
int ` + drv + `_validate(struct ` + sub + `_buf *buf) {
	if (buf->cpu == NULL)
		return 1;
	return 0;
}
`
			validateInit = `
	.validate = ` + drv + `_validate,`
		}
		return `struct ` + sub + `_buf {
	int *cpu;
	int size;
	int state;
};
struct ` + sub + `_ops {
	int (*buf_prepare)(struct ` + sub + `_buf *buf);
	int (*validate)(struct ` + sub + `_buf *buf);
};
int *` + sub + `_alloc_mem(int size);
void pr_debug(int level);
` + validate + `
int ` + drv + `_buf_prepare(struct ` + sub + `_buf *buf) {
	pr_debug(3);
` + prelude + body + `
}
struct ` + sub + `_ops ` + drv + `_qops = {
	.buf_prepare = ` + drv + `_buf_prepare,` + validateInit + `
};
`
	},
}

// ---------------------------------------------------------------------------
// WrongEC: the Fig. 3 shape — a helper returns -ENOMEM on API failure and
// the interface implementation must propagate it. The patch makes the
// return value flow out, yielding a P+ spec: required lit[-ENOMEM] ↪
// ret[iface] under ret[dma] == 0.

var wrongECFamily = &Family{
	Name:       "wrongec",
	BugKind:    "WrongEC",
	Subsystem:  "drivers/media/pci",
	EntryPoint: "syscall",
	IfaceName:  func(sub string) string { return sub + "_vops.vbuf_prepare" },
	EntryFunc:  func(sub, drv string) string { return drv + "_vbuf_prepare" },
	Render: func(sub, drv string, v Variant) string {
		call := `	return ` + drv + `_risc_alloc(&vb->risc);`
		if v == Buggy {
			call = `	` + drv + `_risc_alloc(&vb->risc);
	return 0;`
		}
		return `struct ` + sub + `_risc {
	int *cpu;
	int size;
};
struct ` + sub + `_vbuf {
	struct ` + sub + `_risc risc;
	int state;
};
struct ` + sub + `_vops {
	int (*vbuf_prepare)(struct ` + sub + `_vbuf *vb);
};
int *` + sub + `_dma_alloc(int size);
int ` + drv + `_risc_alloc(struct ` + sub + `_risc *risc) {
	risc->cpu = ` + sub + `_dma_alloc(risc->size);
	if (risc->cpu == NULL)
		return -ENOMEM;
	return 0;
}
int ` + drv + `_vbuf_prepare(struct ` + sub + `_vbuf *vb) {
` + call + `
}
struct ` + sub + `_vops ` + drv + `_vqops = {
	.vbuf_prepare = ` + drv + `_vbuf_prepare,
};
`
	},
}

// ---------------------------------------------------------------------------
// OOB: the Fig. 4 shape — a length field must be sanity-checked before the
// copy loop. PΨ spec: forbidden arg ↪ index under len > MAX.

var oobFamily = &Family{
	Name:       "oob",
	BugKind:    "OOB",
	Subsystem:  "drivers/i2c/busses",
	EntryPoint: "syscall",
	IfaceName:  func(sub string) string { return sub + "_algorithm.xfer" },
	EntryFunc:  func(sub, drv string) string { return drv + "_xfer" },
	Render: func(sub, drv string, v Variant) string {
		loop := `		for (i = 1; i <= data->len; i++)
			` + sub + `_msgbuf[i] = data->block[i];`
		if v == Correct {
			loop = `		if (data->len <= ` + strings.ToUpper(sub) + `_MAX) {
			for (i = 1; i <= data->len; i++)
				` + sub + `_msgbuf[i] = data->block[i];
		}`
		}
		return `#define ` + strings.ToUpper(sub) + `_BLOCK_CMD 8
#define ` + strings.ToUpper(sub) + `_MAX 32
struct ` + sub + `_data {
	int len;
	char block[34];
};
struct ` + sub + `_algorithm {
	int (*xfer)(int size, struct ` + sub + `_data *data);
};
char ` + sub + `_msgbuf[34];
int ` + drv + `_xfer(int size, struct ` + sub + `_data *data) {
	int i;
	switch (size) {
	case ` + strings.ToUpper(sub) + `_BLOCK_CMD:
` + loop + `
		break;
	}
	return 0;
}
struct ` + sub + `_algorithm ` + drv + `_algo = {
	.xfer = ` + drv + `_xfer,
};
`
	},
}

// ---------------------------------------------------------------------------
// UAF: the Fig. 5 shape — put_device ordered before a later use of the
// device memory. PΩ spec: forbidden order (put ≺ use).

var uafFamily = &Family{
	Name:       "uaf",
	BugKind:    "UAF",
	Subsystem:  "drivers/platform",
	EntryPoint: "internal",
	IfaceName:  func(sub string) string { return sub + "_driver.remove" },
	EntryFunc:  func(sub, drv string) string { return drv + "_remove" },
	Render: func(sub, drv string, v Variant) string {
		body := `	` + sub + `_ida_free(&` + drv + `_ida, pdev->dev.devt);
	` + sub + `_put_device(&pdev->dev);`
		if v == Buggy {
			body = `	` + sub + `_put_device(&pdev->dev);
	` + sub + `_ida_free(&` + drv + `_ida, pdev->dev.devt);`
		}
		return `struct ` + sub + `_device { int devt; int refcount; };
struct ` + sub + `_pdev { struct ` + sub + `_device dev; };
struct ` + sub + `_ida { int bits; };
struct ` + sub + `_driver {
	int (*remove)(struct ` + sub + `_pdev *pdev);
};
void ` + sub + `_put_device(struct ` + sub + `_device *dev);
void ` + sub + `_ida_free(struct ` + sub + `_ida *ida, int id);
struct ` + sub + `_ida ` + drv + `_ida;
int ` + drv + `_remove(struct ` + sub + `_pdev *pdev) {
` + uafPrelude(drv) + body + `
	return 0;
}
struct ` + sub + `_driver ` + drv + `_driver = {
	.remove = ` + drv + `_remove,
};
`
	},
}

// ---------------------------------------------------------------------------
// MemLeak: allocation must be released on the registration error path.
// P+ spec: required ret[kmalloc] ↪ arg0[kfree] under ret[register] != 0.
// Confuser: releases through the equivalent sensitive-free API (paper FP
// cause: "unknown equivalent post-operations").

var memleakFamily = &Family{
	Name:        "memleak",
	BugKind:     "MemLeak",
	Subsystem:   "drivers/mmc/host",
	EntryPoint:  "internal",
	HasConfuser: true,
	IfaceName:   func(sub string) string { return sub + "_hdrv.probe" },
	EntryFunc:   func(sub, drv string) string { return drv + "_probe" },
	Render: func(sub, drv string, v Variant) string {
		free := `		` + sub + `_kfree(buf);
`
		switch v {
		case Buggy:
			free = ""
		case Confuser:
			free = `		` + sub + `_kfree_sensitive(buf);
`
		}
		return `struct ` + sub + `_host { int id; int state; };
struct ` + sub + `_hdrv {
	int (*probe)(struct ` + sub + `_host *host);
};
int *` + sub + `_kmalloc(int size);
void ` + sub + `_kfree(int *p);
void ` + sub + `_kfree_sensitive(int *p);
int ` + sub + `_register_host(struct ` + sub + `_host *host, int *buf);
void pr_debug(int level);
int ` + drv + `_probe(struct ` + sub + `_host *host) {
	pr_debug(3);
	int *buf = ` + sub + `_kmalloc(64);
	if (buf == NULL)
		return -ENOMEM;
	int ret = ` + sub + `_register_host(host, buf);
	if (ret != 0) {
` + free + `		return ret;
	}
	host->state = 1;
	return 0;
}
struct ` + sub + `_hdrv ` + drv + `_hdrv = {
	.probe = ` + drv + `_probe,
};
`
	},
}

// ---------------------------------------------------------------------------
// DbZ: a hardware-controlled field used as divisor must be checked against
// zero first. PΨ spec: forbidden arg ↪ div under pixclock == 0.

var dbzFamily = &Family{
	Name:       "dbz",
	BugKind:    "DbZ",
	Subsystem:  "drivers/video/fbdev",
	EntryPoint: "syscall",
	IfaceName:  func(sub string) string { return sub + "_fbops.check_var" },
	EntryFunc:  func(sub, drv string) string { return drv + "_check_var" },
	Render: func(sub, drv string, v Variant) string {
		guard := ""
		if v == Correct {
			guard = `	if (var->pixclock == 0)
		return -EINVAL;
`
		}
		return `struct ` + sub + `_var {
	int pixclock;
	int xres;
};
struct ` + sub + `_fbops {
	int (*check_var)(struct ` + sub + `_var *var);
};
void pr_debug(int level);
int ` + drv + `_check_var(struct ` + sub + `_var *var) {
	pr_debug(3);
` + guard + `	int rate = 100000 / var->pixclock;
	if (rate > var->xres)
		return -ERANGE;
	return 0;
}
struct ` + sub + `_fbops ` + drv + `_fbops = {
	.check_var = ` + drv + `_check_var,
};
`
	},
}

// ---------------------------------------------------------------------------
// UninitVal: the reported value is only written on one branch; the patch
// adds the unconditional initialization. P− spec: forbidden uninit ↪
// arg0[report].

var uninitFamily = &Family{
	Name:       "uninit",
	BugKind:    "UninitVal",
	Subsystem:  "drivers/net/wireless",
	EntryPoint: "interrupt",
	IfaceName:  func(sub string) string { return sub + "_nops.get_stats" },
	EntryFunc:  func(sub, drv string) string { return drv + "_get_stats" },
	Render: func(sub, drv string, v Variant) string {
		init := ""
		if v == Correct {
			init = `	val = 0;
`
		}
		return `struct ` + sub + `_net { int mtu; int flags; };
struct ` + sub + `_nops {
	int (*get_stats)(struct ` + sub + `_net *dev);
};
int ` + sub + `_read_reg(struct ` + sub + `_net *dev);
void ` + sub + `_report(int v);
int ` + drv + `_get_stats(struct ` + sub + `_net *dev) {
	int val;
` + init + `	if (dev->mtu > 100) {
		val = ` + sub + `_read_reg(dev);
	}
	` + sub + `_report(val);
	return 0;
}
struct ` + sub + `_nops ` + drv + `_nops = {
	.get_stats = ` + drv + `_get_stats,
};
`
	},
}

// ---------------------------------------------------------------------------
// RefPut: a child node obtained from the firmware tree must be put on the
// property-read error path (the paper's Fig. 9 patch). P+ spec: required
// ret[get_child] ↪ arg0[node_put] under ret[read_prop] != 0. Confuser:
// ownership is transferred to the registry, so the put is rightly absent —
// the inferred spec flags it anyway (the paper's dominant incorrect-spec
// class).

var refputFamily = &Family{
	Name:        "refput",
	BugKind:     "MemLeak",
	Subsystem:   "drivers/firmware",
	EntryPoint:  "internal",
	HasConfuser: true,
	IfaceName:   func(sub string) string { return sub + "_fwdrv.parse" },
	EntryFunc:   func(sub, drv string) string { return drv + "_parse" },
	Render: func(sub, drv string, v Variant) string {
		var errPath, tail string
		switch v {
		case Correct:
			errPath = `		` + sub + `_node_put(sub_node);
`
			tail = `	` + sub + `_node_put(sub_node);
	return 0;`
		case Buggy:
			errPath = ""
			tail = `	` + sub + `_node_put(sub_node);
	return 0;`
		case Confuser:
			errPath = `		` + sub + `_node_put(sub_node);
`
			tail = `	` + sub + `_register_node(sub_node);
	return 0;`
		}
		return `struct ` + sub + `_node { int id; };
struct ` + sub + `_fwdrv {
	int (*parse)(struct ` + sub + `_node *parent);
};
struct ` + sub + `_node *` + sub + `_get_child(struct ` + sub + `_node *parent);
int ` + sub + `_read_prop(struct ` + sub + `_node *n);
void ` + sub + `_node_put(struct ` + sub + `_node *n);
void ` + sub + `_register_node(struct ` + sub + `_node *n);
void pr_debug(int level);
int ` + drv + `_parse(struct ` + sub + `_node *parent) {
	pr_debug(3);
	struct ` + sub + `_node *sub_node = ` + sub + `_get_child(parent);
	if (sub_node == NULL)
		return -EINVAL;
	int ret = ` + sub + `_read_prop(sub_node);
	if (ret != 0) {
` + errPath + `		return ret;
	}
` + tail + `
}
struct ` + sub + `_fwdrv ` + drv + `_fwdrv = {
	.parse = ` + drv + `_parse,
};
`
	},
}

// AdhocSource renders drivers for the "ad-hoc patch" population: a tuner
// interface whose instance-0 driver received an idiosyncratic fix pairing
// the shared register-write API with a sync call. The inferred pairing
// rule is genuinely ad-hoc — other drivers legitimately write registers
// without syncing — so the specification it produces is incorrect and its
// violations are false positives (the paper's dominant incorrect-spec
// class, §8.2 Fig. 9).
//
// All adhoc drivers share the adhoc_reg_write / adhoc_reg_sync APIs so the
// ad-hoc rule generalizes across them.
// apiPrefix selects the register-API namespace: the shared "adhoc" prefix
// lets the ad-hoc rule (wrongly) generalize across instances; a unique
// prefix makes the rule restrictive — it applies nowhere else and its spec
// is simply dead weight, like most of the paper's sampled-incorrect specs.
func AdhocSource(sub, drv, apiPrefix string, fixed bool, patched bool) string {
	sync := ""
	if fixed && patched {
		sync = `		` + apiPrefix + `_reg_sync(st);
`
	}
	return `struct ` + sub + `_ctx { int mode; int state; };
struct ` + sub + `_tops {
	int (*tune)(struct ` + sub + `_ctx *ctx);
};
int ` + apiPrefix + `_reg_write(int op);
void ` + apiPrefix + `_reg_sync(int st);
int ` + drv + `_tune(struct ` + sub + `_ctx *ctx) {
	int st = ` + apiPrefix + `_reg_write(ctx->mode);
	if (st != 0) {
` + sync + `		return st;
	}
	ctx->state = 1;
	return 0;
}
struct ` + sub + `_tops ` + drv + `_tops = {
	.tune = ` + drv + `_tune,
};
`
}

// NoiseSource renders a behaviour-preserving refactor pair (a patch that
// yields zero relations, paper §8.2: 1,529 such patches).
func NoiseSource(idx int, post bool) string {
	expr := "a + b"
	if post {
		expr = "b + a"
	}
	return fmt.Sprintf(`int noise%d_helper(int a, int b) {
	int s = %s;
	int t = s * 2;
	return t;
}
`, idx, expr)
}
