package kernelgen

import (
	"fmt"
	"strings"
	"testing"

	"seal/internal/cir"
	"seal/internal/ir"
	"seal/internal/patch"
)

func TestGenerateDeterministic(t *testing.T) {
	c1 := Generate(DefaultConfig())
	c2 := Generate(DefaultConfig())
	if len(c1.Files) != len(c2.Files) {
		t.Fatalf("file counts differ: %d vs %d", len(c1.Files), len(c2.Files))
	}
	for name, src := range c1.Files {
		if c2.Files[name] != src {
			t.Fatalf("file %s differs between runs", name)
		}
	}
	if len(c1.Patches) != len(c2.Patches) || len(c1.Bugs) != len(c2.Bugs) {
		t.Fatal("patches or bugs differ between runs")
	}
}

func TestGeneratedCorpusParsesAndLinks(t *testing.T) {
	c := Generate(DefaultConfig())
	var files []*cir.File
	for _, name := range c.SortedFileNames() {
		f, err := cir.ParseFile(name, c.Files[name])
		if err != nil {
			t.Fatalf("generated file does not parse: %v\n%s", err, c.Files[name])
		}
		files = append(files, f)
	}
	prog, err := ir.NewProgram(files...)
	if err != nil {
		t.Fatalf("generated corpus does not link: %v", err)
	}
	if len(prog.FuncList) == 0 || len(prog.OpsAssigns) == 0 {
		t.Fatal("corpus has no functions or ops registrations")
	}
	// Every ground-truth bug function must exist.
	for _, b := range c.Bugs {
		if prog.Funcs[b.Func] == nil {
			t.Errorf("ground-truth function %s missing from program", b.Func)
		}
	}
}

func TestGeneratedPatchesAnalyzable(t *testing.T) {
	c := Generate(DefaultConfig())
	if len(c.Patches) == 0 {
		t.Fatal("no patches generated")
	}
	famPatches := 0
	for _, p := range c.Patches {
		a, err := p.Analyze()
		if err != nil {
			t.Fatalf("patch %s: %v", p.ID, err)
		}
		if p.Tags["family"] != "noise" {
			famPatches++
			pre := a.ChangedStmts(patch.PreSide)
			post := a.ChangedStmts(patch.PostSide)
			if len(pre)+len(post) == 0 {
				t.Errorf("family patch %s has no changed statements", p.ID)
			}
		}
	}
	cfg := DefaultConfig()
	want := len(Families)*cfg.Instances + cfg.AdhocInstances
	if famPatches != want+cfg.AdhocQuiet {
		t.Errorf("non-noise patches = %d, want %d", famPatches, want)
	}
}

func TestAllVariantsParse(t *testing.T) {
	for _, fam := range Families {
		variants := []Variant{Correct, Buggy}
		if fam.HasConfuser {
			variants = append(variants, Confuser)
		}
		for _, v := range variants {
			src := fam.Render("t0", "t0_dev", v)
			if _, err := cir.ParseFile("t.c", src); err != nil {
				t.Errorf("family %s variant %d: %v\n%s", fam.Name, v, err, src)
			}
		}
	}
}

func TestYearDistribution(t *testing.T) {
	cfg := EvalConfig()
	c := Generate(cfg)
	if len(c.Bugs) < 10 {
		t.Skip("too few bugs for distribution check")
	}
	over10, sum := 0, 0
	for _, b := range c.Bugs {
		age := cfg.YearNow - b.Year
		sum += age
		if age > 10 {
			over10++
		}
	}
	mean := float64(sum) / float64(len(c.Bugs))
	frac := float64(over10) / float64(len(c.Bugs))
	if mean < 5 || mean > 11 {
		t.Errorf("mean latent age = %.1f, want ≈7.7 (band 5-11)", mean)
	}
	if frac < 0.12 || frac > 0.5 {
		t.Errorf("over-10y fraction = %.2f, want ≈0.29 (band 0.12-0.5)", frac)
	}
}

func TestGroundTruthConsistency(t *testing.T) {
	c := Generate(DefaultConfig())
	byFunc := c.DriverByFunc()
	for _, b := range c.Bugs {
		d, ok := byFunc[b.Func]
		if !ok {
			t.Errorf("bug %s has no driver metadata", b.Func)
			continue
		}
		if d.Variant != Buggy {
			t.Errorf("bug %s points at a %v driver", b.Func, d.Variant)
		}
		if d.Patched {
			t.Errorf("bug %s is marked patched; patched drivers are fixed in-tree", b.Func)
		}
	}
	// Patched drivers are correct in the tree.
	for _, d := range c.Drivers {
		if d.Patched && d.Variant != Correct {
			t.Errorf("patched driver %s stored as %v", d.Name, d.Variant)
		}
	}
}

func TestJitterVariesSiblingSources(t *testing.T) {
	// Sibling drivers of one family instance must not all be textual
	// clones of each other (modulo names): the corpus carries structural
	// variation so detection cannot succeed by surface similarity.
	c := Generate(EvalConfig())
	bodies := make(map[string][]string) // family+variant -> normalized bodies
	for _, d := range c.Drivers {
		if d.Family != "npd" && d.Family != "uaf" {
			continue
		}
		src := c.Files[d.File]
		norm := strings.ReplaceAll(src, d.Name, "DRV")
		// Also erase the subsystem prefix.
		if i := strings.Index(d.Name, "_"); i > 0 {
			norm = strings.ReplaceAll(norm, d.Name[:i], "SUB")
		}
		key := d.Family + "/" + fmt.Sprint(d.Variant)
		bodies[key] = append(bodies[key], norm)
	}
	for key, list := range bodies {
		if len(list) < 3 {
			continue
		}
		distinct := make(map[string]bool)
		for _, b := range list {
			distinct[b] = true
		}
		if len(distinct) < 2 {
			t.Errorf("%s: all %d sibling drivers are textual clones", key, len(list))
		}
	}
}
