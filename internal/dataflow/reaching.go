package dataflow

import (
	"seal/internal/cir"
	"seal/internal/ir"
)

// DataDep is one intra-procedural data-dependence edge: the value defined
// at Def reaches the read of Loc at Use.
type DataDep struct {
	Def *ir.Stmt
	Use *ir.Stmt
	Loc ir.Loc // the location read at Use
}

// FuncFlow is the flow-sensitive def-use solution of one function.
type FuncFlow struct {
	Fn   *ir.Func
	Deps []DataDep

	// UseDefs indexes Deps by use statement.
	UseDefs map[*ir.Stmt][]DataDep
	// DefUses indexes Deps by defining statement.
	DefUses map[*ir.Stmt][]DataDep
	// Unrooted lists (use stmt, loc) pairs whose read has no reaching
	// definition inside the function: reads of parameters' pointees,
	// globals, or uninitialized locals. These are the slicing sources /
	// uninitialized-value evidence.
	Unrooted []DataDep // Def == nil
}

type flowDef struct {
	stmt   *ir.Stmt
	loc    ir.Loc
	strong bool
	effect bool // call-effect write (weak fallback, see DefLoc)
}

// isStrong reports whether a write to loc can kill previous writes: the
// path must be concrete (no deref, no unknown offset).
func isStrong(l ir.Loc) bool {
	for _, st := range l.Path {
		if st.Kind == ir.StepDeref || (st.Kind == ir.StepOff && st.Off == ir.AnyOff) {
			return false
		}
	}
	return true
}

// pointeeLoc derives the access path of the memory a pointer-valued
// argument exposes to a callee: &x.f -> x.f[*], p -> p*[*], p->f -> p->f*[*].
func pointeeLoc(fn *ir.Func, arg cir.Expr) (ir.Loc, bool) {
	switch x := arg.(type) {
	case *cir.UnaryExpr:
		if x.Op == cir.TokAmp {
			if lv, _, ok := fn.LvalLoc(x.X); ok {
				lv.Path = append(append([]ir.Step{}, lv.Path...), ir.Step{Kind: ir.StepOff, Off: ir.AnyOff})
				return normalizeLoc(lv), true
			}
		}
		return ir.Loc{}, false
	case *cir.CastExpr:
		return pointeeLoc(fn, x.X)
	default:
		if lv, _, ok := fn.LvalLoc(arg); ok {
			if fn.TypeOf(arg).IsPtr() {
				lv.Path = append(append([]ir.Step{}, lv.Path...),
					ir.Step{Kind: ir.StepDeref}, ir.Step{Kind: ir.StepOff, Off: ir.AnyOff})
				return normalizeLoc(lv), true
			}
		}
	}
	return ir.Loc{}, false
}

func normalizeLoc(l ir.Loc) ir.Loc {
	var out []ir.Step
	for _, s := range l.Path {
		if s.Kind == ir.StepOff && len(out) > 0 && out[len(out)-1].Kind == ir.StepOff {
			last := &out[len(out)-1]
			if last.Off == ir.AnyOff || s.Off == ir.AnyOff {
				last.Off = ir.AnyOff
			} else {
				last.Off += s.Off
			}
			continue
		}
		out = append(out, s)
	}
	l.Path = out
	return l
}

// DefLoc is a may-written location; Effect marks call-effect writes
// through pointer arguments, which act as weak fallback definitions: they
// only feed def-use edges for reads no regular definition reaches. This
// keeps API side effects from splicing themselves into value-flow paths
// between a datum and its uses ("we cannot assume one API could manipulate
// arbitrary memory", paper §5 step 2) while still rooting
// initialized-by-callee reads.
type DefLoc struct {
	Loc    ir.Loc
	Effect bool
}

// EffectiveDefsFlagged returns the locations a statement may write,
// including the call-effect writes through pointer arguments ("assume APIs
// could read/write passing pointer parameters and accessible fields",
// paper §7) and parameter pointee initialization at parameter-definition
// nodes.
func EffectiveDefsFlagged(fn *ir.Func, s *ir.Stmt) []DefLoc {
	var out []DefLoc
	for _, l := range s.Defs {
		out = append(out, DefLoc{Loc: l})
	}
	switch {
	case s.IsParamDef():
		v := s.ParamVar()
		if v != nil && v.Type.IsPtr() {
			out = append(out, DefLoc{Loc: ir.Loc{Base: v, Path: []ir.Step{{Kind: ir.StepDeref}, {Kind: ir.StepOff, Off: ir.AnyOff}}}})
		}
	case s.Kind == ir.StCall:
		for _, a := range s.Args {
			if pl, ok := pointeeLoc(fn, a); ok {
				out = append(out, DefLoc{Loc: pl, Effect: true})
			}
		}
	}
	return out
}

// EffectiveDefs returns just the locations of EffectiveDefsFlagged.
func EffectiveDefs(fn *ir.Func, s *ir.Stmt) []ir.Loc {
	flagged := EffectiveDefsFlagged(fn, s)
	out := make([]ir.Loc, len(flagged))
	for i, d := range flagged {
		out[i] = d.Loc
	}
	return out
}

// EffectiveUses returns the locations a statement may read, including
// callee reads through pointer arguments.
func EffectiveUses(fn *ir.Func, s *ir.Stmt) []ir.Loc {
	out := append([]ir.Loc{}, s.Uses...)
	if s.Kind == ir.StCall {
		for _, a := range s.Args {
			if pl, ok := pointeeLoc(fn, a); ok {
				out = append(out, pl)
			}
		}
	}
	return out
}

// FlowAnalyze computes reaching definitions and def-use chains for fn.
func FlowAnalyze(fn *ir.Func, pts *PointsTo) *FuncFlow {
	ff := &FuncFlow{
		Fn:      fn,
		UseDefs: make(map[*ir.Stmt][]DataDep),
		DefUses: make(map[*ir.Stmt][]DataDep),
	}

	// Enumerate all defs.
	var defs []flowDef
	defIdx := make(map[*ir.Stmt][]int)
	for _, b := range fn.Blocks {
		for _, s := range b.Stmts {
			for _, dl := range EffectiveDefsFlagged(fn, s) {
				defIdx[s] = append(defIdx[s], len(defs))
				defs = append(defs, flowDef{stmt: s, loc: dl.Loc, strong: isStrong(dl.Loc), effect: dl.Effect})
			}
		}
	}
	n := len(defs)

	alias := func(a, b ir.Loc) bool {
		if a.Base == b.Base && a.SameShape(b) {
			return true
		}
		// Distinct address-untaken direct locals cannot alias.
		if isStrong(a) && isStrong(b) && a.Base != b.Base {
			return false
		}
		if pts == nil {
			return a.Base == b.Base
		}
		return pts.MayAlias(fn, a, fn, b)
	}

	// Per-block GEN/KILL over def bitsets.
	type bits []bool
	newBits := func() bits { return make(bits, n) }
	union := func(dst, src bits) bool {
		changed := false
		for i, v := range src {
			if v && !dst[i] {
				dst[i] = true
				changed = true
			}
		}
		return changed
	}

	apply := func(set bits, s *ir.Stmt) {
		// Kill: strong defs of the same concrete loc.
		for _, di := range defIdx[s] {
			d := defs[di]
			if !d.strong {
				continue
			}
			for j := range defs {
				if defs[j].stmt != s && defs[j].loc.Equal(d.loc) {
					set[j] = false
				}
			}
		}
		for _, di := range defIdx[s] {
			set[di] = true
		}
	}

	in := make(map[*ir.Block]bits)
	out := make(map[*ir.Block]bits)
	for _, b := range fn.Blocks {
		in[b] = newBits()
		out[b] = newBits()
	}
	// Worklist iteration.
	work := append([]*ir.Block{}, fn.Blocks...)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		ib := newBits()
		for _, p := range b.Preds {
			union(ib, out[p])
		}
		in[b] = ib
		ob := append(bits{}, ib...)
		for _, s := range b.Stmts {
			apply(ob, s)
		}
		if union(out[b], ob) {
			for _, sc := range b.Succs {
				work = append(work, sc)
			}
		}
	}

	// Def-use chains: replay each block.
	seenDep := make(map[[3]interface{}]bool)
	for _, b := range fn.Blocks {
		cur := append(bits{}, in[b]...)
		for _, s := range b.Stmts {
			for _, u := range EffectiveUses(fn, s) {
				// Gather reaching defs, preferring regular definitions;
				// call-effect writes are weak fallbacks only.
				var regular, effects []int
				for j := range defs {
					if !cur[j] || defs[j].stmt == s {
						continue
					}
					if alias(defs[j].loc, u) {
						if defs[j].effect {
							effects = append(effects, j)
						} else {
							regular = append(regular, j)
						}
					}
				}
				chosen := regular
				if len(chosen) == 0 {
					chosen = effects
				}
				for _, j := range chosen {
					key := [3]interface{}{defs[j].stmt, s, u.Key()}
					if !seenDep[key] {
						seenDep[key] = true
						dep := DataDep{Def: defs[j].stmt, Use: s, Loc: u}
						ff.Deps = append(ff.Deps, dep)
						ff.UseDefs[s] = append(ff.UseDefs[s], dep)
						ff.DefUses[defs[j].stmt] = append(ff.DefUses[defs[j].stmt], dep)
					}
				}
				if len(chosen) == 0 {
					ff.Unrooted = append(ff.Unrooted, DataDep{Use: s, Loc: u})
				}
			}
			apply(cur, s)
		}
	}
	return ff
}
