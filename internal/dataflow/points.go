// Package dataflow implements the value-flow substrate of SEAL: a
// field-sensitive (byte-offset) Andersen-style points-to analysis and
// flow-sensitive reaching definitions producing def-use chains. Together
// they provide the data-dependence edges Ed of the PDG (paper Def. 6.1,
// §7 "Value-flow Analysis").
package dataflow

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"seal/internal/cir"
	"seal/internal/ir"
)

// ObjKind classifies abstract memory objects.
type ObjKind int

// Abstract object kinds.
const (
	// ObjVar is the storage of a named variable (local, param, global).
	ObjVar ObjKind = iota
	// ObjHeap is an allocation site (pointer-returning API call).
	ObjHeap
	// ObjSym is the symbolic pointee of a pointer parameter or pointer
	// global whose allocation is outside the analyzed region.
	ObjSym
)

// Object is an abstract memory object.
type Object struct {
	ID   int
	Kind ObjKind
	Var  *ir.Var  // ObjVar / ObjSym(param)
	Site *ir.Stmt // ObjHeap: the allocating call
	Name string
}

// String implements fmt.Stringer.
func (o *Object) String() string { return o.Name }

// Cell is a field-sensitive memory cell: an object plus a byte offset.
// Off == ir.AnyOff summarizes all offsets of the object.
type Cell struct {
	Obj *Object
	Off int
}

// String implements fmt.Stringer.
func (c Cell) String() string {
	if c.Off == ir.AnyOff {
		return c.Obj.Name + "[*]"
	}
	return fmt.Sprintf("%s+%d", c.Obj.Name, c.Off)
}

func (c Cell) key() string {
	return fmt.Sprintf("%d:%d", c.Obj.ID, c.Off)
}

// CellSet is a set of cells.
type CellSet map[string]Cell

func (s CellSet) add(c Cell) bool {
	k := c.key()
	if _, ok := s[k]; ok {
		return false
	}
	s[k] = c
	return true
}

func (s CellSet) addAll(o CellSet) bool {
	changed := false
	for _, c := range o {
		if s.add(c) {
			changed = true
		}
	}
	return changed
}

// Slice returns the cells in deterministic order.
func (s CellSet) Slice() []Cell {
	out := make([]Cell, 0, len(s))
	for _, c := range s {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Obj.ID != out[j].Obj.ID {
			return out[i].Obj.ID < out[j].Obj.ID
		}
		return out[i].Off < out[j].Off
	})
	return out
}

// PointsTo is the whole-program points-to solution.
type PointsTo struct {
	prog *ir.Program

	varObj map[*ir.Var]*Object
	symObj map[*ir.Var]*Object  // pointee of pointer params/globals
	heap   map[*ir.Stmt]*Object // per allocation site
	nextID int

	// pts maps pointer cells to their pointees.
	pts map[string]CellSet
	// cellIndex remembers every cell seen per object for AnyOff expansion.
	cellIndex map[int]map[int]bool

	// frozen flips after solve: every map above becomes read-only so the
	// solution can be queried from many goroutines at once. Variables not
	// prepopulated before the freeze (only synthetic query-time vars) get
	// objects from lateVarObj under mu.
	frozen     bool
	mu         sync.Mutex
	lateVarObj map[*ir.Var]*Object
	lateNextID int
}

// AllocAPIs lists default pointer-returning allocation APIs; any external
// API with a pointer return type is treated as an allocation site anyway,
// this set only controls naming.
var AllocAPIs = map[string]bool{
	"kmalloc": true, "kzalloc": true, "kcalloc": true,
	"dma_alloc_coherent": true, "vmalloc": true, "devm_kzalloc": true,
}

// Analyze computes the points-to solution for the program.
func Analyze(prog *ir.Program) *PointsTo {
	pt := &PointsTo{
		prog:      prog,
		varObj:    make(map[*ir.Var]*Object),
		symObj:    make(map[*ir.Var]*Object),
		heap:      make(map[*ir.Stmt]*Object),
		pts:       make(map[string]CellSet),
		cellIndex: make(map[int]map[int]bool),
	}
	pt.seed()
	pt.solve()
	pt.freeze()
	return pt
}

// freeze prepopulates the storage object of every program variable and
// switches the solution to read-only mode. After the freeze, queries
// (MayAlias, CellsOf, PointeeString) never mutate shared maps, so one
// PointsTo can back any number of concurrent PDG builds. Post-solve object
// creation would only ever install empty points-to sets, so skipping the
// inserts leaves query results unchanged.
func (pt *PointsTo) freeze() {
	for _, g := range pt.prog.GlobalVars {
		pt.objOfVar(g)
	}
	for _, fn := range pt.prog.FuncList {
		for _, v := range fn.Params {
			pt.objOfVar(v)
		}
		for _, v := range fn.Locals {
			pt.objOfVar(v)
		}
	}
	pt.lateVarObj = make(map[*ir.Var]*Object)
	pt.lateNextID = pt.nextID
	pt.frozen = true
}

func (pt *PointsTo) newObject(kind ObjKind, name string) *Object {
	o := &Object{ID: pt.nextID, Kind: kind, Name: name}
	pt.nextID++
	return o
}

// objOfVar returns the storage object of a variable.
func (pt *PointsTo) objOfVar(v *ir.Var) *Object {
	if o, ok := pt.varObj[v]; ok {
		return o
	}
	prefix := ""
	if v.Fn != nil {
		prefix = v.Fn.Name + "."
	}
	if pt.frozen {
		// Only synthetic query-time variables (never part of the program)
		// miss the prepopulated map; they have no points-to facts, so the
		// object just provides identity for the duration of the query.
		pt.mu.Lock()
		defer pt.mu.Unlock()
		if o, ok := pt.lateVarObj[v]; ok {
			return o
		}
		o := &Object{ID: pt.lateNextID, Kind: ObjVar, Var: v, Name: prefix + v.Name}
		pt.lateNextID++
		pt.lateVarObj[v] = o
		return o
	}
	o := pt.newObject(ObjVar, prefix+v.Name)
	o.Var = v
	pt.varObj[v] = o
	return o
}

// symOfVar returns the symbolic pointee object of a pointer variable.
func (pt *PointsTo) symOfVar(v *ir.Var) *Object {
	if o, ok := pt.symObj[v]; ok {
		return o
	}
	prefix := ""
	if v.Fn != nil {
		prefix = v.Fn.Name + "."
	}
	o := pt.newObject(ObjSym, "*"+prefix+v.Name)
	o.Var = v
	pt.symObj[v] = o
	return o
}

func (pt *PointsTo) heapOf(s *ir.Stmt) *Object {
	if o, ok := pt.heap[s]; ok {
		return o
	}
	o := pt.newObject(ObjHeap, fmt.Sprintf("heap@%s:%d", s.Callee, s.Line))
	o.Site = s
	pt.heap[s] = o
	return o
}

func (pt *PointsTo) get(c Cell) CellSet {
	k := c.key()
	if s, ok := pt.pts[k]; ok {
		return s
	}
	if pt.frozen {
		// Read-only mode: a missing cell has an empty points-to set, and
		// callers on the query paths only read the result. A nil CellSet
		// ranges and lookups as empty.
		return nil
	}
	s := make(CellSet)
	pt.pts[k] = s
	pt.noteCell(c)
	return s
}

func (pt *PointsTo) noteCell(c Cell) {
	if pt.frozen {
		return
	}
	m := pt.cellIndex[c.Obj.ID]
	if m == nil {
		m = make(map[int]bool)
		pt.cellIndex[c.Obj.ID] = m
	}
	m[c.Off] = true
}

// seed installs base facts: symbolic pointees for pointer params and
// pointer globals.
func (pt *PointsTo) seed() {
	for _, fn := range pt.prog.FuncList {
		for _, v := range fn.Params {
			if v.Type.IsPtr() {
				pt.get(Cell{Obj: pt.objOfVar(v)}).add(Cell{Obj: pt.symOfVar(v)})
			}
		}
	}
	for _, g := range pt.prog.GlobalVars {
		if g.Type.IsPtr() {
			pt.get(Cell{Obj: pt.objOfVar(g)}).add(Cell{Obj: pt.symOfVar(g)})
		}
	}
	_ = cir.Word
}

// solve iterates transfer functions over all statements to a fixpoint.
func (pt *PointsTo) solve() {
	for changed := true; changed; {
		changed = false
		for _, fn := range pt.prog.FuncList {
			for _, b := range fn.Blocks {
				for _, s := range b.Stmts {
					if pt.transfer(fn, s) {
						changed = true
					}
				}
			}
		}
	}
}

func (pt *PointsTo) transfer(fn *ir.Func, s *ir.Stmt) bool {
	switch s.Kind {
	case ir.StAssign:
		if s.LHS == nil {
			return false
		}
		lv, _, ok := fn.LvalLoc(s.LHS)
		if !ok {
			return false
		}
		src := pt.evalPtr(fn, s.RHS)
		if len(src) == 0 {
			return false
		}
		return pt.storeTo(fn, lv, src)
	case ir.StCall:
		changed := false
		// Result binding.
		if s.LHS != nil {
			lv, _, ok := fn.LvalLoc(s.LHS)
			if ok {
				if callee, isDef := pt.prog.Funcs[s.Callee]; isDef && s.Callee != "" {
					// Link all returned pointer values.
					for _, ret := range callee.ReturnStmts() {
						if ret.X == nil {
							continue
						}
						src := pt.evalPtr(callee, ret.X)
						if pt.storeTo(fn, lv, src) {
							changed = true
						}
					}
				} else if retTypeIsPtr(pt.prog, s) {
					// External pointer-returning API: allocation site.
					src := make(CellSet)
					src.add(Cell{Obj: pt.heapOf(s)})
					if pt.storeTo(fn, lv, src) {
						changed = true
					}
				}
			}
		}
		// Parameter binding for defined callees.
		if callee, isDef := pt.prog.Funcs[s.Callee]; isDef && s.Callee != "" {
			for i, arg := range s.Args {
				if i >= len(callee.Params) {
					break
				}
				formal := callee.Params[i]
				if !formal.Type.IsPtr() {
					continue
				}
				src := pt.evalPtr(fn, arg)
				if len(src) == 0 {
					continue
				}
				dst := pt.get(Cell{Obj: pt.objOfVar(formal)})
				if dst.addAll(src) {
					changed = true
				}
			}
		}
		return changed
	}
	return false
}

func retTypeIsPtr(prog *ir.Program, s *ir.Stmt) bool {
	if s.Callee == "" {
		return false
	}
	if proto, ok := prog.Protos[s.Callee]; ok {
		return proto.Ret.IsPtr()
	}
	return false
}

// storeTo unions src into the cells addressed by lv.
func (pt *PointsTo) storeTo(fn *ir.Func, lv ir.Loc, src CellSet) bool {
	cells := pt.cellsOfLoc(fn, lv)
	changed := false
	for _, c := range cells.Slice() {
		if pt.get(c).addAll(src) {
			changed = true
		}
	}
	return changed
}

// cellsOfLoc resolves an access path to the set of cells it denotes.
func (pt *PointsTo) cellsOfLoc(fn *ir.Func, l ir.Loc) CellSet {
	cur := make(CellSet)
	cur.add(Cell{Obj: pt.objOfVar(l.Base)})
	for _, st := range l.Path {
		next := make(CellSet)
		switch st.Kind {
		case ir.StepOff:
			for _, c := range cur {
				off := c.Off
				if off == ir.AnyOff || st.Off == ir.AnyOff {
					off = ir.AnyOff
				} else {
					off += st.Off
				}
				next.add(Cell{Obj: c.Obj, Off: off})
			}
		case ir.StepDeref:
			for _, c := range cur {
				next.addAll(pt.lookup(c))
			}
		}
		cur = next
	}
	for _, c := range cur {
		pt.noteCell(c)
	}
	return cur
}

// lookup reads pts at a cell, expanding AnyOff wildcards in both directions.
func (pt *PointsTo) lookup(c Cell) CellSet {
	out := make(CellSet)
	out.addAll(pt.get(c))
	if c.Off == ir.AnyOff {
		// Summary read: union over all recorded offsets of the object.
		for off := range pt.cellIndex[c.Obj.ID] {
			if off == ir.AnyOff {
				continue
			}
			out.addAll(pt.get(Cell{Obj: c.Obj, Off: off}))
		}
	} else {
		// A concrete read also sees the object's summary cell.
		out.addAll(pt.get(Cell{Obj: c.Obj, Off: ir.AnyOff}))
	}
	return out
}

// evalPtr computes the cells a pointer-valued expression may hold.
func (pt *PointsTo) evalPtr(fn *ir.Func, e cir.Expr) CellSet {
	out := make(CellSet)
	switch x := e.(type) {
	case nil:
		return out
	case *cir.Ident:
		if v := fn.VarByName(x.Name); v != nil {
			out.addAll(pt.lookup(Cell{Obj: pt.objOfVar(v)}))
		}
		return out
	case *cir.UnaryExpr:
		if x.Op == cir.TokAmp {
			// Address-of: the cells of the lvalue path themselves.
			if lv, _, ok := fn.LvalLoc(x.X); ok {
				return pt.cellsOfLoc(fn, lv)
			}
			return out
		}
		if x.Op == cir.TokStar {
			if lv, _, ok := fn.LvalLoc(x); ok {
				return pt.readLoc(fn, lv)
			}
		}
		return pt.evalPtr(fn, x.X)
	case *cir.FieldExpr, *cir.IndexExpr:
		if lv, _, ok := fn.LvalLoc(e); ok {
			return pt.readLoc(fn, lv)
		}
		return out
	case *cir.CastExpr:
		return pt.evalPtr(fn, x.X)
	case *cir.CondExpr:
		out.addAll(pt.evalPtr(fn, x.Then))
		out.addAll(pt.evalPtr(fn, x.Else))
		return out
	case *cir.BinaryExpr:
		// Pointer arithmetic: propagate base pointers.
		out.addAll(pt.evalPtr(fn, x.X))
		out.addAll(pt.evalPtr(fn, x.Y))
		return out
	}
	return out
}

// readLoc reads the pointer value stored at an access path.
func (pt *PointsTo) readLoc(fn *ir.Func, l ir.Loc) CellSet {
	cells := pt.cellsOfLoc(fn, l)
	out := make(CellSet)
	for _, c := range cells {
		out.addAll(pt.lookup(c))
	}
	return out
}

// CellsOf exposes access-path resolution for other analyses.
func (pt *PointsTo) CellsOf(fn *ir.Func, l ir.Loc) []Cell {
	return pt.cellsOfLoc(fn, l).Slice()
}

// MayAlias reports whether two access paths may denote overlapping memory.
// Two cells overlap when they share the object and have equal offsets or
// either side is the AnyOff summary.
func (pt *PointsTo) MayAlias(fn1 *ir.Func, l1 ir.Loc, fn2 *ir.Func, l2 ir.Loc) bool {
	c1 := pt.cellsOfLoc(fn1, l1)
	c2 := pt.cellsOfLoc(fn2, l2)
	for _, a := range c1 {
		for _, b := range c2 {
			if a.Obj != b.Obj {
				continue
			}
			if a.Off == b.Off || a.Off == ir.AnyOff || b.Off == ir.AnyOff {
				return true
			}
		}
	}
	return false
}

// PointeeString renders the points-to set of a variable for debugging.
func (pt *PointsTo) PointeeString(fn *ir.Func, name string) string {
	v := fn.VarByName(name)
	if v == nil {
		return "<unknown var>"
	}
	cells := pt.lookup(Cell{Obj: pt.objOfVar(v)})
	var parts []string
	for _, c := range cells.Slice() {
		parts = append(parts, c.String())
	}
	return strings.Join(parts, ", ")
}
