package dataflow

import (
	"strings"
	"testing"

	"seal/internal/cir"
	"seal/internal/ir"
)

func mustProg(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := cir.ParseFile("test.c", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.NewProgram(f)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func findCall(fn *ir.Func, callee string) *ir.Stmt {
	for _, s := range fn.Stmts() {
		if s.IsCallTo(callee) {
			return s
		}
	}
	return nil
}

func hasDep(ff *FuncFlow, def, use *ir.Stmt) bool {
	for _, d := range ff.Deps {
		if d.Def == def && d.Use == use {
			return true
		}
	}
	return false
}

func TestPointsToHeapAllocation(t *testing.T) {
	p := mustProg(t, `
int *kmalloc(int size);
int f(int n) {
	int *p = kmalloc(n);
	int *q = p;
	return *q;
}`)
	pts := Analyze(p)
	fn := p.Funcs["f"]
	sp := pts.PointeeString(fn, "p")
	sq := pts.PointeeString(fn, "q")
	if sp == "" || sp != sq {
		t.Errorf("p -> %q, q -> %q; want identical heap object", sp, sq)
	}
}

func TestPointsToAddressOf(t *testing.T) {
	p := mustProg(t, `
struct riscmem { int *cpu; int size; };
struct buffer { struct riscmem risc; int state; };
int helper(struct riscmem *r) { return r->size; }
int f(struct buffer *b) {
	struct riscmem *rp = &b->risc;
	return helper(rp);
}`)
	pts := Analyze(p)
	fn := p.Funcs["f"]
	// rp points into the symbolic pointee of b at offset 0.
	got := pts.PointeeString(fn, "rp")
	if got != "*f.b+0" {
		t.Errorf("rp -> %q, want *f.b+0", got)
	}
	// The formal r of helper receives the passed cell (alongside its own
	// symbolic pointee, which models calls from outside the corpus).
	hl := p.Funcs["helper"]
	gotR := pts.PointeeString(hl, "r")
	if !strings.Contains(gotR, "*f.b+0") {
		t.Errorf("helper.r -> %q, want to include *f.b+0", gotR)
	}
}

func TestPointsToFieldStoreLoad(t *testing.T) {
	p := mustProg(t, `
int *kmalloc(int size);
struct holder { int *ptr; };
int f(struct holder *h, int n) {
	h->ptr = kmalloc(n);
	int *x = h->ptr;
	return *x;
}`)
	pts := Analyze(p)
	fn := p.Funcs["f"]
	got := pts.PointeeString(fn, "x")
	if got == "" {
		t.Fatal("x has empty points-to set; field store/load lost")
	}
	// Must be the kmalloc heap object.
	if want := "heap@kmalloc"; len(got) < len(want) || got[:len(want)] != want {
		t.Errorf("x -> %q, want heap object from kmalloc", got)
	}
}

func TestMayAliasDistinctLocals(t *testing.T) {
	p := mustProg(t, `
int f(int a, int b) {
	int x = a;
	int y = b;
	return x + y;
}`)
	pts := Analyze(p)
	fn := p.Funcs["f"]
	lx := ir.Loc{Base: fn.VarByName("x")}
	ly := ir.Loc{Base: fn.VarByName("y")}
	if pts.MayAlias(fn, lx, fn, ly) {
		t.Error("distinct locals must not alias")
	}
	if !pts.MayAlias(fn, lx, fn, lx) {
		t.Error("a loc must alias itself")
	}
}

func TestFlowLinearDefUse(t *testing.T) {
	p := mustProg(t, `
int f(int a) {
	int x = a + 1;
	int y = x * 2;
	return y;
}`)
	pts := Analyze(p)
	fn := p.Funcs["f"]
	ff := FlowAnalyze(fn, pts)

	stmts := fn.Stmts()
	var defX, defY, ret *ir.Stmt
	for _, s := range stmts {
		switch {
		case s.Kind == ir.StAssign && cir.ExprString(s.LHS) == "x":
			defX = s
		case s.Kind == ir.StAssign && cir.ExprString(s.LHS) == "y":
			defY = s
		case s.Kind == ir.StReturn:
			ret = s
		}
	}
	if !hasDep(ff, defX, defY) {
		t.Error("missing dep x-def -> y-def")
	}
	if !hasDep(ff, defY, ret) {
		t.Error("missing dep y-def -> return")
	}
	if hasDep(ff, defX, ret) {
		t.Error("spurious dep x-def -> return")
	}
}

func TestFlowKillOnReassignment(t *testing.T) {
	p := mustProg(t, `
int f(int a, int b) {
	int x = a;
	x = b;
	return x;
}`)
	pts := Analyze(p)
	fn := p.Funcs["f"]
	ff := FlowAnalyze(fn, pts)
	var first, second, ret *ir.Stmt
	for _, s := range fn.Stmts() {
		if s.Kind == ir.StAssign && cir.ExprString(s.LHS) == "x" {
			if first == nil {
				first = s
			} else {
				second = s
			}
		}
		if s.Kind == ir.StReturn {
			ret = s
		}
	}
	if hasDep(ff, first, ret) {
		t.Error("killed def x=a must not reach return")
	}
	if !hasDep(ff, second, ret) {
		t.Error("def x=b must reach return")
	}
}

func TestFlowBranchMerge(t *testing.T) {
	p := mustProg(t, `
int f(int a, int c) {
	int x = 0;
	if (c) {
		x = a;
	}
	return x;
}`)
	pts := Analyze(p)
	fn := p.Funcs["f"]
	ff := FlowAnalyze(fn, pts)
	var init, inBranch, ret *ir.Stmt
	for _, s := range fn.Stmts() {
		if s.Kind == ir.StAssign && cir.ExprString(s.LHS) == "x" {
			if init == nil {
				init = s
			} else {
				inBranch = s
			}
		}
		if s.Kind == ir.StReturn {
			ret = s
		}
	}
	if !hasDep(ff, init, ret) || !hasDep(ff, inBranch, ret) {
		t.Error("both defs of x must reach the merge-point return")
	}
}

func TestFlowParamPointeeToUses(t *testing.T) {
	// The Fig. 5 situation: pdev's pointee must flow to both the devt read
	// and the put_device pointer-escape site.
	p := mustProg(t, cir.Fig5PostSource)
	pts := Analyze(p)
	fn := p.Funcs["telem_remove"]
	ff := FlowAnalyze(fn, pts)

	var paramDef *ir.Stmt
	for _, s := range fn.Stmts() {
		if s.IsParamDef() && s.ParamVar().Name == "pdev" {
			paramDef = s
		}
	}
	ida := findCall(fn, "ida_free")
	put := findCall(fn, "put_device")
	if paramDef == nil || ida == nil || put == nil {
		t.Fatal("missing statements")
	}
	if !hasDep(ff, paramDef, ida) {
		t.Error("missing dep: pdev param -> ida_free (reads pdev->dev.devt)")
	}
	if !hasDep(ff, paramDef, put) {
		t.Error("missing dep: pdev param -> put_device (pointee escape)")
	}
}

func TestFlowCallEffectWrites(t *testing.T) {
	// A callee taking &local may initialize it; the subsequent read must
	// depend on the call, not be unrooted.
	p := mustProg(t, `
struct riscmem { int *cpu; int size; };
int fill(struct riscmem *r);
int f(void) {
	struct riscmem m;
	fill(&m);
	return m.size;
}`)
	pts := Analyze(p)
	fn := p.Funcs["f"]
	ff := FlowAnalyze(fn, pts)
	fill := findCall(fn, "fill")
	var ret *ir.Stmt
	for _, s := range fn.Stmts() {
		if s.Kind == ir.StReturn && s.X != nil {
			ret = s
		}
	}
	if !hasDep(ff, fill, ret) {
		t.Error("missing call-effect dep: fill(&m) -> return m.size")
	}
}

func TestFlowUnrootedGlobalRead(t *testing.T) {
	p := mustProg(t, `
int shared;
int f(void) {
	return shared;
}`)
	pts := Analyze(p)
	fn := p.Funcs["f"]
	ff := FlowAnalyze(fn, pts)
	found := false
	for _, u := range ff.Unrooted {
		if u.Loc.Base.Name == "shared" {
			found = true
		}
	}
	if !found {
		t.Error("global read should be reported as unrooted (a slicing source)")
	}
}

func TestFlowFig3ErrorPropagation(t *testing.T) {
	// buffer_prepare: temp = call cx23885_vbibuffer(...); return temp.
	p := mustProg(t, cir.Fig3Source)
	pts := Analyze(p)
	fn := p.Funcs["buffer_prepare"]
	ff := FlowAnalyze(fn, pts)
	call := findCall(fn, "cx23885_vbibuffer")
	var ret *ir.Stmt
	for _, s := range fn.Stmts() {
		if s.Kind == ir.StReturn && s.X != nil {
			ret = s
		}
	}
	if !hasDep(ff, call, ret) {
		t.Error("missing dep: call result -> return (the Fig. 3 value flow)")
	}

	// And inside cx23885_vbibuffer the API call result must flow to the
	// NULL check branch.
	vbi := p.Funcs["cx23885_vbibuffer"]
	ffv := FlowAnalyze(vbi, pts)
	api := findCall(vbi, "dma_alloc_coherent")
	var br *ir.Stmt
	for _, s := range vbi.Stmts() {
		if s.Kind == ir.StBranch {
			br = s
		}
	}
	if !hasDep(ffv, api, br) {
		t.Error("missing dep: dma_alloc_coherent -> NULL-check branch")
	}
}
