package faultinject

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"seal/internal/budget"
)

func TestFireDisabledIsCheap(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("no plan installed but Enabled() = true")
	}
	if err := Fire(context.Background(), "detect", "u", nil); err != nil {
		t.Fatalf("Fire with no plan: %v", err)
	}
}

func TestFirePanic(t *testing.T) {
	Set(NewPlan().Add("detect", "u1", KindPanic))
	defer Reset()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("planned panic did not fire")
		}
		if s, _ := r.(string); !strings.Contains(s, "u1") {
			t.Fatalf("panic value %v does not name the unit", r)
		}
	}()
	_ = Fire(context.Background(), "detect", "u1", nil)
}

func TestFireStallRespectsContext(t *testing.T) {
	plan := NewPlan().Add("detect", "u1", KindStall)
	Set(plan)
	defer Reset()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Fire(ctx, "detect", "u1", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stall returned %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("stall ignored the context for %v", el)
	}
	if fired := plan.Fired(); len(fired) != 1 || fired[0].Kind != KindStall {
		t.Fatalf("Fired() = %v", fired)
	}
}

func TestFireStallCapBoundsRunawayWait(t *testing.T) {
	plan := NewPlan().Add("detect", "u1", KindStall)
	plan.StallCap = 10 * time.Millisecond
	Set(plan)
	defer Reset()
	// No deadline on the context: the cap must still unblock the stall
	// (with a loud error, since a stall outliving the unit deadline means
	// the harness is misconfigured).
	start := time.Now()
	err := Fire(context.Background(), "detect", "u1", nil)
	if err == nil || !strings.Contains(err.Error(), "outlived its cap") {
		t.Fatalf("capped stall returned %v", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("stall cap did not unblock for %v", el)
	}
}

func TestFireAllocSpikeChargesBudget(t *testing.T) {
	Set(NewPlan().Add("detect", "u1", KindAllocSpike))
	defer Reset()
	b := budget.New(context.Background(), budget.Limits{MaxMemBytes: 1 << 20})
	defer b.Close()
	err := Fire(context.Background(), "detect", "u1", b)
	var ex *budget.ErrExhausted
	if !errors.As(err, &ex) || ex.Reason != budget.ReasonMemory {
		t.Fatalf("alloc spike returned %v, want memory exhaustion", err)
	}
	// Without a budget the spike has nothing to charge: Fire reports the
	// misconfiguration instead of silently doing nothing.
	Set(NewPlan().Add("detect", "u2", KindAllocSpike))
	if err := Fire(context.Background(), "detect", "u2", nil); err == nil {
		t.Fatal("unbudgeted alloc spike fired silently")
	}
}

func TestFireMatchesStageAndUnit(t *testing.T) {
	plan := NewPlan().Add("detect", "u1", KindPanic)
	Set(plan)
	defer Reset()
	if err := Fire(context.Background(), "infer", "u1", nil); err != nil {
		t.Fatalf("wrong stage fired: %v", err)
	}
	if err := Fire(context.Background(), "detect", "u2", nil); err != nil {
		t.Fatalf("wrong unit fired: %v", err)
	}
	if len(plan.Fired()) != 0 {
		t.Fatalf("non-matching lookups recorded firings: %v", plan.Fired())
	}
}

func TestPlanFromSeedDeterministic(t *testing.T) {
	units := []string{"e", "d", "c", "b", "a"}
	p1 := PlanFromSeed(42, "detect", units, 2, 1)
	p2 := PlanFromSeed(42, "detect", units, 2, 1)
	if !reflect.DeepEqual(p1.faults, p2.faults) {
		t.Fatalf("same seed, different plans: %v vs %v", p1.faults, p2.faults)
	}
	nPanic, nStall := 0, 0
	for _, k := range p1.faults {
		switch k {
		case KindPanic:
			nPanic++
		case KindStall:
			nStall++
		}
	}
	if nPanic != 2 || nStall != 1 {
		t.Fatalf("plan has %d panics, %d stalls; want 2, 1", nPanic, nStall)
	}
	// A different seed should (for this universe) pick a different unit set.
	p3 := PlanFromSeed(43, "detect", units, 2, 1)
	if reflect.DeepEqual(p1.faults, p3.faults) {
		t.Log("seeds 42 and 43 chose the same units; suspicious but not fatal")
	}
	// Order of the input universe must not matter.
	p4 := PlanFromSeed(42, "detect", []string{"a", "b", "c", "d", "e"}, 2, 1)
	if !reflect.DeepEqual(p1.faults, p4.faults) {
		t.Fatalf("unit order changed the plan: %v vs %v", p1.faults, p4.faults)
	}
}

func TestFiredUnitsAndOrdering(t *testing.T) {
	plan := NewPlan().
		Add("detect", "z", KindPanic).
		Add("detect", "a", KindStall).
		Add("infer", "m", KindPanic)
	plan.StallCap = time.Millisecond
	Set(plan)
	defer Reset()
	func() {
		defer func() { _ = recover() }()
		_ = Fire(context.Background(), "detect", "z", nil)
	}()
	_ = Fire(context.Background(), "detect", "a", nil)
	func() {
		defer func() { _ = recover() }()
		_ = Fire(context.Background(), "infer", "m", nil)
	}()
	fired := plan.Fired()
	if len(fired) != 3 {
		t.Fatalf("Fired() = %v", fired)
	}
	// Sorted by stage then unit.
	want := []Record{
		{Stage: "detect", Unit: "a", Kind: KindStall},
		{Stage: "detect", Unit: "z", Kind: KindPanic},
		{Stage: "infer", Unit: "m", Kind: KindPanic},
	}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("Fired() = %v, want %v", fired, want)
	}
	du := plan.FiredUnits("detect")
	if len(du) != 2 || !du["a"] || !du["z"] {
		t.Fatalf("FiredUnits(detect) = %v", du)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindPanic: "panic", KindStall: "stall", KindAllocSpike: "alloc-spike"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
