package faultinject

// Native fuzz target over the wire-fault envelope. Run with
//
//	go test -run='^$' -fuzz=FuzzNetFault ./internal/faultinject
//
// Seeds are inline: the interesting state space is (route, kind, body)
// combinations, not byte soup.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// FuzzNetFault drives arbitrary (path, kind, body) combinations through
// the fault transport against a live server. Whatever the route and
// whatever the body, the transport must never panic, never return both a
// nil response and a nil error, and every injected failure mode must
// resolve within the request deadline — a fault plan can make a request
// fail, but it can never wedge the caller.
func FuzzNetFault(f *testing.F) {
	f.Add("/shard", int8(1), `{"shard":0}`)
	f.Add("/shard", int8(2), `{"shard":1,"bugs":[]}`)
	f.Add("/healthz", int8(3), `{"ok":true}`)
	f.Add("/readyz", int8(4), `{"ready":true,"epoch":7}`)
	f.Add("", int8(5), ``)
	f.Add("/x/../y", int8(0), strings.Repeat("a", 100))

	var body string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	f.Cleanup(srv.Close)
	host := strings.TrimPrefix(srv.URL, "http://")

	f.Fuzz(func(t *testing.T, path string, kind int8, respBody string) {
		if len(respBody) > 1<<12 {
			respBody = respBody[:1<<12] // slow-loris over huge bodies is just slow
		}
		body = respBody
		p := NewNetPlan()
		p.SlowDelay = time.Millisecond
		p.Add(host, path, NetKind(kind))
		client := &http.Client{Transport: p.Transport(nil)}

		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/shard", nil)
		if err != nil {
			return // unroutable fuzzed path; nothing to exercise
		}
		resp, err := client.Do(req)
		if err == nil && resp == nil {
			t.Fatal("nil response with nil error")
		}
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
		}
		// The plan's record surface must stay consistent under any input.
		for _, r := range p.Fired() {
			if r.Host != host {
				t.Fatalf("fired record host %q, want %q", r.Host, host)
			}
		}
	})
}
