// Package faultinject is a deterministic, seed-driven fault-injection
// harness for exercising the pipeline's fault-isolation layer. Tests
// install a Plan naming the units of work that must misbehave — panic,
// stall until the unit's deadline, or spike their allocation accounting —
// and the pipeline's unit wrappers call Fire at the start of every unit.
//
// The hook is test-only in spirit: with no plan installed (the default),
// Fire is a single atomic load returning nil, so production runs pay
// nothing. The Plan records every fault it actually fired, which is what
// lets the difftest configuration assert "exactly N injected faults yield
// exactly N quarantined units".
package faultinject

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is an injected fault behavior.
type Kind int

// Fault kinds.
const (
	// KindPanic panics inside the unit (must be contained and
	// quarantined).
	KindPanic Kind = iota + 1
	// KindStall blocks until the unit's deadline context is done (a
	// hang; must be cut off by the per-unit deadline and quarantined).
	KindStall
	// KindAllocSpike charges a large allocation against the unit's
	// memory budget (must trip the budget, never the process).
	KindAllocSpike
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindStall:
		return "stall"
	case KindAllocSpike:
		return "alloc-spike"
	}
	return "?"
}

// allocSpikeBytes is the charge of one injected allocation spike — large
// enough to trip any sane memory budget.
const allocSpikeBytes = 1 << 30

// defaultStallCap bounds a stall when the unit has no deadline, so a
// misconfigured test degrades into a slow test instead of a hung one.
const defaultStallCap = 2 * time.Second

// Record is one fault that actually fired.
type Record struct {
	Stage string
	Unit  string
	Kind  Kind
}

// Plan maps (stage, unit) pairs to the fault each must suffer.
type Plan struct {
	mu       sync.Mutex
	faults   map[string]Kind
	once     map[string]bool   // faults removed after their first firing
	fired    map[string]Record // keyed like faults: each unit recorded once
	StallCap time.Duration     // cap for KindStall without a deadline
}

// NewPlan returns an empty plan.
func NewPlan() *Plan {
	return &Plan{
		faults:   make(map[string]Kind),
		once:     make(map[string]bool),
		fired:    make(map[string]Record),
		StallCap: defaultStallCap,
	}
}

func key(stage, unit string) string { return stage + "\x00" + unit }

// Add schedules a fault for one unit of work. The fault fires on every
// attempt (a quarantined unit retried with a halved budget fails again).
func (p *Plan) Add(stage, unit string, k Kind) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults[key(stage, unit)] = k
	return p
}

// AddOnce schedules a transient fault: it fires on the unit's first attempt
// only, modeling load-induced failures a halved-budget retry can survive.
func (p *Plan) AddOnce(stage, unit string, k Kind) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults[key(stage, unit)] = k
	p.once[key(stage, unit)] = true
	return p
}

// Fired returns the faults that actually fired, sorted by stage then unit.
// A unit retried with a halved budget fires again but is recorded once.
func (p *Plan) Fired() []Record {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Record, 0, len(p.fired))
	for _, r := range p.fired {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Unit < out[j].Unit
	})
	return out
}

// FiredUnits returns the fired units of one stage as a set.
func (p *Plan) FiredUnits(stage string) map[string]bool {
	out := make(map[string]bool)
	for _, r := range p.Fired() {
		if r.Stage == stage {
			out[r.Unit] = true
		}
	}
	return out
}

// lookup returns the planned fault for a unit (0 = none) and records the
// firing.
func (p *Plan) lookup(stage, unit string) Kind {
	p.mu.Lock()
	defer p.mu.Unlock()
	k, ok := p.faults[key(stage, unit)]
	if !ok {
		return 0
	}
	p.fired[key(stage, unit)] = Record{Stage: stage, Unit: unit, Kind: k}
	if p.once[key(stage, unit)] {
		delete(p.faults, key(stage, unit))
	}
	return k
}

// PlanFromSeed builds a plan deterministically from a seed: the unit
// universe is shuffled with the seeded generator, the first nPanic units
// panic and the next nStall stall. Counts are clamped to the universe.
func PlanFromSeed(seed int64, stage string, units []string, nPanic, nStall int) *Plan {
	shuffled := append([]string(nil), units...)
	sort.Strings(shuffled)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	p := NewPlan()
	for i, u := range shuffled {
		switch {
		case i < nPanic:
			p.Add(stage, u, KindPanic)
		case i < nPanic+nStall:
			p.Add(stage, u, KindStall)
		default:
			return p
		}
	}
	return p
}

// active is the installed plan; nil means fault injection is off.
var active atomic.Pointer[Plan]

// Set installs a plan process-wide. Tests must pair it with Reset.
func Set(p *Plan) { active.Store(p) }

// Reset removes the installed plan.
func Reset() { active.Store(nil) }

// Enabled reports whether a plan is installed.
func Enabled() bool { return active.Load() != nil }

// Grower is the slice of the budget API Fire needs (avoids a package
// cycle in the other direction and keeps Fire usable with a nil budget).
type Grower interface {
	Grow(n int64) error
}

// Fire triggers the planned fault for one unit of work, if any. Called by
// the pipeline's unit wrappers at the start of every unit:
//
//   - no plan / no fault for this unit: returns nil (one atomic load)
//   - KindPanic: panics
//   - KindStall: blocks until ctx is done (or the plan's StallCap) and
//     returns the context error
//   - KindAllocSpike: charges a huge allocation against the budget and
//     returns the resulting budget error
func Fire(ctx context.Context, stage, unit string, b Grower) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	switch p.lookup(stage, unit) {
	case KindPanic:
		panic(fmt.Sprintf("faultinject: injected panic in %s unit %q", stage, unit))
	case KindStall:
		cap := p.StallCap
		if cap <= 0 {
			cap = defaultStallCap
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(cap):
			return fmt.Errorf("faultinject: stall in %s unit %q outlived its cap (no deadline configured?)", stage, unit)
		}
	case KindAllocSpike:
		if b == nil {
			return fmt.Errorf("faultinject: alloc spike in %s unit %q with no budget to charge", stage, unit)
		}
		if err := b.Grow(allocSpikeBytes); err != nil {
			return err
		}
		return fmt.Errorf("faultinject: alloc spike in %s unit %q was absorbed (no memory budget configured?)", stage, unit)
	}
	return nil
}
