package faultinject

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"testing"
	"time"
)

// echoServer answers every request with a fixed JSON body.
func echoServer(t testing.TB, body string) *httptest.Server {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func faultClient(p *NetPlan) *http.Client {
	return &http.Client{Transport: p.Transport(nil)}
}

func hostOf(t testing.TB, rawURL string) string {
	u, err := url.Parse(rawURL)
	if err != nil {
		t.Fatalf("parse %q: %v", rawURL, err)
	}
	return u.Host
}

func TestNetRefuse(t *testing.T) {
	srv := echoServer(t, `{"ok":true}`)
	p := NewNetPlan().Add(hostOf(t, srv.URL), "", NetRefuse)
	_, err := faultClient(p).Get(srv.URL + "/shard")
	if err == nil || !strings.Contains(err.Error(), "connection refused (injected)") {
		t.Fatalf("want injected refusal, got %v", err)
	}
	fired := p.Fired()
	if len(fired) != 1 || fired[0].Kind != NetRefuse || fired[0].Path != "/shard" {
		t.Fatalf("fired = %+v", fired)
	}
}

func TestNetHangHeadersArriveBodyNever(t *testing.T) {
	srv := echoServer(t, `{"ok":true}`)
	p := NewNetPlan().Add(hostOf(t, srv.URL), "/shard", NetHang)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/shard", nil)
	resp, err := faultClient(p).Do(req)
	if err != nil {
		t.Fatalf("headers must arrive: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	start := time.Now()
	_, err = io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("hung body delivered data")
	}
	if time.Since(start) < 100*time.Millisecond {
		t.Fatalf("body failed before the deadline cut it (%v after %v)", err, time.Since(start))
	}
}

func TestNetHangOtherPathsStayClean(t *testing.T) {
	srv := echoServer(t, `{"ok":true}`)
	p := NewNetPlan().Add(hostOf(t, srv.URL), "/shard", NetHang)
	resp, err := faultClient(p).Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("unplanned path failed: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || string(data) != `{"ok":true}` {
		t.Fatalf("unplanned path body = %q, %v", data, err)
	}
}

func TestNetTruncate(t *testing.T) {
	body := `{"shard":0,"bugs":[{"key":"abcdefghijklmnopqrstuvwxyz"}]}`
	srv := echoServer(t, body)
	p := NewNetPlan().Add(hostOf(t, srv.URL), "", NetTruncate)
	resp, err := faultClient(p).Get(srv.URL + "/shard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF, got %v (%d bytes)", err, len(data))
	}
	if len(data) != len(body)/2 {
		t.Fatalf("got %d bytes, want %d", len(data), len(body)/2)
	}
}

func TestNetCorrupt(t *testing.T) {
	srv := echoServer(t, `{"shard":0}`)
	p := NewNetPlan().Add(hostOf(t, srv.URL), "", NetCorrupt)
	resp, err := faultClient(p).Get(srv.URL + "/shard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if json.Unmarshal(data, &v) == nil {
		t.Fatalf("corrupted body still decodes: %q", data)
	}
}

func TestNetSlow(t *testing.T) {
	srv := echoServer(t, `{"shard":0,"units":[]}`)
	p := NewNetPlan().Add(hostOf(t, srv.URL), "", NetSlow)
	p.SlowDelay = 20 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/shard", nil)
	resp, err := faultClient(p).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("slow-loris body completed under a 100ms deadline: %d bytes", len(data))
	}
	// Forward progress was real — some bytes arrived before the cut.
	if len(data) == 0 {
		t.Fatal("no bytes trickled before the deadline")
	}
	if len(data) >= 10 {
		t.Fatalf("trickle too fast: %d bytes in 100ms at 20ms/byte", len(data))
	}
}

func TestNetPlanTransientHeals(t *testing.T) {
	srv := echoServer(t, `{"ok":true}`)
	p := NewNetPlan().AddN(hostOf(t, srv.URL), "", NetRefuse, 2)
	client := faultClient(p)
	for i := 0; i < 2; i++ {
		if _, err := client.Get(srv.URL + "/shard"); err == nil {
			t.Fatalf("request %d should have been refused", i+1)
		}
	}
	resp, err := client.Get(srv.URL + "/shard")
	if err != nil {
		t.Fatalf("route should have healed: %v", err)
	}
	resp.Body.Close()
	if got := p.FiredCount(); got != 2 {
		t.Fatalf("fired %d, want 2", got)
	}
}

func TestNetPlanExactPathBeatsHostWide(t *testing.T) {
	srv := echoServer(t, `{"ok":true}`)
	host := hostOf(t, srv.URL)
	p := NewNetPlan().Add(host, "", NetRefuse).Add(host, "/healthz", NetTruncate)
	resp, err := faultClient(p).Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("exact-path truncate should win over host-wide refuse: %v", err)
	}
	resp.Body.Close()
	fired := p.Fired()
	if len(fired) != 1 || fired[0].Kind != NetTruncate {
		t.Fatalf("fired = %+v", fired)
	}
}

func TestNetPlanFromSeedDeterministic(t *testing.T) {
	hosts := []string{"h0:1", "h1:1", "h2:1", "h3:1", "h4:1", "h5:1"}
	a := NetPlanFromSeed(42, hosts, 4)
	b := NetPlanFromSeed(42, hosts, 4)
	if !reflect.DeepEqual(a.rules, b.rules) {
		t.Fatalf("same seed, different plans:\n%v\n%v", a.rules, b.rules)
	}
	c := NetPlanFromSeed(43, hosts, 4)
	if reflect.DeepEqual(a.rules, c.rules) {
		t.Fatal("different seeds produced identical plans (suspicious shuffle)")
	}
	if len(a.rules) != 4 {
		t.Fatalf("want 4 faulted hosts, got %d", len(a.rules))
	}
}
