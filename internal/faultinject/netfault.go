package faultinject

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// NetKind is an injected wire-level fault behavior — what a flaky
// network or a dying worker does to a coordinator's HTTP request.
type NetKind int

// Network fault kinds.
const (
	// NetRefuse fails the request immediately, as a refused connection
	// does: the worker process is gone or the port is closed.
	NetRefuse NetKind = iota + 1
	// NetHang lets the request reach the worker and the response headers
	// come back, then blocks the body forever — the mid-response hang
	// that only a liveness probe or deadline can cut.
	NetHang
	// NetTruncate delivers only the first half of the response body, as a
	// connection reset mid-transfer does.
	NetTruncate
	// NetCorrupt flips bits across the whole response body (XOR 0x5A), so
	// the coordinator's decode must reject it.
	NetCorrupt
	// NetSlow trickles the response one byte per SlowDelay (slow-loris):
	// progress is real but so slow only a deadline ends it.
	NetSlow
)

// String implements fmt.Stringer.
func (k NetKind) String() string {
	switch k {
	case NetRefuse:
		return "refuse"
	case NetHang:
		return "hang"
	case NetTruncate:
		return "truncate"
	case NetCorrupt:
		return "corrupt"
	case NetSlow:
		return "slow"
	}
	return "?"
}

// NetKinds lists every wire fault kind, in declaration order.
func NetKinds() []NetKind {
	return []NetKind{NetRefuse, NetHang, NetTruncate, NetCorrupt, NetSlow}
}

// defaultSlowDelay is the per-byte trickle of NetSlow — slow enough that
// any realistic response outlives a short test deadline, fast enough that
// a generous one still observes forward progress.
const defaultSlowDelay = 25 * time.Millisecond

// NetRecord is one wire fault that actually fired.
type NetRecord struct {
	Host string
	Path string
	Kind NetKind
}

// NetPlan maps (host, path) pairs to the wire fault each request must
// suffer. Path "" matches any path on the host. Faults installed with Add
// are sticky (every matching request fails — a dead worker stays dead);
// AddN fires a bounded count and then heals (a transient blip retries can
// ride out).
type NetPlan struct {
	mu        sync.Mutex
	rules     map[string]NetKind
	remaining map[string]int // missing key = sticky
	fired     []NetRecord
	// SlowDelay is NetSlow's per-byte trickle (0 = defaultSlowDelay).
	SlowDelay time.Duration
}

// NewNetPlan returns an empty wire-fault plan.
func NewNetPlan() *NetPlan {
	return &NetPlan{
		rules:     make(map[string]NetKind),
		remaining: make(map[string]int),
	}
}

func netKey(host, path string) string { return host + "\x00" + path }

// Add schedules a sticky fault: every request to host (and path, when
// non-empty) suffers k until the plan is replaced.
func (p *NetPlan) Add(host, path string, k NetKind) *NetPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := netKey(host, path)
	p.rules[key] = k
	delete(p.remaining, key)
	return p
}

// AddN schedules a transient fault firing on the first n matching
// requests only; the route heals afterwards.
func (p *NetPlan) AddN(host, path string, k NetKind, n int) *NetPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := netKey(host, path)
	p.rules[key] = k
	p.remaining[key] = n
	return p
}

// Fired returns the wire faults that actually fired, sorted by
// (host, path, kind) with duplicates collapsed — the assertion surface
// for "exactly these routes misbehaved".
func (p *NetPlan) Fired() []NetRecord {
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := make(map[string]bool, len(p.fired))
	var out []NetRecord
	for _, r := range p.fired {
		k := r.Host + "\x00" + r.Path + "\x00" + r.Kind.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Host != out[j].Host {
			return out[i].Host < out[j].Host
		}
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// FiredCount returns how many requests suffered an injected fault.
func (p *NetPlan) FiredCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.fired)
}

// match resolves the fault for one request (0 = none), preferring the
// exact (host, path) rule over the host-wide one, and consumes one
// firing from a transient rule.
func (p *NetPlan) match(host, path string) NetKind {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, key := range []string{netKey(host, path), netKey(host, "")} {
		k, ok := p.rules[key]
		if !ok {
			continue
		}
		if n, transient := p.remaining[key]; transient {
			if n <= 0 {
				continue
			}
			p.remaining[key] = n - 1
		}
		p.fired = append(p.fired, NetRecord{Host: host, Path: path, Kind: k})
		return k
	}
	return 0
}

func (p *NetPlan) slowDelay() time.Duration {
	if p.SlowDelay > 0 {
		return p.SlowDelay
	}
	return defaultSlowDelay
}

// NetPlanFromSeed builds a plan deterministically from a seed: the host
// universe is shuffled with the seeded generator and the first n hosts
// each get a sticky fault, kinds cycling through the full fault alphabet
// in shuffled-host order. The same seed reproduces the same plan.
func NetPlanFromSeed(seed int64, hosts []string, n int) *NetPlan {
	shuffled := append([]string(nil), hosts...)
	sort.Strings(shuffled)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	kinds := NetKinds()
	p := NewNetPlan()
	for i, h := range shuffled {
		if i >= n {
			break
		}
		p.Add(h, "", kinds[i%len(kinds)])
	}
	return p
}

// Transport wraps an http.RoundTripper with the plan's wire faults. A
// request to an unplanned route passes through untouched; a planned one
// suffers its fault deterministically. Wrap the coordinator's
// http.Client.Transport with it — the worker processes stay healthy, only
// this client's view of the wire degrades, which is exactly the failure
// mode re-shard-on-loss must survive.
func (p *NetPlan) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &netFaultTransport{plan: p, base: base}
}

type netFaultTransport struct {
	plan *NetPlan
	base http.RoundTripper
}

func (t *netFaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	kind := t.plan.match(req.URL.Host, req.URL.Path)
	if kind == 0 {
		return t.base.RoundTrip(req)
	}
	switch kind {
	case NetRefuse:
		return nil, fmt.Errorf("dial tcp %s: connection refused (injected)", req.URL.Host)
	case NetHang:
		// The worker answers — headers and status arrive — but the body
		// never does: replace it with one that blocks until the request
		// context is cut.
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body.Close()
		resp.Body = &hangBody{ctx: req.Context()}
		resp.ContentLength = -1
		return resp, nil
	case NetTruncate:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		resp.Body = &truncBody{data: data[:len(data)/2]}
		resp.ContentLength = -1
		return resp, nil
	case NetCorrupt:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for i := range data {
			data[i] ^= 0x5A // guaranteed not valid JSON for any JSON input
		}
		resp.Body = io.NopCloser(bytes.NewReader(data))
		resp.ContentLength = int64(len(data))
		return resp, nil
	case NetSlow:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		resp.Body = &slowBody{ctx: req.Context(), data: data, delay: t.plan.slowDelay()}
		resp.ContentLength = -1
		return resp, nil
	}
	return t.base.RoundTrip(req)
}

// hangBody blocks every Read until the request context is done — the
// caller's deadline (or a liveness prober canceling the attempt) is the
// only way out.
type hangBody struct{ ctx context.Context }

func (b *hangBody) Read([]byte) (int, error) {
	<-b.ctx.Done()
	return 0, b.ctx.Err()
}

func (b *hangBody) Close() error { return nil }

// truncBody yields a prefix of the real body and then fails like a reset
// connection (io.ErrUnexpectedEOF), not like a clean end of stream.
type truncBody struct {
	data []byte
	off  int
}

func (b *truncBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *truncBody) Close() error { return nil }

// slowBody trickles the body one byte per delay, respecting the request
// context between bytes.
type slowBody struct {
	ctx   context.Context
	data  []byte
	off   int
	delay time.Duration
}

func (b *slowBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	t := time.NewTimer(b.delay)
	defer t.Stop()
	select {
	case <-b.ctx.Done():
		return 0, b.ctx.Err()
	case <-t.C:
	}
	if len(p) == 0 {
		return 0, nil
	}
	p[0] = b.data[b.off]
	b.off++
	return 1, nil
}

func (b *slowBody) Close() error { return nil }
