package aphp

import (
	"testing"

	"seal/internal/cir"
	"seal/internal/ir"
	"seal/internal/kernelgen"
)

func TestInferRulesFromMemleakPatch(t *testing.T) {
	c := kernelgen.Generate(kernelgen.DefaultConfig())
	rules := InferRules(c.Patches)
	if len(rules) == 0 {
		t.Fatal("no rules inferred")
	}
	// The memleak patch adds a kfree post-op; a kmalloc->kfree rule must
	// be among the extracted 4-tuples.
	found := false
	for _, r := range rules {
		if hasSuffix(r.TargetAPI, "_kmalloc") && hasSuffix(r.PostOp, "_kfree") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing kmalloc->kfree rule; rules: %v", rules)
	}
}

func TestDetectIsIntraProceduralAndNoisy(t *testing.T) {
	c := kernelgen.Generate(kernelgen.DefaultConfig())
	rules := InferRules(c.Patches)
	var files []*cir.File
	for _, name := range c.SortedFileNames() {
		f, err := cir.ParseFile(name, c.Files[name])
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	prog, err := ir.NewProgram(files...)
	if err != nil {
		t.Fatal(err)
	}
	reports := Detect(prog, rules)
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	// APHP must find the seeded memleak bugs (its supported class) …
	gt := c.BugByFunc()
	tp := 0
	for _, r := range reports {
		if b, ok := gt[r.Fn.Name]; ok && (b.Family == "memleak" || b.Family == "refput") {
			tp++
		}
	}
	if tp == 0 {
		t.Error("APHP missed all post-handling bugs")
	}
	// … and must be far noisier than the ground truth (the paper's
	// 28,479-report shape).
	if len(reports) <= len(c.Bugs) {
		t.Errorf("APHP reports (%d) suspiciously precise vs %d seeded bugs", len(reports), len(c.Bugs))
	}
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}
