// Package aphp reproduces the APHP baseline (Lin et al., USENIX Security
// 2023) as characterized in the SEAL paper §3.1/§8.3: a patch-based,
// intra-procedural API post-handling detector whose specifications are
// 4-tuples <target API, post-operation, critical variable, path condition>.
// Its design limitations are reproduced deliberately: the specification
// form only expresses post-handling (one behaviour class), rule extraction
// relies on surface patterns and over-generates, and detection never
// crosses function boundaries — yielding the paper's observed shape of
// many reports with low precision (28,479 reports / 60 TPs).
package aphp

import (
	"fmt"
	"sort"

	"seal/internal/ir"
	"seal/internal/patch"
)

// Rule is the APHP 4-tuple. The critical variable is tracked positionally
// (the target API's result or pointer argument must later reach the
// post-op); the path condition degenerates to "on some path", matching the
// baseline's coarse condition handling reported in the paper.
type Rule struct {
	TargetAPI string
	PostOp    string
	// ResultCritical: the critical variable is the target API's result
	// (else: its first pointer argument).
	ResultCritical bool
	Origin         string // patch ID
}

// Key is the dedup identity.
func (r Rule) Key() string {
	return fmt.Sprintf("%s->%s/%v", r.TargetAPI, r.PostOp, r.ResultCritical)
}

// String implements fmt.Stringer.
func (r Rule) String() string {
	crit := "arg"
	if r.ResultCritical {
		crit = "ret"
	}
	return fmt.Sprintf("<%s, %s, %s, path>", r.TargetAPI, r.PostOp, crit)
}

// Report is one APHP finding: a call to the target API with no later
// post-op call in the same function.
type Report struct {
	Fn   *ir.Func
	Rule Rule
	Line int
}

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf("missing post-handling %s after %s in %s (line %d)",
		r.Rule.PostOp, r.Rule.TargetAPI, r.Fn.Name, r.Line)
}

// InferRules extracts post-handling rules from patches: every API call
// added by a patch is a candidate post-operation, paired with every API
// invoked earlier in the same (post-patch) function. The pairing is
// pattern-based and over-generates — the dominant source of incorrect
// APHP specifications per the paper (90.8% of its FPs).
func InferRules(patches []*patch.Patch) []Rule {
	var rules []Rule
	seen := make(map[string]bool)
	for _, p := range patches {
		a, err := p.Analyze()
		if err != nil {
			continue
		}
		prog := a.PostProg
		for _, added := range a.ChangedStmts(patch.PostSide) {
			if added.Kind != ir.StCall || added.Callee == "" || !prog.IsAPI(added.Callee) {
				continue
			}
			// Pair with every API called before the added post-op.
			for _, s := range added.Fn.Stmts() {
				if s == added {
					break
				}
				if s.Kind != ir.StCall || s.Callee == "" || !prog.IsAPI(s.Callee) || s.Callee == added.Callee {
					continue
				}
				r := Rule{
					TargetAPI:      s.Callee,
					PostOp:         added.Callee,
					ResultCritical: s.LHS != nil,
					Origin:         p.ID,
				}
				if !seen[r.Key()] {
					seen[r.Key()] = true
					rules = append(rules, r)
				}
			}
		}
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].Key() < rules[j].Key() })
	return rules
}

// Detect applies the rules intra-procedurally: every call to the target
// API that is not followed (in statement order, within the same function)
// by a call to the post-op is reported.
func Detect(prog *ir.Program, rules []Rule) []Report {
	var out []Report
	for _, fn := range prog.FuncList {
		stmts := fn.Stmts()
		for _, rule := range rules {
			for i, s := range stmts {
				if !s.IsCallTo(rule.TargetAPI) {
					continue
				}
				handled := false
				for _, later := range stmts[i+1:] {
					if later.IsCallTo(rule.PostOp) {
						handled = true
						break
					}
				}
				if !handled {
					out = append(out, Report{Fn: fn, Rule: rule, Line: s.Line})
				}
			}
		}
	}
	return out
}
