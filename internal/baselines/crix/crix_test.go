package crix

import (
	"testing"

	"seal/internal/cir"
	"seal/internal/ir"
	"seal/internal/kernelgen"
)

func evalProg(t *testing.T, c *kernelgen.Corpus) *ir.Program {
	t.Helper()
	var files []*cir.File
	for _, name := range c.SortedFileNames() {
		f, err := cir.ParseFile(name, c.Files[name])
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	prog, err := ir.NewProgram(files...)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestDetectFindsMissingCheckMinority(t *testing.T) {
	cfg := kernelgen.DefaultConfig()
	cfg.CorrectMin, cfg.CorrectMax = 3, 3 // give the vote a majority
	c := kernelgen.Generate(cfg)
	prog := evalProg(t, c)
	reports := Detect(prog)
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	// CRIX's supported class: missing-check bugs (npd / oob / dbz).
	gt := c.BugByFunc()
	tp := 0
	kinds := make(map[string]bool)
	for _, r := range reports {
		if b, ok := gt[r.Fn.Name]; ok {
			tp++
			kinds[b.Family] = true
		}
	}
	if tp == 0 {
		t.Errorf("CRIX found no seeded missing-check bug; reports: %v", reports)
	}
	for fam := range kinds {
		switch fam {
		case "npd", "oob", "dbz", "uninit":
		default:
			// Other families are outside the missing-check class; hits
			// there are coincidental but not wrong to report.
		}
	}
}

func TestDetectVoteMetadata(t *testing.T) {
	cfg := kernelgen.DefaultConfig()
	cfg.CorrectMin, cfg.CorrectMax = 3, 3
	c := kernelgen.Generate(cfg)
	prog := evalProg(t, c)
	for _, r := range Detect(prog) {
		if r.PeersChecked <= 0 || r.PeersTotal < 3 || r.PeersChecked > r.PeersTotal {
			t.Errorf("implausible vote: %+v", r)
		}
		if float64(r.PeersChecked)/float64(r.PeersTotal) <= MajorityThreshold {
			t.Errorf("report without checking majority: %+v", r)
		}
	}
}
