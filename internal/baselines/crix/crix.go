// Package crix reproduces the CRIX baseline (Lu et al., USENIX Security
// 2019) as characterized in the SEAL paper §3.1/§8.3: a deviation-based
// missing-check detector that cross-checks the conditional statements in
// the peer slices of critical variables, flagging minority unchecked uses.
// Its reported limitations are reproduced deliberately: coarse grouping of
// peer slices (incomparable slices get cross-checked), coarse condition
// modeling (any guard on the variable counts, regardless of the
// predicate), and majority voting that fails when most peers are wrong —
// yielding the paper's shape of many reports and low precision
// (3,105 reports / 44 TPs).
package crix

import (
	"fmt"
	"sort"

	"seal/internal/cfg"
	"seal/internal/ir"
)

// use is one sensitive use of a critical variable.
type use struct {
	fn      *ir.Func
	stmt    *ir.Stmt
	checked bool
}

// Report is one CRIX finding: a minority-unchecked sensitive use.
type Report struct {
	Fn    *ir.Func
	Line  int
	Group string // peer-slice group key
	// PeersChecked / PeersTotal summarize the vote.
	PeersChecked int
	PeersTotal   int
}

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf("missing check in %s (line %d): %d/%d peers in group %q check first",
		r.Fn.Name, r.Line, r.PeersChecked, r.PeersTotal, r.Group)
}

// MajorityThreshold is the fraction of checked peers needed to flag the
// unchecked minority.
const MajorityThreshold = 0.5

// Detect cross-checks sensitive uses of critical variables across peer
// slices. Critical variables are (a) interface arguments, grouped by
// interface and argument index, and (b) API return values, grouped
// coarsely by the API's return-type shape — the coarse grouping that makes
// incomparable slices vote against each other (a reported CRIX FP source).
func Detect(prog *ir.Program) []Report {
	groups := make(map[string][]use)

	for _, fn := range prog.FuncList {
		info := cfg.Analyze(fn)
		ifaces := prog.InterfacesOf(fn)

		// Map statement -> set of base vars checked by branches governing it.
		checkedBy := func(s *ir.Stmt, base *ir.Var) bool {
			for _, d := range info.StmtDeps(s) {
				for _, u := range d.Branch.Uses {
					if u.Base == base {
						return true
					}
				}
			}
			return false
		}

		// (a) Interface arguments used in sensitive operations: one vote
		// per implementation (the peer-slice granularity) — an impl is
		// "checked" if any branch in it inspects the argument.
		if len(ifaces) > 0 {
			type argUse struct {
				first   *ir.Stmt
				checked bool
			}
			perArg := make(map[int]*argUse)
			for _, s := range fn.Stmts() {
				if s.Kind != ir.StAssign && s.Kind != ir.StCall && s.Kind != ir.StReturn {
					continue
				}
				for _, u := range s.Uses {
					if u.Base.Kind != ir.VarParam || !u.HasDeref() {
						continue
					}
					au := perArg[u.Base.ParamIndex]
					if au == nil {
						au = &argUse{first: s}
						perArg[u.Base.ParamIndex] = au
					}
				}
			}
			for _, s := range fn.Stmts() {
				if s.Kind != ir.StBranch && s.Kind != ir.StSwitch {
					continue
				}
				for _, u := range s.Uses {
					if u.Base.Kind == ir.VarParam {
						if au := perArg[u.Base.ParamIndex]; au != nil {
							au.checked = true
						}
					}
				}
			}
			for idx, au := range perArg {
				key := fmt.Sprintf("iface-arg:%s#%d", ifaces[0], idx)
				groups[key] = append(groups[key], use{fn: fn, stmt: au.first, checked: au.checked})
			}
		}

		// (b) API results consumed later in the function; grouped by the
		// return-type shape only.
		for _, s := range fn.Stmts() {
			if s.Kind != ir.StCall || s.Callee == "" || !prog.IsAPI(s.Callee) || s.LHS == nil {
				continue
			}
			lv, _, ok := fn.LvalLoc(s.LHS)
			if !ok || !lv.IsDirect() {
				continue
			}
			proto := prog.Protos[s.Callee]
			shape := "int"
			if proto != nil && proto.Ret.IsPtr() {
				shape = "ptr"
			}
			// Find downstream uses of the result variable.
			for _, later := range fn.Stmts() {
				if later == s || later.Kind == ir.StBranch || later.Kind == ir.StSwitch {
					continue
				}
				usesResult := false
				for _, u := range later.Uses {
					if u.Base == lv.Base {
						usesResult = true
					}
				}
				if !usesResult || !info.Reaches(s, later) {
					continue
				}
				key := "api-ret:" + shape
				groups[key] = append(groups[key], use{fn: fn, stmt: later, checked: checkedBy(later, lv.Base)})
			}
		}
	}

	var out []Report
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		uses := groups[k]
		if len(uses) < 3 {
			continue // too few peers to vote
		}
		checked := 0
		for _, u := range uses {
			if u.checked {
				checked++
			}
		}
		if float64(checked)/float64(len(uses)) <= MajorityThreshold {
			continue // no checking majority
		}
		seen := make(map[string]bool)
		for _, u := range uses {
			if u.checked {
				continue
			}
			id := u.fn.Name + fmt.Sprint(u.stmt.Line)
			if seen[id] {
				continue
			}
			seen[id] = true
			out = append(out, Report{
				Fn: u.fn, Line: u.stmt.Line, Group: k,
				PeersChecked: checked, PeersTotal: len(uses),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fn.Name != out[j].Fn.Name {
			return out[i].Fn.Name < out[j].Fn.Name
		}
		return out[i].Line < out[j].Line
	})
	return out
}
