package infer

import (
	"seal/internal/pdg"
	"seal/internal/solver"
	"seal/internal/vfp"
)

// PathPair is a path present in both versions (matched by signature).
type PathPair struct {
	Pre  *vfp.Path
	Post *vfp.Path
}

// Classified is the output of Alg. 1: paths split into the four change
// categories.
type Classified struct {
	PMinus []*vfp.Path // present only pre-patch (removed)
	PPlus  []*vfp.Path // present only post-patch (added)
	PPsi   []PathPair  // same path, different path condition
	POmega []PathPair  // same path and condition; order candidates
}

// Classify implements Alg. 1: segregate P_pre and P_post into P−, P+, PΨ,
// PΩ. Path identity is the version-independent signature; condition
// equality is decided by the solver over the qualified symbols, which are
// stable across versions.
func Classify(gPre, gPost *pdg.Graph, pre, post []*vfp.Path) *Classified {
	out := &Classified{}
	preBySig := make(map[string]*vfp.Path, len(pre))
	for _, p := range pre {
		preBySig[p.Signature()] = p
	}
	postBySig := make(map[string]*vfp.Path, len(post))
	for _, p := range post {
		postBySig[p.Signature()] = p
	}
	for _, p := range pre {
		if _, ok := postBySig[p.Signature()]; !ok {
			out.PMinus = append(out.PMinus, p)
		}
	}
	for _, p := range post {
		if _, ok := preBySig[p.Signature()]; !ok {
			out.PPlus = append(out.PPlus, p)
		}
	}
	for _, p := range pre {
		q, ok := postBySig[p.Signature()]
		if !ok {
			continue
		}
		pair := PathPair{Pre: p, Post: q}
		if !solver.Equiv(p.Psi(gPre), q.Psi(gPost)) {
			out.PPsi = append(out.PPsi, pair)
		} else {
			out.POmega = append(out.POmega, pair)
		}
	}
	return out
}
