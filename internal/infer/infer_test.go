package infer

import (
	"strings"
	"testing"

	"seal/internal/cir"
	"seal/internal/patch"
	"seal/internal/solver"
	"seal/internal/spec"
)

func analyzeFixture(t *testing.T, id, file, pre, post string) *patch.Analyzed {
	t.Helper()
	p := &patch.Patch{
		ID:   id,
		Pre:  map[string]string{file: pre},
		Post: map[string]string{file: post},
	}
	a, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestInferSpec41 reproduces paper Example 4.1: from the Fig. 3 patch SEAL
// must deduce the required reachability -ENOMEM ↪ ret[buf_prepare] under
// ret[dma_alloc_coherent] == NULL.
func TestInferSpec41(t *testing.T) {
	a := analyzeFixture(t, "fig3", "cx23885.c", cir.Fig3PreSource, cir.Fig3Source)
	res := InferPatch(a)
	if len(res.Specs) == 0 {
		t.Fatal("no specs inferred from Fig. 3 patch")
	}
	var target *spec.Spec
	for _, s := range res.Specs {
		r := s.Constraint.Rel
		if s.Origin == spec.OriginAdded && !s.Constraint.Forbidden &&
			r.Kind == spec.RelReach &&
			r.V.Kind == spec.VLiteral && r.V.Lit == -12 &&
			r.U.Kind == spec.UIfaceRet && r.U.Iface == "vb2_ops.buf_prepare" {
			target = s
		}
	}
	if target == nil {
		t.Fatalf("Spec 4.1 not found; inferred:\n%s", dumpSpecs(res.Specs))
	}
	// Condition must mention the API return and entail its NULLness.
	cond := target.Constraint.Rel.Cond
	want := solver.Atom{Op: solver.OpEq, A: solver.Sym{Name: "ret[dma_alloc_coherent]"}, B: solver.Const{Val: 0}}
	if !solver.Implies(cond, want) {
		t.Errorf("Spec 4.1 condition = %s, want to imply ret[dma_alloc_coherent] == 0", solver.String(cond))
	}
	if target.Iface != "vb2_ops.buf_prepare" {
		t.Errorf("scope = %q, want interface scope", target.Iface)
	}
	if target.API == "" {
		t.Error("spec should record the involved API for instantiation")
	}
}

// TestInferSpec42 reproduces paper Example 4.2: from the Fig. 4 patch SEAL
// must deduce the forbidden flow arg1 ↪ index-use under data->len > MAX.
func TestInferSpec42(t *testing.T) {
	a := analyzeFixture(t, "fig4", "i2c.c", cir.Fig4PreSource, cir.Fig4PostSource)
	res := InferPatch(a)
	var target *spec.Spec
	for _, s := range res.Specs {
		r := s.Constraint.Rel
		if s.Origin == spec.OriginCondition && s.Constraint.Forbidden &&
			r.Kind == spec.RelReach &&
			r.V.Kind == spec.VIfaceArg && r.V.ArgIndex == 1 &&
			(r.U.Kind == spec.UIndex || r.U.Kind == spec.UDeref) {
			target = s
		}
	}
	if target == nil {
		t.Fatalf("Spec 4.2 not found; inferred:\n%s", dumpSpecs(res.Specs))
	}
	// Delta condition: data->len > MAX (len is the field at offset 0).
	cond := target.Constraint.Rel.Cond
	lenSym := solver.Sym{Name: "arg1[i2c_algorithm.smbus_xfer]@0"}
	if !solver.Implies(cond, solver.Atom{Op: solver.OpGt, A: lenSym, B: solver.Const{Val: 32}}) {
		t.Errorf("Spec 4.2 delta = %s, want to imply len > 32", solver.String(cond))
	}
	if target.Iface != "i2c_algorithm.smbus_xfer" {
		t.Errorf("scope = %q", target.Iface)
	}
}

// TestInferSpec43 reproduces paper Example 4.3: from the Fig. 5 patch SEAL
// must deduce the forbidden order "put_device before a later use of
// arg1.dev" (use-after-free).
func TestInferSpec43(t *testing.T) {
	a := analyzeFixture(t, "fig5", "telem.c", cir.Fig5PreSource, cir.Fig5PostSource)
	res := InferPatch(a)
	var target *spec.Spec
	for _, s := range res.Specs {
		r := s.Constraint.Rel
		if r.Kind != spec.RelOrder || !s.Constraint.Forbidden {
			continue
		}
		if r.V.Kind != spec.VIfaceArg || r.V.Iface != "platform_driver.remove" {
			continue
		}
		// The use that must come last (U2 in the forbidden pre-order) is
		// the put_device API argument.
		if r.U2.Kind == spec.UAPIArg && r.U2.API == "put_device" {
			target = s
		}
	}
	if target == nil {
		t.Fatalf("Spec 4.3 not found; inferred:\n%s", dumpSpecs(res.Specs))
	}
	if target.Origin != spec.OriginOrder {
		t.Errorf("origin = %s, want PΩ", target.Origin)
	}
}

// TestInferNoisePatchYieldsNothing: a patch not touching interaction data
// produces zero relations (paper §8.2: 1,529 such patches).
func TestInferNoisePatchYieldsNothing(t *testing.T) {
	pre := `
int helper(int x) {
	int y = x + 1;
	return y;
}`
	post := `
int helper(int x) {
	int y = 1 + x;
	return y;
}`
	a := analyzeFixture(t, "noise", "n.c", pre, post)
	res := InferPatch(a)
	if len(res.Specs) != 0 {
		t.Errorf("noise patch produced specs:\n%s", dumpSpecs(res.Specs))
	}
}

// TestInferStatsOrigins: the three figure patches populate the three
// distinct origin counters.
func TestInferStatsOrigins(t *testing.T) {
	a3 := analyzeFixture(t, "fig3", "f3.c", cir.Fig3PreSource, cir.Fig3Source)
	a4 := analyzeFixture(t, "fig4", "f4.c", cir.Fig4PreSource, cir.Fig4PostSource)
	a5 := analyzeFixture(t, "fig5", "f5.c", cir.Fig5PreSource, cir.Fig5PostSource)
	r3, r4, r5 := InferPatch(a3), InferPatch(a4), InferPatch(a5)
	if r3.Stats.PPlus == 0 {
		t.Errorf("Fig. 3 should contribute P+ relations: %+v", r3.Stats)
	}
	if r4.Stats.PPsi == 0 {
		t.Errorf("Fig. 4 should contribute PΨ relations: %+v", r4.Stats)
	}
	if r5.Stats.POmega == 0 {
		t.Errorf("Fig. 5 should contribute PΩ relations: %+v", r5.Stats)
	}
}

// TestSpecSerializationRoundTrip: inferred specs survive JSON round-trips
// including their conditions.
func TestSpecSerializationRoundTrip(t *testing.T) {
	a := analyzeFixture(t, "fig3", "f3.c", cir.Fig3PreSource, cir.Fig3Source)
	res := InferPatch(a)
	db := &spec.DB{Specs: res.Specs}
	data, err := db.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back spec.DB
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if len(back.Specs) != len(db.Specs) {
		t.Fatalf("round trip lost specs: %d vs %d", len(back.Specs), len(db.Specs))
	}
	for i := range db.Specs {
		c1 := db.Specs[i].Constraint.Rel.Cond
		c2 := back.Specs[i].Constraint.Rel.Cond
		if !solver.Equiv(c1, c2) {
			t.Errorf("condition changed in round trip: %s vs %s", solver.String(c1), solver.String(c2))
		}
	}
}

func dumpSpecs(specs []*spec.Spec) string {
	var sb strings.Builder
	for _, s := range specs {
		sb.WriteString(s.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
