// Package infer turns analyzed security patches into interface
// specifications: it selects slicing criteria (paper §6.2.1), collects
// changed value-flow paths, classifies them into P−/P+/PΨ/PΩ (Alg. 1),
// and deduces quantified relations (Alg. 2) abstracted into the
// specification domain (§6.3.3).
package infer

import (
	"sort"

	"seal/internal/budget"
	"seal/internal/ir"
	"seal/internal/patch"
	"seal/internal/pdg"
	"seal/internal/vfp"
)

// Criteria selects the slicing criteria of one patch side (paper §6.2.1):
// (1) statements on changed lines; (2) statements whose control dependence
// involves a changed branch; (3) use-site statements in patched functions
// that are order-comparable with a changed statement (flow-dependence
// changes).
func Criteria(g *pdg.Graph, a *patch.Analyzed, side patch.Side) []*ir.Stmt {
	changed := a.ChangedStmts(side)
	seen := make(map[*ir.Stmt]bool)
	var out []*ir.Stmt
	add := func(s *ir.Stmt) {
		if s != nil && !seen[s] && s.Kind != ir.StNop {
			seen[s] = true
			out = append(out, s)
		}
	}
	changedSet := make(map[*ir.Stmt]bool)
	for _, s := range changed {
		changedSet[s] = true
		add(s)
	}
	// Group changed statements by function.
	byFn := make(map[*ir.Func][]*ir.Stmt)
	for _, s := range changed {
		byFn[s.Fn] = append(byFn[s.Fn], s)
	}
	for fn, chg := range byFn {
		info := g.CFG(fn)
		for _, s := range fn.Stmts() {
			if seen[s] || s.Kind == ir.StNop {
				continue
			}
			// (2) control dependence on a changed branch.
			ctl := false
			for _, d := range info.StmtDeps(s) {
				if changedSet[d.Branch] {
					ctl = true
					break
				}
			}
			if ctl {
				add(s)
				continue
			}
			// (3) flow-dependence change: order-comparable use sites.
			if !isUseSite(s) {
				continue
			}
			for _, c := range chg {
				if info.OrderComparable(s, c) {
					add(s)
					break
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CounterpartStmts maps criteria of one program version onto the matching
// statements (same function name, same spelling) of the other version.
// This makes criteria symmetric when only one side has textual changes —
// e.g. a patch that merely wraps existing code in a new guard (Fig. 4)
// changes no pre-patch line, yet the guarded statements' control
// dependence changed in both versions (paper §6.2.1 bullet 2).
func CounterpartStmts(criteria []*ir.Stmt, other *ir.Program) []*ir.Stmt {
	type key struct {
		fn  string
		str string
	}
	want := make(map[key]bool, len(criteria))
	for _, s := range criteria {
		want[key{s.Fn.Name, s.String()}] = true
	}
	var out []*ir.Stmt
	for _, fn := range other.FuncList {
		for _, s := range fn.Stmts() {
			if s.Kind == ir.StNop {
				continue
			}
			if want[key{fn.Name, s.String()}] {
				out = append(out, s)
			}
		}
	}
	return out
}

// MergeCriteria unions two criterion lists.
func MergeCriteria(a, b []*ir.Stmt) []*ir.Stmt {
	seen := make(map[*ir.Stmt]bool, len(a))
	out := append([]*ir.Stmt{}, a...)
	for _, s := range a {
		seen[s] = true
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// isUseSite reports whether a statement is a potential ultimate-use site
// worth re-slicing for flow-order changes (calls and memory accesses).
func isUseSite(s *ir.Stmt) bool {
	if s.Kind == ir.StCall {
		return true
	}
	if s.Kind == ir.StAssign {
		for _, l := range append(append([]ir.Loc{}, s.Defs...), s.Uses...) {
			if l.HasDeref() {
				return true
			}
		}
	}
	return false
}

// CollectPaths slices every criterion and returns the deduplicated union
// of value-flow paths.
func CollectPaths(g *pdg.Graph, criteria []*ir.Stmt) []*vfp.Path {
	return CollectPathsBudget(g, criteria, nil, nil)
}

// CollectPathsBudget is CollectPaths metered against a unit budget, with
// truncation counters accumulated into trunc (both optional). Slicing stops
// charging once the budget is exhausted; the paths gathered so far are
// returned, individually marked Truncated where their enumeration was cut
// short.
func CollectPathsBudget(g *pdg.Graph, criteria []*ir.Stmt, b *budget.Budget, trunc *TruncCount) []*vfp.Path {
	sl := vfp.NewSlicer(g)
	sl.Budget = b
	if b != nil {
		sl.ApplyLimits(b.Limits())
	}
	var all []*vfp.Path
	for _, c := range criteria {
		all = append(all, sl.Collect(c)...)
	}
	if trunc != nil {
		trunc.Total += sl.Truncations
		trunc.Budget += sl.BudgetTruncations
	}
	return vfp.DedupePaths(all)
}

// TruncCount accumulates the counted truncation warnings of a slicing
// phase: Total counts every cut-short enumeration, Budget the subset cut by
// the dynamic unit budget rather than the deterministic path/depth caps.
type TruncCount struct {
	Total  int64
	Budget int64
}
