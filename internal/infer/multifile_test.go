package infer

import (
	"testing"

	"seal/internal/patch"
	"seal/internal/spec"
)

// TestInferMultiFilePatch: a patch whose changed function lives in one
// translation unit while the helper with the root cause lives in another.
// Cross-file linking plus inter-procedural slicing must still recover the
// Fig. 3-style error-propagation spec.
func TestInferMultiFilePatch(t *testing.T) {
	header := `
struct mf_risc { int *cpu; int size; };
struct mf_buf { struct mf_risc risc; int state; };
struct mf_ops { int (*prep)(struct mf_buf *vb); };
int *mf_dma_alloc(int size);
int mf_risc_alloc(struct mf_risc *risc);
`
	helper := header + `
int mf_risc_alloc(struct mf_risc *risc) {
	risc->cpu = mf_dma_alloc(risc->size);
	if (risc->cpu == NULL)
		return -ENOMEM;
	return 0;
}
`
	implPre := header + `
int mf_prep(struct mf_buf *vb) {
	mf_risc_alloc(&vb->risc);
	return 0;
}
struct mf_ops mf_qops = { .prep = mf_prep, };
`
	implPost := header + `
int mf_prep(struct mf_buf *vb) {
	return mf_risc_alloc(&vb->risc);
}
struct mf_ops mf_qops = { .prep = mf_prep, };
`
	p := &patch.Patch{
		ID: "multifile",
		Pre: map[string]string{
			"drivers/mf/helper.c": helper,
			"drivers/mf/impl.c":   implPre,
		},
		Post: map[string]string{
			"drivers/mf/helper.c": helper, // untouched context file
			"drivers/mf/impl.c":   implPost,
		},
	}
	a, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	// Only impl.c has changes.
	if len(a.PreChanged["drivers/mf/helper.c"])+len(a.PostChanged["drivers/mf/helper.c"]) != 0 {
		t.Error("helper.c should have no changed lines")
	}
	res := InferPatch(a)
	found := false
	for _, s := range res.Specs {
		r := s.Constraint.Rel
		if !s.Constraint.Forbidden && r.Kind == spec.RelReach &&
			r.V.Kind == spec.VLiteral && r.V.Lit == -12 &&
			r.U.Kind == spec.UIfaceRet && r.U.Iface == "mf_ops.prep" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing cross-file error-propagation spec; got:\n%s", dumpSpecs(res.Specs))
	}
}

// TestInferWholeFunctionAddition: a patch that introduces a brand-new
// helper function along with its use must not crash and should still
// yield the post-side paths.
func TestInferWholeFunctionAddition(t *testing.T) {
	pre := `
struct wf_dev { int id; };
struct wf_ops { int (*start)(struct wf_dev *d); };
int wf_hw_init(struct wf_dev *d);
int wf_start(struct wf_dev *d) {
	wf_hw_init(d);
	return 0;
}
struct wf_ops wf_qops = { .start = wf_start, };
`
	post := `
struct wf_dev { int id; };
struct wf_ops { int (*start)(struct wf_dev *d); };
int wf_hw_init(struct wf_dev *d);
int wf_check(struct wf_dev *d) {
	int ret = wf_hw_init(d);
	if (ret != 0)
		return ret;
	return 0;
}
int wf_start(struct wf_dev *d) {
	return wf_check(d);
}
struct wf_ops wf_qops = { .start = wf_start, };
`
	p := &patch.Patch{
		ID:   "newfunc",
		Pre:  map[string]string{"wf.c": pre},
		Post: map[string]string{"wf.c": post},
	}
	a, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	res := InferPatch(a)
	if res.Stats.PostPaths == 0 {
		t.Error("post-side paths expected for the new error-handling flow")
	}
}

// TestInferGotoErrorPath: the kernel's goto-based error-path idiom. The
// patch adds the missing kfree on the error label; inference must recover
// the required ret[kmalloc] ↪ arg0[kfree] relation across the goto CFG.
func TestInferGotoErrorPath(t *testing.T) {
	header := `
struct gt_dev { int id; int state; };
struct gt_ops { int (*probe)(struct gt_dev *d); };
int *gt_kmalloc(int size);
void gt_kfree(int *p);
int gt_register(struct gt_dev *d, int *buf);
`
	pre := header + `
int gt_probe(struct gt_dev *d) {
	int ret;
	int *buf = gt_kmalloc(64);
	if (buf == NULL)
		return -ENOMEM;
	ret = gt_register(d, buf);
	if (ret != 0)
		goto err;
	d->state = 1;
	return 0;
err:
	return ret;
}
struct gt_ops gt_qops = { .probe = gt_probe, };
`
	post := header + `
int gt_probe(struct gt_dev *d) {
	int ret;
	int *buf = gt_kmalloc(64);
	if (buf == NULL)
		return -ENOMEM;
	ret = gt_register(d, buf);
	if (ret != 0)
		goto err_free;
	d->state = 1;
	return 0;
err_free:
	gt_kfree(buf);
	return ret;
}
struct gt_ops gt_qops = { .probe = gt_probe, };
`
	p := &patch.Patch{
		ID:   "goto-leak",
		Pre:  map[string]string{"gt.c": pre},
		Post: map[string]string{"gt.c": post},
	}
	a, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	res := InferPatch(a)
	found := false
	for _, s := range res.Specs {
		r := s.Constraint.Rel
		if !s.Constraint.Forbidden && r.Kind == spec.RelReach &&
			r.V.Kind == spec.VAPIRet && r.V.API == "gt_kmalloc" &&
			r.U.Kind == spec.UAPIArg && r.U.API == "gt_kfree" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing kmalloc->kfree spec from goto error path; got:\n%s", dumpSpecs(res.Specs))
	}
}
