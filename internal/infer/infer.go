package infer

import (
	"fmt"
	"sort"

	"seal/internal/budget"
	"seal/internal/ir"
	"seal/internal/obs"
	"seal/internal/patch"
	"seal/internal/pdg"
	"seal/internal/solver"
	"seal/internal/spec"
	"seal/internal/vfp"
)

// Stats summarizes one patch's inference, feeding the RQ2 statistics
// (relations per origin, paper §8.2).
type Stats struct {
	Criteria  int
	PrePaths  int
	PostPaths int
	PMinus    int
	PPlus     int
	PPsi      int
	POmega    int
	Relations int
	// Truncations / BudgetTruncations count the slicing enumerations cut
	// short during this patch's path collection (by any cap, and by the
	// dynamic unit budget respectively) — the counted warning that replaces
	// the formerly silent MaxPaths/MaxDepth cutoff.
	Truncations       int64
	BudgetTruncations int64
}

// Result is the inference output for one patch.
type Result struct {
	PatchID string
	Specs   []*spec.Spec
	Stats   Stats
}

// InferPatch runs the full stage ①–③ pipeline on one analyzed patch:
// demand-driven PDG construction, criteria selection, path collection,
// classification (Alg. 1), and deduction (Alg. 2).
func InferPatch(a *patch.Analyzed) *Result {
	return InferPatchBudget(a, nil)
}

// InferPatchBudget is InferPatch metered against one unit's budget: path
// collection on both patch sides charges slicing steps and path memory, so
// a pathological patch exhausts its own budget (and is marked Degraded by
// the caller) instead of monopolizing the run. A nil budget is unmetered.
func InferPatchBudget(a *patch.Analyzed, b *budget.Budget) *Result {
	return InferPatchObs(a, b, nil)
}

// InferPatchObs is InferPatchBudget with staged observability: when span is
// a live unit span, the pdg (graph construction and criteria selection),
// diff (path collection on both patch sides), and infer (classification and
// deduction) stages are recorded as child stage spans with monotonic-clock
// durations and budget-spend deltas. A nil span compiles to near-no-ops —
// no clock reads on the unobserved path.
func InferPatchObs(a *patch.Analyzed, b *budget.Budget, span *obs.Span) *Result {
	steps0 := b.StepsSpent()
	st := span.StartStage("pdg")
	gPre := pdg.New(a.PreProg)
	gPost := pdg.New(a.PostProg)

	critPre := Criteria(gPre, a, patch.PreSide)
	critPost := Criteria(gPost, a, patch.PostSide)
	// Mirror criteria across versions so guard-insertion patches (which
	// change no pre-patch line) still slice the affected statements on
	// both sides.
	critPre = MergeCriteria(critPre, CounterpartStmts(critPost, a.PreProg))
	critPost = MergeCriteria(critPost, CounterpartStmts(critPre, a.PostProg))
	st.EndWithSpend(b.StepsSpent()-steps0, 0)

	steps0 = b.StepsSpent()
	st = span.StartStage("diff")
	var trunc TruncCount
	prePaths := CollectPathsBudget(gPre, critPre, b, &trunc)
	postPaths := CollectPathsBudget(gPost, critPost, b, &trunc)
	st.EndWithSpend(b.StepsSpent()-steps0, 0)

	steps0 = b.StepsSpent()
	st = span.StartStage("infer")
	cls := Classify(gPre, gPost, prePaths, postPaths)
	res := &Result{
		PatchID: a.Patch.ID,
		Stats: Stats{
			Criteria:          len(critPre) + len(critPost),
			PrePaths:          len(prePaths),
			PostPaths:         len(postPaths),
			Truncations:       trunc.Total,
			BudgetTruncations: trunc.Budget,
		},
	}
	res.Specs = Deduce(a.Patch.ID, gPre, gPost, cls, &res.Stats)
	res.Stats.Relations = len(res.Specs)
	st.EndWithSpend(b.StepsSpent()-steps0, 0)
	if trunc.Total > 0 {
		span.Annotate("truncated", fmt.Sprintf("%d path enumerations cut short", trunc.Total))
	}
	return res
}

// Deduce implements Alg. 2: turn classified path changes into quantified
// relations, abstracted into the specification domain.
func Deduce(patchID string, gPre, gPost *pdg.Graph, cls *Classified, st *Stats) []*spec.Spec {
	db := &spec.DB{}
	n := 0
	nextID := func() string {
		n++
		return fmt.Sprintf("%s/S%d", patchID, n)
	}

	// Lines 3-4: removed paths are not expected (∄ after negation).
	for _, p := range cls.PMinus {
		if s, ok := reachSpec(gPre, p, true, spec.OriginRemoved); ok {
			s.ID = nextID()
			s.OriginPatch = patchID
			db.Specs = append(db.Specs, s)
			st.PMinus++
		}
	}
	// Lines 5-6: added paths are required (∀/∃).
	for _, p := range cls.PPlus {
		if s, ok := reachSpec(gPost, p, false, spec.OriginAdded); ok {
			s.ID = nextID()
			s.OriginPatch = patchID
			db.Specs = append(db.Specs, s)
			st.PPlus++
		}
	}
	// Lines 7-9: condition changes become delta-constraint relations.
	for _, pair := range cls.PPsi {
		abPre := NewAbstracter(gPre)
		abPost := NewAbstracter(gPost)
		psiPre := abPre.AbstractPsi(pair.Pre)
		psiPost := abPost.AbstractPsi(pair.Post)
		delta := solver.Simplify(solver.Delta(psiPre, psiPost))
		if solver.Unsat(delta) || solver.Equiv(delta, solver.TrueF{}) {
			continue
		}
		if s, ok := reachSpecWithCond(gPre, pair.Pre, delta, abPre, true, spec.OriginCondition); ok {
			s.ID = nextID()
			s.OriginPatch = patchID
			db.Specs = append(db.Specs, s)
			st.PPsi++
		}
	}
	// Lines 10-19: order inconsistencies among comparable use sites.
	for _, s := range orderSpecs(patchID, gPre, gPost, cls.POmega, nextID) {
		db.Specs = append(db.Specs, s)
		st.POmega++
	}

	db.Dedup()
	return db.Specs
}

// reachSpec abstracts one path into a reachability relation.
func reachSpec(g *pdg.Graph, p *vfp.Path, forbidden bool, origin spec.Origin) (*spec.Spec, bool) {
	ab := NewAbstracter(g)
	cond := ab.AbstractPsi(p)
	return reachSpecWithCond(g, p, cond, ab, forbidden, origin)
}

func reachSpecWithCond(g *pdg.Graph, p *vfp.Path, cond solver.Formula, ab *Abstracter, forbidden bool, origin spec.Origin) (*spec.Spec, bool) {
	v, ok := ab.ValueOf(p)
	if !ok {
		return nil, false
	}
	u, ok := ab.UseOf(p)
	if !ok {
		return nil, false
	}
	// Uninteresting self-flows: a value reaching its own definition class.
	if v.Kind == spec.VAPIRet && u.Kind == spec.UAPIArg && v.API == u.API {
		return nil, false
	}
	// An unconditioned argument-to-return flow carries no error-handling
	// evidence: requiring it of every implementation would flag any
	// constant-returning sibling (a classic incorrect-spec shape).
	if !forbidden && v.Kind == spec.VIfaceArg && u.Kind == spec.UIfaceRet && isTrivialCond(cond) {
		return nil, false
	}
	// Literal sources only matter for outgoing interaction data (error
	// codes); literal-to-sensitive-op relations are noise.
	if v.Kind == spec.VLiteral && u.Kind != spec.UIfaceRet && u.Kind != spec.UGlobalStore && u.Kind != spec.UAPIArg {
		return nil, false
	}
	iface, api := scopeOf(g, p, v, u, ab)
	if iface == "" && api == "" {
		return nil, false
	}
	return &spec.Spec{
		Iface:  iface,
		API:    api,
		Origin: origin,
		Constraint: spec.Constraint{
			Forbidden: forbidden,
			Rel:       spec.Relation{Kind: spec.RelReach, V: v, U: u, Cond: cond},
		},
	}, true
}

func isTrivialCond(f solver.Formula) bool {
	return solver.Equiv(f, solver.TrueF{})
}

// scopeOf picks the detection region key: the interface when function-
// pointer elements are involved, otherwise the API (paper §5 Remark).
func scopeOf(g *pdg.Graph, p *vfp.Path, v spec.Value, u spec.Use, ab *Abstracter) (iface, api string) {
	switch {
	case v.Kind == spec.VIfaceArg:
		iface = v.Iface
	case u.Kind == spec.UIfaceRet || u.Kind == spec.UParamStore:
		iface = u.Iface
	}
	if iface == "" && p.Sink.Fn != nil {
		// The path lives inside an interface implementation: scope to it.
		iface = IfaceOf(g.Prog, p.Sink.Fn)
	}
	apis := ab.MentionedAPIs()
	if v.Kind == spec.VAPIRet {
		api = v.API
	} else if u.Kind == spec.UAPIArg {
		api = u.API
	} else if len(apis) > 0 {
		api = apis[0]
	}
	return iface, api
}

// orderSpecs implements Alg. 2 lines 10-19: group the unchanged paths by
// source, and for every pair of order-comparable sinks whose relative flow
// order flipped between versions, forbid the pre-patch arrangement.
func orderSpecs(patchID string, gPre, gPost *pdg.Graph, pairs []PathPair, nextID func() string) []*spec.Spec {
	type sinkRec struct {
		pair PathPair
		use  spec.Use
		v    spec.Value
	}
	groups := make(map[string][]sinkRec)
	var order []string
	for _, pr := range pairs {
		ab := NewAbstracter(gPre)
		v, ok := ab.ValueOf(pr.Pre)
		if !ok {
			continue
		}
		// Order relations only apply to memory-carrying interaction data:
		// by-value data cannot be affected by an API's side effects
		// (paper §5 step 2).
		if !memoryCarrying(pr.Pre) {
			continue
		}
		u, ok := ab.UseOf(pr.Pre)
		if !ok {
			continue
		}
		key := pr.Pre.Source.Key()
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], sinkRec{pair: pr, use: u, v: v})
	}
	sort.Strings(order)

	var out []*spec.Spec
	for _, key := range order {
		recs := groups[key]
		for i := 0; i < len(recs); i++ {
			for j := i + 1; j < len(recs); j++ {
				a, b := recs[i], recs[j]
				if a.use.Key() == b.use.Key() {
					continue
				}
				sA0, sB0 := a.pair.Pre.Sink.Stmt, b.pair.Pre.Sink.Stmt
				sA1, sB1 := a.pair.Post.Sink.Stmt, b.pair.Post.Sink.Stmt
				if sA0.Fn != sB0.Fn || sA1.Fn != sB1.Fn {
					continue
				}
				cfgPre := gPre.CFG(sA0.Fn)
				cfgPost := gPost.CFG(sA1.Fn)
				if !cfgPre.OrderComparable(sA0, sB0) || !cfgPost.OrderComparable(sA1, sB1) {
					continue
				}
				preAB := cfgPre.ExecutedBefore(sA0, sB0)
				postAB := cfgPost.ExecutedBefore(sA1, sB1)
				if preAB == postAB {
					continue
				}
				// The pre-patch order is forbidden: earlier = first in
				// pre-patch (U2), later = second (U1).
				first, second := a, b
				if !preAB {
					first, second = b, a
				}
				sp := &spec.Spec{
					ID:          nextID(),
					Origin:      spec.OriginOrder,
					OriginPatch: patchID,
					Constraint: spec.Constraint{
						Forbidden: true,
						Rel: spec.Relation{
							Kind: spec.RelOrder,
							V:    a.v,
							U1:   second.use, // must not occur after U2
							U2:   first.use,  // the use that must come last
							Cond: solver.TrueF{},
						},
					},
				}
				iface, api := "", ""
				if a.v.Kind == spec.VIfaceArg {
					iface = a.v.Iface
				}
				if first.use.Kind == spec.UAPIArg {
					api = first.use.API
				} else if second.use.Kind == spec.UAPIArg {
					api = second.use.API
				}
				if iface == "" && api == "" {
					continue
				}
				sp.Iface, sp.API = iface, api
				out = append(out, sp)
			}
		}
	}
	return out
}

// memoryCarrying reports whether the path's tracked source datum is a
// memory region (pointer parameter pointee, struct global, heap object) —
// the precondition for order sensitivity.
func memoryCarrying(p *vfp.Path) bool {
	switch p.Source.Kind {
	case vfp.SrcParam:
		v := p.Source.Loc.Base
		return v != nil && v.Type.IsPtr()
	case vfp.SrcGlobal:
		return true
	case vfp.SrcAPIRet:
		return true
	}
	return false
}

var _ = ir.StNop
