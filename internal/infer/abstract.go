package infer

import (
	"sort"
	"strings"

	"seal/internal/cir"
	"seal/internal/ir"
	"seal/internal/pdg"
	"seal/internal/solver"
	"seal/internal/spec"
	"seal/internal/vfp"
)

// localSymPrefix marks condition symbols that could not be mapped to
// interaction data; atoms over them are dropped during filtering
// (paper §6.2.2: "only retain conditions over interaction data").
const localSymPrefix = "local::"

// Abstracter implements the domain mapping 𝔸 : 𝒱 ↦ V ∪ U (paper §6.3.3):
// program variables and statements are abstracted into specification
// elements, and path conditions are rewritten over canonical value symbols.
type Abstracter struct {
	G *pdg.Graph
	// APIs accumulates the API names mentioned while abstracting (used as
	// the instantiation context of the resulting spec).
	APIs map[string]bool
	// Scope, when non-nil, confines backward data-dependence resolution to
	// the given functions. Detection sets it to the region closure so that
	// abstracted conditions do not depend on which unrelated functions a
	// shared PDG happens to have materialized.
	Scope map[*ir.Func]bool
}

// NewAbstracter returns an abstracter over g.
func NewAbstracter(g *pdg.Graph) *Abstracter {
	return &Abstracter{G: g, APIs: make(map[string]bool)}
}

// IfaceOf returns the canonical interface name fn implements ("" if none).
func IfaceOf(prog *ir.Program, fn *ir.Func) string {
	ifaces := prog.InterfacesOf(fn)
	if len(ifaces) == 0 {
		return ""
	}
	return ifaces[0]
}

// ValueOf abstracts a path source into a V element.
func (ab *Abstracter) ValueOf(p *vfp.Path) (spec.Value, bool) {
	src := p.Source
	switch src.Kind {
	case vfp.SrcParam:
		iface := IfaceOf(ab.G.Prog, src.Fn)
		if iface == "" {
			return spec.Value{}, false
		}
		return spec.Value{
			Kind: spec.VIfaceArg, Iface: iface, ArgIndex: src.ParamIndex,
			Field: fieldOfParamPath(p),
		}, true
	case vfp.SrcAPIRet:
		ab.APIs[src.API] = true
		return spec.Value{Kind: spec.VAPIRet, API: src.API}, true
	case vfp.SrcGlobal:
		return spec.Value{Kind: spec.VGlobal, Global: src.Global}, true
	case vfp.SrcLiteral:
		return spec.Value{Kind: spec.VLiteral, Lit: src.Lit}, true
	case vfp.SrcUninit:
		return spec.Value{Kind: spec.VUninit}, true
	}
	return spec.Value{}, false
}

// fieldOfParamPath narrows a parameter source to the field actually used,
// derived from the sink's access path when it is rooted at the parameter.
func fieldOfParamPath(p *vfp.Path) string {
	loc := p.Sink.Loc
	srcVar := p.Source.Loc.Base
	if srcVar == nil || loc.Base != srcVar {
		return ""
	}
	var offs []int
	for _, st := range loc.Path {
		if st.Kind == ir.StepOff {
			offs = append(offs, st.Off)
		}
	}
	return spec.FieldString(offs)
}

// UseOf abstracts a path sink into a U element.
func (ab *Abstracter) UseOf(p *vfp.Path) (spec.Use, bool) {
	snk := p.Sink
	switch snk.Kind {
	case vfp.SnkAPIArg:
		ab.APIs[snk.API] = true
		return spec.Use{Kind: spec.UAPIArg, API: snk.API, ArgIndex: snk.ArgIndex}, true
	case vfp.SnkIfaceRet:
		iface := IfaceOf(ab.G.Prog, snk.Fn)
		if iface == "" {
			return spec.Use{}, false
		}
		return spec.Use{Kind: spec.UIfaceRet, Iface: iface}, true
	case vfp.SnkGlobalStore:
		return spec.Use{Kind: spec.UGlobalStore, Global: snk.Global}, true
	case vfp.SnkDeref:
		return spec.Use{Kind: spec.UDeref}, true
	case vfp.SnkIndex:
		return spec.Use{Kind: spec.UIndex}, true
	case vfp.SnkDiv:
		return spec.Use{Kind: spec.UDiv}, true
	case vfp.SnkParamStore:
		iface := IfaceOf(ab.G.Prog, snk.Fn)
		if iface == "" {
			return spec.Use{}, false
		}
		return spec.Use{Kind: spec.UParamStore, Iface: iface, ArgIndex: snk.ParamIndex}, true
	}
	return spec.Use{}, false
}

// AbstractPsi rewrites the path condition of p over canonical value
// symbols and drops atoms that do not concern interaction data.
func (ab *Abstracter) AbstractPsi(p *vfp.Path) solver.Formula {
	var parts []solver.Formula
	seen := make(map[*ir.Stmt]bool)
	for _, n := range p.Nodes {
		if seen[n] {
			continue
		}
		seen[n] = true
		for _, d := range ab.G.CtrlDeps(n) {
			blk := d.Branch.Blk
			if d.EdgeIdx >= len(blk.EdgeConds) || blk.EdgeConds[d.EdgeIdx] == nil {
				continue
			}
			f := solver.FromCond(blk.EdgeConds[d.EdgeIdx], ab.leafAt(d.Branch))
			if blk.Negated[d.EdgeIdx] {
				f = solver.MkNot(f)
			}
			parts = append(parts, f)
		}
	}
	return solver.Simplify(FilterLocalAtoms(solver.MkAnd(parts...)))
}

// leafAt maps condition leaves at a branch statement to canonical value
// symbols via backward data-dependence resolution.
func (ab *Abstracter) leafAt(branch *ir.Stmt) solver.LeafFn {
	return func(e cir.Expr) solver.Term {
		if lit, ok := e.(*cir.IntLit); ok {
			return solver.Const{Val: lit.Val}
		}
		loc, _, ok := branch.Fn.LvalLoc(e)
		if !ok {
			return solver.Sym{Name: localSymPrefix + branch.Fn.Name + "::" + cir.ExprString(e)}
		}
		if v, ok := ab.valueOfLocAt(branch, loc); ok {
			if v.Kind == spec.VLiteral {
				return solver.Const{Val: v.Lit}
			}
			return solver.Sym{Name: v.Key()}
		}
		return solver.Sym{Name: localSymPrefix + branch.Fn.Name + "::" + cir.ExprString(e)}
	}
}

// valueOfLocAt resolves the interaction datum a location carries at a
// statement (paper §6.2.2: "validate whether each variable in constraint Ψ
// depends on interaction data by traversing data dependence backward").
func (ab *Abstracter) valueOfLocAt(at *ir.Stmt, loc ir.Loc) (spec.Value, bool) {
	field := func() string {
		var offs []int
		for _, st := range loc.Path {
			if st.Kind == ir.StepOff {
				offs = append(offs, st.Off)
			}
		}
		return spec.FieldString(offs)
	}
	// Prefer the reaching definition of this exact location: the datum a
	// condition inspects is whatever last defined it (e.g. risc->cpu at
	// the NULL check is the dma_alloc_coherent return).
	for _, e := range ab.G.DataPreds(at) {
		if ab.Scope != nil && !ab.Scope[e.From.Fn] {
			continue
		}
		if e.Loc.Base != loc.Base || !e.Loc.SameShape(loc) {
			continue
		}
		if e.From.IsParamDef() {
			continue // fall through to the param classification below
		}
		if v, ok := ab.valueFromDef(e.From, 8); ok {
			return v, true
		}
	}
	if loc.Base.Kind == ir.VarGlobal {
		return spec.Value{Kind: spec.VGlobal, Global: loc.Base.Name, Field: field()}, true
	}
	if loc.Base.Kind == ir.VarParam {
		iface := IfaceOf(ab.G.Prog, at.Fn)
		if iface == "" {
			return spec.Value{}, false
		}
		return spec.Value{Kind: spec.VIfaceArg, Iface: iface, ArgIndex: loc.Base.ParamIndex, Field: field()}, true
	}
	return spec.Value{}, false
}

// valueFromDef classifies the interaction datum produced by a defining
// statement, chasing assignments backward up to the given depth.
func (ab *Abstracter) valueFromDef(d *ir.Stmt, depth int) (spec.Value, bool) {
	if d.IsParamDef() {
		iface := IfaceOf(ab.G.Prog, d.Fn)
		if iface == "" {
			return spec.Value{}, false
		}
		return spec.Value{Kind: spec.VIfaceArg, Iface: iface, ArgIndex: d.ParamVar().ParamIndex}, true
	}
	if d.Kind == ir.StCall && d.Callee != "" && ab.G.Prog.IsAPI(d.Callee) {
		ab.APIs[d.Callee] = true
		return spec.Value{Kind: spec.VAPIRet, API: d.Callee}, true
	}
	if d.Kind == ir.StAssign {
		if lit, ok := d.RHS.(*cir.IntLit); ok {
			return spec.Value{Kind: spec.VLiteral, Lit: lit.Val}, true
		}
	}
	if d.Kind == ir.StReturn && d.X != nil {
		if lit, ok := d.X.(*cir.IntLit); ok {
			return spec.Value{Kind: spec.VLiteral, Lit: lit.Val}, true
		}
	}
	if depth == 0 {
		return spec.Value{}, false
	}
	for _, e := range ab.G.DataPreds(d) {
		if ab.Scope != nil && !ab.Scope[e.From.Fn] {
			continue
		}
		if v, ok := ab.valueFromDef(e.From, depth-1); ok {
			return v, true
		}
	}
	return spec.Value{}, false
}

// FilterLocalAtoms drops atoms over non-interaction symbols: the formula
// is normalized to NNF (no Not nodes), then local atoms are replaced by
// True, conservatively weakening the condition.
func FilterLocalAtoms(f solver.Formula) solver.Formula {
	return filterAtoms(solver.NNF(f))
}

func filterAtoms(f solver.Formula) solver.Formula {
	switch x := f.(type) {
	case solver.Atom:
		if atomHasLocalSym(x) {
			return solver.TrueF{}
		}
		return x
	case solver.And:
		fs := make([]solver.Formula, len(x.Fs))
		for i, s := range x.Fs {
			fs[i] = filterAtoms(s)
		}
		return solver.MkAnd(fs...)
	case solver.Or:
		fs := make([]solver.Formula, len(x.Fs))
		for i, s := range x.Fs {
			fs[i] = filterAtoms(s)
		}
		return solver.MkOr(fs...)
	case solver.Not:
		// NNF input should not contain Not; degrade safely.
		return solver.TrueF{}
	}
	return f
}

func atomHasLocalSym(a solver.Atom) bool {
	for _, s := range solver.Symbols(a) {
		if strings.HasPrefix(s, localSymPrefix) {
			return true
		}
	}
	return false
}

// MentionedAPIs returns the accumulated API context, sorted.
func (ab *Abstracter) MentionedAPIs() []string {
	out := make([]string, 0, len(ab.APIs))
	for a := range ab.APIs {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
