package ir

import (
	"fmt"
	"strings"

	"seal/internal/cir"
)

// StepKind is one constructor of an access path.
type StepKind int

// Access path step kinds.
const (
	// StepDeref dereferences the current pointer value.
	StepDeref StepKind = iota
	// StepOff adds a byte offset (struct field); Off == AnyOff models
	// array-element accesses field-insensitively.
	StepOff
)

// AnyOff marks an unknown offset (array indexing).
const AnyOff = -1

// Step is one element of an access path.
type Step struct {
	Kind StepKind
	Off  int
}

// String implements fmt.Stringer.
func (s Step) String() string {
	if s.Kind == StepDeref {
		return "*"
	}
	if s.Off == AnyOff {
		return "[?]"
	}
	return fmt.Sprintf("+%d", s.Off)
}

// Loc is an access path: a base variable followed by deref/offset steps.
// It is the unit of data-dependence tracking ("the structure fields are
// distinguished by the byte offsets from the base pointer", paper §7).
type Loc struct {
	Base *Var
	Path []Step
}

// IsDirect reports whether the loc is the plain variable (no steps).
func (l Loc) IsDirect() bool { return len(l.Path) == 0 }

// HasDeref reports whether the path goes through memory.
func (l Loc) HasDeref() bool {
	for _, s := range l.Path {
		if s.Kind == StepDeref {
			return true
		}
	}
	return false
}

// Key returns a stable map key for the loc.
func (l Loc) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "v%d", l.Base.ID)
	for _, s := range l.Path {
		sb.WriteString(s.String())
	}
	return sb.String()
}

// String implements fmt.Stringer.
func (l Loc) String() string {
	var sb strings.Builder
	sb.WriteString(l.Base.Name)
	for _, s := range l.Path {
		sb.WriteString(s.String())
	}
	return sb.String()
}

// Equal reports exact structural equality of two locs.
func (l Loc) Equal(o Loc) bool {
	if l.Base != o.Base || len(l.Path) != len(o.Path) {
		return false
	}
	for i := range l.Path {
		if l.Path[i] != o.Path[i] {
			return false
		}
	}
	return true
}

// SameShape reports path equality ignoring base identity; used when
// comparing locs across pre-/post-patch program versions where the base
// variables are distinct objects with the same name.
func (l Loc) SameShape(o Loc) bool {
	if l.Base.Name != o.Base.Name || l.Base.Kind != o.Base.Kind || len(l.Path) != len(o.Path) {
		return false
	}
	for i := range l.Path {
		a, b := l.Path[i], o.Path[i]
		if a.Kind != b.Kind {
			return false
		}
		if a.Kind == StepOff && a.Off != b.Off && a.Off != AnyOff && b.Off != AnyOff {
			return false
		}
	}
	return true
}

// normalizePath merges consecutive offset steps.
func normalizePath(path []Step) []Step {
	var out []Step
	for _, s := range path {
		if s.Kind == StepOff && len(out) > 0 && out[len(out)-1].Kind == StepOff {
			last := &out[len(out)-1]
			if last.Off == AnyOff || s.Off == AnyOff {
				last.Off = AnyOff
			} else {
				last.Off += s.Off
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// LvalLoc computes the access path written by an lvalue expression, plus
// the locations read while evaluating it (pointer bases, indices).
// Returns ok=false for expressions that are not assignable paths rooted at
// a variable (e.g. literal targets, call results).
func (f *Func) LvalLoc(e cir.Expr) (loc Loc, reads []Loc, ok bool) {
	switch x := e.(type) {
	case *cir.Ident:
		v := f.VarByName(x.Name)
		if v == nil {
			return Loc{}, nil, false
		}
		return Loc{Base: v}, nil, true
	case *cir.FieldExpr:
		off := f.fieldOffset(x)
		if x.Arrow {
			// base->f : value of base, deref, +off
			baseLoc, rds, ok := f.LvalLoc(x.X)
			if !ok {
				return Loc{}, nil, false
			}
			rds = append(rds, baseLoc) // reading the pointer
			path := append(append([]Step{}, baseLoc.Path...), Step{Kind: StepDeref}, Step{Kind: StepOff, Off: off})
			return Loc{Base: baseLoc.Base, Path: normalizePath(path)}, rds, true
		}
		baseLoc, rds, ok := f.LvalLoc(x.X)
		if !ok {
			return Loc{}, nil, false
		}
		path := append(append([]Step{}, baseLoc.Path...), Step{Kind: StepOff, Off: off})
		return Loc{Base: baseLoc.Base, Path: normalizePath(path)}, rds, true
	case *cir.UnaryExpr:
		if x.Op == cir.TokStar {
			baseLoc, rds, ok := f.LvalLoc(x.X)
			if !ok {
				return Loc{}, nil, false
			}
			rds = append(rds, baseLoc)
			path := append(append([]Step{}, baseLoc.Path...), Step{Kind: StepDeref})
			return Loc{Base: baseLoc.Base, Path: normalizePath(path)}, rds, true
		}
	case *cir.IndexExpr:
		baseLoc, rds, ok := f.LvalLoc(x.X)
		if !ok {
			return Loc{}, nil, false
		}
		rds = append(rds, f.UsesOf(x.Index)...)
		var path []Step
		if isPointerTyped(f, x.X) {
			rds = append(rds, baseLoc)
			path = append(append([]Step{}, baseLoc.Path...), Step{Kind: StepDeref}, Step{Kind: StepOff, Off: AnyOff})
		} else {
			path = append(append([]Step{}, baseLoc.Path...), Step{Kind: StepOff, Off: AnyOff})
		}
		return Loc{Base: baseLoc.Base, Path: normalizePath(path)}, rds, true
	case *cir.CastExpr:
		return f.LvalLoc(x.X)
	}
	return Loc{}, nil, false
}

// fieldOffset resolves a field access to a byte offset; AnyOff if unknown.
func (f *Func) fieldOffset(x *cir.FieldExpr) int {
	t := f.typeOf(x.X)
	if t == nil {
		return AnyOff
	}
	st := t
	if x.Arrow {
		if !t.IsPtr() {
			return AnyOff
		}
		st = t.Elem
	}
	if !st.IsStruct() || st.Struct == nil {
		return AnyOff
	}
	fd := st.Struct.Field(x.Name)
	if fd == nil {
		return AnyOff
	}
	return fd.Offset
}

// TypeOf computes a best-effort static type for an expression.
func (f *Func) TypeOf(e cir.Expr) *cir.Type { return f.typeOf(e) }

// typeOf computes a best-effort static type for an expression.
func (f *Func) typeOf(e cir.Expr) *cir.Type {
	switch x := e.(type) {
	case *cir.Ident:
		if v := f.VarByName(x.Name); v != nil {
			return v.Type
		}
	case *cir.IntLit:
		return cir.IntType
	case *cir.UnaryExpr:
		t := f.typeOf(x.X)
		if x.Op == cir.TokStar && t.IsPtr() {
			return t.Elem
		}
		if x.Op == cir.TokAmp && t != nil {
			return cir.PtrTo(t)
		}
		return t
	case *cir.BinaryExpr:
		return f.typeOf(x.X)
	case *cir.CondExpr:
		return f.typeOf(x.Then)
	case *cir.FieldExpr:
		t := f.typeOf(x.X)
		st := t
		if x.Arrow {
			if !t.IsPtr() {
				return nil
			}
			st = t.Elem
		}
		if st.IsStruct() && st.Struct != nil {
			if fd := st.Struct.Field(x.Name); fd != nil {
				return fd.Type
			}
		}
	case *cir.IndexExpr:
		t := f.typeOf(x.X)
		if t != nil && (t.Kind == cir.TypeArray || t.IsPtr()) {
			return t.Elem
		}
	case *cir.CastExpr:
		return x.Type
	case *cir.CallExpr:
		if id, ok := x.Fun.(*cir.Ident); ok && f.Prog != nil {
			if callee, ok := f.Prog.Funcs[id.Name]; ok {
				return callee.Decl.Ret
			}
			if proto, ok := f.Prog.Protos[id.Name]; ok {
				return proto.Ret
			}
		}
	}
	return nil
}

func isPointerTyped(f *Func, e cir.Expr) bool {
	t := f.typeOf(e)
	return t.IsPtr()
}

// UsesOf collects every location read by an rvalue expression.
func (f *Func) UsesOf(e cir.Expr) []Loc {
	var out []Loc
	f.collectUses(e, &out)
	return out
}

func (f *Func) collectUses(e cir.Expr, out *[]Loc) {
	switch x := e.(type) {
	case nil:
	case *cir.Ident:
		if v := f.VarByName(x.Name); v != nil {
			*out = append(*out, Loc{Base: v})
		}
	case *cir.IntLit, *cir.StrLit, *cir.SizeofExpr:
	case *cir.UnaryExpr:
		if x.Op == cir.TokAmp {
			// &lv reads nothing of the pointee, but evaluating the base
			// pointer chain reads intermediates.
			if _, rds, ok := f.LvalLoc(x.X); ok {
				*out = append(*out, rds...)
				return
			}
			f.collectUses(x.X, out)
			return
		}
		if x.Op == cir.TokStar {
			if loc, rds, ok := f.LvalLoc(x); ok {
				*out = append(*out, loc)
				*out = append(*out, rds...)
				return
			}
		}
		f.collectUses(x.X, out)
	case *cir.BinaryExpr:
		f.collectUses(x.X, out)
		f.collectUses(x.Y, out)
	case *cir.CondExpr:
		f.collectUses(x.Cond, out)
		f.collectUses(x.Then, out)
		f.collectUses(x.Else, out)
	case *cir.CallExpr:
		// Calls are hoisted before DEF/USE extraction; a residual CallExpr
		// only contributes its arguments (defensive).
		f.collectUses(x.Fun, out)
		for _, a := range x.Args {
			f.collectUses(a, out)
		}
	case *cir.IndexExpr, *cir.FieldExpr:
		if loc, rds, ok := f.LvalLoc(e); ok {
			*out = append(*out, loc)
			*out = append(*out, rds...)
			return
		}
		switch y := e.(type) {
		case *cir.IndexExpr:
			f.collectUses(y.X, out)
			f.collectUses(y.Index, out)
		case *cir.FieldExpr:
			f.collectUses(y.X, out)
		}
	case *cir.CastExpr:
		f.collectUses(x.X, out)
	case *cir.StructInitExpr:
		for _, fld := range x.Fields {
			f.collectUses(fld.Value, out)
		}
	}
}

// dedupLocs removes duplicate locations preserving order.
func dedupLocs(locs []Loc) []Loc {
	seen := make(map[string]bool, len(locs))
	var out []Loc
	for _, l := range locs {
		k := l.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, l)
		}
	}
	return out
}
