package ir

import (
	"fmt"

	"seal/internal/cir"
)

// lowerer lowers one function body to CFG form.
type lowerer struct {
	p    *Program
	fn   *Func
	cur  *Block
	file *cir.File

	breakTargets    []*Block
	continueTargets []*Block
	nextTemp        int

	labelBlocks    map[string]*Block
	declaredLabels map[string]bool
	usedLabels     map[string]int // label -> first goto line
}

func (p *Program) lowerFunc(file *cir.File, fd *cir.FuncDecl) (*Func, error) {
	fn := &Func{
		Name: fd.Name,
		Decl: fd,
		File: file.Name,
		Prog: p,
		vars: make(map[string]*Var),
	}
	for i, pd := range fd.Params {
		name := pd.Name
		if name == "" {
			name = fmt.Sprintf("arg%d", i)
		}
		v := &Var{
			ID: p.nextVarID, Name: name, Type: pd.Type, Kind: VarParam,
			ParamIndex: i, Fn: fn, DeclLine: pd.Pos.Line, Initialized: true,
		}
		p.nextVarID++
		fn.Params = append(fn.Params, v)
		fn.vars[name] = v
	}
	lw := &lowerer{
		p: p, fn: fn, file: file,
		labelBlocks:    make(map[string]*Block),
		declaredLabels: make(map[string]bool),
		usedLabels:     make(map[string]int),
	}
	fn.Entry = lw.newBlock()
	lw.cur = fn.Entry
	// One parameter-definition node per parameter: these are the PDG
	// sources for interface arguments.
	for _, v := range fn.Params {
		s := lw.emit(&Stmt{Kind: StNop, Line: v.DeclLine, LHS: &cir.Ident{Name: v.Name}})
		s.Defs = []Loc{{Base: v}}
	}
	fn.Exit = lw.newBlockDetached()
	if err := lw.lowerStmt(fd.Body); err != nil {
		return nil, err
	}
	// Implicit return at the end of the body.
	if lw.cur != nil {
		lw.emit(&Stmt{Kind: StReturn, Line: fd.EndPos.Line})
		lw.edge(lw.cur, fn.Exit, nil, false)
		lw.cur = nil
	}
	for name, line := range lw.usedLabels {
		if !lw.declaredLabels[name] {
			return nil, fmt.Errorf("%s: goto undefined label %q (line %d)", fd.Name, name, line)
		}
	}
	fn.Blocks = append(fn.Blocks, fn.Exit)
	exitNop := &Stmt{Kind: StNop, Line: fd.EndPos.Line, Fn: fn, Blk: fn.Exit, ID: p.nextStmtID}
	p.nextStmtID++
	fn.Exit.Stmts = append(fn.Exit.Stmts, exitNop)
	p.allStmts = append(p.allStmts, exitNop)
	lw.computeDefUse()
	return fn, nil
}

func (lw *lowerer) newBlock() *Block {
	b := &Block{ID: len(lw.fn.Blocks), Fn: lw.fn}
	lw.fn.Blocks = append(lw.fn.Blocks, b)
	return b
}

// newBlockDetached creates a block that is appended to fn.Blocks later
// (used for the exit block so it sorts last).
func (lw *lowerer) newBlockDetached() *Block {
	return &Block{ID: -1, Fn: lw.fn}
}

func (lw *lowerer) edge(from, to *Block, cond cir.Expr, negated bool) {
	from.Succs = append(from.Succs, to)
	from.EdgeConds = append(from.EdgeConds, cond)
	from.Negated = append(from.Negated, negated)
	to.Preds = append(to.Preds, from)
}

func (lw *lowerer) emit(s *Stmt) *Stmt {
	s.ID = lw.p.nextStmtID
	lw.p.nextStmtID++
	s.Fn = lw.fn
	s.Blk = lw.cur
	lw.cur.Stmts = append(lw.cur.Stmts, s)
	lw.p.allStmts = append(lw.p.allStmts, s)
	return s
}

func (lw *lowerer) declareLocal(name string, typ *cir.Type, line int, initialized bool) *Var {
	if v, ok := lw.fn.vars[name]; ok {
		return v
	}
	v := &Var{
		ID: lw.p.nextVarID, Name: name, Type: typ, Kind: VarLocal,
		Fn: lw.fn, DeclLine: line, Initialized: initialized,
	}
	lw.p.nextVarID++
	lw.fn.Locals = append(lw.fn.Locals, v)
	lw.fn.vars[name] = v
	return v
}

func (lw *lowerer) newTemp(typ *cir.Type, line int) *Var {
	name := fmt.Sprintf("__t%d", lw.nextTemp)
	lw.nextTemp++
	v := &Var{
		ID: lw.p.nextVarID, Name: name, Type: typ, Kind: VarTemp,
		Fn: lw.fn, DeclLine: line, Initialized: true,
	}
	lw.p.nextVarID++
	lw.fn.Locals = append(lw.fn.Locals, v)
	lw.fn.vars[name] = v
	return v
}

// hoistCalls rewrites e so that no CallExpr remains nested: each call is
// emitted as a StCall statement assigning a fresh temp, post-order.
func (lw *lowerer) hoistCalls(e cir.Expr, line int) cir.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *cir.Ident, *cir.IntLit, *cir.StrLit, *cir.SizeofExpr:
		return e
	case *cir.UnaryExpr:
		nx := lw.hoistCalls(x.X, line)
		if nx == x.X {
			return x
		}
		c := *x
		c.X = nx
		return &c
	case *cir.BinaryExpr:
		na := lw.hoistCalls(x.X, line)
		nb := lw.hoistCalls(x.Y, line)
		if na == x.X && nb == x.Y {
			return x
		}
		c := *x
		c.X, c.Y = na, nb
		return &c
	case *cir.CondExpr:
		c := *x
		c.Cond = lw.hoistCalls(x.Cond, line)
		c.Then = lw.hoistCalls(x.Then, line)
		c.Else = lw.hoistCalls(x.Else, line)
		return &c
	case *cir.IndexExpr:
		c := *x
		c.X = lw.hoistCalls(x.X, line)
		c.Index = lw.hoistCalls(x.Index, line)
		return &c
	case *cir.FieldExpr:
		c := *x
		c.X = lw.hoistCalls(x.X, line)
		return &c
	case *cir.CastExpr:
		c := *x
		c.X = lw.hoistCalls(x.X, line)
		return &c
	case *cir.CallExpr:
		stmt := lw.lowerCall(x, nil, line)
		retType := lw.callRetType(x)
		tmp := lw.newTemp(retType, line)
		stmt.LHS = &cir.Ident{Name: tmp.Name}
		return &cir.Ident{Name: tmp.Name}
	case *cir.StructInitExpr:
		return e
	}
	return e
}

func (lw *lowerer) callRetType(x *cir.CallExpr) *cir.Type {
	if id, ok := x.Fun.(*cir.Ident); ok {
		if callee, ok := lw.p.Funcs[id.Name]; ok {
			return callee.Decl.Ret
		}
		if proto, ok := lw.p.Protos[id.Name]; ok {
			return proto.Ret
		}
	}
	t := lw.fn.typeOf(x.Fun)
	if t.IsFuncPtr() {
		return t.Elem.Sig.Ret
	}
	return cir.IntType
}

// lowerCall emits a StCall for x (args hoisted first); lhs may be nil.
func (lw *lowerer) lowerCall(x *cir.CallExpr, lhs cir.Expr, line int) *Stmt {
	args := make([]cir.Expr, len(x.Args))
	for i, a := range x.Args {
		args[i] = lw.hoistCalls(a, line)
	}
	s := &Stmt{Kind: StCall, Line: line, LHS: lhs, Args: args}
	if id, ok := x.Fun.(*cir.Ident); ok {
		s.Callee = id.Name
	} else {
		s.CalleeExpr = lw.hoistCalls(x.Fun, line)
	}
	return lw.emit(s)
}

func exprLine(e cir.Expr, fallback int) int {
	if e != nil && e.ExprPos().IsValid() {
		return e.ExprPos().Line
	}
	return fallback
}

func stmtLine(s cir.Stmt) int { return s.StmtPos().Line }

func (lw *lowerer) lowerStmt(s cir.Stmt) error {
	if lw.cur == nil {
		// Unreachable code after return/break: lower into a fresh dangling
		// block to keep statements addressable.
		lw.cur = lw.newBlock()
	}
	switch x := s.(type) {
	case nil:
		return nil
	case *cir.BlockStmt:
		for _, sub := range x.Stmts {
			if err := lw.lowerStmt(sub); err != nil {
				return err
			}
		}
		return nil
	case *cir.DeclStmt:
		v := lw.declareLocal(x.Name, x.Type, stmtLine(x), x.Init != nil)
		if x.Init != nil {
			line := stmtLine(x)
			if call, ok := x.Init.(*cir.CallExpr); ok {
				lw.lowerCall(call, &cir.Ident{Name: v.Name}, line)
				return nil
			}
			rhs := lw.hoistCalls(x.Init, line)
			lw.emit(&Stmt{Kind: StAssign, Line: line, LHS: &cir.Ident{Name: v.Name}, RHS: rhs})
		}
		return nil
	case *cir.AssignStmt:
		line := stmtLine(x)
		rhsAST := x.RHS
		if x.Op == cir.TokPlusEq {
			rhsAST = &cir.BinaryExpr{Op: cir.TokPlus, X: x.LHS, Y: x.RHS}
		} else if x.Op == cir.TokMinusEq {
			rhsAST = &cir.BinaryExpr{Op: cir.TokMinus, X: x.LHS, Y: x.RHS}
		}
		lhs := lw.hoistCalls(x.LHS, line)
		if call, ok := rhsAST.(*cir.CallExpr); ok && x.Op == cir.TokAssign {
			lw.lowerCall(call, lhs, line)
			return nil
		}
		rhs := lw.hoistCalls(rhsAST, line)
		lw.emit(&Stmt{Kind: StAssign, Line: line, LHS: lhs, RHS: rhs})
		return nil
	case *cir.ExprStmt:
		line := stmtLine(x)
		switch e := x.X.(type) {
		case *cir.CallExpr:
			lw.lowerCall(e, nil, line)
		case *cir.UnaryExpr:
			if e.Op == cir.TokInc || e.Op == cir.TokDec {
				op := cir.TokPlus
				if e.Op == cir.TokDec {
					op = cir.TokMinus
				}
				rhs := &cir.BinaryExpr{Op: op, X: e.X, Y: &cir.IntLit{Val: 1}}
				lw.emit(&Stmt{Kind: StAssign, Line: line, LHS: e.X, RHS: rhs})
				return nil
			}
			lw.hoistCalls(e, line)
		default:
			lw.hoistCalls(e, line)
		}
		return nil
	case *cir.ReturnStmt:
		line := stmtLine(x)
		var val cir.Expr
		if x.X != nil {
			val = lw.hoistCalls(x.X, line)
		}
		lw.emit(&Stmt{Kind: StReturn, Line: line, X: val})
		lw.edge(lw.cur, lw.fn.Exit, nil, false)
		lw.cur = nil
		return nil
	case *cir.IfStmt:
		return lw.lowerIf(x)
	case *cir.WhileStmt:
		return lw.lowerWhile(x)
	case *cir.ForStmt:
		return lw.lowerFor(x)
	case *cir.SwitchStmt:
		return lw.lowerSwitch(x)
	case *cir.BreakStmt:
		if len(lw.breakTargets) == 0 {
			return fmt.Errorf("%s: break outside loop/switch", lw.fn.Name)
		}
		lw.edge(lw.cur, lw.breakTargets[len(lw.breakTargets)-1], nil, false)
		lw.cur = nil
		return nil
	case *cir.ContinueStmt:
		if len(lw.continueTargets) == 0 {
			return fmt.Errorf("%s: continue outside loop", lw.fn.Name)
		}
		lw.edge(lw.cur, lw.continueTargets[len(lw.continueTargets)-1], nil, false)
		lw.cur = nil
		return nil
	case *cir.DoWhileStmt:
		return lw.lowerDoWhile(x)
	case *cir.LabelStmt:
		lb := lw.labelBlock(x.Name)
		lw.declaredLabels[x.Name] = true
		if lw.cur != nil {
			lw.edge(lw.cur, lb, nil, false)
		}
		lw.cur = lb
		return nil
	case *cir.GotoStmt:
		lb := lw.labelBlock(x.Label)
		if _, seen := lw.usedLabels[x.Label]; !seen {
			lw.usedLabels[x.Label] = stmtLine(x)
		}
		lw.edge(lw.cur, lb, nil, false)
		lw.cur = nil
		return nil
	}
	return fmt.Errorf("%s: unsupported statement %T", lw.fn.Name, s)
}

func (lw *lowerer) lowerIf(x *cir.IfStmt) error {
	line := exprLine(x.Cond, stmtLine(x))
	cond := lw.hoistCalls(x.Cond, line)
	lw.emit(&Stmt{Kind: StBranch, Line: line, X: cond})
	condBlk := lw.cur

	thenBlk := lw.newBlock()
	lw.edge(condBlk, thenBlk, cond, false)
	lw.cur = thenBlk
	if err := lw.lowerStmt(x.Then); err != nil {
		return err
	}
	thenEnd := lw.cur

	var elseEnd *Block
	elseBlk := lw.newBlock()
	lw.edge(condBlk, elseBlk, cond, true)
	lw.cur = elseBlk
	if x.Else != nil {
		if err := lw.lowerStmt(x.Else); err != nil {
			return err
		}
	}
	elseEnd = lw.cur

	if thenEnd == nil && elseEnd == nil {
		lw.cur = nil
		return nil
	}
	join := lw.newBlock()
	if thenEnd != nil {
		lw.edge(thenEnd, join, nil, false)
	}
	if elseEnd != nil {
		lw.edge(elseEnd, join, nil, false)
	}
	lw.cur = join
	return nil
}

func (lw *lowerer) lowerWhile(x *cir.WhileStmt) error {
	header := lw.newBlock()
	lw.edge(lw.cur, header, nil, false)
	lw.cur = header
	line := exprLine(x.Cond, stmtLine(x))
	cond := lw.hoistCalls(x.Cond, line)
	lw.emit(&Stmt{Kind: StBranch, Line: line, X: cond})
	condBlk := lw.cur

	body := lw.newBlock()
	exit := lw.newBlock()
	lw.edge(condBlk, body, cond, false)
	lw.edge(condBlk, exit, cond, true)

	lw.breakTargets = append(lw.breakTargets, exit)
	lw.continueTargets = append(lw.continueTargets, header)
	lw.cur = body
	if err := lw.lowerStmt(x.Body); err != nil {
		return err
	}
	if lw.cur != nil {
		lw.edge(lw.cur, header, nil, false)
	}
	lw.breakTargets = lw.breakTargets[:len(lw.breakTargets)-1]
	lw.continueTargets = lw.continueTargets[:len(lw.continueTargets)-1]
	lw.cur = exit
	return nil
}

func (lw *lowerer) lowerFor(x *cir.ForStmt) error {
	if x.Init != nil {
		if err := lw.lowerStmt(x.Init); err != nil {
			return err
		}
	}
	header := lw.newBlock()
	lw.edge(lw.cur, header, nil, false)
	lw.cur = header

	var cond cir.Expr
	line := stmtLine(x)
	if x.Cond != nil {
		line = exprLine(x.Cond, line)
		cond = lw.hoistCalls(x.Cond, line)
		lw.emit(&Stmt{Kind: StBranch, Line: line, X: cond})
	}
	condBlk := lw.cur

	body := lw.newBlock()
	exit := lw.newBlock()
	postBlk := lw.newBlock()
	if cond != nil {
		lw.edge(condBlk, body, cond, false)
		lw.edge(condBlk, exit, cond, true)
	} else {
		lw.edge(condBlk, body, nil, false)
	}

	lw.breakTargets = append(lw.breakTargets, exit)
	lw.continueTargets = append(lw.continueTargets, postBlk)
	lw.cur = body
	if err := lw.lowerStmt(x.Body); err != nil {
		return err
	}
	if lw.cur != nil {
		lw.edge(lw.cur, postBlk, nil, false)
	}
	lw.breakTargets = lw.breakTargets[:len(lw.breakTargets)-1]
	lw.continueTargets = lw.continueTargets[:len(lw.continueTargets)-1]

	lw.cur = postBlk
	if x.Post != nil {
		if err := lw.lowerStmt(x.Post); err != nil {
			return err
		}
	}
	if lw.cur != nil {
		lw.edge(lw.cur, header, nil, false)
	}
	lw.cur = exit
	return nil
}

// labelBlock returns (creating on first reference) the block a label
// names; goto and label declaration may arrive in either order.
func (lw *lowerer) labelBlock(name string) *Block {
	if b, ok := lw.labelBlocks[name]; ok {
		return b
	}
	b := lw.newBlock()
	lw.labelBlocks[name] = b
	return b
}

func (lw *lowerer) lowerDoWhile(x *cir.DoWhileStmt) error {
	body := lw.newBlock()
	condBlk := lw.newBlock()
	exit := lw.newBlock()
	lw.edge(lw.cur, body, nil, false)

	lw.breakTargets = append(lw.breakTargets, exit)
	lw.continueTargets = append(lw.continueTargets, condBlk)
	lw.cur = body
	if err := lw.lowerStmt(x.Body); err != nil {
		return err
	}
	if lw.cur != nil {
		lw.edge(lw.cur, condBlk, nil, false)
	}
	lw.breakTargets = lw.breakTargets[:len(lw.breakTargets)-1]
	lw.continueTargets = lw.continueTargets[:len(lw.continueTargets)-1]

	lw.cur = condBlk
	line := exprLine(x.Cond, stmtLine(x))
	cond := lw.hoistCalls(x.Cond, line)
	lw.emit(&Stmt{Kind: StBranch, Line: line, X: cond})
	lw.edge(condBlk, body, cond, false) // back edge when the condition holds
	lw.edge(condBlk, exit, cond, true)
	lw.cur = exit
	return nil
}

func (lw *lowerer) lowerSwitch(x *cir.SwitchStmt) error {
	line := exprLine(x.Tag, stmtLine(x))
	tag := lw.hoistCalls(x.Tag, line)
	lw.emit(&Stmt{Kind: StSwitch, Line: line, X: tag})
	tagBlk := lw.cur

	exit := lw.newBlock()
	lw.breakTargets = append(lw.breakTargets, exit)

	// Build the edge condition for each clause: OR of tag==v; default gets
	// the conjunction of negations.
	var allEqs []cir.Expr
	hasDefault := false
	for _, cc := range x.Cases {
		if cc.Values == nil {
			hasDefault = true
			continue
		}
		for _, v := range cc.Values {
			allEqs = append(allEqs, &cir.BinaryExpr{Op: cir.TokEq, X: tag, Y: v})
		}
	}
	for _, cc := range x.Cases {
		body := lw.newBlock()
		var cond cir.Expr
		if cc.Values != nil {
			for _, v := range cc.Values {
				eq := &cir.BinaryExpr{Op: cir.TokEq, X: tag, Y: v}
				if cond == nil {
					cond = eq
				} else {
					cond = &cir.BinaryExpr{Op: cir.TokOrOr, X: cond, Y: eq}
				}
			}
			lw.edge(tagBlk, body, cond, false)
		} else {
			// default: none of the case values matched.
			for _, eq := range allEqs {
				ne := &cir.UnaryExpr{Op: cir.TokNot, X: eq}
				if cond == nil {
					cond = cir.Expr(ne)
				} else {
					cond = &cir.BinaryExpr{Op: cir.TokAndAnd, X: cond, Y: ne}
				}
			}
			lw.edge(tagBlk, body, cond, false)
		}
		lw.cur = body
		for _, st := range cc.Body {
			if err := lw.lowerStmt(st); err != nil {
				return err
			}
		}
		if lw.cur != nil {
			lw.edge(lw.cur, exit, nil, false)
		}
	}
	if !hasDefault {
		// Implicit default: fall through to exit.
		var cond cir.Expr
		for _, eq := range allEqs {
			ne := &cir.UnaryExpr{Op: cir.TokNot, X: eq}
			if cond == nil {
				cond = cir.Expr(ne)
			} else {
				cond = &cir.BinaryExpr{Op: cir.TokAndAnd, X: cond, Y: ne}
			}
		}
		lw.edge(tagBlk, exit, cond, false)
	}
	lw.breakTargets = lw.breakTargets[:len(lw.breakTargets)-1]
	lw.cur = exit
	return nil
}

// computeDefUse fills Defs/Uses for every statement of the function.
func (lw *lowerer) computeDefUse() {
	fn := lw.fn
	for _, b := range fn.Blocks {
		for _, s := range b.Stmts {
			switch s.Kind {
			case StAssign:
				if loc, reads, ok := fn.LvalLoc(s.LHS); ok {
					s.Defs = []Loc{loc}
					s.Uses = append(s.Uses, reads...)
				}
				s.Uses = append(s.Uses, fn.UsesOf(s.RHS)...)
			case StCall:
				if s.LHS != nil {
					if loc, reads, ok := fn.LvalLoc(s.LHS); ok {
						s.Defs = []Loc{loc}
						s.Uses = append(s.Uses, reads...)
					}
				}
				if s.CalleeExpr != nil {
					s.Uses = append(s.Uses, fn.UsesOf(s.CalleeExpr)...)
				}
				for _, a := range s.Args {
					s.Uses = append(s.Uses, fn.UsesOf(a)...)
				}
			case StReturn, StBranch, StSwitch:
				s.Uses = append(s.Uses, fn.UsesOf(s.X)...)
			}
			s.Uses = dedupLocs(s.Uses)
			s.Defs = dedupLocs(s.Defs)
		}
	}
	// Renumber blocks so Exit has the final ID.
	for i, b := range fn.Blocks {
		b.ID = i
	}
}
