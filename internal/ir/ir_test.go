package ir

import (
	"strings"
	"testing"

	"seal/internal/cir"
)

func mustProg(t *testing.T, src string) *Program {
	t.Helper()
	f, err := cir.ParseFile("test.c", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProgram(f)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLowerFig3(t *testing.T) {
	p := mustProg(t, cir.Fig3Source)
	if len(p.Funcs) != 2 {
		t.Fatalf("funcs: %d", len(p.Funcs))
	}
	if !p.IsAPI("dma_alloc_coherent") {
		t.Error("dma_alloc_coherent should be an API")
	}
	if p.IsAPI("buffer_prepare") {
		t.Error("buffer_prepare should not be an API")
	}
	// Interface discovery via ops table.
	if len(p.OpsAssigns) != 1 {
		t.Fatalf("ops assigns: %+v", p.OpsAssigns)
	}
	oa := p.OpsAssigns[0]
	if oa.InterfaceName() != "vb2_ops.buf_prepare" || oa.FuncName != "buffer_prepare" {
		t.Fatalf("ops assign: %+v", oa)
	}
	impls := p.ImplsOf("vb2_ops", "buf_prepare")
	if len(impls) != 1 || impls[0].Name != "buffer_prepare" {
		t.Fatalf("impls: %+v", impls)
	}

	vbi := p.Funcs["cx23885_vbibuffer"]
	// The API call must be a single StCall with LHS risc->cpu.
	var apiCall *Stmt
	for _, s := range vbi.Stmts() {
		if s.IsCallTo("dma_alloc_coherent") {
			apiCall = s
		}
	}
	if apiCall == nil {
		t.Fatal("missing API call")
	}
	if apiCall.LHS == nil || cir.ExprString(apiCall.LHS) != "risc->cpu" {
		t.Fatalf("api call LHS: %v", cir.ExprString(apiCall.LHS))
	}
	if len(apiCall.Defs) != 1 || apiCall.Defs[0].String() != "risc*+0" {
		t.Fatalf("api call defs: %v", apiCall.Defs)
	}
	// The call reads risc (pointer base) and risc->size.
	var useStrs []string
	for _, u := range apiCall.Uses {
		useStrs = append(useStrs, u.String())
	}
	joined := strings.Join(useStrs, " ")
	if !strings.Contains(joined, "risc*+8") || !strings.Contains(joined, "risc") {
		t.Fatalf("api call uses: %v", useStrs)
	}

	// Returns: -ENOMEM literal and 0.
	rets := vbi.ReturnStmts()
	if len(rets) != 2 {
		t.Fatalf("returns: %d", len(rets))
	}

	// buffer_prepare: return of nested call is hoisted to temp.
	bp := p.Funcs["buffer_prepare"]
	var callSeen, retSeen bool
	for _, s := range bp.Stmts() {
		if s.IsCallTo("cx23885_vbibuffer") {
			callSeen = true
			if s.LHS == nil {
				t.Error("hoisted call must define a temp")
			}
		}
		if s.Kind == StReturn && s.X != nil {
			retSeen = true
		}
	}
	if !callSeen || !retSeen {
		t.Fatalf("call=%v ret=%v\n%s", callSeen, retSeen, bp.Dump())
	}
}

func TestParamDefNodes(t *testing.T) {
	p := mustProg(t, `int f(int a, int b) { return a + b; }`)
	fn := p.Funcs["f"]
	var params []*Var
	for _, s := range fn.Stmts() {
		if s.IsParamDef() {
			params = append(params, s.ParamVar())
		}
	}
	if len(params) != 2 || params[0].Name != "a" || params[1].Name != "b" {
		t.Fatalf("param defs: %+v", params)
	}
	if params[0].ParamIndex != 0 || params[1].ParamIndex != 1 {
		t.Fatalf("param indices: %d %d", params[0].ParamIndex, params[1].ParamIndex)
	}
}

func TestLowerIfCFG(t *testing.T) {
	p := mustProg(t, `
int f(int x) {
	int r = 0;
	if (x > 0) {
		r = 1;
	} else {
		r = 2;
	}
	return r;
}`)
	fn := p.Funcs["f"]
	var branch *Stmt
	for _, s := range fn.Stmts() {
		if s.Kind == StBranch {
			branch = s
		}
	}
	if branch == nil {
		t.Fatalf("no branch:\n%s", fn.Dump())
	}
	blk := branch.Blk
	if len(blk.Succs) != 2 {
		t.Fatalf("branch succs: %d", len(blk.Succs))
	}
	if blk.Negated[0] || !blk.Negated[1] {
		t.Fatalf("negation flags: %v", blk.Negated)
	}
	if blk.EdgeConds[0] == nil || blk.EdgeConds[1] == nil {
		t.Fatal("missing edge conds")
	}
}

func TestLowerLoopCFG(t *testing.T) {
	p := mustProg(t, `
int sum(int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i++) {
		s += i;
	}
	return s;
}`)
	fn := p.Funcs["sum"]
	// The loop header must have two predecessors (entry path + back edge).
	var header *Block
	for _, b := range fn.Blocks {
		if b.Terminator() != nil && b.Terminator().Kind == StBranch {
			header = b
		}
	}
	if header == nil {
		t.Fatalf("no loop header:\n%s", fn.Dump())
	}
	if len(header.Preds) != 2 {
		t.Fatalf("header preds = %d, want 2\n%s", len(header.Preds), fn.Dump())
	}
}

func TestLowerSwitchEdges(t *testing.T) {
	p := mustProg(t, `
int f(int size) {
	int r;
	switch (size) {
	case 1:
		r = 10;
		break;
	case 2:
	case 3:
		r = 20;
		break;
	default:
		r = 30;
	}
	return r;
}`)
	fn := p.Funcs["f"]
	var sw *Stmt
	for _, s := range fn.Stmts() {
		if s.Kind == StSwitch {
			sw = s
		}
	}
	if sw == nil {
		t.Fatal("no switch")
	}
	blk := sw.Blk
	if len(blk.Succs) != 3 {
		t.Fatalf("switch succs = %d, want 3\n%s", len(blk.Succs), fn.Dump())
	}
	// Every edge out of the switch must carry a condition.
	for i, c := range blk.EdgeConds {
		if c == nil {
			t.Errorf("edge %d has no condition", i)
		}
	}
	// The stacked case 2/3 edge condition must mention both values.
	c1 := cir.ExprString(blk.EdgeConds[1])
	if !strings.Contains(c1, "2") || !strings.Contains(c1, "3") {
		t.Errorf("stacked case cond: %s", c1)
	}
	// Default edge mentions negations.
	c2 := cir.ExprString(blk.EdgeConds[2])
	if !strings.Contains(c2, "!") {
		t.Errorf("default cond: %s", c2)
	}
}

func TestNestedCallHoisting(t *testing.T) {
	p := mustProg(t, `
int g(int x);
int h(int x);
int f(int x) {
	return g(h(x)) + 1;
}`)
	fn := p.Funcs["f"]
	var calls []string
	for _, s := range fn.Stmts() {
		if s.Kind == StCall {
			calls = append(calls, s.Callee)
		}
	}
	if len(calls) != 2 || calls[0] != "h" || calls[1] != "g" {
		t.Fatalf("calls: %v (want h before g)\n%s", calls, fn.Dump())
	}
}

func TestIndirectCallLowering(t *testing.T) {
	p := mustProg(t, `
struct vb2_buffer { int n; };
struct vb2_ops { int (*buf_prepare)(struct vb2_buffer *vb); };
int prepare_map(struct vb2_ops *ops, struct vb2_buffer *vb) {
	return ops->buf_prepare(vb);
}`)
	fn := p.Funcs["prepare_map"]
	var ind *Stmt
	for _, s := range fn.Stmts() {
		if s.Kind == StCall && s.Callee == "" {
			ind = s
		}
	}
	if ind == nil {
		t.Fatalf("no indirect call:\n%s", fn.Dump())
	}
	if cir.ExprString(ind.CalleeExpr) != "ops->buf_prepare" {
		t.Fatalf("callee expr: %s", cir.ExprString(ind.CalleeExpr))
	}
}

func TestDefUseFieldOffsets(t *testing.T) {
	p := mustProg(t, `
struct device { int devt; int refcount; };
struct platform_device { struct device dev; };
void put_device(struct device *dev);
void ida_free(int id);
int telem_remove(struct platform_device *pdev) {
	ida_free(pdev->dev.devt);
	put_device(&pdev->dev);
	return 0;
}`)
	fn := p.Funcs["telem_remove"]
	var idaCall, putCall *Stmt
	for _, s := range fn.Stmts() {
		if s.IsCallTo("ida_free") {
			idaCall = s
		}
		if s.IsCallTo("put_device") {
			putCall = s
		}
	}
	// pdev->dev.devt = deref + offset 0 (dev at 0, devt at 0).
	found := false
	for _, u := range idaCall.Uses {
		if u.String() == "pdev*+0" {
			found = true
		}
	}
	if !found {
		t.Errorf("ida_free uses: %v", idaCall.Uses)
	}
	// &pdev->dev reads only the pointer pdev, not the pointee.
	for _, u := range putCall.Uses {
		if u.HasDeref() {
			t.Errorf("put_device(&pdev->dev) should not deref, uses: %v", putCall.Uses)
		}
	}
}

func TestUninitializedLocalTracked(t *testing.T) {
	p := mustProg(t, `
int f(void) {
	int a;
	int b = 1;
	a = b;
	return a;
}`)
	fn := p.Funcs["f"]
	va := fn.VarByName("a")
	vb := fn.VarByName("b")
	if va.Initialized {
		t.Error("a should be uninitialized at decl")
	}
	if !vb.Initialized {
		t.Error("b should be initialized at decl")
	}
}

func TestDuplicateFunctionRejected(t *testing.T) {
	f1 := cir.MustParseFile("a.c", "int f(void) { return 1; }")
	f2 := cir.MustParseFile("b.c", "int f(void) { return 2; }")
	if _, err := NewProgram(f1, f2); err == nil {
		t.Fatal("expected duplicate-function error")
	}
}

func TestCrossFileLinking(t *testing.T) {
	f1 := cir.MustParseFile("api.c", `
struct device { int devt; };
void put_device(struct device *dev);
`)
	f2 := cir.MustParseFile("drv.c", `
struct device { int devt; };
void put_device(struct device *dev);
int drv_remove(struct device *d) {
	put_device(d);
	return 0;
}`)
	p, err := NewProgram(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsAPI("put_device") {
		t.Error("put_device should be API after linking")
	}
	if len(p.CallersOfAPI("put_device")) != 1 {
		t.Error("expected one caller of put_device")
	}
}

func TestLocSameShapeAcrossVersions(t *testing.T) {
	p1 := mustProg(t, `struct s { int a; int b; }; int f(struct s *p) { return p->b; }`)
	f2, _ := cir.ParseFile("test2.c", `struct s { int a; int b; }; int f(struct s *p) { int x = 0; return p->b; }`)
	p2, _ := NewProgram(f2)
	u1 := lastReturnUses(p1.Funcs["f"])
	u2 := lastReturnUses(p2.Funcs["f"])
	var l1, l2 *Loc
	for i := range u1 {
		if u1[i].HasDeref() {
			l1 = &u1[i]
		}
	}
	for i := range u2 {
		if u2[i].HasDeref() {
			l2 = &u2[i]
		}
	}
	if l1 == nil || l2 == nil {
		t.Fatal("missing deref uses")
	}
	if !l1.SameShape(*l2) {
		t.Errorf("locs should have same shape: %v vs %v", l1, l2)
	}
}

func lastReturnUses(fn *Func) []Loc {
	rets := fn.ReturnStmts()
	return rets[len(rets)-1].Uses
}

func TestLowerGotoErrorPath(t *testing.T) {
	p := mustProg(t, `
int *kmalloc(int size);
void kfree(int *p);
int setup(int *p);
int f(int n) {
	int ret;
	int *buf = kmalloc(n);
	if (buf == NULL)
		return -ENOMEM;
	ret = setup(buf);
	if (ret != 0)
		goto err_free;
	return 0;
err_free:
	kfree(buf);
	return ret;
}`)
	fn := p.Funcs["f"]
	kfreeCall := findStmtCall(fn, "kfree")
	if kfreeCall == nil {
		t.Fatalf("missing kfree call:\n%s", fn.Dump())
	}
	// The error-path block must be reachable: it has a predecessor.
	if len(kfreeCall.Blk.Preds) == 0 {
		t.Fatalf("goto target block unreachable:\n%s", fn.Dump())
	}
}

func TestLowerGotoUndefinedLabel(t *testing.T) {
	f, err := cir.ParseFile("t.c", `int f(void) { goto nowhere; return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProgram(f); err == nil {
		t.Fatal("expected undefined-label error")
	}
}

func TestLowerDoWhile(t *testing.T) {
	p := mustProg(t, `
int f(int n) {
	int i = 0;
	do {
		i = i + 1;
	} while (i < n);
	return i;
}`)
	fn := p.Funcs["f"]
	// The loop must produce a branch with a back edge shape: some block
	// has two predecessors (entry path + loop-around).
	multi := false
	for _, b := range fn.Blocks {
		if len(b.Preds) >= 2 {
			multi = true
		}
	}
	if !multi {
		t.Fatalf("do-while CFG missing join:\n%s", fn.Dump())
	}
}

func findStmtCall(fn *Func, callee string) *Stmt {
	for _, s := range fn.Stmts() {
		if s.IsCallTo(callee) {
			return s
		}
	}
	return nil
}
