package ir

import (
	"fmt"
	"strings"
)

// Dump renders the function CFG for debugging and golden tests.
func (f *Func) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (%s)\n", f.Name, f.File)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "  b%d:", b.ID)
		if len(b.Preds) > 0 {
			sb.WriteString(" preds=")
			for i, p := range b.Preds {
				if i > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "b%d", p.ID)
			}
		}
		sb.WriteByte('\n')
		for _, s := range b.Stmts {
			fmt.Fprintf(&sb, "    #%d L%d %s", s.ID, s.Line, s.String())
			if len(s.Defs) > 0 {
				sb.WriteString("  def:")
				for i, d := range s.Defs {
					if i > 0 {
						sb.WriteByte(',')
					}
					sb.WriteString(d.String())
				}
			}
			if len(s.Uses) > 0 {
				sb.WriteString("  use:")
				for i, u := range s.Uses {
					if i > 0 {
						sb.WriteByte(',')
					}
					sb.WriteString(u.String())
				}
			}
			sb.WriteByte('\n')
		}
		for i, succ := range b.Succs {
			lbl := ""
			if b.EdgeConds[i] != nil {
				if b.Negated[i] {
					lbl = " if-false"
				} else {
					lbl = " if-true"
				}
			}
			fmt.Fprintf(&sb, "    -> b%d%s\n", succ.ID, lbl)
		}
	}
	return sb.String()
}
