// Package ir lowers parsed kernel-C translation units into a per-function
// control-flow-graph IR whose nodes carry DEF/USE access-path information.
// The IR is the substrate on which the PDG (paper Def. 6.1) is built: each
// IR statement becomes a PDG node ("each node is a statement or,
// equivalently, the variable defined by the statement").
package ir

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"seal/internal/cir"
)

// VarKind classifies IR variables.
type VarKind int

// Variable kinds.
const (
	VarLocal VarKind = iota
	VarParam
	VarGlobal
	VarTemp
)

// String implements fmt.Stringer.
func (k VarKind) String() string {
	switch k {
	case VarLocal:
		return "local"
	case VarParam:
		return "param"
	case VarGlobal:
		return "global"
	case VarTemp:
		return "temp"
	}
	return "?"
}

// Var is an IR variable: a named local, parameter, global, or
// lowering-introduced temporary.
type Var struct {
	ID         int
	Name       string
	Type       *cir.Type
	Kind       VarKind
	ParamIndex int   // for VarParam
	Fn         *Func // nil for globals
	DeclLine   int
	// Initialized reports whether a local declaration carried an
	// initializer (used by uninitialized-value reasoning).
	Initialized bool
}

// String implements fmt.Stringer.
func (v *Var) String() string {
	if v == nil {
		return "<nilvar>"
	}
	return v.Name
}

// StmtKind enumerates IR statement kinds.
type StmtKind int

// Statement kinds.
const (
	// StAssign: LHS = RHS (call-free expressions on both sides).
	StAssign StmtKind = iota
	// StCall: [LHS =] callee(args); Callee set for direct calls,
	// CalleeExpr for indirect calls through function pointers.
	StCall
	// StReturn: return [X].
	StReturn
	// StBranch: block terminator with cond X; Succs[0] is the true edge,
	// Succs[1] the false edge.
	StBranch
	// StSwitch: block terminator over Tag X; edge conditions are attached
	// to the block.
	StSwitch
	// StNop: entry/exit markers.
	StNop
)

// String implements fmt.Stringer.
func (k StmtKind) String() string {
	switch k {
	case StAssign:
		return "assign"
	case StCall:
		return "call"
	case StReturn:
		return "return"
	case StBranch:
		return "branch"
	case StSwitch:
		return "switch"
	case StNop:
		return "nop"
	}
	return "?"
}

// Stmt is an IR statement; the unit of PDG nodes.
type Stmt struct {
	ID   int
	Kind StmtKind
	Fn   *Func
	Blk  *Block
	Line int

	LHS cir.Expr // assignment / call-result target (lvalue), may be nil
	RHS cir.Expr // assignment source

	Callee     string     // direct callee name ("" if indirect)
	CalleeExpr cir.Expr   // indirect callee expression
	Args       []cir.Expr // call arguments

	X cir.Expr // return value / branch condition / switch tag

	// Defs and Uses are the access paths written and read by this
	// statement (computed during lowering).
	Defs []Loc
	Uses []Loc

	// normMemo caches the temp-erased spelling (NormString). Every path
	// crossing the statement shares one rendering instead of re-deriving
	// it; atomic so concurrent detectors can fill it without locking.
	normMemo atomic.Pointer[string]
}

// IsCallTo reports whether the statement is a direct call to name.
func (s *Stmt) IsCallTo(name string) bool {
	return s.Kind == StCall && s.Callee == name
}

// String renders the statement for diagnostics and bug reports.
func (s *Stmt) String() string {
	switch s.Kind {
	case StAssign:
		return fmt.Sprintf("%s = %s", cir.ExprString(s.LHS), cir.ExprString(s.RHS))
	case StCall:
		var sb strings.Builder
		if s.LHS != nil {
			sb.WriteString(cir.ExprString(s.LHS))
			sb.WriteString(" = ")
		}
		if s.Callee != "" {
			sb.WriteString(s.Callee)
		} else {
			sb.WriteString(cir.ExprString(s.CalleeExpr))
		}
		sb.WriteByte('(')
		for i, a := range s.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(cir.ExprString(a))
		}
		sb.WriteByte(')')
		return sb.String()
	case StReturn:
		if s.X != nil {
			return "return " + cir.ExprString(s.X)
		}
		return "return"
	case StBranch:
		return "branch " + cir.ExprString(s.X)
	case StSwitch:
		return "switch " + cir.ExprString(s.X)
	case StNop:
		if s.LHS != nil {
			return "param " + cir.ExprString(s.LHS)
		}
		return "nop"
	}
	return "?"
}

// NormString renders the statement with lowering temporaries erased:
// `__t3 = f(x)` and a bare `f(x)` expression statement spell the same, and
// `return __t3` becomes `return __t`. The result is memoized per statement
// (safe under concurrent callers — the computation is deterministic, so
// racing writers store equal strings).
func (s *Stmt) NormString() string {
	if memo := s.normMemo.Load(); memo != nil {
		return *memo
	}
	str := s.String()
	if s.Kind == StCall && s.LHS != nil {
		if id, ok := s.LHS.(*cir.Ident); ok && strings.HasPrefix(id.Name, "__t") {
			if i := strings.Index(str, " = "); i >= 0 {
				str = str[i+3:]
			}
		}
	}
	str = eraseTemps(str)
	s.normMemo.Store(&str)
	return str
}

// eraseTemps rewrites every "__t<digits>" token to "__t".
func eraseTemps(s string) string {
	if !strings.Contains(s, "__t") {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); {
		if strings.HasPrefix(s[i:], "__t") {
			sb.WriteString("__t")
			i += 3
			for i < len(s) && s[i] >= '0' && s[i] <= '9' {
				i++
			}
			continue
		}
		sb.WriteByte(s[i])
		i++
	}
	return sb.String()
}

// IsParamDef reports whether the statement is an entry parameter-definition
// node (the PDG source for interface arguments).
func (s *Stmt) IsParamDef() bool { return s.Kind == StNop && s.LHS != nil }

// ParamVar returns the parameter variable a parameter-definition node
// defines, or nil.
func (s *Stmt) ParamVar() *Var {
	if !s.IsParamDef() || len(s.Defs) == 0 {
		return nil
	}
	return s.Defs[0].Base
}

// Block is a basic block.
type Block struct {
	ID    int
	Fn    *Func
	Stmts []*Stmt
	Succs []*Block
	Preds []*Block
	// EdgeConds[i] is the condition (an AST expression over pre-branch
	// state) under which the edge to Succs[i] is taken; nil for
	// unconditional edges. For StBranch blocks EdgeConds[1] is the negation
	// of the branch condition, represented with Negated[i]=true.
	EdgeConds []cir.Expr
	Negated   []bool
}

// Terminator returns the block's final statement if it is a branch/switch.
func (b *Block) Terminator() *Stmt {
	if len(b.Stmts) == 0 {
		return nil
	}
	last := b.Stmts[len(b.Stmts)-1]
	if last.Kind == StBranch || last.Kind == StSwitch {
		return last
	}
	return nil
}

// Func is a lowered function.
type Func struct {
	Name   string
	Decl   *cir.FuncDecl
	File   string
	Params []*Var
	Locals []*Var // includes temps
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	Prog   *Program

	vars map[string]*Var
}

// VarByName resolves a name inside the function scope, falling back to
// globals.
func (f *Func) VarByName(name string) *Var {
	if v, ok := f.vars[name]; ok {
		return v
	}
	if f.Prog != nil {
		if g, ok := f.Prog.GlobalVars[name]; ok {
			return g
		}
	}
	return nil
}

// Stmts returns all statements in block order.
func (f *Func) Stmts() []*Stmt {
	var out []*Stmt
	for _, b := range f.Blocks {
		out = append(out, b.Stmts...)
	}
	return out
}

// ReturnStmts returns all return statements.
func (f *Func) ReturnStmts() []*Stmt {
	var out []*Stmt
	for _, s := range f.Stmts() {
		if s.Kind == StReturn {
			out = append(out, s)
		}
	}
	return out
}

// OpsAssign records an ops-table entry binding a function-pointer interface
// field to an implementing function: the key raw material for interface
// discovery and indirect-call resolution.
type OpsAssign struct {
	StructName string // e.g. "vb2_ops"
	FieldName  string // e.g. "buf_prepare"
	FuncName   string // e.g. "buffer_prepare"
	OpsVar     string // e.g. "cx23885_qops"
	File       string
	Line       int
}

// InterfaceName returns the canonical interface identifier
// "struct.field" (e.g. "vb2_ops.buf_prepare").
func (o OpsAssign) InterfaceName() string { return o.StructName + "." + o.FieldName }

// Program is a whole-corpus IR: the linked set of translation units.
type Program struct {
	Files      []*cir.File
	Funcs      map[string]*Func
	FuncList   []*Func // deterministic order
	Protos     map[string]*cir.FuncDecl
	GlobalVars map[string]*Var
	Globals    []*cir.GlobalDecl
	Structs    map[string]*cir.StructDef
	OpsAssigns []OpsAssign

	nextVarID  int
	nextStmtID int
	allStmts   []*Stmt
}

// NewProgram lowers the given translation units into one linked program.
func NewProgram(files ...*cir.File) (*Program, error) {
	p := &Program{
		Funcs:      make(map[string]*Func),
		Protos:     make(map[string]*cir.FuncDecl),
		GlobalVars: make(map[string]*Var),
		Structs:    make(map[string]*cir.StructDef),
	}
	for _, f := range files {
		if err := p.AddFile(f); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// MustProgram is NewProgram that panics on error (for generated corpora).
func MustProgram(files ...*cir.File) *Program {
	p, err := NewProgram(files...)
	if err != nil {
		panic(err)
	}
	return p
}

// AddFile links one translation unit into the program.
func (p *Program) AddFile(f *cir.File) error {
	p.Files = append(p.Files, f)
	for name, s := range f.Structs {
		if prev, ok := p.Structs[name]; ok && len(prev.Fields) > 0 && len(s.Fields) > 0 && prev != s {
			// Same-named struct across files: tolerate identical layouts.
			if len(prev.Fields) != len(s.Fields) {
				return fmt.Errorf("struct %s redefined with different layout in %s", name, f.Name)
			}
		}
		if _, ok := p.Structs[name]; !ok || len(s.Fields) > 0 {
			p.Structs[name] = s
		}
	}
	for _, g := range f.Globals {
		if _, ok := p.GlobalVars[g.Name]; !ok {
			v := &Var{ID: p.nextVarID, Name: g.Name, Type: g.Type, Kind: VarGlobal, DeclLine: g.Pos.Line, Initialized: g.Init != nil}
			p.nextVarID++
			p.GlobalVars[g.Name] = v
			p.Globals = append(p.Globals, g)
		}
		p.collectOps(f, g)
	}
	for _, pr := range f.Protos {
		if _, ok := p.Protos[pr.Name]; !ok {
			p.Protos[pr.Name] = pr
		}
	}
	for _, fd := range f.Funcs {
		if _, ok := p.Funcs[fd.Name]; ok {
			return fmt.Errorf("function %s redefined in %s", fd.Name, f.Name)
		}
		fn, err := p.lowerFunc(f, fd)
		if err != nil {
			return err
		}
		p.Funcs[fd.Name] = fn
		p.FuncList = append(p.FuncList, fn)
	}
	return nil
}

func (p *Program) collectOps(f *cir.File, g *cir.GlobalDecl) {
	init, ok := g.Init.(*cir.StructInitExpr)
	if !ok || g.Type == nil || !g.Type.IsStruct() {
		return
	}
	sd := g.Type.Struct
	for _, fld := range init.Fields {
		id, ok := fld.Value.(*cir.Ident)
		if !ok || fld.Name == "" {
			continue
		}
		fd := sd.Field(fld.Name)
		if fd == nil || !fd.Type.IsFuncPtr() {
			continue
		}
		p.OpsAssigns = append(p.OpsAssigns, OpsAssign{
			StructName: sd.Name,
			FieldName:  fld.Name,
			FuncName:   id.Name,
			OpsVar:     g.Name,
			File:       f.Name,
			Line:       g.Pos.Line,
		})
	}
}

// IsAPI reports whether name is an external API (declared but not defined).
func (p *Program) IsAPI(name string) bool {
	if _, defined := p.Funcs[name]; defined {
		return false
	}
	_, declared := p.Protos[name]
	return declared
}

// APIProto returns the prototype of an external API.
func (p *Program) APIProto(name string) *cir.FuncDecl {
	if p.IsAPI(name) {
		return p.Protos[name]
	}
	return nil
}

// AllStmts returns every statement in the program, in deterministic order.
func (p *Program) AllStmts() []*Stmt { return p.allStmts }

// ImplsOf returns, in deterministic order, the functions registered in ops
// tables as implementations of the interface "structName.fieldName".
func (p *Program) ImplsOf(structName, fieldName string) []*Func {
	var out []*Func
	seen := map[string]bool{}
	for _, oa := range p.OpsAssigns {
		if oa.StructName == structName && oa.FieldName == fieldName && !seen[oa.FuncName] {
			seen[oa.FuncName] = true
			if fn, ok := p.Funcs[oa.FuncName]; ok {
				out = append(out, fn)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// InterfacesOf returns the interface names (struct.field) that fn implements.
func (p *Program) InterfacesOf(fn *Func) []string {
	var out []string
	seen := map[string]bool{}
	for _, oa := range p.OpsAssigns {
		if oa.FuncName == fn.Name {
			key := oa.InterfaceName()
			if !seen[key] {
				seen[key] = true
				out = append(out, key)
			}
		}
	}
	sort.Strings(out)
	return out
}

// CallersOfAPI returns every call statement to the named function/API.
func (p *Program) CallersOfAPI(name string) []*Stmt {
	var out []*Stmt
	for _, fn := range p.FuncList {
		for _, s := range fn.Stmts() {
			if s.IsCallTo(name) {
				out = append(out, s)
			}
		}
	}
	return out
}
