package detect

import (
	"testing"

	"seal/internal/cir"
	"seal/internal/infer"
	"seal/internal/ir"
	"seal/internal/kernelgen"
	"seal/internal/spec"
)

// corpusSpecsAndProg runs inference over the default generated corpus and
// loads its tree — a realistic multi-spec, multi-region workload for the
// shared-substrate tests.
func corpusSpecsAndProg(t *testing.T) ([]*spec.Spec, *ir.Program) {
	t.Helper()
	corpus := kernelgen.Generate(kernelgen.DefaultConfig())
	db := &spec.DB{}
	for _, p := range corpus.Patches {
		a, err := p.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		db.Specs = append(db.Specs, ValidateSpecs(a.PostProg, infer.InferPatch(a).Specs)...)
	}
	db.Dedup()
	var files []*cir.File
	for _, name := range corpus.SortedFileNames() {
		f, err := cir.ParseFile(name, corpus.Files[name])
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	prog, err := ir.NewProgram(files...)
	if err != nil {
		t.Fatal(err)
	}
	return db.Specs, prog
}

// TestDetectParallelBuildsOnce asserts the central substrate property:
// however many workers run, each function's PDG is constructed at most once
// on the shared graph, a second pass over the same substrate rebuilds
// nothing, and the parallel output is identical to the sequential one.
func TestDetectParallelBuildsOnce(t *testing.T) {
	specs, prog := corpusSpecsAndProg(t)
	if len(specs) < 2 {
		t.Fatalf("corpus yielded %d specs; need several for a parallel run", len(specs))
	}

	seq := New(prog).Detect(specs)
	sh := NewShared(prog)
	par := sh.DetectParallel(specs, 4)
	if dumpBugs(par) != dumpBugs(seq) {
		t.Errorf("parallel reports differ from sequential.\nparallel:%s\nsequential:%s",
			dumpBugs(par), dumpBugs(seq))
	}

	st := sh.Stats()
	if st.EnsureBuilds == 0 {
		t.Fatal("no PDG builds recorded")
	}
	if st.EnsureBuilds > int64(len(prog.FuncList)) {
		t.Errorf("EnsureBuilds = %d exceeds %d functions: some function was built more than once",
			st.EnsureBuilds, len(prog.FuncList))
	}
	if st.EnsureCalls < st.EnsureBuilds {
		t.Errorf("EnsureCalls = %d < EnsureBuilds = %d", st.EnsureCalls, st.EnsureBuilds)
	}

	before := st.EnsureBuilds
	sh.DetectParallel(specs, 4)
	st = sh.Stats()
	if st.EnsureBuilds != before {
		t.Errorf("second run on the same substrate rebuilt PDGs: %d -> %d builds", before, st.EnsureBuilds)
	}
	if st.PathCacheHits == 0 {
		t.Error("path cache recorded no hits across two runs on one substrate")
	}
}

// TestGroupByScope pins the scheduler's grouping: indices partitioned by
// Spec.Scope in first-appearance order, preserving in-group input order.
func TestGroupByScope(t *testing.T) {
	mk := func(iface, api string) *spec.Spec {
		return &spec.Spec{Iface: iface, API: api}
	}
	specs := []*spec.Spec{
		mk("a.f", ""), mk("", "x"), mk("a.f", ""), mk("", "y"), mk("", "x"),
	}
	groups := groupByScope(specs)
	want := [][]int{{0, 2}, {1, 4}, {3}}
	if len(groups) != len(want) {
		t.Fatalf("got %d groups, want %d", len(groups), len(want))
	}
	for i := range want {
		if len(groups[i]) != len(want[i]) {
			t.Fatalf("group %d = %v, want %v", i, groups[i], want[i])
		}
		for j := range want[i] {
			if groups[i][j] != want[i][j] {
				t.Errorf("group %d = %v, want %v", i, groups[i], want[i])
			}
		}
	}
}
