package detect

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"seal/internal/budget"
	"seal/internal/obs"
	"seal/internal/spec"
)

// groupedByScope mirrors the scheduler's unit formation: specs bucketed by
// detection scope in first-appearance order.
func groupedByScope(specs []*spec.Spec) [][]*spec.Spec {
	idx := make(map[string]int)
	var out [][]*spec.Spec
	for _, s := range specs {
		sc := s.Scope()
		i, ok := idx[sc]
		if !ok {
			i = len(out)
			idx[sc] = i
			out = append(out, nil)
		}
		out[i] = append(out[i], s)
	}
	return out
}

// TestManifestSharedVsPrivateSubstrate pins the arrangement-independence
// contract: one budgeted run over the shared substrate and one run that
// gives every region group a private graph must produce the same manifest
// after RedactSubstrate — identical unit universe, outcomes, and result
// counts, with only the cache/spend bookkeeping (which genuinely differs
// between the arrangements) removed.
func TestManifestSharedVsPrivateSubstrate(t *testing.T) {
	specs, prog := corpusSpecsAndProg(t)

	sharedRec := obs.New()
	sh := NewShared(prog)
	sh.SetObs(sharedRec)
	if _, err := sh.DetectParallelCtx(context.Background(), specs, 4, budget.Limits{}); err != nil {
		t.Fatal(err)
	}
	sharedM := sharedRec.BuildManifest("detect", 4, nil, 0)

	privateRec := obs.New()
	for _, group := range groupedByScope(specs) {
		psh := NewShared(prog)
		psh.SetObs(privateRec)
		if _, err := psh.DetectParallelCtx(context.Background(), group, 1, budget.Limits{}); err != nil {
			t.Fatal(err)
		}
	}
	privateM := privateRec.BuildManifest("detect", 1, nil, 0)

	a, err := sharedM.RedactSubstrate().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	b, err := privateM.RedactSubstrate().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("substrate-redacted manifests differ between shared and private-graph runs:\nshared:\n%s\nprivate:\n%s", a, b)
	}
	if len(sharedM.Units) == 0 {
		t.Fatal("shared run recorded no units")
	}
}

// TestRecorderConcurrentWorkers exercises span and counter recording from
// many detection workers at once, with a reader polling run progress in
// parallel — the shapes -race must hold for.
func TestRecorderConcurrentWorkers(t *testing.T) {
	specs, prog := corpusSpecsAndProg(t)
	rec := obs.New()
	sh := NewShared(prog)
	sh.SetObs(rec)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				rec.Progress()
				time.Sleep(time.Millisecond)
			}
		}
	}()

	res, err := sh.DetectParallelCtx(context.Background(), specs, 8, budget.Limits{})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("clean run quarantined %d units", len(res.Failures))
	}

	m := rec.BuildManifest("detect", 8, nil, 5)
	done, total, degraded, quarantined := rec.Progress()
	if done != total || total != int64(len(m.Units)) || degraded != 0 || quarantined != 0 {
		t.Fatalf("progress %d/%d (deg=%d quar=%d) vs %d units", done, total, degraded, quarantined, len(m.Units))
	}
	for _, u := range m.Units {
		if u.Stage != "detect" || u.Outcome != obs.OutcomeOK {
			t.Fatalf("unit %+v", u)
		}
		if len(u.Stages) != 2 || u.Stages[0].Name != "slice" || u.Stages[1].Name != "solve" {
			t.Fatalf("unit %s stages = %+v", u.ID, u.Stages)
		}
	}
}
