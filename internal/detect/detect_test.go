package detect

import (
	"strings"
	"testing"

	"seal/internal/cir"
	"seal/internal/infer"
	"seal/internal/ir"
	"seal/internal/patch"
	"seal/internal/pdg"
	"seal/internal/spec"
)

// targetFig3 is a target corpus with three implementations of
// vb2_ops.buf_prepare: one correct (propagates the error code), one buggy
// (drops it — the Fig. 1 NPD), and one that never calls the API (the spec
// must not apply there).
const targetFig3 = `
struct cx23885_riscmem {
	int *cpu;
	int size;
};
struct vb2_buffer {
	struct cx23885_riscmem risc;
	int state;
};
struct vb2_ops {
	int (*buf_prepare)(struct vb2_buffer *vb);
};
int *dma_alloc_coherent(int size);

int good_risc_alloc(struct cx23885_riscmem *risc) {
	risc->cpu = dma_alloc_coherent(risc->size);
	if (risc->cpu == NULL)
		return -ENOMEM;
	return 0;
}
int good_prepare(struct vb2_buffer *vb) {
	return good_risc_alloc(&vb->risc);
}

int tw68_risc_alloc(struct cx23885_riscmem *risc) {
	risc->cpu = dma_alloc_coherent(risc->size);
	if (risc->cpu == NULL)
		return -ENOMEM;
	return 0;
}
int tw68_buf_prepare(struct vb2_buffer *vb) {
	tw68_risc_alloc(&vb->risc);
	return 0;
}

int plain_prepare(struct vb2_buffer *vb) {
	vb->state = 1;
	return 0;
}

struct vb2_ops good_qops = { .buf_prepare = good_prepare, };
struct vb2_ops tw68_qops = { .buf_prepare = tw68_buf_prepare, };
struct vb2_ops plain_qops = { .buf_prepare = plain_prepare, };
`

func inferFrom(t *testing.T, id, file, pre, post string) []*spec.Spec {
	t.Helper()
	p := &patch.Patch{ID: id, Pre: map[string]string{file: pre}, Post: map[string]string{file: post}}
	a, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	specs := infer.InferPatch(a).Specs
	return ValidateSpecs(a.PostProg, specs)
}

func targetProg(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := cir.ParseFile("target.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.NewProgram(f)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestDetectFig3WrongErrorCode(t *testing.T) {
	specs := inferFrom(t, "fig3", "cx.c", cir.Fig3PreSource, cir.Fig3Source)
	prog := targetProg(t, targetFig3)
	d := New(prog)
	bugs := d.Detect(specs)

	var buggyHit, goodHit, plainHit bool
	for _, b := range bugs {
		switch b.Fn.Name {
		case "tw68_buf_prepare":
			buggyHit = true
			if b.Kind != "WrongEC" && b.Kind != "NPD" {
				t.Errorf("bug kind = %s, want WrongEC/NPD", b.Kind)
			}
		case "good_prepare":
			goodHit = true
		case "plain_prepare":
			plainHit = true
		}
	}
	if !buggyHit {
		t.Errorf("missed the tw68_buf_prepare bug; reports: %s", dumpBugs(bugs))
	}
	if goodHit {
		t.Errorf("false positive on the correct implementation; reports: %s", dumpBugs(bugs))
	}
	if plainHit {
		t.Errorf("spec applied to an implementation that never calls the API; reports: %s", dumpBugs(bugs))
	}
}

const targetFig4 = `
#define I2C_SMBUS_I2C_BLOCK_DATA 8
#define MAX 32
struct smbus_data {
	int len;
	char block[34];
};
struct msg_t { char *buf; };
struct i2c_algorithm {
	int (*smbus_xfer)(int size, struct smbus_data *data);
};
struct msg_t msg[2];

int checked_xfer(int size, struct smbus_data *data) {
	int i;
	if (size == I2C_SMBUS_I2C_BLOCK_DATA) {
		if (data->len <= MAX) {
			for (i = 1; i <= data->len; i++)
				msg[0].buf[i] = data->block[i];
		}
	}
	return 0;
}
int unchecked_xfer(int size, struct smbus_data *data) {
	int i;
	if (size == I2C_SMBUS_I2C_BLOCK_DATA) {
		for (i = 1; i <= data->len; i++)
			msg[0].buf[i] = data->block[i];
	}
	return 0;
}
struct i2c_algorithm checked_algo = { .smbus_xfer = checked_xfer, };
struct i2c_algorithm unchecked_algo = { .smbus_xfer = unchecked_xfer, };
`

func TestDetectFig4MissingCheck(t *testing.T) {
	specs := inferFrom(t, "fig4", "i2c.c", cir.Fig4PreSource, cir.Fig4PostSource)
	prog := targetProg(t, targetFig4)
	d := New(prog)
	bugs := d.Detect(specs)

	var uncheckedHit, checkedHit bool
	for _, b := range bugs {
		if b.Fn.Name == "unchecked_xfer" && (b.Kind == "OOB" || b.Kind == "NPD") {
			uncheckedHit = true
			if b.Trace == nil {
				t.Error("forbidden-reach violation should carry a witness path")
			}
		}
		if b.Fn.Name == "checked_xfer" {
			checkedHit = true
		}
	}
	if !uncheckedHit {
		t.Errorf("missed the unchecked_xfer OOB; reports: %s", dumpBugs(bugs))
	}
	if checkedHit {
		t.Errorf("false positive on the guarded implementation; reports: %s", dumpBugs(bugs))
	}
}

const targetFig5 = `
struct device { int devt; int refcount; };
struct platform_device { struct device dev; };
struct ida { int bits; };
struct platform_driver {
	int (*probe)(struct platform_device *pdev);
	int (*remove)(struct platform_device *pdev);
};
void put_device(struct device *dev);
void ida_free(struct ida *ida, int id);
struct ida other_ida;

int ok_remove(struct platform_device *pdev) {
	ida_free(&other_ida, pdev->dev.devt);
	put_device(&pdev->dev);
	return 0;
}
int uaf_remove(struct platform_device *pdev) {
	put_device(&pdev->dev);
	ida_free(&other_ida, pdev->dev.devt);
	return 0;
}
struct platform_driver ok_driver = { .remove = ok_remove, };
struct platform_driver uaf_driver = { .remove = uaf_remove, };
`

func TestDetectFig5UseAfterFree(t *testing.T) {
	specs := inferFrom(t, "fig5", "telem.c", cir.Fig5PreSource, cir.Fig5PostSource)
	prog := targetProg(t, targetFig5)
	d := New(prog)
	bugs := d.Detect(specs)

	var uafHit, okHit bool
	for _, b := range bugs {
		if b.Fn.Name == "uaf_remove" && b.Kind == "UAF" {
			uafHit = true
		}
		if b.Fn.Name == "ok_remove" {
			okHit = true
		}
	}
	if !uafHit {
		t.Errorf("missed the uaf_remove order violation; reports: %s", dumpBugs(bugs))
	}
	if okHit {
		t.Errorf("false positive on the correctly ordered implementation; reports: %s", dumpBugs(bugs))
	}
}

func TestRegionsIfaceScoped(t *testing.T) {
	prog := targetProg(t, targetFig3)
	d := New(prog)
	s := &spec.Spec{Iface: "vb2_ops.buf_prepare"}
	regions := d.Regions(s)
	if len(regions) != 3 {
		t.Fatalf("regions = %d, want the 3 registered implementations", len(regions))
	}
}

func TestRegionsAPIScoped(t *testing.T) {
	prog := targetProg(t, targetFig3)
	d := New(prog)
	s := &spec.Spec{API: "dma_alloc_coherent"}
	regions := d.Regions(s)
	if len(regions) != 2 {
		t.Fatalf("api regions = %d, want 2 (the two risc_alloc helpers)", len(regions))
	}
}

func TestMemoizationConsistency(t *testing.T) {
	// Detection results must be identical with and without the path-
	// summary cache (the cache is a pure optimization, paper §6.4.1).
	specs := inferFrom(t, "fig3", "cx.c", cir.Fig3PreSource, cir.Fig3Source)
	prog := targetProg(t, targetFig3)
	d1 := New(prog)
	bugsMemo := d1.Detect(specs)
	d2 := New(prog)
	d2.DisableMemo = true
	bugsNoMemo := d2.Detect(specs)
	if len(bugsMemo) != len(bugsNoMemo) {
		t.Fatalf("memoization changed results: %d vs %d", len(bugsMemo), len(bugsNoMemo))
	}
	for i := range bugsMemo {
		if bugsMemo[i].Key() != bugsNoMemo[i].Key() {
			t.Errorf("bug %d differs: %s vs %s", i, bugsMemo[i].Key(), bugsNoMemo[i].Key())
		}
	}
}

func dumpBugs(bugs []*Bug) string {
	var sb strings.Builder
	sb.WriteByte('\n')
	for _, b := range bugs {
		sb.WriteString("  " + b.String() + "\n")
	}
	return sb.String()
}

func TestEquivalentAPIHint(t *testing.T) {
	// A driver that frees through kfree_sensitive violates the learned
	// kfree rule (the paper's equivalent-post-operation FP class); the
	// report should point at the equivalent API to ease triage.
	specs := inferFrom(t, "ml", "m.c", `
struct host { int id; };
struct hdrv { int (*probe)(struct host *h); };
int *m_kmalloc(int size);
void m_kfree(int *p);
void m_kfree_sensitive(int *p);
int m_register(struct host *h, int *buf);
int orig_probe(struct host *h) {
	int *buf = m_kmalloc(64);
	if (buf == NULL)
		return -ENOMEM;
	int ret = m_register(h, buf);
	if (ret != 0) {
		return ret;
	}
	return 0;
}
struct hdrv orig_hdrv = { .probe = orig_probe, };
`, `
struct host { int id; };
struct hdrv { int (*probe)(struct host *h); };
int *m_kmalloc(int size);
void m_kfree(int *p);
void m_kfree_sensitive(int *p);
int m_register(struct host *h, int *buf);
int orig_probe(struct host *h) {
	int *buf = m_kmalloc(64);
	if (buf == NULL)
		return -ENOMEM;
	int ret = m_register(h, buf);
	if (ret != 0) {
		m_kfree(buf);
		return ret;
	}
	return 0;
}
struct hdrv orig_hdrv = { .probe = orig_probe, };
`)
	prog := targetProg(t, `
struct host { int id; };
struct hdrv { int (*probe)(struct host *h); };
int *m_kmalloc(int size);
void m_kfree(int *p);
void m_kfree_sensitive(int *p);
int m_register(struct host *h, int *buf);
int conf_probe(struct host *h) {
	int *buf = m_kmalloc(64);
	if (buf == NULL)
		return -ENOMEM;
	int ret = m_register(h, buf);
	if (ret != 0) {
		m_kfree_sensitive(buf);
		return ret;
	}
	return 0;
}
struct hdrv conf_hdrv = { .probe = conf_probe, };
`)
	bugs := New(prog).Detect(specs)
	hinted := false
	for _, b := range bugs {
		if b.Fn.Name == "conf_probe" && strings.Contains(b.Message, "m_kfree_sensitive") &&
			strings.Contains(b.Message, "equivalent post-operation") {
			hinted = true
		}
	}
	if !hinted {
		t.Errorf("missing equivalent-API hint; bugs: %s", dumpBugs(bugs))
	}
}

func TestNewOnGraphSharesPDG(t *testing.T) {
	specs := inferFrom(t, "fig3", "cx.c", cir.Fig3PreSource, cir.Fig3Source)
	prog := targetProg(t, targetFig3)
	g := pdg.BuildAll(prog)
	d := NewOnGraph(g)
	bugs := d.Detect(specs)
	fresh := New(prog).Detect(specs)
	if len(bugs) != len(fresh) {
		t.Fatalf("graph-sharing detector diverges: %d vs %d", len(bugs), len(fresh))
	}
}
