package detect

import (
	"context"
	"errors"
	"testing"
	"time"

	"seal/internal/budget"
	"seal/internal/faultinject"
	"seal/internal/spec"
)

// scopesOf returns the unique detection scopes of the spec list, in
// first-appearance order — the unit universe of a DetectParallelCtx run.
func scopesOf(specs []*spec.Spec) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range specs {
		if sc := s.Scope(); !seen[sc] {
			seen[sc] = true
			out = append(out, sc)
		}
	}
	return out
}

func TestDetectParallelCtxCleanRun(t *testing.T) {
	specs, prog := corpusSpecsAndProg(t)
	ref := dumpBugs(NewShared(prog).DetectParallel(specs, 4))
	res, err := NewShared(prog).DetectParallelCtx(context.Background(), specs, 4, budget.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 || len(res.Degraded) != 0 {
		t.Fatalf("clean run produced %d failures, %d degradations", len(res.Failures), len(res.Degraded))
	}
	if got := dumpBugs(res.Bugs); got != ref {
		t.Errorf("ctx run diverges from DetectParallel:\n%s\nvs\n%s", got, ref)
	}
}

func TestDetectParallelCtxPanicContainment(t *testing.T) {
	specs, prog := corpusSpecsAndProg(t)
	units := scopesOf(specs)
	if len(units) < 2 {
		t.Fatalf("corpus yielded %d units; containment needs several", len(units))
	}
	victim := units[0]
	refBugs := NewShared(prog).DetectParallel(specs, 4)

	faultinject.Set(faultinject.NewPlan().Add("detect", victim, faultinject.KindPanic))
	defer faultinject.Reset()
	sh := NewShared(prog)
	res, err := sh.DetectParallelCtx(context.Background(), specs, 4, budget.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("one injected panic, %d failures: %v", len(res.Failures), res.Failures)
	}
	fr := res.Failures[0]
	if fr.Unit != victim || fr.Reason != budget.ReasonPanic || fr.Attempts != 1 || fr.Stack == "" {
		t.Fatalf("FailureRecord = %+v", fr)
	}
	var want []*Bug
	for _, b := range refBugs {
		if b.Spec.Scope() != victim {
			want = append(want, b)
		}
	}
	if got := dumpBugs(res.Bugs); got != dumpBugs(want) {
		t.Errorf("survivor output diverges:\n%s\nvs\n%s", got, dumpBugs(want))
	}

	// The panic must not have poisoned the shared substrate: a fault-free
	// pass over the SAME substrate recovers the victim's results too.
	faultinject.Reset()
	res2, err := sh.DetectParallelCtx(context.Background(), specs, 4, budget.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Failures) != 0 {
		t.Fatalf("substrate reuse after panic: %v", res2.Failures)
	}
	if got := dumpBugs(res2.Bugs); got != dumpBugs(refBugs) {
		t.Errorf("substrate poisoned by earlier panic:\n%s\nvs\n%s", got, dumpBugs(refBugs))
	}
}

func TestDetectParallelCtxRetryRecoversTransientFault(t *testing.T) {
	specs, prog := corpusSpecsAndProg(t)
	victim := scopesOf(specs)[0]
	ref := dumpBugs(NewShared(prog).DetectParallel(specs, 4))

	faultinject.Set(faultinject.NewPlan().AddOnce("detect", victim, faultinject.KindPanic))
	defer faultinject.Reset()
	res, err := NewShared(prog).DetectParallelCtx(context.Background(), specs, 4, budget.Limits{Retry: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("transient fault with retry still quarantined: %v", res.Failures)
	}
	if res.Stats.RetriedUnits != 1 {
		t.Fatalf("RetriedUnits = %d, want 1", res.Stats.RetriedUnits)
	}
	if got := dumpBugs(res.Bugs); got != ref {
		t.Errorf("retried run lost output:\n%s\nvs\n%s", got, ref)
	}
}

func TestDetectParallelCtxRetryPersistentFault(t *testing.T) {
	specs, prog := corpusSpecsAndProg(t)
	victim := scopesOf(specs)[0]
	faultinject.Set(faultinject.NewPlan().Add("detect", victim, faultinject.KindPanic))
	defer faultinject.Reset()
	res, err := NewShared(prog).DetectParallelCtx(context.Background(), specs, 4, budget.Limits{Retry: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 || res.Failures[0].Attempts != 2 {
		t.Fatalf("persistent fault under retry: %v", res.Failures)
	}
	if res.Stats.RetriedUnits != 1 {
		t.Fatalf("RetriedUnits = %d, want 1", res.Stats.RetriedUnits)
	}
}

func TestDetectParallelCtxMaxFailuresAborts(t *testing.T) {
	specs, prog := corpusSpecsAndProg(t)
	units := scopesOf(specs)
	if len(units) < 3 {
		t.Skipf("only %d units; abort test needs 3+", len(units))
	}
	plan := faultinject.NewPlan()
	for _, u := range units {
		plan.Add("detect", u, faultinject.KindPanic)
	}
	faultinject.Set(plan)
	defer faultinject.Reset()
	res, err := NewShared(prog).DetectParallelCtx(context.Background(), specs, 1, budget.Limits{MaxFailures: 1})
	if err == nil {
		t.Fatal("run with every unit panicking and MaxFailures=1 did not abort")
	}
	// The abort threshold is MaxFailures+1 quarantines; with one worker the
	// remaining units are skipped, not quarantined.
	if len(res.Failures) != 2 {
		t.Fatalf("aborted run has %d failures, want 2 (threshold crossing)", len(res.Failures))
	}
}

func TestDetectParallelCtxCanceledParent(t *testing.T) {
	specs, prog := corpusSpecsAndProg(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := NewShared(prog).DetectParallelCtx(ctx, specs, 4, budget.Limits{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled run returned %v", err)
	}
	if len(res.Bugs) != 0 {
		t.Fatalf("pre-canceled run produced %d bugs", len(res.Bugs))
	}
}

func TestDetectParallelCtxStepBudgetDegrades(t *testing.T) {
	specs, prog := corpusSpecsAndProg(t)
	res, err := NewShared(prog).DetectParallelCtx(context.Background(), specs, 4, budget.Limits{MaxSteps: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("step budget must degrade, not quarantine: %v", res.Failures)
	}
	if len(res.Degraded) == 0 {
		t.Fatal("MaxSteps=25 over the whole corpus degraded nothing")
	}
	for _, d := range res.Degraded {
		if d.Reason != budget.ReasonSteps && d.Reason != budget.ReasonMemory {
			t.Errorf("degradation reason %q, want a quantitative budget", d.Reason)
		}
	}
	if res.Stats.DegradedUnits != int64(len(res.Degraded)) {
		t.Errorf("Stats.DegradedUnits = %d, want %d", res.Stats.DegradedUnits, len(res.Degraded))
	}
}

func TestDetectParallelCtxStallCutByDeadline(t *testing.T) {
	specs, prog := corpusSpecsAndProg(t)
	victim := scopesOf(specs)[0]
	faultinject.Set(faultinject.NewPlan().Add("detect", victim, faultinject.KindStall))
	defer faultinject.Reset()
	start := time.Now()
	res, err := NewShared(prog).DetectParallelCtx(context.Background(), specs, 4,
		budget.Limits{UnitTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("stalled unit held the run for %v", el)
	}
	if len(res.Failures) != 1 || res.Failures[0].Reason != budget.ReasonDeadline {
		t.Fatalf("stalled unit: %v", res.Failures)
	}
}
