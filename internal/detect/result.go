package detect

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"seal/internal/budget"
	"seal/internal/cache"
	"seal/internal/faultinject"
	"seal/internal/obs"
	"seal/internal/spec"
)

// Result is the outcome of a budgeted, fault-isolated detection run: the
// merged bug reports of every healthy unit, plus the quarantine and
// degradation records of the units that were not.
type Result struct {
	Bugs []*Bug
	// Recs is the serializable form of Bugs, always populated. It is the
	// report-rendering payload: a warm (cache-replayed) run carries only
	// Recs — no live IR — and renders byte-identically to a cold one
	// because both go through report.RenderRec.
	Recs []BugRec
	// Failures are the quarantined units (panic, deadline, error). Their
	// results are dropped entirely; everything else is unaffected.
	Failures []*budget.FailureRecord
	// Degraded are the units that completed but with budget-truncated
	// results (step/memory caps): their reports are kept, marked.
	Degraded []budget.Degradation
	// Stats are the substrate counters plus this run's unit outcomes.
	Stats Stats
	// Units summarizes each region group for manifest replay: a warm run
	// re-records one OK unit span per entry so the redacted manifest is
	// byte-identical to the cold run's. Sorted by ID.
	Units []UnitRec
	// SatChecks is the number of solver satisfiability checks this run's
	// units asked for, summed from per-unit counts (replayed from the
	// cache on a warm hit, so exported metrics match the cold run's).
	SatChecks int64
	// PCache is the persistent analysis cache's counter snapshot; zero
	// unless the run was configured with a cache directory.
	PCache cache.Stats
}

// UnitRec is the serializable per-unit summary of one region group.
type UnitRec struct {
	ID    string `json:"id"`
	Specs int    `json:"specs"`
	Bugs  int    `json:"bugs"`
}

// Quarantined reports whether any unit was quarantined.
func (r *Result) Quarantined() bool { return len(r.Failures) > 0 }

// groupOutcome is the verdict of one region group (one unit of work).
type groupOutcome struct {
	failure  *budget.FailureRecord
	degraded *budget.Degradation
	retried  bool
	// Observability payload of the attempt: bug count, budget spend, the
	// slice/solve stage clocks, slicer truncations, and solver checks.
	bugs      int
	spend     budget.Spend
	sliceNs   int64
	solveNs   int64
	truncs    int64
	satChecks int64
}

// DetectParallelCtx is DetectParallel with fault isolation: every region
// group (all specs sharing one detection scope) runs as one unit of work
// under its own budget and panic containment. A unit that panics, outlives
// its deadline, or errors is quarantined — its FailureRecord captures the
// stage, budget spent, and stack, its results are dropped, and no worker or
// single-flight waiter is left deadlocked. A unit that merely exhausts a
// quantitative budget finishes Degraded with its partial results kept.
// Remaining units produce output byte-identical to an unfaulted run.
//
// The returned error is non-nil only for run-level aborts (the parent
// context canceled, or more than limits.MaxFailures units quarantined); the
// partial Result is valid either way.
func (sh *Shared) DetectParallelCtx(ctx context.Context, specs []*spec.Spec, workers int, limits budget.Limits) (*Result, error) {
	return sh.DetectParallelCtxObs(ctx, specs, workers, limits, sh.rec)
}

// DetectParallelCtxObs is DetectParallelCtx with an explicit per-run
// recorder. Unlike SetObs — which binds one recorder to the substrate —
// the recorder here is scoped to this call, so any number of concurrent
// runs over one resident substrate can each carry their own observability
// (the serving case: one snapshot, many requests, one manifest per
// request) without racing on shared state.
func (sh *Shared) DetectParallelCtxObs(ctx context.Context, specs []*spec.Spec, workers int, limits budget.Limits, rec *obs.Recorder) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	groups := groupByScope(specs)
	if workers < 1 {
		workers = 1
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	rec.SetUnitsTotal(len(groups))
	perSpec := make([][]*Bug, len(specs))
	outcomes := make([]groupOutcome, len(groups))
	var quarantined atomic.Int64
	var aborted atomic.Bool

	type job struct {
		gi   int
		idxs []int
	}
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// runGroup contains every panic, so a worker never dies and
			// the unbuffered queue below never loses its consumers.
			for j := range ch {
				if aborted.Load() || ctx.Err() != nil {
					continue
				}
				oc := sh.runGroup(ctx, specs, j.idxs, perSpec, limits, rec)
				outcomes[j.gi] = oc
				if oc.failure != nil {
					if n := quarantined.Add(1); limits.MaxFailures > 0 && n > int64(limits.MaxFailures) {
						aborted.Store(true)
					}
				}
			}
		}()
	}
	for gi, g := range groups {
		ch <- job{gi: gi, idxs: g}
	}
	close(ch)
	wg.Wait()

	res := &Result{Bugs: mergeBugs(perSpec)}
	res.Recs = Records(res.Bugs)
	for gi, oc := range outcomes {
		// Per-unit solver-check counts sum to the run figure. Intrinsic to
		// each unit's work, so the sum is identical however the units are
		// partitioned across workers, shards, or concurrent runs — a delta
		// of the process-global counter is not.
		res.SatChecks += oc.satChecks
		if oc.failure != nil {
			res.Failures = append(res.Failures, oc.failure)
		}
		if oc.degraded != nil {
			res.Degraded = append(res.Degraded, *oc.degraded)
		}
		res.Units = append(res.Units, UnitRec{
			ID:    specs[groups[gi][0]].Scope(),
			Specs: len(groups[gi]),
			Bugs:  oc.bugs,
		})
	}
	sort.Slice(res.Units, func(i, j int) bool { return res.Units[i].ID < res.Units[j].ID })
	res.Stats = sh.Stats()
	res.Stats.QuarantinedUnits = int64(len(res.Failures))
	res.Stats.DegradedUnits = int64(len(res.Degraded))
	for _, oc := range outcomes {
		if oc.retried {
			res.Stats.RetriedUnits++
		}
	}
	if aborted.Load() {
		return res, fmt.Errorf("detect: aborted after %d quarantined units (max %d)",
			len(res.Failures), limits.MaxFailures)
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// runGroup executes one unit of work, retrying once with a halved budget
// when configured. The unit id is the group's detection scope. When the
// substrate has a recorder, the whole group — both attempts — is one unit
// span carrying the verdict, stage clocks, and budget spend.
func (sh *Shared) runGroup(ctx context.Context, specs []*spec.Spec, idxs []int, perSpec [][]*Bug, limits budget.Limits, rec *obs.Recorder) groupOutcome {
	unit := specs[idxs[0]].Scope()
	span := rec.Unit("detect", unit)
	attempts := 1
	oc := sh.runUnit(ctx, specs, idxs, perSpec, limits, unit, 1, rec)
	if oc.failure != nil && limits.Retry {
		attempts = 2
		firstChecks := oc.satChecks
		oc = sh.runUnit(ctx, specs, idxs, perSpec, limits.Halved(), unit, 2, rec)
		oc.satChecks += firstChecks // "checks asked for" spans both attempts
		oc.retried = true
	}
	if span != nil {
		if attempts > 1 {
			span.SetAttempts(attempts)
		}
		span.SetCounts(len(idxs), oc.bugs)
		span.AddStage("slice", time.Duration(oc.sliceNs), 0)
		span.AddStage("solve", time.Duration(oc.solveNs), 0)
		if oc.truncs > 0 {
			span.Annotate("truncated", fmt.Sprintf("%d path enumerations cut short", oc.truncs))
		}
		switch {
		case oc.failure != nil:
			span.SetOutcome(obs.OutcomeQuarantined, string(oc.failure.Reason))
		case oc.degraded != nil:
			span.SetOutcome(obs.OutcomeDegraded, string(oc.degraded.Reason))
			span.Annotate("degraded", oc.degraded.Detail)
		}
		span.EndWithSpend(oc.spend.Steps, oc.spend.MemBytes)
	}
	return oc
}

// runUnit is one attempt at one unit: a fresh budget, a fresh detector, and
// panic containment around the whole group. Results reach the shared
// perSpec slots only after the attempt succeeds, so a quarantined attempt
// leaves no partial output behind.
func (sh *Shared) runUnit(ctx context.Context, specs []*spec.Spec, idxs []int, perSpec [][]*Bug, limits budget.Limits, unit string, attempt int, rec *obs.Recorder) groupOutcome {
	var oc groupOutcome
	b := budget.New(ctx, limits)
	defer b.Close()
	d := sh.Detector()
	d.SetBudget(b)
	if rec.Enabled() {
		d.clk = &stageClock{}
	}
	scratch := make([][]*Bug, len(idxs))
	var fr *budget.FailureRecord
	// pprof goroutine labels attribute CPU samples to the unit (one
	// label-set swap per unit, not per operation).
	obs.WithUnitLabels(ctx, "detect", unit, func(context.Context) {
		fr = budget.Protect("detect", unit, b, func() error {
			if err := faultinject.Fire(b.Context(), "detect", unit, b); err != nil {
				return err
			}
			for k, si := range idxs {
				// A unit whose deadline passed (or whose run was canceled) is
				// quarantined; quantitative caps merely degrade it below.
				if err := b.Context().Err(); err != nil {
					return err
				}
				scratch[k] = d.DetectSpec(specs[si])
			}
			return nil
		})
	})
	oc.spend = b.Spend()
	oc.truncs = d.sl.Truncations
	oc.satChecks = d.satChecks
	if d.clk != nil {
		oc.sliceNs, oc.solveNs = d.clk.sliceNs, d.clk.solveNs
	}
	if fr != nil {
		fr.Attempts = attempt
		oc.failure = fr
		return oc
	}
	for k, si := range idxs {
		perSpec[si] = scratch[k]
		oc.bugs += len(scratch[k])
	}
	if ex := b.Exhausted(); ex != nil {
		oc.degraded = &budget.Degradation{Unit: unit, Stage: "detect", Reason: ex.Reason, Detail: ex.Error()}
	}
	return oc
}
