package detect

import (
	"fmt"

	"seal/internal/solver"
)

// BugRec is the serializable form of a Bug: every field a report renderer
// consumes, flattened to strings. It exists so a cached detection result
// can be rendered byte-identically to a live one — both paths go through
// the same record (report.RenderRec), with no live IR required.
type BugRec struct {
	Kind    string `json:"kind"`
	Fn      string `json:"fn"`
	File    string `json:"file"`
	Message string `json:"message"`

	SpecConstraint  string `json:"spec_constraint"`
	SpecCond        string `json:"spec_cond,omitempty"` // "" when trivially true
	SpecScope       string `json:"spec_scope"`
	SpecOriginPatch string `json:"spec_origin_patch"`
	SpecOrigin      string `json:"spec_origin"`

	Trace           string `json:"trace,omitempty"` // rendered path, "" when absent
	TraceTruncated  bool   `json:"trace_truncated,omitempty"`
	Trace2          string `json:"trace2,omitempty"`
	Trace2Truncated bool   `json:"trace2_truncated,omitempty"`
}

// Record flattens one live bug into its serializable form.
func Record(b *Bug) BugRec {
	r := BugRec{
		Kind:            b.Kind,
		Fn:              b.Fn.Name,
		File:            b.Fn.File,
		Message:         b.Message,
		SpecConstraint:  b.Spec.Constraint.String(),
		SpecScope:       b.Spec.Scope(),
		SpecOriginPatch: b.Spec.OriginPatch,
		SpecOrigin:      string(b.Spec.Origin),
	}
	if c := b.Spec.Constraint.Rel.Cond; c != nil {
		if s := solver.String(c); s != "true" {
			r.SpecCond = s
		}
	}
	if b.Trace != nil {
		r.Trace = b.Trace.String()
		r.TraceTruncated = b.Trace.Truncated
	}
	if b.Trace2 != nil {
		r.Trace2 = b.Trace2.String()
		r.Trace2Truncated = b.Trace2.Truncated
	}
	return r
}

// Records flattens a report list, preserving order.
func Records(bugs []*Bug) []BugRec {
	out := make([]BugRec, len(bugs))
	for i, b := range bugs {
		out[i] = Record(b)
	}
	return out
}

// String mirrors Bug.String for the one-line report form.
func (r BugRec) String() string {
	return fmt.Sprintf("%s in %s (%s): %s", r.Kind, r.Fn, r.File, r.Message)
}
