package detect

import (
	"sort"

	"seal/internal/spec"
)

// Shard-scoped result assembly: the pieces a multi-process detection run
// needs to reproduce a single-process run's merged output byte-for-byte.
//
// The distributed merge leans on one structural fact: Bug.Key embeds the
// spec's scope (Fn + "|" + Scope + " | " + Constraint), and shards
// partition work by region group — one scope, one shard. Two bugs with
// equal keys therefore always originate on the same shard, so the
// shard-local dedup (mergeBugs over the shard's spec subset, which
// preserves global relative spec order) already IS the global first-wins
// dedup restricted to that shard. The coordinator's merge only has to
// interleave and re-sort; the ordinal-based dedup in MergeShardRecs is a
// soundness backstop, not a load-bearing step.

// ShardBug is the wire form of one merged bug a shard executor returns:
// the serializable record plus the dedup identity (Bug.Key) and the sort
// key (Spec.ID) that the in-process merge reads off live IR. Ord is the
// ordinal of the producing spec within the shard job's spec list; the
// coordinator translates it to the global spec ordinal before merging, so
// cached shard results stay valid whatever the global database layout.
type ShardBug struct {
	Key    string `json:"key"`
	SpecID string `json:"spec_id"`
	Ord    int    `json:"ord"`
	Rec    BugRec `json:"rec"`
}

// ShardBugsOf flattens a merged bug list into wire form. bugs and recs are
// parallel (recs = Records(bugs)); specs is the job's spec list, indexed to
// recover each bug's producing-spec ordinal. Nil-safe on all inputs.
func ShardBugsOf(bugs []*Bug, recs []BugRec, specs []*spec.Spec) []ShardBug {
	if len(bugs) == 0 {
		return nil
	}
	ord := make(map[*spec.Spec]int, len(specs))
	for i, s := range specs {
		ord[s] = i
	}
	out := make([]ShardBug, 0, len(bugs))
	for i, b := range bugs {
		sb := ShardBug{Key: b.Key(), SpecID: b.Spec.ID, Ord: ord[b.Spec]}
		if i < len(recs) {
			sb.Rec = recs[i]
		} else {
			sb.Rec = Record(b)
		}
		out = append(out, sb)
	}
	return out
}

// MergeShardRecs is the coordinator's deterministic merge: the wire-form
// counterpart of mergeBugs. Input is the concatenation of every shard's
// ShardBugs with Ord already translated to global spec ordinals; output is
// the record list a single-process run would have produced — first-wins
// dedup by Key in global spec order, then the (Fn, SpecID) sort the
// renderer relies on. Input order does not matter.
func MergeShardRecs(all []ShardBug) []BugRec {
	best := make(map[string]ShardBug, len(all))
	for _, sb := range all {
		if prev, ok := best[sb.Key]; !ok || sb.Ord < prev.Ord {
			best[sb.Key] = sb
		}
	}
	if len(best) == 0 {
		return nil // match a bug-free single-process run's nil Recs
	}
	merged := make([]ShardBug, 0, len(best))
	for _, sb := range best {
		merged = append(merged, sb)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Rec.Fn != merged[j].Rec.Fn {
			return merged[i].Rec.Fn < merged[j].Rec.Fn
		}
		return merged[i].SpecID < merged[j].SpecID
	})
	recs := make([]BugRec, len(merged))
	for i, sb := range merged {
		recs[i] = sb.Rec
	}
	return recs
}

// ScopeGroups partitions spec indices by detection scope in
// first-appearance order — the exported form of the region grouping every
// parallel run schedules by, so a coordinator partitions the corpus with
// exactly the units a worker will execute.
func ScopeGroups(specs []*spec.Spec) [][]int { return groupByScope(specs) }
