package detect

import (
	"seal/internal/ir"
	"seal/internal/spec"
)

// DetectParallel checks the specifications concurrently over one shared
// analysis substrate: a single demand-driven PDG, program index, region
// cache, and value-flow path cache serve all workers, so analysis cost
// scales with the program rather than workers × specs. This implements the
// paper's noted scalability extension ("the scalability of our technique
// could be further improved by searching paths in parallel", §8.4).
// Results are byte-identical to the sequential Detect. Use
// NewShared(prog).DetectParallel directly to also read the substrate's
// Stats afterwards.
func DetectParallel(prog *ir.Program, specs []*spec.Spec, workers int) []*Bug {
	return NewShared(prog).DetectParallel(specs, workers)
}
