package detect

import (
	"sort"
	"sync"

	"seal/internal/ir"
	"seal/internal/spec"
)

// DetectParallel checks the specifications concurrently: the spec list is
// partitioned across workers, each owning a private detector (and thus a
// private demand-driven PDG) over the shared read-only program. This
// implements the paper's noted scalability extension ("the scalability of
// our technique could be further improved by searching paths in
// parallel", §8.4). Results are identical to the sequential Detect.
func DetectParallel(prog *ir.Program, specs []*spec.Spec, workers int) []*Bug {
	if workers <= 1 || len(specs) < 2 {
		return New(prog).Detect(specs)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([][]*Bug, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := New(prog)
			var mine []*Bug
			for i := w; i < len(specs); i += workers {
				mine = append(mine, d.DetectSpec(specs[i])...)
			}
			results[w] = mine
		}(w)
	}
	wg.Wait()

	seen := make(map[string]bool)
	var out []*Bug
	for _, part := range results {
		for _, b := range part {
			if !seen[b.Key()] {
				seen[b.Key()] = true
				out = append(out, b)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fn.Name != out[j].Fn.Name {
			return out[i].Fn.Name < out[j].Fn.Name
		}
		return out[i].Spec.ID < out[j].Spec.ID
	})
	return out
}
