package detect

import (
	"sync"
	"sync/atomic"

	"seal/internal/infer"
	"seal/internal/ir"
	"seal/internal/obs"
	"seal/internal/pdg"
	"seal/internal/progindex"
	"seal/internal/spec"
	"seal/internal/vfp"
)

// Shared is the concurrent analysis substrate detection workers share: one
// demand-driven PDG, one program-wide index, one region-closure cache, and
// one single-flight value-flow path cache. Every structure is either
// immutable (the index), internally synchronized (the graph), or guarded
// here; a Shared may back any number of Detectors across goroutines.
type Shared struct {
	G   *pdg.Graph
	Idx *progindex.Index

	regionMu sync.Mutex
	regions  map[regionKey]*regionCtx

	pathShards [numPathShards]pathShard

	// Canonical-shape reuse (canon.go): interned region shapes, completed
	// path sets keyed up to region isomorphism, and per-function statement
	// position maps for translation.
	shapeMu sync.Mutex
	shapes  map[string]*shapeInfo

	canonMu    sync.Mutex
	canonPaths map[canonPathKey]*canonEntry

	stmtMu      sync.Mutex
	stmtPos     map[*ir.Stmt]int
	stmtIndexed map[*ir.Func]bool

	pathHits   atomic.Int64
	pathMisses atomic.Int64
	// truncations counts slicer enumerations cut short by any cap or
	// budget across every detector bound to this substrate (the counted
	// warning of the formerly-silent MaxPaths/MaxDepth truncation).
	truncations atomic.Int64
	// enumerations counts slicer path enumerations started across every
	// detector bound to this substrate.
	enumerations atomic.Int64

	// rec, when set via SetObs, receives one unit span per region group of
	// a budgeted run (DetectParallelCtx). Nil — the default — is the
	// disabled recorder: every obs call degenerates to a pointer check.
	rec *obs.Recorder
}

const numPathShards = 64

type pathShard struct {
	mu sync.Mutex
	m  map[pathKey]*pathEntry
	// bySrc indexes completed entries by (source, depth) across regions,
	// for footprint-compatible reuse: two regions whose closures agree on
	// every function the traversal actually consulted get one path set.
	bySrc map[srcKey][]*pathEntry
}

// pathKey identifies one memoized PathsFrom computation: the source
// statement inside one region closure. Keying by region keeps results
// independent of which other regions a shared graph has materialized.
type pathKey struct {
	src   *ir.Stmt
	root  *ir.Func
	depth int
}

// srcKey is the region-independent part of a pathKey — the canonical key
// of the cross-region reuse index.
type srcKey struct {
	src   *ir.Stmt
	depth int
}

// pathEntry is a single-flight slot: the first claimant computes, everyone
// else waits on done.
type pathEntry struct {
	done  chan struct{}
	paths []*vfp.Path
	// panicVal records a panic that aborted the computation; written
	// before done is closed. Waiters re-panic into their own unit's
	// containment instead of deadlocking on a never-closed channel.
	panicVal any
	// volatile marks a result truncated by the computing unit's dynamic
	// budget (steps/memory/deadline). Such results are unit-specific and
	// must not be served to other units: the computing worker removes the
	// entry and keeps the partial result private; waiters recompute.
	volatile bool
	// footprint is the set of scope-membership answers the traversal
	// consulted (vfp.Slicer.ScopeTrace), written before done closes on a
	// successful computation. A region whose closure answers every
	// recorded query identically would traverse identically, so the entry
	// is sound to serve to it.
	footprint map[*ir.Func]bool
}

type regionKey struct {
	root  *ir.Func
	depth int
}

// regionCtx is the materialized closure of one detection region: the root
// function plus its defined callees to the configured depth, as both an
// ordered list and a membership set.
type regionCtx struct {
	root  *ir.Func
	funcs []*ir.Func
	set   map[*ir.Func]bool
	// idx is each closure function's position in funcs (the canonical
	// function numbering of the region's shape).
	idx map[*ir.Func]int
	// shape is the interned canonical shape (canon.go); regions sharing a
	// shape pointer are isomorphic up to renaming.
	shape *shapeInfo
}

// Stats aggregates the substrate's instrumentation counters.
type Stats struct {
	// EnsureCalls / EnsureBuilds mirror pdg.Graph.Stats: how often a
	// function subgraph was requested vs actually constructed.
	EnsureCalls  int64
	EnsureBuilds int64
	// PathCacheHits / PathCacheMisses count shared path-cache lookups;
	// a miss is the single computation of one (source, region) slot.
	PathCacheHits   int64
	PathCacheMisses int64
	// IndexLookups counts program-index queries served.
	IndexLookups int64
	// PathEnumerations counts slicer path enumerations started (a cache
	// hit avoids one; Truncations counts the subset cut short).
	PathEnumerations int64
	// PDGBuildNanos is the wall time spent inside actual PDG subgraph
	// builds, mirrored from pdg.Graph.Stats.
	PDGBuildNanos int64
	// Truncations counts value-flow enumerations cut short by a path or
	// depth cap or by a unit budget (never silent: each is also marked on
	// the affected paths).
	Truncations int64
	// QuarantinedUnits / DegradedUnits / RetriedUnits describe a budgeted
	// run (DetectParallelCtx): units isolated after a panic/deadline/error,
	// units that completed with budget-truncated results, and units that
	// were re-attempted with a halved budget.
	QuarantinedUnits int64
	DegradedUnits    int64
	RetriedUnits     int64
}

// PathHitRate returns the fraction of path lookups served from cache.
// Guarded: a run with zero lookups (empty spec set, every unit quarantined
// before its first lookup, or a freshly merged zero Stats) returns 0, not
// NaN.
func (s Stats) PathHitRate() float64 {
	total := s.PathCacheHits + s.PathCacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.PathCacheHits) / float64(total)
}

// Merge returns the field-wise sum of two stats snapshots, for aggregating
// across substrates (e.g. per-group private graphs) or across runs.
func (s Stats) Merge(o Stats) Stats {
	return Stats{
		EnsureCalls:      s.EnsureCalls + o.EnsureCalls,
		EnsureBuilds:     s.EnsureBuilds + o.EnsureBuilds,
		PathCacheHits:    s.PathCacheHits + o.PathCacheHits,
		PathCacheMisses:  s.PathCacheMisses + o.PathCacheMisses,
		IndexLookups:     s.IndexLookups + o.IndexLookups,
		PathEnumerations: s.PathEnumerations + o.PathEnumerations,
		PDGBuildNanos:    s.PDGBuildNanos + o.PDGBuildNanos,
		Truncations:      s.Truncations + o.Truncations,
		QuarantinedUnits: s.QuarantinedUnits + o.QuarantinedUnits,
		DegradedUnits:    s.DegradedUnits + o.DegradedUnits,
		RetriedUnits:     s.RetriedUnits + o.RetriedUnits,
	}
}

// Sub returns the substrate-counter difference s−o, attributing to one run
// the work done on a resident substrate between two Stats snapshots. Only
// the monotonically accumulating substrate counters are subtracted; the
// per-run robustness verdicts (QuarantinedUnits, DegradedUnits,
// RetriedUnits) are already run-scoped and pass through from s unchanged.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		EnsureCalls:      s.EnsureCalls - o.EnsureCalls,
		EnsureBuilds:     s.EnsureBuilds - o.EnsureBuilds,
		PathCacheHits:    s.PathCacheHits - o.PathCacheHits,
		PathCacheMisses:  s.PathCacheMisses - o.PathCacheMisses,
		IndexLookups:     s.IndexLookups - o.IndexLookups,
		PathEnumerations: s.PathEnumerations - o.PathEnumerations,
		PDGBuildNanos:    s.PDGBuildNanos - o.PDGBuildNanos,
		Truncations:      s.Truncations - o.Truncations,
		QuarantinedUnits: s.QuarantinedUnits,
		DegradedUnits:    s.DegradedUnits,
		RetriedUnits:     s.RetriedUnits,
	}
}

// NewShared builds the substrate for a target program.
func NewShared(prog *ir.Program) *Shared {
	return NewSharedOnGraph(pdg.New(prog))
}

// NewSharedOnGraph builds the substrate over an existing PDG.
func NewSharedOnGraph(g *pdg.Graph) *Shared {
	sh := &Shared{
		G:           g,
		Idx:         progindex.Build(g.Prog),
		regions:     make(map[regionKey]*regionCtx),
		shapes:      make(map[string]*shapeInfo),
		canonPaths:  make(map[canonPathKey]*canonEntry),
		stmtPos:     make(map[*ir.Stmt]int),
		stmtIndexed: make(map[*ir.Func]bool),
	}
	for i := range sh.pathShards {
		sh.pathShards[i].m = make(map[pathKey]*pathEntry)
		sh.pathShards[i].bySrc = make(map[srcKey][]*pathEntry)
	}
	return sh
}

// SetObs binds an observability recorder to the substrate: budgeted runs
// (DetectParallelCtx) record one unit span per region group, with stage
// clocks and budget-spend deltas. A nil recorder (the default) disables
// everything at the cost of a pointer check per unit.
func (sh *Shared) SetObs(rec *obs.Recorder) { sh.rec = rec }

// Stats returns the substrate counters accumulated so far.
func (sh *Shared) Stats() Stats {
	gs := sh.G.Stats()
	return Stats{
		EnsureCalls:      gs.EnsureCalls,
		EnsureBuilds:     gs.EnsureBuilds,
		PathCacheHits:    sh.pathHits.Load(),
		PathCacheMisses:  sh.pathMisses.Load(),
		IndexLookups:     sh.Idx.Lookups(),
		PathEnumerations: sh.enumerations.Load(),
		PDGBuildNanos:    gs.BuildNanos,
		Truncations:      sh.truncations.Load(),
	}
}

// ResidentStats describes what a substrate currently holds in memory — the
// figures a long-running service ("seal serve") reports so operators can
// see how warm the resident snapshot is.
type ResidentStats struct {
	// Funcs is the number of functions in the underlying program.
	Funcs int `json:"funcs"`
	// PDGFuncs is the number of function PDG subgraphs materialized.
	PDGFuncs int `json:"pdg_funcs"`
	// Regions is the number of region closures cached.
	Regions int `json:"regions"`
	// Shapes is the number of interned canonical region shapes.
	Shapes int `json:"shapes"`
	// PathEntries is the number of completed value-flow path sets held by
	// the sharded single-flight cache.
	PathEntries int `json:"path_entries"`
}

// Resident snapshots the substrate's in-memory residency.
func (sh *Shared) Resident() ResidentStats {
	rs := ResidentStats{
		Funcs:    len(sh.G.Prog.FuncList),
		PDGFuncs: sh.G.ResidentFuncs(),
	}
	sh.regionMu.Lock()
	rs.Regions = len(sh.regions)
	sh.regionMu.Unlock()
	sh.shapeMu.Lock()
	rs.Shapes = len(sh.shapes)
	sh.shapeMu.Unlock()
	for i := range sh.pathShards {
		shard := &sh.pathShards[i]
		shard.mu.Lock()
		for _, e := range shard.m {
			select {
			case <-e.done:
				rs.PathEntries++
			default:
			}
		}
		shard.mu.Unlock()
	}
	return rs
}

// Detector returns a new detector bound to the substrate. Each concurrent
// worker needs its own (a Detector carries per-region scratch state); any
// number of them may run at once over one Shared.
func (sh *Shared) Detector() *Detector {
	sl := vfp.NewSlicer(sh.G)
	sl.OnTruncate = func(vfp.TruncateEvent) { sh.truncations.Add(1) }
	sl.OnEnum = func() { sh.enumerations.Add(1) }
	return &Detector{
		G:              sh.G,
		sh:             sh,
		sl:             sl,
		ab:             infer.NewAbstracter(sh.G),
		MaxCalleeDepth: DefaultMaxCalleeDepth,
	}
}

// region returns the cached closure of root at the given callee depth,
// computing it on first use via the program index.
func (sh *Shared) region(root *ir.Func, depth int) *regionCtx {
	key := regionKey{root: root, depth: depth}
	sh.regionMu.Lock()
	defer sh.regionMu.Unlock()
	if rc, ok := sh.regions[key]; ok {
		return rc
	}
	seen := map[*ir.Func]bool{root: true}
	frontier := []*ir.Func{root}
	out := []*ir.Func{root}
	for i := 0; i < depth && len(frontier) > 0; i++ {
		var next []*ir.Func
		for _, f := range frontier {
			for _, callee := range sh.Idx.Func(f).DefinedCallees {
				if !seen[callee] {
					seen[callee] = true
					next = append(next, callee)
					out = append(out, callee)
				}
			}
		}
		frontier = next
	}
	idx := make(map[*ir.Func]int, len(out))
	for i, f := range out {
		idx[f] = i
	}
	rc := &regionCtx{root: root, funcs: out, set: seen, idx: idx}
	rc.shape = sh.shapeOf(rc)
	sh.regions[key] = rc
	return rc
}

// RegionsSnapshot returns every materialized region closure at the given
// callee depth as root → ordered closure function names. The ordering is
// the canonical one region() produced (BFS over DefinedCallees), so a
// snapshot primed into a fresh substrate over the same program reproduces
// identical regionCtx structures. This is the TierRegions cache artifact:
// keyed by target content only, it survives spec-DB changes.
func (sh *Shared) RegionsSnapshot(depth int) map[string][]string {
	sh.regionMu.Lock()
	defer sh.regionMu.Unlock()
	out := make(map[string][]string)
	for key, rc := range sh.regions {
		if key.depth != depth {
			continue
		}
		names := make([]string, len(rc.funcs))
		for i, f := range rc.funcs {
			names[i] = f.Name
		}
		out[rc.root.Name] = names
	}
	return out
}

// PrimeRegions installs region closures from a prior run's snapshot over
// the same target, skipping the call-graph walk region() would do. Strictly
// a warm-start: a root whose functions no longer all resolve is ignored
// (region() computes it from scratch on demand), so a stale snapshot can
// cost time but never correctness. Callers guarantee same-target semantics
// by keying the snapshot on the target's content hash.
func (sh *Shared) PrimeRegions(snap map[string][]string, depth int) {
	sh.regionMu.Lock()
	defer sh.regionMu.Unlock()
	for rootName, names := range snap {
		funcs := make([]*ir.Func, 0, len(names))
		ok := true
		for _, n := range names {
			f := sh.G.Prog.Funcs[n]
			if f == nil {
				ok = false
				break
			}
			funcs = append(funcs, f)
		}
		if !ok || len(funcs) == 0 || funcs[0].Name != rootName {
			continue
		}
		key := regionKey{root: funcs[0], depth: depth}
		if _, exists := sh.regions[key]; exists {
			continue
		}
		set := make(map[*ir.Func]bool, len(funcs))
		idx := make(map[*ir.Func]int, len(funcs))
		for i, f := range funcs {
			set[f] = true
			idx[f] = i
		}
		rc := &regionCtx{root: funcs[0], funcs: funcs, set: set, idx: idx}
		rc.shape = sh.shapeOf(rc)
		sh.regions[key] = rc
	}
}

// pathsFor returns the value-flow paths from src confined to rc, computing
// them at most once per (source, region) across all workers. sl must
// already be scoped to rc.
//
// Fault isolation: a panic during the computation is recorded on the entry
// before its done channel closes, and every waiter re-panics with it — each
// inside its own unit's containment — so one crashing enumeration can
// quarantine the units that need it but never deadlock the queue. A result
// truncated by the computing unit's dynamic budget is never published (the
// entry is removed; waiters loop and recompute with their own budget), so a
// starved unit cannot silently degrade its neighbors.
func (sh *Shared) pathsFor(src *ir.Stmt, rc *regionCtx, depth int, sl *vfp.Slicer) []*vfp.Path {
	key := pathKey{src: src, root: rc.root, depth: depth}
	skey := srcKey{src: src, depth: depth}
	shard := &sh.pathShards[uint(src.ID)%numPathShards]

	for {
		shard.mu.Lock()
		if e, ok := shard.m[key]; ok {
			shard.mu.Unlock()
			<-e.done
			if e.panicVal != nil {
				panic(e.panicVal)
			}
			if e.volatile {
				continue // computed under an exhausted budget; recompute
			}
			sh.pathHits.Add(1)
			return e.paths
		}
		// Exact miss: a sibling region may already hold this source's
		// paths. If a completed entry's footprint — the scope answers its
		// traversal consulted — matches our region, its paths are ours
		// too; alias it under our exact key so later lookups are direct.
		if e := shard.reusable(skey, rc.set); e != nil {
			shard.m[key] = e
			shard.mu.Unlock()
			sh.pathHits.Add(1)
			return e.paths
		}
		// Still a miss: an isomorphic sibling region (same canonical
		// shape, canon.go) may have computed this source's paths one
		// renaming away. Translate them in and pin the result under our
		// exact key so later lookups are direct.
		if ps, ok := sh.canonTranslate(src, rc, depth); ok {
			e := &pathEntry{done: make(chan struct{}), paths: ps}
			close(e.done)
			shard.m[key] = e
			shard.mu.Unlock()
			sh.pathHits.Add(1)
			return ps
		}
		e := &pathEntry{done: make(chan struct{})}
		shard.m[key] = e
		shard.bySrc[skey] = append(shard.bySrc[skey], e)
		shard.mu.Unlock()

		sh.pathMisses.Add(1)
		trunc0 := sl.BudgetTruncations
		fp := make(map[*ir.Func]bool)
		prevTrace := sl.ScopeTrace
		sl.ScopeTrace = fp
		func() {
			defer func() {
				sl.ScopeTrace = prevTrace
				e.panicVal = recover()
				if e.panicVal != nil || sl.BudgetTruncations > trunc0 {
					e.volatile = true
					shard.mu.Lock()
					delete(shard.m, key)
					shard.dropBySrc(skey, e)
					shard.mu.Unlock()
				} else {
					e.footprint = fp
					sh.canonPublish(src, rc, depth, e.paths)
				}
				close(e.done)
			}()
			e.paths = sl.PathsFrom(src)
		}()
		if e.panicVal != nil {
			panic(e.panicVal)
		}
		return e.paths
	}
}

// reusable scans the completed entries for (src, depth) and returns the
// first whose footprint the scope set satisfies. Caller holds shard.mu;
// entry fields are read only after a non-blocking done check (the channel
// close orders the computing goroutine's writes before our reads).
func (shard *pathShard) reusable(skey srcKey, set map[*ir.Func]bool) *pathEntry {
	for _, e := range shard.bySrc[skey] {
		select {
		case <-e.done:
		default:
			continue // still computing; never block under the shard lock
		}
		if e.panicVal != nil || e.volatile || e.footprint == nil {
			continue
		}
		if footprintCompatible(e.footprint, set) {
			return e
		}
	}
	return nil
}

// footprintCompatible reports whether the scope set answers every recorded
// membership query the same way the computing region did.
func footprintCompatible(fp map[*ir.Func]bool, set map[*ir.Func]bool) bool {
	for fn, in := range fp {
		if set[fn] != in {
			return false
		}
	}
	return true
}

// dropBySrc removes a retired (volatile) entry from the reuse index.
// Caller holds shard.mu.
func (shard *pathShard) dropBySrc(skey srcKey, e *pathEntry) {
	list := shard.bySrc[skey]
	for i, x := range list {
		if x == e {
			shard.bySrc[skey] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// DetectParallel checks the specifications concurrently over the shared
// substrate. Specs are grouped by detection scope (interface or API) so
// each region's closure, PDG subgraphs, and value-flow paths are computed
// once however many specs target it; a region-group work queue feeds the
// workers. Results are byte-identical to the sequential Detect: per-spec
// results are slotted by original position and merged in spec order before
// the final dedup and sort.
func (sh *Shared) DetectParallel(specs []*spec.Spec, workers int) []*Bug {
	if workers <= 1 || len(specs) < 2 {
		return sh.Detector().Detect(specs)
	}
	groups := groupByScope(specs)
	if workers > len(groups) {
		workers = len(groups)
	}
	perSpec := make([][]*Bug, len(specs))
	ch := make(chan []int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := sh.Detector()
			for idxs := range ch {
				for _, si := range idxs {
					perSpec[si] = d.DetectSpec(specs[si])
				}
			}
		}()
	}
	for _, g := range groups {
		ch <- g
	}
	close(ch)
	wg.Wait()
	return mergeBugs(perSpec)
}

// groupByScope partitions spec indices by Spec.Scope in first-appearance
// order, so all specs sharing a detection region land on one worker.
func groupByScope(specs []*spec.Spec) [][]int {
	byScope := make(map[string]int)
	var groups [][]int
	for i, s := range specs {
		scope := s.Scope()
		gi, ok := byScope[scope]
		if !ok {
			gi = len(groups)
			byScope[scope] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}
	return groups
}
