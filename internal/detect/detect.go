// Package detect implements SEAL's stage ④ (paper §6.4): given inferred
// specifications, it delineates bug-detection regions (other
// implementations of the same function pointer, or other usages of the
// same API), instantiates the specification's value and use components,
// searches for realizable value-flow paths, and reports violations of
// reachability, condition, and order constraints.
package detect

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"seal/internal/budget"
	"seal/internal/infer"
	"seal/internal/ir"
	"seal/internal/pdg"
	"seal/internal/solver"
	"seal/internal/spec"
	"seal/internal/vfp"
)

// Bug is one reported violation.
type Bug struct {
	Spec *spec.Spec
	// Fn is the function containing the violation.
	Fn *ir.Func
	// Kind is the detector's bug-type label (NPD, MemLeak, WrongEC, OOB,
	// UAF, DbZ, UninitVal, …).
	Kind string
	// Trace is the witness path for Forbidden specs (nil for Required
	// specs, whose violation is the absence of a path).
	Trace *vfp.Path
	// Trace2 is the second path of an order violation.
	Trace2 *vfp.Path
	// Message is a one-line summary.
	Message string
}

// Key is a dedup identity for the report list.
func (b *Bug) Key() string {
	return b.Fn.Name + "|" + b.Spec.Key()
}

// String implements fmt.Stringer.
func (b *Bug) String() string {
	return fmt.Sprintf("%s in %s (%s): %s", b.Kind, b.Fn.Name, b.Fn.File, b.Message)
}

// DefaultMaxCalleeDepth bounds the callee closure of a detection region.
// Exported because it is an analysis-semantics input to persistent cache
// fingerprints: changing it must change every detection cache key.
const DefaultMaxCalleeDepth = 3

// Detector checks specifications against a target program. A Detector is
// a lightweight worker view over a Shared substrate: any number of
// Detectors may run concurrently over one Shared, but a single Detector is
// not itself safe for concurrent use (it carries per-region scratch
// state — the slicer and abstracter scopes).
type Detector struct {
	G  *pdg.Graph
	sh *Shared
	sl *vfp.Slicer
	ab *infer.Abstracter

	// MaxCalleeDepth bounds the callee closure of a detection region.
	MaxCalleeDepth int
	// DisableMemo turns off the shared path cache (ablation benchmark).
	DisableMemo bool
	// GlobalRegions widens detection to every function rather than the
	// interface/API scope (ablation; the paper argues scoping is needed
	// for precision and scalability, §5 Remark).
	GlobalRegions bool
	// IgnoreConditions disables path-condition consistency checking
	// (ablation: quasi-path-sensitivity off — every syntactic path is
	// treated as realizable).
	IgnoreConditions bool

	// bud, when set, meters this detector's work (slicing, PDG builds,
	// solver calls) against one unit's budget. Nil means unmetered — the
	// default fast path pays nothing beyond nil checks.
	bud *budget.Budget
	// clk, when set, accumulates per-stage wall time (slice vs solve) for
	// this detector's unit span. Nil — the default — means no clock reads
	// on the hot path.
	clk *stageClock
	// satChecks counts this detector's solver satisfiability checks. Kept
	// per-detector (one detector per unit attempt) rather than read off the
	// process-global solver counter so concurrent runs in one process —
	// resident serving, in-process shard workers — never absorb each
	// other's checks into their per-run figures.
	satChecks int64
}

// stageClock accumulates the wall time of a unit's detection stages. Plain
// fields: a Detector is single-goroutine.
type stageClock struct {
	sliceNs int64
	solveNs int64
}

// SetBudget binds the detector to a unit's budget: the slicer, PDG
// materialization, and solver calls all charge against it, and the limits'
// path/depth caps override the slicer defaults.
func (d *Detector) SetBudget(b *budget.Budget) {
	d.bud = b
	d.sl.Budget = b
	if b != nil {
		d.sl.ApplyLimits(b.Limits())
	}
}

// New creates a detector over the target program (with its own substrate;
// use Shared.Detector to share one across workers).
func New(prog *ir.Program) *Detector {
	return NewShared(prog).Detector()
}

// NewOnGraph creates a detector reusing an existing PDG.
func NewOnGraph(g *pdg.Graph) *Detector {
	return NewSharedOnGraph(g).Detector()
}

// ValidateSpecs implements the quantifier validation of paper §6.3.3: a
// candidate specification must hold inside the patched (post-patch) code
// itself. A Forbidden relation still realizable there is evidently allowed
// (quantifier ∃, not ∄); a Required relation the patched code violates is
// not actually required. Such specs are dropped.
func ValidateSpecs(postProg *ir.Program, specs []*spec.Spec) []*spec.Spec {
	return ValidateSpecsBudget(postProg, specs, nil)
}

// ValidateSpecsBudget is ValidateSpecs metered against a unit budget (the
// inferring patch's), so validation of a candidate-heavy patch cannot
// outlive its unit either.
func ValidateSpecsBudget(postProg *ir.Program, specs []*spec.Spec, b *budget.Budget) []*spec.Spec {
	d := New(postProg)
	d.SetBudget(b)
	var out []*spec.Spec
	for _, s := range specs {
		if len(d.DetectSpec(s)) == 0 {
			out = append(out, s)
		}
	}
	return out
}

// Detect checks every spec and returns the deduplicated bug reports.
func (d *Detector) Detect(specs []*spec.Spec) []*Bug {
	perSpec := make([][]*Bug, len(specs))
	for i, s := range specs {
		perSpec[i] = d.DetectSpec(s)
	}
	return mergeBugs(perSpec)
}

// mergeBugs flattens per-spec results in spec order, dedups by bug key
// (first spec wins, as in sequential detection), and sorts the report
// list. Both Detect and Shared.DetectParallel finish through this, which
// is what makes their outputs byte-identical.
func mergeBugs(perSpec [][]*Bug) []*Bug {
	seen := make(map[string]bool)
	var out []*Bug
	for _, bugs := range perSpec {
		for _, b := range bugs {
			if !seen[b.Key()] {
				seen[b.Key()] = true
				out = append(out, b)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fn.Name != out[j].Fn.Name {
			return out[i].Fn.Name < out[j].Fn.Name
		}
		return out[i].Spec.ID < out[j].Spec.ID
	})
	return out
}

// DetectSpec checks one spec against its detection regions.
func (d *Detector) DetectSpec(s *spec.Spec) []*Bug {
	var out []*Bug
	for _, fn := range d.Regions(s) {
		if b := d.checkRegion(s, fn); b != nil {
			out = append(out, b)
		}
	}
	return out
}

// Regions returns the bug-detection regions of a spec (paper §6.4.1):
// other implementations of the same function pointer, or — when no
// function-pointer elements are involved — other usages of the same API.
func (d *Detector) Regions(s *spec.Spec) []*ir.Func {
	if d.GlobalRegions {
		return d.G.Prog.FuncList
	}
	if s.Iface != "" {
		dot := strings.IndexByte(s.Iface, '.')
		if dot < 0 {
			return nil
		}
		return d.G.Prog.ImplsOf(s.Iface[:dot], s.Iface[dot+1:])
	}
	if s.API != "" {
		callers := d.sh.Idx.CallersOf(s.API)
		out := make([]*ir.Func, len(callers))
		copy(out, callers)
		return out
	}
	return nil
}

// regionFuncs returns fn plus its defined callees up to MaxCalleeDepth
// ("bottom-up" closure, §6.4.1), from the shared region cache.
func (d *Detector) regionFuncs(fn *ir.Func) []*ir.Func {
	return d.region(fn).funcs
}

// region returns the cached closure context of a region root.
func (d *Detector) region(fn *ir.Func) *regionCtx {
	return d.sh.region(fn, d.MaxCalleeDepth)
}

// checkRegion evaluates the spec inside one region function.
func (d *Detector) checkRegion(s *spec.Spec, fn *ir.Func) *Bug {
	rc := d.region(fn)
	// Materialize the PDG of the whole region first: inter-procedural
	// edges into a callee only exist once its caller is built. On a shared
	// graph each function is built at most once, whichever worker gets
	// here first. Under a budget each build is charged; an exhausted unit
	// stops materializing and finishes degraded.
	if d.bud == nil {
		for _, f := range rc.funcs {
			d.G.Ensure(f)
		}
	} else {
		for _, f := range rc.funcs {
			if d.G.EnsureBudget(f, d.bud.Step) != nil {
				break
			}
		}
	}
	// Confine slicing and condition abstraction to the region so results
	// depend only on the region, not on whatever else the shared graph
	// has materialized.
	d.sl.Scope = rc.set
	d.ab.Scope = rc.set
	rel := s.Constraint.Rel
	switch rel.Kind {
	case spec.RelReach:
		if s.Constraint.Forbidden {
			return d.checkForbiddenReach(s, rc)
		}
		return d.checkRequiredReach(s, rc)
	case spec.RelOrder:
		return d.checkOrder(s, rc)
	}
	return nil
}

// paths returns the memoized value-flow paths from a source statement
// within a region; the cache is shared across all workers of the
// substrate.
func (d *Detector) paths(src *ir.Stmt, rc *regionCtx) []*vfp.Path {
	if d.clk != nil {
		t0 := time.Now()
		defer func() { d.clk.sliceNs += time.Since(t0).Nanoseconds() }()
	}
	if d.DisableMemo {
		return d.sl.PathsFrom(src)
	}
	return d.sh.pathsFor(src, rc, d.MaxCalleeDepth, d.sl)
}

// sources instantiates the spec's V inside the region (the inverse of
// mapping 𝔸, §6.4.1), answering from the program index instead of
// rescanning every statement of the region per spec.
func (d *Detector) sources(v spec.Value, rc *regionCtx) []*ir.Stmt {
	var out []*ir.Stmt
	switch v.Kind {
	case spec.VIfaceArg:
		for _, ps := range d.sh.Idx.Func(rc.root).ParamDefs {
			if ps.ParamVar().ParamIndex == v.ArgIndex {
				out = append(out, ps)
			}
		}
	case spec.VAPIRet:
		for _, f := range rc.funcs {
			for _, st := range d.sh.Idx.Func(f).CallsByCallee[v.API] {
				if st.LHS != nil {
					out = append(out, st)
				}
			}
		}
	case spec.VLiteral:
		for _, f := range rc.funcs {
			out = append(out, d.sh.Idx.Func(f).IntLits[v.Lit]...)
		}
	case spec.VGlobal:
		for _, f := range rc.funcs {
			// Index prefilter: only run the flow scan over functions that
			// syntactically read the global at all.
			if !d.sh.Idx.Func(f).ReadsGlobals[v.Global] {
				continue
			}
			flow := d.G.Flow(f)
			for _, u := range flow.Unrooted {
				if u.Loc.Base.Kind == ir.VarGlobal && u.Loc.Base.Name == v.Global {
					out = append(out, u.Use)
				}
			}
		}
	case spec.VUninit:
		for _, f := range rc.funcs {
			flow := d.G.Flow(f)
			for _, u := range flow.Unrooted {
				if u.Loc.Base.Kind == ir.VarLocal && !u.Loc.Base.Initialized {
					out = append(out, u.Use)
				}
			}
		}
	}
	return dedupStmts(out)
}

// useMatches reports whether a found path's sink realizes the spec's U.
func useMatches(u spec.Use, snk vfp.Endpoint, prog *ir.Program) bool {
	switch u.Kind {
	case spec.UAPIArg:
		return snk.Kind == vfp.SnkAPIArg && snk.API == u.API && snk.ArgIndex == u.ArgIndex
	case spec.UIfaceRet:
		return snk.Kind == vfp.SnkIfaceRet
	case spec.UGlobalStore:
		return snk.Kind == vfp.SnkGlobalStore
	case spec.UDeref:
		return snk.Kind == vfp.SnkDeref
	case spec.UIndex:
		return snk.Kind == vfp.SnkIndex || snk.Kind == vfp.SnkDeref
	case spec.UDiv:
		return snk.Kind == vfp.SnkDiv
	case spec.UParamStore:
		return snk.Kind == vfp.SnkParamStore && snk.ParamIndex == u.ArgIndex
	}
	return false
}

// regionHasAPI reports whether the region invokes the API (instantiation
// precondition for specs whose condition depends on it).
func (d *Detector) regionHasAPI(rc *regionCtx, api string) bool {
	if api == "" {
		return true
	}
	for _, f := range rc.funcs {
		if len(d.sh.Idx.Func(f).CallsByCallee[api]) > 0 {
			return true
		}
	}
	return false
}

// checkRequiredReach: the relation must hold — absence of any realizable,
// condition-consistent path is a violation.
func (d *Detector) checkRequiredReach(s *spec.Spec, rc *regionCtx) *Bug {
	fn := rc.root
	rel := s.Constraint.Rel
	// Instantiation precondition: the APIs the condition talks about must
	// be present, otherwise the spec does not apply here.
	if !d.regionHasAPI(rc, s.API) {
		return nil
	}
	if !d.condAPIsPresent(rel.Cond, rc) {
		return nil
	}
	trunc0 := d.sl.BudgetTruncations
	srcs := d.sources(rel.V, rc)
	for _, src := range srcs {
		for _, p := range d.paths(src, rc) {
			if p.Sink.Fn != nil && p.Sink.Kind == vfp.SnkIfaceRet && p.Sink.Fn != fn {
				continue // a return of some other impl reached via shared helpers
			}
			if !useMatches(rel.U, p.Sink, d.G.Prog) {
				continue
			}
			if d.condConsistent(p, rel.Cond) {
				return nil // satisfied
			}
		}
	}
	msg := fmt.Sprintf("required value flow %s is missing (no realizable path under %s)",
		rel.V.Key()+" -> "+rel.U.Key(), solver.String(rel.Cond))
	// A required-reach violation is an ABSENCE claim; if enumeration was
	// budget-truncated while forming it, the satisfying path may simply be
	// beyond the budget. Say so instead of reporting silent certainty.
	if d.sl.BudgetTruncations > trunc0 {
		msg += " [degraded: path enumeration was budget-truncated; the satisfying flow may exist beyond the budget]"
	}
	if rel.U.Kind == spec.UAPIArg {
		if alt := d.similarAPICalled(rc, rel.U.API); alt != "" {
			msg += fmt.Sprintf("; note: region calls %s, possibly an equivalent post-operation", alt)
		}
	}
	return &Bug{
		Spec:    s,
		Fn:      fn,
		Kind:    ClassifyKind(s),
		Message: msg,
	}
}

// similarAPICalled looks for an API invoked in the region whose name
// shares a prefix with the expected one — the "equivalent post-operations"
// the paper identifies as an FP source (e.g. kfree vs kfree_sensitive).
// Surfacing the candidate in the report helps triage.
func (d *Detector) similarAPICalled(rc *regionCtx, want string) string {
	for _, f := range rc.funcs {
		for _, callee := range d.sh.Idx.Func(f).CalleeNames {
			if callee == want || !d.G.Prog.IsAPI(callee) {
				continue
			}
			if strings.HasPrefix(callee, want) || strings.HasPrefix(want, callee) {
				return callee
			}
		}
	}
	return ""
}

// checkForbiddenReach: any realizable path consistent with the (delta)
// condition is a violation.
func (d *Detector) checkForbiddenReach(s *spec.Spec, rc *regionCtx) *Bug {
	fn := rc.root
	rel := s.Constraint.Rel
	for _, src := range d.sources(rel.V, rc) {
		for _, p := range d.paths(src, rc) {
			if !useMatches(rel.U, p.Sink, d.G.Prog) {
				continue
			}
			if p.Sink.Fn != nil && p.Sink.Fn != fn && !rc.set[p.Sink.Fn] {
				continue
			}
			if d.condConsistent(p, rel.Cond) {
				return &Bug{
					Spec:  s,
					Fn:    fn,
					Kind:  ClassifyKind(s),
					Trace: p,
					Message: fmt.Sprintf("forbidden value flow %s -> %s realizable under %s",
						rel.V.Key(), rel.U.Key(), solver.String(rel.Cond)),
				}
			}
		}
	}
	return nil
}

// checkOrder: the forbidden arrangement is U2's site executing before U1's
// site for the same source datum.
func (d *Detector) checkOrder(s *spec.Spec, rc *regionCtx) *Bug {
	fn := rc.root
	rel := s.Constraint.Rel
	for _, src := range d.sources(rel.V, rc) {
		ps := d.paths(src, rc)
		var u1Paths, u2Paths []*vfp.Path
		for _, p := range ps {
			if useMatches(rel.U1, p.Sink, d.G.Prog) {
				u1Paths = append(u1Paths, p)
			}
			if useMatches(rel.U2, p.Sink, d.G.Prog) {
				u2Paths = append(u2Paths, p)
			}
		}
		for _, p1 := range u1Paths {
			for _, p2 := range u2Paths {
				s1, s2 := p1.Sink.Stmt, p2.Sink.Stmt
				if s1 == s2 || s1.Fn != s2.Fn {
					continue
				}
				info := d.G.CFG(s1.Fn)
				if !info.OrderComparable(s1, s2) {
					continue
				}
				if info.ExecutedBefore(s2, s1) {
					return &Bug{
						Spec:   s,
						Fn:     fn,
						Kind:   ClassifyKind(s),
						Trace:  p1,
						Trace2: p2,
						Message: fmt.Sprintf("use %s at line %d occurs after %s at line %d (forbidden order)",
							rel.U1.Key(), s1.Line, rel.U2.Key(), s2.Line),
					}
				}
			}
		}
	}
	return nil
}

// condConsistent evaluates the consistency between a found path's Ψ and
// the spec condition (paper §6.4.2): the abstracted Ψ must be jointly
// satisfiable with the condition.
func (d *Detector) condConsistent(p *vfp.Path, cond solver.Formula) bool {
	if cond == nil || d.IgnoreConditions {
		return true
	}
	if d.clk != nil {
		t0 := time.Now()
		defer func() { d.clk.solveNs += time.Since(t0).Nanoseconds() }()
	}
	psi := d.ab.AbstractPsi(p)
	d.satChecks++
	if d.bud != nil {
		return solver.SatBudget(solver.MkAnd(psi, cond), d.bud.Step)
	}
	return solver.Sat(solver.MkAnd(psi, cond))
}

// condAPIsPresent checks that every API mentioned in the condition's
// symbols is invoked in the region.
func (d *Detector) condAPIsPresent(cond solver.Formula, rc *regionCtx) bool {
	for _, sym := range solver.Symbols(cond) {
		if strings.HasPrefix(sym, "ret[") {
			api := sym[len("ret[") : len(sym)-1]
			if idx := strings.IndexByte(api, ']'); idx >= 0 {
				api = api[:idx]
			}
			if !d.regionHasAPI(rc, api) {
				return false
			}
		}
	}
	return true
}

func dedupStmts(in []*ir.Stmt) []*ir.Stmt {
	seen := make(map[*ir.Stmt]bool, len(in))
	var out []*ir.Stmt
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// ClassifyKind labels the bug type a spec's violation manifests as,
// mirroring Table 2's categories.
func ClassifyKind(s *spec.Spec) string {
	rel := s.Constraint.Rel
	if rel.Kind == spec.RelOrder {
		return "UAF"
	}
	switch {
	case rel.U.Kind == spec.UDiv:
		return "DbZ"
	case rel.U.Kind == spec.UIndex:
		return "OOB"
	case rel.V.Kind == spec.VUninit:
		return "UninitVal"
	case rel.U.Kind == spec.UDeref:
		return "NPD"
	case !s.Constraint.Forbidden && rel.V.Kind == spec.VLiteral && rel.V.Lit < 0 && rel.U.Kind == spec.UIfaceRet:
		return "WrongEC"
	case !s.Constraint.Forbidden && rel.U.Kind == spec.UIfaceRet:
		return "WrongEC"
	case !s.Constraint.Forbidden && rel.U.Kind == spec.UAPIArg:
		return "MemLeak"
	case !s.Constraint.Forbidden && rel.U.Kind == spec.UParamStore:
		return "UninitVal"
	case s.Constraint.Forbidden && rel.U.Kind == spec.UAPIArg:
		return "API-Misuse"
	}
	return "Other"
}
