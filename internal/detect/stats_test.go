package detect

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestStatsMerge(t *testing.T) {
	cases := []struct {
		name    string
		a, b    Stats
		want    Stats
		hitRate float64
	}{
		{
			name:    "zero+zero",
			hitRate: 0, // guarded: no lookups must not divide by zero
		},
		{
			name: "zero+populated",
			b: Stats{
				EnsureCalls: 10, EnsureBuilds: 3,
				PathCacheHits: 6, PathCacheMisses: 2,
				IndexLookups: 5, PathEnumerations: 2,
				PDGBuildNanos: 1e6, Truncations: 1,
				QuarantinedUnits: 1, DegradedUnits: 2, RetriedUnits: 3,
			},
			want: Stats{
				EnsureCalls: 10, EnsureBuilds: 3,
				PathCacheHits: 6, PathCacheMisses: 2,
				IndexLookups: 5, PathEnumerations: 2,
				PDGBuildNanos: 1e6, Truncations: 1,
				QuarantinedUnits: 1, DegradedUnits: 2, RetriedUnits: 3,
			},
			hitRate: 0.75,
		},
		{
			name: "field-wise sum",
			a: Stats{
				EnsureCalls: 1, EnsureBuilds: 1, PathCacheHits: 1,
				PathCacheMisses: 1, IndexLookups: 1, PathEnumerations: 1,
				PDGBuildNanos: 1, Truncations: 1, QuarantinedUnits: 1,
				DegradedUnits: 1, RetriedUnits: 1,
			},
			b: Stats{
				EnsureCalls: 2, EnsureBuilds: 3, PathCacheHits: 4,
				PathCacheMisses: 5, IndexLookups: 6, PathEnumerations: 7,
				PDGBuildNanos: 8, Truncations: 9, QuarantinedUnits: 10,
				DegradedUnits: 11, RetriedUnits: 12,
			},
			want: Stats{
				EnsureCalls: 3, EnsureBuilds: 4, PathCacheHits: 5,
				PathCacheMisses: 6, IndexLookups: 7, PathEnumerations: 8,
				PDGBuildNanos: 9, Truncations: 10, QuarantinedUnits: 11,
				DegradedUnits: 12, RetriedUnits: 13,
			},
			hitRate: 5.0 / 11.0,
		},
		{
			name:    "hits only",
			a:       Stats{PathCacheHits: 4},
			want:    Stats{PathCacheHits: 4},
			hitRate: 1,
		},
		{
			name:    "misses only",
			a:       Stats{PathCacheMisses: 4},
			want:    Stats{PathCacheMisses: 4},
			hitRate: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.a.Merge(tc.b)
			if got != tc.want {
				t.Fatalf("Merge = %+v, want %+v", got, tc.want)
			}
			// Merge must commute.
			if rev := tc.b.Merge(tc.a); rev != got {
				t.Fatalf("Merge not commutative: %+v vs %+v", rev, got)
			}
			hr := got.PathHitRate()
			if math.IsNaN(hr) || math.IsInf(hr, 0) {
				t.Fatalf("PathHitRate not finite: %v", hr)
			}
			if math.Abs(hr-tc.hitRate) > 1e-12 {
				t.Fatalf("PathHitRate = %v, want %v", hr, tc.hitRate)
			}
		})
	}
}

// TestStatsMergeMatchesTwoRuns checks the property Merge exists for:
// summing the per-run stats of two passes equals one aggregate a caller
// would keep while reusing the substrate across detection rounds.
func TestStatsMergeMatchesTwoRuns(t *testing.T) {
	specs, prog := corpusSpecsAndProg(t)
	sh := NewShared(prog)
	sh.DetectParallel(specs, 2)
	first := sh.Stats()
	sh.DetectParallel(specs, 2)
	second := sh.Stats()

	// The substrate's counters are cumulative, so second already includes
	// first; the delta of the second pass merged onto the first must give
	// back the cumulative reading.
	delta := Stats{
		EnsureCalls:      second.EnsureCalls - first.EnsureCalls,
		EnsureBuilds:     second.EnsureBuilds - first.EnsureBuilds,
		PathCacheHits:    second.PathCacheHits - first.PathCacheHits,
		PathCacheMisses:  second.PathCacheMisses - first.PathCacheMisses,
		IndexLookups:     second.IndexLookups - first.IndexLookups,
		PathEnumerations: second.PathEnumerations - first.PathEnumerations,
		PDGBuildNanos:    second.PDGBuildNanos - first.PDGBuildNanos,
		Truncations:      second.Truncations - first.Truncations,
	}
	if got := first.Merge(delta); got != second {
		t.Fatalf("first.Merge(delta) = %+v, want %+v", got, second)
	}
	if first.PathHitRate() < 0 || first.PathHitRate() > 1 {
		t.Fatalf("hit rate out of range: %v", first.PathHitRate())
	}
}

// TestStatsMergeProperty checks the algebra the coordinator's shard merge
// relies on: Merge is associative with the zero Stats as identity, so
// folding per-shard stats in any grouping gives one well-defined total.
// Fields are filled by reflection so the property keeps covering fields
// added later.
func TestStatsMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randStats := func() Stats {
		var s Stats
		v := reflect.ValueOf(&s).Elem()
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			if f.Kind() == reflect.Int64 || f.Kind() == reflect.Int {
				f.SetInt(rng.Int63n(1_000_000))
			}
		}
		return s
	}
	var zero Stats
	if got := zero.Merge(zero); got != zero {
		t.Fatalf("zero.Merge(zero) = %+v, want zero", got)
	}
	for i := 0; i < 500; i++ {
		a, b, c := randStats(), randStats(), randStats()
		left, right := a.Merge(b).Merge(c), a.Merge(b.Merge(c))
		if left != right {
			t.Fatalf("Merge not associative: (a+b)+c=%+v a+(b+c)=%+v", left, right)
		}
		if got := a.Merge(zero); got != a {
			t.Fatalf("zero not right identity: %+v != %+v", got, a)
		}
		if got := zero.Merge(a); got != a {
			t.Fatalf("zero not left identity: %+v != %+v", got, a)
		}
	}
}
