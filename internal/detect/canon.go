package detect

import (
	"fmt"
	"sort"
	"strings"

	"seal/internal/cir"
	"seal/internal/ir"
	"seal/internal/vfp"
)

// Canonical region shapes: the cross-region dedup lever for the shared
// path cache. A detection region's value-flow paths are a deterministic
// function of the region's lowered IR (statements, access paths, CFG
// succession, callee linking, interface markers) — everything EXCEPT
// identifier spellings: function names, local variable names, file names,
// and line numbers. Sibling driver implementations of one subsystem are
// exactly such renamings of each other, so their regions enumerate
// isomorphic path sets one statement apart.
//
// canonRegion serializes a region closure into a canonical string with
// in-region function names replaced by closure indices and local/param
// variables by positional indices; everything with program-level identity
// (global names, external API names, out-of-region callees, literal
// values and spellings, types, field offsets) stays verbatim. Two regions
// with EQUAL canonical strings — full string comparison, no hash trust —
// are isomorphic by construction, and a path set computed in one
// translates to the other by positional statement mapping. The exactness
// matters: a serialization gap can only make two regions spuriously
// DIFFER (missed reuse), never spuriously match, as long as every input
// the traversal reads is serialized; TestCanonReuseMatchesRecompute pins
// that contract against recomputation over the whole synthetic corpus.

// shapeInfo is one interned canonical shape; pointer identity is shape
// identity (Shared.shapeOf interns by full canonical string).
type shapeInfo struct {
	// size is the total statement count, kept for sanity checks.
	size int
}

// canonPathKey identifies one path computation up to region isomorphism:
// the shape, the source's position inside it, and the callee depth.
type canonPathKey struct {
	shape *shapeInfo
	fn    int // index of the source's function in the region closure
	stmt  int // index of the source statement within its function
	depth int
}

// canonEntry is a completed, non-volatile path set remembered under its
// canonical key, together with the region that computed it (the
// translation origin).
type canonEntry struct {
	rc    *regionCtx
	paths []*vfp.Path
}

// shapeOf interns the canonical shape of a region closure. Called once
// per region from region() (under regionMu); the serialization reads only
// immutable IR.
func (sh *Shared) shapeOf(rc *regionCtx) *shapeInfo {
	canon, size := canonRegion(sh.G.Prog, rc)
	sh.shapeMu.Lock()
	defer sh.shapeMu.Unlock()
	if si, ok := sh.shapes[canon]; ok {
		return si
	}
	si := &shapeInfo{size: size}
	sh.shapes[canon] = si
	return si
}

// canonKeyFor locates src inside rc's shape; ok=false when src is not a
// statement of the closure (defensive — sources are instantiated from
// region functions).
func (sh *Shared) canonKeyFor(src *ir.Stmt, rc *regionCtx, depth int) (canonPathKey, bool) {
	fnI, ok := rc.idx[src.Fn]
	if !ok {
		return canonPathKey{}, false
	}
	stmtI, ok := sh.stmtPosition(src)
	if !ok {
		return canonPathKey{}, false
	}
	return canonPathKey{shape: rc.shape, fn: fnI, stmt: stmtI, depth: depth}, true
}

// canonTranslate serves a path set for (src, rc) from an isomorphic
// sibling region, translating statement-by-statement. Returns ok=false on
// a canonical miss (or when the entry's origin is rc itself, which the
// exact key already covers).
func (sh *Shared) canonTranslate(src *ir.Stmt, rc *regionCtx, depth int) ([]*vfp.Path, bool) {
	key, ok := sh.canonKeyFor(src, rc, depth)
	if !ok {
		return nil, false
	}
	sh.canonMu.Lock()
	ce := sh.canonPaths[key]
	sh.canonMu.Unlock()
	if ce == nil || ce.rc == rc {
		return nil, false
	}
	return sh.translatePaths(ce, rc), true
}

// canonPublish remembers a completed, non-volatile path set under its
// canonical key (first computation wins; later publishes are no-ops so
// the translation origin stays stable).
func (sh *Shared) canonPublish(src *ir.Stmt, rc *regionCtx, depth int, paths []*vfp.Path) {
	key, ok := sh.canonKeyFor(src, rc, depth)
	if !ok {
		return
	}
	sh.canonMu.Lock()
	if _, exists := sh.canonPaths[key]; !exists {
		sh.canonPaths[key] = &canonEntry{rc: rc, paths: paths}
	}
	sh.canonMu.Unlock()
}

// stmtPosition returns src's index within its function's statement list,
// caching per-function position maps on the substrate.
func (sh *Shared) stmtPosition(src *ir.Stmt) (int, bool) {
	sh.stmtMu.Lock()
	defer sh.stmtMu.Unlock()
	if i, ok := sh.stmtPos[src]; ok {
		return i, true
	}
	if sh.stmtIndexed[src.Fn] {
		return 0, false
	}
	sh.stmtIndexed[src.Fn] = true
	for i, s := range src.Fn.Stmts() {
		sh.stmtPos[s] = i
	}
	i, ok := sh.stmtPos[src]
	return i, ok
}

// translatePaths maps a sibling region's path set into rc by positional
// statement and variable mapping. Equal canonical shapes guarantee equal
// function, statement, parameter, and local counts, so every positional
// lookup is in range by construction.
func (sh *Shared) translatePaths(ce *canonEntry, rc *regionCtx) []*vfp.Path {
	from := ce.rc
	fnMap := make(map[*ir.Func]*ir.Func, len(from.funcs))
	for i, f := range from.funcs {
		fnMap[f] = rc.funcs[i]
	}
	stmtCache := make(map[*ir.Func][]*ir.Stmt, len(rc.funcs))
	stmts := func(fn *ir.Func) []*ir.Stmt {
		if s, ok := stmtCache[fn]; ok {
			return s
		}
		s := fn.Stmts()
		stmtCache[fn] = s
		return s
	}
	mapStmt := func(s *ir.Stmt) *ir.Stmt {
		dst, ok := fnMap[s.Fn]
		if !ok {
			return s // outside the mapped closure: program-level identity
		}
		i, ok := sh.stmtPosition(s)
		if !ok {
			return s
		}
		return stmts(dst)[i]
	}
	mapVar := func(v *ir.Var) *ir.Var {
		if v == nil || v.Fn == nil {
			return v // globals keep identity
		}
		dst, ok := fnMap[v.Fn]
		if !ok {
			return v
		}
		if v.Kind == ir.VarParam {
			return dst.Params[v.ParamIndex]
		}
		for i, l := range v.Fn.Locals {
			if l == v {
				return dst.Locals[i]
			}
		}
		return v
	}
	mapLoc := func(l ir.Loc) ir.Loc {
		if l.Base == nil {
			return l
		}
		return ir.Loc{Base: mapVar(l.Base), Path: l.Path}
	}
	mapEP := func(ep vfp.Endpoint) vfp.Endpoint {
		out := ep
		if ep.Stmt != nil {
			out.Stmt = mapStmt(ep.Stmt)
		}
		if ep.Fn != nil {
			if dst, ok := fnMap[ep.Fn]; ok {
				out.Fn = dst
			}
		}
		out.Loc = mapLoc(ep.Loc)
		return out
	}
	out := make([]*vfp.Path, len(ce.paths))
	for i, p := range ce.paths {
		nodes := make([]*ir.Stmt, len(p.Nodes))
		for j, n := range p.Nodes {
			nodes[j] = mapStmt(n)
		}
		out[i] = &vfp.Path{
			Nodes:     nodes,
			Source:    mapEP(p.Source),
			Sink:      mapEP(p.Sink),
			Truncated: p.Truncated,
		}
	}
	return out
}

// canonRegion serializes the lowered IR of a region closure into its
// canonical shape string; returns the total statement count alongside.
func canonRegion(prog *ir.Program, rc *regionCtx) (string, int) {
	c := &canonWriter{
		prog:  prog,
		fnIdx: rc.idx,
	}
	// File-layout ranks: PDG edge lists sort by program-global statement
	// IDs, so the relative lowering order of the closure's functions is a
	// traversal input (it decides edge enumeration order across
	// functions). Serialize each function's rank so regions whose files
	// lay their functions out differently never unify.
	ranks := layoutRanks(rc.funcs)
	size := 0
	for i, f := range rc.funcs {
		size += c.writeFunc(f, i, ranks[i])
	}
	return c.sb.String(), size
}

// layoutRanks orders the closure's functions by their first statement ID
// (the program-global lowering order) and returns each function's rank.
func layoutRanks(funcs []*ir.Func) []int {
	type at struct{ pos, id int }
	order := make([]at, len(funcs))
	for i, f := range funcs {
		id := int(^uint(0) >> 1)
		if ss := f.Stmts(); len(ss) > 0 {
			id = ss[0].ID
		}
		order[i] = at{pos: i, id: id}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].id < order[b].id })
	ranks := make([]int, len(funcs))
	for r, o := range order {
		ranks[o.pos] = r
	}
	return ranks
}

// canonWriter carries the serialization state of one region shape.
type canonWriter struct {
	sb    strings.Builder
	prog  *ir.Program
	fnIdx map[*ir.Func]int
	// vi numbers the current function's params and locals positionally.
	vi map[*ir.Var]int
	fn *ir.Func
}

func (c *canonWriter) writeFunc(f *ir.Func, idx, rank int) int {
	c.fn = f
	c.vi = make(map[*ir.Var]int, len(f.Params)+len(f.Locals))
	n := 0
	for _, v := range f.Params {
		c.vi[v] = n
		n++
	}
	for _, v := range f.Locals {
		c.vi[v] = n
		n++
	}
	impl := 0
	if len(c.prog.InterfacesOf(f)) > 0 {
		impl = 1
	}
	ret := "?"
	if f.Decl != nil && f.Decl.Ret != nil {
		ret = f.Decl.Ret.String()
	}
	fmt.Fprintf(&c.sb, "F%d rank%d impl%d ret=%s\n", idx, rank, impl, ret)
	for _, v := range f.Params {
		fmt.Fprintf(&c.sb, " p%d t=%s i%v\n", v.ParamIndex, typeStr(v.Type), v.Initialized)
	}
	for _, v := range f.Locals {
		fmt.Fprintf(&c.sb, " l k%d t=%s i%v\n", v.Kind, typeStr(v.Type), v.Initialized)
	}
	blkIdx := make(map[*ir.Block]int, len(f.Blocks))
	for i, b := range f.Blocks {
		blkIdx[b] = i
	}
	stmts := 0
	for i, b := range f.Blocks {
		fmt.Fprintf(&c.sb, " b%d:", i)
		for _, s := range b.Succs {
			fmt.Fprintf(&c.sb, "%d,", blkIdx[s])
		}
		c.sb.WriteByte('\n')
		for _, s := range b.Stmts {
			c.writeStmt(s)
			stmts++
		}
	}
	return stmts
}

func (c *canonWriter) writeStmt(s *ir.Stmt) {
	fmt.Fprintf(&c.sb, "  s%d ", s.Kind)
	c.expr(s.LHS)
	c.sb.WriteByte('=')
	c.expr(s.RHS)
	c.sb.WriteByte(';')
	c.expr(s.X)
	if s.Kind == ir.StCall {
		c.sb.WriteString(";c:")
		c.callee(s.Callee)
		c.expr(s.CalleeExpr)
		for _, a := range s.Args {
			c.sb.WriteByte(',')
			c.expr(a)
		}
	}
	c.sb.WriteString(";D")
	for _, l := range s.Defs {
		c.loc(l)
	}
	c.sb.WriteString(";U")
	for _, l := range s.Uses {
		c.loc(l)
	}
	c.sb.WriteByte('\n')
}

// callee canonicalizes a call target name: in-region functions by closure
// index, everything else (external APIs, out-of-region defined functions)
// verbatim.
func (c *canonWriter) callee(name string) {
	if name == "" {
		return
	}
	if fn, ok := c.prog.Funcs[name]; ok {
		if i, in := c.fnIdx[fn]; in {
			fmt.Fprintf(&c.sb, "F%d", i)
			return
		}
	}
	c.sb.WriteString(name)
}

func (c *canonWriter) loc(l ir.Loc) {
	if l.Base == nil {
		c.sb.WriteString("[]")
		return
	}
	c.sb.WriteByte('[')
	c.varRef(l.Base)
	for _, st := range l.Path {
		c.sb.WriteString(st.String())
	}
	c.sb.WriteByte(']')
}

func (c *canonWriter) varRef(v *ir.Var) {
	if v.Fn == nil {
		// Program-level identity: global names stay verbatim.
		c.sb.WriteString("g:")
		c.sb.WriteString(v.Name)
		return
	}
	if i, ok := c.vi[v]; ok {
		fmt.Fprintf(&c.sb, "v%d", i)
		return
	}
	// A variable of another function (should not occur in per-statement
	// locs); fall back to the program-global ID so the shape stays
	// deterministic but never spuriously unifies.
	fmt.Fprintf(&c.sb, "V#%d", v.ID)
}

func typeStr(t *cir.Type) string {
	if t == nil {
		return "?"
	}
	return t.String()
}

// expr serializes an expression with identifiers canonicalized: variables
// by positional index, in-region function names by closure index, global
// and unresolved names (APIs, macro constants) verbatim. Literal
// spellings (IntLit.Text) are serialized too — path dedup keys include
// statement renderings, so regions differing only in a literal's spelling
// must not unify.
func (c *canonWriter) expr(e cir.Expr) {
	switch x := e.(type) {
	case nil:
		c.sb.WriteByte('_')
	case *cir.Ident:
		if v := c.fn.VarByName(x.Name); v != nil {
			c.varRef(v)
			return
		}
		if fn, ok := c.prog.Funcs[x.Name]; ok {
			if i, in := c.fnIdx[fn]; in {
				fmt.Fprintf(&c.sb, "F%d", i)
				return
			}
		}
		c.sb.WriteString("x:")
		c.sb.WriteString(x.Name)
	case *cir.IntLit:
		fmt.Fprintf(&c.sb, "i%d:%s", x.Val, x.Text)
	case *cir.StrLit:
		fmt.Fprintf(&c.sb, "%q", x.Val)
	case *cir.UnaryExpr:
		fmt.Fprintf(&c.sb, "u%d(", x.Op)
		c.expr(x.X)
		c.sb.WriteByte(')')
	case *cir.BinaryExpr:
		fmt.Fprintf(&c.sb, "b%d(", x.Op)
		c.expr(x.X)
		c.sb.WriteByte(',')
		c.expr(x.Y)
		c.sb.WriteByte(')')
	case *cir.CondExpr:
		c.sb.WriteString("?(")
		c.expr(x.Cond)
		c.sb.WriteByte(',')
		c.expr(x.Then)
		c.sb.WriteByte(',')
		c.expr(x.Else)
		c.sb.WriteByte(')')
	case *cir.CallExpr:
		c.sb.WriteString("call(")
		c.expr(x.Fun)
		for _, a := range x.Args {
			c.sb.WriteByte(',')
			c.expr(a)
		}
		c.sb.WriteByte(')')
	case *cir.IndexExpr:
		c.sb.WriteString("ix(")
		c.expr(x.X)
		c.sb.WriteByte(',')
		c.expr(x.Index)
		c.sb.WriteByte(')')
	case *cir.FieldExpr:
		arrow := "."
		if x.Arrow {
			arrow = "->"
		}
		c.sb.WriteString("f(")
		c.expr(x.X)
		c.sb.WriteString(arrow)
		c.sb.WriteString(x.Name)
		c.sb.WriteByte(')')
	case *cir.CastExpr:
		fmt.Fprintf(&c.sb, "cast[%s](", typeStr(x.Type))
		c.expr(x.X)
		c.sb.WriteByte(')')
	case *cir.SizeofExpr:
		fmt.Fprintf(&c.sb, "sz%d", x.Size)
	case *cir.StructInitExpr:
		c.sb.WriteString("init{")
		for _, fl := range x.Fields {
			c.sb.WriteString(fl.Name)
			c.sb.WriteByte('=')
			c.expr(fl.Value)
			c.sb.WriteByte(';')
		}
		c.sb.WriteByte('}')
	default:
		c.sb.WriteString("<?>")
	}
}
