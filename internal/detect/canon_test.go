package detect_test

import (
	"strings"
	"testing"

	"seal/internal/detect"
	"seal/internal/eval"
	"seal/internal/kernelgen"
)

// dumpFull renders bugs with their complete witness traces (function
// names, statement spellings, line numbers) — the sharpest oracle for the
// canonical-shape path translation: a single mistranslated statement
// changes a trace line.
func dumpFull(bugs []*detect.Bug) string {
	var sb strings.Builder
	for _, b := range bugs {
		sb.WriteString(b.String())
		sb.WriteByte('\n')
		if b.Trace != nil {
			sb.WriteString(b.Trace.String())
			sb.WriteByte('\n')
		}
		if b.Trace2 != nil {
			sb.WriteString(b.Trace2.String())
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// TestCanonReuseMatchesRecompute pins the soundness contract of the
// canonical-shape path cache (canon.go): over the whole synthetic corpus
// — which is deliberately rich in renamed sibling drivers — detection
// with cross-region translation enabled must produce byte-identical
// reports, traces included, to detection that recomputes every
// enumeration from scratch.
func TestCanonReuseMatchesRecompute(t *testing.T) {
	r, err := eval.NewRun(kernelgen.EvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	memo := detect.NewShared(r.Prog)
	withReuse := dumpFull(memo.DetectParallel(r.Specs, 1))

	raw := detect.New(r.Prog)
	raw.DisableMemo = true
	recomputed := dumpFull(raw.Detect(r.Specs))

	if withReuse != recomputed {
		t.Fatalf("canonical reuse changed detection results:\n--- with reuse ---\n%s\n--- recomputed ---\n%s",
			withReuse, recomputed)
	}
	if st := memo.Stats(); st.PathCacheHits == 0 {
		t.Fatal("oracle ran without exercising the path cache")
	}
}

// benchPathCacheHitRateFloor is the checked-in floor for the in-run
// path-cache hit rate on the bench corpus at one worker. The seed
// substrate measured 34.5% (exact (source, region) repeats only);
// canonical-shape reuse across renamed sibling regions lifts it to
// ~69.8%. The floor sits below the measured value but far above the
// seed, so a regression that silently disables cross-region reuse fails
// here rather than showing up only as lost wall-clock.
const benchPathCacheHitRateFloor = 0.60

func TestPathCacheHitRateFloor(t *testing.T) {
	r, err := eval.NewRun(kernelgen.EvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	sh := detect.NewShared(r.Prog)
	sh.DetectParallel(r.Specs, 1)
	st := sh.Stats()
	total := st.PathCacheHits + st.PathCacheMisses
	if total == 0 {
		t.Fatal("no path-cache lookups on the bench corpus")
	}
	if rate := st.PathHitRate(); rate < benchPathCacheHitRateFloor {
		t.Fatalf("bench-corpus path-cache hit rate = %.1f%% (%d/%d), below the %.0f%% floor",
			rate*100, st.PathCacheHits, total, benchPathCacheHitRateFloor*100)
	}
}
