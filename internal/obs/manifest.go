package obs

import (
	"encoding/json"
	"os"
	"sort"
	"time"
)

// Manifest is the deterministic JSON record of one run: what ran, over
// which inputs, and how every unit of work ended. It is the run's
// provenance artifact — when inference or detection is budgeted and
// truncation-prone, the manifest is what makes a result auditable.
//
// Determinism contract: after Redact (which zeroes wall-clock fields and
// drops the duration-ordered sections), the manifest is byte-identical
// across worker counts and substrate arrangements for the same inputs.
type Manifest struct {
	Tool      string             `json:"tool"`
	Command   string             `json:"command"`
	StartedAt string             `json:"started_at,omitempty"` // RFC3339; redacted in goldens
	WallMS    float64            `json:"wall_ms"`              // redacted in goldens
	Workers   int                `json:"workers,omitempty"`
	Inputs    map[string]string  `json:"inputs,omitempty"` // flags and input paths
	Outcomes  OutcomeCounts      `json:"outcomes"`
	Cache     *CacheStats        `json:"cache,omitempty"`
	Counters  map[string]float64 `json:"counters,omitempty"` // registry snapshot
	Units     []UnitManifest     `json:"units"`              // sorted by (stage, id)
	// Slowest lists the top-K slowest units by duration — the "where did
	// the wall clock go" view. Duration-ordered, so dropped by Redact.
	Slowest []SlowUnit `json:"slowest_units,omitempty"`
	// Shards lists the per-shard spans of a coordinated multi-process run:
	// which worker executed which region groups and how the dispatch
	// ended. Deployment-shaped (addresses, wall clock, shard count), so
	// dropped by Redact — a sharded run's redacted manifest is comparable
	// against a single-process run's.
	Shards []ShardManifest `json:"shards,omitempty"`
}

// ShardManifest is one shard worker's span in a coordinated run.
type ShardManifest struct {
	Shard int    `json:"shard"`
	Addr  string `json:"addr,omitempty"`
	// Groups / Specs are the region groups and specs assigned to the shard.
	Groups int `json:"groups"`
	Specs  int `json:"specs"`
	// Outcome is "ok", "lost" (crashed/hung/unreachable after retries), or
	// "recovered" (lost, but every region group was re-executed on a
	// surviving worker under -reshard-on-loss).
	Outcome string `json:"outcome"`
	Reason  string `json:"reason,omitempty"`
	// Attempts counts dispatch tries (2 after a retry).
	Attempts int     `json:"attempts,omitempty"`
	WallMS   float64 `json:"wall_ms"`
	Bugs     int     `json:"bugs"`
	// AttemptLog records every dispatch attempt with its failure reason —
	// not just the final verdict — so a shard-lost quarantine is
	// debuggable post-hoc.
	AttemptLog []ShardAttempt `json:"attempt_log,omitempty"`
	// Recovery lists this shard's re-shard-on-loss executions on surviving
	// workers, in deterministic (origin, target) order.
	Recovery []ShardRecovery `json:"recovery,omitempty"`
}

// ShardAttempt is one dispatch (or probe-gate) attempt against a worker.
type ShardAttempt struct {
	Attempt int    `json:"attempt"`
	Addr    string `json:"addr,omitempty"`
	// Outcome is "ok" or "failed".
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
	// Probe carries the probe verdict for the attempt: "ready" (readiness
	// gate passed), "not-ready" (gate refused dispatch), or a liveness
	// diagnosis when the prober cut a hung in-flight request.
	Probe string `json:"probe,omitempty"`
	// BackoffMS is the deterministic backoff slept before this attempt.
	BackoffMS float64 `json:"backoff_ms,omitempty"`
	WallMS    float64 `json:"wall_ms"`
}

// ShardRecovery is one recovery job: a subset of a lost shard's region
// groups re-dispatched to a surviving worker.
type ShardRecovery struct {
	Addr   string `json:"addr,omitempty"`
	Shard  int    `json:"shard"` // surviving shard slot that executed it
	Groups int    `json:"groups"`
	Specs  int    `json:"specs"`
	// Outcome is "ok" or "lost" (the recovery dispatch itself failed).
	Outcome    string         `json:"outcome"`
	Reason     string         `json:"reason,omitempty"`
	Attempts   int            `json:"attempts,omitempty"`
	WallMS     float64        `json:"wall_ms"`
	Bugs       int            `json:"bugs"`
	AttemptLog []ShardAttempt `json:"attempt_log,omitempty"`
}

// OutcomeCounts summarizes unit verdicts.
type OutcomeCounts struct {
	OK          int `json:"ok"`
	Degraded    int `json:"degraded"`
	Quarantined int `json:"quarantined"`
	Skipped     int `json:"skipped"`
}

// CacheStats embeds the shared-substrate counters (detect runs) plus the
// persistent cross-run analysis-cache counters (any cached run).
type CacheStats struct {
	PDGEnsureCalls   int64   `json:"pdg_ensure_calls"`
	PDGBuilds        int64   `json:"pdg_builds"`
	PathCacheHits    int64   `json:"path_cache_hits"`
	PathCacheMisses  int64   `json:"path_cache_misses"`
	PathHitRatePct   float64 `json:"path_hit_rate_pct"`
	IndexLookups     int64   `json:"index_lookups"`
	PathEnumerations int64   `json:"path_enumerations"`
	Truncations      int64   `json:"truncations"`

	// Persistent-cache counters (internal/cache): zero unless the run had
	// a -cache-dir. Redact zeroes them — they are exactly what differs
	// between a cold and a warm run of the same inputs.
	PCacheHits        int64 `json:"pcache_hits,omitempty"`
	PCacheMisses      int64 `json:"pcache_misses,omitempty"`
	PCacheWrites      int64 `json:"pcache_writes,omitempty"`
	PCacheCorrupt     int64 `json:"pcache_corrupt,omitempty"`
	PCacheReadBytes   int64 `json:"pcache_read_bytes,omitempty"`
	PCacheWriteBytes  int64 `json:"pcache_write_bytes,omitempty"`
	PCacheUncacheable int64 `json:"pcache_uncacheable,omitempty"`
}

// UnitManifest is one unit of work's outcome.
type UnitManifest struct {
	ID       string          `json:"id"`
	Stage    string          `json:"stage"`
	Outcome  string          `json:"outcome"`
	Reason   string          `json:"reason,omitempty"`
	DurMS    float64         `json:"dur_ms"` // redacted in goldens
	Steps    int64           `json:"steps,omitempty"`
	MemBytes int64           `json:"mem_bytes,omitempty"`
	Attempts int             `json:"attempts,omitempty"`
	Specs    int             `json:"specs,omitempty"`
	Bugs     int             `json:"bugs,omitempty"`
	Stages   []StageManifest `json:"stages,omitempty"`
	Annots   []Annot         `json:"annotations,omitempty"`
}

// StageManifest is one pipeline stage inside a unit.
type StageManifest struct {
	Name  string  `json:"name"`
	DurMS float64 `json:"dur_ms"` // redacted in goldens
	Steps int64   `json:"steps,omitempty"`
}

// SlowUnit is one entry of the top-K slowest list.
type SlowUnit struct {
	ID    string  `json:"id"`
	Stage string  `json:"stage"`
	DurMS float64 `json:"dur_ms"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// BuildManifest assembles the manifest from the recorded run tree. topK
// bounds the slowest-units section (0 disables it). Nil recorder returns
// nil.
func (r *Recorder) BuildManifest(command string, workers int, inputs map[string]string, topK int) *Manifest {
	if r == nil {
		return nil
	}
	run := r.Run()
	run.End()
	m := &Manifest{
		Tool:      "seal",
		Command:   command,
		StartedAt: run.start.UTC().Format(time.RFC3339Nano),
		WallMS:    ms(run.Dur),
		Workers:   workers,
		Inputs:    inputs,
		Counters:  r.reg.Snapshot(),
	}
	for _, c := range run.Children() {
		if c.Kind != KindUnit {
			continue
		}
		u := UnitManifest{
			ID:       c.Name,
			Stage:    c.Stage,
			Outcome:  c.Outcome,
			Reason:   c.Reason,
			DurMS:    ms(c.Dur),
			Steps:    c.Steps,
			MemBytes: c.Mem,
			Attempts: c.Attempts,
			Specs:    c.Specs,
			Bugs:     c.Bugs,
			Annots:   c.Annots,
		}
		for _, st := range c.Children() {
			if st.Kind == KindStage {
				u.Stages = append(u.Stages, StageManifest{Name: st.Name, DurMS: ms(st.Dur), Steps: st.Steps})
			}
		}
		switch c.Outcome {
		case OutcomeDegraded:
			m.Outcomes.Degraded++
		case OutcomeQuarantined:
			m.Outcomes.Quarantined++
		case OutcomeSkipped:
			m.Outcomes.Skipped++
		default:
			m.Outcomes.OK++
		}
		m.Units = append(m.Units, u)
	}
	sort.Slice(m.Units, func(i, j int) bool {
		if m.Units[i].Stage != m.Units[j].Stage {
			return m.Units[i].Stage < m.Units[j].Stage
		}
		return m.Units[i].ID < m.Units[j].ID
	})
	if topK > 0 {
		byDur := make([]UnitManifest, len(m.Units))
		copy(byDur, m.Units)
		sort.Slice(byDur, func(i, j int) bool {
			if byDur[i].DurMS != byDur[j].DurMS {
				return byDur[i].DurMS > byDur[j].DurMS
			}
			return byDur[i].ID < byDur[j].ID
		})
		if len(byDur) > topK {
			byDur = byDur[:topK]
		}
		for _, u := range byDur {
			m.Slowest = append(m.Slowest, SlowUnit{ID: u.ID, Stage: u.Stage, DurMS: u.DurMS})
		}
	}
	return m
}

// ReplayUnit re-records one unit span from its manifest form — the
// coordinator's path for folding a shard worker's unit outcomes into the
// merged run manifest. Durations and budget spend are not replayed (they
// are another process's wall clock; redaction zeroes them anyway), while
// identity, verdict, counts, attempts, stage structure, and annotations
// are — exactly the redaction-stable surface, so a merged manifest's units
// are indistinguishable from a single-process run's after Redact.
func (r *Recorder) ReplayUnit(u UnitManifest) {
	span := r.Unit(u.Stage, u.ID)
	if span == nil {
		return
	}
	if u.Attempts > 1 {
		span.SetAttempts(u.Attempts)
	}
	span.SetCounts(u.Specs, u.Bugs)
	for _, st := range u.Stages {
		span.AddStage(st.Name, 0, 0)
	}
	for _, a := range u.Annots {
		span.Annotate(a.Key, a.Value)
	}
	if u.Outcome != "" && u.Outcome != OutcomeOK {
		span.SetOutcome(u.Outcome, u.Reason)
	}
	span.End()
}

// SetCache attaches the shared-substrate counters.
func (m *Manifest) SetCache(c CacheStats) {
	if m != nil {
		m.Cache = &c
	}
}

// Redact returns a deep copy normalized for golden comparison: the start
// timestamp, the worker count, wall-clock durations, every volatile
// counter (see VolatileMetric), and the per-unit budget spend are zeroed,
// the duration-ordered slowest-units section is dropped, and per-unit
// "truncated" annotations are removed. Spend and truncation attribution
// are normalized because under the shared single-flight caches they follow
// whichever worker computed a shared artifact first — scheduling, not
// semantics; likewise the in-run path-cache and persistent-cache counters,
// which depend on scheduling (cross-region footprint reuse) and cache
// temperature (cold vs warm) respectively, and the index-lookup counter,
// which cache-primed or snapshot-carried region closures skip. Everything
// else — unit identities, outcomes, reasons, spec/bug counts, stage
// structure, PDG build counters — is preserved, which is exactly the set
// that must be deterministic across worker counts AND across cold/warm
// runs of the same inputs.
func (m *Manifest) Redact() *Manifest {
	if m == nil {
		return nil
	}
	out := *m
	out.StartedAt = ""
	out.WallMS = 0
	out.Workers = 0
	out.Slowest = nil
	out.Shards = nil
	if m.Counters != nil {
		out.Counters = make(map[string]float64, len(m.Counters))
		for k, v := range m.Counters {
			if VolatileMetric(k) {
				v = 0
			}
			out.Counters[k] = v
		}
	}
	if m.Cache != nil {
		c := *m.Cache
		c.PathCacheHits = 0
		c.PathCacheMisses = 0
		c.PathHitRatePct = 0
		c.IndexLookups = 0
		c.PathEnumerations = 0
		c.Truncations = 0
		c.PCacheHits = 0
		c.PCacheMisses = 0
		c.PCacheWrites = 0
		c.PCacheCorrupt = 0
		c.PCacheReadBytes = 0
		c.PCacheWriteBytes = 0
		c.PCacheUncacheable = 0
		out.Cache = &c
	}
	out.Units = make([]UnitManifest, len(m.Units))
	for i, u := range m.Units {
		ru := u
		ru.DurMS = 0
		ru.Steps = 0
		ru.MemBytes = 0
		ru.Stages = make([]StageManifest, len(u.Stages))
		for j, st := range u.Stages {
			st.DurMS = 0
			st.Steps = 0
			ru.Stages[j] = st
		}
		ru.Annots = nil
		for _, a := range u.Annots {
			if a.Key != "truncated" {
				ru.Annots = append(ru.Annots, a)
			}
		}
		out.Units[i] = ru
	}
	return &out
}

// RedactSubstrate is Redact plus the substrate-dependent counters: cache
// hit/miss/build counts depend on how work was arranged over substrates
// (one shared graph vs per-unit private graphs), so comparisons across
// those arrangements zero them too. Unit outcomes, reasons, spend, and
// result counts remain.
func (m *Manifest) RedactSubstrate() *Manifest {
	out := m.Redact()
	if out == nil {
		return nil
	}
	out.Cache = nil
	out.Counters = nil
	for i := range out.Units {
		out.Units[i].Steps = 0
		out.Units[i].MemBytes = 0
		out.Units[i].Stages = nil
	}
	return out
}

// VolatileMetric reports whether a metric is scheduling- or
// cache-temperature-dependent and therefore zeroed by the determinism
// normalizers (Redact, RedactTimings): wall-clock series ("_seconds"),
// persistent-cache counters (cold vs warm), solver-memo counters
// (cross-worker racing), the in-run path-cache family (cross-region
// footprint reuse follows entry completion order), and index lookups
// (skipped entirely when region closures arrive pre-primed from the
// persistent cache or a carried snapshot).
func VolatileMetric(name string) bool {
	if containsSeconds(name) {
		return true
	}
	if hasPrefix(name, "seal_pcache_") || hasPrefix(name, "seal_solver_sat_memo_") {
		return true
	}
	switch name {
	case "seal_path_cache_hits_total", "seal_path_cache_misses_total",
		"seal_path_cache_hit_ratio", "seal_path_enumerations_total",
		"seal_index_lookups_total", "seal_truncations_total":
		return true
	}
	return false
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}

func containsSeconds(name string) bool {
	for i := 0; i+8 <= len(name); i++ {
		if name[i:i+8] == "_seconds" {
			return true
		}
	}
	return false
}

// MarshalIndent renders the manifest as stable, human-diffable JSON.
func (m *Manifest) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the manifest JSON to path.
func (m *Manifest) WriteFile(path string) error {
	data, err := m.MarshalIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadManifest loads a manifest written by WriteFile.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}
