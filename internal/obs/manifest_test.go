package obs

import (
	"bytes"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildSample records a small run with every outcome class and returns
// the manifest.
func buildSample(t *testing.T, workers int) *Manifest {
	t.Helper()
	clk := newFakeClock(time.Millisecond)
	r := NewWithClock(clk.Now)
	r.StartRun("detect")
	r.SetUnitsTotal(4)

	ok := r.Unit("detect", "iface:ops.prepare")
	ok.StartStage("slice").End()
	ok.AddStage("solve", 3*time.Millisecond, 7)
	ok.SetCounts(2, 1)
	ok.EndWithSpend(100, 4096)

	deg := r.Unit("detect", "api:kfree")
	deg.SetOutcome(OutcomeDegraded, "step-budget")
	deg.Annotate("degraded", "budget exhausted: step-budget (10 of 10)")
	deg.SetCounts(1, 0)
	deg.EndWithSpend(10, 0)

	quar := r.Unit("detect", "iface:ops.finish")
	quar.SetOutcome(OutcomeQuarantined, "panic")
	quar.SetAttempts(2)
	quar.End()

	skip := r.Unit("detect", "api:memcpy")
	skip.SetOutcome(OutcomeSkipped, "aborted")
	skip.End()

	r.Registry().Counter("seal_solver_sat_checks_total", "").Add(12)
	r.Registry().Gauge("seal_pdg_build_seconds_total", "").Set(0.25)

	m := r.BuildManifest("detect", workers, map[string]string{"target": "/tmp/tree"}, 2)
	m.SetCache(CacheStats{PDGEnsureCalls: 9, PDGBuilds: 3, PathCacheHits: 5, PathCacheMisses: 5, PathHitRatePct: 50})
	return m
}

func TestBuildManifestShape(t *testing.T) {
	m := buildSample(t, 4)
	if m.Tool != "seal" || m.Command != "detect" || m.Workers != 4 {
		t.Fatalf("header = %+v", m)
	}
	if m.WallMS <= 0 || m.StartedAt == "" {
		t.Fatalf("wall/start not recorded: %v %q", m.WallMS, m.StartedAt)
	}
	if m.Outcomes != (OutcomeCounts{OK: 1, Degraded: 1, Quarantined: 1, Skipped: 1}) {
		t.Fatalf("outcomes = %+v", m.Outcomes)
	}
	// Units sorted by (stage, id).
	var ids []string
	for _, u := range m.Units {
		ids = append(ids, u.ID)
	}
	want := []string{"api:kfree", "api:memcpy", "iface:ops.finish", "iface:ops.prepare"}
	if strings.Join(ids, ",") != strings.Join(want, ",") {
		t.Fatalf("unit order = %v, want %v", ids, want)
	}
	// The ok unit carries its stages, counts, and spend.
	u := m.Units[3]
	if len(u.Stages) != 2 || u.Stages[0].Name != "slice" || u.Stages[1].Name != "solve" {
		t.Fatalf("stages = %+v", u.Stages)
	}
	if u.Stages[1].Steps != 7 || u.Steps != 100 || u.MemBytes != 4096 || u.Specs != 2 || u.Bugs != 1 {
		t.Fatalf("unit detail = %+v", u)
	}
	// The quarantined unit records its retry count and reason.
	q := m.Units[2]
	if q.Attempts != 2 || q.Reason != "panic" || q.Outcome != OutcomeQuarantined {
		t.Fatalf("quarantined unit = %+v", q)
	}
	if len(m.Slowest) != 2 {
		t.Fatalf("slowest = %+v", m.Slowest)
	}
	if m.Counters["seal_solver_sat_checks_total"] != 12 {
		t.Fatalf("counters = %v", m.Counters)
	}
}

func TestRedactNormalizesTimingAndSpend(t *testing.T) {
	// Different worker counts must redact to identical manifests.
	a := buildSample(t, 1)
	b := buildSample(t, 4)
	// The fake clock gives both builds identical durations, so force a
	// divergence to prove Redact removes it.
	a.WallMS = 123
	a.StartedAt = "2026-01-01T00:00:00Z"
	a.Units[0].DurMS = 99
	a.Units[3].Stages[0].DurMS = 42
	a.Units[3].Steps = 31337 // scheduling-dependent spend attribution
	a.Units[3].Annots = append(a.Units[3].Annots, Annot{Key: "truncated", Value: "2 path enumerations cut short"})
	a.Slowest = append(a.Slowest, SlowUnit{ID: "x"})
	a.Counters["seal_pdg_build_seconds_total"] = 9.9

	ra, err := a.Redact().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Redact().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra, rb) {
		t.Fatalf("redacted manifests differ:\n%s\nvs\n%s", ra, rb)
	}
	red := a.Redact()
	if red.StartedAt != "" || red.WallMS != 0 || red.Workers != 0 || red.Slowest != nil {
		t.Fatalf("redact left wall-clock fields: %+v", red)
	}
	for _, an := range red.Units[3].Annots {
		if an.Key == "truncated" {
			t.Fatal("redact kept a truncated annotation")
		}
	}
	if len(red.Units[0].Annots) != 1 || red.Units[0].Annots[0].Key != "degraded" {
		t.Fatalf("redact dropped semantic annotations: %+v", red.Units[0].Annots)
	}
	if red.Counters["seal_pdg_build_seconds_total"] != 0 {
		t.Fatal("redact left a _seconds counter")
	}
	if red.Counters["seal_solver_sat_checks_total"] != 12 {
		t.Fatal("redact dropped a deterministic counter")
	}
	// Original untouched (deep copy).
	if a.Units[0].DurMS != 99 || a.Units[3].Stages[0].DurMS != 42 {
		t.Fatal("Redact mutated its receiver")
	}
	// The Cache section survives, its deterministic counters intact, but
	// the path-cache family (cross-region footprint reuse makes it follow
	// scheduling) and the persistent-cache counters (cold vs warm) zeroed.
	rc := a.Redact().Cache
	if rc == nil || rc.PDGBuilds != 3 || rc.PDGEnsureCalls != 9 {
		t.Fatalf("redact dropped deterministic cache stats: %+v", rc)
	}
	if rc.PathCacheHits != 0 || rc.PathCacheMisses != 0 || rc.PathHitRatePct != 0 ||
		rc.PCacheHits != 0 || rc.PCacheWrites != 0 {
		t.Fatalf("redact left volatile cache stats: %+v", rc)
	}
	if a.Cache.PathHitRatePct != 50 {
		t.Fatal("Redact mutated its receiver's cache stats")
	}
}

func TestVolatileMetric(t *testing.T) {
	for name, want := range map[string]bool{
		"seal_unit_duration_seconds_sum":  true,
		"seal_pdg_build_seconds_total":    true,
		"seal_pcache_hits_total":          true,
		"seal_pcache_corrupt_total":       true,
		"seal_solver_sat_memo_hits_total": true,
		"seal_path_cache_hits_total":      true,
		"seal_path_cache_hit_ratio":       true,
		"seal_path_enumerations_total":    true,
		"seal_truncations_total":          true,
		"seal_index_lookups_total":        true,
		"seal_solver_sat_checks_total":    false,
		"seal_pdg_builds_total":           false,
		"seal_detect_bugs_total":          false,
	} {
		if got := VolatileMetric(name); got != want {
			t.Errorf("VolatileMetric(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestRedactSubstrateDropsArrangementDependentFields(t *testing.T) {
	m := buildSample(t, 4)
	rs := m.RedactSubstrate()
	if rs.Cache != nil || rs.Counters != nil {
		t.Fatalf("substrate redact kept cache/counters: %+v", rs)
	}
	for _, u := range rs.Units {
		if u.Steps != 0 || u.MemBytes != 0 || u.Stages != nil {
			t.Fatalf("substrate redact kept per-unit substrate fields: %+v", u)
		}
	}
	// Outcomes and identities must survive.
	if rs.Outcomes != m.Outcomes || len(rs.Units) != len(m.Units) {
		t.Fatal("substrate redact lost outcomes")
	}
	var nilM *Manifest
	if nilM.Redact() != nil || nilM.RedactSubstrate() != nil {
		t.Fatal("nil manifest redact not nil")
	}
	nilM.SetCache(CacheStats{})
}

func TestManifestWriteReadRoundTrip(t *testing.T) {
	m := buildSample(t, 2)
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := m.MarshalIndent()
	b, _ := back.MarshalIndent()
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip differs:\n%s\nvs\n%s", a, b)
	}
	if _, err := ReadManifest(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("reading a missing manifest succeeded")
	}
}

// lockedBuffer serializes writes so the progress goroutine and the test
// can share it under -race.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestProgressTicker(t *testing.T) {
	r := New()
	r.SetUnitsTotal(2)
	var buf lockedBuffer
	p := StartProgress(&buf, r, "detect", 10*time.Millisecond)
	r.Unit("detect", "a").End()
	d := r.Unit("detect", "b")
	d.SetOutcome(OutcomeDegraded, "step-budget")
	d.End()
	time.Sleep(35 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	out := buf.String()
	if !strings.Contains(out, "seal: detect 2/2 units (1 degraded, 0 quarantined)") {
		t.Fatalf("progress output missing final state:\n%s", out)
	}
	if !strings.Contains(out, "done") {
		t.Fatalf("no final line:\n%s", out)
	}
	// Disabled forms.
	if StartProgress(&buf, nil, "x", time.Second) != nil {
		t.Fatal("nil recorder started a ticker")
	}
	if StartProgress(nil, r, "x", time.Second) != nil {
		t.Fatal("nil writer started a ticker")
	}
	var np *Progress
	np.Stop()
}
