package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is a stderr ticker for long corpus runs: every interval it
// prints units done/total plus the degraded/quarantined counts, and a
// final line when stopped. It reads the recorder's atomic progress
// counters, so it never contends with workers.
type Progress struct {
	w        io.Writer
	rec      *Recorder
	label    string
	interval time.Duration
	start    time.Time

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// StartProgress launches the ticker. A nil recorder returns a nil
// Progress whose Stop is a no-op, so call sites need no branching.
func StartProgress(w io.Writer, rec *Recorder, label string, interval time.Duration) *Progress {
	if rec == nil || w == nil {
		return nil
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	p := &Progress{
		w:        w,
		rec:      rec,
		label:    label,
		interval: interval,
		start:    rec.clock(),
		stop:     make(chan struct{}),
	}
	p.wg.Add(1)
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer p.wg.Done()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.print(false)
		case <-p.stop:
			return
		}
	}
}

func (p *Progress) print(final bool) {
	done, total, deg, quar := p.rec.Progress()
	elapsed := p.rec.clock().Sub(p.start).Round(100 * time.Millisecond)
	suffix := ""
	if deg+quar > 0 {
		suffix = fmt.Sprintf(" (%d degraded, %d quarantined)", deg, quar)
	}
	verb := "…"
	if final {
		verb = " done"
	}
	fmt.Fprintf(p.w, "seal: %s %d/%d units%s %v%s\n", p.label, done, total, suffix, elapsed, verb)
}

// Stop halts the ticker and prints the final progress line. Idempotent
// and nil-safe.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.once.Do(func() {
		close(p.stop)
		p.wg.Wait()
		p.print(true)
	})
}
