package obs

import (
	"context"
	"runtime/pprof"
	"sync"
	"testing"
	"time"
)

// fakeClock yields a monotonically advancing fake time, stepping by step
// on every reading, so span durations are pinned and deterministic.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{now: time.Unix(1700000000, 0), step: step}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

func TestNilRecorderIsFullyDisabled(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Registry() != nil {
		t.Fatal("nil recorder has a registry")
	}
	// Every call below must be a no-op, not a panic.
	run := r.StartRun("infer")
	run.End()
	u := r.Unit("infer", "p1")
	u.StartStage("parse").End()
	u.SetOutcome(OutcomeDegraded, "step-budget")
	u.SetCounts(1, 2)
	u.SetAttempts(2)
	u.Annotate("k", "v")
	u.AddStage("slice", time.Second, 3)
	u.EndWithSpend(10, 20)
	if got := u.Children(); got != nil {
		t.Fatalf("nil span children = %v", got)
	}
	r.SetUnitsTotal(5)
	if d, tot, deg, q := r.Progress(); d+tot+deg+q != 0 {
		t.Fatal("nil recorder has progress")
	}
	if r.BuildManifest("infer", 1, nil, 5) != nil {
		t.Fatal("nil recorder built a manifest")
	}
	if r.Run() != nil {
		t.Fatal("nil recorder returned a run span")
	}
}

func TestSpanHierarchyAndDurations(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	r := NewWithClock(clk.Now)
	if !r.Enabled() {
		t.Fatal("recorder not enabled")
	}
	run := r.StartRun("detect")
	u := r.Unit("detect", "iface:ops.prepare")
	st := u.StartStage("slice")
	st.End()
	if st.Dur <= 0 {
		t.Fatalf("stage duration = %v, want > 0", st.Dur)
	}
	u.SetCounts(3, 1)
	u.SetAttempts(2)
	u.Annotate("truncated", "path-cap")
	u.EndWithSpend(42, 1024)
	if u.Outcome != OutcomeOK {
		t.Fatalf("outcome = %q, want ok default", u.Outcome)
	}
	if u.Steps != 42 || u.Mem != 1024 {
		t.Fatalf("spend = %d/%d, want 42/1024", u.Steps, u.Mem)
	}
	run.End()
	kids := run.Children()
	if len(kids) != 1 || kids[0] != u {
		t.Fatalf("run children = %v", kids)
	}
	if got := u.Children(); len(got) != 1 || got[0].Name != "slice" {
		t.Fatalf("unit children = %v", got)
	}
	// End is idempotent: duration must not change.
	d := run.Dur
	run.End()
	if run.Dur != d {
		t.Fatal("second End changed the duration")
	}
}

func TestRunAutoStarts(t *testing.T) {
	r := New()
	run := r.Run()
	if run == nil || run.Name != "run" {
		t.Fatalf("auto run = %+v", run)
	}
	if r.Run() != run {
		t.Fatal("Run is not stable")
	}
	named := r.StartRun("eval")
	if r.Run() != named {
		t.Fatal("StartRun did not replace the root")
	}
}

func TestProgressCounters(t *testing.T) {
	r := New()
	r.SetUnitsTotal(3)
	r.Unit("infer", "a").End()
	b := r.Unit("infer", "b")
	b.SetOutcome(OutcomeDegraded, "step-budget")
	b.End()
	c := r.Unit("infer", "c")
	c.SetOutcome(OutcomeQuarantined, "panic")
	c.End()
	done, total, deg, quar := r.Progress()
	if done != 3 || total != 3 || deg != 1 || quar != 1 {
		t.Fatalf("progress = %d/%d deg=%d quar=%d", done, total, deg, quar)
	}
}

func TestConcurrentSpanRecording(t *testing.T) {
	// Span/counter recording from many goroutines must be race-free; run
	// under -race in CI.
	r := New()
	r.StartRun("detect")
	reg := r.Registry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				u := r.Unit("detect", "unit")
				u.StartStage("slice").End()
				u.Annotate("k", "v")
				u.EndWithSpend(int64(i), 0)
				reg.Counter("seal_test_total", "").Inc()
				reg.Gauge("seal_test_gauge", "").Set(float64(i))
				reg.Histogram("seal_test_seconds", "", nil).Observe(float64(i) / 100)
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("seal_test_total", "").Value(); got != 400 {
		t.Fatalf("counter = %d, want 400", got)
	}
	if got := len(r.Run().Children()); got != 400 {
		t.Fatalf("recorded %d unit spans, want 400", got)
	}
	m := r.BuildManifest("detect", 8, nil, 3)
	if m.Outcomes.OK != 400 {
		t.Fatalf("manifest ok = %d, want 400", m.Outcomes.OK)
	}
	if len(m.Slowest) != 3 {
		t.Fatalf("slowest = %d entries, want 3", len(m.Slowest))
	}
}

func TestWithUnitLabels(t *testing.T) {
	var stage, unit string
	WithUnitLabels(nil, "detect", "iface:ops.prepare", func(ctx context.Context) {
		stage, _ = pprof.Label(ctx, "seal_stage")
		unit, _ = pprof.Label(ctx, "seal_unit")
	})
	if stage != "detect" || unit != "iface:ops.prepare" {
		t.Fatalf("labels = %q/%q", stage, unit)
	}
}
