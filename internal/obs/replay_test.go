package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestReplayUnitReproducesRedactedManifest is the merge-fidelity contract:
// replaying a run's unit manifests into a fresh recorder (what the
// coordinator does with each shard's response) must produce a manifest
// indistinguishable from the original after substrate redaction — same
// identities, outcomes, reasons, counts, attempts, annotations.
func TestReplayUnitReproducesRedactedManifest(t *testing.T) {
	orig := buildSample(t, 4)

	r := New()
	r.StartRun("detect")
	r.SetUnitsTotal(len(orig.Units))
	for _, u := range orig.Units {
		r.ReplayUnit(u)
	}
	replayed := r.BuildManifest("detect", 4, map[string]string{"target": "/tmp/tree"}, 2)
	replayed.SetCache(CacheStats{PDGEnsureCalls: 9, PDGBuilds: 3, PathCacheHits: 5, PathCacheMisses: 5, PathHitRatePct: 50})

	want, err := orig.RedactSubstrate().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	got, err := replayed.RedactSubstrate().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("replayed manifest diverges after substrate redaction.\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Spot-check the load-bearing fields survive replay directly, not just
	// via redacted equality.
	if replayed.Outcomes != orig.Outcomes {
		t.Fatalf("outcomes = %+v, want %+v", replayed.Outcomes, orig.Outcomes)
	}
	for i, u := range replayed.Units {
		o := orig.Units[i]
		if u.ID != o.ID || u.Outcome != o.Outcome || u.Reason != o.Reason ||
			u.Attempts != o.Attempts || u.Specs != o.Specs || u.Bugs != o.Bugs {
			t.Fatalf("unit %d = %+v, want %+v", i, u, o)
		}
		if len(u.Annots) != len(o.Annots) {
			t.Fatalf("unit %d annotations = %+v, want %+v", i, u.Annots, o.Annots)
		}
	}
}

// TestReplayUnitNilRecorder checks replay is a safe no-op when
// observability is disabled.
func TestReplayUnitNilRecorder(t *testing.T) {
	var r *Recorder
	r.ReplayUnit(UnitManifest{ID: "api:x", Stage: "detect"}) // must not panic
}

// TestManifestShardsRedaction pins the placement rule for shard
// provenance: it serializes in the raw manifest (operators see which
// worker ran what) and is dropped by Redact (byte-identity comparisons
// span arrangements).
func TestManifestShardsRedaction(t *testing.T) {
	m := buildSample(t, 2)
	m.Shards = []ShardManifest{
		{Shard: 0, Addr: "http://127.0.0.1:1", Groups: 3, Specs: 5, Outcome: "ok", Attempts: 1, WallMS: 12.5, Bugs: 2},
		{Shard: 1, Addr: "http://127.0.0.1:2", Groups: 1, Specs: 2, Outcome: "lost", Reason: "connection refused", Attempts: 2},
	}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"shards"`) || !strings.Contains(string(raw), "connection refused") {
		t.Fatalf("raw manifest does not serialize shard provenance: %s", raw)
	}
	if red := m.Redact(); red.Shards != nil {
		t.Fatalf("Redact kept shards: %+v", red.Shards)
	}
	if red := m.RedactSubstrate(); red.Shards != nil {
		t.Fatalf("RedactSubstrate kept shards: %+v", red.Shards)
	}
	// Round trip: a worker-side manifest decoded by the coordinator keeps
	// the shard section intact.
	var back Manifest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Shards) != 2 || back.Shards[1].Reason != "connection refused" {
		t.Fatalf("shards did not round-trip: %+v", back.Shards)
	}
}

// TestRedactSubstrateTimingsZeroesSubstrateCounters checks the metrics
// counterpart: PDG arrangement-dependent counters are zeroed (line
// structure preserved), while arrangement-invariant counters keep their
// values.
func TestRedactSubstrateTimingsZeroesSubstrateCounters(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("seal_pdg_ensure_calls_total", "").Add(9)
	reg.Counter("seal_pdg_builds_total", "").Add(3)
	reg.Counter("seal_detect_bugs_total", "").Add(7)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	prom := sb.String()

	plain := RedactTimings(prom)
	if !strings.Contains(plain, "seal_pdg_builds_total 3") {
		t.Fatalf("plain redaction zeroed a non-volatile counter:\n%s", plain)
	}
	sub := RedactSubstrateTimings(prom)
	for _, want := range []string{"seal_pdg_ensure_calls_total 0", "seal_pdg_builds_total 0", "seal_detect_bugs_total 7"} {
		if !strings.Contains(sub, want) {
			t.Fatalf("substrate redaction missing %q:\n%s", want, sub)
		}
	}
	for _, name := range []string{"seal_pdg_ensure_calls_total", "seal_pdg_builds_total"} {
		if !SubstrateMetric(name) {
			t.Fatalf("SubstrateMetric(%q) = false", name)
		}
	}
	if SubstrateMetric("seal_detect_bugs_total") {
		t.Fatal(`SubstrateMetric("seal_detect_bugs_total") = true`)
	}
}
