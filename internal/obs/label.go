package obs

import (
	"context"
	"runtime/pprof"
)

// WithUnitLabels runs fn with pprof goroutine labels identifying the
// pipeline stage and unit of work, so CPU profiles (-cpuprofile)
// attribute samples to the spec scope or patch being analyzed. Labels are
// restored when fn returns. This is per-unit, not per-operation: the cost
// is one label-set swap per unit of work.
func WithUnitLabels(ctx context.Context, stage, unit string, fn func(context.Context)) {
	if ctx == nil {
		ctx = context.Background()
	}
	pprof.Do(ctx, pprof.Labels("seal_stage", stage, "seal_unit", unit), fn)
}
