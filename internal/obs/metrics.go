package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a process-local metric registry: typed counters, gauges and
// histograms, registered by name on first use and exportable as
// Prometheus text format. All methods and instruments are safe for
// concurrent use and nil-safe (a nil *Registry hands out nil instruments;
// nil instruments are no-ops).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name, help: help}
		r.counters[name] = c
	}
	return c
}

// Add increases the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for the nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float metric (rates, ratios, sizes).
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name, help: help}
		r.gauges[name] = g
	}
	return g
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the gauge value (0 for the nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultDurationBuckets are the histogram bucket upper bounds used for
// stage and unit durations, in seconds.
var DefaultDurationBuckets = []float64{
	0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1, 5, 30, 120,
}

// Histogram is a fixed-bucket distribution metric.
type Histogram struct {
	name, help string
	mu         sync.Mutex
	bounds     []float64 // ascending upper bounds; +Inf implicit
	counts     []int64   // len(bounds)+1
	sum        float64
	count      int64
}

// Histogram returns (registering on first use) the named histogram. A nil
// or empty bucket list uses DefaultDurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if len(buckets) == 0 {
			buckets = DefaultDurationBuckets
		}
		bounds := make([]float64, len(buckets))
		copy(bounds, buckets)
		sort.Float64s(bounds)
		h = &Histogram{name: name, help: help, bounds: bounds, counts: make([]int64, len(bounds)+1)}
		r.histograms[name] = h
	}
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Snapshot returns every counter and gauge value by name (histograms are
// export-only). Used to embed the registry state in the run manifest.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges))
	for n, c := range r.counters {
		out[n] = float64(c.v.Load())
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	return out
}

// formatFloat renders a metric value the Prometheus way.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format, metrics sorted by name so the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	kind := make(map[string]string)
	for n := range r.counters {
		names = append(names, n)
		kind[n] = "counter"
	}
	for n := range r.gauges {
		names = append(names, n)
		kind[n] = "gauge"
	}
	for n := range r.histograms {
		names = append(names, n)
		kind[n] = "histogram"
	}
	sort.Strings(names)

	for _, n := range names {
		switch kind[n] {
		case "counter":
			c := r.counters[n]
			if err := writeHeader(w, n, c.help, "counter"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", n, c.v.Load()); err != nil {
				return err
			}
		case "gauge":
			g := r.gauges[n]
			if err := writeHeader(w, n, g.help, "gauge"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", n, formatFloat(g.Value())); err != nil {
				return err
			}
		case "histogram":
			h := r.histograms[n]
			if err := writeHeader(w, n, h.help, "histogram"); err != nil {
				return err
			}
			h.mu.Lock()
			cum := int64(0)
			for i, b := range h.bounds {
				cum += h.counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, formatFloat(b), cum); err != nil {
					h.mu.Unlock()
					return err
				}
			}
			cum += h.counts[len(h.bounds)]
			_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
				n, cum, n, formatFloat(h.sum), n, h.count)
			h.mu.Unlock()
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

// RedactTimings normalizes a Prometheus text export for golden
// comparison: every sample of a volatile metric (durations, persistent
// cache counters, solver-memo counters, the in-run path-cache family —
// see VolatileMetric) has its value replaced with 0. Comments, metric
// names, and bucket labels are preserved, so a redacted export still pins
// the full metric structure.
func RedactTimings(prom string) string {
	return redactMetrics(prom, VolatileMetric)
}

// RedactSubstrateTimings is RedactTimings plus the substrate-dependent
// counters: PDG ensure/build figures depend on how region groups were
// arranged over substrates (one shared graph, or one private graph per
// shard worker — a function reachable from groups on two shards is built
// twice), so comparisons across those arrangements zero them too. It is
// the metrics-text counterpart of Manifest.RedactSubstrate.
func RedactSubstrateTimings(prom string) string {
	return redactMetrics(prom, func(name string) bool {
		return VolatileMetric(name) || SubstrateMetric(name)
	})
}

// SubstrateMetric reports whether a metric counts work whose volume
// depends on how region groups were arranged over analysis substrates.
func SubstrateMetric(name string) bool {
	switch name {
	case "seal_pdg_ensure_calls_total", "seal_pdg_builds_total":
		return true
	}
	return false
}

// redactMetrics zeroes the value of every sample line whose metric name
// matches, preserving line structure so redacted outputs stay diffable.
func redactMetrics(prom string, match func(string) bool) string {
	lines := strings.Split(prom, "\n")
	for i, line := range lines {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		name := line[:sp]
		if j := strings.IndexByte(name, '{'); j >= 0 {
			name = name[:j]
		}
		if match(name) {
			lines[i] = line[:sp+1] + "0"
		}
	}
	return strings.Join(lines, "\n")
}
