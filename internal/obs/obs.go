// Package obs is the pipeline's observability substrate: hierarchical
// spans (run → patch → stage, run → region-group → stage) with
// monotonic-clock durations and budget-spend deltas, a typed
// counter/gauge/histogram registry exportable as Prometheus text, a JSON
// run manifest recording inputs and per-unit outcomes, a stderr progress
// ticker for long corpus runs, and pprof goroutine-label helpers.
//
// The package is zero-dependency (stdlib only) and every entry point is
// nil-receiver-safe: a nil *Recorder, *Span, *Counter, … is the disabled
// instrument, so call sites on hot paths pay a single pointer check and
// never a clock read when observability is off.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span kinds.
const (
	KindRun   = "run"
	KindUnit  = "unit"
	KindStage = "stage"
)

// Unit outcomes, in manifest vocabulary.
const (
	OutcomeOK          = "ok"
	OutcomeDegraded    = "degraded"
	OutcomeQuarantined = "quarantined"
	OutcomeSkipped     = "skipped"
)

// Recorder is the root of one observed run. Create with New, thread
// through the pipeline, then export with BuildManifest and the Registry's
// WritePrometheus. A nil *Recorder disables everything.
type Recorder struct {
	mu    sync.Mutex
	clock func() time.Time
	reg   *Registry
	run   *Span

	unitsTotal  atomic.Int64
	unitsDone   atomic.Int64
	degraded    atomic.Int64
	quarantined atomic.Int64
}

// New creates a live recorder using the real monotonic clock.
func New() *Recorder { return NewWithClock(time.Now) }

// NewWithClock creates a recorder with an injected clock (tests pin
// durations with a fake clock; production uses New).
func NewWithClock(clock func() time.Time) *Recorder {
	if clock == nil {
		clock = time.Now
	}
	return &Recorder{clock: clock, reg: NewRegistry()}
}

// Enabled reports whether the recorder is live.
func (r *Recorder) Enabled() bool { return r != nil }

// Registry returns the recorder's metric registry (nil when disabled; a
// nil *Registry hands out nil instruments, which are no-ops).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// StartRun opens the root span. Command names the CLI verb or API entry
// point ("infer", "detect"). Calling StartRun twice replaces the root.
func (r *Recorder) StartRun(command string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{rec: r, Kind: KindRun, Name: command, start: r.clock()}
	r.mu.Lock()
	r.run = s
	r.mu.Unlock()
	return s
}

// Run returns the current root span, opening an unnamed one on first use
// so library-level instrumentation works without a CLI in front of it.
func (r *Recorder) Run() *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	s := r.run
	r.mu.Unlock()
	if s == nil {
		return r.StartRun("run")
	}
	return s
}

// Unit opens a unit span (one patch, one detection region group) under the
// current run. Safe to call from concurrent workers.
func (r *Recorder) Unit(stage, id string) *Span {
	if r == nil {
		return nil
	}
	return r.Run().child(KindUnit, id, stage)
}

// SetUnitsTotal sets the progress denominator.
func (r *Recorder) SetUnitsTotal(n int) {
	if r != nil {
		r.unitsTotal.Store(int64(n))
	}
}

// Progress returns (done, total, degraded, quarantined) for tickers.
func (r *Recorder) Progress() (done, total, degraded, quarantined int64) {
	if r == nil {
		return 0, 0, 0, 0
	}
	return r.unitsDone.Load(), r.unitsTotal.Load(), r.degraded.Load(), r.quarantined.Load()
}

// Annot is one key/value annotation on a span (truncation notes,
// degradation reasons, retry markers).
type Annot struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed node of the run hierarchy. Durations come from the
// recorder's monotonic clock; Steps/Mem are budget-spend deltas the
// instrumentation sites attach. All methods are nil-safe.
type Span struct {
	rec    *Recorder
	parent *Span

	Kind  string // KindRun | KindUnit | KindStage
	Name  string // command, unit id, or stage name
	Stage string // pipeline stage of a unit ("infer", "detect")

	start time.Time
	ended bool
	Dur   time.Duration

	// Steps / Mem are the unit-budget spend deltas attributed to this span.
	Steps int64
	Mem   int64

	// Unit verdict fields (Kind == KindUnit).
	Outcome  string
	Reason   string
	Attempts int
	Specs    int
	Bugs     int

	Annots   []Annot
	children []*Span
}

// child creates and registers a sub-span.
func (s *Span) child(kind, name, stage string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{rec: s.rec, parent: s, Kind: kind, Name: name, Stage: stage, start: s.rec.clock()}
	s.rec.mu.Lock()
	s.children = append(s.children, c)
	s.rec.mu.Unlock()
	return c
}

// StartStage opens a stage span under this span.
func (s *Span) StartStage(name string) *Span {
	if s == nil {
		return nil
	}
	return s.child(KindStage, name, "")
}

// End closes the span, fixing its duration. Idempotent; a unit span with
// no outcome yet is marked ok and counted toward run progress.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.Dur = s.rec.clock().Sub(s.start)
	if s.Kind == KindUnit {
		if s.Outcome == "" {
			s.Outcome = OutcomeOK
		}
		s.rec.unitsDone.Add(1)
		switch s.Outcome {
		case OutcomeDegraded:
			s.rec.degraded.Add(1)
		case OutcomeQuarantined:
			s.rec.quarantined.Add(1)
		}
	}
}

// EndWithSpend is End plus the unit-budget spend attribution.
func (s *Span) EndWithSpend(steps, mem int64) {
	if s == nil {
		return
	}
	s.Steps, s.Mem = steps, mem
	s.End()
}

// AddStage records an already-measured stage (accumulated clocks such as
// the detector's slice/solve timers) as a closed child span.
func (s *Span) AddStage(name string, d time.Duration, steps int64) {
	if s == nil {
		return
	}
	c := s.child(KindStage, name, "")
	c.ended = true
	c.Dur = d
	c.Steps = steps
}

// SetOutcome sets the unit verdict (ok/degraded/quarantined/skipped) and
// the machine-readable reason.
func (s *Span) SetOutcome(outcome, reason string) {
	if s == nil {
		return
	}
	s.Outcome, s.Reason = outcome, reason
}

// SetCounts attaches the unit's result sizes (specs inferred or checked,
// bugs reported).
func (s *Span) SetCounts(specs, bugs int) {
	if s == nil {
		return
	}
	s.Specs, s.Bugs = specs, bugs
}

// SetAttempts records how many times the unit was tried (2 after a
// halved-budget retry).
func (s *Span) SetAttempts(n int) {
	if s == nil {
		return
	}
	s.Attempts = n
}

// Annotate appends a key/value annotation (truncations, degradations).
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	s.Annots = append(s.Annots, Annot{Key: key, Value: value})
	s.rec.mu.Unlock()
}

// Children returns the recorded sub-spans (a copy, safe to range while
// workers still record).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.rec.mu.Lock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	s.rec.mu.Unlock()
	return out
}
