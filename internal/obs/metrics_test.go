package obs

import (
	"strings"
	"testing"
)

func TestNilRegistryInstruments(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "")
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	g := reg.Gauge("y", "")
	g.Set(1.5)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	h := reg.Histogram("z", "", nil)
	h.Observe(1)
	if h.Count() != 0 {
		t.Fatal("nil histogram holds samples")
	}
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshots")
	}
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryReuseAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("seal_a_total", "help a")
	a.Add(2)
	if b := reg.Counter("seal_a_total", "ignored"); b != a {
		t.Fatal("same-name counter not shared")
	}
	reg.Gauge("seal_ratio", "").Set(0.5)
	snap := reg.Snapshot()
	if snap["seal_a_total"] != 2 || snap["seal_ratio"] != 0.5 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestHistogramBucketing(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("seal_dur_seconds", "", []float64{1, 10})
	for _, v := range []float64{0.5, 1.0, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`seal_dur_seconds_bucket{le="1"} 2`, // 0.5 and the boundary 1.0
		`seal_dur_seconds_bucket{le="10"} 3`,
		`seal_dur_seconds_bucket{le="+Inf"} 4`,
		`seal_dur_seconds_sum 106.5`,
		`seal_dur_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusDeterministicOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("seal_z_total", "last").Inc()
	reg.Gauge("seal_a_gauge", "first").Set(3)
	reg.Histogram("seal_m_seconds", "mid", []float64{1})
	var one, two strings.Builder
	if err := reg.WritePrometheus(&one); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatal("two exports differ")
	}
	out := one.String()
	ia := strings.Index(out, "seal_a_gauge")
	im := strings.Index(out, "seal_m_seconds")
	iz := strings.Index(out, "seal_z_total")
	if !(ia < im && im < iz) {
		t.Fatalf("metrics not name-sorted:\n%s", out)
	}
	for _, want := range []string{
		"# HELP seal_a_gauge first",
		"# TYPE seal_a_gauge gauge",
		"# TYPE seal_m_seconds histogram",
		"# TYPE seal_z_total counter",
		"seal_a_gauge 3",
		"seal_z_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
}

func TestRedactTimings(t *testing.T) {
	in := strings.Join([]string{
		"# HELP seal_unit_duration_seconds unit wall time",
		"# TYPE seal_unit_duration_seconds histogram",
		`seal_unit_duration_seconds_bucket{le="0.001"} 2`,
		`seal_unit_duration_seconds_bucket{le="+Inf"} 7`,
		"seal_unit_duration_seconds_sum 1.25",
		"seal_unit_duration_seconds_count 7",
		"seal_units_total 7",
		"",
	}, "\n")
	got := RedactTimings(in)
	want := strings.Join([]string{
		"# HELP seal_unit_duration_seconds unit wall time",
		"# TYPE seal_unit_duration_seconds histogram",
		`seal_unit_duration_seconds_bucket{le="0.001"} 0`,
		`seal_unit_duration_seconds_bucket{le="+Inf"} 0`,
		"seal_unit_duration_seconds_sum 0",
		"seal_unit_duration_seconds_count 0",
		"seal_units_total 7",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("redacted =\n%s\nwant:\n%s", got, want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		3:      "3",
		0.5:    "0.5",
		106.5:  "106.5",
		1e15:   "1e+15",
		-2:     "-2",
		0.0001: "0.0001",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
