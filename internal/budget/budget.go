// Package budget provides the fault-isolation and resource-metering layer
// of the pipeline: per-unit-of-work budgets (wall-clock deadline, analysis
// steps, approximate memory, path/depth caps), panic containment that
// converts a crashing unit into a structured FailureRecord, and the
// Degradation records that mark results cut short by a budget instead of
// silently truncating them.
//
// A "unit of work" is one patch during inference or one region group
// during detection. The contract the rest of the pipeline builds on: one
// pathological unit degrades or quarantines that one unit — never the run.
package budget

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Limits configures the per-unit resource budget. The zero value means
// "unlimited": no deadline, no step/memory caps, library-default path and
// depth caps.
type Limits struct {
	// UnitTimeout is the wall-clock deadline of one unit of work (one
	// patch in inference, one region group in detection). 0 = none.
	UnitTimeout time.Duration
	// MaxSteps caps analysis steps: slicer node expansions, PDG subgraph
	// builds, and solver conjunct scans all charge against it. 0 = none.
	MaxSteps int64
	// MaxMemBytes caps the approximate bytes a unit may retain for path
	// storage (and is what allocation-spike fault injection charges
	// against). 0 = none.
	MaxMemBytes int64
	// MaxPaths caps value-flow paths per slicing criterion (0 = the
	// slicer's default).
	MaxPaths int
	// MaxDepth caps slicing depth per direction (0 = the slicer's
	// default).
	MaxDepth int
	// Retry re-runs a quarantined unit once with a halved budget: a
	// deterministic crash fails again quickly and cheaply, while a
	// load-induced failure (allocation spike, scheduling stall) may
	// succeed within the tighter envelope.
	Retry bool
	// MaxFailures aborts the whole run once more than this many units
	// have been quarantined (0 = keep going regardless).
	MaxFailures int
}

// Enabled reports whether any limit is configured.
func (l Limits) Enabled() bool {
	return l.UnitTimeout > 0 || l.MaxSteps > 0 || l.MaxMemBytes > 0 ||
		l.MaxPaths > 0 || l.MaxDepth > 0
}

// Halved returns the limits with deadline and quantitative caps halved
// (floored at 1 where a zero would mean "unlimited").
func (l Limits) Halved() Limits {
	h := l
	if h.UnitTimeout > 0 {
		h.UnitTimeout /= 2
	}
	if h.MaxSteps > 0 {
		h.MaxSteps = max64(1, h.MaxSteps/2)
	}
	if h.MaxMemBytes > 0 {
		h.MaxMemBytes = max64(1, h.MaxMemBytes/2)
	}
	if h.MaxPaths > 1 {
		h.MaxPaths /= 2
	}
	if h.MaxDepth > 1 {
		h.MaxDepth /= 2
	}
	return h
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Reason classifies why a unit was degraded or quarantined.
type Reason string

// Reasons.
const (
	// ReasonPanic: the unit panicked and was quarantined.
	ReasonPanic Reason = "panic"
	// ReasonDeadline: the unit's wall-clock deadline expired.
	ReasonDeadline Reason = "deadline"
	// ReasonCanceled: the surrounding run was canceled.
	ReasonCanceled Reason = "canceled"
	// ReasonSteps: the analysis-step budget ran out.
	ReasonSteps Reason = "step-budget"
	// ReasonMemory: the approximate memory budget ran out.
	ReasonMemory Reason = "memory-budget"
	// ReasonPaths: the per-criterion path cap truncated enumeration.
	ReasonPaths Reason = "path-cap"
	// ReasonDepth: the slicing depth cap truncated enumeration.
	ReasonDepth Reason = "depth-cap"
	// ReasonError: the unit failed with an ordinary error (e.g. a
	// malformed patch).
	ReasonError Reason = "error"
	// ReasonShardLost: the unit's shard worker crashed, hung past its
	// dispatch deadline, or became unreachable; the coordinator
	// quarantined every region group assigned to that shard.
	ReasonShardLost Reason = "shard-lost"
)

// ErrExhausted reports a tripped budget dimension.
type ErrExhausted struct {
	Reason Reason
	Spent  int64
	Limit  int64
}

// Error implements error.
func (e *ErrExhausted) Error() string {
	if e.Limit > 0 {
		return fmt.Sprintf("budget exhausted: %s (%d of %d)", e.Reason, e.Spent, e.Limit)
	}
	return fmt.Sprintf("budget exhausted: %s", e.Reason)
}

// deadlineCheckInterval amortizes context polling: the deadline is checked
// once per this many steps, keeping Step to one atomic add on the fast
// path.
const deadlineCheckInterval = 256

// Budget meters one unit of work. All methods are safe for concurrent use
// and nil-receiver-safe: a nil *Budget is the unlimited budget, so hot
// loops can guard with a single pointer check.
type Budget struct {
	ctx    context.Context
	cancel context.CancelFunc
	limits Limits

	steps atomic.Int64
	mem   atomic.Int64
	// exhausted latches the first budget trip (first reason wins).
	exhausted atomic.Pointer[ErrExhausted]
}

// New creates a budget for one unit of work, deriving a deadline context
// from parent when limits configure one. Callers must Close it.
func New(parent context.Context, l Limits) *Budget {
	if parent == nil {
		parent = context.Background()
	}
	b := &Budget{limits: l}
	if l.UnitTimeout > 0 {
		b.ctx, b.cancel = context.WithTimeout(parent, l.UnitTimeout)
	} else {
		b.ctx, b.cancel = context.WithCancel(parent)
	}
	return b
}

// Close releases the budget's deadline timer.
func (b *Budget) Close() {
	if b != nil && b.cancel != nil {
		b.cancel()
	}
}

// Context returns the unit's deadline context (context.Background for the
// nil budget).
func (b *Budget) Context() context.Context {
	if b == nil {
		return context.Background()
	}
	return b.ctx
}

// Limits returns the configured limits (zero for the nil budget).
func (b *Budget) Limits() Limits {
	if b == nil {
		return Limits{}
	}
	return b.limits
}

// Step charges n analysis steps and reports the first exhaustion (step
// budget overrun, deadline expiry, or cancellation). Once exhausted it
// keeps returning the same error, so traversals bail out quickly.
func (b *Budget) Step(n int64) error {
	if b == nil {
		return nil
	}
	if e := b.exhausted.Load(); e != nil {
		return e
	}
	total := b.steps.Add(n)
	if b.limits.MaxSteps > 0 && total > b.limits.MaxSteps {
		return b.trip(&ErrExhausted{Reason: ReasonSteps, Spent: total, Limit: b.limits.MaxSteps})
	}
	if total%deadlineCheckInterval < n {
		return b.checkCtx()
	}
	return nil
}

// Grow charges approximately n bytes against the memory budget.
func (b *Budget) Grow(n int64) error {
	if b == nil {
		return nil
	}
	if e := b.exhausted.Load(); e != nil {
		return e
	}
	total := b.mem.Add(n)
	if b.limits.MaxMemBytes > 0 && total > b.limits.MaxMemBytes {
		return b.trip(&ErrExhausted{Reason: ReasonMemory, Spent: total, Limit: b.limits.MaxMemBytes})
	}
	return nil
}

// checkCtx converts a done context into a latched exhaustion.
func (b *Budget) checkCtx() error {
	switch b.ctx.Err() {
	case nil:
		return nil
	case context.DeadlineExceeded:
		return b.trip(&ErrExhausted{Reason: ReasonDeadline})
	default:
		return b.trip(&ErrExhausted{Reason: ReasonCanceled})
	}
}

// trip latches the first exhaustion and returns the winning record.
func (b *Budget) trip(e *ErrExhausted) *ErrExhausted {
	if b.exhausted.CompareAndSwap(nil, e) {
		return e
	}
	return b.exhausted.Load()
}

// Err returns the latched exhaustion, checking the deadline first so
// callers between work items notice expiry even without stepping.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	if e := b.exhausted.Load(); e != nil {
		return e
	}
	if err := b.checkCtx(); err != nil {
		return err
	}
	return nil
}

// Exhausted returns the latched exhaustion record (nil when within
// budget). Unlike Err it does not poll the deadline.
func (b *Budget) Exhausted() *ErrExhausted {
	if b == nil {
		return nil
	}
	return b.exhausted.Load()
}

// Spend is a point-in-time snapshot of a budget's consumption, used to
// attribute resource deltas to observability spans and run manifests.
type Spend struct {
	Steps    int64 `json:"steps"`
	MemBytes int64 `json:"mem_bytes,omitempty"`
}

// Spend snapshots the budget's current consumption (zero for the nil
// budget).
func (b *Budget) Spend() Spend {
	return Spend{Steps: b.StepsSpent(), MemBytes: b.MemSpent()}
}

// StepsSpent returns the steps charged so far.
func (b *Budget) StepsSpent() int64 {
	if b == nil {
		return 0
	}
	return b.steps.Load()
}

// MemSpent returns the approximate bytes charged so far.
func (b *Budget) MemSpent() int64 {
	if b == nil {
		return 0
	}
	return b.mem.Load()
}

// FailureRecord is the structured quarantine record of one failed unit of
// work: what crashed, where, and how much budget it had consumed.
type FailureRecord struct {
	// Unit identifies the quarantined unit (a patch ID, or a detection
	// region scope such as "iface:vb2_ops.buf_prepare").
	Unit string `json:"unit"`
	// Stage is the pipeline stage ("infer" or "detect").
	Stage string `json:"stage"`
	// Reason classifies the failure (panic, deadline, error, …).
	Reason Reason `json:"reason"`
	// Detail carries the panic value or error text.
	Detail string `json:"detail,omitempty"`
	// Stack is the goroutine stack at the panic site.
	Stack string `json:"stack,omitempty"`
	// StepsSpent / MemSpent are the budget consumed before failing.
	StepsSpent int64 `json:"steps_spent"`
	MemSpent   int64 `json:"mem_spent,omitempty"`
	// Attempts counts how many times the unit was tried (2 after a
	// halved-budget retry also failed).
	Attempts int `json:"attempts"`
}

// String renders a one-line summary.
func (f *FailureRecord) String() string {
	return fmt.Sprintf("%s unit %q quarantined: %s (%s; %d steps, attempt %d)",
		f.Stage, f.Unit, f.Reason, f.Detail, f.StepsSpent, f.Attempts)
}

// Degradation marks a unit whose results were produced but cut short by a
// budget: downstream consumers can tell "nothing there" from "ran out".
type Degradation struct {
	Unit   string `json:"unit"`
	Stage  string `json:"stage"`
	Reason Reason `json:"reason"`
	Detail string `json:"detail,omitempty"`
}

// String renders a one-line summary.
func (d Degradation) String() string {
	return fmt.Sprintf("%s unit %q degraded: %s (%s)", d.Stage, d.Unit, d.Reason, d.Detail)
}

// Protect runs one unit of work under panic containment. A panic is
// converted into a FailureRecord (with the budget spent and the stack);
// an error return is converted likewise, classifying budget and deadline
// errors by reason. A nil return means the unit completed — though it may
// still be Degraded if the budget's Exhausted record is set.
func Protect(stage, unit string, b *Budget, fn func() error) (fr *FailureRecord) {
	defer func() {
		if r := recover(); r != nil {
			fr = &FailureRecord{
				Unit:       unit,
				Stage:      stage,
				Reason:     ReasonPanic,
				Detail:     fmt.Sprint(r),
				Stack:      string(debug.Stack()),
				StepsSpent: b.StepsSpent(),
				MemSpent:   b.MemSpent(),
				Attempts:   1,
			}
		}
	}()
	if err := fn(); err != nil {
		return &FailureRecord{
			Unit:       unit,
			Stage:      stage,
			Reason:     ClassifyErr(err),
			Detail:     err.Error(),
			StepsSpent: b.StepsSpent(),
			MemSpent:   b.MemSpent(),
			Attempts:   1,
		}
	}
	return nil
}

// ClassifyErr maps an error to a failure reason: budget exhaustions keep
// their dimension, context errors map to deadline/cancellation, anything
// else is an ordinary error.
func ClassifyErr(err error) Reason {
	var ex *ErrExhausted
	if errors.As(err, &ex) {
		return ex.Reason
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return ReasonDeadline
	}
	if errors.Is(err, context.Canceled) {
		return ReasonCanceled
	}
	return ReasonError
}
