package budget

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	if err := b.Step(1 << 40); err != nil {
		t.Fatalf("nil Step: %v", err)
	}
	if err := b.Grow(1 << 40); err != nil {
		t.Fatalf("nil Grow: %v", err)
	}
	if err := b.Err(); err != nil {
		t.Fatalf("nil Err: %v", err)
	}
	if b.Exhausted() != nil {
		t.Fatal("nil Exhausted should be nil")
	}
	if b.Context() == nil {
		t.Fatal("nil Context should be Background, not nil")
	}
	if b.StepsSpent() != 0 || b.MemSpent() != 0 {
		t.Fatal("nil budget spent counters should be zero")
	}
	b.Close() // must not panic
}

func TestStepBudgetLatches(t *testing.T) {
	b := New(context.Background(), Limits{MaxSteps: 10})
	defer b.Close()
	if err := b.Step(10); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := b.Step(1)
	var ex *ErrExhausted
	if !errors.As(err, &ex) || ex.Reason != ReasonSteps {
		t.Fatalf("over budget: got %v, want step-budget exhaustion", err)
	}
	// Latched: further charges keep returning the same first record.
	if err2 := b.Step(1); !errors.Is(err2, err) {
		t.Fatalf("second trip %v not latched to first %v", err2, err)
	}
	if got := b.Exhausted(); got == nil || got.Reason != ReasonSteps {
		t.Fatalf("Exhausted() = %v", got)
	}
}

func TestMemoryBudget(t *testing.T) {
	b := New(context.Background(), Limits{MaxMemBytes: 100})
	defer b.Close()
	if err := b.Grow(100); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := b.Grow(1)
	var ex *ErrExhausted
	if !errors.As(err, &ex) || ex.Reason != ReasonMemory {
		t.Fatalf("over budget: got %v, want memory-budget exhaustion", err)
	}
	if b.MemSpent() != 101 {
		t.Fatalf("MemSpent = %d", b.MemSpent())
	}
}

func TestDeadlineTripsStep(t *testing.T) {
	b := New(context.Background(), Limits{UnitTimeout: time.Millisecond})
	defer b.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		// Charge past a deadline-check boundary each iteration.
		if err := b.Step(deadlineCheckInterval); err != nil {
			var ex *ErrExhausted
			if !errors.As(err, &ex) || ex.Reason != ReasonDeadline {
				t.Fatalf("got %v, want deadline exhaustion", err)
			}
			return
		}
	}
	t.Fatal("deadline never tripped Step")
}

func TestCancelTripsErr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx, Limits{UnitTimeout: time.Hour})
	defer b.Close()
	cancel()
	err := b.Err()
	var ex *ErrExhausted
	if !errors.As(err, &ex) || ex.Reason != ReasonCanceled {
		t.Fatalf("got %v, want canceled exhaustion", err)
	}
}

func TestHalved(t *testing.T) {
	l := Limits{UnitTimeout: 4 * time.Second, MaxSteps: 100, MaxMemBytes: 1, MaxPaths: 8, MaxDepth: 1, Retry: true, MaxFailures: 3}
	h := l.Halved()
	if h.UnitTimeout != 2*time.Second || h.MaxSteps != 50 || h.MaxPaths != 4 {
		t.Fatalf("Halved = %+v", h)
	}
	if h.MaxMemBytes != 1 {
		t.Fatalf("MaxMemBytes halved to %d; must floor at 1, not fall to unlimited", h.MaxMemBytes)
	}
	if h.MaxDepth != 1 {
		t.Fatalf("MaxDepth halved to %d; must floor at 1", h.MaxDepth)
	}
	if !h.Retry || h.MaxFailures != 3 {
		t.Fatal("Halved must not alter Retry/MaxFailures")
	}
	if (Limits{}).Enabled() {
		t.Fatal("zero Limits must report disabled")
	}
	if !l.Enabled() {
		t.Fatal("configured Limits must report enabled")
	}
}

func TestProtectPanic(t *testing.T) {
	b := New(context.Background(), Limits{MaxSteps: 100})
	defer b.Close()
	_ = b.Step(7)
	fr := Protect("detect", "iface:foo.bar", b, func() error {
		panic("boom")
	})
	if fr == nil {
		t.Fatal("panic not captured")
	}
	if fr.Reason != ReasonPanic || fr.Detail != "boom" {
		t.Fatalf("record = %+v", fr)
	}
	if fr.Unit != "iface:foo.bar" || fr.Stage != "detect" {
		t.Fatalf("record identity = %q/%q", fr.Stage, fr.Unit)
	}
	if !strings.Contains(fr.Stack, "budget_test") {
		t.Fatalf("stack does not reference the panic site:\n%s", fr.Stack)
	}
	if fr.StepsSpent != 7 {
		t.Fatalf("StepsSpent = %d", fr.StepsSpent)
	}
}

func TestProtectErrorClassification(t *testing.T) {
	cases := []struct {
		err  error
		want Reason
	}{
		{&ErrExhausted{Reason: ReasonSteps}, ReasonSteps},
		{fmt.Errorf("wrapped: %w", &ErrExhausted{Reason: ReasonMemory}), ReasonMemory},
		{context.DeadlineExceeded, ReasonDeadline},
		{context.Canceled, ReasonCanceled},
		{errors.New("parse failure"), ReasonError},
	}
	for _, c := range cases {
		fr := Protect("infer", "p1", nil, func() error { return c.err })
		if fr == nil || fr.Reason != c.want {
			t.Errorf("Protect(%v) reason = %v, want %v", c.err, fr, c.want)
		}
	}
	if fr := Protect("infer", "p1", nil, func() error { return nil }); fr != nil {
		t.Errorf("successful unit produced %v", fr)
	}
}

func TestFailureRecordStrings(t *testing.T) {
	fr := &FailureRecord{Unit: "p1", Stage: "infer", Reason: ReasonPanic, Detail: "boom", StepsSpent: 3, Attempts: 2}
	if s := fr.String(); !strings.Contains(s, "p1") || !strings.Contains(s, "panic") {
		t.Errorf("FailureRecord.String() = %q", s)
	}
	d := Degradation{Unit: "u", Stage: "detect", Reason: ReasonSteps, Detail: "x"}
	if s := d.String(); !strings.Contains(s, "degraded") || !strings.Contains(s, "step-budget") {
		t.Errorf("Degradation.String() = %q", s)
	}
}
