package progindex

import (
	"testing"

	"seal/internal/cir"
	"seal/internal/ir"
	"seal/internal/kernelgen"
)

func corpusProg(t *testing.T) *ir.Program {
	t.Helper()
	corpus := kernelgen.Generate(kernelgen.DefaultConfig())
	var files []*cir.File
	for _, name := range corpus.SortedFileNames() {
		f, err := cir.ParseFile(name, corpus.Files[name])
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	prog, err := ir.NewProgram(files...)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestIndexMatchesScan cross-checks every index structure against the
// brute-force statement scans it replaces.
func TestIndexMatchesScan(t *testing.T) {
	prog := corpusProg(t)
	ix := Build(prog)

	for _, fn := range prog.FuncList {
		fi := ix.Func(fn)
		if fi == nil {
			t.Fatalf("no FuncIndex for %s", fn.Name)
		}

		// Calls by callee + first-occurrence callee names.
		wantCalls := make(map[string][]*ir.Stmt)
		var wantNames []string
		nameSeen := make(map[string]bool)
		var wantDefined []*ir.Func
		definedSeen := make(map[*ir.Func]bool)
		wantLits := make(map[int64][]*ir.Stmt)
		for _, s := range fn.Stmts() {
			switch s.Kind {
			case ir.StCall:
				if s.Callee == "" {
					continue
				}
				wantCalls[s.Callee] = append(wantCalls[s.Callee], s)
				if !nameSeen[s.Callee] {
					nameSeen[s.Callee] = true
					wantNames = append(wantNames, s.Callee)
				}
				if callee, ok := prog.Funcs[s.Callee]; ok && !definedSeen[callee] {
					definedSeen[callee] = true
					wantDefined = append(wantDefined, callee)
				}
			case ir.StAssign:
				if lit, ok := s.RHS.(*cir.IntLit); ok {
					wantLits[lit.Val] = append(wantLits[lit.Val], s)
				}
			case ir.StReturn:
				if lit, ok := s.X.(*cir.IntLit); ok {
					wantLits[lit.Val] = append(wantLits[lit.Val], s)
				}
			}
		}
		if len(fi.CallsByCallee) != len(wantCalls) {
			t.Errorf("%s: CallsByCallee has %d callees, want %d", fn.Name, len(fi.CallsByCallee), len(wantCalls))
		}
		for name, want := range wantCalls {
			got := fi.CallsByCallee[name]
			if len(got) != len(want) {
				t.Errorf("%s: calls to %s = %d, want %d", fn.Name, name, len(got), len(want))
				continue
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s: call %d to %s differs", fn.Name, i, name)
				}
			}
		}
		if len(fi.CalleeNames) != len(wantNames) {
			t.Errorf("%s: CalleeNames = %v, want %v", fn.Name, fi.CalleeNames, wantNames)
		} else {
			for i := range wantNames {
				if fi.CalleeNames[i] != wantNames[i] {
					t.Errorf("%s: CalleeNames[%d] = %s, want %s", fn.Name, i, fi.CalleeNames[i], wantNames[i])
				}
			}
		}
		if len(fi.DefinedCallees) != len(wantDefined) {
			t.Errorf("%s: DefinedCallees count = %d, want %d", fn.Name, len(fi.DefinedCallees), len(wantDefined))
		} else {
			for i := range wantDefined {
				if fi.DefinedCallees[i] != wantDefined[i] {
					t.Errorf("%s: DefinedCallees[%d] differs", fn.Name, i)
				}
			}
		}
		for val, want := range wantLits {
			got := fi.IntLits[val]
			if len(got) != len(want) {
				t.Errorf("%s: IntLits[%d] = %d stmts, want %d", fn.Name, val, len(got), len(want))
				continue
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s: IntLits[%d][%d] differs", fn.Name, val, i)
				}
			}
		}

		// Param defs.
		var wantParams []*ir.Stmt
		for _, ps := range fn.Entry.Stmts {
			if ps.IsParamDef() {
				wantParams = append(wantParams, ps)
			}
		}
		if len(fi.ParamDefs) != len(wantParams) {
			t.Errorf("%s: ParamDefs = %d, want %d", fn.Name, len(fi.ParamDefs), len(wantParams))
		}
	}

	// CallersOf matches Program.CallersOfAPI-style discovery (distinct
	// functions, sorted by name).
	for _, api := range []string{"kmalloc", "kfree", "dma_alloc_coherent"} {
		seen := make(map[*ir.Func]bool)
		for _, call := range prog.CallersOfAPI(api) {
			seen[call.Fn] = true
		}
		got := ix.CallersOf(api)
		if len(got) != len(seen) {
			t.Errorf("CallersOf(%s) = %d funcs, want %d", api, len(got), len(seen))
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].Name >= got[i].Name {
				t.Errorf("CallersOf(%s) not sorted at %d", api, i)
			}
		}
		for _, f := range got {
			if !seen[f] {
				t.Errorf("CallersOf(%s) includes %s, which has no direct call", api, f.Name)
			}
		}
	}

	if ix.Lookups() == 0 {
		t.Error("lookup counter did not advance")
	}
}

// TestReadsGlobalsPrefilter: the syntactic global-read prefilter must cover
// every function whose flow analysis can surface an unrooted global use.
func TestReadsGlobalsPrefilter(t *testing.T) {
	prog := corpusProg(t)
	ix := Build(prog)
	for _, fn := range prog.FuncList {
		fi := ix.Func(fn)
		for _, s := range fn.Stmts() {
			for _, u := range effectiveGlobalReads(fn, s) {
				if !fi.ReadsGlobals[u] {
					t.Errorf("%s reads global %s but prefilter misses it", fn.Name, u)
				}
			}
		}
	}
}

func effectiveGlobalReads(fn *ir.Func, s *ir.Stmt) []string {
	var out []string
	for _, u := range s.Uses {
		if u.Base.Kind == ir.VarGlobal && !u.HasDeref() {
			out = append(out, u.Base.Name)
		}
	}
	return out
}
