// Package progindex builds program-wide lookup structures over an
// ir.Program once, so that detection does not rescan every statement of
// every function for each (spec, region) pair. The index is immutable
// after Build and therefore safe to share across any number of concurrent
// detector workers; an atomic counter records how many lookups it served
// (exposed through detect.Stats for the benchmark harness).
package progindex

import (
	"sort"
	"sync/atomic"

	"seal/internal/cir"
	"seal/internal/dataflow"
	"seal/internal/ir"
)

// FuncIndex holds the per-function lookup structures.
type FuncIndex struct {
	// CallsByCallee maps a direct callee name to the call statements, in
	// statement order.
	CallsByCallee map[string][]*ir.Stmt
	// CalleeNames lists the distinct direct callee names in order of first
	// occurrence (used for the equivalent-post-operation hint).
	CalleeNames []string
	// DefinedCallees lists the distinct defined callees in order of first
	// occurrence (the expansion order of region closures).
	DefinedCallees []*ir.Func
	// IntLits maps an integer literal value to the assign/return statements
	// mentioning it, in statement order.
	IntLits map[int64][]*ir.Stmt
	// ParamDefs lists the entry parameter-definition nodes.
	ParamDefs []*ir.Stmt
	// ReadsGlobals records which globals the function reads directly (a
	// sound prefilter for the flow-based global-source scan: a function
	// without a syntactic read cannot have an unrooted use of the global).
	ReadsGlobals map[string]bool
}

// Index is the program-wide index.
type Index struct {
	prog    *ir.Program
	fns     map[*ir.Func]*FuncIndex
	callers map[string][]*ir.Func // callee name -> distinct calling funcs, sorted by name

	lookups atomic.Int64
}

// Build constructs the index for prog. It makes a single pass over every
// statement; everything it produces is deterministic (statement order and
// name order only).
func Build(prog *ir.Program) *Index {
	ix := &Index{
		prog:    prog,
		fns:     make(map[*ir.Func]*FuncIndex, len(prog.FuncList)),
		callers: make(map[string][]*ir.Func),
	}
	callerSeen := make(map[string]map[*ir.Func]bool)
	for _, fn := range prog.FuncList {
		fi := &FuncIndex{
			CallsByCallee: make(map[string][]*ir.Stmt),
			IntLits:       make(map[int64][]*ir.Stmt),
			ReadsGlobals:  make(map[string]bool),
		}
		ix.fns[fn] = fi
		for _, ps := range fn.Entry.Stmts {
			if ps.IsParamDef() {
				fi.ParamDefs = append(fi.ParamDefs, ps)
			}
		}
		calleeSeen := make(map[string]bool)
		definedSeen := make(map[*ir.Func]bool)
		for _, s := range fn.Stmts() {
			switch s.Kind {
			case ir.StCall:
				if s.Callee == "" {
					break
				}
				fi.CallsByCallee[s.Callee] = append(fi.CallsByCallee[s.Callee], s)
				if !calleeSeen[s.Callee] {
					calleeSeen[s.Callee] = true
					fi.CalleeNames = append(fi.CalleeNames, s.Callee)
				}
				if callee, ok := prog.Funcs[s.Callee]; ok && !definedSeen[callee] {
					definedSeen[callee] = true
					fi.DefinedCallees = append(fi.DefinedCallees, callee)
				}
				if callerSeen[s.Callee] == nil {
					callerSeen[s.Callee] = make(map[*ir.Func]bool)
				}
				if !callerSeen[s.Callee][fn] {
					callerSeen[s.Callee][fn] = true
					ix.callers[s.Callee] = append(ix.callers[s.Callee], fn)
				}
			case ir.StAssign:
				if lit, ok := s.RHS.(*cir.IntLit); ok {
					fi.IntLits[lit.Val] = append(fi.IntLits[lit.Val], s)
				}
			case ir.StReturn:
				if lit, ok := s.X.(*cir.IntLit); ok {
					fi.IntLits[lit.Val] = append(fi.IntLits[lit.Val], s)
				}
			}
			for _, u := range dataflow.EffectiveUses(fn, s) {
				if u.Base.Kind == ir.VarGlobal && !u.HasDeref() {
					fi.ReadsGlobals[u.Base.Name] = true
				}
			}
		}
	}
	for _, funcs := range ix.callers {
		sort.Slice(funcs, func(i, j int) bool { return funcs[i].Name < funcs[j].Name })
	}
	return ix
}

// Func returns the per-function index (nil for functions not in the
// program).
func (ix *Index) Func(fn *ir.Func) *FuncIndex {
	ix.lookups.Add(1)
	return ix.fns[fn]
}

// CallersOf returns the distinct functions containing a direct call to
// name, sorted by function name. The returned slice is shared — callers
// must not mutate it.
func (ix *Index) CallersOf(name string) []*ir.Func {
	ix.lookups.Add(1)
	return ix.callers[name]
}

// Lookups returns how many index queries were served so far.
func (ix *Index) Lookups() int64 {
	return ix.lookups.Load()
}
