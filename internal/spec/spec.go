// Package spec implements the interface-specification formulation of paper
// Fig. 2: quantified constraints over path relations (reachability v ↪^c u
// and order precedence u1 ≺ u2) between abstract values V (interface
// arguments, API returns, globals, literals, and their fields) and uses U
// (API arguments, interface returns, global stores, deref/div/index sites).
// Specifications serialize to JSON so an inferred database is reusable
// across runs (paper §8.4: inference is a one-time effort).
package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"seal/internal/solver"
)

// ValueKind enumerates the V domain of Fig. 2.
type ValueKind int

// Value kinds.
const (
	// VIfaceArg is argⁱ: the k-th argument of a function-pointer interface.
	VIfaceArg ValueKind = iota
	// VAPIRet is ret^f: the return value of an API.
	VAPIRet
	// VGlobal is g: a global variable.
	VGlobal
	// VLiteral is l: a constant such as -ENOMEM.
	VLiteral
	// VUninit is the distinguished "uninitialized memory" value used for
	// uninitialized-value specifications.
	VUninit
)

var valueKindNames = map[ValueKind]string{
	VIfaceArg: "iface-arg", VAPIRet: "api-ret", VGlobal: "global",
	VLiteral: "literal", VUninit: "uninit",
}

// String implements fmt.Stringer.
func (k ValueKind) String() string { return valueKindNames[k] }

// Value is an element of domain V, optionally narrowed to a field path.
type Value struct {
	Kind     ValueKind `json:"kind"`
	Iface    string    `json:"iface,omitempty"`    // VIfaceArg: "vb2_ops.buf_prepare"
	ArgIndex int       `json:"argIndex,omitempty"` // VIfaceArg
	API      string    `json:"api,omitempty"`      // VAPIRet
	Global   string    `json:"global,omitempty"`   // VGlobal
	Lit      int64     `json:"lit,omitempty"`      // VLiteral
	// Field is the byte-offset path below the base value ("@8" = field at
	// offset 8; "@*" = any offset). Empty means the value itself.
	Field string `json:"field,omitempty"`
}

// Key returns the canonical symbol name for the value (used both as the
// spec identity and as the solver symbol in abstracted conditions).
func (v Value) Key() string {
	base := ""
	switch v.Kind {
	case VIfaceArg:
		base = fmt.Sprintf("arg%d[%s]", v.ArgIndex, v.Iface)
	case VAPIRet:
		base = fmt.Sprintf("ret[%s]", v.API)
	case VGlobal:
		base = fmt.Sprintf("global[%s]", v.Global)
	case VLiteral:
		base = fmt.Sprintf("lit[%d]", v.Lit)
	case VUninit:
		base = "uninit"
	}
	if v.Field != "" {
		base += v.Field
	}
	return base
}

// String implements fmt.Stringer.
func (v Value) String() string { return v.Key() }

// UseKind enumerates the U domain of Fig. 2.
type UseKind int

// Use kinds.
const (
	// UAPIArg is arg^f: passed to an API as argument k.
	UAPIArg UseKind = iota
	// UIfaceRet is retⁱ: returned by the interface implementation.
	UIfaceRet
	// UGlobalStore assigns to a global.
	UGlobalStore
	// UDeref dereferences the value.
	UDeref
	// UIndex uses the value in array indexing / offset arithmetic.
	UIndex
	// UDiv divides by the value.
	UDiv
	// UParamStore stores the value through a pointer argument of the
	// interface (an output buffer).
	UParamStore
)

var useKindNames = map[UseKind]string{
	UAPIArg: "api-arg", UIfaceRet: "iface-ret", UGlobalStore: "global-store",
	UDeref: "deref", UIndex: "index", UDiv: "div", UParamStore: "param-store",
}

// String implements fmt.Stringer.
func (k UseKind) String() string { return useKindNames[k] }

// Use is an element of domain U.
type Use struct {
	Kind     UseKind `json:"kind"`
	API      string  `json:"api,omitempty"`      // UAPIArg
	ArgIndex int     `json:"argIndex,omitempty"` // UAPIArg / UParamStore
	Iface    string  `json:"iface,omitempty"`    // UIfaceRet / UParamStore
	Global   string  `json:"global,omitempty"`   // UGlobalStore
}

// Key returns the canonical identity of the use.
func (u Use) Key() string {
	switch u.Kind {
	case UAPIArg:
		return fmt.Sprintf("arg%d[%s]", u.ArgIndex, u.API)
	case UIfaceRet:
		return fmt.Sprintf("ret[%s]", u.Iface)
	case UGlobalStore:
		return fmt.Sprintf("store[%s]", u.Global)
	case UDeref:
		return "deref"
	case UIndex:
		return "index"
	case UDiv:
		return "div"
	case UParamStore:
		return fmt.Sprintf("pstore%d[%s]", u.ArgIndex, u.Iface)
	}
	return "?"
}

// String implements fmt.Stringer.
func (u Use) String() string { return u.Key() }

// RelKind enumerates path-relation constructors R of Fig. 2.
type RelKind int

// Relation kinds.
const (
	// RelReach is the reachability relation v ↪^c u.
	RelReach RelKind = iota
	// RelOrder is the combined form ¬(v↪u1 ∧ v↪u2 ∧ u2 ≺ u1) used by
	// order specifications (paper Example 4.3).
	RelOrder
)

// Relation is a path relation instance.
type Relation struct {
	Kind RelKind `json:"kind"`
	V    Value   `json:"v"`
	U    Use     `json:"u"`            // RelReach
	U1   Use     `json:"u1,omitempty"` // RelOrder: the later use (forbidden after U2)
	U2   Use     `json:"u2,omitempty"` // RelOrder: the earlier use
	// Cond is the abstracted path condition c over canonical value symbols
	// (serialized via CondJSON).
	Cond     solver.Formula `json:"-"`
	CondJSON *CondNode      `json:"cond,omitempty"`
}

// String renders the relation in the paper's notation.
func (r Relation) String() string {
	switch r.Kind {
	case RelReach:
		c := solver.String(r.Cond)
		if c == "true" {
			return fmt.Sprintf("%s ↪ %s", r.V, r.U)
		}
		return fmt.Sprintf("%s ↪ %s under (%s)", r.V, r.U, c)
	case RelOrder:
		return fmt.Sprintf("(%s ↪ %s) ∧ (%s ↪ %s) ∧ (%s ≺ %s)",
			r.V, r.U1, r.V, r.U2, r.U2.Key(), r.U1.Key())
	}
	return "?"
}

// Constraint is a quantified relation: Forbidden constraints (∄) are
// violated when a matching realization exists; Required constraints (∀/∃
// removed-negation relations) are violated when none exists.
type Constraint struct {
	Forbidden bool     `json:"forbidden"`
	Rel       Relation `json:"rel"`
}

// String implements fmt.Stringer.
func (c Constraint) String() string {
	if c.Forbidden {
		return "∄: " + c.Rel.String()
	}
	return "∀: " + c.Rel.String()
}

// Origin classifies which path-change category produced a specification
// (paper §8.2 reports relation counts per origin).
type Origin string

// Origins.
const (
	OriginRemoved   Origin = "P-"
	OriginAdded     Origin = "P+"
	OriginCondition Origin = "PΨ"
	OriginOrder     Origin = "PΩ"
)

// Spec is one interface specification.
type Spec struct {
	ID string `json:"id"`
	// Iface is the function-pointer interface the spec is scoped to
	// ("vb2_ops.buf_prepare"); empty for API-scoped specs that apply at
	// every usage of API (paper §5 Remark).
	Iface string `json:"iface,omitempty"`
	// API is the primary API involved (detection region key for
	// API-scoped specs; context for interface-scoped ones).
	API         string     `json:"api,omitempty"`
	Constraint  Constraint `json:"constraint"`
	Origin      Origin     `json:"origin"`
	OriginPatch string     `json:"originPatch,omitempty"`
}

// Scope returns the detection-region key.
func (s *Spec) Scope() string {
	if s.Iface != "" {
		return "iface:" + s.Iface
	}
	return "api:" + s.API
}

// Key is a dedup identity for the spec (scope + constraint rendering).
func (s *Spec) Key() string {
	return s.Scope() + " | " + s.Constraint.String()
}

// String implements fmt.Stringer.
func (s *Spec) String() string {
	return fmt.Sprintf("[%s] %s :: %s (from %s, %s)", s.ID, s.Scope(), s.Constraint, s.OriginPatch, s.Origin)
}

// DB is a serializable specification database.
type DB struct {
	Specs []*Spec `json:"specs"`
}

// Dedup removes duplicate specs by Key, keeping first occurrences.
func (db *DB) Dedup() {
	seen := make(map[string]bool, len(db.Specs))
	var out []*Spec
	for _, s := range db.Specs {
		k := s.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	db.Specs = out
}

// MarshalJSON serializes the DB with conditions in tree form. It works on
// shallow spec copies (Relation is a value field) so marshaling never
// writes to the shared spec objects — a DB is serialized for content
// hashing while concurrent detections read the very same specs.
func (db *DB) MarshalJSON() ([]byte, error) {
	type alias DB
	out := alias{Specs: make([]*Spec, len(db.Specs))}
	for i, s := range db.Specs {
		cp := *s
		cp.Constraint.Rel.CondJSON = CondToNode(s.Constraint.Rel.Cond)
		out.Specs[i] = &cp
	}
	return json.Marshal(out)
}

// Hash is the content fingerprint of the database: the hex SHA-256 of
// its JSON serialization (conditions in tree form). Every layer that
// identifies a spec set by content — detection cache keys, serve request
// envelopes, spec-store shard references — goes through this one
// function, so the fingerprints agree across processes.
func (db *DB) Hash() (string, error) {
	data, err := json.Marshal(db)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// UnmarshalJSON restores conditions from tree form.
func (db *DB) UnmarshalJSON(data []byte) error {
	type alias DB
	if err := json.Unmarshal(data, (*alias)(db)); err != nil {
		return err
	}
	for _, s := range db.Specs {
		s.Constraint.Rel.Cond = NodeToCond(s.Constraint.Rel.CondJSON)
	}
	return nil
}

// CondNode is the JSON form of a solver formula.
type CondNode struct {
	Op   string      `json:"op"` // true,false,atom,not,and,or
	Cmp  string      `json:"cmp,omitempty"`
	A    *TermNode   `json:"a,omitempty"`
	B    *TermNode   `json:"b,omitempty"`
	Kids []*CondNode `json:"kids,omitempty"`
}

// TermNode is the JSON form of a solver term.
type TermNode struct {
	Sym string    `json:"sym,omitempty"`
	C   *int64    `json:"c,omitempty"`
	Op  string    `json:"op,omitempty"` // add,sub,mul
	A   *TermNode `json:"a,omitempty"`
	B   *TermNode `json:"b,omitempty"`
}

// CondToNode converts a formula to its JSON tree.
func CondToNode(f solver.Formula) *CondNode {
	switch x := f.(type) {
	case nil, solver.TrueF:
		return &CondNode{Op: "true"}
	case solver.FalseF:
		return &CondNode{Op: "false"}
	case solver.Atom:
		return &CondNode{Op: "atom", Cmp: x.Op.String(), A: termToNode(x.A), B: termToNode(x.B)}
	case solver.Not:
		return &CondNode{Op: "not", Kids: []*CondNode{CondToNode(x.F)}}
	case solver.And:
		n := &CondNode{Op: "and"}
		for _, k := range x.Fs {
			n.Kids = append(n.Kids, CondToNode(k))
		}
		return n
	case solver.Or:
		n := &CondNode{Op: "or"}
		for _, k := range x.Fs {
			n.Kids = append(n.Kids, CondToNode(k))
		}
		return n
	}
	return &CondNode{Op: "true"}
}

func termToNode(t solver.Term) *TermNode {
	switch x := t.(type) {
	case solver.Const:
		v := x.Val
		return &TermNode{C: &v}
	case solver.Sym:
		return &TermNode{Sym: x.Name}
	case solver.BinTerm:
		op := "add"
		switch x.Op {
		case solver.TSub:
			op = "sub"
		case solver.TMul:
			op = "mul"
		}
		return &TermNode{Op: op, A: termToNode(x.A), B: termToNode(x.B)}
	}
	return &TermNode{Sym: "?"}
}

// NodeToCond converts the JSON tree back to a formula.
func NodeToCond(n *CondNode) solver.Formula {
	if n == nil {
		return solver.TrueF{}
	}
	switch n.Op {
	case "true":
		return solver.TrueF{}
	case "false":
		return solver.FalseF{}
	case "atom":
		var op solver.CmpOp
		switch n.Cmp {
		case "==":
			op = solver.OpEq
		case "!=":
			op = solver.OpNe
		case "<":
			op = solver.OpLt
		case "<=":
			op = solver.OpLe
		case ">":
			op = solver.OpGt
		case ">=":
			op = solver.OpGe
		}
		return solver.Atom{Op: op, A: nodeToTerm(n.A), B: nodeToTerm(n.B)}
	case "not":
		if len(n.Kids) == 1 {
			return solver.MkNot(NodeToCond(n.Kids[0]))
		}
	case "and":
		var fs []solver.Formula
		for _, k := range n.Kids {
			fs = append(fs, NodeToCond(k))
		}
		return solver.MkAnd(fs...)
	case "or":
		var fs []solver.Formula
		for _, k := range n.Kids {
			fs = append(fs, NodeToCond(k))
		}
		return solver.MkOr(fs...)
	}
	return solver.TrueF{}
}

func nodeToTerm(n *TermNode) solver.Term {
	if n == nil {
		return solver.Const{Val: 0}
	}
	if n.C != nil {
		return solver.Const{Val: *n.C}
	}
	if n.Sym != "" {
		return solver.Sym{Name: n.Sym}
	}
	var op solver.TermOp
	switch n.Op {
	case "add":
		op = solver.TAdd
	case "sub":
		op = solver.TSub
	case "mul":
		op = solver.TMul
	}
	return solver.BinTerm{Op: op, A: nodeToTerm(n.A), B: nodeToTerm(n.B)}
}

// FieldString renders a byte-offset path as the spec field suffix.
func FieldString(offsets []int) string {
	var sb strings.Builder
	for _, o := range offsets {
		if o < 0 {
			sb.WriteString("@*")
		} else {
			fmt.Fprintf(&sb, "@%d", o)
		}
	}
	return sb.String()
}
