package spec

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"

	"seal/internal/solver"
)

func sampleSpec() *Spec {
	return &Spec{
		ID:    "p1/S1",
		Iface: "vb2_ops.buf_prepare",
		API:   "dma_alloc_coherent",
		Constraint: Constraint{
			Forbidden: false,
			Rel: Relation{
				Kind: RelReach,
				V:    Value{Kind: VLiteral, Lit: -12},
				U:    Use{Kind: UIfaceRet, Iface: "vb2_ops.buf_prepare"},
				Cond: solver.Atom{
					Op: solver.OpEq,
					A:  solver.Sym{Name: "ret[dma_alloc_coherent]"},
					B:  solver.Const{Val: 0},
				},
			},
		},
		Origin:      OriginAdded,
		OriginPatch: "p1",
	}
}

func TestValueKeys(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Value{Kind: VIfaceArg, Iface: "ops.f", ArgIndex: 2}, "arg2[ops.f]"},
		{Value{Kind: VIfaceArg, Iface: "ops.f", ArgIndex: 1, Field: "@8"}, "arg1[ops.f]@8"},
		{Value{Kind: VAPIRet, API: "kmalloc"}, "ret[kmalloc]"},
		{Value{Kind: VGlobal, Global: "shared"}, "global[shared]"},
		{Value{Kind: VLiteral, Lit: -12}, "lit[-12]"},
		{Value{Kind: VUninit}, "uninit"},
	}
	for _, c := range cases {
		if got := c.v.Key(); got != c.want {
			t.Errorf("Key(%+v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestUseKeys(t *testing.T) {
	cases := []struct {
		u    Use
		want string
	}{
		{Use{Kind: UAPIArg, API: "kfree", ArgIndex: 0}, "arg0[kfree]"},
		{Use{Kind: UIfaceRet, Iface: "ops.f"}, "ret[ops.f]"},
		{Use{Kind: UGlobalStore, Global: "g"}, "store[g]"},
		{Use{Kind: UDeref}, "deref"},
		{Use{Kind: UIndex}, "index"},
		{Use{Kind: UDiv}, "div"},
		{Use{Kind: UParamStore, Iface: "ops.f", ArgIndex: 1}, "pstore1[ops.f]"},
	}
	for _, c := range cases {
		if got := c.u.Key(); got != c.want {
			t.Errorf("Key(%+v) = %q, want %q", c.u, got, c.want)
		}
	}
}

func TestSpecScope(t *testing.T) {
	s := sampleSpec()
	if got := s.Scope(); got != "iface:vb2_ops.buf_prepare" {
		t.Errorf("Scope() = %q", got)
	}
	s.Iface = ""
	if got := s.Scope(); got != "api:dma_alloc_coherent" {
		t.Errorf("API scope = %q", got)
	}
}

func TestDBDedup(t *testing.T) {
	a, b := sampleSpec(), sampleSpec()
	c := sampleSpec()
	c.Constraint.Forbidden = true
	db := &DB{Specs: []*Spec{a, b, c}}
	db.Dedup()
	if len(db.Specs) != 2 {
		t.Fatalf("dedup kept %d specs, want 2", len(db.Specs))
	}
}

func TestJSONRoundTripPreservesCondition(t *testing.T) {
	db := &DB{Specs: []*Spec{sampleSpec()}}
	data, err := json.Marshal(db)
	if err != nil {
		t.Fatal(err)
	}
	var back DB
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Specs) != 1 {
		t.Fatal("lost spec")
	}
	orig := db.Specs[0].Constraint.Rel.Cond
	got := back.Specs[0].Constraint.Rel.Cond
	if !solver.Equiv(orig, got) {
		t.Errorf("condition changed: %s vs %s", solver.String(orig), solver.String(got))
	}
	if back.Specs[0].Key() != db.Specs[0].Key() {
		t.Errorf("spec key changed: %q vs %q", back.Specs[0].Key(), db.Specs[0].Key())
	}
}

// randFormula builds random formulas for the round-trip property test.
func randFormula(r *rand.Rand, depth int) solver.Formula {
	if depth == 0 || r.Intn(3) == 0 {
		mk := func() solver.Term {
			switch r.Intn(3) {
			case 0:
				return solver.Const{Val: int64(r.Intn(11) - 5)}
			case 1:
				return solver.Sym{Name: string(rune('a' + r.Intn(4)))}
			default:
				return solver.BinTerm{
					Op: solver.TermOp(r.Intn(3)),
					A:  solver.Sym{Name: "x"},
					B:  solver.Const{Val: int64(r.Intn(5))},
				}
			}
		}
		ops := []solver.CmpOp{solver.OpEq, solver.OpNe, solver.OpLt, solver.OpLe, solver.OpGt, solver.OpGe}
		return solver.Atom{Op: ops[r.Intn(len(ops))], A: mk(), B: mk()}
	}
	switch r.Intn(3) {
	case 0:
		return solver.MkAnd(randFormula(r, depth-1), randFormula(r, depth-1))
	case 1:
		return solver.MkOr(randFormula(r, depth-1), randFormula(r, depth-1))
	default:
		return solver.MkNot(randFormula(r, depth-1))
	}
}

// Property: CondToNode/NodeToCond round-trips preserve evaluation under
// arbitrary assignments.
func TestCondNodeRoundTripProperty(t *testing.T) {
	check := func(seed int64, a, b, c, d int8) bool {
		r := rand.New(rand.NewSource(seed))
		f := randFormula(r, 3)
		g := NodeToCond(CondToNode(f))
		env := map[string]int64{
			"a": int64(a), "b": int64(b), "c": int64(c), "d": int64(d),
			"x": int64(a) + int64(b),
		}
		return solver.Eval(f, env) == solver.Eval(g, env)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: DB encoding is idempotent — marshal(unmarshal(marshal(db)))
// is byte-identical to marshal(db) under arbitrary conditions. The
// persistent analysis cache depends on this: a warm run writes a spec
// database decoded from a cache entry, and the file must match the cold
// run's byte for byte.
func TestDBEncodeIdempotentProperty(t *testing.T) {
	check := func(seed int64, forbidden bool) bool {
		r := rand.New(rand.NewSource(seed))
		s := sampleSpec()
		s.Constraint.Forbidden = forbidden
		s.Constraint.Rel.Cond = randFormula(r, 3)
		db := &DB{Specs: []*Spec{s}}
		first, err := json.Marshal(db)
		if err != nil {
			return false
		}
		var back DB
		if err := json.Unmarshal(first, &back); err != nil {
			return false
		}
		second, err := json.Marshal(&back)
		if err != nil {
			return false
		}
		return string(first) == string(second)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestFieldString(t *testing.T) {
	if got := FieldString(nil); got != "" {
		t.Errorf("FieldString(nil) = %q", got)
	}
	if got := FieldString([]int{8}); got != "@8" {
		t.Errorf("got %q", got)
	}
	if got := FieldString([]int{0, -1}); got != "@0@*" {
		t.Errorf("got %q", got)
	}
}

func TestConstraintString(t *testing.T) {
	s := sampleSpec()
	str := s.Constraint.String()
	if len(str) == 0 || str[0] == ' ' {
		t.Errorf("constraint string: %q", str)
	}
	forbidden := Constraint{Forbidden: true, Rel: s.Constraint.Rel}
	if forbidden.String()[:3] != "∄" {
		t.Errorf("forbidden constraint should render with ∄: %q", forbidden.String())
	}
}
