package solver

import (
	"math/rand"
	"testing"
	"testing/quick"

	"seal/internal/cir"
)

func sym(n string) Term                     { return Sym{Name: n} }
func k(v int64) Term                        { return Const{Val: v} }
func atom(a Term, op CmpOp, b Term) Formula { return Atom{Op: op, A: a, B: b} }

func TestSatBasics(t *testing.T) {
	x := sym("x")
	cases := []struct {
		f    Formula
		want bool
	}{
		{TrueF{}, true},
		{FalseF{}, false},
		{atom(x, OpEq, k(0)), true},
		{MkAnd(atom(x, OpEq, k(0)), atom(x, OpEq, k(1))), false},
		{MkAnd(atom(x, OpLt, k(0)), atom(x, OpGt, k(0))), false},
		{MkAnd(atom(x, OpLe, k(0)), atom(x, OpGe, k(0))), true},
		{MkAnd(atom(x, OpLe, k(0)), atom(x, OpGe, k(0)), atom(x, OpNe, k(0))), false},
		{MkOr(atom(x, OpLt, k(0)), atom(x, OpGe, k(0))), true},
		{MkAnd(atom(x, OpGt, k(5)), atom(x, OpLt, k(7))), true},  // x == 6
		{MkAnd(atom(x, OpGt, k(5)), atom(x, OpLt, k(6))), false}, // integers!
	}
	for i, c := range cases {
		if got := Sat(c.f); got != c.want {
			t.Errorf("case %d: Sat(%s) = %v, want %v", i, String(c.f), got, c.want)
		}
	}
}

func TestSatDifferenceConstraints(t *testing.T) {
	x, y, z := sym("x"), sym("y"), sym("z")
	// x < y && y < z && z < x is a negative cycle.
	f := MkAnd(atom(x, OpLt, y), atom(y, OpLt, z), atom(z, OpLt, x))
	if Sat(f) {
		t.Error("cyclic strict ordering should be unsat")
	}
	// x <= y && y <= x && x != y.
	g := MkAnd(atom(x, OpLe, y), atom(y, OpLe, x), atom(x, OpNe, y))
	if Sat(g) {
		t.Error("forced equality with disequality should be unsat")
	}
	// x <= y && y <= x is fine.
	h := MkAnd(atom(x, OpLe, y), atom(y, OpLe, x))
	if !Sat(h) {
		t.Error("x == y should be sat")
	}
}

func TestImpliesAndEquiv(t *testing.T) {
	x := sym("x")
	lt5 := atom(x, OpLt, k(5))
	lt10 := atom(x, OpLt, k(10))
	if !Implies(lt5, lt10) {
		t.Error("x<5 should imply x<10")
	}
	if Implies(lt10, lt5) {
		t.Error("x<10 should not imply x<5")
	}
	le4 := atom(x, OpLe, k(4))
	if !Equiv(lt5, le4) {
		t.Error("x<5 and x<=4 are equivalent over integers")
	}
	eq := atom(x, OpEq, k(0))
	ne := atom(x, OpNe, k(0))
	if !Equiv(MkNot(eq), ne) {
		t.Error("!(x==0) should be equivalent to x!=0")
	}
}

func TestDelta(t *testing.T) {
	// Fig. 4: pre-path condition is size==8; post adds len<=MAX. The delta
	// isolates the removed behaviour: size==8 && len>MAX.
	size, length := sym("size"), sym("len")
	pre := atom(size, OpEq, k(8))
	post := MkAnd(atom(size, OpEq, k(8)), atom(length, OpLe, k(32)))
	delta := Delta(pre, post)
	if !Sat(delta) {
		t.Fatal("delta should be satisfiable (len > 32)")
	}
	if !Implies(delta, atom(length, OpGt, k(32))) {
		t.Errorf("delta %s should imply len > 32", String(delta))
	}
	if !Implies(delta, pre) {
		t.Error("delta should imply the pre condition")
	}
	// Delta of identical conditions must be unsat.
	if Sat(Delta(post, post)) {
		t.Error("delta of identical formulas should be unsat")
	}
}

func TestFromCond(t *testing.T) {
	parse := func(src string) cir.Expr {
		f := cir.MustParseFile("t.c", "int g(int x, int y, int len) { return "+src+"; }")
		ret := f.Funcs[0].Body.Stmts[0].(*cir.ReturnStmt)
		return ret.X
	}
	f1 := FromCond(parse("x == 0"), nil)
	if !Sat(f1) || !Equiv(f1, atom(sym("x"), OpEq, k(0))) {
		t.Errorf("x==0 conversion: %s", String(f1))
	}
	f2 := FromCond(parse("!x"), nil)
	if !Equiv(f2, atom(sym("x"), OpEq, k(0))) {
		t.Errorf("!x should mean x==0: %s", String(f2))
	}
	f3 := FromCond(parse("x"), nil)
	if !Equiv(f3, atom(sym("x"), OpNe, k(0))) {
		t.Errorf("bare x should mean x!=0: %s", String(f3))
	}
	f4 := FromCond(parse("x > 0 && (y < 2 || len != 3)"), nil)
	if !Sat(f4) {
		t.Errorf("compound condition should be sat: %s", String(f4))
	}
	// -ENOMEM folds to a constant.
	f5 := FromCond(parse("x == -ENOMEM"), nil)
	if !Equiv(f5, atom(sym("x"), OpEq, k(-12))) {
		t.Errorf("x == -ENOMEM: %s", String(f5))
	}
}

func TestRename(t *testing.T) {
	x := atom(sym("ret_dma"), OpEq, k(0))
	r := Rename(x, map[string]string{"ret_dma": "v0"})
	syms := Symbols(r)
	if len(syms) != 1 || syms[0] != "v0" {
		t.Errorf("renamed symbols: %v", syms)
	}
}

// randFormula builds a random formula over nVars symbols with small
// constants, for brute-force cross-checking.
func randFormula(r *rand.Rand, depth int, nVars int) Formula {
	if depth == 0 || r.Intn(3) == 0 {
		mkTerm := func() Term {
			if r.Intn(3) == 0 {
				return Const{Val: int64(r.Intn(7) - 3)}
			}
			return Sym{Name: string(rune('a' + r.Intn(nVars)))}
		}
		ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		return Atom{Op: ops[r.Intn(len(ops))], A: mkTerm(), B: mkTerm()}
	}
	switch r.Intn(3) {
	case 0:
		return MkAnd(randFormula(r, depth-1, nVars), randFormula(r, depth-1, nVars))
	case 1:
		return MkOr(randFormula(r, depth-1, nVars), randFormula(r, depth-1, nVars))
	default:
		return MkNot(randFormula(r, depth-1, nVars))
	}
}

// TestSatSoundVsBruteForce: if brute force over a small domain finds a
// model, Sat must answer true (the solver must never claim UNSAT for a
// satisfiable formula). This is the soundness property the pipeline
// depends on.
func TestSatSoundVsBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const nVars = 3
	domain := []int64{-4, -3, -2, -1, 0, 1, 2, 3, 4}
	for iter := 0; iter < 500; iter++ {
		f := randFormula(r, 3, nVars)
		bruteSat := false
		env := map[string]int64{}
		var rec func(i int)
		rec = func(i int) {
			if bruteSat {
				return
			}
			if i == nVars {
				if Eval(f, env) {
					bruteSat = true
				}
				return
			}
			for _, v := range domain {
				env[string(rune('a'+i))] = v
				rec(i + 1)
			}
		}
		rec(0)
		if bruteSat && !Sat(f) {
			t.Fatalf("solver claims UNSAT for satisfiable formula: %s", String(f))
		}
	}
}

// TestEquivReflexiveRandom: every formula is equivalent to itself and to
// its double negation.
func TestEquivReflexiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		f := randFormula(r, 3, 3)
		if !Equiv(f, f) {
			t.Fatalf("formula not equivalent to itself: %s", String(f))
		}
		if !Equiv(f, MkNot(MkNot(f))) {
			t.Fatalf("double negation broke equivalence: %s", String(f))
		}
	}
}

// Property: Simplify preserves evaluation.
func TestSimplifyPreservesEval(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	check := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		f := randFormula(rr, 3, 3)
		g := Simplify(f)
		env := map[string]int64{
			"a": int64(r.Intn(9) - 4),
			"b": int64(r.Intn(9) - 4),
			"c": int64(r.Intn(9) - 4),
		}
		return Eval(f, env) == Eval(g, env)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
