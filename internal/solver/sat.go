package solver

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// satChecks counts satisfiability checks process-wide; observability
// exports the per-run delta. One atomic add per check is noise next to the
// DNF expansion each check performs.
var satChecks atomic.Int64

// SatChecks returns the number of satisfiability checks performed since
// process start (Sat and SatBudget, including via Unsat/Implies/Equiv).
// Callers wanting a per-run figure snapshot it before and after.
func SatChecks() int64 { return satChecks.Load() }

// maxDNFConjuncts bounds DNF expansion; beyond it the solver answers
// conservatively ("satisfiable").
const maxDNFConjuncts = 512

// Sat reports whether f is satisfiable over the integers. The procedure is
// exact for boolean combinations of unit-coefficient difference constraints
// (x op c, x op y, x - y op c) — the fragment path conditions live in —
// and conservatively answers true otherwise. Verdicts are memoized under a
// canonical formula signature (see memo.go); SatChecks counts every call,
// memo hit or not, so the counter keeps meaning "checks asked for".
func Sat(f Formula) bool {
	satChecks.Add(1)
	key := canonKey(f)
	if v, ok := memo.get(key); ok {
		satMemoHits.Add(1)
		return v
	}
	satMemoMisses.Add(1)
	v := satRaw(f)
	memo.put(key, v)
	return v
}

// satRaw is the actual decision procedure, bypassing the memo.
func satRaw(f Formula) bool {
	conjs, ok := toDNF(nnf(f))
	if !ok {
		return true // too large: conservative
	}
	for _, conj := range conjs {
		if feasible(conj) {
			return true
		}
	}
	return false
}

// SatBudget is Sat with resource metering: each DNF conjunct's feasibility
// check charges one unit via step (an analysis-step sink, typically
// Budget.Step). On exhaustion it answers conservatively — "satisfiable" —
// exactly like the DNF size cap, so a budgeted run can only keep more
// candidate reports than an unmetered one, never invent unsound pruning.
//
// A metered check deliberately bypasses the Sat memo: whether a unit
// exhausts its budget must depend on its own work, not on which other
// unit happened to warm a process-global cache first — otherwise
// degradation outcomes would vary with scheduling.
func SatBudget(f Formula, step func(int64) error) bool {
	if step == nil {
		return Sat(f)
	}
	satChecks.Add(1)
	conjs, ok := toDNF(nnf(f))
	if !ok {
		return true // too large: conservative
	}
	for _, conj := range conjs {
		if err := step(1 + int64(len(conj))/8); err != nil {
			return true // budget exhausted: conservative
		}
		if feasible(conj) {
			return true
		}
	}
	return false
}

// Unsat reports whether f is definitely unsatisfiable.
func Unsat(f Formula) bool { return !Sat(f) }

// Implies reports whether f entails g (definitely; false may mean unknown).
func Implies(f, g Formula) bool { return Unsat(MkAnd(f, MkNot(g))) }

// Equiv reports whether f and g have the same satisfying sets
// ("evaluating the equivalences of path conditions", paper Alg. 1 line 5).
func Equiv(f, g Formula) bool { return Implies(f, g) && Implies(g, f) }

// Delta computes the delta constraint Ψδ = f ∧ ¬g (paper Alg. 2 line 8):
// the conditions under which the pre-patch path ran but the post-patch one
// does not.
func Delta(f, g Formula) Formula { return MkAnd(f, MkNot(g)) }

// NNF returns the negation normal form of f: negations are pushed into the
// atoms (flipping comparison operators), so the result contains no Not
// nodes. Useful for transformations that rewrite atoms in place.
func NNF(f Formula) Formula { return nnf(f) }

// nnf pushes negations to the atoms.
func nnf(f Formula) Formula {
	switch x := f.(type) {
	case nil:
		return TrueF{}
	case TrueF, FalseF, Atom:
		return x
	case And:
		fs := make([]Formula, len(x.Fs))
		for i, s := range x.Fs {
			fs[i] = nnf(s)
		}
		return MkAnd(fs...)
	case Or:
		fs := make([]Formula, len(x.Fs))
		for i, s := range x.Fs {
			fs[i] = nnf(s)
		}
		return MkOr(fs...)
	case Not:
		switch y := x.F.(type) {
		case TrueF:
			return FalseF{}
		case FalseF:
			return TrueF{}
		case Atom:
			return Atom{Op: y.Op.negate(), A: y.A, B: y.B}
		case Not:
			return nnf(y.F)
		case And:
			fs := make([]Formula, len(y.Fs))
			for i, s := range y.Fs {
				fs[i] = nnf(Not{F: s})
			}
			return MkOr(fs...)
		case Or:
			fs := make([]Formula, len(y.Fs))
			for i, s := range y.Fs {
				fs[i] = nnf(Not{F: s})
			}
			return MkAnd(fs...)
		}
	}
	return f
}

// toDNF expands an NNF formula into a list of conjuncts (each a list of
// atoms). Returns ok=false if the expansion exceeds maxDNFConjuncts.
func toDNF(f Formula) ([][]Atom, bool) {
	switch x := f.(type) {
	case nil, TrueF:
		return [][]Atom{{}}, true
	case FalseF:
		return nil, true
	case Atom:
		return [][]Atom{{x}}, true
	case And:
		acc := [][]Atom{{}}
		for _, sub := range x.Fs {
			subD, ok := toDNF(sub)
			if !ok {
				return nil, false
			}
			var next [][]Atom
			for _, a := range acc {
				for _, b := range subD {
					merged := make([]Atom, 0, len(a)+len(b))
					merged = append(merged, a...)
					merged = append(merged, b...)
					next = append(next, merged)
					if len(next) > maxDNFConjuncts {
						return nil, false
					}
				}
			}
			acc = next
		}
		return acc, true
	case Or:
		var acc [][]Atom
		for _, sub := range x.Fs {
			subD, ok := toDNF(sub)
			if !ok {
				return nil, false
			}
			acc = append(acc, subD...)
			if len(acc) > maxDNFConjuncts {
				return nil, false
			}
		}
		return acc, true
	case Not:
		return toDNF(nnf(x))
	}
	return [][]Atom{{}}, true
}

// linTerm is a linear combination: coeffs over symbol names plus a constant.
type linTerm struct {
	coeffs map[string]int64
	c      int64
}

// linearize converts a term to linear form; non-linear subterms become
// opaque symbols so the result is always usable.
func linearize(t Term) linTerm {
	switch x := t.(type) {
	case Const:
		return linTerm{coeffs: map[string]int64{}, c: x.Val}
	case Sym:
		return linTerm{coeffs: map[string]int64{x.Name: 1}}
	case BinTerm:
		a := linearize(x.A)
		b := linearize(x.B)
		switch x.Op {
		case TAdd:
			return addLin(a, b, 1)
		case TSub:
			return addLin(a, b, -1)
		case TMul:
			if len(a.coeffs) == 0 {
				return scaleLin(b, a.c)
			}
			if len(b.coeffs) == 0 {
				return scaleLin(a, b.c)
			}
			// Non-linear: opaque.
			return linTerm{coeffs: map[string]int64{"#" + x.termString(): 1}}
		}
	}
	return linTerm{coeffs: map[string]int64{"#" + t.termString(): 1}}
}

func addLin(a, b linTerm, sign int64) linTerm {
	out := linTerm{coeffs: make(map[string]int64, len(a.coeffs)+len(b.coeffs)), c: a.c + sign*b.c}
	for k, v := range a.coeffs {
		out.coeffs[k] = v
	}
	for k, v := range b.coeffs {
		out.coeffs[k] += sign * v
		if out.coeffs[k] == 0 {
			delete(out.coeffs, k)
		}
	}
	return out
}

func scaleLin(a linTerm, k int64) linTerm {
	if k == 0 {
		return linTerm{coeffs: map[string]int64{}}
	}
	out := linTerm{coeffs: make(map[string]int64, len(a.coeffs)), c: a.c * k}
	for s, v := range a.coeffs {
		out.coeffs[s] = v * k
	}
	return out
}

const inf = int64(1) << 60

// feasible decides whether a conjunction of atoms has an integer solution,
// using a difference-bound matrix over the involved symbols plus a virtual
// zero, with disequality post-checks.
func feasible(conj []Atom) bool {
	type diseq struct {
		x, y string
		c    int64
	}
	var diseqs []diseq
	// Difference bounds: d[x][y] = upper bound on x - y.
	d := make(map[string]map[string]int64)
	syms := map[string]bool{"0": true}
	bound := func(x, y string, c int64) {
		syms[x], syms[y] = true, true
		m := d[x]
		if m == nil {
			m = make(map[string]int64)
			d[x] = m
		}
		if cur, ok := m[y]; !ok || c < cur {
			m[y] = c
		}
	}

	for _, a := range conj {
		l := addLin(linearize(a.A), linearize(a.B), -1) // A - B
		// l.coeffs · syms + l.c  (op)  0
		switch len(l.coeffs) {
		case 0:
			ok := false
			switch a.Op {
			case OpEq:
				ok = l.c == 0
			case OpNe:
				ok = l.c != 0
			case OpLt:
				ok = l.c < 0
			case OpLe:
				ok = l.c <= 0
			case OpGt:
				ok = l.c > 0
			case OpGe:
				ok = l.c >= 0
			}
			if !ok {
				return false
			}
		case 1:
			var s string
			var k int64
			for name, coef := range l.coeffs {
				s, k = name, coef
			}
			op := a.Op
			c := l.c
			if k < 0 {
				// Multiply both sides of k*s + c (op) 0 by -1.
				k, c = -k, -c
				switch op {
				case OpLt:
					op = OpGt
				case OpLe:
					op = OpGe
				case OpGt:
					op = OpLt
				case OpGe:
					op = OpLe
				}
			}
			// k*s + c (op) 0 with k > 0  =>  s (op) -c/k, integer-rounded.
			switch op {
			case OpEq:
				if c%k != 0 {
					return false
				}
				v := -c / k
				bound(s, "0", v)
				bound("0", s, -v)
			case OpNe:
				if c%k == 0 {
					diseqs = append(diseqs, diseq{x: s, y: "0", c: -c / k})
				}
			case OpLe: // k*s <= -c  => s <= floor(-c/k)
				bound(s, "0", floorDiv(-c, k))
			case OpLt: // s <= ceil(-c/k) - 1 ... s < -c/k => s <= ceil(-c/k)-1
				bound(s, "0", ceilDiv(-c, k)-1)
			case OpGe: // k*s >= -c => s >= ceil(-c/k) => 0 - s <= -ceil(-c/k)
				bound("0", s, -ceilDiv(-c, k))
			case OpGt:
				bound("0", s, -(floorDiv(-c, k) + 1))
			}
		case 2:
			// Try the difference form x - y (coefficients +1/-1).
			var pos, neg string
			okForm := true
			for name, coef := range l.coeffs {
				switch coef {
				case 1:
					if pos != "" {
						okForm = false
					}
					pos = name
				case -1:
					if neg != "" {
						okForm = false
					}
					neg = name
				default:
					okForm = false
				}
			}
			if !okForm || pos == "" || neg == "" {
				continue // conservative: drop constraint
			}
			// pos - neg + c (op) 0.
			c := l.c
			switch a.Op {
			case OpEq:
				bound(pos, neg, -c)
				bound(neg, pos, c)
			case OpNe:
				diseqs = append(diseqs, diseq{x: pos, y: neg, c: -c})
			case OpLe:
				bound(pos, neg, -c)
			case OpLt:
				bound(pos, neg, -c-1)
			case OpGe:
				bound(neg, pos, c)
			case OpGt:
				bound(neg, pos, c-1)
			}
		default:
			// ≥3 symbols: conservatively drop.
			continue
		}
	}

	// Floyd–Warshall closure.
	names := make([]string, 0, len(syms))
	for s := range syms {
		names = append(names, s)
	}
	sort.Strings(names)
	get := func(x, y string) int64 {
		if m, ok := d[x]; ok {
			if v, ok := m[y]; ok {
				return v
			}
		}
		if x == y {
			return 0
		}
		return inf
	}
	for _, k := range names {
		for _, i := range names {
			dik := get(i, k)
			if dik >= inf {
				continue
			}
			for _, j := range names {
				dkj := get(k, j)
				if dkj >= inf {
					continue
				}
				if dik+dkj < get(i, j) {
					bound(i, j, dik+dkj)
				}
			}
		}
	}
	for _, n := range names {
		if get(n, n) < 0 {
			return false
		}
	}
	// Disequality check: x - y != c is violated when the bounds force
	// x - y == c.
	for _, dq := range diseqs {
		if get(dq.x, dq.y) == dq.c && get(dq.y, dq.x) == -dq.c {
			return false
		}
	}
	return true
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// Simplify performs shallow constant folding and returns a formula with the
// same satisfying set.
func Simplify(f Formula) Formula {
	switch x := f.(type) {
	case nil:
		return TrueF{}
	case Atom:
		l := addLin(linearize(x.A), linearize(x.B), -1)
		if len(l.coeffs) == 0 {
			ok := false
			switch x.Op {
			case OpEq:
				ok = l.c == 0
			case OpNe:
				ok = l.c != 0
			case OpLt:
				ok = l.c < 0
			case OpLe:
				ok = l.c <= 0
			case OpGt:
				ok = l.c > 0
			case OpGe:
				ok = l.c >= 0
			}
			if ok {
				return TrueF{}
			}
			return FalseF{}
		}
		return x
	case Not:
		return MkNot(Simplify(x.F))
	case And:
		fs := make([]Formula, len(x.Fs))
		for i, s := range x.Fs {
			fs[i] = Simplify(s)
		}
		return MkAnd(fs...)
	case Or:
		fs := make([]Formula, len(x.Fs))
		for i, s := range x.Fs {
			fs[i] = Simplify(s)
		}
		return MkOr(fs...)
	}
	return f
}

// AtomString is a helper to build diagnostics.
func AtomString(a Atom) string { return a.fString() }

var _ = fmt.Sprintf
