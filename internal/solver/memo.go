package solver

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Satisfiability memo: path conditions repeat heavily across specs and
// regions (the same guards appear in every path through a function), so
// verdicts for the unbudgeted Sat are memoized under a canonical key. The
// memo is a correctness-neutral, process-global LRU:
//
//   - Only the unbudgeted Sat consults it. SatBudget with a live step
//     function bypasses the memo entirely — a budgeted check must charge
//     its unit the real work, or a warm memo would flip degradation
//     outcomes depending on which unit ran first.
//   - Keys are canonical: conjunct/disjunct order is normalized away, so
//     "a && b" and "b && a" share one verdict.
//   - Eviction is generational (two maps): when the current generation
//     fills, it becomes the previous one and lookups promote survivors.
//     Memory is bounded by ~2× satMemoCap entries with O(1) turnover.
type satMemo struct {
	mu        sync.Mutex
	cur, prev map[string]bool
	cap       int
}

// satMemoCap bounds one generation. Sized for the working set of a large
// detection run (distinct canonical conditions, not raw checks).
const satMemoCap = 8192

var memo = &satMemo{
	cur: make(map[string]bool, 256),
	cap: satMemoCap,
}

var (
	satMemoHits   atomic.Int64
	satMemoMisses atomic.Int64
)

// SatMemoStats returns the process-wide memo hit/miss counters (the
// SatChecks counter family's cache view). Callers wanting a per-run
// figure snapshot before and after, like SatChecks.
func SatMemoStats() (hits, misses int64) {
	return satMemoHits.Load(), satMemoMisses.Load()
}

func (m *satMemo) get(key string) (bool, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.cur[key]; ok {
		return v, true
	}
	if v, ok := m.prev[key]; ok {
		m.promote(key, v)
		return v, true
	}
	return false, false
}

func (m *satMemo) put(key string, v bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.promote(key, v)
}

// promote inserts into the current generation, rotating when full. Caller
// holds mu.
func (m *satMemo) promote(key string, v bool) {
	if len(m.cur) >= m.cap {
		m.prev = m.cur
		m.cur = make(map[string]bool, m.cap)
	}
	m.cur[key] = v
}

// canonKey renders f with commutative operands sorted, so formulas equal
// up to conjunct/disjunct order share a memo slot. Sorting is sound for
// the key because And/Or are commutative and the verdict depends only on
// the satisfying set; the formula itself is never reordered.
func canonKey(f Formula) string {
	var sb strings.Builder
	writeCanon(&sb, f)
	return sb.String()
}

func writeCanon(sb *strings.Builder, f Formula) {
	switch x := f.(type) {
	case nil, TrueF:
		sb.WriteString("T")
	case FalseF:
		sb.WriteString("F")
	case Atom:
		sb.WriteString(x.fString())
	case Not:
		sb.WriteString("!(")
		writeCanon(sb, x.F)
		sb.WriteString(")")
	case And:
		writeCanonNary(sb, "&", x.Fs)
	case Or:
		writeCanonNary(sb, "|", x.Fs)
	default:
		// Unknown formula kinds render via their own fString; still a
		// valid (if uncanonicalized) key.
		sb.WriteString(f.fString())
	}
}

func writeCanonNary(sb *strings.Builder, op string, fs []Formula) {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = canonKey(f)
	}
	sort.Strings(parts)
	sb.WriteString(op)
	sb.WriteString("(")
	sb.WriteString(strings.Join(parts, ","))
	sb.WriteString(")")
}
