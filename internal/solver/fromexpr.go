package solver

import (
	"seal/internal/cir"
)

// LeafFn maps a non-boolean program expression (variable, field access,
// call result temp) to a solver term. Implementations typically name the
// symbol after the value's defining location or its abstract interaction
// datum.
type LeafFn func(e cir.Expr) Term

// DefaultLeaf names symbols by the expression's printed form.
func DefaultLeaf(e cir.Expr) Term {
	if lit, ok := e.(*cir.IntLit); ok {
		return Const{Val: lit.Val}
	}
	return Sym{Name: cir.ExprString(e)}
}

// FromCond converts a branch condition expression into a formula.
// Comparison and boolean operators become formula structure; any other
// expression e is interpreted as the C truth test e != 0.
func FromCond(e cir.Expr, leaf LeafFn) Formula {
	if leaf == nil {
		leaf = DefaultLeaf
	}
	switch x := e.(type) {
	case nil:
		return TrueF{}
	case *cir.IntLit:
		if x.Val != 0 {
			return TrueF{}
		}
		return FalseF{}
	case *cir.UnaryExpr:
		if x.Op == cir.TokNot {
			return MkNot(FromCond(x.X, leaf))
		}
	case *cir.BinaryExpr:
		switch x.Op {
		case cir.TokAndAnd:
			return MkAnd(FromCond(x.X, leaf), FromCond(x.Y, leaf))
		case cir.TokOrOr:
			return MkOr(FromCond(x.X, leaf), FromCond(x.Y, leaf))
		case cir.TokEq:
			return Atom{Op: OpEq, A: FromTerm(x.X, leaf), B: FromTerm(x.Y, leaf)}
		case cir.TokNe:
			return Atom{Op: OpNe, A: FromTerm(x.X, leaf), B: FromTerm(x.Y, leaf)}
		case cir.TokLt:
			return Atom{Op: OpLt, A: FromTerm(x.X, leaf), B: FromTerm(x.Y, leaf)}
		case cir.TokLe:
			return Atom{Op: OpLe, A: FromTerm(x.X, leaf), B: FromTerm(x.Y, leaf)}
		case cir.TokGt:
			return Atom{Op: OpGt, A: FromTerm(x.X, leaf), B: FromTerm(x.Y, leaf)}
		case cir.TokGe:
			return Atom{Op: OpGe, A: FromTerm(x.X, leaf), B: FromTerm(x.Y, leaf)}
		}
	}
	// C truth test.
	return Atom{Op: OpNe, A: FromTerm(e, leaf), B: Const{Val: 0}}
}

// FromTerm converts an arithmetic expression into a solver term.
func FromTerm(e cir.Expr, leaf LeafFn) Term {
	if leaf == nil {
		leaf = DefaultLeaf
	}
	switch x := e.(type) {
	case *cir.IntLit:
		return Const{Val: x.Val}
	case *cir.SizeofExpr:
		return Const{Val: x.Size}
	case *cir.CastExpr:
		return FromTerm(x.X, leaf)
	case *cir.UnaryExpr:
		if x.Op == cir.TokMinus {
			return BinTerm{Op: TSub, A: Const{Val: 0}, B: FromTerm(x.X, leaf)}
		}
	case *cir.BinaryExpr:
		switch x.Op {
		case cir.TokPlus:
			return BinTerm{Op: TAdd, A: FromTerm(x.X, leaf), B: FromTerm(x.Y, leaf)}
		case cir.TokMinus:
			return BinTerm{Op: TSub, A: FromTerm(x.X, leaf), B: FromTerm(x.Y, leaf)}
		case cir.TokStar:
			return BinTerm{Op: TMul, A: FromTerm(x.X, leaf), B: FromTerm(x.Y, leaf)}
		}
	}
	return leaf(e)
}
