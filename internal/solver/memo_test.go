package solver

import (
	"fmt"
	"testing"
)

func x(n string) Term  { return Sym{Name: n} }
func c(v int64) Term   { return Const{Val: v} }
func lt(a, b Term) Formula { return Atom{Op: OpLt, A: a, B: b} }
func gt(a, b Term) Formula { return Atom{Op: OpGt, A: a, B: b} }

func TestSatMemoHitsOnRepeat(t *testing.T) {
	f := MkAnd(lt(x("memo_a"), c(3)), gt(x("memo_a"), c(10)))
	h0, m0 := SatMemoStats()
	if Sat(f) {
		t.Fatal("a<3 && a>10 should be unsat")
	}
	if Sat(f) {
		t.Fatal("verdict changed on repeat")
	}
	h1, m1 := SatMemoStats()
	if m1-m0 < 1 {
		t.Fatalf("expected at least one miss, got %d", m1-m0)
	}
	if h1-h0 < 1 {
		t.Fatalf("expected a memo hit on the repeated formula, got %d", h1-h0)
	}
}

func TestSatMemoCanonicalKeyOrderInsensitive(t *testing.T) {
	a := lt(x("memo_p"), c(0))
	b := gt(x("memo_q"), c(5))
	if canonKey(And{Fs: []Formula{a, b}}) != canonKey(And{Fs: []Formula{b, a}}) {
		t.Fatal("conjunct order leaked into the canonical key")
	}
	if canonKey(Or{Fs: []Formula{a, b}}) != canonKey(Or{Fs: []Formula{b, a}}) {
		t.Fatal("disjunct order leaked into the canonical key")
	}
	if canonKey(a) == canonKey(b) {
		t.Fatal("distinct atoms collide")
	}
	// The verdict must be shared across the orderings: first check misses,
	// reordered check hits.
	f1 := And{Fs: []Formula{lt(x("memo_r"), c(1)), gt(x("memo_s"), c(2))}}
	f2 := And{Fs: []Formula{gt(x("memo_s"), c(2)), lt(x("memo_r"), c(1))}}
	Sat(f1)
	h0, _ := SatMemoStats()
	Sat(f2)
	h1, _ := SatMemoStats()
	if h1-h0 != 1 {
		t.Fatalf("reordered conjunction should hit the memo (hits delta %d)", h1-h0)
	}
}

func TestSatMemoAgreesWithRaw(t *testing.T) {
	// A spread of formulas through the memoized and raw paths must agree,
	// including after generational rotation.
	var fs []Formula
	for i := 0; i < 50; i++ {
		fs = append(fs,
			MkAnd(lt(x(fmt.Sprintf("v%d", i)), c(int64(i))), gt(x(fmt.Sprintf("v%d", i)), c(int64(i-5)))),
			MkOr(lt(x("w"), c(int64(i))), gt(x("w"), c(int64(i)))),
			MkNot(lt(x(fmt.Sprintf("u%d", i)), c(0))),
		)
	}
	for _, f := range fs {
		if got, want := Sat(f), satRaw(f); got != want {
			t.Fatalf("memoized Sat(%s)=%v, raw=%v", String(f), got, want)
		}
		// Second pass through the (possibly warm) memo.
		if got, want := Sat(f), satRaw(f); got != want {
			t.Fatalf("warm Sat(%s)=%v, raw=%v", String(f), got, want)
		}
	}
}

func TestSatBudgetBypassesMemo(t *testing.T) {
	f := MkAnd(lt(x("memo_budget"), c(0)), gt(x("memo_budget"), c(9)))
	Sat(f) // warm the memo
	h0, m0 := SatMemoStats()
	steps := 0
	got := SatBudget(f, func(int64) error { steps++; return nil })
	if got {
		t.Fatal("budgeted check verdict wrong")
	}
	h1, m1 := SatMemoStats()
	if h1 != h0 || m1 != m0 {
		t.Fatalf("budgeted check touched the memo (hits %d->%d, misses %d->%d)", h0, h1, m0, m1)
	}
	if steps == 0 {
		t.Fatal("budgeted check did not charge steps — it must do the real work")
	}
}

func TestSatMemoGenerationalRotation(t *testing.T) {
	m := &satMemo{cur: make(map[string]bool), cap: 4}
	for i := 0; i < 10; i++ {
		m.put(fmt.Sprintf("k%d", i), i%2 == 0)
	}
	if len(m.cur) > m.cap {
		t.Fatalf("current generation exceeded cap: %d > %d", len(m.cur), m.cap)
	}
	// A key from the previous generation is still served and promoted.
	if v, ok := m.get("k5"); !ok || v != false {
		t.Fatalf("previous-generation key lost: ok=%v v=%v", ok, v)
	}
	if _, ok := m.cur["k5"]; !ok {
		t.Fatal("hit did not promote into the current generation")
	}
}
