// Package solver is the logical-satisfiability substrate substituting Z3
// (paper §7): a decision procedure for boolean combinations of integer
// comparisons, sufficient for the path conditions occurring in interface
// code (NULL checks, error-code comparisons, bounds checks). It provides
// satisfiability, equivalence, implication, and delta constraints
// (Ψδ = Ψ− ∧ ¬Ψ+, paper Alg. 2 line 8).
package solver

import (
	"fmt"
	"sort"
	"strings"
)

// CmpOp is a comparison operator of an atom.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String implements fmt.Stringer.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// negate returns the complementary operator.
func (op CmpOp) negate() CmpOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	return op
}

// Term is an integer-valued term: a constant, a symbol, or an arithmetic
// combination.
type Term interface {
	termString() string
}

// Const is an integer constant term.
type Const struct{ Val int64 }

func (c Const) termString() string { return fmt.Sprintf("%d", c.Val) }

// Sym is a symbolic integer (a program value).
type Sym struct{ Name string }

func (s Sym) termString() string { return s.Name }

// TermOp is an arithmetic operator.
type TermOp int

// Arithmetic operators.
const (
	TAdd TermOp = iota
	TSub
	TMul
)

// BinTerm is an arithmetic combination of terms.
type BinTerm struct {
	Op   TermOp
	A, B Term
}

func (b BinTerm) termString() string {
	op := "+"
	switch b.Op {
	case TSub:
		op = "-"
	case TMul:
		op = "*"
	}
	return "(" + b.A.termString() + op + b.B.termString() + ")"
}

// Formula is a boolean combination of atoms.
type Formula interface {
	fString() string
}

// TrueF is the always-true formula.
type TrueF struct{}

func (TrueF) fString() string { return "true" }

// FalseF is the always-false formula.
type FalseF struct{}

func (FalseF) fString() string { return "false" }

// Atom is a single comparison.
type Atom struct {
	Op   CmpOp
	A, B Term
}

func (a Atom) fString() string {
	return a.A.termString() + " " + a.Op.String() + " " + a.B.termString()
}

// Not negates a formula.
type Not struct{ F Formula }

func (n Not) fString() string { return "!(" + n.F.fString() + ")" }

// And is an n-ary conjunction.
type And struct{ Fs []Formula }

func (a And) fString() string {
	if len(a.Fs) == 0 {
		return "true"
	}
	parts := make([]string, len(a.Fs))
	for i, f := range a.Fs {
		parts[i] = f.fString()
	}
	return "(" + strings.Join(parts, " && ") + ")"
}

// Or is an n-ary disjunction.
type Or struct{ Fs []Formula }

func (o Or) fString() string {
	if len(o.Fs) == 0 {
		return "false"
	}
	parts := make([]string, len(o.Fs))
	for i, f := range o.Fs {
		parts[i] = f.fString()
	}
	return "(" + strings.Join(parts, " || ") + ")"
}

// String renders a formula.
func String(f Formula) string {
	if f == nil {
		return "true"
	}
	return f.fString()
}

// MkAnd builds a conjunction, flattening, deduplicating, and
// short-circuiting.
func MkAnd(fs ...Formula) Formula {
	var parts []Formula
	seen := make(map[string]bool)
	var push func(f Formula) bool
	push = func(f Formula) bool {
		switch x := f.(type) {
		case nil, TrueF:
			return true
		case FalseF:
			return false
		case And:
			for _, k := range x.Fs {
				if !push(k) {
					return false
				}
			}
			return true
		default:
			key := f.fString()
			if !seen[key] {
				seen[key] = true
				parts = append(parts, f)
			}
			return true
		}
	}
	for _, f := range fs {
		if !push(f) {
			return FalseF{}
		}
	}
	if len(parts) == 0 {
		return TrueF{}
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return And{Fs: parts}
}

// MkOr builds a disjunction, flattening, deduplicating, and
// short-circuiting.
func MkOr(fs ...Formula) Formula {
	var parts []Formula
	seen := make(map[string]bool)
	var push func(f Formula) bool
	push = func(f Formula) bool {
		switch x := f.(type) {
		case nil, FalseF:
			return true
		case TrueF:
			return false
		case Or:
			for _, k := range x.Fs {
				if !push(k) {
					return false
				}
			}
			return true
		default:
			key := f.fString()
			if !seen[key] {
				seen[key] = true
				parts = append(parts, f)
			}
			return true
		}
	}
	for _, f := range fs {
		if !push(f) {
			return TrueF{}
		}
	}
	if len(parts) == 0 {
		return FalseF{}
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return Or{Fs: parts}
}

// MkNot builds a negation, pushing through constants.
func MkNot(f Formula) Formula {
	switch x := f.(type) {
	case nil, TrueF:
		return FalseF{}
	case FalseF:
		return TrueF{}
	case Not:
		return x.F
	case Atom:
		return Atom{Op: x.Op.negate(), A: x.A, B: x.B}
	}
	return Not{F: f}
}

// Symbols returns the sorted symbol names occurring in a formula.
func Symbols(f Formula) []string {
	set := make(map[string]bool)
	collectSyms(f, set)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func collectSyms(f Formula, set map[string]bool) {
	switch x := f.(type) {
	case Atom:
		collectTermSyms(x.A, set)
		collectTermSyms(x.B, set)
	case Not:
		collectSyms(x.F, set)
	case And:
		for _, s := range x.Fs {
			collectSyms(s, set)
		}
	case Or:
		for _, s := range x.Fs {
			collectSyms(s, set)
		}
	}
}

func collectTermSyms(t Term, set map[string]bool) {
	switch x := t.(type) {
	case Sym:
		set[x.Name] = true
	case BinTerm:
		collectTermSyms(x.A, set)
		collectTermSyms(x.B, set)
	}
}

// Rename returns a copy of f with symbol names mapped through ren; names
// absent from ren are kept.
func Rename(f Formula, ren map[string]string) Formula {
	switch x := f.(type) {
	case nil:
		return nil
	case TrueF, FalseF:
		return x
	case Atom:
		return Atom{Op: x.Op, A: renameTerm(x.A, ren), B: renameTerm(x.B, ren)}
	case Not:
		return Not{F: Rename(x.F, ren)}
	case And:
		fs := make([]Formula, len(x.Fs))
		for i, s := range x.Fs {
			fs[i] = Rename(s, ren)
		}
		return And{Fs: fs}
	case Or:
		fs := make([]Formula, len(x.Fs))
		for i, s := range x.Fs {
			fs[i] = Rename(s, ren)
		}
		return Or{Fs: fs}
	}
	return f
}

func renameTerm(t Term, ren map[string]string) Term {
	switch x := t.(type) {
	case Sym:
		if n, ok := ren[x.Name]; ok {
			return Sym{Name: n}
		}
		return x
	case BinTerm:
		return BinTerm{Op: x.Op, A: renameTerm(x.A, ren), B: renameTerm(x.B, ren)}
	}
	return t
}

// Eval evaluates a formula under a full assignment; used by property tests
// to cross-check the decision procedure against brute force.
func Eval(f Formula, env map[string]int64) bool {
	switch x := f.(type) {
	case nil, TrueF:
		return true
	case FalseF:
		return false
	case Atom:
		a, aok := EvalTerm(x.A, env)
		b, bok := EvalTerm(x.B, env)
		if !aok || !bok {
			return false
		}
		switch x.Op {
		case OpEq:
			return a == b
		case OpNe:
			return a != b
		case OpLt:
			return a < b
		case OpLe:
			return a <= b
		case OpGt:
			return a > b
		case OpGe:
			return a >= b
		}
	case Not:
		return !Eval(x.F, env)
	case And:
		for _, s := range x.Fs {
			if !Eval(s, env) {
				return false
			}
		}
		return true
	case Or:
		for _, s := range x.Fs {
			if Eval(s, env) {
				return true
			}
		}
		return false
	}
	return false
}

// EvalTerm evaluates a term under an assignment.
func EvalTerm(t Term, env map[string]int64) (int64, bool) {
	switch x := t.(type) {
	case Const:
		return x.Val, true
	case Sym:
		v, ok := env[x.Name]
		return v, ok
	case BinTerm:
		a, aok := EvalTerm(x.A, env)
		b, bok := EvalTerm(x.B, env)
		if !aok || !bok {
			return 0, false
		}
		switch x.Op {
		case TAdd:
			return a + b, true
		case TSub:
			return a - b, true
		case TMul:
			return a * b, true
		}
	}
	return 0, false
}
