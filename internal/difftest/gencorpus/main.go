// Command gencorpus regenerates the checked-in fuzz seed corpora under
// internal/*/testdata/fuzz. Run from
// the repository root:
//
//	go run ./internal/difftest/gencorpus
//
// Corpus entries use the native `go test fuzz v1` encoding, one argument
// per line, so `go test -fuzz=...` picks them up directly and a failing
// input written by the fuzzer can be diffed against them.
package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"

	"seal/internal/cir"
	"seal/internal/randprog"
	"seal/internal/spec"
	"seal/internal/specdb"
)

func writeEntry(dir, name string, args ...string) error {
	lines := make([]string, len(args))
	for i, a := range args {
		lines[i] = "string(" + strconv.Quote(a) + ")"
	}
	return writeRaw(dir, name, lines...)
}

// writeRaw writes a corpus entry from already-encoded argument lines (e.g.
// `int64(7)`), for targets with non-string arguments.
func writeRaw(dir, name string, lines ...string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	content := "go test fuzz v1\n"
	for _, l := range lines {
		content += l + "\n"
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
}

func main() {
	parseDir := filepath.Join("internal", "cir", "testdata", "fuzz", "FuzzParseFile")
	inferDir := filepath.Join("internal", "difftest", "testdata", "fuzz", "FuzzInferPatch")
	detectDir := filepath.Join("internal", "difftest", "testdata", "fuzz", "FuzzDetectDifferential")

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "gencorpus:", err)
		os.Exit(1)
	}

	// Parser seeds: the running example, a random structured program, and
	// one generated driver of each mutation kind.
	if err := writeEntry(parseDir, "fig3", cir.Fig3Source); err != nil {
		fail(err)
	}
	if err := writeEntry(parseDir, "randprog", randprog.Program(3, 3, randprog.Default())); err != nil {
		fail(err)
	}
	for i, kind := range randprog.AllMutKinds {
		c := randprog.GenPatchCase(int64(i)) // seed i yields kind i
		for file, src := range c.Patch.Post {
			_ = file
			if err := writeEntry(parseDir, "case_"+string(kind), src); err != nil {
				fail(err)
			}
		}
	}

	// Inference seeds: (pre, post) pairs of every mutation kind plus a
	// no-op refactor pair.
	for i := range randprog.AllMutKinds {
		c := randprog.GenPatchCase(int64(i))
		for file := range c.Patch.Pre {
			if err := writeEntry(inferDir, "case_"+string(c.Kind), c.Patch.Pre[file], c.Patch.Post[file]); err != nil {
				fail(err)
			}
		}
	}
	if err := writeEntry(inferDir, "noop",
		"int f(int a) { return a + 1; }\n", "int f(int a) { return 1 + a; }\n"); err != nil {
		fail(err)
	}

	// Detection seeds: one buggy sibling per mutation kind.
	for i := range randprog.AllMutKinds {
		c := randprog.GenPatchCase(int64(i))
		for _, file := range sorted(c.Target) {
			if err := writeEntry(detectDir, "target_"+string(c.Kind), c.Target[file]); err != nil {
				fail(err)
			}
			break
		}
	}

	// Budget seeds: the same targets paired with tiny step/memory/path/depth
	// budgets, so FuzzDetectBudget starts from inputs that actually trip
	// each budget dimension.
	budgetDir := filepath.Join("internal", "difftest", "testdata", "fuzz", "FuzzDetectBudget")
	budgets := [][4]string{
		{"int64(50)", "int64(1024)", "int(2)", "int(3)"},
		{"int64(1)", "int64(1)", "int(1)", "int(1)"},
		{"int64(10000)", "int64(64)", "int(4)", "int(8)"},
	}
	for i := range randprog.AllMutKinds {
		c := randprog.GenPatchCase(int64(i))
		b := budgets[i%len(budgets)]
		for _, file := range sorted(c.Target) {
			if err := writeRaw(budgetDir, "budget_"+string(c.Kind),
				"string("+strconv.Quote(c.Target[file])+")", b[0], b[1], b[2], b[3]); err != nil {
				fail(err)
			}
			break
		}
	}

	// Serve seeds: (method, path, body) triples covering every daemon
	// endpoint, the file-upload path of /edit, budget overrides, and each
	// class of malformed request the error envelope machinery handles.
	serveDir := filepath.Join("internal", "serve", "testdata", "fuzz", "FuzzServeRequest")
	serveCase := randprog.GenPatchCase(0)
	var serveSrc string
	for _, file := range sorted(serveCase.Target) {
		serveSrc = serveCase.Target[file]
		break
	}
	editBody, err := json.Marshal(map[string]any{"files": map[string]string{"seed.c": serveSrc}})
	if err != nil {
		fail(err)
	}
	patchBody, err := json.Marshal(map[string]any{"patches": []any{serveCase.Patch}, "publish": true})
	if err != nil {
		fail(err)
	}
	serveSeeds := []struct{ name, method, path, body string }{
		{"detect", "POST", "/detect", "{}"},
		{"detect_limits", "POST", "/detect", `{"workers":4,"report":true,"limits":{"max_steps":10,"max_paths":1,"max_failures":1}}`},
		{"infer_publish", "POST", "/infer", string(patchBody)},
		{"infer_empty", "POST", "/infer", `{"patches":[]}`},
		{"edit_upload", "POST", "/edit", string(editBody)},
		{"edit_broken", "POST", "/edit", `{"files":{"c.c":"int broken( {{{"}}`},
		{"edit_delete", "POST", "/edit", `{"delete":["a.c"]}`},
		{"stats", "GET", "/stats", ""},
		{"metrics", "GET", "/metrics", ""},
		{"bad_method", "PUT", "/detect", ""},
		{"bad_path", "POST", "/unknown", "x"},
		{"bad_json", "POST", "/detect", "{not json"},
		{"unknown_field", "POST", "/detect", `{"bogus":1}`},
	}
	for _, s := range serveSeeds {
		if err := writeEntry(serveDir, s.name, s.method, s.path, s.body); err != nil {
			fail(err)
		}
	}

	// Coordinator wire seeds: (job, result) JSON pairs covering a clean
	// round trip, out-of-range bug ordinals, unknown unit names, and raw
	// garbage — the decode-then-merge path FuzzShardWire exercises.
	coordDir := filepath.Join("internal", "coord", "testdata", "fuzz", "FuzzShardWire")
	coordSeeds := []struct{ name, job, result string }{
		{"clean", `{"shard":0,"shards":2,"target_hash":"t","workers":1}`,
			`{"shard":0,"bugs":[{"key":"f|api:a | nonnull","spec_id":"s1","ord":0,"rec":{"kind":"missing-check","fn":"f","spec_scope":"api:a"}}],"stats":{"EnsureCalls":2,"EnsureBuilds":1}}`},
		{"ord_out_of_range", `{"shard":1,"shards":2}`,
			`{"shard":0,"bugs":[{"key":"k","ord":-1},{"key":"k2","ord":9999}]}`},
		{"unknown_units", `{"shard":0}`,
			`{"shard":0,"failures":[{"Unit":"api:nope","Stage":"detect","Reason":"panic"}],"degraded":[{"Unit":"ghost"}]}`},
		{"manifest_units", `{"specs":{"specs":[{"id":"x","api":"a"}]}}`,
			`{"shard":0,"units":[{"id":"api:a","specs":1}],"manifest_units":[{"id":"api:a","stage":"detect","outcome":"ok"}]}`},
		{"garbage", `not json`, `still not json`},
		{"empty", `{}`, `{"shard":0}`},
	}
	for _, s := range coordSeeds {
		if err := writeEntry(coordDir, s.name, s.job, s.result); err != nil {
			fail(err)
		}
	}

	// Spec-store page seeds: every page of a real (tiny) store file —
	// meta, leaf, and an overflow chain from an oversized origin-patch
	// field — plus checksum-violating and truncated variants, feeding
	// FuzzSpecPage's decoder contract.
	if err := writeSpecPageSeeds(filepath.Join("internal", "specdb", "testdata", "fuzz", "FuzzSpecPage")); err != nil {
		fail(err)
	}

	// WAL record seeds: valid put/delete frames from the real encoder
	// plus the three hostile classes FuzzWALRecord's contract names —
	// truncated, flipped-checksum, and version-skewed-but-resealed —
	// feeding the group-commit log scanner's torn-tail discipline.
	if err := writeWALRecordSeeds(filepath.Join("internal", "specdb", "testdata", "fuzz", "FuzzWALRecord")); err != nil {
		fail(err)
	}

	fmt.Println("fuzz seed corpora regenerated")
}

func writeWALRecordSeeds(dir string) error {
	put := specdb.EncodeWALRecord(&specdb.WALRecord{Op: specdb.WALOpPut, Seq: 3, NextOrd: 7,
		Key: []byte("iface:ops.prepare | some-constraint"), Val: []byte(`{"ord":6,"db":{}}`)})
	del := specdb.EncodeWALRecord(&specdb.WALRecord{Op: specdb.WALOpDelete, Seq: 4, NextOrd: 7,
		Key: []byte("api:kfree | k")})
	truncated := put[:len(put)-5]
	flipped := append([]byte(nil), put...)
	flipped[len(flipped)-2] ^= 0x08
	// Version skew with a recomputed checksum: structurally perfect,
	// refused on the version byte alone.
	skew := append([]byte(nil), del...)
	body := skew[4 : len(skew)-8]
	body[0] = specdb.WALVersion + 1
	var sum uint64
	h := fnv.New64a()
	h.Write(body)
	sum = h.Sum64()
	binary.LittleEndian.PutUint64(skew[len(skew)-8:], sum)
	seeds := []struct {
		name string
		data []byte
	}{
		{"put", put},
		{"delete", del},
		{"back_to_back", append(append([]byte(nil), put...), del...)},
		{"truncated", truncated},
		{"flipped_checksum", flipped},
		{"version_skew", skew},
		{"garbage", []byte("garbage that is not a record")},
	}
	for _, s := range seeds {
		if err := writeBytesEntry(dir, s.name, s.data); err != nil {
			return err
		}
	}
	return nil
}

func writeBytesEntry(dir, name string, data []byte) error {
	return writeRaw(dir, name, "[]byte("+strconv.Quote(string(data))+")")
}

func writeSpecPageSeeds(dir string) error {
	tmp, err := os.MkdirTemp("", "specdb-seeds")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	path := filepath.Join(tmp, "seed.db")
	st, err := specdb.Create(path)
	if err != nil {
		return err
	}
	long := ""
	for len(long) < 5000 {
		long += "patch-chain-"
	}
	seeds := []*spec.Spec{
		{ID: "S1", Iface: "ops.prepare", API: "kmalloc",
			Constraint: spec.Constraint{Forbidden: true}, Origin: spec.OriginRemoved, OriginPatch: "p1"},
		{ID: "S2", API: "kfree",
			Constraint: spec.Constraint{Forbidden: false}, Origin: spec.OriginAdded, OriginPatch: long},
	}
	if _, _, err := st.ImportSpecs(seeds); err != nil {
		return err
	}
	if err := st.Close(); err != nil {
		return err
	}
	img, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	for i := 0; i*specdb.PageSize < len(img); i++ {
		pg := img[i*specdb.PageSize : (i+1)*specdb.PageSize]
		if err := writeBytesEntry(dir, fmt.Sprintf("page_%d", i), pg); err != nil {
			return err
		}
	}
	// Hostile variants: one flipped payload byte (checksum must catch
	// it) and a truncated image (length check must catch it).
	flipped := append([]byte(nil), img[:specdb.PageSize]...)
	flipped[30] ^= 0x10
	if err := writeBytesEntry(dir, "flipped_meta", flipped); err != nil {
		return err
	}
	return writeBytesEntry(dir, "truncated", img[:100])
}

func sorted(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
