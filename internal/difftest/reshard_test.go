package difftest

import (
	"testing"
)

// TestReshardByteIdentity is the recovery oracle: kill one of N workers,
// run with re-shard-on-loss, and the merged output must be byte-identical
// to the single-process reference at N ∈ {2, 4} — nothing quarantined,
// full recovery provenance in the manifest.
func TestReshardByteIdentity(t *testing.T) {
	counts := []int{2, 4}
	if testing.Short() {
		counts = counts[:1]
	}
	for _, n := range counts {
		divs, err := RunReshardCase(0, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for _, d := range divs {
			t.Errorf("n=%d: %s", n, d.String())
		}
	}
}

// TestReshardNetFaults drives every injected wire-fault kind (refuse,
// mid-response hang, truncation, corruption, slow-loris) through the
// coordinator with and without re-shard-on-loss, asserting byte-identical
// recovery, PR 7 isolation, seed-reproducible backoff schedules, the
// liveness-probe verdict on the hang mode, and a clean rerun after every
// fault (no substrate poisoning).
func TestReshardNetFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("wire-fault suite exercises deadlines; skipped in -short")
	}
	divs, err := RunNetFaultSuite(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range divs {
		t.Error(d.String())
	}
}
